examples/false_sharing.ml: List Midway Midway_stats Midway_util Printf
