examples/false_sharing.mli:
