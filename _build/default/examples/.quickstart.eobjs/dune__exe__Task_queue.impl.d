examples/task_queue.ml: Array List Midway Midway_memory Midway_simnet Midway_stats Midway_util Printf
