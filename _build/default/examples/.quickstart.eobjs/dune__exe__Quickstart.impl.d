examples/quickstart.ml: Midway Midway_memory Midway_simnet Midway_stats Midway_util Printf
