examples/stencil.mli:
