examples/quickstart.mli:
