examples/readers_writer.ml: Array Midway Midway_stats Midway_util Printf
