examples/stencil.ml: Array List Midway Midway_stats Midway_util Printf
