examples/readers_writer.mli:
