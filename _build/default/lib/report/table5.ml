module Texttab = Midway_util.Texttab
module Derived = Midway_stats.Derived

let derived (suite : Suite.t) (e : Suite.entry) =
  Derived.references suite.cost
    ~rt:(Midway_apps.Outcome.avg_counters e.Suite.rt)
    ~vm:(Midway_apps.Outcome.avg_counters e.Suite.vm)

let render (suite : Suite.t) =
  let t =
    Texttab.create
      ~columns:
        ([ ("System", Texttab.Left); ("Operation", Texttab.Left) ]
        @ List.concat_map
            (fun e ->
              [ (Suite.app_name e.Suite.app, Texttab.Right); ("(paper)", Texttab.Right) ])
            suite.entries)
  in
  let k refs = Texttab.fmt_int (refs / 1_000) in
  let row sys op measured paper =
    Texttab.row t
      (sys :: op
      :: List.concat_map
           (fun e ->
             [
               k (measured (derived suite e));
               Texttab.fmt_int (paper (Paper_data.table5 e.Suite.app));
             ])
           suite.entries)
  in
  row "RT-DSM" "write trapping"
    (fun d -> d.Derived.rt_trap_refs)
    (fun p -> p.Paper_data.rt_trap_krefs);
  row "" "write collection"
    (fun d -> d.Derived.rt_collect_refs)
    (fun p -> p.Paper_data.rt_collect_krefs);
  row "" "Total"
    (fun d -> d.Derived.rt_trap_refs + d.Derived.rt_collect_refs)
    (fun p -> p.Paper_data.rt_trap_krefs + p.Paper_data.rt_collect_krefs);
  Texttab.separator t;
  row "VM-DSM" "write trapping"
    (fun d -> d.Derived.vm_trap_refs)
    (fun p -> p.Paper_data.vm_trap_krefs);
  row "" "write collection"
    (fun d -> d.Derived.vm_collect_refs)
    (fun p -> p.Paper_data.vm_collect_krefs);
  row "" "Total"
    (fun d -> d.Derived.vm_trap_refs + d.Derived.vm_collect_refs)
    (fun p -> p.Paper_data.vm_trap_krefs + p.Paper_data.vm_collect_krefs);
  Printf.sprintf
    "Table 5: memory references for write detection, thousands per processor (measured at scale %.2f; paper at scale 1.0)\n"
    suite.scale
  ^ Texttab.render t
