(** The published numbers from the paper's evaluation section, kept here
    so the reports can print paper-vs-measured side by side.

    All values are per-processor averages over an 8-way run on the
    paper's testbed (25 MHz DECstation 5000/200, Mach 3.0, ATM), taken
    from Tables 2-5 and the text of section 4. *)

type table2 = {
  rt_dirtybits_set : int;
  rt_misclassified : int;
  rt_clean_read : int;
  rt_dirty_read : int;
  rt_updated : int;
  rt_data_kb : int;
  rt_pct_dirty : float;
  vm_write_faults : int;
  vm_pages_diffed : int;
  vm_pages_protected : int;
  vm_twin_kb : int;
  vm_data_kb : int;
}

type table3 = { rt_trap_ms : float; vm_trap_ms : float }

type table4 = {
  rt_clean_ms : float;
  rt_dirty_ms : float;
  rt_updated_ms : float;
  rt_total_ms : float;
  vm_diff_ms : float;
  vm_protect_ms : float;
  vm_twin_ms : float;
  vm_total_ms : float;
}

type table5 = {
  rt_trap_krefs : int;
  rt_collect_krefs : int;
  vm_trap_krefs : int;
  vm_collect_krefs : int;
}

val table2 : Suite.app -> table2

val table3 : Suite.app -> table3

val table4 : Suite.app -> table4

val table5 : Suite.app -> table5

val water_uniprocessor_s : float * float * float
(** (RT, VM, standalone) uniprocessor water times: 110.1, 109.1, 104.2 s. *)

val fig4_break_even_us : (Suite.app * float) list
(** Published total-cost break-even fault times: matrix 650 us,
    quicksort 696 us. *)
