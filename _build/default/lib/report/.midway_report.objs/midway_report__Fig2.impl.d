lib/report/fig2.ml: List Midway_apps Midway_util Paper_data Printf Suite
