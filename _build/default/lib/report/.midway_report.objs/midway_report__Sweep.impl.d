lib/report/sweep.ml: Array Float List Midway_apps Midway_stats Midway_util Paper_data Printf Suite
