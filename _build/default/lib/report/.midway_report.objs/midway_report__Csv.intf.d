lib/report/csv.mli: Suite
