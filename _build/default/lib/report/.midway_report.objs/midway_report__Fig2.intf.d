lib/report/fig2.mli: Suite
