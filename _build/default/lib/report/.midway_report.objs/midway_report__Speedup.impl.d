lib/report/speedup.ml: List Midway Midway_apps Midway_util Printf Suite
