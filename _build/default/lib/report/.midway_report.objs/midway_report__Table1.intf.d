lib/report/table1.mli: Midway_stats
