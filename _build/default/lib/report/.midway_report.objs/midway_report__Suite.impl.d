lib/report/suite.ml: List Midway Midway_apps Midway_stats Printf String
