lib/report/table5.ml: List Midway_apps Midway_stats Midway_util Paper_data Printf Suite
