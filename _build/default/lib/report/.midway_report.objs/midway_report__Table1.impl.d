lib/report/table1.ml: Midway_stats Midway_util Printf
