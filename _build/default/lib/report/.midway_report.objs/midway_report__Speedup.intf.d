lib/report/speedup.mli: Suite
