lib/report/markdown.mli: Suite
