lib/report/table4.ml: List Midway_apps Midway_stats Midway_util Paper_data Printf Suite
