lib/report/paper_data.ml: Suite
