lib/report/csv.ml: Buffer List Midway Midway_apps Midway_simnet Midway_stats Midway_util Printf String Suite
