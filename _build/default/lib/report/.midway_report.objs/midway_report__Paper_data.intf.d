lib/report/paper_data.mli: Suite
