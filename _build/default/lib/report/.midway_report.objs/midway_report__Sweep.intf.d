lib/report/sweep.mli: Suite
