lib/report/markdown.ml: Buffer List Midway_apps Paper_data Printf String Suite Table3 Table4
