lib/report/table5.mli: Suite
