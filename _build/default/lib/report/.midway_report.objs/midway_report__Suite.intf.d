lib/report/suite.mli: Midway Midway_apps Midway_stats
