module Texttab = Midway_util.Texttab
module Counters = Midway_stats.Counters

let render (suite : Suite.t) =
  let t =
    Texttab.create
      ~columns:
        ([ ("System", Texttab.Left); ("Operation", Texttab.Left) ]
        @ List.concat_map
            (fun app ->
              [
                (Suite.app_name app, Texttab.Right);
                ("(paper)", Texttab.Right);
              ])
            (List.map (fun e -> e.Suite.app) suite.entries))
  in
  let rt e = Midway_apps.Outcome.avg_counters e.Suite.rt in
  let vm e = Midway_apps.Outcome.avg_counters e.Suite.vm in
  let row sys op measured paper =
    Texttab.row t
      (sys :: op
      :: List.concat_map
           (fun e -> [ measured e; paper (Paper_data.table2 e.Suite.app) ])
           suite.entries)
  in
  let i = Texttab.fmt_int in
  row "RT-DSM" "dirtybits set"
    (fun e -> i (rt e).Counters.dirtybits_set)
    (fun p -> i p.Paper_data.rt_dirtybits_set);
  row "" "dirtybits misclassified"
    (fun e -> i (rt e).Counters.dirtybits_misclassified)
    (fun p -> i p.Paper_data.rt_misclassified);
  row "" "clean dirtybits read"
    (fun e -> i (rt e).Counters.clean_dirtybits_read)
    (fun p -> i p.Paper_data.rt_clean_read);
  row "" "dirty dirtybits read"
    (fun e -> i (rt e).Counters.dirty_dirtybits_read)
    (fun p -> i p.Paper_data.rt_dirty_read);
  row "" "dirtybits updated"
    (fun e -> i (rt e).Counters.dirtybits_updated)
    (fun p -> i p.Paper_data.rt_updated);
  row "" "data transferred (KB)"
    (fun e -> i (int_of_float (Midway_util.Units.kb_of_bytes (rt e).Counters.data_received_bytes)))
    (fun p -> i p.Paper_data.rt_data_kb);
  row "" "percent dirty data"
    (fun e -> Texttab.fmt_float ~decimals:1 (Counters.percent_dirty_data (rt e)))
    (fun p -> Texttab.fmt_float ~decimals:1 p.Paper_data.rt_pct_dirty);
  Texttab.separator t;
  row "VM-DSM" "write faults"
    (fun e -> i (vm e).Counters.write_faults)
    (fun p -> i p.Paper_data.vm_write_faults);
  row "" "pages diffed"
    (fun e -> i (vm e).Counters.pages_diffed)
    (fun p -> i p.Paper_data.vm_pages_diffed);
  row "" "pages write protected"
    (fun e -> i (vm e).Counters.pages_write_protected)
    (fun p -> i p.Paper_data.vm_pages_protected);
  row "" "data updated in twins (KB)"
    (fun e -> i (int_of_float (Midway_util.Units.kb_of_bytes (vm e).Counters.twin_update_bytes)))
    (fun p -> i p.Paper_data.vm_twin_kb);
  row "" "data transferred (KB)"
    (fun e -> i (int_of_float (Midway_util.Units.kb_of_bytes (vm e).Counters.data_received_bytes)))
    (fun p -> i p.Paper_data.vm_data_kb);
  Printf.sprintf
    "Table 2: per-processor invocation counts (measured, %d procs, scale %.2f; paper values at scale 1.0, 8 procs)\n"
    suite.nprocs suite.scale
  ^ Texttab.render t
