(** Table 3: write-trapping time per application (counts x primitive
    costs), RT-DSM vs VM-DSM, with the paper's values alongside. *)

val render : Suite.t -> string

val measured_ms : Suite.t -> Suite.app -> float * float
(** (RT, VM) trapping milliseconds for one application — used by the
    figures and tests. *)
