type table2 = {
  rt_dirtybits_set : int;
  rt_misclassified : int;
  rt_clean_read : int;
  rt_dirty_read : int;
  rt_updated : int;
  rt_data_kb : int;
  rt_pct_dirty : float;
  vm_write_faults : int;
  vm_pages_diffed : int;
  vm_pages_protected : int;
  vm_twin_kb : int;
  vm_data_kb : int;
}

type table3 = { rt_trap_ms : float; vm_trap_ms : float }

type table4 = {
  rt_clean_ms : float;
  rt_dirty_ms : float;
  rt_updated_ms : float;
  rt_total_ms : float;
  vm_diff_ms : float;
  vm_protect_ms : float;
  vm_twin_ms : float;
  vm_total_ms : float;
}

type table5 = {
  rt_trap_krefs : int;
  rt_collect_krefs : int;
  vm_trap_krefs : int;
  vm_collect_krefs : int;
}

let table2 = function
  | Suite.Water ->
      {
        rt_dirtybits_set = 43_180;
        rt_misclassified = 0;
        rt_clean_read = 48_552;
        rt_dirty_read = 11_280;
        rt_updated = 35_676;
        rt_data_kb = 1_096;
        rt_pct_dirty = 55.7;
        vm_write_faults = 258;
        vm_pages_diffed = 253;
        vm_pages_protected = 253;
        vm_twin_kb = 976;
        vm_data_kb = 1_543;
      }
  | Suite.Quicksort ->
      {
        rt_dirtybits_set = 220_804;
        rt_misclassified = 124;
        rt_clean_read = 98_190;
        rt_dirty_read = 108_939;
        rt_updated = 147_896;
        rt_data_kb = 579;
        rt_pct_dirty = 62.7;
        vm_write_faults = 156;
        vm_pages_diffed = 27;
        vm_pages_protected = 27;
        vm_twin_kb = 418;
        vm_data_kb = 816;
      }
  | Suite.Matmul ->
      {
        rt_dirtybits_set = 98_311;
        rt_misclassified = 11;
        rt_clean_read = 135_776;
        rt_dirty_read = 94_217;
        rt_updated = 200_849;
        rt_data_kb = 784;
        rt_pct_dirty = 87.4;
        vm_write_faults = 74;
        vm_pages_diffed = 120;
        vm_pages_protected = 120;
        vm_twin_kb = 15;
        vm_data_kb = 784;
      }
  | Suite.Sor ->
      {
        rt_dirtybits_set = 348_516;
        rt_misclassified = 1;
        rt_clean_read = 19_185;
        rt_dirty_read = 261_097;
        rt_updated = 262_987;
        rt_data_kb = 2_053;
        rt_pct_dirty = 98.1;
        vm_write_faults = 468;
        vm_pages_diffed = 674;
        vm_pages_protected = 674;
        vm_twin_kb = 47;
        vm_data_kb = 2_058;
      }
  | Suite.Cholesky ->
      {
        rt_dirtybits_set = 1_284_004;
        rt_misclassified = 28;
        rt_clean_read = 2_568_269;
        rt_dirty_read = 739_625;
        rt_updated = 1_132_009;
        rt_data_kb = 9_128;
        rt_pct_dirty = 29.3;
        vm_write_faults = 2_916;
        vm_pages_diffed = 3_107;
        vm_pages_protected = 3_107;
        vm_twin_kb = 5_114;
        vm_data_kb = 13_144;
      }

let table3 = function
  | Suite.Water -> { rt_trap_ms = 15.6; vm_trap_ms = 309.6 }
  | Suite.Quicksort -> { rt_trap_ms = 79.5; vm_trap_ms = 187.2 }
  | Suite.Matmul -> { rt_trap_ms = 35.4; vm_trap_ms = 88.8 }
  | Suite.Sor -> { rt_trap_ms = 125.5; vm_trap_ms = 561.6 }
  | Suite.Cholesky -> { rt_trap_ms = 485.3; vm_trap_ms = 3_499.2 }

let table4 = function
  | Suite.Water ->
      {
        rt_clean_ms = 10.5;
        rt_dirty_ms = 2.0;
        rt_updated_ms = 2.4;
        rt_total_ms = 14.9;
        vm_diff_ms = 65.8;
        vm_protect_ms = 32.1;
        vm_twin_ms = 25.4;
        vm_total_ms = 123.3;
      }
  | Suite.Quicksort ->
      {
        rt_clean_ms = 21.3;
        rt_dirty_ms = 19.2;
        rt_updated_ms = 9.9;
        rt_total_ms = 50.4;
        vm_diff_ms = 7.0;
        vm_protect_ms = 3.4;
        vm_twin_ms = 10.9;
        vm_total_ms = 21.3;
      }
  | Suite.Matmul ->
      {
        rt_clean_ms = 29.5;
        rt_dirty_ms = 16.6;
        rt_updated_ms = 13.5;
        rt_total_ms = 59.6;
        vm_diff_ms = 31.2;
        vm_protect_ms = 15.2;
        vm_twin_ms = 0.4;
        vm_total_ms = 46.8;
      }
  | Suite.Sor ->
      {
        rt_clean_ms = 0.5;
        rt_dirty_ms = 46.0;
        rt_updated_ms = 17.6;
        rt_total_ms = 64.1;
        vm_diff_ms = 175.2;
        vm_protect_ms = 85.6;
        vm_twin_ms = 1.2;
        vm_total_ms = 262.0;
      }
  | Suite.Cholesky ->
      {
        rt_clean_ms = 557.3;
        rt_dirty_ms = 138.3;
        rt_updated_ms = 75.8;
        rt_total_ms = 771.4;
        vm_diff_ms = 807.8;
        vm_protect_ms = 394.6;
        vm_twin_ms = 133.0;
        vm_total_ms = 1_335.4;
      }

let table5 = function
  | Suite.Water ->
      { rt_trap_krefs = 43; rt_collect_krefs = 96; vm_trap_krefs = 510; vm_collect_krefs = 768 }
  | Suite.Quicksort ->
      { rt_trap_krefs = 221; rt_collect_krefs = 355; vm_trap_krefs = 358; vm_collect_krefs = 162 }
  | Suite.Matmul ->
      { rt_trap_krefs = 98; rt_collect_krefs = 431; vm_trap_krefs = 262; vm_collect_krefs = 250 }
  | Suite.Sor ->
      { rt_trap_krefs = 349; rt_collect_krefs = 526; vm_trap_krefs = 1_264; vm_collect_krefs = 1_392 }
  | Suite.Cholesky ->
      {
        rt_trap_krefs = 1_349;
        rt_collect_krefs = 4_440;
        vm_trap_krefs = 5_767;
        vm_collect_krefs = 7_672;
      }

let water_uniprocessor_s = (110.1, 109.1, 104.2)

let fig4_break_even_us = [ (Suite.Matmul, 650.0); (Suite.Quicksort, 696.0) ]
