(** Processor-count scaling curves (extension experiment).

    The paper reports standalone and 8-processor times (Figure 2); this
    extension sweeps the processor count to show where each detection
    strategy's overhead bends the scaling curve. *)

val render : app:Suite.app -> scale:float -> procs:int list -> string
(** Run the application under RT-DSM and VM-DSM at each processor count
    (plus the uniprocessor standalone baseline) and render a table of
    times and speedups. *)
