module Outcome = Midway_apps.Outcome

let render (suite : Suite.t) =
  let time_groups =
    List.map
      (fun e ->
        ( Suite.app_name e.Suite.app,
          [
            ("RT-DSM  (8p)", Outcome.elapsed_s e.Suite.rt);
            ("VM-DSM  (8p)", Outcome.elapsed_s e.Suite.vm);
            ("standalone 1p", Outcome.elapsed_s e.Suite.standalone);
          ] ))
      suite.entries
  in
  let data_groups =
    List.map
      (fun e ->
        ( Suite.app_name e.Suite.app,
          [
            ("RT-DSM", Outcome.total_data_mb e.Suite.rt);
            ("VM-DSM", Outcome.total_data_mb e.Suite.vm);
          ] ))
      suite.entries
  in
  let water_note =
    match List.find_opt (fun e -> e.Suite.app = Suite.Water) suite.entries with
    | None -> ""
    | Some e ->
        let rt, vm, sa = Paper_data.water_uniprocessor_s in
        Printf.sprintf
          "water standalone baseline: %.1f s measured (paper: RT %.1f / VM %.1f / standalone %.1f at scale 1.0)\n"
          (Outcome.elapsed_s e.Suite.standalone)
          rt vm sa
  in
  Printf.sprintf "Figure 2 (scale %.2f, %d processors)\n\n" suite.scale suite.nprocs
  ^ Midway_util.Asciiplot.bars ~title:"Execution time" ~unit_label:"s" ~groups:time_groups
  ^ "\n"
  ^ Midway_util.Asciiplot.bars ~title:"Total data transferred" ~unit_label:"MB"
      ~groups:data_groups
  ^ "\n" ^ water_note
