(** Table 4: write-collection time per application, broken down by
    primitive, RT-DSM vs VM-DSM, with the paper's values alongside. *)

val render : Suite.t -> string

val measured_ms : Suite.t -> Suite.app -> float * float
(** (RT, VM) collection totals in milliseconds. *)
