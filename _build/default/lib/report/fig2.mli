(** Figure 2: execution time and total data transferred per application
    under RT-DSM and VM-DSM, plus the uniprocessor standalone baseline. *)

val render : Suite.t -> string
