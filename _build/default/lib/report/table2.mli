(** Table 2: per-processor invocation counts of the primitive operations,
    measured from the suite run, with the paper's published counts
    alongside.  Counts scale with the problem size, so comparisons with
    the paper are meaningful at [scale = 1.0]. *)

val render : Suite.t -> string
