module Cost_model = Midway_stats.Cost_model
module Texttab = Midway_util.Texttab

let render (cm : Cost_model.t) =
  let t =
    Texttab.create
      ~columns:
        [
          ("System", Texttab.Left);
          ("Primitive Operation", Texttab.Left);
          ("Time (usecs)", Texttab.Right);
          ("Cycles", Texttab.Right);
        ]
  in
  let us ns = Printf.sprintf "%.3f" (float_of_int ns /. 1_000.0) in
  let us0 ns = Printf.sprintf "%.0f" (float_of_int ns /. 1_000.0) in
  let cyc ns = Texttab.fmt_int ((ns + (cm.cycle_ns / 2)) / cm.cycle_ns) in
  let row sys op time cycles = Texttab.row t [ sys; op; time; cycles ] in
  row "RT-DSM" "dirtybit set: word write" (us cm.dirtybit_set_ns) (cyc cm.dirtybit_set_ns);
  row "" "dirtybit set: doubleword write" (us cm.dirtybit_set_ns) (cyc cm.dirtybit_set_ns);
  row "" "dirtybit set: write to private memory" (us cm.dirtybit_set_private_ns)
    (cyc cm.dirtybit_set_private_ns);
  row "" "dirtybit read: clean" (us cm.dirtybit_read_clean_ns) (cyc cm.dirtybit_read_clean_ns);
  row "" "dirtybit read: dirty" (us cm.dirtybit_read_dirty_ns) (cyc cm.dirtybit_read_dirty_ns);
  row "" "dirtybit update (timestamp install)" (us cm.dirtybit_update_ns)
    (cyc cm.dirtybit_update_ns);
  Texttab.separator t;
  row "VM-DSM" "page write fault (incl. twin & protection)" (us0 cm.page_fault_ns)
    (cyc cm.page_fault_ns);
  row "" "page diff: none or all of the data changed" (us0 cm.page_diff_uniform_ns)
    (cyc cm.page_diff_uniform_ns);
  row "" "page diff: every other word changed" (us0 cm.page_diff_alternating_ns)
    (cyc cm.page_diff_alternating_ns);
  row "" "page protection call: read-write" (us0 cm.page_protect_rw_ns)
    (cyc cm.page_protect_rw_ns);
  row "" "page protection call: read-only" (us0 cm.page_protect_ro_ns)
    (cyc cm.page_protect_ro_ns);
  row "" "block copy per KB, cold cache" (us0 cm.copy_kb_cold_ns) (cyc cm.copy_kb_cold_ns);
  row "" "block copy per KB, warm cache" (us0 cm.copy_kb_warm_ns) (cyc cm.copy_kb_warm_ns);
  "Table 1: primitive operation costs on the modelled 25 MHz R3000 / Mach 3.0\n"
  ^ Printf.sprintf "(page size %d bytes; cycle %d ns)\n" cm.page_size cm.cycle_ns
  ^ Texttab.render t
