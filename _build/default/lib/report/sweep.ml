module Derived = Midway_stats.Derived
module Cost_model = Midway_stats.Cost_model

type point = { fault_us : float; rt_ms : float; vm_ms : float }

type line = { app : Suite.app; points : point list }

let fault_steps =
  (* 122 us .. 1200 us, geometric spacing. *)
  let lo = Cost_model.fast_exception_page_fault_us
  and hi = Cost_model.mach_page_fault_us in
  let n = 12 in
  List.init (n + 1) (fun i ->
      lo *. ((hi /. lo) ** (float_of_int i /. float_of_int n)))

let lines_of suite ~total =
  List.map
    (fun (e : Suite.entry) ->
      let rt = Midway_apps.Outcome.avg_counters e.Suite.rt in
      let vm = Midway_apps.Outcome.avg_counters e.Suite.vm in
      let points =
        List.map
          (fun fault_us ->
            let cost = Cost_model.with_page_fault_us suite.Suite.cost fault_us in
            let trap = Derived.trapping cost ~rt ~vm in
            let rt_ns, vm_ns =
              if total then begin
                let coll = Derived.collection cost ~rt ~vm in
                ( trap.Derived.rt_ns + coll.Derived.rt_total_ns,
                  trap.Derived.vm_ns + coll.Derived.vm_total_ns )
              end
              else (trap.Derived.rt_ns, trap.Derived.vm_ns)
            in
            {
              fault_us;
              rt_ms = Midway_util.Units.ms_of_ns rt_ns;
              vm_ms = Midway_util.Units.ms_of_ns vm_ns;
            })
          fault_steps
      in
      { app = e.Suite.app; points })
    suite.Suite.entries

let trapping_lines suite = lines_of suite ~total:false

let total_lines suite = lines_of suite ~total:true

(* Solve vm(fault) = rt for the fault time.  Both costs are affine in the
   fault time, so interpolate between the sweep endpoints. *)
let break_even_us lines =
  List.map
    (fun line ->
      match (line.points, List.rev line.points) with
      | lo :: _, hi :: _ ->
          let crossing =
            if (lo.vm_ms -. lo.rt_ms) *. (hi.vm_ms -. hi.rt_ms) > 0.0 then None
            else begin
              (* vm(f) = vm_lo + slope * (f - f_lo); rt constant. *)
              let slope = (hi.vm_ms -. lo.vm_ms) /. (hi.fault_us -. lo.fault_us) in
              if slope = 0.0 then None
              else Some (lo.fault_us +. ((lo.rt_ms -. lo.vm_ms) /. slope))
            end
          in
          (line.app, crossing)
      | _ -> (line.app, None))
    lines

let markers = [| '*'; 'q'; 'm'; 's'; 'c' |]

let render ~title suite lines =
  let plot =
    Midway_util.Asciiplot.create ~width:68 ~height:22 ~title
      ~x_label:"log10 VM-DSM cost (ms)" ~y_label:"log10 RT-DSM cost (ms)" ()
  in
  let log10 v = if v <= 0.0 then -1.0 else Float.log10 v in
  List.iteri
    (fun i line ->
      Midway_util.Asciiplot.series plot ~name:(Suite.app_name line.app)
        ~marker:markers.(i mod Array.length markers)
        (List.map (fun p -> (log10 p.vm_ms, log10 p.rt_ms)) line.points))
    lines;
  Midway_util.Asciiplot.diagonal plot;
  let tbl =
    Midway_util.Texttab.create
      ~columns:
        [
          ("application", Midway_util.Texttab.Left);
          ("RT cost (ms)", Midway_util.Texttab.Right);
          ("VM @122us (ms)", Midway_util.Texttab.Right);
          ("VM @1200us (ms)", Midway_util.Texttab.Right);
          ("break-even fault time", Midway_util.Texttab.Right);
          ("paper", Midway_util.Texttab.Right);
        ]
  in
  let bes = break_even_us lines in
  List.iter
    (fun line ->
      match (line.points, List.rev line.points) with
      | lo :: _, hi :: _ ->
          let be =
            match List.assoc line.app bes with
            | Some us -> Printf.sprintf "%.0f us" us
            | None -> if lo.vm_ms > lo.rt_ms then "always RT" else "always VM"
          in
          let paper =
            match List.assoc_opt line.app Paper_data.fig4_break_even_us with
            | Some us -> Printf.sprintf "%.0f us" us
            | None -> "-"
          in
          Midway_util.Texttab.row tbl
            [
              Suite.app_name line.app;
              Midway_util.Texttab.fmt_float ~decimals:1 lo.rt_ms;
              Midway_util.Texttab.fmt_float ~decimals:1 lo.vm_ms;
              Midway_util.Texttab.fmt_float ~decimals:1 hi.vm_ms;
              be;
              paper;
            ]
      | _ -> ())
    lines;
  Printf.sprintf "%s (scale %.2f; points below the diagonal favour RT-DSM)\n" title
    suite.Suite.scale
  ^ Midway_util.Asciiplot.render plot
  ^ "\n" ^ Midway_util.Texttab.render tbl
