module Texttab = Midway_util.Texttab

let render ~app ~scale ~procs =
  let time backend nprocs =
    let cfg = Midway.Config.make backend ~nprocs in
    let o = Suite.run_app app cfg ~scale in
    if not o.Midway_apps.Outcome.ok then
      failwith (Printf.sprintf "speedup: %s failed verification" (Suite.app_name app));
    Midway_apps.Outcome.elapsed_s o
  in
  let standalone = time Midway.Config.Standalone 1 in
  let t =
    Texttab.create
      ~columns:
        [
          ("procs", Texttab.Right);
          ("RT-DSM (s)", Texttab.Right);
          ("speedup", Texttab.Right);
          ("VM-DSM (s)", Texttab.Right);
          ("speedup", Texttab.Right);
        ]
  in
  List.iter
    (fun nprocs ->
      let rt = time Midway.Config.Rt nprocs in
      let vm = time Midway.Config.Vm nprocs in
      Texttab.row t
        [
          string_of_int nprocs;
          Texttab.fmt_float ~decimals:2 rt;
          Texttab.fmt_float ~decimals:2 (standalone /. rt);
          Texttab.fmt_float ~decimals:2 vm;
          Texttab.fmt_float ~decimals:2 (standalone /. vm);
        ])
    procs;
  Printf.sprintf "Scaling of %s (scale %.2f; standalone baseline %.2f s)\n" (Suite.app_name app)
    scale standalone
  ^ Texttab.render t
