(** Markdown summary of a suite run — the mechanical core of
    EXPERIMENTS.md.  `midway-experiments --md FILE` writes it. *)

val of_suite : Suite.t -> string
(** Headline execution-time and data-transfer tables (measured vs the
    paper where available), plus the derived Tables 3 and 4 totals, in
    GitHub-flavoured markdown. *)
