(** Table 1: execution times of the primitive operations.

    The reproduction treats the paper's measured values as the machine
    model, so this table prints the cost model in the paper's layout.
    (The Bechamel benchmark in [bench/main.ml] additionally measures the
    host-native cost of our software analogues of each primitive.) *)

val render : Midway_stats.Cost_model.t -> string
