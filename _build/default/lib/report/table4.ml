module Texttab = Midway_util.Texttab
module Derived = Midway_stats.Derived

let derived (suite : Suite.t) (e : Suite.entry) =
  Derived.collection suite.cost
    ~rt:(Midway_apps.Outcome.avg_counters e.Suite.rt)
    ~vm:(Midway_apps.Outcome.avg_counters e.Suite.vm)

let measured_ms suite app =
  let d = derived suite (Suite.entry suite app) in
  ( Midway_util.Units.ms_of_ns d.Derived.rt_total_ns,
    Midway_util.Units.ms_of_ns d.Derived.vm_total_ns )

let render (suite : Suite.t) =
  let t =
    Texttab.create
      ~columns:
        ([ ("System", Texttab.Left); ("Operation", Texttab.Left) ]
        @ List.concat_map
            (fun e ->
              [ (Suite.app_name e.Suite.app, Texttab.Right); ("(paper)", Texttab.Right) ])
            suite.entries)
  in
  let f = Texttab.fmt_float ~decimals:1 in
  let ms = Midway_util.Units.ms_of_ns in
  let row sys op measured paper =
    Texttab.row t
      (sys :: op
      :: List.concat_map
           (fun e ->
             [ f (ms (measured (derived suite e))); f (paper (Paper_data.table4 e.Suite.app)) ])
           suite.entries)
  in
  row "RT-DSM" "clean dirtybits read"
    (fun d -> d.Derived.rt_clean_reads_ns)
    (fun p -> p.Paper_data.rt_clean_ms);
  row "" "dirty dirtybits read"
    (fun d -> d.Derived.rt_dirty_reads_ns)
    (fun p -> p.Paper_data.rt_dirty_ms);
  row "" "dirtybits updated"
    (fun d -> d.Derived.rt_updates_ns)
    (fun p -> p.Paper_data.rt_updated_ms);
  row "" "Total" (fun d -> d.Derived.rt_total_ns) (fun p -> p.Paper_data.rt_total_ms);
  Texttab.separator t;
  row "VM-DSM" "pages diffed" (fun d -> d.Derived.vm_diff_ns) (fun p -> p.Paper_data.vm_diff_ms);
  row "" "pages write protected"
    (fun d -> d.Derived.vm_protect_ns)
    (fun p -> p.Paper_data.vm_protect_ms);
  row "" "data updated in twins"
    (fun d -> d.Derived.vm_twin_update_ns)
    (fun p -> p.Paper_data.vm_twin_ms);
  row "" "Total" (fun d -> d.Derived.vm_total_ns) (fun p -> p.Paper_data.vm_total_ms);
  Texttab.separator t;
  Texttab.row t
    ("" :: "RT-DSM collection advantage"
    :: List.concat_map
         (fun e ->
           let d = derived suite e in
           let p = Paper_data.table4 e.Suite.app in
           [
             f (ms (d.Derived.vm_total_ns - d.Derived.rt_total_ns));
             f (p.Paper_data.vm_total_ms -. p.Paper_data.rt_total_ms);
           ])
         suite.entries);
  Printf.sprintf
    "Table 4: write collection time, milliseconds per processor (measured at scale %.2f; paper at scale 1.0)\n"
    suite.scale
  ^ Texttab.render t
