(** Table 5: memory references incurred by write detection (trapping and
    collection), RT-DSM vs VM-DSM, in thousands, with the paper's values
    alongside. *)

val render : Suite.t -> string
