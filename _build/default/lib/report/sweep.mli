(** The page-fault-cost sweep shared by Figures 3 and 4.

    Both figures plot, for each application, RT-DSM cost (constant in the
    fault time) against VM-DSM cost as the fault service time varies from
    the 122 us fast-exception path to Mach's 1,200 us: a horizontal
    segment per application on log-log axes, against the y = x break-even
    diagonal.  Points below the diagonal favour RT-DSM. *)

type point = { fault_us : float; rt_ms : float; vm_ms : float }

type line = { app : Suite.app; points : point list }

val trapping_lines : Suite.t -> line list
(** Figure 3: write-trapping cost only. *)

val total_lines : Suite.t -> line list
(** Figure 4: trapping + collection. *)

val break_even_us : line list -> (Suite.app * float option) list
(** Fault service time at which VM-DSM matches RT-DSM, per application
    ([None] if the line does not cross inside the swept range).  The
    paper reports 650 us for matrix and 696 us for quicksort in
    Figure 4. *)

val render : title:string -> Suite.t -> line list -> string
(** Log-log plot plus a numeric table of the endpoints and break-even. *)
