module Texttab = Midway_util.Texttab
module Derived = Midway_stats.Derived

let derived (suite : Suite.t) (e : Suite.entry) =
  Derived.trapping suite.cost
    ~rt:(Midway_apps.Outcome.avg_counters e.Suite.rt)
    ~vm:(Midway_apps.Outcome.avg_counters e.Suite.vm)

let measured_ms suite app =
  let d = derived suite (Suite.entry suite app) in
  (Midway_util.Units.ms_of_ns d.Derived.rt_ns, Midway_util.Units.ms_of_ns d.Derived.vm_ns)

let render (suite : Suite.t) =
  let t =
    Texttab.create
      ~columns:
        ([ ("System", Texttab.Left); ("Operation", Texttab.Left) ]
        @ List.concat_map
            (fun e ->
              [ (Suite.app_name e.Suite.app, Texttab.Right); ("(paper)", Texttab.Right) ])
            suite.entries)
  in
  let f = Texttab.fmt_float ~decimals:1 in
  Texttab.row t
    ("RT-DSM" :: "write trapping time"
    :: List.concat_map
         (fun e ->
           let d = derived suite e in
           [
             f (Midway_util.Units.ms_of_ns d.Derived.rt_ns);
             f (Paper_data.table3 e.Suite.app).Paper_data.rt_trap_ms;
           ])
         suite.entries);
  Texttab.row t
    ("VM-DSM" :: "write trapping time"
    :: List.concat_map
         (fun e ->
           let d = derived suite e in
           [
             f (Midway_util.Units.ms_of_ns d.Derived.vm_ns);
             f (Paper_data.table3 e.Suite.app).Paper_data.vm_trap_ms;
           ])
         suite.entries);
  Texttab.separator t;
  Texttab.row t
    ("" :: "RT-DSM trapping advantage"
    :: List.concat_map
         (fun e ->
           let d = derived suite e in
           let paper = Paper_data.table3 e.Suite.app in
           [
             f (Midway_util.Units.ms_of_ns (d.Derived.vm_ns - d.Derived.rt_ns));
             f (paper.Paper_data.vm_trap_ms -. paper.Paper_data.rt_trap_ms);
           ])
         suite.entries);
  Printf.sprintf
    "Table 3: write trapping time, milliseconds per processor (measured at scale %.2f; paper at scale 1.0)\n"
    suite.scale
  ^ Texttab.render t
