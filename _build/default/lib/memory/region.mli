(** Memory regions.

    Midway partitions the application's address space into large,
    fixed-size regions (paper, section 3.1 and Appendix A).  All data in a
    region is either shared between all processors or private to each
    processor, and all cache lines within a region have the same size
    (different regions may differ).  The base page of every region holds
    the dirtybit-update code template; here the template is represented by
    the region's {!kind}, which the RT backend dispatches on exactly as
    the generated code would jump through the template.

    Each simulated processor has its own physical copy of every region it
    touches — that is what makes the simulation a real DSM: data written
    on one processor becomes visible on another only when the consistency
    protocol ships it. *)

type kind =
  | Shared  (** one logical copy, replicated per processor, kept consistent by the DSM *)
  | Private  (** per-processor data that happens to live in the shared layout; its template is the null template *)

type t = {
  index : int;  (** region number; base address = index * region size *)
  kind : kind;
  line_size : int;  (** software cache-line size in bytes (power of two) *)
  region_size : int;  (** bytes covered by the region *)
  nprocs : int;
  mutable used : int;  (** bump-allocation high-water mark *)
  backing : Bytes.t option array;  (** per-processor physical copy, allocated on first touch *)
}

val create : index:int -> kind:kind -> line_size:int -> region_size:int -> nprocs:int -> t
(** Raises [Invalid_argument] unless [line_size] is a positive power of two
    no larger than [region_size]. *)

val base : t -> int
(** First address of the region. *)

val limit : t -> int
(** One past the last address of the region. *)

val lines : t -> int
(** Number of cache lines in the region. *)

val line_of_offset : t -> int -> int
(** Cache-line index containing the given byte offset. *)

val backing_for : t -> proc:int -> Bytes.t
(** The processor's physical copy, allocating it (zero-filled) on first
    use. *)

val touched : t -> proc:int -> bool
(** Whether the processor's copy has been materialized. *)
