type kind = Shared | Private

type t = {
  index : int;
  kind : kind;
  line_size : int;
  region_size : int;
  nprocs : int;
  mutable used : int;
  backing : Bytes.t option array;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create ~index ~kind ~line_size ~region_size ~nprocs =
  if not (is_power_of_two line_size) then
    invalid_arg "Region.create: line_size must be a positive power of two";
  if line_size > region_size then
    invalid_arg "Region.create: line_size exceeds region_size";
  if nprocs <= 0 then invalid_arg "Region.create: nprocs must be positive";
  {
    index;
    kind;
    line_size;
    region_size;
    nprocs;
    used = 0;
    backing = Array.make nprocs None;
  }

let base t = t.index * t.region_size

let limit t = base t + t.region_size

let lines t = t.region_size / t.line_size

let line_of_offset t off = off / t.line_size

let backing_for t ~proc =
  match t.backing.(proc) with
  | Some b -> b
  | None ->
      let b = Bytes.make t.region_size '\000' in
      t.backing.(proc) <- Some b;
      b

let touched t ~proc = t.backing.(proc) <> None
