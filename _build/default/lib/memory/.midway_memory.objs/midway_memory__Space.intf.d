lib/memory/space.mli: Bytes Region
