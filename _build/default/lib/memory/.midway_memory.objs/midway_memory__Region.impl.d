lib/memory/region.ml: Array Bytes
