lib/memory/space.ml: Array Bytes Char Hashtbl Int64 List Region
