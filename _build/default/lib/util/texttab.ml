type align = Left | Right

type line = Row of string list | Sep

type t = {
  headers : string list;
  aligns : align array;
  mutable lines : line list; (* reversed *)
}

let create ~columns =
  {
    headers = List.map fst columns;
    aligns = Array.of_list (List.map snd columns);
    lines = [];
  }

let ncols t = List.length t.headers

let row t cells =
  let n = List.length cells in
  if n > ncols t then invalid_arg "Texttab.row: too many cells";
  let padded =
    if n = ncols t then cells else cells @ List.init (ncols t - n) (fun _ -> "")
  in
  t.lines <- Row padded :: t.lines

let separator t = t.lines <- Sep :: t.lines

let widths t =
  let w = Array.make (ncols t) 0 in
  let update cells =
    List.iteri (fun i c -> if String.length c > w.(i) then w.(i) <- String.length c) cells
  in
  update t.headers;
  List.iter (function Row cells -> update cells | Sep -> ()) t.lines;
  w

let pad align width s =
  let n = width - String.length s in
  if n <= 0 then s
  else
    match align with
    | Left -> s ^ String.make n ' '
    | Right -> String.make n ' ' ^ s

let render t =
  let w = widths t in
  let buf = Buffer.create 1024 in
  let rule () =
    Buffer.add_char buf '+';
    Array.iter
      (fun width ->
        Buffer.add_string buf (String.make (width + 2) '-');
        Buffer.add_char buf '+')
      w;
    Buffer.add_char buf '\n'
  in
  let emit_row ?(aligns = t.aligns) cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad aligns.(i) w.(i) c);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  rule ();
  emit_row ~aligns:(Array.make (ncols t) Left) t.headers;
  rule ();
  List.iter
    (function Row cells -> emit_row cells | Sep -> rule ())
    (List.rev t.lines);
  rule ();
  Buffer.contents buf

let group_thousands s =
  let n = String.length s in
  let buf = Buffer.create (n + n / 3) in
  String.iteri
    (fun i c ->
      if i > 0 && (n - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let fmt_int v =
  if v < 0 then "-" ^ group_thousands (string_of_int (-v))
  else group_thousands (string_of_int v)

let fmt_float ?(decimals = 1) v =
  let s = Printf.sprintf "%.*f" decimals v in
  match String.index_opt s '.' with
  | None -> group_thousands s
  | Some dot ->
      let int_part = String.sub s 0 dot in
      let frac = String.sub s dot (String.length s - dot) in
      if v < 0.0 then
        "-" ^ group_thousands (String.sub int_part 1 (String.length int_part - 1)) ^ frac
      else group_thousands int_part ^ frac
