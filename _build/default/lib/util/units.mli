(** Unit conversions and human-readable formatting.

    The simulator keeps virtual time in integer nanoseconds and data sizes
    in bytes; the paper reports microseconds, milliseconds, seconds, KB and
    MB. These helpers centralize the conversions so the report code cannot
    drift. *)

val ns_per_us : int
val ns_per_ms : int
val ns_per_s : int

val us_of_ns : int -> float
val ms_of_ns : int -> float
val s_of_ns : int -> float

val kb_of_bytes : int -> float
val mb_of_bytes : int -> float

val pp_time : int -> string
(** Nanoseconds rendered with an adaptive unit, e.g. ["360 ns"],
    ["1.20 ms"], ["104.2 s"]. *)

val pp_bytes : int -> string
(** Bytes rendered with an adaptive unit, e.g. ["784 KB"], ["9.1 MB"]. *)
