(** Binary min-heap keyed by [int], with deterministic FIFO tie-breaking.

    The discrete-event engine orders pending fiber resumptions by virtual
    time; entries with equal keys pop in insertion order so that simulation
    runs are reproducible regardless of heap internals. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> key:int -> 'a -> unit
(** [push t ~key v] inserts [v] with priority [key]. Smaller keys pop
    first; equal keys pop in insertion order. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the minimum entry, or [None] when empty. *)

val peek_key : 'a t -> int option
(** Key of the minimum entry without removing it. *)

val clear : 'a t -> unit
