(** Character-grid plots for reproducing the paper's figures in a terminal.

    Two chart kinds are needed: grouped bar charts (Figure 2: execution
    time and data transferred per application) and scatter/line charts
    (Figures 3 and 4: per-application cost lines across a page-fault-cost
    sweep, with the break-even diagonal). *)

type t

val create : ?width:int -> ?height:int -> title:string -> x_label:string -> y_label:string -> unit -> t
(** A blank plot surface. [width]/[height] are the data-area dimensions in
    characters (defaults 64 x 20). *)

val series : t -> name:string -> marker:char -> (float * float) list -> unit
(** Add a named point series drawn with [marker]. *)

val diagonal : t -> unit
(** Draw the y = x break-even diagonal (used by Figures 3 and 4). *)

val render : t -> string
(** Scales all series to the surface, draws axes, markers and the legend. *)

val bars :
  title:string ->
  unit_label:string ->
  groups:(string * (string * float) list) list ->
  string
(** [bars ~title ~unit_label ~groups] renders horizontal grouped bars, one
    group per application, one bar per system, scaled to the maximum
    value. *)
