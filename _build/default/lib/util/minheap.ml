(* Array-backed binary heap. Each entry carries an insertion sequence
   number so that equal keys compare FIFO, which makes the simulator
   deterministic. *)

type 'a entry = { key : int; seq : int; value : 'a }

type 'a t = {
  mutable entries : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { entries = [||]; size = 0; next_seq = 0 }

let length t = t.size

let is_empty t = t.size = 0

let precedes a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let grow t =
  let cap = Array.length t.entries in
  let new_cap = if cap = 0 then 16 else cap * 2 in
  (* The dummy entry is never observed: slots >= size are dead. *)
  let dummy = t.entries.(0) in
  let fresh = Array.make new_cap dummy in
  Array.blit t.entries 0 fresh 0 t.size;
  t.entries <- fresh

let push t ~key value =
  let e = { key; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  if t.size = 0 && Array.length t.entries = 0 then t.entries <- Array.make 16 e;
  if t.size = Array.length t.entries then grow t;
  (* Sift up. *)
  let i = ref t.size in
  t.size <- t.size + 1;
  t.entries.(!i) <- e;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if precedes e t.entries.(parent) then begin
      t.entries.(!i) <- t.entries.(parent);
      t.entries.(parent) <- e;
      i := parent
    end
    else continue := false
  done

let sift_down t i0 =
  let e = t.entries.(i0) in
  let i = ref i0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.size && precedes t.entries.(l) t.entries.(!smallest) then smallest := l;
    if r < t.size && precedes t.entries.(r) t.entries.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      t.entries.(!i) <- t.entries.(!smallest);
      t.entries.(!smallest) <- e;
      i := !smallest
    end
    else continue := false
  done

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.entries.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.entries.(0) <- t.entries.(t.size);
      sift_down t 0
    end;
    Some (top.key, top.value)
  end

let peek_key t = if t.size = 0 then None else Some t.entries.(0).key

let clear t = t.size <- 0
