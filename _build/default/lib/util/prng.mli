(** Deterministic pseudo-random number generation.

    All randomized behaviour in the simulator (workload generation, initial
    data values) flows through this module so that every experiment is
    reproducible bit-for-bit from a seed.  The generator is SplitMix64,
    which is fast, has a 64-bit state and passes BigCrush. *)

type t
(** A mutable generator. Generators are cheap; use one per independent
    stream (e.g. one per simulated processor) to keep streams decoupled. *)

val create : seed:int -> t
(** [create ~seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t]. The derived
    stream is statistically independent of the parent's subsequent
    output. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument]
    if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
