(** Plain-text table rendering for the experiment reports.

    Produces aligned, boxed tables similar in spirit to the tables in the
    paper: a header row, optional row-group separators, and right-aligned
    numeric cells. *)

type align = Left | Right

type t

val create : columns:(string * align) list -> t
(** [create ~columns] starts an empty table with the given header cells
    and per-column alignment. *)

val row : t -> string list -> unit
(** Append a data row. Rows shorter than the header are padded with empty
    cells; longer rows raise [Invalid_argument]. *)

val separator : t -> unit
(** Append a horizontal rule between row groups. *)

val render : t -> string
(** Render the table to a string (trailing newline included). *)

val fmt_int : int -> string
(** Thousands-separated integer, e.g. [1284004 -> "1,284,004"]. *)

val fmt_float : ?decimals:int -> float -> string
(** Fixed-point float with thousands separators in the integer part. *)
