lib/util/texttab.mli:
