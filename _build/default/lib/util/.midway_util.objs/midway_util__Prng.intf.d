lib/util/prng.mli:
