lib/util/minheap.mli:
