lib/util/asciiplot.mli:
