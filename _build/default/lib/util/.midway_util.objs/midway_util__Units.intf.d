lib/util/units.mli:
