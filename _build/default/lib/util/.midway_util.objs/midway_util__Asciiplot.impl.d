lib/util/asciiplot.ml: Array Buffer Float List Printf String Texttab
