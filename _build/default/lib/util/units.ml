let ns_per_us = 1_000
let ns_per_ms = 1_000_000
let ns_per_s = 1_000_000_000

let us_of_ns ns = float_of_int ns /. float_of_int ns_per_us
let ms_of_ns ns = float_of_int ns /. float_of_int ns_per_ms
let s_of_ns ns = float_of_int ns /. float_of_int ns_per_s

let kb_of_bytes b = float_of_int b /. 1024.0
let mb_of_bytes b = float_of_int b /. (1024.0 *. 1024.0)

let pp_time ns =
  if ns < ns_per_us then Printf.sprintf "%d ns" ns
  else if ns < ns_per_ms then Printf.sprintf "%.2f us" (us_of_ns ns)
  else if ns < ns_per_s then Printf.sprintf "%.2f ms" (ms_of_ns ns)
  else Printf.sprintf "%.2f s" (s_of_ns ns)

let pp_bytes b =
  if b < 1024 then Printf.sprintf "%d B" b
  else if b < 1024 * 1024 then Printf.sprintf "%.1f KB" (kb_of_bytes b)
  else Printf.sprintf "%.2f MB" (mb_of_bytes b)
