lib/sched/engine.ml: Array Effect List Midway_util Printf String
