lib/sched/engine.mli:
