type t = int

let locally_dirty = 0

let never_seen = 0

(* [initial] must exceed [never_seen] and be distinct from the dirty
   sentinel; stamps proper start at [make ~time:1] which, for any nprocs,
   is >= nprocs > 1.  Using 1 keeps it below every real stamp. *)
let initial = 1

let make ~time ~proc ~nprocs =
  if time < 1 then invalid_arg "Timestamp.make: time must be >= 1";
  if proc < 0 || proc >= nprocs then invalid_arg "Timestamp.make: proc out of range";
  (time * nprocs) + proc

let time t ~nprocs = t / nprocs

let is_stamp t = t >= initial
