module Space = Midway_memory.Space
module Diff = Midway_vmem.Diff
module Counters = Midway_stats.Counters
module Cost_model = Midway_stats.Cost_model

(* One buffer per bound range, addressed by the range's base.  A twin's
   baseline is the state at this processor's last consistency point on
   the object; for data never synchronized that is the initial (zeroed)
   memory, so a missing twin materializes as zeros. *)
type twin = { ranges : Range.t list; buffers : (int * Bytes.t) list }

type t = { twins : (int, twin) Hashtbl.t }

let create () = { twins = Hashtbl.create 16 }

let zero_twin ranges =
  {
    ranges;
    buffers =
      List.map (fun (r : Range.t) -> (r.Range.addr, Bytes.make r.Range.len '\000')) ranges;
  }

let get_or_create t ~id ~ranges =
  match Hashtbl.find_opt t.twins id with
  | Some tw when tw.ranges = ranges -> tw
  | _ ->
      (* no twin yet, or the binding changed (rebinding) *)
      let tw = zero_twin ranges in
      Hashtbl.replace t.twins id tw;
      tw

let refresh t ~space ~proc ~id ~ranges =
  Hashtbl.replace t.twins id
    {
      ranges;
      buffers =
        List.map
          (fun (r : Range.t) ->
            (r.Range.addr, Space.read_bytes space ~proc r.Range.addr ~len:r.Range.len))
          ranges;
    }

let collect t ~space ~proc ~counters ~cost ~id ~ranges =
  let tw = get_or_create t ~id ~ranges in
  let pieces = ref [] in
  let total_cost = ref 0 in
  List.iter
    (fun (base, twin_buf) ->
      let len = Bytes.length twin_buf in
      let current = Space.read_bytes space ~proc base ~len in
      let runs, transitions = Diff.diff ~old_:twin_buf ~new_:current ~off:0 ~len in
      counters.Counters.twin_compare_bytes <- counters.Counters.twin_compare_bytes + len;
      total_cost := !total_cost + Cost_model.diff_cost_ns cost ~words:(len / 4) ~transitions;
      List.iter
        (fun (r : Diff.run) ->
          pieces :=
            { Payload.addr = base + r.Diff.off; data = Bytes.sub current r.Diff.off r.Diff.len }
            :: !pieces)
        runs;
      (* refresh the twin to the current contents *)
      Diff.apply ~src:current ~dst:twin_buf runs)
    tw.buffers;
  (List.rev !pieces, !total_cost)

let apply_pieces t ~space ~proc ~counters ~cost ~id ~ranges pieces =
  let tw = get_or_create t ~id ~ranges in
  let total_cost = ref 0 in
  List.iter
    (fun (p : Payload.vm_piece) ->
      let len = Bytes.length p.Payload.data in
      Space.write_bytes space ~proc p.Payload.addr p.Payload.data;
      total_cost := !total_cost + Cost_model.copy_cost_ns cost ~bytes:len ~warm:true;
      (* patch the twin so the update is not re-collected as local *)
      List.iter
        (fun (base, buf) ->
          let lo = max p.Payload.addr base in
          let hi = min (p.Payload.addr + len) (base + Bytes.length buf) in
          if lo < hi then begin
            Bytes.blit p.Payload.data (lo - p.Payload.addr) buf (lo - base) (hi - lo);
            counters.Counters.twin_update_bytes <-
              counters.Counters.twin_update_bytes + (hi - lo);
            total_cost := !total_cost + Cost_model.copy_cost_ns cost ~bytes:(hi - lo) ~warm:true
          end)
        tw.buffers)
    pieces;
  !total_cost

let twin_bytes t =
  Hashtbl.fold
    (fun _ tw acc -> acc + List.fold_left (fun a (_, b) -> a + Bytes.length b) 0 tw.buffers)
    t.twins 0
