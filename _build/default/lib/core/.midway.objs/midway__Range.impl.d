lib/core/range.ml: List
