lib/core/runtime.mli: Bytes Config Midway_memory Midway_simnet Midway_stats Range Sync Trace
