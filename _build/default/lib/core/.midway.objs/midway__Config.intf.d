lib/core/config.mli: Midway_stats
