lib/core/timestamp.mli:
