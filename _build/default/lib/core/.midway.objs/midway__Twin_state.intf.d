lib/core/twin_state.mli: Midway_memory Midway_stats Payload Range
