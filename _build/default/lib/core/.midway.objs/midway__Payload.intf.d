lib/core/payload.mli: Bytes Midway_memory Range Timestamp
