lib/core/dirtybits.mli: Config Midway_memory Range Timestamp
