lib/core/config.ml: Midway_stats Printf
