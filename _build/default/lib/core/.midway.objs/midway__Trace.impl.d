lib/core/trace.ml: Array Buffer Format List Midway_util
