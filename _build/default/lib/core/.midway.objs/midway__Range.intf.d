lib/core/range.mli:
