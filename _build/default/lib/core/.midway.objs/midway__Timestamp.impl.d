lib/core/timestamp.ml:
