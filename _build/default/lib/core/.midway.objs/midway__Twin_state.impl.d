lib/core/twin_state.ml: Bytes Hashtbl List Midway_memory Midway_stats Midway_vmem Payload Range
