lib/core/dirtybits.ml: Array Bytes Config List Midway_memory Range Timestamp
