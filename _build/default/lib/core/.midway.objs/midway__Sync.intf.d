lib/core/sync.mli: Hashtbl Payload Range Timestamp
