lib/core/sync.ml: Array Hashtbl Payload Range Timestamp
