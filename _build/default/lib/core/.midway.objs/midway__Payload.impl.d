lib/core/payload.ml: Bytes List Midway_memory Range Timestamp
