lib/core/vm_state.mli: Midway_memory Midway_stats Midway_vmem Payload Range
