(** The "twinning and differencing without write detection" alternative
    (paper, section 3.5).

    This strategy needs neither software dirtybits nor page faults: every
    shared data item bound to a synchronization object is *twinned* on any
    processor that synchronizes on it, and at each synchronization point
    all bound data is compared word-by-word against its twin to find the
    modifications.  The paper predicts its weakness — the comparison cost
    is proportional to the amount of *bound* data rather than the amount
    of dirty data, and the twins double the storage — and the ablation
    bench measures exactly that.

    Twins are kept per (processor, synchronization object).  A twin's
    baseline is the processor's last consistency point on the object; for
    data never synchronized the baseline is the initial zeroed memory, so
    a missing (or rebinding-invalidated) twin materializes as zeros.
    Incarnation history reuses the VM-DSM update log in the runtime, as
    the paper notes it must ("this approach would still require
    management of the update incarnations"). *)

type t

val create : unit -> t

val collect :
  t ->
  space:Midway_memory.Space.t ->
  proc:int ->
  counters:Midway_stats.Counters.t ->
  cost:Midway_stats.Cost_model.t ->
  id:int ->
  ranges:Range.t list ->
  Payload.vm_piece list * int
(** Compare the bound ranges against this processor's twin for object
    [id], refresh the twin, and return the modified pieces plus the
    comparison cost (charged for every bound byte — the point of the
    ablation). *)

val refresh : t -> space:Midway_memory.Space.t -> proc:int -> id:int -> ranges:Range.t list -> unit
(** Re-snapshot the twin from current memory (after a diff-free full
    transfer). *)

val apply_pieces :
  t ->
  space:Midway_memory.Space.t ->
  proc:int ->
  counters:Midway_stats.Counters.t ->
  cost:Midway_stats.Cost_model.t ->
  id:int ->
  ranges:Range.t list ->
  Payload.vm_piece list ->
  int
(** Apply incoming pieces at the requester, patching its twin for object
    [id] so the update is not re-collected as a local modification.
    Returns the apply cost. *)

val twin_bytes : t -> int
(** Total twin storage held — the section 3.5 storage-cost argument. *)
