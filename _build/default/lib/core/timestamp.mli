(** Dirtybit timestamps.

    A dirtybit in RT-DSM is really a timestamp recording the most recent
    modification of its cache line (paper, section 3.2).  Timestamps are
    Lamport-clock values; to make stamps from different processors totally
    ordered (so that merging concurrent barrier updates is deterministic),
    a stamp encodes the pair [(lamport_time, proc)] as
    [lamport_time * nprocs + proc].

    Two small values are reserved:
    - {!locally_dirty} (0): the store template's sentinel — the line was
      modified locally and will be stamped lazily at the next transfer of
      its guarding synchronization object (paper, footnote 1);
    - {!initial}: the timestamp of never-written data, greater than any
      processor's "never seen anything" cursor of 0, so a first acquire
      transfers all bound data as the paper specifies. *)

type t = int

val locally_dirty : t
(** 0 — the sentinel the write template stores. *)

val never_seen : t
(** The cursor of a processor that has not seen the data at all; strictly
    below {!initial}. *)

val initial : t
(** Timestamp carried by allocated-but-never-transferred lines. *)

val make : time:int -> proc:int -> nprocs:int -> t
(** Encode a stamp; [time] must be at least 1. *)

val time : t -> nprocs:int -> int
(** Lamport component of a stamp. *)

val is_stamp : t -> bool
(** True for real stamps (neither sentinel): [t >= initial]. *)
