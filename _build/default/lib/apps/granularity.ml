module R = Midway.Runtime
module Range = Midway.Range

type params = { total_bytes : int; items : int; rounds : int }

(* value layout: round | item | word, wide enough for any sweep point *)
let encode ~round ~item ~word = (((round * 1_000_000) + item) * 100_000) + word

let decode v = (v / 1_000_000 / 100_000, v / 100_000 mod 1_000_000, v mod 100_000)

let default = { total_bytes = 256 * 1024; items = 64; rounds = 4 }

let run cfg { total_bytes; items; rounds } =
  if cfg.Midway.Config.nprocs < 2 then invalid_arg "Granularity.run: needs 2 processors";
  let item_bytes = total_bytes / items / 8 * 8 in
  if item_bytes < 8 then invalid_arg "Granularity.run: items too small";
  let words = item_bytes / 8 in
  let machine = R.create cfg in
  (* the unit of coherency follows the object size: the largest power of
     two no bigger than the item (capped at a page) *)
  let line =
    let cap = min item_bytes 4096 in
    let rec down p = if p <= cap then p else down (p / 2) in
    down 4096
  in
  let base = Array.init items (fun _ -> R.alloc machine ~line_size:line item_bytes) in
  let locks = Array.init items (fun i -> R.new_lock machine [ Range.v base.(i) item_bytes ]) in
  let done_bar = R.new_barrier machine [] in
  let ok = ref true in
  R.run machine (fun c ->
      let me = R.id c in
      for round = 1 to rounds do
        if me = 0 then
          for i = 0 to items - 1 do
            R.acquire c locks.(i);
            for w = 0 to words - 1 do
              R.write_int c (base.(i) + (w * 8)) (encode ~round ~item:i ~word:w)
            done;
            R.work_cycles c (words * 4);
            R.release c locks.(i)
          done
        else if me = 1 then
          for i = 0 to items - 1 do
            R.acquire c locks.(i);
            for w = 0 to words - 1 do
              let v = R.read_int c (base.(i) + (w * 8)) in
              (* the consumer must observe some producer round intact
                 (acquisition order can lag by a round, never corrupt) *)
              let r, item, word = decode v in
              if item <> i || word <> w || r < 1 || r > rounds then ok := false
            done;
            R.work_cycles c (words * 2);
            R.release c locks.(i)
          done;
        ignore round
      done;
      R.barrier c done_bar);
  (* final values at each lock owner must be well-formed for their item
     (the producer and consumer interleave loosely, so the final owner may
     hold any round's value — corruption, not staleness, is the failure) *)
  List.iter
    (fun i ->
      let owner = locks.(i).Midway.Sync.owner in
      let v = Common.read_int_direct machine ~proc:owner base.(i) in
      let r, item, word = decode v in
      if item <> i || word <> 0 || r < 1 || r > rounds then ok := false)
    (List.init items (fun i -> i));
  Outcome.v ~app:"granularity" ~machine ~ok:!ok
    ~notes:
      [
        Printf.sprintf "%d items x %d B, %d rounds, %d B lines" items item_bytes rounds line;
      ]
