(** Sparse Cholesky factorization: the fine-grained benchmark (SPLASH).

    Given a positive definite matrix [A], finds the lower triangular [L]
    with [A = L L^T].  The matrix is the 5-point Laplacian of a [k x k]
    grid (deterministically perturbed for diagonal dominance) — the
    classic sparse SPD test problem, substituting for the paper's
    proprietary SPLASH input matrices.

    The build has two stages, as a real sparse solver does:

    - {e symbolic analysis} (host-side, replicated read-only): the fill
      pattern of [L] and the update counts per column, via boolean
      column-merge elimination;
    - {e numeric factorization} (on the DSM): a right-looking fan-out
      scheme.  Each column's values plus a remaining-updates counter are
      bound to a per-column lock; a worker pops a ready column from the
      shared task queue, performs [cdiv], then applies [cmod] updates to
      every affected column under that column's lock, enqueueing columns
      whose counters reach zero.

    Column updates arrive in a data-dependent order, so the result is
    verified against the sequential oracle within floating-point
    tolerance rather than bitwise. *)

type params = { grid : int }

val default : params
(** A 32 x 32 grid: n = 1,024 columns. *)

val scaled : float -> params

val run : Midway.Config.t -> params -> Outcome.t

(** {1 Exposed for tests} *)

type symbolic = {
  n : int;
  pattern : int array array;  (** per column: sorted rows of L (diagonal first) *)
  nmod : int array;  (** per column: number of cmod updates it receives *)
}

val laplacian_entry : int -> int -> int -> float
(** [laplacian_entry k i j]: the test matrix entry [A(i,j)] on a [k x k]
    grid (0 outside the pattern). *)

val symbolic_analyse : int -> symbolic
(** Fill pattern of the [k x k] grid problem. *)

val oracle_factor : int -> symbolic -> float array array
(** Sequential right-looking factorization; per-column value arrays
    aligned with [pattern]. *)
