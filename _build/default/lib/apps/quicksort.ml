module R = Midway.Runtime
module Range = Midway.Range

type params = { n : int; threshold : int; slots : int }

let default = { n = 250_000; threshold = 1_000; slots = 1_024 }

let scaled f =
  let n = max 256 (int_of_float (250_000.0 *. f)) in
  let threshold = max 16 (int_of_float (1_000.0 *. f)) in
  { n; threshold; slots = max 128 (4 * n / threshold) }

let input_value seed i =
  let h = (i * 2654435761) + seed in
  (h lxor (h lsr 13)) land 0xFFFFFF

(* Shared-memory layout of the task-queue state (all bound to the queue
   lock), in 32-bit words so the whole structure fits one VM page:
   [0] head  [1] count  [2] outstanding
   [3 .. 3+slots) ring buffer of ready slot indices.
   Task slots themselves are never recycled: each processor draws from
   its own private pool, so slot allocation needs no shared state. *)
let q_head = 0

let q_count = 1

let q_outstanding = 2

let run cfg { n; threshold; slots } =
  let machine = R.create cfg in
  let nprocs = cfg.Midway.Config.nprocs in
  let seed = cfg.Midway.Config.seed in
  (* Element-size cache lines: task boundaries fall at arbitrary indices,
     so any larger unit of coherency would false-share across segment
     edges — precisely the tunability the paper credits to RT-DSM. *)
  let array = R.alloc machine ~line_size:8 (n * 8) in
  let elem i = array + (i * 8) in
  (* Task descriptors: 16 bytes (lo, hi), one cache line each. *)
  let descr = R.alloc machine ~line_size:16 (slots * 16) in
  let descr_addr s = descr + (s * 16) in
  let qwords = 3 + slots in
  let qstate = R.alloc machine ~line_size:8 (qwords * 4) in
  let qaddr w = qstate + (w * 4) in
  let progress = R.alloc machine ~private_:true (nprocs * 8) in
  let queue_lock = R.new_lock machine [ Range.v qstate (qwords * 4) ] in
  (* Each slot lock starts at the processor whose private pool it
     belongs to, so claiming a fresh slot is a local acquisition. *)
  let span = slots / nprocs in
  let slot_lock =
    Array.init slots (fun s ->
        R.new_lock machine
          ~owner:(min (nprocs - 1) (s / span))
          [ Range.v (descr_addr s) 16 ])
  in
  let start_bar = R.new_barrier machine [] in
  let done_bar = R.new_barrier machine [] in
  (* Host-side log of final segments, for verification only. *)
  let segments = ref [] in
  R.run machine (fun c ->
      let me = R.id c in
      let cycles = R.work_cycles c in
      (* --- queue helpers (caller must hold the queue lock) --- *)
      let q_get w = Int32.to_int (R.read_i32 c (qaddr w)) in
      let q_set w v = R.write_i32 c (qaddr w) (Int32.of_int v) in
      let push_ready s =
        let head = q_get q_head and count = q_get q_count in
        q_set (3 + ((head + count) mod slots)) s;
        q_set q_count (count + 1)
      in
      let pop_ready () =
        let count = q_get q_count in
        if count = 0 then None
        else begin
          let head = q_get q_head in
          let s = q_get (3 + (head mod slots)) in
          q_set q_head (head + 1);
          q_set q_count (count - 1);
          Some s
        end
      in
      (* --- private slot pool: processor p owns [p*span, p*span+span) --- *)
      let next_slot = ref ((me * span) + if me = 0 then 1 else 0) in
      let fresh_slot () =
        if !next_slot >= (me + 1) * span then failwith "quicksort: out of task slots";
        let s = !next_slot in
        incr next_slot;
        s
      in
      (* completions are folded into the next queue-lock critical section *)
      let finished = ref 0 in
      if me = 0 then begin
        (* Build the input and the root task (slot 0). *)
        R.acquire c slot_lock.(0);
        for i = 0 to n - 1 do
          R.write_int c (elem i) (input_value seed i)
        done;
        cycles (n * 4);
        R.write_int c (descr_addr 0) 0;
        R.write_int c (descr_addr 0 + 8) n;
        R.rebind c slot_lock.(0) [ Range.v (descr_addr 0) 16; Range.v array (n * 8) ];
        R.release c slot_lock.(0);
        R.acquire c queue_lock;
        q_set q_head 0;
        q_set q_count 0;
        q_set q_outstanding 1;
        push_ready 0;
        R.release c queue_lock
      end;
      R.barrier c start_bar;
      let tasks_done = ref 0 in
      (* --- sorting primitives over the shared array --- *)
      let bubblesort lo hi =
        (* The paper's leaf sort: bubble sort with its compare-and-swap
           inner loop, run on a private copy (private memory is not
           instrumented), with a single write-back of the sorted data. *)
        let len = hi - lo in
        let buf = Array.init len (fun i -> R.read_int c (elem (lo + i))) in
        for last = len - 1 downto 1 do
          for i = 0 to last - 1 do
            if buf.(i) > buf.(i + 1) then begin
              let t = buf.(i) in
              buf.(i) <- buf.(i + 1);
              buf.(i + 1) <- t
            end
          done;
          cycles (last * 6)
        done;
        Array.iteri (fun i v -> R.write_int c (elem (lo + i)) v) buf
      in
      let partition lo hi =
        (* Hoare partition with a median-of-three pivot; returns m with
           lo < m < hi such that [lo,m) <= pivot <= [m,hi). *)
        let mid = (lo + hi) / 2 in
        let a = R.read_int c (elem lo)
        and b = R.read_int c (elem mid)
        and d = R.read_int c (elem (hi - 1)) in
        let pivot = max (min a b) (min (max a b) d) in
        let i = ref (lo - 1) and j = ref hi in
        let m = ref 0 in
        let continue = ref true in
        while !continue do
          incr i;
          while R.read_int c (elem !i) < pivot do
            incr i
          done;
          decr j;
          while R.read_int c (elem !j) > pivot do
            decr j
          done;
          if !i >= !j then begin
            m := !j + 1;
            continue := false
          end
          else begin
            let vi = R.read_int c (elem !i) and vj = R.read_int c (elem !j) in
            R.write_int c (elem !i) vj;
            R.write_int c (elem !j) vi
          end
        done;
        cycles ((hi - lo) * 6);
        (* Guarantee progress on degenerate inputs. *)
        if !m <= lo then lo + 1 else if !m >= hi then hi - 1 else !m
      in
      (* Process a task we hold (slot lock acquired): keep splitting,
         handing right halves to fresh slots, until the left half is small
         enough to bubble sort. *)
      let process_task s =
        let lo = ref (R.read_int c (descr_addr s)) in
        let hi = ref (R.read_int c (descr_addr s + 8)) in
        while !hi - !lo > threshold do
          let m = partition !lo !hi in
          (* Hand the right half to a slot from the private pool. *)
          let s2 = fresh_slot () in
          R.acquire c slot_lock.(s2);
          R.write_int c (descr_addr s2) m;
          R.write_int c (descr_addr s2 + 8) !hi;
          R.rebind c slot_lock.(s2)
            [ Range.v (descr_addr s2) 16; Range.v (elem m) ((!hi - m) * 8) ];
          R.release c slot_lock.(s2);
          R.acquire c queue_lock;
          q_set q_outstanding (q_get q_outstanding + 1);
          push_ready s2;
          R.release c queue_lock;
          (* Keep the left half on this slot. *)
          R.write_int c (descr_addr s) !lo;
          R.write_int c (descr_addr s + 8) m;
          R.rebind c slot_lock.(s) [ Range.v (descr_addr s) 16; Range.v (elem !lo) ((m - !lo) * 8) ];
          hi := m
        done;
        bubblesort !lo !hi;
        segments := (!lo, !hi, me) :: !segments;
        incr tasks_done;
        incr finished;
        (* Misclassified private progress write, as real programs show. *)
        R.write_int c (progress + (me * 8)) !tasks_done;
        (* Shrink the binding to the descriptor: the sorted data stays
           here, and nothing should drag it around later. *)
        R.rebind c slot_lock.(s) [ Range.v (descr_addr s) 16 ];
        R.release c slot_lock.(s)
      in
      let running = ref true in
      (* Exponential backoff while the queue is starved (e.g. during the
         serial first partitions): polling the queue transfers its lock
         and, under VM-DSM, refaults its page every time. *)
      let backoff = ref 1_000_000 in
      while !running do
        R.acquire c queue_lock;
        if !finished > 0 then begin
          q_set q_outstanding (q_get q_outstanding - !finished);
          finished := 0
        end;
        match pop_ready () with
        | Some s ->
            R.release c queue_lock;
            backoff := 1_000_000;
            R.acquire c slot_lock.(s);
            process_task s
        | None ->
            let outstanding = q_get q_outstanding in
            R.release c queue_lock;
            if outstanding = 0 then running := false
            else begin
              R.work_ns c !backoff;
              backoff := min (2 * !backoff) 64_000_000
            end
      done;
      R.barrier c done_bar);
  (* --- verification: the final segments partition the array, each is
     sorted in its finisher's copy, and the multiset is preserved. --- *)
  let segs = List.sort compare !segments in
  let ok = ref true in
  let note = ref "" in
  let fail msg =
    if !ok then note := msg;
    ok := false
  in
  let cursor = ref 0 in
  let last_max = ref min_int in
  let sum = ref 0 and sum0 = ref 0 in
  List.iter
    (fun (lo, hi, p) ->
      if lo <> !cursor then fail (Printf.sprintf "gap: expected segment at %d, got %d" !cursor lo);
      cursor := hi;
      let prev = ref min_int in
      for i = lo to hi - 1 do
        let v = Common.read_int_direct machine ~proc:p (elem i) in
        sum := !sum + v;
        if v < !prev then fail (Printf.sprintf "unsorted at %d" i);
        prev := max !prev v
      done;
      if !last_max > Common.read_int_direct machine ~proc:p (elem lo) then
        fail (Printf.sprintf "segment boundary disorder at %d" lo);
      last_max := !prev)
    segs;
  if !cursor <> n then fail "segments do not cover the array";
  for i = 0 to n - 1 do
    sum0 := !sum0 + input_value seed i
  done;
  if !sum <> !sum0 then fail "element multiset changed";
  if not !ok then Printf.eprintf "quicksort: %s\n%!" !note;
  Outcome.v ~app:"quicksort" ~machine ~ok:!ok
    ~notes:
      [
        Printf.sprintf "n=%d, threshold=%d, %d leaf segments" n threshold (List.length segs);
      ]
