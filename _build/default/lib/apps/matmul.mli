(** Matrix multiply: the coarse-grained benchmark (paper, section 4).

    Multiplies two [n x n] double matrices (the paper uses 512 x 512).
    The data is partitioned to minimize sharing — each processor owns a
    band of result rows — and every word of the result is written, which
    lets VM-DSM amortize each page fault over a full page of stores.
    This is the expected best case for VM-DSM and worst case for RT-DSM.

    Decomposition: [A]'s band [p] and [C]'s band [p] are bound to a
    per-processor lock; processor 0 initializes [A] through the DSM, each
    worker acquires its lock (receiving its operands), computes, releases,
    and processor 0 reacquires all locks to gather the result.  [B] is
    needed read-only by everyone and is initialized identically on every
    processor before the run (documented substitution: Midway programs
    preload such read-only data; shipping it would only add a constant to
    both systems). *)

type params = { n : int; verify_samples : int }

val default : params
(** The paper's 512 x 512, with 2,000 sampled result checks. *)

val scaled : float -> params
(** [scaled f] shrinks the matrix dimension to [max 16 (512 * f)]. *)

val run : Midway.Config.t -> params -> Outcome.t
