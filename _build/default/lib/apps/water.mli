(** Water: the N-body molecular dynamics benchmark (SPLASH).

    Evaluates forces and potentials for a system of water molecules in a
    liquid state (the paper: 343 molecules, 5 steps, medium-grained
    sharing).  Each molecule is a 576-byte record (72 doubles: positions,
    velocities, forces and higher-order terms for three atoms).  The
    molecule array is bound to the phase barrier; molecules are
    partitioned over processors, owner-computes.

    The port includes the optimization the paper takes from the SPLASH
    report: force contributions are accumulated in *private* memory
    during a time step and the shared molecule records are updated once
    per step, so only one consistency point per step is required.  A
    global potential-energy accumulator guarded by a lock provides the
    per-step lock traffic.

    The simplified pair interaction keeps the arithmetic deterministic
    and the evaluation order identical to the sequential oracle, so
    positions and velocities verify bitwise. *)

type sync_style =
  | Barrier_phases
      (** one consistency point per step: the molecule array is bound to
          the phase barrier (our default port) *)
  | Molecule_locks
      (** SPLASH water's structure: every record bound to its own lock;
          owners update under exclusive acquisitions, the force phase
          fetches foreign molecules through non-exclusive (read)
          acquisitions.  Exercises fine-grained lock traffic and, under
          VM-DSM, the incarnation redundancy the paper measured. *)

type params = { molecules : int; steps : int; sync : sync_style }

val default : params
(** 343 molecules, 5 steps, barrier phases. *)

val scaled : float -> params

val run : Midway.Config.t -> params -> Outcome.t
