type t = {
  app : string;
  machine : Midway.Runtime.t;
  ok : bool;
  notes : string list;
}

let v ~app ~machine ~ok ~notes = { app; machine; ok; notes }

let elapsed_s t = Midway_util.Units.s_of_ns (Midway.Runtime.elapsed_ns t.machine)

let avg_counters t = Midway_stats.Counters.average (Midway.Runtime.all_counters t.machine)

let data_received_kb_per_proc t =
  let c = avg_counters t in
  Midway_util.Units.kb_of_bytes c.Midway_stats.Counters.data_received_bytes

let total_data_mb t =
  let c = Midway_stats.Counters.total (Midway.Runtime.all_counters t.machine) in
  Midway_util.Units.mb_of_bytes c.Midway_stats.Counters.data_received_bytes

let pp fmt t =
  Format.fprintf fmt "%s: %s, %.3f s simulated, %.1f KB/proc received%s" t.app
    (if t.ok then "OK" else "FAILED")
    (elapsed_s t) (data_received_kb_per_proc t)
    (match t.notes with [] -> "" | notes -> "\n  " ^ String.concat "\n  " notes)
