(** Shared scaffolding for the benchmark applications. *)

val band : n:int -> nprocs:int -> int -> int * int
(** [band ~n ~nprocs p] is processor [p]'s contiguous share [lo, hi)
    of [0, n), distributing the remainder over the first processors. *)

val owner_of : n:int -> nprocs:int -> int -> int
(** Inverse of {!band}: which processor owns index [i]. *)

val approx_equal : ?rel:float -> ?abs:float -> float -> float -> bool
(** Tolerant float comparison for oracle checks (defaults
    [rel = 1e-9], [abs = 1e-12]). *)

val read_f64_direct : Midway.Runtime.t -> proc:int -> int -> float
(** Read a value from one processor's physical copy, outside the simulated
    timeline — verification only. *)

val read_int_direct : Midway.Runtime.t -> proc:int -> int -> int

val cycles_flop : int
(** Modelled cycles per floating point operation on the 25 MHz R3000
    (no FP pipelining, includes the surrounding loads): 8. *)
