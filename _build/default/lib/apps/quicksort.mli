(** Parallel quicksort: the dynamic lock re-binding benchmark.

    Sorts an array of integers (the paper uses 250,000) with a shared
    task queue: workers pop a task, partition its subarray, push one half
    back as a new task and keep the other, switching to a bubble sort
    below a threshold (1,000 elements in the paper).  The array is
    partitioned dynamically, so the lock binding the data to a task-queue
    element is *rebound* to a new address range for every task created —
    the pattern that favours VM-DSM: on a rebound lock the incarnation
    bump ships all bound data without diffing, while RT-DSM still scans
    dirtybits on every transfer (paper, section 4).

    The program does little computation between writes to shared memory:
    the inner loop compares and swaps adjacent elements. *)

type params = { n : int; threshold : int; slots : int }

val default : params
(** 250,000 integers, threshold 1,000, 1,024 task slots. *)

val scaled : float -> params

val run : Midway.Config.t -> params -> Outcome.t
