module R = Midway.Runtime
module Range = Midway.Range

type params = { n : int; iterations : int }

let default = { n = 1000; iterations = 25 }

let scaled f =
  {
    n = max 16 (int_of_float (1000.0 *. f));
    iterations = max 4 (int_of_float (25.0 *. f));
  }

(* Deterministic pseudo-random interior; fixed edge temperatures. *)
let initial n i j =
  if i = 0 then 100.0
  else if i = n - 1 then 0.0
  else if j = 0 || j = n - 1 then 50.0
  else float_of_int (((i * 7919) + (j * 104729)) mod 1000) /. 10.0

(* One red-black Gauss-Seidel update; [parity] selects the phase. *)
let update get i j parity =
  if (i + j) land 1 = parity then
    Some (0.25 *. (get (i - 1) j +. get (i + 1) j +. get i (j - 1) +. get i (j + 1)))
  else None

(* Sequential oracle with the same arithmetic and phase order. *)
let oracle { n; iterations } =
  let m = Array.init n (fun i -> Array.init n (fun j -> initial n i j)) in
  for _ = 1 to iterations do
    List.iter
      (fun parity ->
        for i = 1 to n - 2 do
          for j = 1 to n - 2 do
            match update (fun i j -> m.(i).(j)) i j parity with
            | Some v -> m.(i).(j) <- v
            | None -> ()
          done
        done)
      [ 0; 1 ]
  done;
  m

let run cfg ({ n; iterations } as params) =
  let machine = R.create cfg in
  let nprocs = cfg.Midway.Config.nprocs in
  if n / nprocs < 3 then invalid_arg "Sor.run: bands too narrow for this processor count";
  let row_bytes = n * 8 in
  (* Per-row allocation: partition-edge rows shared, interior private. *)
  let shared_row r =
    if nprocs = 1 then false
    else begin
      let p = Common.owner_of ~n ~nprocs r in
      let lo, hi = Common.band ~n ~nprocs p in
      (r = lo && p > 0) || (r = hi - 1 && p < nprocs - 1)
    end
  in
  let row_addr =
    Array.init n (fun r -> R.alloc machine ~line_size:64 ~private_:(not (shared_row r)) row_bytes)
  in
  let addr i j = row_addr.(i) + (j * 8) in
  (* One two-party barrier per neighbouring pair, binding the two edge
     rows the pair exchanges. *)
  let pair_bar =
    Array.init (max 0 (nprocs - 1)) (fun p ->
        let _, hi = Common.band ~n ~nprocs p in
        R.new_barrier machine ~participants:2 ~manager:p
          [ Range.v row_addr.(hi - 1) row_bytes; Range.v row_addr.(hi) row_bytes ])
  in
  let done_bar = R.new_barrier machine [] in
  let flops_per_update = 4 in
  R.run machine (fun c ->
      let me = R.id c in
      let lo, hi = Common.band ~n ~nprocs me in
      let write i j v =
        if shared_row i then R.write_f64 c (addr i j) v else R.write_f64_private c (addr i j) v
      in
      (* Initialize my band through the classified stores, then exchange
         edge rows once so iteration 1 reads the true initial values. *)
      for i = lo to hi - 1 do
        for j = 0 to n - 1 do
          write i j (initial n i j)
        done;
        R.work_cycles c (n * 2)
      done;
      let exchange () =
        (* Linear chain: settle the left pair first, then the right. *)
        if me > 0 then R.barrier c pair_bar.(me - 1);
        if me < nprocs - 1 then R.barrier c pair_bar.(me)
      in
      exchange ();
      for _ = 1 to iterations do
        List.iter
          (fun parity ->
            let first = max lo 1 and last = min (hi - 1) (n - 2) in
            for i = first to last do
              let updates = ref 0 in
              for j = 1 to n - 2 do
                match update (fun i j -> R.read_f64 c (addr i j)) i j parity with
                | Some v ->
                    incr updates;
                    write i j v
                | None -> ()
              done;
              R.work_cycles c (!updates * flops_per_update * Common.cycles_flop)
            done;
            exchange ())
          [ 0; 1 ]
      done;
      R.barrier c done_bar);
  (* Verify every element of every band against the oracle, bitwise. *)
  let m = oracle params in
  let ok = ref true in
  let bad = ref 0 in
  for i = 0 to n - 1 do
    let p = Common.owner_of ~n ~nprocs i in
    for j = 0 to n - 1 do
      let got = Common.read_f64_direct machine ~proc:p (addr i j) in
      if got <> m.(i).(j) then begin
        if !bad = 0 then
          Printf.eprintf "sor mismatch: [%d,%d]=%.17g expect %.17g\n%!" i j got m.(i).(j);
        incr bad;
        ok := false
      end
    done
  done;
  Outcome.v ~app:"sor" ~machine ~ok:!ok
    ~notes:
      [
        Printf.sprintf "n=%d, %d iterations, %d mismatches vs sequential oracle" n iterations
          !bad;
      ]
