(** The result of one application run: the machine (for its counters and
    network statistics), the verification verdict and human-readable
    notes.

    Every application verifies its own output against a sequential oracle
    computed outside the simulated machine, so a consistency-protocol bug
    shows up as [ok = false] rather than as a silently wrong benchmark
    number. *)

type t = {
  app : string;
  machine : Midway.Runtime.t;
  ok : bool;
  notes : string list;
}

val v : app:string -> machine:Midway.Runtime.t -> ok:bool -> notes:string list -> t

val elapsed_s : t -> float
(** Simulated execution time in seconds. *)

val avg_counters : t -> Midway_stats.Counters.t
(** Per-processor average counters (the paper's Table 2 convention). *)

val data_received_kb_per_proc : t -> float
(** Application payload applied per processor, KB — the paper's "data
    transferred" metric. *)

val total_data_mb : t -> float
(** Total application payload moved, MB (Figure 2's data-transferred
    bars). *)

val pp : Format.formatter -> t -> unit
