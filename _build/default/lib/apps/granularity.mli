(** A controlled sharing-granularity sweep (extension experiment).

    The paper's conclusion: "The overhead incurred using runtime write
    detection does not depend on the granularity of sharing, allowing
    runtime detection to more efficiently support fine-grained
    applications."  This synthetic workload makes that claim measurable:
    a fixed volume of shared data is divided into [items] independent
    objects, each guarded by its own lock, and ping-ponged between a
    producer and a consumer.  Sweeping the item count (total bytes
    constant) moves the workload from coarse-grained (few big objects) to
    fine-grained (many small objects); the harness reports detection cost
    per backend at each point.

    Under RT-DSM the unit of coherency follows the item size, so cost
    tracks the bytes written.  Under VM-DSM every item transfer pays
    page-granularity machinery, so cost explodes as items shrink below a
    page. *)

type params = {
  total_bytes : int;  (** shared volume, constant across the sweep *)
  items : int;  (** number of independently guarded objects *)
  rounds : int;  (** producer/consumer iterations *)
}

val default : params
(** 256 KB in 64 items, 4 rounds. *)

val run : Midway.Config.t -> params -> Outcome.t
(** Runs on 2 processors: processor 0 writes every item (under its lock),
    processor 1 reads and checks every item, [rounds] times. *)
