(** Red-black successive over-relaxation: the medium-grained benchmark.

    Computes the steady-state temperature of a rectangular plate with
    fixed edge temperatures, iterating a red-black Gauss-Seidel update
    over an [n x n] matrix (the paper uses 1000 x 1000 for 25 iterations).
    Red and black elements are adjacent in memory, so each phase rewrites
    roughly every cache line and every page of the rows it touches — the
    reason nearly all bound data is dirty at collection time (the paper's
    98.1%) and the reason VM-DSM hits the expensive alternating-word diff
    case.

    Rows are banded across processors.  Only the rows at partition edges
    are shared (the paper: "only data at the edges of each partition are
    shared"); interior rows are compiler-classified private and pay no
    write-detection cost.  Each pair of neighbouring processors exchanges
    its edge rows through a two-party barrier after every phase; the
    interior is initialized to pseudo-random values to maximize the
    changed elements per iteration, as in the paper. *)

type params = { n : int; iterations : int }

val default : params
(** 1000 x 1000, 25 iterations. *)

val scaled : float -> params

val run : Midway.Config.t -> params -> Outcome.t
