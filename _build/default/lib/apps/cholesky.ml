module R = Midway.Runtime
module Range = Midway.Range

type params = { grid : int }

let default = { grid = 32 }

(* Work grows like grid^4, so scale the grid edge by sqrt f to keep the
   runtime proportional to the other applications' scaling. *)
let scaled f = { grid = max 6 (int_of_float (32.0 *. sqrt f)) }

(* --- the test problem: perturbed 5-point grid Laplacian --------------- *)

let laplacian_entry k i j =
  let n = k * k in
  if i < 0 || j < 0 || i >= n || j >= n then invalid_arg "laplacian_entry";
  if i = j then 16.0 +. float_of_int (j mod 3)
  else begin
    let ri = i / k and ci = i mod k and rj = j / k and cj = j mod k in
    let adjacent = abs (ri - rj) + abs (ci - cj) = 1 in
    if adjacent then -1.0 -. (0.5 *. float_of_int ((i + j) mod 2)) else 0.0
  end

let grid_pattern k j =
  (* Lower-triangular structure of column j of A (diagonal included). *)
  let n = k * k in
  let neighbours = [ j; j + 1; j + k ] in
  List.filter
    (fun i -> i >= j && i < n && (i = j || laplacian_entry k i j <> 0.0))
    neighbours

(* --- symbolic analysis ------------------------------------------------ *)

type symbolic = {
  n : int;
  pattern : int array array;
  nmod : int array;
}

let symbolic_analyse k =
  let n = k * k in
  let sets = Array.make n [||] in
  (* updaters.(j) = columns k < j with L(j,k) <> 0, discovered as we go *)
  let updaters = Array.make n [] in
  let mark = Array.make n (-1) in
  for j = 0 to n - 1 do
    let members = ref [] in
    let add i =
      if i >= j && mark.(i) <> j then begin
        mark.(i) <- j;
        members := i :: !members
      end
    in
    List.iter add (grid_pattern k j);
    List.iter (fun c -> Array.iter (fun i -> if i > j then add i) sets.(c)) updaters.(j);
    let sorted = List.sort compare !members in
    let arr = Array.of_list sorted in
    sets.(j) <- arr;
    Array.iter (fun i -> if i > j then updaters.(i) <- j :: updaters.(i)) arr
  done;
  { n; pattern = sets; nmod = Array.map List.length updaters }

(* --- sequential oracle ------------------------------------------------ *)

let oracle_factor k sym =
  let n = sym.n in
  let vals = Array.map (fun p -> Array.make (Array.length p) 0.0) sym.pattern in
  let pos = Array.map (fun _ -> Hashtbl.create 8) sym.pattern in
  Array.iteri
    (fun j p ->
      Array.iteri
        (fun idx i ->
          Hashtbl.replace pos.(j) i idx;
          vals.(j).(idx) <- laplacian_entry k i j)
        p)
    sym.pattern;
  for j = 0 to n - 1 do
    (* cdiv *)
    let d = sqrt vals.(j).(0) in
    vals.(j).(0) <- d;
    for idx = 1 to Array.length vals.(j) - 1 do
      vals.(j).(idx) <- vals.(j).(idx) /. d
    done;
    (* cmod: column j updates every later column in its pattern *)
    for kidx = 1 to Array.length sym.pattern.(j) - 1 do
      let target = sym.pattern.(j).(kidx) in
      let ljk = vals.(j).(kidx) in
      for idx = kidx to Array.length sym.pattern.(j) - 1 do
        let i = sym.pattern.(j).(idx) in
        let off = Hashtbl.find pos.(target) i in
        vals.(target).(off) <- vals.(target).(off) -. (vals.(j).(idx) *. ljk)
      done
    done
  done;
  vals

(* --- the parallel DSM program ----------------------------------------- *)

let q_head = 0

let q_count = 1

let q_done = 2

let run cfg { grid = k } =
  let machine = R.create cfg in
  let sym = symbolic_analyse k in
  let n = sym.n in
  let pos = Array.map (fun _ -> Hashtbl.create 8) sym.pattern in
  Array.iteri
    (fun j p -> Array.iteri (fun idx i -> Hashtbl.replace pos.(j) i idx) p)
    sym.pattern;
  (* Column storage: one remaining-updates counter word followed by the
     column values, fine-grained (8-byte) cache lines. *)
  let col_base =
    Array.init n (fun j -> R.alloc machine ~line_size:8 ((1 + Array.length sym.pattern.(j)) * 8))
  in
  let counter_addr j = col_base.(j) in
  let value_addr j idx = col_base.(j) + ((1 + idx) * 8) in
  let col_lock =
    Array.init n (fun j ->
        R.new_lock machine [ Range.v col_base.(j) ((1 + Array.length sym.pattern.(j)) * 8) ])
  in
  let qwords = 3 + n in
  let qstate = R.alloc machine ~line_size:8 (qwords * 8) in
  let qaddr w = qstate + (w * 8) in
  let queue_lock = R.new_lock machine [ Range.v qstate (qwords * 8) ] in
  let start_bar = R.new_barrier machine [] in
  let done_bar = R.new_barrier machine [] in
  R.run machine (fun c ->
      let me = R.id c in
      let cycles = R.work_cycles c in
      let q_get w = R.read_int c (qaddr w) in
      let q_set w v = R.write_int c (qaddr w) v in
      let push_ready j =
        let head = q_get q_head and count = q_get q_count in
        q_set (3 + ((head + count) mod n)) j;
        q_set q_count (count + 1)
      in
      let pop_ready () =
        let count = q_get q_count in
        if count = 0 then None
        else begin
          let head = q_get q_head in
          let j = q_get (3 + (head mod n)) in
          q_set q_head (head + 1);
          q_set q_count (count - 1);
          Some j
        end
      in
      if me = 0 then begin
        (* Load A and the update counters, then seed the queue. *)
        for j = 0 to n - 1 do
          R.acquire c col_lock.(j);
          R.write_int c (counter_addr j) sym.nmod.(j);
          Array.iteri
            (fun idx i -> R.write_f64 c (value_addr j idx) (laplacian_entry k i j))
            sym.pattern.(j);
          R.release c col_lock.(j)
        done;
        R.acquire c queue_lock;
        q_set q_head 0;
        q_set q_count 0;
        q_set q_done 0;
        for j = 0 to n - 1 do
          if sym.nmod.(j) = 0 then push_ready j
        done;
        R.release c queue_lock
      end;
      R.barrier c start_bar;
      let running = ref true in
      (* Exponential backoff while no column is ready (see quicksort). *)
      let backoff = ref 100_000 in
      while !running do
        R.acquire c queue_lock;
        match pop_ready () with
        | Some j ->
            R.release c queue_lock;
            backoff := 100_000;
            (* cdiv(j) *)
            R.acquire c col_lock.(j);
            let len = Array.length sym.pattern.(j) in
            let d = sqrt (R.read_f64 c (value_addr j 0)) in
            R.write_f64 c (value_addr j 0) d;
            for idx = 1 to len - 1 do
              R.write_f64 c (value_addr j idx) (R.read_f64 c (value_addr j idx) /. d)
            done;
            cycles (len * 2 * Common.cycles_flop);
            (* Snapshot the column host-side; it is immutable from now on. *)
            let col = Array.init len (fun idx -> R.read_f64 c (value_addr j idx)) in
            R.release c col_lock.(j);
            (* cmod from j into each later column of its pattern. *)
            for kidx = 1 to len - 1 do
              let target = sym.pattern.(j).(kidx) in
              let ljk = col.(kidx) in
              R.acquire c col_lock.(target);
              for idx = kidx to len - 1 do
                let i = sym.pattern.(j).(idx) in
                let off = Hashtbl.find pos.(target) i in
                R.write_f64 c (value_addr target off)
                  (R.read_f64 c (value_addr target off) -. (col.(idx) *. ljk))
              done;
              cycles ((len - kidx) * 2 * Common.cycles_flop);
              let remaining = R.read_int c (counter_addr target) - 1 in
              R.write_int c (counter_addr target) remaining;
              R.release c col_lock.(target);
              if remaining = 0 then begin
                R.acquire c queue_lock;
                push_ready target;
                R.release c queue_lock
              end
            done;
            R.acquire c queue_lock;
            q_set q_done (q_get q_done + 1);
            R.release c queue_lock
        | None ->
            let finished = q_get q_done in
            R.release c queue_lock;
            if finished = n then running := false
            else begin
              R.work_ns c !backoff;
              backoff := min (2 * !backoff) 8_000_000
            end
      done;
      R.barrier c done_bar);
  (* Verify against the oracle within tolerance (update order varies),
     reading each column from its lock's final owner. *)
  let expect = oracle_factor k sym in
  let ok = ref true in
  let bad = ref 0 in
  let max_rel = ref 0.0 in
  for j = 0 to n - 1 do
    let owner = col_lock.(j).Midway.Sync.owner in
    Array.iteri
      (fun idx _i ->
        let got = Common.read_f64_direct machine ~proc:owner (value_addr j idx) in
        let want = expect.(j).(idx) in
        let rel =
          if want = 0.0 then Float.abs got
          else Float.abs (got -. want) /. Float.max 1e-30 (Float.abs want)
        in
        if rel > !max_rel then max_rel := rel;
        if not (Common.approx_equal ~rel:1e-9 ~abs:1e-9 got want) then begin
          if !bad = 0 then
            Printf.eprintf "cholesky mismatch: L[%d][%d] = %.17g expect %.17g\n%!"
              j sym.pattern.(j).(idx) got want;
          incr bad;
          ok := false
        end)
      sym.pattern.(j)
  done;
  let nnz = Array.fold_left (fun acc p -> acc + Array.length p) 0 sym.pattern in
  Outcome.v ~app:"cholesky" ~machine ~ok:!ok
    ~notes:
      [
        Printf.sprintf "grid=%dx%d (n=%d, nnz(L)=%d), max rel err %.2e, %d mismatches" k k n
          nnz !max_rel !bad;
      ]
