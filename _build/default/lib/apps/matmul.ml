module R = Midway.Runtime
module Range = Midway.Range
module Space = Midway_memory.Space

type params = { n : int; verify_samples : int }

let default = { n = 512; verify_samples = 2_000 }

let scaled f =
  { n = max 16 (int_of_float (512.0 *. f)); verify_samples = 500 }

(* Deterministic element initializers (cheap integer hash to float). *)
let a_init i j = float_of_int (((i * 37) + (j * 11)) mod 100) /. 16.0

let b_init i j = float_of_int (((i * 17) + (j * 29)) mod 100) /. 32.0

let run cfg { n; verify_samples } =
  let machine = R.create cfg in
  let nprocs = cfg.Midway.Config.nprocs in
  (* Rows are padded to the cache-line size so row bands never share a
     line across processors. *)
  let row_bytes = (n * 8 + 63) / 64 * 64 in
  let a = R.alloc machine ~line_size:64 (n * row_bytes) in
  let b = R.alloc machine ~line_size:64 (n * row_bytes) in
  let cm = R.alloc machine ~line_size:64 (n * row_bytes) in
  let scratch = R.alloc machine ~private_:true (nprocs * 8) in
  let addr base i j = base + (i * row_bytes) + (j * 8) in
  (* Per-processor locks bind the processor's A band and C band. *)
  let locks =
    Array.init nprocs (fun p ->
        let lo, hi = Common.band ~n ~nprocs p in
        R.new_lock machine
          [
            Range.v (addr a lo 0) ((hi - lo) * row_bytes);
            Range.v (addr cm lo 0) ((hi - lo) * row_bytes);
          ])
  in
  let start_bar = R.new_barrier machine [] in
  let done_bar = R.new_barrier machine [] in
  (* B is read-only input data, preloaded identically on every processor
     outside the timed computation (see the interface comment). *)
  let space = R.space machine in
  for p = 0 to nprocs - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        Space.set_f64 space ~proc:p (addr b i j) (b_init i j)
      done
    done
  done;
  R.run machine (fun c ->
      let me = R.id c in
      if me = 0 then begin
        (* Initialize A through the DSM: proc 0 owns every lock at start. *)
        for p = 0 to nprocs - 1 do
          R.acquire c locks.(p);
          let lo, hi = Common.band ~n ~nprocs p in
          for i = lo to hi - 1 do
            for j = 0 to n - 1 do
              R.write_f64 c (addr a i j) (a_init i j)
            done;
            R.work_cycles c (n * 4)
          done;
          R.release c locks.(p)
        done
      end;
      R.barrier c start_bar;
      (* Compute my band of C. *)
      R.acquire c locks.(me);
      let lo, hi = Common.band ~n ~nprocs me in
      let row_acc = Array.make n 0.0 in
      for i = lo to hi - 1 do
        Array.fill row_acc 0 n 0.0;
        for k = 0 to n - 1 do
          let aik = R.read_f64 c (addr a i k) in
          for j = 0 to n - 1 do
            row_acc.(j) <- row_acc.(j) +. (aik *. R.read_f64 c (addr b k j))
          done;
          (* 2 flops per inner iteration on the modelled R3000. *)
          R.work_cycles c (2 * Common.cycles_flop * n)
        done;
        for j = 0 to n - 1 do
          R.write_f64 c (addr cm i j) row_acc.(j)
        done
      done;
      (* A deliberately misclassified private write or two, as real
         programs exhibit (paper Table 2). *)
      R.write_int c (scratch + (me * 8)) (hi - lo);
      R.release c locks.(me);
      R.barrier c done_bar;
      (* Gather: proc 0 collects every band of C. *)
      if me = 0 then
        for p = 1 to nprocs - 1 do
          R.acquire c locks.(p);
          R.release c locks.(p)
        done);
  (* Verify sampled elements of C on processor 0's copy against a host
     dot product computed in the same accumulation order. *)
  let prng = Midway_util.Prng.create ~seed:(cfg.Midway.Config.seed + 7) in
  let ok = ref true in
  let checked = ref 0 in
  for _ = 1 to verify_samples do
    let i = Midway_util.Prng.int prng n and j = Midway_util.Prng.int prng n in
    let expect = ref 0.0 in
    for k = 0 to n - 1 do
      expect := !expect +. (a_init i k *. b_init k j)
    done;
    let got = Common.read_f64_direct machine ~proc:0 (addr cm i j) in
    incr checked;
    if not (Common.approx_equal ~rel:1e-12 got !expect) then begin
      if !ok then
        Printf.eprintf "matmul mismatch: C[%d,%d]=%.17g expect %.17g\n%!" i j got !expect;
      ok := false
    end
  done;
  Outcome.v ~app:"matrix-multiply" ~machine ~ok:!ok
    ~notes:[ Printf.sprintf "n=%d, %d sampled elements verified" n !checked ]
