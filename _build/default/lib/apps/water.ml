module R = Midway.Runtime
module Range = Midway.Range

type sync_style = Barrier_phases | Molecule_locks

type params = { molecules : int; steps : int; sync : sync_style }

let default = { molecules = 343; steps = 5; sync = Barrier_phases }

let scaled f =
  {
    molecules = max 8 (int_of_float (343.0 *. f));
    steps = max 2 (int_of_float (5.0 *. f));
    sync = Barrier_phases;
  }

(* Molecule record layout, in doubles:
   [0..8]   atom positions (3 atoms x xyz)
   [9..17]  atom velocities
   [18..26] accumulated forces
   [27..71] higher-order predictor/corrector terms *)
let doubles_per_molecule = 72

let record_bytes = doubles_per_molecule * 8

let dt = 0.001

let initial_field m k =
  (* Deterministic liquid-state-ish initial values. *)
  let h = (m * 73856093) lxor (k * 19349663) in
  let v = float_of_int (h land 0xFFFF) /. 65536.0 in
  if k < 9 then float_of_int (m mod 7) +. v (* positions in a small box *)
  else if k < 18 then (v -. 0.5) /. 8.0 (* velocities *)
  else 0.0

(* The simplified pair interaction: a soft inverse-square attraction
   between molecular centres (atom 0). *)
let pair_force xi yi zi xj yj zj =
  let dx = xi -. xj and dy = yi -. yj and dz = zi -. zj in
  let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
  let coef = 1.0 /. (r2 +. 0.5) in
  (dx *. coef, dy *. coef, dz *. coef, coef)

(* Sequential oracle sharing the exact arithmetic and iteration order. *)
let oracle { molecules = n; steps; sync = _ } =
  let m = Array.init n (fun i -> Array.init doubles_per_molecule (initial_field i)) in
  let energy = ref 0.0 in
  for _ = 1 to steps do
    (* predict *)
    for i = 0 to n - 1 do
      let r = m.(i) in
      for k = 0 to 8 do
        r.(k) <- r.(k) +. (r.(k + 9) *. dt)
      done;
      for k = 27 to doubles_per_molecule - 1 do
        r.(k) <- (r.(k) *. 0.999) +. (r.(k mod 9) *. 0.001)
      done
    done;
    (* force + correct, owner-computes order *)
    let forces = Array.make_matrix n 3 0.0 in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if j <> i then begin
          let fx, fy, fz, pot =
            pair_force m.(i).(0) m.(i).(1) m.(i).(2) m.(j).(0) m.(j).(1) m.(j).(2)
          in
          forces.(i).(0) <- forces.(i).(0) +. fx;
          forces.(i).(1) <- forces.(i).(1) +. fy;
          forces.(i).(2) <- forces.(i).(2) +. fz;
          if j > i then energy := !energy +. pot
        end
      done
    done;
    for i = 0 to n - 1 do
      let r = m.(i) in
      for d = 0 to 2 do
        r.(18 + d) <- forces.(i).(d);
        for atom = 0 to 2 do
          r.(9 + (atom * 3) + d) <- r.(9 + (atom * 3) + d) +. (forces.(i).(d) *. dt)
        done
      done
    done
  done;
  (m, !energy)

let run cfg ({ molecules = n; steps; sync } as params) =
  let machine = R.create cfg in
  let nprocs = cfg.Midway.Config.nprocs in
  let mols = R.alloc machine ~line_size:64 (n * record_bytes) in
  let field m k = mols + (m * record_bytes) + (k * 8) in
  let energy_addr = R.alloc machine ~line_size:8 8 in
  let energy_lock = R.new_lock machine [ Range.v energy_addr 8 ] in
  (* Barrier_phases: the whole array is bound to the step barrier.
     Molecule_locks: each record is bound to its own lock (SPLASH
     water's structure); readers take them in non-exclusive mode and the
     step barrier carries no data. *)
  let lock_sync = sync = Molecule_locks in
  let step_bar =
    R.new_barrier machine (if lock_sync then [] else [ Range.v mols (n * record_bytes) ])
  in
  let mol_lock =
    if lock_sync then
      Array.init n (fun m ->
          R.new_lock machine
            ~owner:(Common.owner_of ~n ~nprocs m)
            [ Range.v (mols + (m * record_bytes)) record_bytes ])
    else [||]
  in
  let done_bar = R.new_barrier machine [] in
  R.run machine (fun c ->
      let me = R.id c in
      let lo, hi = Common.band ~n ~nprocs me in
      if me = 0 then begin
        R.acquire c energy_lock;
        R.write_f64 c energy_addr 0.0;
        R.release c energy_lock
      end;
      (* Initialize my molecules. *)
      for m = lo to hi - 1 do
        for k = 0 to doubles_per_molecule - 1 do
          R.write_f64 c (field m k) (initial_field m k)
        done;
        R.work_cycles c (doubles_per_molecule * 4)
      done;
      for _step = 1 to steps do
        (* predict: advance my molecules (under their locks in lock-sync
           style; the acquisitions are local unless a reader took the
           lock away last step). *)
        for m = lo to hi - 1 do
          if lock_sync then R.acquire c mol_lock.(m);
          for k = 0 to 8 do
            R.write_f64 c (field m k) (R.read_f64 c (field m k) +. (R.read_f64 c (field m (k + 9)) *. dt))
          done;
          for k = 27 to doubles_per_molecule - 1 do
            R.write_f64 c (field m k)
              ((R.read_f64 c (field m k) *. 0.999) +. (R.read_f64 c (field m (k mod 9)) *. 0.001))
          done;
          if lock_sync then R.release c mol_lock.(m);
          R.work_cycles c (doubles_per_molecule * 3 * Common.cycles_flop)
        done;
        (* Consistency point: with barrier sync the barrier ships the
           records; with lock sync it only separates the phases. *)
        R.barrier c step_bar;
        (* force: private accumulation (the SPLASH optimization). *)
        let forces = Array.make ((hi - lo) * 3) 0.0 in
        let my_pot = ref 0.0 in
        (* lock-sync style: fetch every foreign molecule once per step
           through a non-exclusive acquisition *)
        if lock_sync then
          for j = 0 to n - 1 do
            if j < lo || j >= hi then begin
              R.acquire_read c mol_lock.(j);
              R.release c mol_lock.(j)
            end
          done;
        for m = lo to hi - 1 do
          let xi = R.read_f64 c (field m 0)
          and yi = R.read_f64 c (field m 1)
          and zi = R.read_f64 c (field m 2) in
          for j = 0 to n - 1 do
            if j <> m then begin
              let fx, fy, fz, pot =
                pair_force xi yi zi
                  (R.read_f64 c (field j 0))
                  (R.read_f64 c (field j 1))
                  (R.read_f64 c (field j 2))
              in
              let base = (m - lo) * 3 in
              forces.(base) <- forces.(base) +. fx;
              forces.(base + 1) <- forces.(base + 1) +. fy;
              forces.(base + 2) <- forces.(base + 2) +. fz;
              if j > m then my_pot := !my_pot +. pot
            end
          done;
          (* ~4,400 cycles per pair evaluation calibrates the
             uniprocessor run to the paper's 104 s (water's real pair
             computation is far heavier than our simplified force law) *)
          R.work_cycles c (n * 4_400)
        done;
        (* correct: fold the private forces into my shared molecules. *)
        for m = lo to hi - 1 do
          if lock_sync then R.acquire c mol_lock.(m);
          let base = (m - lo) * 3 in
          for d = 0 to 2 do
            R.write_f64 c (field m (18 + d)) forces.(base + d);
            for atom = 0 to 2 do
              let k = 9 + (atom * 3) + d in
              R.write_f64 c (field m k) (R.read_f64 c (field m k) +. (forces.(base + d) *. dt))
            done
          done;
          if lock_sync then R.release c mol_lock.(m);
          R.work_cycles c (12 * Common.cycles_flop)
        done;
        (* global potential energy under its lock. *)
        R.acquire c energy_lock;
        R.write_f64 c energy_addr (R.read_f64 c energy_addr +. !my_pot);
        R.release c energy_lock
      done;
      R.barrier c done_bar);
  (* Verify molecules bitwise against the oracle (owner copies); energy
     within tolerance (the addition order across processors differs). *)
  let expect, expect_energy = oracle params in
  let ok = ref true in
  let bad = ref 0 in
  for m = 0 to n - 1 do
    let p = Common.owner_of ~n ~nprocs m in
    for k = 0 to doubles_per_molecule - 1 do
      let got = Common.read_f64_direct machine ~proc:p (field m k) in
      if got <> expect.(m).(k) then begin
        if !bad = 0 then
          Printf.eprintf "water mismatch: mol %d field %d = %.17g expect %.17g\n%!" m k got
            expect.(m).(k);
        incr bad;
        ok := false
      end
    done
  done;
  (* The lock's final owner holds the authoritative accumulator copy. *)
  let got_energy =
    Common.read_f64_direct machine ~proc:energy_lock.Midway.Sync.owner energy_addr
  in
  let energy_ok = Common.approx_equal ~rel:1e-9 got_energy expect_energy in
  if not energy_ok then ok := false;
  Outcome.v ~app:"water" ~machine ~ok:!ok
    ~notes:
      [
        Printf.sprintf "molecules=%d, steps=%d, %d field mismatches; energy %.6f vs %.6f" n
          steps !bad got_energy expect_energy;
      ]
