lib/apps/matmul.ml: Array Common Midway Midway_memory Midway_util Outcome Printf
