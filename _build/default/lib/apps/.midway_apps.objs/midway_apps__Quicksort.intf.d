lib/apps/quicksort.mli: Midway Outcome
