lib/apps/outcome.ml: Format Midway Midway_stats Midway_util String
