lib/apps/granularity.mli: Midway Outcome
