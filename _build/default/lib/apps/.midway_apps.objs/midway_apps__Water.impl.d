lib/apps/water.ml: Array Common Midway Outcome Printf
