lib/apps/matmul.mli: Midway Outcome
