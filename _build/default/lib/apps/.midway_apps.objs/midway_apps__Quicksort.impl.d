lib/apps/quicksort.ml: Array Common Int32 List Midway Outcome Printf
