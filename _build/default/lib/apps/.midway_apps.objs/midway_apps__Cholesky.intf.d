lib/apps/cholesky.mli: Midway Outcome
