lib/apps/sor.mli: Midway Outcome
