lib/apps/cholesky.ml: Array Common Float Hashtbl List Midway Outcome Printf
