lib/apps/water.mli: Midway Outcome
