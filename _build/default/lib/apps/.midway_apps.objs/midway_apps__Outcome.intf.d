lib/apps/outcome.mli: Format Midway Midway_stats
