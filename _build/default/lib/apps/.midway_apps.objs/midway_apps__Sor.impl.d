lib/apps/sor.ml: Array Common List Midway Outcome Printf
