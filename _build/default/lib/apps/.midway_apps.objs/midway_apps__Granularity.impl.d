lib/apps/granularity.ml: Array Common List Midway Outcome Printf
