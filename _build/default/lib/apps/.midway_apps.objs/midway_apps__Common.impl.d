lib/apps/common.ml: Float Midway Midway_memory
