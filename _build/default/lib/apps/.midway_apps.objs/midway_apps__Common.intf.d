lib/apps/common.mli: Midway
