let band ~n ~nprocs p =
  if p < 0 || p >= nprocs then invalid_arg "Common.band: processor out of range";
  let base = n / nprocs and extra = n mod nprocs in
  let lo = (p * base) + min p extra in
  let hi = lo + base + if p < extra then 1 else 0 in
  (lo, hi)

let owner_of ~n ~nprocs i =
  if i < 0 || i >= n then invalid_arg "Common.owner_of: index out of range";
  (* Linear scan is fine: nprocs is small. *)
  let rec go p =
    let lo, hi = band ~n ~nprocs p in
    if i >= lo && i < hi then p else go (p + 1)
  in
  go 0

let approx_equal ?(rel = 1e-9) ?(abs = 1e-12) a b =
  let d = Float.abs (a -. b) in
  d <= abs || d <= rel *. Float.max (Float.abs a) (Float.abs b)

let read_f64_direct machine ~proc addr =
  Midway_memory.Space.get_f64 (Midway.Runtime.space machine) ~proc addr

let read_int_direct machine ~proc addr =
  Midway_memory.Space.get_int (Midway.Runtime.space machine) ~proc addr

let cycles_flop = 8
