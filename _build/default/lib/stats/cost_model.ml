type t = {
  cycle_ns : int;
  dirtybit_set_ns : int;
  dirtybit_set_private_ns : int;
  dirtybit_read_clean_ns : int;
  dirtybit_read_dirty_ns : int;
  dirtybit_update_ns : int;
  page_fault_ns : int;
  page_diff_uniform_ns : int;
  page_diff_alternating_ns : int;
  page_protect_rw_ns : int;
  page_protect_ro_ns : int;
  copy_kb_cold_ns : int;
  copy_kb_warm_ns : int;
  page_size : int;
}

let default =
  {
    cycle_ns = 40;
    dirtybit_set_ns = 360;
    dirtybit_set_private_ns = 240;
    dirtybit_read_clean_ns = 217;
    dirtybit_read_dirty_ns = 187;
    dirtybit_update_ns = 67;
    page_fault_ns = 1_200_000;
    page_diff_uniform_ns = 260_000;
    page_diff_alternating_ns = 1_870_000;
    page_protect_rw_ns = 125_000;
    page_protect_ro_ns = 127_000;
    copy_kb_cold_ns = 84_000;
    copy_kb_warm_ns = 26_000;
    page_size = 4096;
  }

let with_page_fault_us t us = { t with page_fault_ns = int_of_float (us *. 1_000.0) }

let fast_exception_page_fault_us = 122.0

let mach_page_fault_us = 1_200.0

let diff_cost_ns t ~words ~transitions =
  if words <= 0 then 0
  else begin
    let words_per_page = t.page_size / 4 in
    let page_fraction = float_of_int words /. float_of_int words_per_page in
    let alternation = float_of_int transitions /. float_of_int words in
    let alternation = if alternation > 1.0 then 1.0 else alternation in
    let full_page_cost =
      float_of_int t.page_diff_uniform_ns
      +. (alternation
          *. float_of_int (t.page_diff_alternating_ns - t.page_diff_uniform_ns))
    in
    int_of_float (full_page_cost *. page_fraction)
  end

let copy_cost_ns t ~bytes ~warm =
  let per_kb = if warm then t.copy_kb_warm_ns else t.copy_kb_cold_ns in
  (* Round up to whole cache-resident KBs so a short copy still pays a
     proportional cost. *)
  bytes * per_kb / 1024
