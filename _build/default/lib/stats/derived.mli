(** Derived per-application costs: the computations behind Tables 3, 4, 5.

    The paper computes write-trapping time (Table 3), write-collection time
    (Table 4) and detection memory references (Table 5) by multiplying the
    per-processor invocation counts (Table 2) with the primitive costs
    (Table 1).  These functions implement exactly those formulas so the
    report layer and the tests share one definition. *)

type trapping = { rt_ns : int; vm_ns : int }
(** Per-processor write-trapping time. *)

type collection = {
  rt_clean_reads_ns : int;
  rt_dirty_reads_ns : int;
  rt_updates_ns : int;
  rt_total_ns : int;
  vm_diff_ns : int;
  vm_protect_ns : int;
  vm_twin_update_ns : int;
  vm_total_ns : int;
}
(** Per-processor write-collection time, broken down as in Table 4. *)

type references = {
  rt_trap_refs : int;
  rt_collect_refs : int;
  vm_trap_refs : int;
  vm_collect_refs : int;
}
(** Detection-induced memory references, as in Table 5 (absolute counts,
    not thousands). *)

val trapping : Cost_model.t -> rt:Counters.t -> vm:Counters.t -> trapping
(** Table 3: RT = dirtybits set x set cost + misclassified x private cost;
    VM = write faults x fault service time. *)

val collection : Cost_model.t -> rt:Counters.t -> vm:Counters.t -> collection
(** Table 4: RT = clean reads x clean cost + dirty reads x dirty cost +
    updates installed x update cost; VM = pages diffed x uniform diff cost
    + pages protected x read-only protect cost + twin-updated KB x warm
    copy cost. The paper charges the uniform diff cost here (65.8 ms /
    253 pages = 260 us for water), which we follow. *)

val references : Cost_model.t -> rt:Counters.t -> vm:Counters.t -> references
(** Table 5: RT trapping = dirtybits set (+ misclassified); RT collection
    = dirtybits read (clean + dirty) + timestamps installed; VM trapping =
    2 refs per word twinned; VM collection = 2 refs per word diffed + one
    ref per word applied to a twin. *)
