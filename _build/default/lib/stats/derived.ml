type trapping = { rt_ns : int; vm_ns : int }

type collection = {
  rt_clean_reads_ns : int;
  rt_dirty_reads_ns : int;
  rt_updates_ns : int;
  rt_total_ns : int;
  vm_diff_ns : int;
  vm_protect_ns : int;
  vm_twin_update_ns : int;
  vm_total_ns : int;
}

type references = {
  rt_trap_refs : int;
  rt_collect_refs : int;
  vm_trap_refs : int;
  vm_collect_refs : int;
}

let trapping (cm : Cost_model.t) ~(rt : Counters.t) ~(vm : Counters.t) =
  {
    rt_ns =
      (rt.dirtybits_set * cm.dirtybit_set_ns)
      + (rt.dirtybits_misclassified * cm.dirtybit_set_private_ns);
    vm_ns = vm.write_faults * cm.page_fault_ns;
  }

let collection (cm : Cost_model.t) ~(rt : Counters.t) ~(vm : Counters.t) =
  let rt_clean_reads_ns = rt.clean_dirtybits_read * cm.dirtybit_read_clean_ns in
  let rt_dirty_reads_ns = rt.dirty_dirtybits_read * cm.dirtybit_read_dirty_ns in
  let rt_updates_ns = rt.dirtybits_updated * cm.dirtybit_update_ns in
  let vm_diff_ns = vm.pages_diffed * cm.page_diff_uniform_ns in
  let vm_protect_ns = vm.pages_write_protected * cm.page_protect_ro_ns in
  let vm_twin_update_ns = vm.twin_update_bytes * cm.copy_kb_warm_ns / 1024 in
  {
    rt_clean_reads_ns;
    rt_dirty_reads_ns;
    rt_updates_ns;
    rt_total_ns = rt_clean_reads_ns + rt_dirty_reads_ns + rt_updates_ns;
    vm_diff_ns;
    vm_protect_ns;
    vm_twin_update_ns;
    vm_total_ns = vm_diff_ns + vm_protect_ns + vm_twin_update_ns;
  }

let references (cm : Cost_model.t) ~(rt : Counters.t) ~(vm : Counters.t) =
  let words_per_page = cm.page_size / 4 in
  {
    rt_trap_refs = rt.dirtybits_set + rt.dirtybits_misclassified;
    rt_collect_refs =
      rt.clean_dirtybits_read + rt.dirty_dirtybits_read + rt.dirtybits_updated;
    vm_trap_refs = vm.write_faults * 2 * words_per_page;
    vm_collect_refs =
      (vm.pages_diffed * 2 * words_per_page) + (vm.twin_update_bytes / 4);
  }
