(** The primitive-operation cost model (the paper's Table 1).

    The evaluation methodology of the paper is explicit: measure the cost
    of each primitive operation once (Table 1), count invocations per
    application (Table 2), and multiply (Tables 3-5).  This module holds
    those measured costs as integer nanoseconds on the simulated machine
    (a 25 MHz MIPS R3000: one cycle = 40 ns), and exposes the knobs the
    paper sweeps (the page-fault service time in Figures 3 and 4).

    All costs are per-invocation unless stated otherwise. *)

type t = {
  cycle_ns : int;  (** processor cycle time; 40 ns at 25 MHz *)
  (* RT-DSM trapping *)
  dirtybit_set_ns : int;  (** set a dirtybit after a shared word/doubleword write (9 cycles) *)
  dirtybit_set_private_ns : int;  (** misclassified write to private memory (6 cycles) *)
  (* RT-DSM collection *)
  dirtybit_read_clean_ns : int;  (** scan a dirtybit that is clean/stamped (5 cycles) *)
  dirtybit_read_dirty_ns : int;  (** scan a dirtybit that is locally dirty (4 cycles) *)
  dirtybit_update_ns : int;  (** install an incoming timestamp at the requester (2 cycles) *)
  (* VM-DSM trapping *)
  page_fault_ns : int;  (** service a write fault: fault + twin copy + protection (1,200 us under Mach; 122 us with fast exceptions) *)
  (* VM-DSM collection *)
  page_diff_uniform_ns : int;  (** diff a page when none or all of the data changed (260 us) *)
  page_diff_alternating_ns : int;  (** diff a page when every other word changed (1,870 us) *)
  page_protect_rw_ns : int;  (** protection call to allow read-write (125 us) *)
  page_protect_ro_ns : int;  (** protection call to allow read-only (127 us) *)
  copy_kb_cold_ns : int;  (** memory block copy per KB, cold cache (84 us) *)
  copy_kb_warm_ns : int;  (** memory block copy per KB, warm cache (26 us) *)
  page_size : int;  (** VM page size in bytes (4 KB) *)
}

val default : t
(** The paper's measured values (Table 1) on DECstation 5000/200 + Mach 3.0. *)

val with_page_fault_us : t -> float -> t
(** [with_page_fault_us t us] replaces the fault service time; used for the
    fast-exception sweep in Figures 3 and 4 (122 us .. 1,200 us). *)

val fast_exception_page_fault_us : float
(** 122 us: Thekkath & Levy's fast exception path plus the mandatory 4 KB
    twin copy. *)

val mach_page_fault_us : float
(** 1,200 us: Mach's external-pager path. *)

val diff_cost_ns : t -> words:int -> transitions:int -> int
(** Cost of diffing a page region of [words] 32-bit words whose
    modified/unmodified pattern switches [transitions] times.  Interpolates
    between the two measured points: a uniform page (0 transitions) costs
    [page_diff_uniform_ns] and a fully alternating page ([words]
    transitions) costs [page_diff_alternating_ns], both scaled by the
    fraction of a full 4 KB page being diffed. *)

val copy_cost_ns : t -> bytes:int -> warm:bool -> int
(** Cost of a block copy of [bytes] bytes. *)
