lib/stats/counters.mli:
