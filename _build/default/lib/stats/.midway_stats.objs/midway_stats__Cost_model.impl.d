lib/stats/cost_model.ml:
