lib/stats/counters.ml: Array
