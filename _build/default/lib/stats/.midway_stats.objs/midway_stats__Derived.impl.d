lib/stats/derived.ml: Cost_model Counters
