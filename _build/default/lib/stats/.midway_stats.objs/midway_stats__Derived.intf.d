lib/stats/derived.mli: Cost_model Counters
