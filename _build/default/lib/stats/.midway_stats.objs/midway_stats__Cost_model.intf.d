lib/stats/cost_model.mli:
