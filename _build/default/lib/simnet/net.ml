type kind =
  | Lock_request
  | Lock_reply
  | Lock_forward
  | Barrier_arrive
  | Barrier_release
  | Startup

let kind_name = function
  | Lock_request -> "lock-request"
  | Lock_reply -> "lock-reply"
  | Lock_forward -> "lock-forward"
  | Barrier_arrive -> "barrier-arrive"
  | Barrier_release -> "barrier-release"
  | Startup -> "startup"

let kind_index = function
  | Lock_request -> 0
  | Lock_reply -> 1
  | Lock_forward -> 2
  | Barrier_arrive -> 3
  | Barrier_release -> 4
  | Startup -> 5

type t = {
  nprocs : int;
  latency_ns : int;
  ns_per_byte : int;
  header_bytes : int;
  msgs_sent : int array;
  payload_sent : int array;
  payload_received : int array;
  by_kind : int array;
}

let create ?(latency_ns = 150_000) ?(ns_per_byte = 57) ?(header_bytes = 64) ~nprocs () =
  if nprocs <= 0 then invalid_arg "Net.create: nprocs must be positive";
  {
    nprocs;
    latency_ns;
    ns_per_byte;
    header_bytes;
    msgs_sent = Array.make nprocs 0;
    payload_sent = Array.make nprocs 0;
    payload_received = Array.make nprocs 0;
    by_kind = Array.make 6 0;
  }

let nprocs t = t.nprocs

let transfer_ns t ~payload_bytes =
  t.latency_ns + ((t.header_bytes + payload_bytes) * t.ns_per_byte)

let send ?(overhead_bytes = 0) t ~kind ~src ~dst ~payload_bytes ~at =
  if src < 0 || src >= t.nprocs || dst < 0 || dst >= t.nprocs then
    invalid_arg "Net.send: processor out of range";
  if payload_bytes < 0 || overhead_bytes < 0 then invalid_arg "Net.send: negative payload";
  if src = dst then at
  else begin
    t.msgs_sent.(src) <- t.msgs_sent.(src) + 1;
    t.payload_sent.(src) <- t.payload_sent.(src) + payload_bytes;
    t.payload_received.(dst) <- t.payload_received.(dst) + payload_bytes;
    t.by_kind.(kind_index kind) <- t.by_kind.(kind_index kind) + 1;
    at + transfer_ns t ~payload_bytes:(payload_bytes + overhead_bytes)
  end

let messages_sent t ~proc = t.msgs_sent.(proc)

let bytes_sent t ~proc = t.payload_sent.(proc)

let bytes_received t ~proc = t.payload_received.(proc)

let total_messages t = Array.fold_left ( + ) 0 t.msgs_sent

let total_payload_bytes t = Array.fold_left ( + ) 0 t.payload_sent

let messages_of_kind t kind = t.by_kind.(kind_index kind)
