lib/simnet/net.ml: Array
