lib/simnet/net.mli:
