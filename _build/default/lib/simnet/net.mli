(** The cluster interconnect model.

    The paper's testbed is eight DECstations on a 140 Mbit/s ForeRunner
    ASX-100 ATM switch, driven through a user-level AAL3/4 protocol that
    bypasses the Unix server.  For the simulation we model a message as a
    fixed per-message latency (send + switch + receive + protocol
    processing) plus a bandwidth term proportional to its size, and we
    account messages and bytes per processor pair.

    Only *application* payload counts toward the paper's "data
    transferred" figures; protocol headers contribute to transfer time but
    not to the payload accounting. *)

type kind =
  | Lock_request
  | Lock_reply
  | Lock_forward
  | Barrier_arrive
  | Barrier_release
  | Startup

val kind_name : kind -> string

type t

val create :
  ?latency_ns:int -> ?ns_per_byte:int -> ?header_bytes:int -> nprocs:int -> unit -> t
(** Defaults: 150 us per-message latency, 57 ns/byte (140 Mbit/s ATM at
    AAL3/4 framing efficiency), 64-byte protocol header. *)

val nprocs : t -> int

val transfer_ns : t -> payload_bytes:int -> int
(** Wire time for one message carrying [payload_bytes] of application
    data: latency + (header + payload) x bandwidth cost. *)

val send :
  ?overhead_bytes:int -> t -> kind:kind -> src:int -> dst:int -> payload_bytes:int ->
  at:int -> int
(** [send t ~kind ~src ~dst ~payload_bytes ~at] records the message and
    returns its delivery time ([at + transfer time]).  [overhead_bytes]
    (default 0) models per-line/per-run descriptors: it adds wire time but
    is excluded from the payload accounting, as in the paper.  Self-sends
    are legal (local lock service) and cost nothing. *)

val messages_sent : t -> proc:int -> int

val bytes_sent : t -> proc:int -> int
(** Payload bytes this processor put on the wire. *)

val bytes_received : t -> proc:int -> int

val total_messages : t -> int

val total_payload_bytes : t -> int

val messages_of_kind : t -> kind -> int
