(** Simulated per-processor page table for VM-DSM write trapping.

    Real VM-DSM maps all shared pages read-only and uses the first store
    to each page (a write fault) to create a *twin* copy and mark the page
    dirty (paper, section 3.3).  Here the page table is a map from page
    number to protection/dirty/twin state; the VM backend consults it on
    every instrumented store, taking a simulated fault when the page is
    write-protected.

    Page state is created lazily: an untouched page is read-only and
    clean, exactly as after Midway's initial mapping. *)

type prot = Read_only | Read_write

type page = {
  number : int;  (** page number; base address = number x page size *)
  mutable prot : prot;
  mutable dirty : bool;
  mutable twin : Bytes.t option;  (** copy made at fault time; present iff dirty *)
}

type t

val create : page_size:int -> t
(** [page_size] must be a positive power of two. *)

val page_size : t -> int

val page_of_addr : t -> int -> page
(** State of the page containing the address, created on demand. *)

val page_base : t -> page -> int

val pages_in_range : t -> addr:int -> len:int -> page list
(** Pages overlapping [addr, addr+len), in ascending order ([len = 0]
    gives the empty list). *)

val dirty_pages : t -> page list
(** All pages currently marked dirty, in ascending page order. *)

val fault_on_write : t -> addr:int -> contents:Bytes.t -> page option
(** Called by the backend before a store to [addr].  If the page is
    write-protected, simulate the fault: twin the supplied page
    [contents] (must be page-sized), mark the page dirty and writable,
    and return [Some page] so the caller can charge the fault cost.
    Returns [None] when the page was already writable. *)

val clean : t -> page -> unit
(** After collection: drop the twin, mark clean, write-protect (the
    caller charges the protection-call cost). *)
