type run = { off : int; len : int }

let word_size = 4

let words_differ old_ new_ pos len =
  (* Compare up to a full word; [len] may be short at a range tail. *)
  let rec go i =
    i < len
    && (Bytes.unsafe_get old_ (pos + i) <> Bytes.unsafe_get new_ (pos + i) || go (i + 1))
  in
  go 0

let diff ~old_ ~new_ ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length old_ || off + len > Bytes.length new_
  then invalid_arg "Diff.diff: range out of bounds";
  let runs = ref [] in
  let transitions = ref 0 in
  let run_start = ref (-1) in
  let prev_modified = ref false in
  let pos = ref off in
  let finish_at p =
    if !run_start >= 0 then begin
      runs := { off = !run_start; len = p - !run_start } :: !runs;
      run_start := -1
    end
  in
  while !pos < off + len do
    let wlen = min word_size (off + len - !pos) in
    let modified = words_differ old_ new_ !pos wlen in
    if modified <> !prev_modified && !pos > off then incr transitions;
    if modified && !run_start < 0 then run_start := !pos;
    if not modified then finish_at !pos;
    prev_modified := modified;
    pos := !pos + wlen
  done;
  finish_at (off + len);
  (List.rev !runs, !transitions)

let runs_bytes runs = List.fold_left (fun acc r -> acc + r.len) 0 runs

let apply ~src ~dst runs =
  List.iter (fun r -> Bytes.blit src r.off dst r.off r.len) runs

let apply_to ~src ~dst ~src_off ~dst_off runs =
  List.iter (fun r -> Bytes.blit src (src_off + r.off) dst (dst_off + r.off) r.len) runs
