type prot = Read_only | Read_write

type page = {
  number : int;
  mutable prot : prot;
  mutable dirty : bool;
  mutable twin : Bytes.t option;
}

type t = { page_size : int; pages : (int, page) Hashtbl.t }

let create ~page_size =
  if page_size <= 0 || page_size land (page_size - 1) <> 0 then
    invalid_arg "Page_table.create: page_size must be a positive power of two";
  { page_size; pages = Hashtbl.create 256 }

let page_size t = t.page_size

let find t number =
  match Hashtbl.find_opt t.pages number with
  | Some p -> p
  | None ->
      let p = { number; prot = Read_only; dirty = false; twin = None } in
      Hashtbl.replace t.pages number p;
      p

let page_of_addr t addr = find t (addr / t.page_size)

let page_base t p = p.number * t.page_size

let pages_in_range t ~addr ~len =
  if len < 0 then invalid_arg "Page_table.pages_in_range: negative length";
  if len = 0 then []
  else begin
    let first = addr / t.page_size and last = (addr + len - 1) / t.page_size in
    List.init (last - first + 1) (fun i -> find t (first + i))
  end

let dirty_pages t =
  Hashtbl.fold (fun _ p acc -> if p.dirty then p :: acc else acc) t.pages []
  |> List.sort (fun a b -> compare a.number b.number)

let fault_on_write t ~addr ~contents =
  let p = page_of_addr t addr in
  match p.prot with
  | Read_write -> None
  | Read_only ->
      if Bytes.length contents <> t.page_size then
        invalid_arg "Page_table.fault_on_write: contents must be page-sized";
      p.twin <- Some (Bytes.copy contents);
      p.dirty <- true;
      p.prot <- Read_write;
      Some p

let clean _t p =
  p.twin <- None;
  p.dirty <- false;
  p.prot <- Read_only
