lib/vmem/diff.ml: Bytes List
