lib/vmem/diff.mli: Bytes
