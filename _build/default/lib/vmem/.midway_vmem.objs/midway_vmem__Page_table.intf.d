lib/vmem/page_table.mli: Bytes
