lib/vmem/page_table.ml: Bytes Hashtbl List
