test/test_report.ml: Alcotest Float Lazy List Midway_apps Midway_report Midway_stats Printf String
