test/test_stats.ml: Alcotest Midway_stats QCheck QCheck_alcotest
