test/test_runtime.ml: Alcotest Array Bytes Gen List Midway Midway_memory Midway_sched Midway_simnet Midway_stats Printf QCheck QCheck_alcotest String
