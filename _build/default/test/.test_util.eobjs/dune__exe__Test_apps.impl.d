test/test_apps.ml: Alcotest Array Float List Midway Midway_apps Midway_stats Printf QCheck QCheck_alcotest String
