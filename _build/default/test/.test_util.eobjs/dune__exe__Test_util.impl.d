test/test_util.ml: Alcotest Array List Midway_util Option QCheck QCheck_alcotest String
