test/test_core.ml: Alcotest Array Bytes Int64 List Midway Midway_memory Midway_stats Printf QCheck QCheck_alcotest String
