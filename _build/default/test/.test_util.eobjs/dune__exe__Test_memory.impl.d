test/test_memory.ml: Alcotest Array Bytes Gen Int64 List Midway_memory QCheck QCheck_alcotest
