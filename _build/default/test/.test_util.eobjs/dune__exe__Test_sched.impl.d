test/test_sched.ml: Alcotest Array Gen List Midway_sched Option QCheck QCheck_alcotest String
