test/test_vmem.ml: Alcotest Bytes Char List Midway_vmem Option QCheck QCheck_alcotest
