test/test_simnet.ml: Alcotest List Midway_simnet QCheck QCheck_alcotest String
