(* Application-level tests: every benchmark verifies against its
   sequential oracle on both detection backends and several machine
   sizes, plus structural properties of the cholesky symbolic analysis. *)

module Config = Midway.Config
module Apps = Midway_apps

let qtest = QCheck_alcotest.to_alcotest

let check_ok name (o : Apps.Outcome.t) =
  Alcotest.(check bool)
    (Printf.sprintf "%s verifies (%s)" name (String.concat "; " o.Apps.Outcome.notes))
    true o.Apps.Outcome.ok;
  Alcotest.(check (list string))
    (name ^ " leaves the protocol clean")
    []
    (Midway.Runtime.check_invariants o.Apps.Outcome.machine)

let backends = [ Config.Rt; Config.Vm; Config.Vm_fine ]

let app_matrix name run =
  List.concat_map
    (fun backend ->
      List.map
        (fun nprocs ->
          Alcotest.test_case
            (Printf.sprintf "%s %s np=%d" name (Config.backend_name backend) nprocs)
            `Quick
            (fun () ->
              let cfg = Config.make backend ~nprocs in
              check_ok name (run cfg)))
        [ 1; 2; 8 ])
    backends
  @ [
      Alcotest.test_case (name ^ " standalone") `Quick (fun () ->
          check_ok name (run (Config.make Config.Standalone ~nprocs:1)));
    ]

let matmul_tests = app_matrix "matmul" (fun cfg -> Apps.Matmul.run cfg { n = 24; verify_samples = 200 })

let sor_tests = app_matrix "sor" (fun cfg -> Apps.Sor.run cfg { n = 32; iterations = 4 })

let water_tests =
  app_matrix "water" (fun cfg ->
      Apps.Water.run cfg { molecules = 24; steps = 2; sync = Apps.Water.Barrier_phases })
  @ app_matrix "water-locks" (fun cfg ->
        Apps.Water.run cfg { molecules = 24; steps = 2; sync = Apps.Water.Molecule_locks })

let quicksort_tests =
  app_matrix "quicksort" (fun cfg -> Apps.Quicksort.run cfg { n = 600; threshold = 24; slots = 256 })

let cholesky_tests = app_matrix "cholesky" (fun cfg -> Apps.Cholesky.run cfg { grid = 6 })

let granularity_tests =
  List.map
    (fun backend ->
      Alcotest.test_case
        (Printf.sprintf "granularity %s" (Config.backend_name backend))
        `Quick
        (fun () ->
          let cfg = Config.make backend ~nprocs:2 in
          check_ok "granularity"
            (Apps.Granularity.run cfg { total_bytes = 16 * 1024; items = 32; rounds = 3 })))
    [ Config.Rt; Config.Vm; Config.Twin; Config.Blast ]

let test_granularity_rt_flat () =
  (* detection cost under RT must not grow with the object count *)
  let detect items =
    let o =
      Apps.Granularity.run (Config.make Config.Rt ~nprocs:2)
        { total_bytes = 64 * 1024; items; rounds = 2 }
    in
    let avg = Apps.Outcome.avg_counters o in
    avg.Midway_stats.Counters.trap_time_ns
  in
  let coarse = detect 8 and fine = detect 512 in
  Alcotest.(check bool)
    (Printf.sprintf "rt trapping flat across granularity (%d vs %d ns)" coarse fine)
    true
    (float_of_int fine < 1.5 *. float_of_int coarse)

(* --- speedup and traffic sanity ------------------------------------------- *)

let test_sor_speedup () =
  let run np =
    let o = Apps.Sor.run (Config.make Config.Rt ~nprocs:np) { n = 96; iterations = 6 } in
    Apps.Outcome.elapsed_s o
  in
  let t1 = run 1 and t8 = run 8 in
  Alcotest.(check bool)
    (Printf.sprintf "8 processors beat 1 (%.3f vs %.3f)" t8 t1)
    true (t8 < t1)

let test_rt_ships_less_than_vm_on_cholesky () =
  (* The paper: the fine-grained lock-based application transfers far
     less under RT (9,128 vs 13,144 KB) because the dirtybit timestamps
     are an exact update history while VM concatenates whole
     incarnations. *)
  let run backend =
    let o = Apps.Cholesky.run (Config.make backend ~nprocs:8) { grid = 16 } in
    Apps.Outcome.data_received_kb_per_proc o
  in
  let rt = run Config.Rt and vm = run Config.Vm in
  Alcotest.(check bool)
    (Printf.sprintf "rt=%.1fKB < vm=%.1fKB" rt vm)
    true (rt < vm)

let test_determinism () =
  let run () =
    let o = Apps.Quicksort.run (Config.make Config.Rt ~nprocs:4) { n = 400; threshold = 20; slots = 128 } in
    (Midway.Runtime.elapsed_ns o.Apps.Outcome.machine, Apps.Outcome.data_received_kb_per_proc o)
  in
  Alcotest.(check bool) "identical reruns" true (run () = run ())

(* --- cholesky symbolic analysis ------------------------------------------- *)

let test_laplacian_spd_shape () =
  let k = 4 in
  let n = k * k in
  for i = 0 to n - 1 do
    (* strict diagonal dominance: sum |offdiag| < diag *)
    let diag = Apps.Cholesky.laplacian_entry k i i in
    let sum = ref 0.0 in
    for j = 0 to n - 1 do
      if j <> i then sum := !sum +. Float.abs (Apps.Cholesky.laplacian_entry k i j)
    done;
    if not (!sum < diag) then
      Alcotest.failf "row %d not diagonally dominant (%f vs %f)" i !sum diag
  done

let symbolic_props =
  QCheck.Test.make ~name:"cholesky symbolic analysis invariants" ~count:20
    QCheck.(int_range 2 9)
    (fun k ->
      let sym = Apps.Cholesky.symbolic_analyse k in
      let n = sym.Apps.Cholesky.n in
      n = k * k
      && Array.length sym.Apps.Cholesky.pattern = n
      && Array.for_all
           (fun p -> Array.length p > 0)
           sym.Apps.Cholesky.pattern
      (* diagonal first, strictly ascending rows *)
      && List.for_all
           (fun j ->
             let p = sym.Apps.Cholesky.pattern.(j) in
             p.(0) = j
             && (let ok = ref true in
                 for i = 1 to Array.length p - 1 do
                   if p.(i) <= p.(i - 1) then ok := false
                 done;
                 !ok))
           (List.init n (fun j -> j))
      (* nmod(j) equals the number of columns k < j whose pattern contains j *)
      && List.for_all
           (fun j ->
             let count = ref 0 in
             for c = 0 to j - 1 do
               if Array.exists (fun i -> i = j) sym.Apps.Cholesky.pattern.(c) then incr count
             done;
             !count = sym.Apps.Cholesky.nmod.(j))
           (List.init n (fun j -> j)))

let test_oracle_factor_correct () =
  (* L L^T must reproduce A within tolerance. *)
  let k = 5 in
  let sym = Apps.Cholesky.symbolic_analyse k in
  let n = sym.Apps.Cholesky.n in
  let vals = Apps.Cholesky.oracle_factor k sym in
  (* dense L for the check *)
  let l = Array.make_matrix n n 0.0 in
  Array.iteri
    (fun j p -> Array.iteri (fun idx i -> l.(i).(j) <- vals.(j).(idx)) p)
    sym.Apps.Cholesky.pattern;
  for i = 0 to n - 1 do
    for j = 0 to i do
      let acc = ref 0.0 in
      for c = 0 to n - 1 do
        acc := !acc +. (l.(i).(c) *. l.(j).(c))
      done;
      let expect = Apps.Cholesky.laplacian_entry k i j in
      if Float.abs (!acc -. expect) > 1e-9 then
        Alcotest.failf "LL^T(%d,%d) = %f but A = %f" i j !acc expect
    done
  done

(* --- common helpers --------------------------------------------------------- *)

let test_band_partition () =
  let n = 13 and nprocs = 4 in
  let pieces = List.init nprocs (fun p -> Apps.Common.band ~n ~nprocs p) in
  let total = List.fold_left (fun acc (lo, hi) -> acc + (hi - lo)) 0 pieces in
  Alcotest.(check int) "covers everything" n total;
  List.iteri
    (fun p (lo, hi) ->
      if p > 0 then begin
        let _, prev_hi = Apps.Common.band ~n ~nprocs (p - 1) in
        Alcotest.(check int) "contiguous" prev_hi lo
      end;
      for i = lo to hi - 1 do
        Alcotest.(check int) "owner_of inverse" p (Apps.Common.owner_of ~n ~nprocs i)
      done)
    pieces

let band_qcheck =
  QCheck.Test.make ~name:"band/owner_of are a consistent partition" ~count:200
    QCheck.(pair (int_range 1 200) (int_range 1 16))
    (fun (n, nprocs) ->
      let nprocs = min n nprocs in
      List.for_all
        (fun i ->
          let p = Apps.Common.owner_of ~n ~nprocs i in
          let lo, hi = Apps.Common.band ~n ~nprocs p in
          i >= lo && i < hi)
        (List.init n (fun i -> i)))

let test_approx_equal () =
  Alcotest.(check bool) "equal" true (Apps.Common.approx_equal 1.0 1.0);
  Alcotest.(check bool) "close" true (Apps.Common.approx_equal 1.0 (1.0 +. 1e-12));
  Alcotest.(check bool) "far" false (Apps.Common.approx_equal 1.0 1.1);
  Alcotest.(check bool) "near zero" true (Apps.Common.approx_equal 0.0 1e-13)

let () =
  Alcotest.run "apps"
    [
      ("matmul", matmul_tests);
      ("sor", sor_tests);
      ("water", water_tests);
      ("quicksort", quicksort_tests);
      ("cholesky", cholesky_tests);
      ( "granularity",
        granularity_tests
        @ [ Alcotest.test_case "rt cost flat across granularity" `Quick test_granularity_rt_flat ] );
      ( "behaviour",
        [
          Alcotest.test_case "sor speeds up" `Quick test_sor_speedup;
          Alcotest.test_case "rt ships less than vm (cholesky)" `Quick
            test_rt_ships_less_than_vm_on_cholesky;
          Alcotest.test_case "runs are deterministic" `Quick test_determinism;
        ] );
      ( "cholesky-symbolic",
        [
          Alcotest.test_case "test matrix diagonally dominant" `Quick test_laplacian_spd_shape;
          Alcotest.test_case "oracle factor satisfies A = LL^T" `Quick
            test_oracle_factor_correct;
          qtest symbolic_props;
        ] );
      ( "common",
        [
          Alcotest.test_case "band partition" `Quick test_band_partition;
          Alcotest.test_case "approx_equal" `Quick test_approx_equal;
          qtest band_qcheck;
        ] );
    ]
