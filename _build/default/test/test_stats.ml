(* Tests for the cost model (Table 1 constants and the derived-cost
   formulas behind Tables 3-5) and the per-processor counters. *)

module Cost_model = Midway_stats.Cost_model
module Counters = Midway_stats.Counters
module Derived = Midway_stats.Derived

let qtest = QCheck_alcotest.to_alcotest

(* --- Cost_model -------------------------------------------------------- *)

let test_default_matches_paper () =
  let cm = Cost_model.default in
  Alcotest.(check int) "cycle (25 MHz)" 40 cm.cycle_ns;
  Alcotest.(check int) "dirtybit set = 360 ns (9 cycles)" 360 cm.dirtybit_set_ns;
  Alcotest.(check int) "private set = 240 ns (6 cycles)" 240 cm.dirtybit_set_private_ns;
  Alcotest.(check int) "clean read = 217 ns" 217 cm.dirtybit_read_clean_ns;
  Alcotest.(check int) "dirty read = 187 ns" 187 cm.dirtybit_read_dirty_ns;
  Alcotest.(check int) "dirtybit update = 67 ns" 67 cm.dirtybit_update_ns;
  Alcotest.(check int) "page fault = 1,200 us" 1_200_000 cm.page_fault_ns;
  Alcotest.(check int) "uniform diff = 260 us" 260_000 cm.page_diff_uniform_ns;
  Alcotest.(check int) "alternating diff = 1,870 us" 1_870_000 cm.page_diff_alternating_ns;
  Alcotest.(check int) "protect rw = 125 us" 125_000 cm.page_protect_rw_ns;
  Alcotest.(check int) "protect ro = 127 us" 127_000 cm.page_protect_ro_ns;
  Alcotest.(check int) "copy cold = 84 us/KB" 84_000 cm.copy_kb_cold_ns;
  Alcotest.(check int) "copy warm = 26 us/KB" 26_000 cm.copy_kb_warm_ns;
  Alcotest.(check int) "page = 4 KB" 4096 cm.page_size

let test_with_page_fault_us () =
  let cm = Cost_model.with_page_fault_us Cost_model.default 122.0 in
  Alcotest.(check int) "fast exceptions" 122_000 cm.page_fault_ns;
  (* only the fault cost changes *)
  Alcotest.(check int) "diff untouched" 260_000 cm.page_diff_uniform_ns

let test_diff_cost_endpoints () =
  let cm = Cost_model.default in
  let words = cm.page_size / 4 in
  Alcotest.(check int) "uniform page" 260_000 (Cost_model.diff_cost_ns cm ~words ~transitions:0);
  Alcotest.(check int) "alternating page" 1_870_000
    (Cost_model.diff_cost_ns cm ~words ~transitions:words);
  Alcotest.(check int) "empty diff free" 0 (Cost_model.diff_cost_ns cm ~words:0 ~transitions:0);
  (* half a page with no transitions costs half the uniform diff *)
  Alcotest.(check int) "scales with page fraction" 130_000
    (Cost_model.diff_cost_ns cm ~words:(words / 2) ~transitions:0)

let diff_cost_monotone =
  QCheck.Test.make ~name:"diff cost grows with transitions" ~count:200
    QCheck.(pair (int_bound 1023) (int_bound 1023))
    (fun (a, b) ->
      let cm = Cost_model.default in
      let words = cm.page_size / 4 in
      let lo = min a b and hi = max a b in
      Cost_model.diff_cost_ns cm ~words ~transitions:lo
      <= Cost_model.diff_cost_ns cm ~words ~transitions:hi)

let test_copy_cost () =
  let cm = Cost_model.default in
  Alcotest.(check int) "1 KB warm" 26_000 (Cost_model.copy_cost_ns cm ~bytes:1024 ~warm:true);
  Alcotest.(check int) "1 KB cold" 84_000 (Cost_model.copy_cost_ns cm ~bytes:1024 ~warm:false);
  Alcotest.(check int) "4 KB page warm" 104_000
    (Cost_model.copy_cost_ns cm ~bytes:4096 ~warm:true)

(* --- Counters ----------------------------------------------------------- *)

let test_counters_add_average () =
  let a = Counters.create () and b = Counters.create () in
  a.Counters.dirtybits_set <- 10;
  a.Counters.data_received_bytes <- 100;
  b.Counters.dirtybits_set <- 30;
  b.Counters.data_received_bytes <- 300;
  let total = Counters.total [| a; b |] in
  Alcotest.(check int) "total sets" 40 total.Counters.dirtybits_set;
  let avg = Counters.average [| a; b |] in
  Alcotest.(check int) "avg sets" 20 avg.Counters.dirtybits_set;
  Alcotest.(check int) "avg bytes" 200 avg.Counters.data_received_bytes;
  (* inputs untouched *)
  Alcotest.(check int) "a unchanged" 10 a.Counters.dirtybits_set

let test_counters_reset () =
  let a = Counters.create () in
  a.Counters.write_faults <- 5;
  a.Counters.trap_time_ns <- 123;
  Counters.reset a;
  Alcotest.(check int) "faults" 0 a.Counters.write_faults;
  Alcotest.(check int) "trap time" 0 a.Counters.trap_time_ns

let test_percent_dirty () =
  let a = Counters.create () in
  Alcotest.(check (float 1e-9)) "no scans" 0.0 (Counters.percent_dirty_data a);
  a.Counters.bound_bytes_scanned <- 1000;
  a.Counters.dirty_bytes_found <- 557;
  Alcotest.(check (float 1e-9)) "ratio" 55.7 (Counters.percent_dirty_data a)

let test_average_empty () =
  let avg = Counters.average [||] in
  Alcotest.(check int) "zero" 0 avg.Counters.dirtybits_set

(* --- Derived: the Tables 3-5 formulas, checked against the paper's own
   worked example (water) --------------------------------------------- *)

let water_rt () =
  let c = Counters.create () in
  c.Counters.dirtybits_set <- 43_180;
  c.Counters.clean_dirtybits_read <- 48_552;
  c.Counters.dirty_dirtybits_read <- 11_280;
  c.Counters.dirtybits_updated <- 35_676;
  c

let water_vm () =
  let c = Counters.create () in
  c.Counters.write_faults <- 258;
  c.Counters.pages_diffed <- 253;
  c.Counters.pages_write_protected <- 253;
  c.Counters.twin_update_bytes <- 976 * 1024;
  c

let test_table3_water () =
  (* Paper: "each processor set 43,180 dirtybits ... for a total time of
     16 msecs; ... 258 write faults ... for a total time of 310 msecs." *)
  let d = Derived.trapping Cost_model.default ~rt:(water_rt ()) ~vm:(water_vm ()) in
  Alcotest.(check int) "RT trapping = counts x 360 ns" (43_180 * 360) d.Derived.rt_ns;
  Alcotest.(check int) "VM trapping = faults x 1.2 ms" (258 * 1_200_000) d.Derived.vm_ns;
  Alcotest.(check bool) "RT ~ 15.6 ms" true
    (let ms = float_of_int d.Derived.rt_ns /. 1e6 in
     ms > 15.0 && ms < 16.0);
  Alcotest.(check bool) "VM ~ 310 ms" true
    (let ms = float_of_int d.Derived.vm_ns /. 1e6 in
     ms > 309.0 && ms < 310.0)

let test_table4_water () =
  let d = Derived.collection Cost_model.default ~rt:(water_rt ()) ~vm:(water_vm ()) in
  let ms ns = float_of_int ns /. 1e6 in
  (* Paper Table 4, water column: 10.5 / 2.0 / 2.4 => 14.9; 65.8 / 32.1 /
     25.4 => 123.3. *)
  Alcotest.(check bool) "clean reads ~10.5" true (abs_float (ms d.Derived.rt_clean_reads_ns -. 10.5) < 0.1);
  Alcotest.(check bool) "dirty reads ~2.1" true (abs_float (ms d.Derived.rt_dirty_reads_ns -. 2.1) < 0.1);
  Alcotest.(check bool) "updates ~2.4" true (abs_float (ms d.Derived.rt_updates_ns -. 2.4) < 0.1);
  Alcotest.(check bool) "rt total ~14.9" true (abs_float (ms d.Derived.rt_total_ns -. 14.9) < 0.2);
  Alcotest.(check bool) "diff ~65.8" true (abs_float (ms d.Derived.vm_diff_ns -. 65.8) < 0.1);
  Alcotest.(check bool) "protect ~32.1" true (abs_float (ms d.Derived.vm_protect_ns -. 32.1) < 0.1);
  Alcotest.(check bool) "twin ~25.4" true (abs_float (ms d.Derived.vm_twin_update_ns -. 25.4) < 0.1);
  Alcotest.(check bool) "vm total ~123.3" true (abs_float (ms d.Derived.vm_total_ns -. 123.3) < 0.3)

let test_table5_water () =
  let d = Derived.references Cost_model.default ~rt:(water_rt ()) ~vm:(water_vm ()) in
  (* Paper Table 5, water: RT 43/96 (we compute 95.5k), VM 510 (we
     compute 528k: 258 faults x 2048 refs) / 768. *)
  Alcotest.(check int) "rt trap refs" 43_180 d.Derived.rt_trap_refs;
  Alcotest.(check int) "rt collect refs" (48_552 + 11_280 + 35_676) d.Derived.rt_collect_refs;
  Alcotest.(check int) "vm trap refs" (258 * 2 * 1024) d.Derived.vm_trap_refs;
  Alcotest.(check int) "vm collect refs"
    ((253 * 2 * 1024) + (976 * 1024 / 4))
    d.Derived.vm_collect_refs

let trapping_linear_in_fault_cost =
  QCheck.Test.make ~name:"VM trapping is linear in the fault cost" ~count:100
    QCheck.(pair (int_range 1 5_000) (int_range 1 2_000))
    (fun (faults, fault_us) ->
      let vm = Counters.create () in
      vm.Counters.write_faults <- faults;
      let cm = Cost_model.with_page_fault_us Cost_model.default (float_of_int fault_us) in
      let d = Derived.trapping cm ~rt:(Counters.create ()) ~vm in
      d.Derived.vm_ns = faults * fault_us * 1_000)

let () =
  Alcotest.run "stats"
    [
      ( "cost_model",
        [
          Alcotest.test_case "paper Table 1 values" `Quick test_default_matches_paper;
          Alcotest.test_case "fault sweep knob" `Quick test_with_page_fault_us;
          Alcotest.test_case "diff cost endpoints" `Quick test_diff_cost_endpoints;
          Alcotest.test_case "copy cost" `Quick test_copy_cost;
          qtest diff_cost_monotone;
        ] );
      ( "counters",
        [
          Alcotest.test_case "add/average/total" `Quick test_counters_add_average;
          Alcotest.test_case "reset" `Quick test_counters_reset;
          Alcotest.test_case "percent dirty" `Quick test_percent_dirty;
          Alcotest.test_case "empty average" `Quick test_average_empty;
        ] );
      ( "derived",
        [
          Alcotest.test_case "Table 3 worked example (water)" `Quick test_table3_water;
          Alcotest.test_case "Table 4 worked example (water)" `Quick test_table4_water;
          Alcotest.test_case "Table 5 worked example (water)" `Quick test_table5_water;
          qtest trapping_linear_in_fault_cost;
        ] );
    ]
