(* Tests for the interconnect model: transfer-time arithmetic and
   per-processor payload accounting. *)

module Net = Midway_simnet.Net

let qtest = QCheck_alcotest.to_alcotest

let test_transfer_time () =
  let net = Net.create ~latency_ns:150_000 ~ns_per_byte:57 ~header_bytes:64 ~nprocs:2 () in
  Alcotest.(check int) "empty message = latency + header"
    (150_000 + (64 * 57))
    (Net.transfer_ns net ~payload_bytes:0);
  Alcotest.(check int) "1 KB payload"
    (150_000 + ((64 + 1024) * 57))
    (Net.transfer_ns net ~payload_bytes:1024)

let test_send_accounting () =
  let net = Net.create ~nprocs:3 () in
  let t1 = Net.send net ~kind:Net.Lock_request ~src:0 ~dst:1 ~payload_bytes:100 ~at:5 in
  Alcotest.(check bool) "delivery after send" true (t1 > 5);
  ignore (Net.send net ~kind:Net.Lock_reply ~src:1 ~dst:0 ~payload_bytes:200 ~at:t1);
  Alcotest.(check int) "p0 sent one message" 1 (Net.messages_sent net ~proc:0);
  Alcotest.(check int) "p1 sent one message" 1 (Net.messages_sent net ~proc:1);
  Alcotest.(check int) "p0 payload out" 100 (Net.bytes_sent net ~proc:0);
  Alcotest.(check int) "p0 payload in" 200 (Net.bytes_received net ~proc:0);
  Alcotest.(check int) "totals" 2 (Net.total_messages net);
  Alcotest.(check int) "total payload" 300 (Net.total_payload_bytes net);
  Alcotest.(check int) "kind counter" 1 (Net.messages_of_kind net Net.Lock_request)

let test_self_send_free () =
  let net = Net.create ~nprocs:2 () in
  let t = Net.send net ~kind:Net.Barrier_arrive ~src:1 ~dst:1 ~payload_bytes:4096 ~at:77 in
  Alcotest.(check int) "no time" 77 t;
  Alcotest.(check int) "no message" 0 (Net.total_messages net);
  Alcotest.(check int) "no payload" 0 (Net.total_payload_bytes net)

let test_overhead_excluded_from_accounting () =
  let net = Net.create ~latency_ns:0 ~ns_per_byte:1 ~header_bytes:0 ~nprocs:2 () in
  let t = Net.send ~overhead_bytes:50 net ~kind:Net.Lock_reply ~src:0 ~dst:1 ~payload_bytes:10 ~at:0 in
  Alcotest.(check int) "wire time includes overhead" 60 t;
  Alcotest.(check int) "accounting excludes overhead" 10 (Net.bytes_sent net ~proc:0)

let test_validation () =
  let net = Net.create ~nprocs:2 () in
  Alcotest.check_raises "bad proc" (Invalid_argument "Net.send: processor out of range")
    (fun () -> ignore (Net.send net ~kind:Net.Startup ~src:0 ~dst:2 ~payload_bytes:0 ~at:0));
  Alcotest.check_raises "negative payload" (Invalid_argument "Net.send: negative payload")
    (fun () -> ignore (Net.send net ~kind:Net.Startup ~src:0 ~dst:1 ~payload_bytes:(-1) ~at:0))

let test_kind_names () =
  List.iter
    (fun k -> Alcotest.(check bool) "nonempty name" true (String.length (Net.kind_name k) > 0))
    [ Net.Lock_request; Net.Lock_reply; Net.Lock_forward; Net.Barrier_arrive;
      Net.Barrier_release; Net.Startup ]

let delivery_monotone =
  QCheck.Test.make ~name:"delivery time grows with payload" ~count:200
    QCheck.(pair (int_bound 100_000) (int_bound 100_000))
    (fun (a, b) ->
      let net = Net.create ~nprocs:2 () in
      let lo = min a b and hi = max a b in
      Net.send net ~kind:Net.Lock_reply ~src:0 ~dst:1 ~payload_bytes:lo ~at:0
      <= Net.send net ~kind:Net.Lock_reply ~src:0 ~dst:1 ~payload_bytes:hi ~at:0)

let accounting_balance =
  QCheck.Test.make ~name:"bytes sent equals bytes received across the fabric" ~count:100
    QCheck.(list (pair (pair (int_bound 3) (int_bound 3)) (int_bound 10_000)))
    (fun msgs ->
      let net = Net.create ~nprocs:4 () in
      List.iter
        (fun ((src, dst), bytes) ->
          ignore (Net.send net ~kind:Net.Lock_reply ~src ~dst ~payload_bytes:bytes ~at:0))
        msgs;
      let sent = List.init 4 (fun p -> Net.bytes_sent net ~proc:p) |> List.fold_left ( + ) 0 in
      let recv =
        List.init 4 (fun p -> Net.bytes_received net ~proc:p) |> List.fold_left ( + ) 0
      in
      sent = recv)

let () =
  Alcotest.run "simnet"
    [
      ( "net",
        [
          Alcotest.test_case "transfer time" `Quick test_transfer_time;
          Alcotest.test_case "send accounting" `Quick test_send_accounting;
          Alcotest.test_case "self-send free" `Quick test_self_send_free;
          Alcotest.test_case "overhead bytes" `Quick test_overhead_excluded_from_accounting;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "kind names" `Quick test_kind_names;
          qtest delivery_monotone;
          qtest accounting_balance;
        ] );
    ]
