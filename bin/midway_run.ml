(* Run one benchmark application on the simulated DSM and report its
   statistics.

   Usage:
     midway-run sor --backend rt --nprocs 8 --scale 0.5
     midway-run water --backend vm
     midway-run cholesky --backend standalone *)

module Counters = Midway_stats.Counters

let print_stats outcome =
  let machine = outcome.Midway_apps.Outcome.machine in
  let avg = Midway_apps.Outcome.avg_counters outcome in
  let net = Midway.Runtime.net machine in
  Printf.printf "simulated time      : %s\n"
    (Midway_util.Units.pp_time (Midway.Runtime.elapsed_ns machine));
  Printf.printf "messages            : %d\n" (Midway_simnet.Net.total_messages net);
  Printf.printf "payload on the wire : %s\n"
    (Midway_util.Units.pp_bytes (Midway_simnet.Net.total_payload_bytes net));
  Printf.printf "per-processor averages:\n";
  Printf.printf "  data received          : %s\n"
    (Midway_util.Units.pp_bytes avg.Counters.data_received_bytes);
  Printf.printf "  lock acquires          : %d local, %d remote\n"
    avg.Counters.lock_acquires_local avg.Counters.lock_acquires_remote;
  Printf.printf "  barrier crossings      : %d\n" avg.Counters.barrier_crossings;
  Printf.printf "  dirtybits set          : %d (%d misclassified)\n" avg.Counters.dirtybits_set
    avg.Counters.dirtybits_misclassified;
  Printf.printf "  dirtybits read         : %d clean, %d dirty\n"
    avg.Counters.clean_dirtybits_read avg.Counters.dirty_dirtybits_read;
  Printf.printf "  dirtybits updated      : %d\n" avg.Counters.dirtybits_updated;
  Printf.printf "  write faults           : %d\n" avg.Counters.write_faults;
  Printf.printf "  pages diffed/protected : %d / %d\n" avg.Counters.pages_diffed
    avg.Counters.pages_write_protected;
  Printf.printf "  twin bytes updated     : %s\n"
    (Midway_util.Units.pp_bytes avg.Counters.twin_update_bytes);
  Printf.printf "  percent dirty data     : %.1f%%\n" (Counters.percent_dirty_data avg);
  Printf.printf "  trapping time          : %s\n"
    (Midway_util.Units.pp_time avg.Counters.trap_time_ns);
  Printf.printf "  collection time        : %s\n"
    (Midway_util.Units.pp_time avg.Counters.collect_time_ns)

let run app_name backend_name nprocs scale rt_mode_name untargetted adaptive crash_spec
    trace_n ecsan obs trace_out metrics_out =
  let app =
    match Midway_report.Suite.app_of_string app_name with
    | Ok a -> a
    | Error msg ->
        Printf.eprintf "%s\n" msg;
        exit 2
  in
  let backend =
    match Midway.Config.backend_of_string backend_name with
    | Ok b -> b
    | Error msg ->
        Printf.eprintf "%s\n" msg;
        exit 2
  in
  let rt_mode =
    match rt_mode_name with
    | "plain" -> Midway.Config.Plain
    | "two-level" -> Midway.Config.Two_level
    | "update-queue" -> Midway.Config.Update_queue
    | s ->
        Printf.eprintf "unknown rt mode %S (expected plain|two-level|update-queue)\n" s;
        exit 2
  in
  if ecsan && untargetted then begin
    Printf.eprintf "--ecsan does not support the untargetted model (no per-lock bindings to check)\n";
    exit 2
  end;
  if adaptive && not (backend = Midway.Config.Rt || backend = Midway.Config.Vm) then begin
    Printf.eprintf "--adaptive needs --backend rt or vm (the per-region electable backends)\n";
    exit 2
  end;
  if adaptive && untargetted then begin
    Printf.eprintf "--adaptive needs per-lock bindings (not the untargetted model)\n";
    exit 2
  end;
  let nprocs = if backend = Midway.Config.Standalone then 1 else nprocs in
  let crash_plan =
    match crash_spec with
    | None -> None
    | Some _ when backend = Midway.Config.Standalone ->
        Printf.eprintf "--crash needs a distributed backend (standalone has no peers to fail over to)\n";
        exit 2
    | Some s -> (
        match Midway_simnet.Crash.parse_spec ~nprocs s with
        | Ok plan -> Some plan
        | Error msg ->
            Printf.eprintf "--crash: %s\n" msg;
            exit 2)
  in
  (* An export destination implies the observability layer. *)
  let obs = obs || trace_out <> None || metrics_out <> None in
  let cfg =
    {
      (Midway.Config.make backend ~nprocs) with
      Midway.Config.rt_mode;
      untargetted;
      adaptive;
      trace_capacity = trace_n;
      ecsan;
      obs;
    }
  in
  let cfg =
    match crash_plan with None -> cfg | Some plan -> Midway.Config.with_crash plan cfg
  in
  let t0 = Unix.gettimeofday () in
  let outcome = Midway_report.Suite.run_app app cfg ~scale in
  let host = Unix.gettimeofday () -. t0 in
  Format.printf "%a@.@." Midway_apps.Outcome.pp outcome;
  print_stats outcome;
  (match crash_plan with
  | None -> ()
  | Some plan ->
      let machine = outcome.Midway_apps.Outcome.machine in
      let killed = Midway.Runtime.killed_procs machine in
      Printf.printf "crash plan          : %s\n" (Midway_simnet.Crash.render plan);
      Printf.printf "  crashed processors     : %s\n"
        (if killed = [] then "none"
         else String.concat "," (List.map (Printf.sprintf "p%d") killed));
      Printf.printf "  quorum failovers       : %d\n" (Midway.Runtime.failover_count machine);
      Printf.printf "  availability           : %.2f\n" (Midway.Runtime.availability machine));
  if adaptive then begin
    let machine = outcome.Midway_apps.Outcome.machine in
    Printf.printf "adaptive detection  : %d backend switch(es)\n"
      (Midway.Runtime.backend_switches machine);
    match Midway.Runtime.region_assignments machine with
    | [] -> ()
    | l ->
        Printf.printf "  re-elected regions     : %s\n"
          (String.concat ", "
             (List.map
                (fun (r, b) -> Printf.sprintf "%d->%s" r (Midway.Config.backend_name b))
                l))
  end;
  Printf.printf "host time           : %.2f s\n" host;
  if trace_n > 0 then begin
    let tr = Midway.Runtime.trace outcome.Midway_apps.Outcome.machine in
    Printf.printf "\nlast %d of %d protocol events:\n%s" (Midway.Trace.length tr)
      (Midway.Trace.total tr) (Midway.Trace.dump tr)
  end;
  (match Midway.Runtime.obs outcome.Midway_apps.Outcome.machine with
  | None -> ()
  | Some o ->
      let run_name = Printf.sprintf "%s/%s n=%d" app_name backend_name nprocs in
      (match trace_out with
      | Some file ->
          Midway_obs.Trace_export.write file
            (Midway_obs.Trace_export.to_json ~name:run_name (Midway_obs.Obs.spans o));
          Printf.printf "\nwrote %d span(s)%s to %s (open in Perfetto / chrome://tracing)\n"
            (Midway_obs.Obs.span_count o)
            (match Midway_obs.Obs.dropped o with
            | 0 -> ""
            | d -> Printf.sprintf " (+%d dropped past --obs cap)" d)
            file
      | None -> ());
      let snap = Midway_obs.Metrics.snapshot (Midway_obs.Obs.metrics o) in
      (match metrics_out with
      | Some file ->
          Midway_obs.Trace_export.write file (Midway_obs.Metrics.to_json snap);
          Printf.printf "wrote metrics to %s\n" file
      | None -> ());
      if trace_out = None && metrics_out = None then
        Printf.printf "\n%s" (Midway_obs.Metrics.render_markdown snap));
  if ecsan then begin
    let rep = Midway.Runtime.check_report outcome.Midway_apps.Outcome.machine in
    Printf.printf "\n%s" (Midway_check.Report.render rep);
    if Midway_check.Report.has_violations rep then exit 1
  end;
  if not outcome.Midway_apps.Outcome.ok then exit 1

open Cmdliner

let app_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"APP")

let backend =
  Arg.(
    value & opt string "rt"
    & info [ "backend"; "b" ] ~docv:"BACKEND" ~doc:"rt, vm, blast or standalone.")

let nprocs = Arg.(value & opt int 8 & info [ "nprocs"; "n" ] ~docv:"N")

let scale =
  Arg.(
    value & opt float 0.25
    & info [ "scale"; "s" ] ~docv:"S" ~doc:"Problem scale (1.0 = paper parameters).")

let rt_mode =
  Arg.(
    value & opt string "plain"
    & info [ "rt-mode" ] ~docv:"MODE"
        ~doc:"RT trapping organization: plain, two-level or update-queue.")

let untargetted =
  Arg.(
    value & flag
    & info [ "untargetted" ]
        ~doc:"Use the untargetted consistency model (RT backend, lock-based programs only).")

let adaptive =
  Arg.(
    value & flag
    & info [ "adaptive" ]
        ~doc:
          "Arm the per-region adaptive hybrid write detection controller: regions start on \
           the configured backend (rt or vm) and are re-elected online at safe points from \
           observed transfer costs (see doc/ADAPTIVE.md).")

let crash_spec =
  Arg.(
    value & opt (some string) None
    & info [ "crash" ] ~docv:"SPEC"
        ~doc:
          "Arm node-level faults: scripted ($(i,stop\\@2ms:p1,recover\\@8ms:p1)) or seeded \
           ($(i,n=2,seed=7)).  Crashed processors' locks fail over to live peers by majority \
           quorum; the run completes with the survivors and reports failovers and \
           availability.")

let trace_n =
  Arg.(
    value & opt int 0
    & info [ "trace" ] ~docv:"N" ~doc:"Print the last N protocol events of the run.")

let ecsan =
  Arg.(
    value & flag
    & info [ "ecsan" ]
        ~doc:
          "Run under the entry-consistency sanitizer: report unsynchronized accesses, \
           writes under shared holds, unbound shared data, misclassified private stores, \
           stale-binding accesses and binding-table lint, and exit nonzero on any violation.")

let obs =
  Arg.(
    value & flag
    & info [ "obs" ]
        ~doc:
          "Arm the observability layer (protocol spans + metrics registry) and print the \
           metrics summary after the run.  Implied by $(b,--trace-out) / $(b,--metrics-out).")

let trace_out =
  Arg.(
    value & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write the run's protocol spans as Chrome trace-event JSON (one Perfetto track per \
           processor, simulated timeline) to $(docv).")

let metrics_out =
  Arg.(
    value & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"Write the run's metrics registry (counters + histograms) as JSON to $(docv).")

let cmd =
  let doc = "run one DSM benchmark application" in
  Cmd.v (Cmd.info "midway-run" ~doc)
    Term.(
      const run $ app_arg $ backend $ nprocs $ scale $ rt_mode $ untargetted $ adaptive
      $ crash_spec $ trace_n $ ecsan $ obs $ trace_out $ metrics_out)

let () = exit (Cmd.eval cmd)
