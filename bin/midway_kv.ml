(* Drive the sharded KV store with a YCSB-style open-loop workload and
   report throughput and latency percentiles, checked end to end by the
   refinement oracle.

   Usage:
     midway-kv --backend rt --nprocs 4 --keys 1024 --buckets 32 \
               --requests 1000000 --workload a --theta 0.99
     midway-kv --migrate-every 50 --crash 'stop@2ms:p1'
     midway-kv --obs --trace-out kv.json --metrics-out kv-metrics.json

   Exit status: 1 on a refinement violation or (with --ecsan) a
   sanitizer finding, 0 otherwise. *)

module Config = Midway.Config
module R = Midway.Runtime
module Metrics = Midway_obs.Metrics
module Kvstore = Midway_kv.Kvstore
module Ycsb = Midway_explore.Ycsb
module Kv_workload = Midway_explore.Kv_workload

let die fmt = Printf.ksprintf (fun msg -> prerr_endline msg; exit 2) fmt

(* Merge one metric's histograms across labels (identical layouts — one
   metric name has one bucket spec) for the all-operations row. *)
let merged_hist snap ~name =
  let views =
    List.filter_map (fun l -> Metrics.find_hist snap ~name ~label:l) (Metrics.labels_of snap ~name)
  in
  match views with
  | [] -> None
  | first :: rest ->
      Some
        (List.fold_left
           (fun (acc : Metrics.hist_view) (h : Metrics.hist_view) ->
             {
               acc with
               Metrics.h_counts = Array.mapi (fun i c -> c + h.Metrics.h_counts.(i)) acc.Metrics.h_counts;
               h_sum = acc.Metrics.h_sum + h.Metrics.h_sum;
               h_count = acc.Metrics.h_count + h.Metrics.h_count;
               h_min = min acc.Metrics.h_min h.Metrics.h_min;
               h_max = max acc.Metrics.h_max h.Metrics.h_max;
             })
           first rest)

let latency_row label (h : Metrics.hist_view) =
  Printf.printf "  %-8s %9d  %9.1f  %9d  %9d  %9d  %9d\n" label h.Metrics.h_count
    (float_of_int h.Metrics.h_sum /. float_of_int (max 1 h.Metrics.h_count))
    (Metrics.quantile_le h 0.50) (Metrics.quantile_le h 0.95) (Metrics.quantile_le h 0.99)
    h.Metrics.h_max

let run backend_name nprocs keys buckets requests workload_name dist_name theta arrival_ns
    max_scan seed service_ns preload migrate_every broken crash_spec ecsan obs trace_out
    metrics_out =
  let backend =
    match Config.backend_of_string backend_name with Ok b -> b | Error msg -> die "%s" msg
  in
  if backend = Config.Standalone then die "midway-kv needs a distributed backend";
  let mix =
    match String.lowercase_ascii workload_name with
    | "a" -> Ycsb.mix_a
    | "b" -> Ycsb.mix_b
    | "c" -> Ycsb.mix_c
    | "e" -> Ycsb.mix_e
    | "crud" -> Ycsb.mix_crud
    | s -> die "unknown workload mix %S (expected a|b|c|e|crud)" s
  in
  let dist =
    match String.lowercase_ascii dist_name with
    | "uniform" -> Ycsb.Uniform
    | "zipfian" -> Ycsb.Zipfian theta
    | "scrambled" -> Ycsb.Scrambled_zipfian theta
    | s -> die "unknown distribution %S (expected uniform|zipfian|scrambled)" s
  in
  let arrival = if arrival_ns <= 0 then Ycsb.Closed else Ycsb.Poisson arrival_ns in
  let per_client = max 1 (requests / nprocs) in
  let preload = if preload < 0 then keys / 2 else preload in
  let obs = obs || trace_out <> None || metrics_out <> None in
  let cfg = { (Config.make backend ~nprocs) with Config.ecsan; obs } in
  let cfg =
    match crash_spec with
    | None -> cfg
    | Some s -> (
        match Midway_simnet.Crash.parse_spec ~nprocs s with
        | Ok plan -> Config.with_crash plan cfg
        | Error msg -> die "--crash: %s" msg)
  in
  let kv_cfg =
    {
      Kv_workload.ycsb =
        { Ycsb.keys; requests = per_client; mix; dist; arrival; max_scan; seed };
      buckets;
      service_ns;
      preload;
      migrate_every;
      broken_migration = broken;
    }
  in
  let machine = R.create cfg in
  let store, prog = Kv_workload.build machine kv_cfg in
  let t0 = Unix.gettimeofday () in
  R.run machine prog;
  let host = Unix.gettimeofday () -. t0 in
  let elapsed = R.elapsed_ns machine in
  let n_req = Kvstore.request_count store in
  Printf.printf "workload            : %s, %s, %d clients x %d requests, %d keys / %d buckets\n"
    (Ycsb.mix_name mix) dist_name nprocs per_client keys buckets;
  Printf.printf "backend             : %s\n" backend_name;
  Printf.printf "simulated time      : %s\n" (Midway_util.Units.pp_time elapsed);
  Printf.printf "requests completed  : %d\n" n_req;
  Printf.printf "throughput          : %.0f req/s (simulated)\n"
    (float_of_int n_req /. (float_of_int (max 1 elapsed) /. 1e9));
  Printf.printf "host time           : %.2f s (%.0f req/s)\n" host (float_of_int n_req /. host);
  let snap = Metrics.snapshot (Kvstore.metrics store) in
  Printf.printf "\nsojourn latency (ns, p* are bucket upper bounds):\n";
  Printf.printf "  %-8s %9s  %9s  %9s  %9s  %9s  %9s\n" "op" "count" "mean" "p50" "p95" "p99"
    "max";
  (match merged_hist snap ~name:"kv_latency_ns" with
  | Some h -> latency_row "all" h
  | None -> ());
  List.iter
    (fun label ->
      match Metrics.find_hist snap ~name:"kv_latency_ns" ~label with
      | Some h -> latency_row label h
      | None -> ())
    (Metrics.labels_of snap ~name:"kv_latency_ns");
  (match (R.killed_procs machine, cfg.Config.crash) with
  | [], None -> ()
  | killed, _ ->
      Printf.printf "\ncrashed processors  : %s\n"
        (if killed = [] then "none"
         else String.concat "," (List.map (Printf.sprintf "p%d") killed));
      Printf.printf "quorum failovers    : %d\n" (R.failover_count machine);
      Printf.printf "availability        : %.2f\n" (R.availability machine));
  (* exports *)
  (match R.obs machine with
  | None -> ()
  | Some o ->
      let run_name = Printf.sprintf "kv/%s n=%d" backend_name nprocs in
      (match trace_out with
      | Some file ->
          Midway_obs.Trace_export.write file
            (Midway_obs.Trace_export.to_json ~name:run_name (Midway_obs.Obs.spans o));
          Printf.printf "\nwrote %d span(s) to %s\n" (Midway_obs.Obs.span_count o) file
      | None -> ());
      match metrics_out with
      | Some file ->
          let machine_snap = Metrics.snapshot (Midway_obs.Obs.metrics o) in
          Midway_obs.Trace_export.write file
            (Midway_util.Json.Obj
               [ ("machine", Metrics.to_json machine_snap); ("kv", Metrics.to_json snap) ]);
          Printf.printf "wrote metrics to %s\n" file
      | None -> ());
  (* the refinement oracle *)
  let violations = Kvstore.check store in
  (match violations with
  | [] -> Printf.printf "\nrefinement oracle   : ok (%d observation(s) linearized)\n"
            (List.length (Kvstore.observations store))
  | v ->
      Printf.printf "\nrefinement oracle   : %d violation(s)\n" (List.length v);
      List.iteri (fun i msg -> if i < 10 then Printf.printf "  %s\n" msg) v);
  let invariants = R.check_invariants machine in
  if invariants <> [] then begin
    Printf.printf "invariant violations:\n";
    List.iter (Printf.printf "  %s\n") invariants
  end;
  let ecsan_bad =
    if ecsan then begin
      let rep = R.check_report machine in
      print_string (Midway_check.Report.render rep);
      Midway_check.Report.has_violations rep
    end
    else false
  in
  if violations <> [] || invariants <> [] || ecsan_bad then exit 1

open Cmdliner

let backend =
  Arg.(
    value & opt string "rt" & info [ "backend"; "b" ] ~docv:"BACKEND" ~doc:"rt, vm or blast.")

let nprocs = Arg.(value & opt int 4 & info [ "nprocs"; "n" ] ~docv:"N" ~doc:"Client processors.")
let keys = Arg.(value & opt int 1024 & info [ "keys" ] ~docv:"K" ~doc:"Keyspace size.")

let buckets =
  Arg.(value & opt int 32 & info [ "buckets" ] ~docv:"B" ~doc:"Shards (must divide --keys).")

let requests =
  Arg.(
    value & opt int 20_000
    & info [ "requests" ] ~docv:"R" ~doc:"Total requests, split evenly across clients.")

let workload =
  Arg.(
    value & opt string "a"
    & info [ "workload"; "w" ] ~docv:"MIX"
        ~doc:
          "Operation mix: $(b,a) (50/50 get/put), $(b,b) (95/5), $(b,c) (read-only), $(b,e) \
           (95% scan), $(b,crud) (70/20/5/5 get/put/delete/scan).")

let dist =
  Arg.(
    value & opt string "zipfian"
    & info [ "dist" ] ~docv:"D"
        ~doc:"Key popularity: uniform, zipfian (rank-ordered) or scrambled (hashed ranks).")

let theta =
  Arg.(
    value & opt float 0.99
    & info [ "theta" ] ~docv:"T" ~doc:"Zipfian skew in (0, 1); YCSB's default is 0.99.")

let arrival_ns =
  Arg.(
    value & opt int 2_000
    & info [ "arrival-ns" ] ~docv:"NS"
        ~doc:
          "Mean Poisson inter-arrival per client (open loop: latency counts from the \
           schedule).  0 = closed loop.")

let max_scan =
  Arg.(value & opt int 16 & info [ "max-scan" ] ~docv:"L" ~doc:"Scan lengths uniform in [1, L].")

let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"Workload seed.")

let service_ns =
  Arg.(
    value & opt int 300
    & info [ "service-ns" ] ~docv:"NS" ~doc:"Simulated service time inside each critical section.")

let preload =
  Arg.(
    value & opt int (-1)
    & info [ "preload" ] ~docv:"P" ~doc:"Keys preloaded before the run (default: half).")

let migrate_every =
  Arg.(
    value & opt int 0
    & info [ "migrate-every" ] ~docv:"M"
        ~doc:
          "Each client re-homes one bucket to itself (by lock re-binding) after every M-th \
           request.  0 = never.")

let broken =
  Arg.(
    value & flag
    & info [ "broken-migration" ]
        ~doc:"Demo bug: migrations drop the presence flags (the oracle must catch it).")

let crash_spec =
  Arg.(
    value & opt (some string) None
    & info [ "crash" ] ~docv:"SPEC"
        ~doc:
          "Arm node-level faults: scripted ($(i,stop\\@2ms:p1)) or seeded ($(i,n=1,seed=7)); \
           the store's buckets fail over by majority quorum and the oracle checks the \
           survivors' view.")

let ecsan = Arg.(value & flag & info [ "ecsan" ] ~doc:"Run under the entry-consistency sanitizer.")

let obs =
  Arg.(
    value & flag
    & info [ "obs" ]
        ~doc:
          "Arm the observability layer: per-request spans on the simulated timeline.  Implied \
           by $(b,--trace-out) / $(b,--metrics-out).")

let trace_out =
  Arg.(
    value & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:"Write protocol + kv_request spans as Chrome trace-event JSON to $(docv).")

let metrics_out =
  Arg.(
    value & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write the machine and store registries as JSON ($(i,{\"machine\": .., \"kv\": ..})) \
           to $(docv).")

let cmd =
  let doc = "YCSB-style open-loop benchmark of the sharded KV store over Midway EC" in
  Cmd.v (Cmd.info "midway-kv" ~doc)
    Term.(
      const run $ backend $ nprocs $ keys $ buckets $ requests $ workload $ dist $ theta
      $ arrival_ns $ max_scan $ seed $ service_ns $ preload $ migrate_every $ broken
      $ crash_spec $ ecsan $ obs $ trace_out $ metrics_out)

let () = exit (Cmd.eval cmd)
