(* Validator behind @crashsmoke: run the canonical failover scenario —
   the [crashy] workload kills the lock owner 10 us into its first
   critical section, while it holds the lock — and prove the survivors
   complete through the quorum recovery protocol rather than by luck or
   by the watchdog.  Checks, per backend:
   - the oracle verdict (convergence, the ledger invariant, no survivor
     lost a committed section);
   - exactly processor 0 crash-stopped, so availability is 3/4;
   - at least one quorum ownership transfer actually happened;
   - the run finished in ordinary virtual time, far below the watchdog
     (completion must come from failover, not from the livelock guard);
   - every protocol invariant still holds. *)

module R = Midway.Runtime
module Workload = Midway_explore.Workload

let failures = ref 0

let check cond fmt =
  Printf.ksprintf
    (fun msg ->
      if not cond then begin
        incr failures;
        Printf.eprintf "crash_check: FAILED: %s\n" msg
      end)
    fmt

let run_backend backend =
  let name = Midway.Config.backend_name backend in
  let cfg = Midway.Config.make backend ~nprocs:4 in
  let w = Workload.crashy ~iters:6 in
  let o = w.Workload.run cfg in
  check o.Workload.ok "[%s] oracle: %s" name o.Workload.detail;
  match o.Workload.machine with
  | None -> check false "[%s] machine lost: %s" name o.Workload.detail
  | Some m ->
      check (R.killed_procs m = [ 0 ]) "[%s] killed procs %s, expected p0 only" name
        (String.concat "," (List.map string_of_int (R.killed_procs m)));
      check
        (R.failover_count m >= 1)
        "[%s] no quorum failover despite the owner dying mid-section" name;
      check
        (abs_float (R.availability m -. 0.75) < 1e-9)
        "[%s] availability %.2f, expected 0.75" name (R.availability m);
      check
        (R.elapsed_ns m < 1_000_000_000)
        "[%s] elapsed %d ns: completion came from the watchdog, not failover" name
        (R.elapsed_ns m);
      List.iter (fun v -> check false "[%s] invariant: %s" name v) (R.check_invariants m);
      Printf.printf "crash_check [%s]: survivors completed, %d failover(s), digest %s\n" name
        (R.failover_count m) o.Workload.digest

let () =
  List.iter run_backend [ Midway.Config.Rt; Midway.Config.Vm ];
  if !failures > 0 then exit 1;
  print_endline "crash_check: ok"
