(* Deterministic behavioral fingerprint of the simulator.

   Runs the five applications across every detection backend (and every
   RT trapping organization) and prints the simulated elapsed time plus
   every per-processor counter, one line per processor.  The output is a
   pure function of the simulated machine: any host-side optimization of
   the simulator's hot paths must leave it byte-identical.

   Usage:
     midway-fingerprint [--scale F] [--nprocs N]

   Capture before and after a perf change and diff:
     dune exec bin/fingerprint.exe > before.txt
     ... optimize ...
     dune exec bin/fingerprint.exe > after.txt && diff before.txt after.txt *)

module Config = Midway.Config
module Counters = Midway_stats.Counters

let counter_fields (c : Counters.t) =
  [
    ("set", c.Counters.dirtybits_set);
    ("mis", c.Counters.dirtybits_misclassified);
    ("rdc", c.Counters.clean_dirtybits_read);
    ("rdd", c.Counters.dirty_dirtybits_read);
    ("upd", c.Counters.dirtybits_updated);
    ("flt", c.Counters.write_faults);
    ("dif", c.Counters.pages_diffed);
    ("pro", c.Counters.pages_write_protected);
    ("twu", c.Counters.twin_update_bytes);
    ("twc", c.Counters.twin_compare_bytes);
    ("rxb", c.Counters.data_received_bytes);
    ("txb", c.Counters.data_sent_bytes);
    ("msg", c.Counters.messages);
    ("bnd", c.Counters.bound_bytes_scanned);
    ("dty", c.Counters.dirty_bytes_found);
    ("lkl", c.Counters.lock_acquires_local);
    ("lkr", c.Counters.lock_acquires_remote);
    ("bar", c.Counters.barrier_crossings);
    ("tns", c.Counters.trap_time_ns);
    ("cns", c.Counters.collect_time_ns);
    ("rtx", c.Counters.retransmits);
    ("drp", c.Counters.drops_observed);
    ("dup", c.Counters.duplicates_suppressed);
    ("bkf", c.Counters.backoff_time_ns);
  ]

let print_outcome label (o : Midway_apps.Outcome.t) =
  let machine = o.Midway_apps.Outcome.machine in
  Printf.printf "%s ok=%b elapsed=%d\n" label o.Midway_apps.Outcome.ok
    (Midway.Runtime.elapsed_ns machine);
  Array.iteri
    (fun i c ->
      Printf.printf "  p%d %s\n" i
        (String.concat " "
           (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) (counter_fields c))))
    (Midway.Runtime.all_counters machine)

let () =
  let scale = ref 0.1 and nprocs = ref 8 in
  let rec parse = function
    | [] -> ()
    | "--scale" :: v :: rest ->
        scale := float_of_string v;
        parse rest
    | "--nprocs" :: v :: rest ->
        nprocs := int_of_string v;
        parse rest
    | a :: _ ->
        Printf.eprintf "unknown argument %S\n" a;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let scale = !scale and nprocs = !nprocs in
  Printf.printf "fingerprint scale=%.3f nprocs=%d\n" scale nprocs;
  let rt_mode_cfgs =
    List.map
      (fun mode ->
        ( "rt-" ^ Config.rt_mode_name mode,
          { (Config.make Config.Rt ~nprocs) with Config.rt_mode = mode } ))
      [ Config.Plain; Config.Two_level; Config.Update_queue ]
  in
  let backend_cfgs =
    List.map
      (fun backend -> (Config.backend_name backend, Config.make backend ~nprocs))
      [ Config.Vm; Config.Twin; Config.Vm_fine ]
  in
  let faulted name cfg = (name ^ "+faults", Config.with_faults ~drop:0.02 ~seed:42 cfg) in
  List.iter
    (fun app ->
      let name = Midway_report.Suite.app_name app in
      List.iter
        (fun (cname, cfg) ->
          print_outcome
            (Printf.sprintf "%s/%s" name cname)
            (Midway_report.Suite.run_app app cfg ~scale))
        (rt_mode_cfgs @ backend_cfgs
        @ [
            ("standalone", Config.make Config.Standalone ~nprocs:1);
            faulted "rt-plain" (Config.make Config.Rt ~nprocs);
            faulted "vm" (Config.make Config.Vm ~nprocs);
          ]))
    Midway_report.Suite.apps;
  (* Blast has no write detection at all: lock-bound data only, so only
     the lock-based application runs under it. *)
  print_outcome "quicksort/blast"
    (Midway_report.Suite.run_app Midway_report.Suite.Quicksort
       (Config.make Config.Blast ~nprocs)
       ~scale)
