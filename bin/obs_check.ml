(* Structural validator for the observability exports, run by @obssmoke:

     obs_check TRACE.json METRICS.json NPROCS [REQUIRED_CATS_CSV]

   Parses both files back through Midway_util.Json (the same parser the
   exporters' consumers would hand-roll against) and checks:
     - the trace has >= 1 "X" span on every track 0..NPROCS-1 of every
       Perfetto process in the file;
     - every category named in REQUIRED_CATS_CSV appears somewhere;
     - span start timestamps are monotone (non-decreasing) per track,
       the ordering the exporter promises;
     - the metrics file carries non-empty "counters" and "histograms".
   Exits 0 if all hold, 1 with a diagnosis otherwise. *)

module Json = Midway_util.Json

let die fmt = Printf.ksprintf (fun msg -> prerr_endline ("obs_check: " ^ msg); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse path =
  match Json.of_string (read_file path) with
  | v -> v
  | exception Json.Parse_error msg -> die "%s: %s" path msg
  | exception Sys_error msg -> die "%s" msg

let get what path = function Some v -> v | None -> die "%s: missing %s" path what

(* one "X" span: (pid, tid, cat, ts) *)
let spans_of_trace path json =
  let events =
    get "traceEvents list" path (Option.bind (Json.member "traceEvents" json) Json.to_list)
  in
  List.filter_map
    (fun ev ->
      match Option.bind (Json.member "ph" ev) Json.to_str with
      | Some "X" ->
          let field k conv = get (Printf.sprintf "%S in an X event" k) path
              (Option.bind (Json.member k ev) conv) in
          Some
            ( field "pid" Json.to_int,
              field "tid" Json.to_int,
              field "cat" Json.to_str,
              field "ts" Json.to_float )
      | _ -> None)
    events

let check_trace path ~nprocs ~required_cats json =
  let spans = spans_of_trace path json in
  if spans = [] then die "%s: no spans at all" path;
  let pids = List.sort_uniq compare (List.map (fun (p, _, _, _) -> p) spans) in
  (* every processor of every run must have recorded at least one span *)
  List.iter
    (fun pid ->
      for tid = 0 to nprocs - 1 do
        if not (List.exists (fun (p, t, _, _) -> p = pid && t = tid) spans) then
          die "%s: pid %d has no span on track %d (expected %d tracks)" path pid tid nprocs
      done)
    pids;
  List.iter
    (fun cat ->
      if not (List.exists (fun (_, _, c, _) -> c = cat) spans) then
        die "%s: required span category %S never appears" path cat)
    required_cats;
  (* the exporter sorts each track by start time: ts must be monotone *)
  let last : (int * int, float) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (pid, tid, cat, ts) ->
      (match Hashtbl.find_opt last (pid, tid) with
      | Some prev when ts < prev ->
          die "%s: non-monotone ts on pid %d tid %d (%f after %f, cat %s)" path pid tid ts prev cat
      | _ -> ());
      Hashtbl.replace last (pid, tid) ts)
    spans;
  (List.length spans, List.length pids)

(* the metrics file is either one registry or an object of them (the
   multi-run form experiments.exe writes); accept both *)
let check_metrics path json =
  let check_registry name reg =
    let section k =
      match Json.member k reg with
      | Some (Json.List entries) -> entries
      | _ -> die "%s: %s: missing %S list" path name k
    in
    let counters = section "counters" and hists = section "histograms" in
    if counters = [] && hists = [] then die "%s: %s: empty registry" path name;
    List.iter
      (fun entry ->
        if Option.bind (Json.member "name" entry) Json.to_str = None then
          die "%s: %s: metric entry without a name" path name)
      (counters @ hists);
    List.length counters + List.length hists
  in
  match json with
  | Json.Obj _ when Json.member "histograms" json <> None -> check_registry "registry" json
  | Json.Obj [] -> die "%s: empty object" path
  | Json.Obj fields ->
      List.fold_left (fun acc (name, reg) -> acc + check_registry name reg) 0 fields
  | _ -> die "%s: expected a JSON object" path

let () =
  let trace_path, metrics_path, nprocs, cats =
    match Array.to_list Sys.argv with
    | [ _; t; m; n ] -> (t, m, int_of_string n, [])
    | [ _; t; m; n; cats ] ->
        (t, m, int_of_string n, String.split_on_char ',' cats |> List.filter (( <> ) ""))
    | _ ->
        prerr_endline "usage: obs_check TRACE.json METRICS.json NPROCS [REQUIRED_CATS_CSV]";
        exit 2
  in
  let nspans, nruns = check_trace trace_path ~nprocs ~required_cats:cats (parse trace_path) in
  let nmetrics = check_metrics metrics_path (parse metrics_path) in
  Printf.printf "obs_check: ok (%d span(s) across %d run(s), %d metric series)\n" nspans nruns
    nmetrics
