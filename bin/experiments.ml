(* Regenerate every table and figure from the paper's evaluation section.

   Usage:
     midway-experiments                       # all experiments, default scale
     midway-experiments --only table2,fig4   # a subset
     midway-experiments --scale 1.0          # the paper's problem sizes
     midway-experiments --nprocs 8           # processor count *)

let experiments =
  [ "table1"; "fig2"; "table2"; "table3"; "fig3"; "table4"; "fig4"; "table5"; "speedup" ]

(* "drop=0.02,dup=0.01,jitter=5000,seed=42": knobs for the fault sweep.
   [drop] narrows the sweep to the baseline and that one rate; without it
   the full 0%..5% default grid runs. *)
let parse_fault_spec spec =
  let drop = ref None and dup = ref None and jitter = ref None and seed = ref None in
  List.iter
    (fun kv ->
      let fail () =
        Printf.eprintf
          "bad --faults entry %S (expected drop=F, dup=F, jitter=NS or seed=N)\n" kv;
        exit 2
      in
      match String.index_opt kv '=' with
      | None -> fail ()
      | Some i -> (
          let key = String.sub kv 0 i
          and value = String.sub kv (i + 1) (String.length kv - i - 1) in
          match key with
          | "drop" -> drop := Some (try float_of_string value with _ -> fail ())
          | "dup" | "duplicate" -> dup := Some (try float_of_string value with _ -> fail ())
          | "jitter" | "jitter_ns" -> jitter := Some (try int_of_string value with _ -> fail ())
          | "seed" -> seed := Some (try int_of_string value with _ -> fail ())
          | _ -> fail ()))
    (String.split_on_char ',' spec |> List.filter (fun s -> s <> ""));
  (!drop, !dup, !jitter, !seed)

let run_fault_sweep spec crash scale nprocs apps =
  let drop, duplicate, jitter_ns, seed = parse_fault_spec spec in
  let drops =
    match (drop, crash) with
    | Some d, _ -> [ 0.0; d ]
    (* a crash-only sweep measures the recovery protocol, not the
       retransmission grid: one fault-free point per application *)
    | None, Some _ when spec = "" -> [ 0.0 ]
    | None, _ -> Midway_report.Faultsweep.default_drops
  in
  Printf.printf "Fault-injection sweep (drop rates: %s%s)...\n%!"
    (String.concat ", " (List.map (fun d -> Printf.sprintf "%.1f%%" (d *. 100.)) drops))
    (match crash with
    | None -> ""
    | Some plan -> Printf.sprintf "; crash plan %s" (Midway_simnet.Crash.render plan));
  let t0 = Unix.gettimeofday () in
  match
    Midway_report.Faultsweep.run ~apps ~drops ?duplicate ?jitter_ns ?seed ?crash ~nprocs
      ~scale ()
  with
  | sweep ->
      Printf.printf "...sweep complete in %.1f s of host time.\n\n%!"
        (Unix.gettimeofday () -. t0);
      print_endline (Midway_report.Faultsweep.render sweep)
  | exception Midway_simnet.Reliable.Exhausted msg ->
      Printf.eprintf
        "fault sweep aborted: %s\n\
         (the loss rate defeated the retry budget; lower drop= or raise \
         Config.retrans_max_attempts)\n"
        msg;
      exit 1

(* One Chrome-trace "process" and one metrics entry per (application,
   system) run of the suite, so a whole sweep lands in one Perfetto
   window / one JSON file. *)
let export_obs suite trace_out metrics_out =
  let runs =
    List.concat_map
      (fun (e : Midway_report.Suite.entry) ->
        let name = Midway_report.Suite.app_name e.Midway_report.Suite.app in
        List.filter_map
          (fun (system, (o : Midway_apps.Outcome.t)) ->
            match Midway.Runtime.obs o.Midway_apps.Outcome.machine with
            (* standalone runs do no DSM work and record nothing — skip them *)
            | Some obs when Midway_obs.Obs.span_count obs > 0 ->
                Some (Printf.sprintf "%s/%s" name system, obs)
            | _ -> None)
          [
            ("rt", e.Midway_report.Suite.rt);
            ("vm", e.Midway_report.Suite.vm);
            ("standalone", e.Midway_report.Suite.standalone);
          ])
      suite.Midway_report.Suite.entries
  in
  (match trace_out with
  | Some file ->
      Midway_obs.Trace_export.write file
        (Midway_obs.Trace_export.multi_to_json
           (List.map (fun (name, o) -> (name, Midway_obs.Obs.spans o)) runs));
      Printf.printf "wrote %d run trace(s) to %s (open in Perfetto / chrome://tracing)\n" (List.length runs) file
  | None -> ());
  match metrics_out with
  | Some file ->
      Midway_obs.Trace_export.write file
        (Midway_util.Json.Obj
           (List.map
              (fun (name, o) ->
                (name, Midway_obs.Metrics.to_json (Midway_obs.Metrics.snapshot (Midway_obs.Obs.metrics o))))
              runs));
      Printf.printf "wrote metrics for %d run(s) to %s\n" (List.length runs) file
  | None -> ()

(* The sharded KV store over Midway EC (extension; not a paper table):
   YCSB A at zipfian 0.99 with periodic bucket migrations, on rt and vm,
   every run checked end to end by the refinement oracle.  Percentiles
   are get-sojourn bucket upper bounds from the store's host-side
   histograms (see doc/KVSTORE.md). *)
let run_kv scale nprocs =
  let module Ycsb = Midway_explore.Ycsb in
  let module Kv_workload = Midway_explore.Kv_workload in
  let module Kvstore = Midway_kv.Kvstore in
  let module Metrics = Midway_obs.Metrics in
  let per_client = max 100 (int_of_float (20_000. *. scale)) in
  Printf.printf "Sharded KV store (extension; not a paper table)\n";
  Printf.printf
    "  YCSB A, zipfian 0.99, closed loop, %d clients x %d requests, 1024 keys / 32 \
     buckets, one migration per 200 requests\n\n"
    nprocs per_client;
  Printf.printf "  %-8s %14s %10s %10s %10s   %s\n" "backend" "req/s (sim)" "get p50" "get p95"
    "get p99" "oracle";
  let bad = ref false in
  List.iter
    (fun backend ->
      let machine = Midway.Runtime.create (Midway.Config.make backend ~nprocs) in
      let kv_cfg =
        {
          Midway_explore.Kv_workload.ycsb =
            {
              Ycsb.keys = 1024;
              requests = per_client;
              mix = Ycsb.mix_a;
              dist = Ycsb.Zipfian 0.99;
              arrival = Ycsb.Closed;
              max_scan = 16;
              seed = 1;
            };
          buckets = 32;
          service_ns = 300;
          preload = 512;
          migrate_every = 200;
          broken_migration = false;
        }
      in
      let store, prog = Kv_workload.build machine kv_cfg in
      Midway.Runtime.run machine prog;
      let n = Kvstore.request_count store in
      let elapsed = Midway.Runtime.elapsed_ns machine in
      let snap = Metrics.snapshot (Kvstore.metrics store) in
      let q p =
        match Metrics.find_hist snap ~name:"kv_latency_ns" ~label:"get" with
        | Some h -> Metrics.quantile_le h p
        | None -> 0
      in
      let verdict =
        match Kvstore.check store with
        | [] -> "ok"
        | v ->
            bad := true;
            Printf.sprintf "%d violation(s)" (List.length v)
      in
      Printf.printf "  %-8s %14.0f %10d %10d %10d   %s\n"
        (Midway.Config.backend_name backend)
        (float_of_int n /. (float_of_int (max 1 elapsed) /. 1e9))
        (q 0.50) (q 0.95) (q 0.99) verdict)
    [ Midway.Config.Rt; Midway.Config.Vm ];
  if !bad then exit 1

(* Per-region hybrid write detection (extension; not a paper table):
   every workload under pure RT, pure VM and the adaptive per-region
   controller (base rt plus Config.adaptive), reporting simulated
   elapsed time.  Every run is oracle-checked — a win from an incoherent
   run would be meaningless.  The sweep itself only asserts correctness;
   the committed BENCH_hybrid.md records where adaptive beats both pure
   backends. *)
let run_hybrid scale nprocs md_file =
  let module C = Midway.Config in
  let module Outcome = Midway_apps.Outcome in
  let mk backend ~adaptive = { (C.make backend ~nprocs) with C.adaptive } in
  Printf.printf "Per-region hybrid write detection sweep (extension; not a paper table)\n";
  Printf.printf
    "  each workload under pure rt, pure vm and the adaptive per-region controller\n\
    \  (base rt + Config.adaptive); simulated elapsed ns, every run oracle-checked\n\n";
  let check name (o : Outcome.t) =
    if not o.Outcome.ok then begin
      Printf.eprintf "hybrid sweep: %s failed oracle verification\n" name;
      exit 1
    end;
    (match Midway.Runtime.check_invariants o.Outcome.machine with
    | [] -> ()
    | v ->
        Printf.eprintf "hybrid sweep: %s violated protocol invariants: %s\n" name
          (String.concat "; " v);
        exit 1);
    o
  in
  let rounds f = max 2 (int_of_float (f *. scale)) in
  let gran name items =
    ( name,
      fun cfg ->
        Midway_apps.Granularity.run cfg
          { Midway_apps.Granularity.total_bytes = 128 * 1024; items; rounds = rounds 8. } )
  in
  let kv_run cfg =
    let module Ycsb = Midway_explore.Ycsb in
    let module Kv_workload = Midway_explore.Kv_workload in
    let module Kvstore = Midway_kv.Kvstore in
    let machine = Midway.Runtime.create cfg in
    let kv_cfg =
      {
        Kv_workload.ycsb =
          {
            Ycsb.keys = 1024;
            requests = max 100 (int_of_float (4_000. *. scale));
            mix = Ycsb.mix_a;
            dist = Ycsb.Zipfian 0.99;
            arrival = Ycsb.Closed;
            max_scan = 16;
            seed = 1;
          };
        buckets = 32;
        service_ns = 300;
        preload = 512;
        migrate_every = 200;
        broken_migration = false;
      }
    in
    let store, prog = Kv_workload.build machine kv_cfg in
    Midway.Runtime.run machine prog;
    Outcome.v ~app:"kv" ~machine ~ok:(Kvstore.check store = []) ~notes:[]
  in
  let workloads =
    List.map
      (fun app ->
        ( Midway_report.Suite.app_name app,
          fun cfg -> Midway_report.Suite.run_app app cfg ~scale ))
      Midway_report.Suite.apps
    @ [
        gran "granularity/coarse" 8;
        gran "granularity/fine" 256;
        ( "hybrid",
          fun cfg ->
            Midway_apps.Hybrid.run cfg
              { Midway_apps.Hybrid.default with Midway_apps.Hybrid.rounds = rounds 48. } );
        ("kv/migrate", kv_run);
      ]
  in
  let rows =
    List.map
      (fun (name, f) ->
        Printf.printf "  running %s...\n%!" name;
        let rt = check name (f (mk C.Rt ~adaptive:false)) in
        let vm = check name (f (mk C.Vm ~adaptive:false)) in
        let ad = check name (f (mk C.Rt ~adaptive:true)) in
        (name, rt, vm, ad))
      workloads
  in
  let ns (o : Outcome.t) = Midway.Runtime.elapsed_ns o.Outcome.machine in
  let line (name, rt, vm, ad) =
    let rt_ns = ns rt and vm_ns = ns vm and ad_ns = ns ad in
    let sw = Midway.Runtime.backend_switches ad.Outcome.machine in
    let best_pure = min rt_ns vm_ns in
    let verdict =
      if ad_ns < best_pure then
        Printf.sprintf "adaptive wins (%.2fx best pure)"
          (float_of_int best_pure /. float_of_int ad_ns)
      else if rt_ns <= vm_ns then "rt"
      else "vm"
    in
    Printf.sprintf "%-20s %14d %14d %14d %4d   %s" name rt_ns vm_ns ad_ns sw verdict
  in
  Printf.printf "\n  %-20s %14s %14s %14s %4s   %s\n" "workload" "rt (ns)" "vm (ns)"
    "adaptive (ns)" "sw" "best";
  List.iter (fun r -> Printf.printf "  %s\n" (line r)) rows;
  (match md_file with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Printf.fprintf oc
        "# Per-region hybrid write detection\n\n\
         Generated by `experiments --hybrid --scale %g --nprocs %d --md %s`.\n\n\
         Each workload runs under pure RT, pure VM, and the adaptive per-region\n\
         controller (machine default `rt` with `Config.adaptive` on).  Numbers are\n\
         simulated elapsed nanoseconds; `sw` counts committed per-region backend\n\
         switches; every run passed its oracle and the protocol invariants.\n\n\
         | workload | rt (ns) | vm (ns) | adaptive (ns) | sw | best |\n\
         |---|---:|---:|---:|---:|---|\n"
        scale nprocs path;
      List.iter
        (fun (name, rt, vm, ad) ->
          let rt_ns = ns rt and vm_ns = ns vm and ad_ns = ns ad in
          let sw = Midway.Runtime.backend_switches ad.Outcome.machine in
          let best_pure = min rt_ns vm_ns in
          let verdict =
            if ad_ns < best_pure then
              Printf.sprintf "**adaptive** (%.2fx best pure)"
                (float_of_int best_pure /. float_of_int ad_ns)
            else if rt_ns <= vm_ns then "rt"
            else "vm"
          in
          Printf.fprintf oc "| %s | %d | %d | %d | %d | %s |\n" name rt_ns vm_ns ad_ns sw
            verdict)
        rows;
      close_out oc;
      Printf.printf "\nwrote %s\n" path)

let run only scale nprocs apps csv_file md_file faults crash_spec ecsan obs trace_out
    metrics_out kv hybrid =
  let obs = obs || trace_out <> None || metrics_out <> None in
  let crash =
    match crash_spec with
    | None -> None
    | Some s -> (
        match Midway_simnet.Crash.parse_spec ~nprocs s with
        | Ok plan -> Some plan
        | Error msg ->
            Printf.eprintf "--crash: %s\n" msg;
            exit 2)
  in
  (* the scaling sweep is opt-in: it reruns each application eight times *)
  let default = List.filter (fun e -> e <> "speedup") experiments in
  let only = match only with [] -> default | l -> l in
  List.iter
    (fun e ->
      if not (List.mem e experiments) then begin
        Printf.eprintf "unknown experiment %S (expected: %s)\n" e (String.concat ", " experiments);
        exit 2
      end)
    only;
  let apps =
    match apps with
    | [] -> Midway_report.Suite.apps
    | names ->
        List.map
          (fun n ->
            match Midway_report.Suite.app_of_string n with
            | Ok a -> a
            | Error msg ->
                Printf.eprintf "%s\n" msg;
                exit 2)
          names
  in
  Printf.printf
    "Midway write-detection experiments (scale %.2f, %d processors)\n\
     Reproduction of: Software Write Detection for a Distributed Shared Memory (OSDI '94)\n\n"
    scale nprocs;
  if kv then begin
    run_kv scale nprocs;
    exit 0
  end;
  if hybrid then begin
    run_hybrid scale nprocs md_file;
    exit 0
  end;
  match (faults, crash) with
  | Some spec, _ ->
      if ecsan then
        Printf.eprintf "note: --ecsan does not apply to the fault sweep; ignoring it\n%!";
      run_fault_sweep spec crash scale nprocs apps
  | None, Some _ ->
      (* --crash alone routes to the sweep too: the paper tables assume
         a full-membership run, so node faults only make sense against
         the sweep's per-run verification and availability reporting *)
      run_fault_sweep "" crash scale nprocs apps
  | None, None ->
  let needs_suite = List.exists (fun e -> e <> "table1") only in
  if List.mem "table1" only then
    print_endline (Midway_report.Table1.render Midway_stats.Cost_model.default);
  if needs_suite then begin
    Printf.printf "Running the application suite (RT, VM and standalone per application)...\n%!";
    let t0 = Unix.gettimeofday () in
    let suite =
      try Midway_report.Suite.run ~apps ~ecsan ~obs ~nprocs ~scale ()
      with Failure msg ->
        Printf.eprintf "%s\n" msg;
        exit 1
    in
    export_obs suite trace_out metrics_out;
    Printf.printf "...suite complete in %.1f s of host time.\n\n%!" (Unix.gettimeofday () -. t0);
    let emit name render = if List.mem name only then print_endline (render suite) in
    emit "fig2" Midway_report.Fig2.render;
    emit "table2" Midway_report.Table2.render;
    emit "table3" Midway_report.Table3.render;
    emit "fig3" (fun s ->
        Midway_report.Sweep.render ~title:"Figure 3: write trapping cost vs page-fault time" s
          (Midway_report.Sweep.trapping_lines s));
    emit "table4" Midway_report.Table4.render;
    emit "fig4" (fun s ->
        Midway_report.Sweep.render
          ~title:"Figure 4: total write detection cost vs page-fault time" s
          (Midway_report.Sweep.total_lines s));
    emit "table5" Midway_report.Table5.render;
    (match csv_file with
    | Some path ->
        let oc = open_out path in
        output_string oc (Midway_report.Csv.of_suite suite);
        close_out oc;
        Printf.printf "wrote %s\n" path
    | None -> ());
    (match md_file with
    | Some path ->
        let oc = open_out path in
        output_string oc (Midway_report.Markdown.of_suite suite);
        close_out oc;
        Printf.printf "wrote %s\n" path
    | None -> ())
  end;
  if List.mem "speedup" only then begin
    Printf.printf "Scaling sweep (extension; not a paper figure)...\n%!";
    List.iter
      (fun app ->
        print_endline
          (Midway_report.Speedup.render ~app ~scale:(min scale 0.5) ~procs:[ 1; 2; 4; 8 ]))
      apps
  end

open Cmdliner

let only =
  Arg.(
    value
    & opt (list string) []
    & info [ "only" ] ~docv:"EXPERIMENTS"
        ~doc:"Comma-separated subset of: table1, fig2, table2, table3, fig3, table4, fig4, table5.")

let scale =
  Arg.(
    value & opt float 0.25
    & info [ "scale" ] ~docv:"S"
        ~doc:
          "Problem scale relative to the paper's parameters (1.0 = 343-molecule water, 250k \
           quicksort, 512x512 matmul, 1000x1000 sor, 32x32-grid cholesky).")

let nprocs =
  Arg.(value & opt int 8 & info [ "nprocs" ] ~docv:"N" ~doc:"Simulated processors.")

let apps =
  Arg.(
    value
    & opt (list string) []
    & info [ "apps" ] ~docv:"APPS"
        ~doc:"Comma-separated subset of: water, quicksort, matrix, sor, cholesky.")

let csv_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"FILE" ~doc:"Also write the suite's counters as CSV to $(docv).")

let md_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "md" ] ~docv:"FILE"
        ~doc:"Also write a markdown summary (measured vs paper) to $(docv).")

let faults =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "Run the fault-injection sweep instead of the paper experiments.  $(docv) is \
           comma-separated $(b,key=value) pairs: $(b,drop) (probability; without it the full \
           0%..5% grid runs), $(b,dup), $(b,jitter) (ns) and $(b,seed).  Example: \
           $(b,--faults drop=0.02,seed=42).")

let crash_spec =
  Arg.(
    value
    & opt (some string) None
    & info [ "crash" ] ~docv:"SPEC"
        ~doc:
          "Arm node-level faults on the fault sweep: scripted \
           ($(i,stop\\@2ms:p1,recover\\@8ms:p1)) or seeded ($(i,n=2,seed=7)).  Adds quorum \
           failover and availability columns; runs whose crashed processors' work is \
           missing are marked degraded instead of aborting the sweep.  Without \
           $(b,--faults), sweeps the drop = 0 point only.")

let ecsan =
  Arg.(
    value & flag
    & info [ "ecsan" ]
        ~doc:
          "Run every suite application under the entry-consistency sanitizer; any \
           violation aborts the experiment with a nonzero exit.")

let obs =
  Arg.(
    value & flag
    & info [ "obs" ]
        ~doc:
          "Run the suite with the observability layer armed (protocol spans + metrics).  \
           Implied by $(b,--trace-out) / $(b,--metrics-out).")

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write every suite run's protocol spans as one Chrome trace-event JSON (one \
           Perfetto process per run, one track per processor) to $(docv).")

let metrics_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"Write every suite run's metrics registry as JSON (keyed by run) to $(docv).")

let kv =
  Arg.(
    value & flag
    & info [ "kv" ]
        ~doc:
          "Run the sharded KV store row instead of the paper experiments: YCSB A at zipfian \
           0.99 with periodic bucket migrations on rt and vm, throughput and get-latency \
           percentiles, every run checked by the refinement oracle.")

let hybrid =
  Arg.(
    value & flag
    & info [ "hybrid" ]
        ~doc:
          "Run the per-region hybrid write detection sweep instead of the paper \
           experiments: every workload (the five applications, two sharing-granularity \
           points, the two-region hybrid microbenchmark and the KV store) under pure rt, \
           pure vm and the adaptive per-region controller, reporting simulated elapsed \
           time.  With $(b,--md FILE) also writes the table as markdown.")

let cmd =
  let doc = "regenerate the paper's tables and figures" in
  Cmd.v
    (Cmd.info "midway-experiments" ~doc)
    Term.(
      const run $ only $ scale $ nprocs $ apps $ csv_file $ md_file $ faults $ crash_spec
      $ ecsan $ obs $ trace_out $ metrics_out $ kv $ hybrid)

let () = exit (Cmd.eval cmd)
