(* ECLint's command line: static entry-consistency analysis of the
   workloads' EC-IR lifts, before (and without) any execution.

     midway-analyze                          # report on the default set
     midway-analyze --apps racy,deadlocky --dump-ir
     midway-analyze --apps counter,mix --expect-clean
     midway-analyze --expect racy=unsynchronized-access \
                    --expect deadlocky=lock-cycle       # zero runs
     midway-analyze --apps racy,deadlocky --confirm     # explorer hunts
                                                        # every warning

   Exit codes: 0 all checks pass, 1 an --expect-clean / --expect /
   --confirm assertion failed, 2 usage errors (unknown workload, no IR
   lift, bad expectation spec). *)

module Config = Midway.Config
module Explore = Midway_explore.Explore
module Workload = Midway_explore.Workload
module Analyze = Midway_analyze.Analyze
module Ir = Midway_analyze.Ir

let workload_named name =
  match Explore.workload_of_name name with
  | Ok w -> w
  | Error msg ->
      Printf.eprintf "%s\n" msg;
      exit 2

let parse_workloads csv =
  String.split_on_char ',' csv
  |> List.filter (fun s -> String.trim s <> "")
  |> List.map (fun s -> workload_named (String.trim s))

(* NAME=CLASS expectation specs *)
let parse_expect specs =
  List.map
    (fun s ->
      match String.index_opt s '=' with
      | Some i when i > 0 && i < String.length s - 1 ->
          (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
      | _ ->
          Printf.eprintf "--expect wants NAME=CLASS, got %S\n" s;
          exit 2)
    specs

let ir_of (w : Workload.t) ~nprocs =
  match w.Workload.ir with
  | Some lift -> lift ~nprocs
  | None ->
      Printf.eprintf "workload %s has no EC-IR lift (crash plans and applications are beyond \
                      the IR); pick one of the synthetic workloads or ecgen:SEED\n"
        w.Workload.name;
      exit 2

let has_class report slug =
  List.exists (fun f -> Analyze.class_slug f.Analyze.cls = slug) report.Analyze.warnings

let run apps_csv nprocs dump_ir expect_clean expect_specs confirm schedules schedule_seed
    backends_csv =
  let workloads = parse_workloads apps_csv in
  let expects = parse_expect expect_specs in
  List.iter
    (fun (name, _) ->
      if not (List.exists (fun (w : Workload.t) -> w.Workload.name = name) workloads) then begin
        Printf.eprintf "--expect names %S, which is not in --apps\n" name;
        exit 2
      end)
    expects;
  let backends =
    String.split_on_char ',' backends_csv
    |> List.filter (fun s -> String.trim s <> "")
    |> List.map (fun s ->
           match Config.backend_of_string (String.trim s) with
           | Ok b -> b
           | Error msg ->
               Printf.eprintf "%s\n" msg;
               exit 2)
  in
  let failed = ref false in
  let fail fmt = Printf.ksprintf (fun s -> print_endline s; failed := true) fmt in
  List.iter
    (fun (w : Workload.t) ->
      let ir = ir_of w ~nprocs in
      if dump_ir then print_string (Ir.pp ir);
      let report = Analyze.analyze ir in
      print_string (Analyze.render report);
      if expect_clean && report.Analyze.warnings <> [] then
        fail "EXPECT-CLEAN FAILED: %s has %d static warning(s)" w.Workload.name
          (List.length report.Analyze.warnings);
      List.iter
        (fun (name, slug) ->
          if name = w.Workload.name then
            if has_class report slug then
              Printf.printf "expect ok: %s statically flagged as [%s] with zero runs\n" name slug
            else fail "EXPECT FAILED: %s has no static [%s] warning" name slug)
        expects;
      if confirm && report.Analyze.warnings <> [] then begin
        match Explore.confirm_static ~backends ~schedules ~schedule_seed ~nprocs w with
        | None -> ()
        | Some (_, confirmations) ->
            List.iter
              (fun c ->
                print_endline (Explore.render_confirmation c);
                if c.Explore.cf_confirmed = None then
                  fail "CONFIRM FAILED: %s warning [%s] was not realized by any schedule"
                    w.Workload.name
                    (Analyze.class_slug c.Explore.cf_finding.Analyze.cls))
              confirmations
      end)
    workloads;
  if !failed then 1 else 0

open Cmdliner

let apps =
  Arg.(
    value
    & opt string "counter,readers-writer,mix,order-sensitive,racy,deadlocky,ecgen:1"
    & info [ "apps"; "a" ] ~docv:"NAMES"
        ~doc:
          "Comma-separated workloads to analyze (any with an EC-IR lift: the synthetic \
           workloads, deadlocky, ecgen:SEED, ecgen-buggy:SEED).")

let nprocs = Arg.(value & opt int 4 & info [ "nprocs"; "n" ] ~docv:"N")

let dump_ir =
  Arg.(value & flag & info [ "dump-ir" ] ~doc:"Print each workload's EC-IR before its report.")

let expect_clean =
  Arg.(
    value & flag
    & info [ "expect-clean" ]
        ~doc:"Exit 1 if any analyzed workload has a static warning (lints are allowed).")

let expect =
  Arg.(
    value & opt_all string []
    & info [ "expect" ] ~docv:"NAME=CLASS"
        ~doc:
          "Assert — with zero executions — that workload NAME's static warnings include \
           class CLASS (e.g. $(i,racy=unsynchronized-access), $(i,deadlocky=lock-cycle)).  \
           Repeatable.  With $(b,--confirm), the warnings must also be dynamically realized.")

let confirm =
  Arg.(
    value & flag
    & info [ "confirm" ]
        ~doc:
          "Hand every static warning to the schedule explorer as a hunt target; exit 1 if \
           any warning is not realized by some execution (CONFIRMED vs unconfirmed).")

let schedules =
  Arg.(
    value & opt int 6
    & info [ "schedules" ] ~docv:"N" ~doc:"Schedule seeds per backend in a --confirm hunt.")

let schedule_seed =
  Arg.(value & opt int 1 & info [ "schedule-seed" ] ~docv:"SEED" ~doc:"Base schedule seed.")

let backends =
  Arg.(
    value & opt string "rt,vm"
    & info [ "backends"; "b" ] ~docv:"LIST" ~doc:"Backends a --confirm hunt sweeps.")

let cmd =
  let doc = "static entry-consistency analysis (ECLint) over the EC-IR" in
  Cmd.v
    (Cmd.info "midway-analyze" ~doc)
    Term.(
      const run $ apps $ nprocs $ dump_ir $ expect_clean $ expect $ confirm $ schedules
      $ schedule_seed $ backends)

let () = exit (Cmd.eval' cmd)
