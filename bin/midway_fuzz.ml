(* The schedule explorer's command line.

   Fuzz: sweep workloads x backends x schedule seeds, judging every run
   by its sequential oracle, the protocol invariants and ECSan, and
   shrink any failure to a minimal replayable counterexample:

     midway-fuzz --schedules 16 --schedule-seed 1
     midway-fuzz --apps counter,ecgen:7 --backends rt,vm,twin
     midway-fuzz --faults 0.02 --fault-seed 42    # fault x thread schedules
     midway-fuzz --crash-events 2                 # crash x thread schedules

   Demo: hunt the deliberately buggy workloads (order-sensitive, racy,
   deadlocky) and exit 0 only if every one is caught and shrunk within
   the grid — the self-test wired into @fuzzsmoke.  The synchronization
   defects among them (racy, deadlocky) must additionally be flagged by
   the static analyzer first, with the exact diagnostic class and zero
   executions (order-sensitive is statically clean by design: its bug
   is an oracle assumption, not a synchronization defect):

     midway-fuzz --demo-bug --schedules 12

   Analyze: static EC-IR analysis of the selected workloads before the
   sweep, each static warning handed to the explorer as a hunt target:

     midway-fuzz --analyze --apps racy,deadlocky,ecgen-buggy:1

   Replay: re-execute a dumped counterexample and exit 0 iff the
   failure reproduces:

     midway-fuzz --schedules 8 --dump /tmp/cex.txt
     midway-fuzz --replay /tmp/cex.txt *)

module Config = Midway.Config
module Explore = Midway_explore.Explore
module Workload = Midway_explore.Workload
module Analyze = Midway_analyze.Analyze

(* The demo's static contract: these seeded bugs are synchronization
   defects, so the analyzer must flag them — with this exact class —
   before any run. *)
let demo_static_expectations =
  [ ("racy", "unsynchronized-access"); ("deadlocky", "lock-cycle") ]

let static_flags report slug =
  List.exists (fun f -> Analyze.class_slug f.Analyze.cls = slug) report.Analyze.warnings

(* Names go to the strict shared parsers verbatim — no trimming or case
   folding here, so " rt" and "RT" are rejected with the same
   did-you-mean hint every tool gives.  Only genuinely empty segments
   (a trailing comma) are skipped. *)
let parse_names of_name csv =
  String.split_on_char ',' csv
  |> List.filter (fun s -> s <> "")
  |> List.map (fun s ->
         match of_name s with
         | Ok v -> v
         | Error msg ->
             Printf.eprintf "%s\n" msg;
             exit 2)

let print_failure (c : Explore.counterexample) =
  Printf.printf "FAIL %s/%s schedule-seed=%d%s\n" c.Explore.c_workload
    (Config.backend_name c.Explore.c_backend)
    c.Explore.c_schedule_seed
    (match c.Explore.c_fault_seed with
    | Some s -> Printf.sprintf " fault-seed=%d" s
    | None -> "");
  Printf.printf "  %s\n" c.Explore.c_reason;
  (match c.Explore.c_choices with
  | Some l -> Printf.printf "  recorded choices : %d\n" (List.length l)
  | None -> Printf.printf "  recorded choices : unavailable (machine lost)\n");
  (match c.Explore.c_shrunk with
  | Some l ->
      Printf.printf "  shrunk to        : [%s] (%d re-runs)\n"
        (String.concat "," (List.map string_of_int l))
        c.Explore.c_shrink_runs
  | None -> Printf.printf "  shrunk to        : (failure did not reproduce under replay)\n");
  if c.Explore.c_trace <> [] then begin
    Printf.printf "  trace tail:\n";
    List.iter (fun t -> Printf.printf "    %s\n" t) c.Explore.c_trace
  end

let dump_failures path failures =
  let oc = open_out path in
  List.iter (fun c -> output_string oc (Explore.render_counterexample c)) failures;
  close_out oc;
  Printf.printf "counterexample(s) written to %s\n" path

let run_replay scale trace_out metrics_out path =
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match
    Result.bind (Explore.parse_counterexample text)
      (Explore.replay ~scale ?trace_out ?metrics_out)
  with
  | Error msg ->
      Printf.eprintf "replay failed: %s\n" msg;
      2
  | Ok r ->
      (match trace_out with
      | Some f -> Printf.printf "replay trace written to %s (open in Perfetto)\n" f
      | None -> ());
      (match metrics_out with
      | Some f -> Printf.printf "replay metrics written to %s\n" f
      | None -> ());
      if r.Explore.rr_failed then begin
        Printf.printf "failure reproduced:\n  %s\n" r.Explore.rr_reason;
        0
      end
      else begin
        Printf.printf "failure did NOT reproduce (run came back clean)\n";
        1
      end

let run apps_csv backends_csv schedules schedule_seed nprocs scale faults fault_seed crash
    crash_events crash_seed crash_horizon trace no_ecsan adaptive demo_bug analyze
    shrink_budget dump
    replay_file trace_out metrics_out =
  match replay_file with
  | Some path -> run_replay scale trace_out metrics_out path
  | None ->
      if trace_out <> None || metrics_out <> None then begin
        Printf.eprintf "--trace-out/--metrics-out apply to --replay runs only\n";
        exit 2
      end;
      let crash_plan =
        match crash with
        | None -> None
        | Some s -> (
            match Midway_simnet.Crash.parse_spec ~nprocs s with
            | Ok plan -> Some plan
            | Error msg ->
                Printf.eprintf "--crash: %s\n" msg;
                exit 2)
      in
      let crash_armed = crash_plan <> None || crash_events > 0 in
      let workloads =
        match (apps_csv, demo_bug) with
        | Some csv, _ -> parse_names (Explore.workload_of_name ~scale) csv
        | None, true ->
            (* with the crash dimension armed, the broken-failover prey
               joins the hunt — it only manifests under node crashes *)
            Explore.buggy_workloads ()
            @ (if crash_armed then [ Workload.crashy_broken ~iters:6 ] else [])
        | None, false ->
            Explore.clean_workloads () @ [ Midway_explore.Ecgen.workload ~seed:1 () ]
      in
      let backends = parse_names Config.backend_of_string backends_csv in
      let spec =
        {
          Explore.workloads;
          backends;
          schedules;
          schedule_seed;
          nprocs;
          ecsan = not no_ecsan;
          adaptive;
          fault_drop = faults;
          fault_seed;
          crash_events;
          crash_seed;
          crash_horizon_ns = crash_horizon;
          crash_plan;
          trace_capacity = trace;
          max_shrink_runs = shrink_budget;
        }
      in
      (* static pre-pass: the demo's synchronization defects must be
         flagged before any run; --analyze reports (and hunts) every
         static warning of the selected workloads *)
      let static_ok = ref true in
      if demo_bug then
        List.iter
          (fun (w : Workload.t) ->
            match List.assoc_opt w.Workload.name demo_static_expectations with
            | None -> ()
            | Some slug -> (
                match Explore.static_report ~nprocs w with
                | Some rep when static_flags rep slug ->
                    Printf.printf "demo: %s statically flagged as [%s] with zero runs\n"
                      w.Workload.name slug
                | _ ->
                    Printf.printf "demo: %s NOT statically flagged as [%s] — analyzer miss\n"
                      w.Workload.name slug;
                    static_ok := false))
          workloads;
      if analyze then
        List.iter
          (fun (w : Workload.t) ->
            match
              Explore.confirm_static ~backends ~schedules ~schedule_seed ~nprocs w
            with
            | None -> Printf.printf "analyze: %s has no EC-IR lift, skipped\n" w.Workload.name
            | Some (rep, confirmations) ->
                print_string (Analyze.render rep);
                List.iter (fun c -> print_endline (Explore.render_confirmation c)) confirmations)
          workloads;
      let report = Explore.run_spec ~progress:print_endline spec in
      let failures = report.Explore.failures in
      Printf.printf "\n%d run(s) over %d grid point(s): %d failure(s)\n" report.Explore.total_runs
        report.Explore.grid_points (List.length failures);
      List.iter print_failure failures;
      (match dump with Some path when failures <> [] -> dump_failures path failures | _ -> ());
      if demo_bug then begin
        (* self-test: every buggy workload must be caught somewhere in
           the grid and shrunk to a verified-failing counterexample *)
        let caught (w : Workload.t) =
          List.exists
            (fun c -> c.Explore.c_workload = w.Workload.name && c.Explore.c_shrunk <> None)
            failures
        in
        let missed = List.filter (fun w -> not (caught w)) workloads in
        if missed = [] && !static_ok then begin
          Printf.printf "demo: every seeded bug was found and shrunk\n";
          0
        end
        else if missed = [] then 1 (* dynamically caught, but the static pre-pass missed *)
        else begin
          List.iter
            (fun (w : Workload.t) ->
              Printf.printf "demo: %s escaped the grid (or did not shrink)\n" w.Workload.name)
            missed;
          1
        end
      end
      else if failures = [] then 0
      else 1

open Cmdliner

let apps =
  Arg.(
    value
    & opt (some string) None
    & info [ "apps"; "a" ] ~docv:"NAMES"
        ~doc:
          "Comma-separated workloads: counter, readers-writer, mix, order-sensitive, racy, \
           crashy, crashy-broken, ecgen:SEED, ecgen-buggy:SEED, or an application name \
           (water, quicksort, matrix, sor, cholesky).  Default: the clean synthetic \
           workloads plus ecgen:1.")

let backends =
  Arg.(
    value & opt string "rt,vm"
    & info [ "backends"; "b" ] ~docv:"LIST"
        ~doc:"Comma-separated backends to sweep (rt, vm, twin, vm-fine, blast).")

let schedules =
  Arg.(
    value & opt int 8
    & info [ "schedules" ] ~docv:"N" ~doc:"Schedule seeds per (workload, backend) pair.")

let schedule_seed =
  Arg.(
    value & opt int 1
    & info [ "schedule-seed" ] ~docv:"SEED" ~doc:"Base schedule seed; run $(i,i) uses SEED+i.")

let nprocs = Arg.(value & opt int 4 & info [ "nprocs"; "n" ] ~docv:"N")

let scale =
  Arg.(
    value & opt float 0.05
    & info [ "scale"; "s" ] ~docv:"S" ~doc:"Application problem scale (applications only).")

let faults =
  Arg.(
    value
    & opt (some float) None
    & info [ "faults" ] ~docv:"RATE"
        ~doc:
          "Compose fault schedules with thread schedules: drop each message copy with \
           probability RATE; the per-run fault seed is derived from the schedule seed.")

let fault_seed =
  Arg.(
    value & opt int 0x0FA7
    & info [ "fault-seed" ] ~docv:"SEED" ~doc:"Base seed of the fault-schedule derivation.")

let crash =
  Arg.(
    value
    & opt (some string) None
    & info [ "crash" ] ~docv:"SPEC"
        ~doc:
          "Apply one node-crash plan to every run: scripted \
           ($(i,stop\\@2ms:p1,recover\\@8ms:p1)) or seeded ($(i,n=2,seed=7)).  Overrides the \
           per-run seeded dimension of $(b,--crash-events).")

let crash_events =
  Arg.(
    value & opt int 0
    & info [ "crash-events" ] ~docv:"N"
        ~doc:
          "Compose node-crash schedules with thread schedules: up to N seeded crash episodes \
           per run, derived from the schedule seed.  0 (default) = no crash dimension.")

let crash_seed =
  Arg.(
    value & opt int 0xC0DE
    & info [ "crash-seed" ] ~docv:"SEED" ~doc:"Base seed of the crash-schedule derivation.")

let crash_horizon =
  Arg.(
    value & opt int 2_000_000
    & info [ "crash-horizon" ] ~docv:"NS"
        ~doc:"Window (virtual ns) the seeded crash episodes land in.")

let trace =
  Arg.(
    value & opt int 64
    & info [ "trace" ] ~docv:"N" ~doc:"Protocol trace capacity (tail is shown on failure).")

let no_ecsan =
  Arg.(value & flag & info [ "no-ecsan" ] ~doc:"Judge runs without the entry-consistency sanitizer.")

let adaptive =
  Arg.(
    value & flag
    & info [ "adaptive" ]
        ~doc:
          "Arm per-region adaptive hybrid write detection on every rt and vm run, composing \
           the controller's online backend switches with the schedule, fault and crash \
           dimensions; counterexamples record the flag and replay with it.")

let demo_bug =
  Arg.(
    value & flag
    & info [ "demo-bug" ]
        ~doc:
          "Hunt the deliberately buggy workloads instead of the clean ones; exit 0 only if \
           the static analyzer flags the synchronization defects first (exact class, zero \
           runs) and every seeded bug is then found and shrunk within the grid.")

let analyze =
  Arg.(
    value & flag
    & info [ "analyze" ]
        ~doc:
          "Before the sweep, statically analyze each selected workload's EC-IR and hand every \
           static warning to the explorer as a hunt target (CONFIRMED vs unconfirmed).  \
           Informational: does not change the exit code.")

let shrink_budget =
  Arg.(
    value & opt int 48
    & info [ "shrink-budget" ] ~docv:"N" ~doc:"Re-executions one shrink may spend.")

let dump =
  Arg.(
    value
    & opt (some string) None
    & info [ "dump" ] ~docv:"FILE" ~doc:"Write shrunk counterexamples to FILE.")

let replay_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "replay" ] ~docv:"FILE"
        ~doc:"Re-execute a dumped counterexample; exit 0 iff the failure reproduces.")

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "With $(b,--replay): write the replayed (shrunk) schedule's protocol spans as \
           Chrome trace-event JSON to $(docv) — the span timeline is usually the fastest \
           way to see the ordering that breaks.")

let metrics_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"With $(b,--replay): write the replayed run's metrics registry as JSON to $(docv).")

let cmd =
  let doc = "seeded schedule fuzzer with record/replay and counterexample shrinking" in
  Cmd.v
    (Cmd.info "midway-fuzz" ~doc)
    Term.(
      const run $ apps $ backends $ schedules $ schedule_seed $ nprocs $ scale $ faults
      $ fault_seed $ crash $ crash_events $ crash_seed $ crash_horizon $ trace $ no_ecsan
      $ adaptive
      $ demo_bug $ analyze $ shrink_budget $ dump $ replay_file $ trace_out $ metrics_out)

let () = exit (Cmd.eval' cmd)
