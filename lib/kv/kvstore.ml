(* A sharded key-value store served over Midway entry consistency.

   The keyspace [0, keys) is partitioned into [buckets] equal shards.
   Each bucket owns three separately-allocated pieces of shared memory
   (separate allocations are cache-line aligned, so buckets never share
   a line and the RT backend sees no false sharing across shards):

     meta:   opcount (8B) | location (8B) | per-proc journal (32B each)
     area 0: slots_per_bucket x 16B slots  (present 8B | value 8B)
     area 1: ditto — the migration target

   One EC lock per bucket binds the meta block plus the *active* area
   (meta.location names which).  Every operation runs under that lock:
   mutations in exclusive mode, gets and scans in shared mode, so the
   lock is simultaneously the mutual exclusion, the consistency action
   (acquiring pulls exactly the bucket's current data) and the
   linearization point.

   The bucket's op counter lives inside the bound data, so the sequence
   of committed mutations is itself entry-consistent state: a mutation
   increments it under the exclusive hold, a read records the value it
   saw under the shared hold.  Those stamps are what the refinement
   oracle replays (see {!Oracle}).

   The journal is the crash-recovery witness: each processor's last
   committed mutation of the bucket, written inside the same critical
   section as the mutation itself.  A processor killed after its release
   committed but before the host-side log recorded the observation
   leaves a sequence gap that only its journal entry can explain.

   Migration re-homes a bucket to the calling processor by *re-binding*:
   widen the lock's binding to both areas, copy active -> inactive,
   flip meta.location, shrink the binding to the new area, release.
   Ownership follows the last holder, so the caller is now the owner
   and the old area is unbound cold storage until the next migration
   copies over it.  The widen-first order keeps ECSan happy: the target
   area is bound before the first store touches it. *)

module Runtime = Midway.Runtime
module Range = Midway.Range
module Sync = Midway.Sync
module Metrics = Midway_obs.Metrics
module Obs = Midway_obs.Obs

let slot_bytes = 16
let journal_bytes = 32

type t = {
  rt : Runtime.t;
  keys : int;
  buckets : int;
  per_bucket : int;
  nprocs : int;
  service_ns : int;  (* simulated service time inside each critical section *)
  meta : int array;  (* per-bucket metadata base address *)
  area : (int * int) array;  (* per-bucket (area0, area1) base addresses *)
  locks : Sync.lock array;
  metrics : Metrics.t;  (* host-side registry: always on, never perturbs the run *)
  mutable log : Oracle.obs list;  (* newest first *)
  mutable requests : int;
}

let meta_size nprocs = 16 + (nprocs * journal_bytes)
let area_size per_bucket = per_bucket * slot_bytes

let create ?(service_ns = 0) rt ~keys ~buckets =
  if keys <= 0 || buckets <= 0 then invalid_arg "Kvstore.create: keys and buckets must be > 0";
  if keys mod buckets <> 0 then
    invalid_arg "Kvstore.create: keys must divide evenly into buckets";
  let nprocs = (Runtime.config rt).Midway.Config.nprocs in
  let per_bucket = keys / buckets in
  let meta = Array.make buckets 0 in
  let area = Array.make buckets (0, 0) in
  let locks =
    Array.init buckets (fun b ->
        let m = Runtime.alloc rt (meta_size nprocs) in
        let a0 = Runtime.alloc rt (area_size per_bucket) in
        let a1 = Runtime.alloc rt (area_size per_bucket) in
        meta.(b) <- m;
        area.(b) <- (a0, a1);
        Runtime.new_lock rt ~owner:(b mod nprocs)
          [ Range.v m (meta_size nprocs); Range.v a0 (area_size per_bucket) ])
  in
  {
    rt;
    keys;
    buckets;
    per_bucket;
    nprocs;
    service_ns;
    meta;
    area;
    locks;
    metrics = Metrics.create ();
    log = [];
    requests = 0;
  }

let keys t = t.keys
let buckets t = t.buckets
let metrics t = t.metrics
let request_count t = t.requests
let bucket_of t key = key / t.per_bucket
let lock_of_bucket t b = t.locks.(b)

let check_key t key =
  if key < 0 || key >= t.keys then invalid_arg "Kvstore: key outside the keyspace"

(* meta field addresses *)
let opcount_addr t b = t.meta.(b)
let location_addr t b = t.meta.(b) + 8
let journal_addr t b ~proc = t.meta.(b) + 16 + (proc * journal_bytes)

let slot_addr t b ~loc key =
  let a0, a1 = t.area.(b) in
  let base = if loc = 0 then a0 else a1 in
  base + ((key - (b * t.per_bucket)) * slot_bytes)

let kind_code = function
  | Oracle.K_get -> 0
  | Oracle.K_put -> 1
  | Oracle.K_delete -> 2
  | Oracle.K_scan -> 3
  | Oracle.K_migrate -> 4
  | Oracle.K_load -> 5

let kind_of_code = function
  | 1 -> Oracle.K_put
  | 2 -> Oracle.K_delete
  | 4 -> Oracle.K_migrate
  | 5 -> Oracle.K_load
  | c -> invalid_arg (Printf.sprintf "Kvstore: journal holds non-write kind code %d" c)

(* Journal the mutation inside the critical section, right next to the
   op-counter bump it describes. *)
let write_journal c t b ~seq ~kind ~key ~value =
  let j = journal_addr t b ~proc:(Runtime.id c) in
  Runtime.write_int c j seq;
  Runtime.write_int c (j + 8) (kind_code kind);
  Runtime.write_int c (j + 16) key;
  Runtime.write_int c (j + 24) value

let record t c ~kind ~bucket ~seq ~key ~value ~read ~sched ~start =
  let done_ns = Runtime.now_ns c in
  t.log <-
    {
      Oracle.o_proc = Runtime.id c;
      o_bucket = bucket;
      o_seq = seq;
      o_kind = kind;
      o_key = key;
      o_value = value;
      o_read = read;
      o_sched_ns = sched;
      o_start_ns = start;
      o_done_ns = done_ns;
    }
    :: t.log

(* Throughput/latency accounting: once per client-visible request, into
   the store's own registry (host side), and — only when the machine's
   observability layer is armed — a Request span on the simulated
   timeline for the Perfetto export. *)
let account t c ~kind ~bucket ~sched =
  let done_ns = Runtime.now_ns c in
  let label = Oracle.kind_name kind in
  t.requests <- t.requests + 1;
  Metrics.incr t.metrics ~name:"kv_requests" ~label 1;
  Metrics.observe t.metrics ~name:"kv_latency_ns" ~label ~buckets:Metrics.latency_buckets
    (done_ns - sched);
  match Runtime.obs t.rt with
  | None -> ()
  | Some ob ->
      Obs.span ob Obs.Request ~proc:(Runtime.id c) ~sync:t.locks.(bucket).Sync.lid ~note:label
        ~t0:sched ~t1:done_ns ()

let get c t ?sched_ns key =
  check_key t key;
  let sched = match sched_ns with Some s -> s | None -> Runtime.now_ns c in
  let start = Runtime.now_ns c in
  let b = bucket_of t key in
  let lk = t.locks.(b) in
  Runtime.acquire_read c lk;
  let seq = Runtime.read_int c (opcount_addr t b) in
  let loc = Runtime.read_int c (location_addr t b) in
  let s = slot_addr t b ~loc key in
  let present = Runtime.read_int c s <> 0 in
  let value = if present then Runtime.read_int c (s + 8) else 0 in
  if t.service_ns > 0 then Runtime.work_ns c t.service_ns;
  Runtime.release c lk;
  record t c ~kind:Oracle.K_get ~bucket:b ~seq ~key ~value:0 ~read:[ (key, present, value) ]
    ~sched ~start;
  account t c ~kind:Oracle.K_get ~bucket:b ~sched;
  (present, value)

let mutate c t ~kind ?sched_ns key value =
  check_key t key;
  let sched = match sched_ns with Some s -> s | None -> Runtime.now_ns c in
  let start = Runtime.now_ns c in
  let b = bucket_of t key in
  let lk = t.locks.(b) in
  Runtime.acquire c lk;
  let seq = Runtime.read_int c (opcount_addr t b) + 1 in
  Runtime.write_int c (opcount_addr t b) seq;
  write_journal c t b ~seq ~kind ~key ~value;
  let loc = Runtime.read_int c (location_addr t b) in
  let s = slot_addr t b ~loc key in
  (match kind with
  | Oracle.K_put | Oracle.K_load ->
      Runtime.write_int c s 1;
      Runtime.write_int c (s + 8) value
  | Oracle.K_delete ->
      Runtime.write_int c s 0;
      Runtime.write_int c (s + 8) 0
  | _ -> assert false);
  if t.service_ns > 0 then Runtime.work_ns c t.service_ns;
  Runtime.release c lk;
  record t c ~kind ~bucket:b ~seq ~key ~value ~read:[] ~sched ~start;
  account t c ~kind ~bucket:b ~sched

let put c t ?sched_ns key value = mutate c t ~kind:Oracle.K_put ?sched_ns key value
let delete c t ?sched_ns key = mutate c t ~kind:Oracle.K_delete ?sched_ns key 0

(* The initial population: one critical section per seed pair, each
   sequenced and journaled exactly like a put.  One pair per section is
   a crash-safety invariant, not a style choice: effects commit at the
   release, the host-side observation is logged after it, and a killed
   processor's journal witnesses only its *last* committed op — so a
   critical section must never commit more writes than the journal can
   explain, or a crash landing inside it leaves either logged-but-
   uncommitted observations or committed-but-unexplainable sequence
   gaps, and the oracle rightly rejects the run. *)
let load c t pairs =
  List.iter
    (fun (k, v) ->
      check_key t k;
      let b = bucket_of t k in
      let lk = t.locks.(b) in
      let sched = Runtime.now_ns c in
      Runtime.acquire c lk;
      let seq = Runtime.read_int c (opcount_addr t b) + 1 in
      Runtime.write_int c (opcount_addr t b) seq;
      write_journal c t b ~seq ~kind:Oracle.K_load ~key:k ~value:v;
      let loc = Runtime.read_int c (location_addr t b) in
      let s = slot_addr t b ~loc k in
      Runtime.write_int c s 1;
      Runtime.write_int c (s + 8) v;
      Runtime.release c lk;
      record t c ~kind:Oracle.K_load ~bucket:b ~seq ~key:k ~value:v ~read:[] ~sched
        ~start:sched)
    pairs

(* A scan is per-bucket atomic: each bucket's segment reads under its
   own shared hold (never two locks at once — no deadlock by
   construction), observing that bucket's prefix.  Observations record
   present *and* absent keys so the oracle checks both. *)
let scan c t ?sched_ns ~lo ~n () =
  if n <= 0 then invalid_arg "Kvstore.scan: n must be > 0";
  check_key t lo;
  let hi = min t.keys (lo + n) in
  let sched = match sched_ns with Some s -> s | None -> Runtime.now_ns c in
  let start = Runtime.now_ns c in
  let out = ref [] in
  let b0 = bucket_of t lo and b1 = bucket_of t (hi - 1) in
  for b = b0 to b1 do
    let klo = max lo (b * t.per_bucket) in
    let khi = min hi ((b + 1) * t.per_bucket) in
    let lk = t.locks.(b) in
    Runtime.acquire_read c lk;
    let seq = Runtime.read_int c (opcount_addr t b) in
    let loc = Runtime.read_int c (location_addr t b) in
    let seen = ref [] in
    for k = khi - 1 downto klo do
      let s = slot_addr t b ~loc k in
      let present = Runtime.read_int c s <> 0 in
      let v = if present then Runtime.read_int c (s + 8) else 0 in
      seen := (k, present, v) :: !seen;
      if present then out := (k, v) :: !out
    done;
    if t.service_ns > 0 then Runtime.work_ns c t.service_ns;
    Runtime.release c lk;
    record t c ~kind:Oracle.K_scan ~bucket:b ~seq ~key:klo ~value:0 ~read:!seen ~sched ~start
  done;
  account t c ~kind:Oracle.K_scan ~bucket:b1 ~sched;
  List.rev !out

(* Copy active -> target, slot by slot.  The broken variant is the
   fuzzer's prey: it moves the values but forgets the presence flags, so
   every key the bucket held reads absent after the flip — a determin-
   istic refinement bug that is invisible to ECSan (every store is to
   bound data under the exclusive hold). *)
let copy_area c t b ~src_loc ~broken =
  let lo = b * t.per_bucket in
  for k = lo to lo + t.per_bucket - 1 do
    let s = slot_addr t b ~loc:src_loc k in
    let d = slot_addr t b ~loc:(1 - src_loc) k in
    if not broken then Runtime.write_int c d (Runtime.read_int c s);
    Runtime.write_int c (d + 8) (Runtime.read_int c (s + 8))
  done

let migrate ?(broken = false) c t b =
  if b < 0 || b >= t.buckets then invalid_arg "Kvstore.migrate: no such bucket";
  let sched = Runtime.now_ns c in
  let start = sched in
  let lk = t.locks.(b) in
  let m = t.meta.(b) in
  let a0, a1 = t.area.(b) in
  Runtime.acquire c lk;
  let seq = Runtime.read_int c (opcount_addr t b) + 1 in
  Runtime.write_int c (opcount_addr t b) seq;
  write_journal c t b ~seq ~kind:Oracle.K_migrate ~key:(b * t.per_bucket)
    ~value:(Runtime.id c);
  let loc = Runtime.read_int c (location_addr t b) in
  (* widen the binding over both areas *before* the first store into the
     target, then copy, flip, and shrink to the new home *)
  Runtime.rebind c lk
    [
      Range.v m (meta_size t.nprocs);
      Range.v a0 (area_size t.per_bucket);
      Range.v a1 (area_size t.per_bucket);
    ];
  copy_area c t b ~src_loc:loc ~broken;
  Runtime.write_int c (location_addr t b) (1 - loc);
  let dst = if loc = 0 then a1 else a0 in
  Runtime.rebind c lk [ Range.v m (meta_size t.nprocs); Range.v dst (area_size t.per_bucket) ];
  if t.service_ns > 0 then Runtime.work_ns c t.service_ns;
  Runtime.release c lk;
  record t c ~kind:Oracle.K_migrate ~bucket:b ~seq ~key:(b * t.per_bucket)
    ~value:(Runtime.id c) ~read:[] ~sched ~start;
  account t c ~kind:Oracle.K_migrate ~bucket:b ~sched

(* Pull every bucket once in read mode so this processor's copies are
   current before the host-side oracle looks — and so any bucket whose
   owner crash-stopped fails over to a live processor (the failover
   reverts to the last released snapshot, i.e. exactly the committed
   prefix). *)
let read_sweep c t =
  for b = 0 to t.buckets - 1 do
    Runtime.acquire_read c t.locks.(b);
    Runtime.release c t.locks.(b)
  done

(* ------------------------------------------------------------------ *)
(* Host-side extraction for the oracle                                 *)
(* ------------------------------------------------------------------ *)

let observations t = List.rev t.log

(* Read the authoritative copy of bucket [b]: the lock owner's memory.
   After a run with crashes the owner is live whenever any live
   processor touched the lock after the crash (the read sweep guarantees
   that), and its copy is the last-released — committed — state. *)
let owner_copy t b =
  let sp = Runtime.space t.rt in
  let owner = t.locks.(b).Sync.owner in
  fun addr -> Midway_memory.Space.get_int sp ~proc:owner addr

let journal t =
  let out = ref [] in
  for b = t.buckets - 1 downto 0 do
    let rd = owner_copy t b in
    for p = t.nprocs - 1 downto 0 do
      let j = journal_addr t b ~proc:p in
      let seq = rd j in
      if seq > 0 then
        out :=
          {
            Oracle.j_bucket = b;
            j_proc = p;
            j_seq = seq;
            j_kind = kind_of_code (rd (j + 8));
            j_key = rd (j + 16);
            j_value = rd (j + 24);
          }
          :: !out
    done
  done;
  !out

let final_state t =
  let entries = Array.make t.keys (0, false, 0) in
  let opcounts = Array.make t.buckets 0 in
  for b = 0 to t.buckets - 1 do
    let rd = owner_copy t b in
    opcounts.(b) <- rd (opcount_addr t b);
    let loc = rd (location_addr t b) in
    for k = b * t.per_bucket to ((b + 1) * t.per_bucket) - 1 do
      let s = slot_addr t b ~loc k in
      let present = rd s <> 0 in
      entries.(k) <- (k, present, (if present then rd (s + 8) else 0))
    done
  done;
  { Oracle.f_entries = entries; f_opcounts = opcounts }

let check t =
  Oracle.check ~keys:t.keys ~buckets:t.buckets ~killed:(Runtime.killed_procs t.rt)
    ~journal:(journal t) ~final:(Some (final_state t)) (observations t)

let digest t =
  let f = final_state t in
  let buf = Buffer.create 256 in
  Array.iter
    (fun (k, present, v) -> if present then Buffer.add_string buf (Printf.sprintf "%d=%d;" k v))
    f.Oracle.f_entries;
  Buffer.add_string buf
    (Printf.sprintf "ops=%s;killed=%s"
       (String.concat "," (Array.to_list (Array.map string_of_int f.Oracle.f_opcounts)))
       (String.concat "," (List.map string_of_int (Runtime.killed_procs t.rt))));
  Buffer.contents buf
