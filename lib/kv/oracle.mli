(** The refinement oracle for the sharded KV store.

    Every concurrent run of {!Kvstore} must be linearizable to a
    centralized dictionary: a total order of the get/put/delete/scan
    requests, consistent with real-time per client, under which every
    read returns what a sequential dictionary would.  The store's
    protocol makes the order explicit — each bucket's mutations are
    serialized by the bucket's exclusive lock and stamped with the
    bucket's op counter (bound to the same lock), and reads record the
    counter value they executed under — so refinement reduces to a
    per-bucket replay against a model dictionary.  Operations on
    different buckets commute, which makes the per-bucket check
    complete for the whole store.

    The checker is pure (plain data in, violations out): the simulator
    never leaks in, so hand-written and mutated histories exercise it
    directly in unit tests. *)

type kind =
  | K_get
  | K_put
  | K_delete
  | K_scan  (** one bucket's portion of a scan (scans are per-bucket atomic) *)
  | K_migrate  (** bucket re-homed to a new owner; dictionary unchanged *)
  | K_load  (** initial data load, sequenced like a put *)

val kind_name : kind -> string
val is_write : kind -> bool

type obs = {
  o_proc : int;
  o_bucket : int;
  o_seq : int;
      (** writes: the op counter after this op's increment (1-based);
          reads: the counter observed under the shared hold — the write
          prefix whose effects the read must reflect *)
  o_kind : kind;
  o_key : int;  (** for scans: the bucket's first key *)
  o_value : int;  (** the value written; 0 otherwise *)
  o_read : (int * bool * int) list;
      (** what the read observed: (key, present, value) *)
  o_sched_ns : int;  (** scheduled open-loop arrival *)
  o_start_ns : int;  (** service start *)
  o_done_ns : int;  (** completion; sojourn latency = o_done_ns - o_sched_ns *)
}

type journal_entry = {
  j_bucket : int;
  j_proc : int;
  j_seq : int;
  j_kind : kind;
  j_key : int;
  j_value : int;
}
(** The last write a processor committed to a bucket, recovered from the
    bucket's bound metadata after the run.  When a processor is killed
    between committing a write (at its release) and logging the
    observation (host side), the journal is the only witness of the
    committed op; the oracle admits exactly such journal-covered
    sequence gaps and no others. *)

type final_state = {
  f_entries : (int * bool * int) array;  (** every key once: (key, present, value) *)
  f_opcounts : int array;  (** per-bucket final op counter *)
}

val describe : obs -> string

val check :
  keys:int ->
  buckets:int ->
  killed:int list ->
  journal:journal_entry list ->
  final:final_state option ->
  obs list ->
  string list
(** Replays each bucket's writes in sequence order against a model
    dictionary and returns the violations (empty = the run refines the
    dictionary): duplicate or unexplained sequence numbers, reads that
    contradict the model at their observed prefix, keys outside their
    bucket, and (when [final] is given) a converged final state or op
    counter differing from the model. *)
