(* The refinement oracle: does a concurrent KV run linearize to a
   centralized dictionary state machine?

   The store serializes every mutation of a bucket under that bucket's
   exclusive lock and stamps it with the bucket's own op counter (bound
   to the same lock), so the protocol itself hands us the linearization
   order: per bucket, the committed writes numbered 1..N.  Reads
   (get/scan) run under the lock in shared mode and record the op
   counter they observed — the write prefix whose effects they must
   see.  Dictionary operations on different buckets commute, so
   checking refinement per bucket checks it for the whole store.

   The checker replays each bucket's writes into a model dictionary in
   sequence order and verifies:
     - sequence integrity: no duplicate sequence numbers; a gap is
       admissible only when a killed processor's journal (the last-op
       record each processor keeps inside the bucket's bound metadata)
       supplies exactly the missing write — the one shape a crash can
       legally leave behind (effects committed by the release, the
       host-side log entry lost with the fiber);
     - every read matches the model at its observed prefix;
     - the converged final memory equals the model's final state, and
       the final op counters equal the highest committed sequence.

   Everything here is pure data — no simulator types — so the checker
   itself is testable on hand-written histories, including the seeded
   mutation tests that prove it rejects corrupted observations. *)

type kind =
  | K_get
  | K_put
  | K_delete
  | K_scan
  | K_migrate
  | K_load

let kind_name = function
  | K_get -> "get"
  | K_put -> "put"
  | K_delete -> "delete"
  | K_scan -> "scan"
  | K_migrate -> "migrate"
  | K_load -> "load"

let is_write = function
  | K_put | K_delete | K_migrate | K_load -> true
  | K_get | K_scan -> false

type obs = {
  o_proc : int;
  o_bucket : int;
  o_seq : int;  (* writes: the post-increment counter; reads: the counter seen *)
  o_kind : kind;
  o_key : int;
  o_value : int;  (* the value written; 0 for everything else *)
  o_read : (int * bool * int) list;  (* observed (key, present, value) *)
  o_sched_ns : int;  (* scheduled open-loop arrival *)
  o_start_ns : int;  (* service start (lock request issued) *)
  o_done_ns : int;  (* completion *)
}

type journal_entry = {
  j_bucket : int;
  j_proc : int;
  j_seq : int;
  j_kind : kind;
  j_key : int;
  j_value : int;
}

type final_state = {
  f_entries : (int * bool * int) array;  (* (key, present, value), every key once *)
  f_opcounts : int array;  (* per bucket *)
}

(* ------------------------------------------------------------------ *)

let pp_kind = kind_name

let describe o =
  Printf.sprintf "p%d %s key %d (bucket %d, seq %d)" o.o_proc (pp_kind o.o_kind) o.o_key
    o.o_bucket o.o_seq

(* One bucket's replay.  [writes] come in ascending committed sequence
   (1, 2, ...); reads are grouped by the sequence prefix they observed.
   The model is the per-key (present, value) map restricted to this
   bucket's keys. *)
let check_bucket ~bucket ~keys_of_bucket ~killed ~journal ~violations obs_list =
  let bad fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let in_bucket k = List.mem k keys_of_bucket in
  let writes, reads = List.partition (fun o -> is_write o.o_kind) obs_list in
  let writes = List.stable_sort (fun a b -> compare a.o_seq b.o_seq) writes in
  (* sequence integrity: strictly increasing from 1, gaps only where a
     killed processor's journal supplies the missing write *)
  let recovered = ref [] in
  let expected = ref 1 in
  let checked = ref [] in
  List.iter
    (fun w ->
      if w.o_seq < !expected then
        bad "bucket %d: duplicate sequence %d (%s)" bucket w.o_seq (describe w)
      else begin
        while w.o_seq > !expected do
          (* a hole: admissible only as a killed processor's last,
             journal-recorded op *)
          (match
             List.find_opt
               (fun j -> j.j_bucket = bucket && j.j_seq = !expected && List.mem j.j_proc killed)
               journal
           with
          | Some j ->
              recovered := j :: !recovered;
              checked :=
                {
                  o_proc = j.j_proc;
                  o_bucket = bucket;
                  o_seq = j.j_seq;
                  o_kind = j.j_kind;
                  o_key = j.j_key;
                  o_value = j.j_value;
                  o_read = [];
                  o_sched_ns = 0;
                  o_start_ns = 0;
                  o_done_ns = 0;
                }
                :: !checked
          | None ->
              bad "bucket %d: sequence gap at %d (next logged write is seq %d) not covered by \
                   any killed processor's journal"
                bucket !expected w.o_seq);
          incr expected
        done;
        checked := w :: !checked;
        incr expected
      end)
    writes;
  let writes = List.rev !checked in
  let max_seq = !expected - 1 in
  (* model replay + reads at each prefix *)
  let model : (int, bool * int) Hashtbl.t = Hashtbl.create 64 in
  let entry k = match Hashtbl.find_opt model k with Some e -> e | None -> (false, 0) in
  let check_read r =
    if r.o_seq > max_seq then
      bad "bucket %d: %s observed op counter %d but only %d write(s) ever committed" bucket
        (describe r) r.o_seq max_seq
    else
      List.iter
        (fun (k, present, v) ->
          if not (in_bucket k) then
            bad "bucket %d: %s returned key %d outside the bucket" bucket (describe r) k
          else
            let mp, mv = entry k in
            if present <> mp || (present && v <> mv) then
              bad "bucket %d: %s observed key %d = %s but the dictionary says %s" bucket
                (describe r) k
                (if present then string_of_int v else "absent")
                (if mp then string_of_int mv else "absent"))
        r.o_read
  in
  let reads_at =
    (* reads grouped by observed prefix, checked as the replay passes it *)
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun r ->
        Hashtbl.replace tbl r.o_seq (r :: (Option.value (Hashtbl.find_opt tbl r.o_seq) ~default:[])))
      reads;
    tbl
  in
  let flush_reads s =
    match Hashtbl.find_opt reads_at s with
    | Some l -> List.iter check_read (List.rev l)
    | None -> ()
  in
  flush_reads 0;
  List.iter
    (fun w ->
      (if not (in_bucket w.o_key) && w.o_kind <> K_migrate then
         bad "bucket %d: %s writes a key outside the bucket" bucket (describe w));
      (match w.o_kind with
      | K_put | K_load -> Hashtbl.replace model w.o_key (true, w.o_value)
      | K_delete -> Hashtbl.replace model w.o_key (false, 0)
      | K_migrate -> ()  (* moves the bucket's home; the dictionary is unchanged *)
      | K_get | K_scan -> assert false);
      flush_reads w.o_seq)
    writes;
  (* reads whose prefix exceeds max_seq were already reported above *)
  (model, max_seq, List.length !recovered)

let check ~keys ~buckets ~killed ~journal ~final obs_list =
  let violations = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  if keys mod buckets <> 0 then bad "keys (%d) not divisible by buckets (%d)" keys buckets;
  let per_bucket = keys / buckets in
  let bucket_of k = k / per_bucket in
  (* every observation must name the bucket its key lives in *)
  List.iter
    (fun o ->
      if o.o_key < 0 || o.o_key >= keys then
        bad "%s: key outside the keyspace [0, %d)" (describe o) keys
      else if o.o_bucket <> bucket_of o.o_key then
        bad "%s: key %d lives in bucket %d" (describe o) o.o_key (bucket_of o.o_key))
    obs_list;
  let by_bucket = Array.make buckets [] in
  List.iter
    (fun o ->
      if o.o_bucket >= 0 && o.o_bucket < buckets then
        by_bucket.(o.o_bucket) <- o :: by_bucket.(o.o_bucket))
    obs_list;
  for b = 0 to buckets - 1 do
    let keys_of_bucket = List.init per_bucket (fun i -> (b * per_bucket) + i) in
    let model, max_seq, _recovered =
      check_bucket ~bucket:b ~keys_of_bucket ~killed ~journal ~violations
        (List.rev by_bucket.(b))
    in
    match final with
    | None -> ()
    | Some f ->
        if f.f_opcounts.(b) <> max_seq then
          bad "bucket %d: final op counter is %d but %d write(s) committed" b f.f_opcounts.(b)
            max_seq;
        Array.iter
          (fun (k, present, v) ->
            if bucket_of k = b then
              let mp, mv =
                match Hashtbl.find_opt model k with Some e -> e | None -> (false, 0)
              in
              if present <> mp || (present && v <> mv) then
                bad "bucket %d: final state of key %d is %s but the dictionary says %s" b k
                  (if present then string_of_int v else "absent")
                  (if mp then string_of_int mv else "absent"))
          f.f_entries
  done;
  List.rev !violations
