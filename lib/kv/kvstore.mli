(** A sharded key-value store served over Midway entry consistency.

    The keyspace [0, keys) is split into [buckets] equal shards; each
    shard's slots and metadata are bound to one EC lock, so acquiring
    the lock is both mutual exclusion and the consistency action that
    pulls exactly that shard's data.  Mutations run in exclusive mode
    and stamp the shard's op counter (itself bound data); gets and
    scans run in shared mode and record the counter they saw.  Those
    stamps are the linearization evidence the {!Oracle} replays.

    Buckets migrate between processors by lock {e re-binding}: the new
    owner widens the lock's binding over both storage areas, copies the
    live area into the cold one, flips the location word, shrinks the
    binding to the new home and releases — leaving itself the owner
    (ownership follows the last holder) and the old area unbound.

    Each processor journals its last committed mutation of each bucket
    inside the bucket's bound metadata.  When a crash kills a
    processor after its release committed a mutation but before the
    host-side log recorded it, the journal is the only witness; the
    oracle accepts exactly such journal-covered sequence gaps.

    The store keeps its own host-side {!Midway_obs.Metrics} registry
    (request counts and sojourn-latency histograms per operation kind)
    that never perturbs the simulated run; when the machine's
    observability layer is armed it additionally emits a [Request] span
    per request for the Perfetto export. *)

type t

val create : ?service_ns:int -> Midway.Runtime.t -> keys:int -> buckets:int -> t
(** [service_ns] (default 0) is simulated service time charged inside
    each critical section.  Raises [Invalid_argument] unless
    [keys mod buckets = 0]. *)

val keys : t -> int
val buckets : t -> int
val bucket_of : t -> int -> int
val lock_of_bucket : t -> int -> Midway.Sync.lock

(** {1 Operations} (run inside a simulated processor)

    [sched_ns] is the request's open-loop scheduled arrival (defaults to
    now); recorded latencies are sojourn times [completion - sched_ns]. *)

val get : Midway.Runtime.ctx -> t -> ?sched_ns:int -> int -> bool * int
val put : Midway.Runtime.ctx -> t -> ?sched_ns:int -> int -> int -> unit
val delete : Midway.Runtime.ctx -> t -> ?sched_ns:int -> int -> unit

val scan : Midway.Runtime.ctx -> t -> ?sched_ns:int -> lo:int -> n:int -> unit -> (int * int) list
(** Keys [lo, lo+n) ascending, present entries only.  Atomic per bucket
    (each bucket's segment under its own shared hold, never two locks at
    once), not across buckets. *)

val load : Midway.Runtime.ctx -> t -> (int * int) list -> unit
(** Seed the store: one critical section per pair, each sequenced and
    journaled exactly like a put — never more writes per section than
    the one-op journal can witness across a crash. *)

val migrate : ?broken:bool -> Midway.Runtime.ctx -> t -> int -> unit
(** Re-home the bucket to the calling processor by re-binding (see
    above).  [broken = true] (fuzzer prey) copies the values but not
    the presence flags — a deterministic refinement bug that stays
    ECSan-clean. *)

val read_sweep : Midway.Runtime.ctx -> t -> unit
(** Pull every bucket once in read mode: makes this processor's copies
    current and forces failover of any bucket whose owner crash-stopped,
    so the host-side oracle reads committed state. *)

(** {1 Host side} (after the run) *)

val observations : t -> Oracle.obs list
(** Oldest first. *)

val journal : t -> Oracle.journal_entry list
val final_state : t -> Oracle.final_state

val check : t -> string list
(** The refinement oracle over this run: observations + journal + final
    state + the machine's killed set.  Empty = the run linearizes to the
    centralized dictionary. *)

val digest : t -> string
(** Canonical rendering of the final dictionary, op counters and killed
    set — replay identity checks. *)

val metrics : t -> Midway_obs.Metrics.t
(** The host-side registry: counter [kv_requests] and histogram
    [kv_latency_ns] (on {!Midway_obs.Metrics.latency_buckets}), each
    labelled by operation kind. *)

val request_count : t -> int
