(** Deterministic discrete-event simulation of a multicomputer.

    Each simulated processor runs its program as an OCaml 5 effect-handler
    fiber with a private virtual clock in nanoseconds.  Computation
    advances a processor's clock via {!charge}; interaction between
    processors happens only at explicit scheduling points ({!yield},
    {!block}), where the engine always resumes the runnable fiber with the
    smallest clock.

    This discipline makes the simulation a conservative parallel DES:
    since a fiber can only affect another fiber at a virtual time no
    earlier than its own clock (messages add latency), executing
    scheduling points in global clock order yields a causally consistent
    and fully deterministic execution — the property the reproduction
    depends on for exact primitive-operation counts.

    The protocol layer (locks, barriers) is built on two primitives:

    - {!yield} reschedules the calling fiber at its current clock, so the
      next protocol action in global time order executes first;
    - {!block} suspends the fiber and hands the protocol a [wake] function
      which resumes the fiber at a given virtual time (e.g. when a lock
      reply is delivered). *)

type t

type proc
(** A simulated processor, valid within its engine's [run]. *)

type policy =
  | Fifo
      (** Historical default: ties in virtual time resolve in insertion
          (FIFO) order.  Takes the exact pre-policy scheduling code path,
          so default runs are bit-identical to builds without the
          explorer. *)
  | Seeded of int
      (** Pick uniformly among fibers tied at the minimum clock, driven
          by a private {!Midway_util.Prng} stream.  Every choice made is
          recorded (see {!choices}) so the run can be replayed exactly. *)
  | Replay of int list
      (** Re-apply a recorded choice list.  Each entry is an index into
          the FIFO-ordered tied candidates, taken modulo the candidate
          count (so shrunk or edited lists stay legal); when the list
          runs dry, remaining ties fall back to FIFO.  Applied choices
          are re-recorded, so a replay is itself replayable. *)
(** Which runnable fiber goes first when several are ready at the same
    virtual time.  All policies explore only *legal* schedules: the
    engine still always resumes a fiber with the minimum clock, so
    causal consistency (see doc/SIMULATION.md) is preserved — only the
    order of causally concurrent events varies. *)

exception Deadlock of string
(** Raised by {!run} when unfinished fibers remain but nothing can wake
    them — a synchronization bug in the simulated program.  When a
    non-FIFO policy is active the message carries the schedule seed (or
    replay length), so a hang found by the schedule explorer is
    reproducible from the message alone. *)

exception Killed of string
(** Crash-stop, raised *inside* a fiber (typically by the runtime's
    crash layer at a synchronization point): the fiber terminates
    immediately with the given typed reason, is marked {!is_killed},
    stops counting toward deadlock detection, and the
    {!set_kill_observer} hook fires so the recovery protocol can fail
    over whatever the dead fiber held — its waiters must be unblocked,
    not deadlocked.  Unlike other exceptions, [Killed] does not escape
    {!run}. *)

val create : ?policy:policy -> nprocs:int -> unit -> t
(** [policy] defaults to [Fifo]. *)

val policy : t -> policy

val set_block_observer :
  t -> (proc:int -> reason:string option -> blocked_at:int -> woke_at:int -> unit) option -> unit
(** Install (or clear) a hook called whenever a blocked fiber is about
    to resume: [proc] is the processor id, [reason] the {!block} reason
    at suspension time, [blocked_at] its clock when it suspended and
    [woke_at] its (already advanced) clock as it resumes, so
    [woke_at - blocked_at] is the virtual time spent blocked.  The hook
    only reads state the scheduler computed anyway — installing one
    cannot alter the simulation.  Used by the observability layer to
    record scheduler-block spans. *)

val set_kill_observer : t -> (proc:int -> reason:string -> at:int -> unit) option -> unit
(** Install (or clear) the hook called after a fiber dies of {!Killed}:
    [proc] is the dead processor, [reason] the kill reason, [at] its
    clock at death.  The hook runs in scheduler context (it must not
    perform engine effects) and may push wakes — the crash layer uses it
    to run lock failover and barrier repair. *)

val is_killed : proc -> bool

val killed : t -> int list
(** Processors whose fibers died of {!Killed}, ascending. *)

val choices : t -> int list
(** The tie-break choices applied so far, oldest first — empty under
    [Fifo].  Feeding this list to [Replay] reproduces the schedule
    exactly.  Valid during and after [run] (including after a
    {!Deadlock} escaped), which is what lets the schedule explorer
    shrink a failing schedule. *)

val nprocs : t -> int

val proc : t -> int -> proc
(** Handle for processor [i]; raises [Invalid_argument] out of range. *)

val proc_id : proc -> int

val clock : proc -> int
(** Current virtual time of this processor, in nanoseconds. *)

val charge : proc -> int -> unit
(** Advance the processor's clock by the given number of nanoseconds
    (local computation or charged protocol cost).  Negative charges
    raise [Invalid_argument]. *)

val spawn : t -> int -> (proc -> unit) -> unit
(** [spawn t p body] installs [body] as processor [p]'s program.  Must be
    called before {!run}; each processor may be spawned once. *)

val yield : proc -> unit
(** Scheduling point: let any runnable fiber with an earlier clock run
    first.  Every protocol action (lock acquire/release, barrier) must
    yield before inspecting shared protocol state. *)

val block : ?reason:string -> proc -> setup:(wake:(at:int -> unit) -> unit) -> unit
(** [block p ~setup] suspends the fiber. [setup] runs immediately (still
    on the fiber's stack, before suspension completes) and must arrange
    for [wake ~at] to be called exactly once later, from some other
    fiber; the blocked fiber then resumes with its clock advanced to at
    least [at].  Waking twice raises [Invalid_argument] at the waker.

    [reason] describes what the fiber is waiting on (e.g. ["acquire lock
    3"]); it is cleared on wake and included in the {!Deadlock} message
    for every still-blocked processor, so fault-induced hangs are
    diagnosable at a glance. *)

val run : t -> unit
(** Execute all spawned fibers to completion.  Raises {!Deadlock} if the
    system wedges, and re-raises any exception escaping a fiber. *)

val elapsed : t -> int
(** After [run]: the maximum clock reached by any processor — the
    program's simulated execution time. *)

val clock_of : t -> int -> int
(** After [run]: the final clock of one processor. *)
