type proc = {
  id : int;
  mutable clock : int;
  mutable finished : bool;
  mutable blocked_reason : string option;
}

type t = {
  n : int;
  procs : proc array;
  runq : (unit -> unit) Midway_util.Minheap.t;
  bodies : (proc -> unit) option array;
  mutable live : int;
  mutable started : bool;
}

exception Deadlock of string

type _ Effect.t +=
  | Yield : proc -> unit Effect.t
  | Block : proc * (wake:(at:int -> unit) -> unit) -> unit Effect.t

let create ~nprocs =
  if nprocs <= 0 then invalid_arg "Engine.create: nprocs must be positive";
  {
    n = nprocs;
    procs = Array.init nprocs (fun id -> { id; clock = 0; finished = false; blocked_reason = None });
    runq = Midway_util.Minheap.create ();
    bodies = Array.make nprocs None;
    live = 0;
    started = false;
  }

let nprocs t = t.n

let proc t i =
  if i < 0 || i >= t.n then invalid_arg "Engine.proc: index out of range";
  t.procs.(i)

let proc_id p = p.id

let clock p = p.clock

let charge p ns =
  if ns < 0 then invalid_arg "Engine.charge: negative charge";
  p.clock <- p.clock + ns

let spawn t id body =
  if t.started then invalid_arg "Engine.spawn: engine already running";
  if id < 0 || id >= t.n then invalid_arg "Engine.spawn: processor out of range";
  if t.bodies.(id) <> None then invalid_arg "Engine.spawn: processor already spawned";
  t.bodies.(id) <- Some body

let yield p = Effect.perform (Yield p)

let block ?reason p ~setup =
  p.blocked_reason <- reason;
  Effect.perform (Block (p, setup))

(* Run one fiber slice under the deep handler.  The handler returns when
   the fiber suspends (its continuation is then parked in the run queue)
   or terminates. *)
let start_fiber t p body =
  let open Effect.Deep in
  match_with body p
    {
      retc = (fun () ->
          p.finished <- true;
          t.live <- t.live - 1);
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield q ->
              Some
                (fun (k : (a, _) continuation) ->
                  Midway_util.Minheap.push t.runq ~key:q.clock (fun () -> continue k ()))
          | Block (q, setup) ->
              Some
                (fun (k : (a, _) continuation) ->
                  let fired = ref false in
                  setup ~wake:(fun ~at ->
                      if !fired then
                        invalid_arg
                          (Printf.sprintf "Engine: processor %d woken twice" q.id);
                      fired := true;
                      q.blocked_reason <- None;
                      Midway_util.Minheap.push t.runq ~key:at (fun () ->
                          if at > q.clock then q.clock <- at;
                          continue k ())))
          | _ -> None);
    }

let run t =
  if t.started then invalid_arg "Engine.run: engine already ran";
  t.started <- true;
  Array.iteri
    (fun id body ->
      match body with
      | None -> ()
      | Some body ->
          t.live <- t.live + 1;
          let p = t.procs.(id) in
          Midway_util.Minheap.push t.runq ~key:p.clock (fun () -> start_fiber t p body))
    t.bodies;
  let rec loop () =
    match Midway_util.Minheap.pop t.runq with
    | Some (_, resume) ->
        resume ();
        loop ()
    | None ->
        if t.live > 0 then begin
          let stuck =
            Array.to_list t.procs
            |> List.filter (fun p -> not p.finished)
            |> List.map (fun p ->
                   Printf.sprintf "p%d@%dns%s" p.id p.clock
                     (match p.blocked_reason with
                     | Some r -> Printf.sprintf " (blocked in %s)" r
                     | None -> ""))
            |> String.concat ", "
          in
          raise
            (Deadlock
               (Printf.sprintf "%d processor(s) blocked with no pending wake: %s" t.live
                  stuck))
        end
  in
  loop ()

let elapsed t = Array.fold_left (fun acc p -> max acc p.clock) 0 t.procs

let clock_of t id = t.procs.(id).clock
