type proc = {
  id : int;
  mutable clock : int;
  mutable finished : bool;
  mutable killed : bool;
  mutable blocked_reason : string option;
}

(* Tie-break policy: which runnable fiber goes first when several are
   ready at the same virtual time.  Fifo is the historical default and
   takes the exact pre-policy code path (a bare Minheap.pop), so default
   runs stay bit-identical.  The other policies drive the schedule
   explorer: Seeded picks uniformly among tied fibers from a private
   PRNG, Replay consumes a recorded choice list. *)
type policy = Fifo | Seeded of int | Replay of int list

type chooser = {
  prng : Midway_util.Prng.t option;  (* Some for Seeded *)
  mutable replaying : int list;  (* remaining choices to replay *)
  mutable recorded_rev : int list;  (* every applied choice, newest first *)
  mutable n_recorded : int;
}

type t = {
  n : int;
  procs : proc array;
  runq : (unit -> unit) Midway_util.Minheap.t;
  bodies : (proc -> unit) option array;
  mutable live : int;
  mutable started : bool;
  policy : policy;
  chooser : chooser option;  (* None iff policy = Fifo *)
  (* Observability hook: called after a blocked fiber's clock is
     advanced to its wake time, before it resumes.  Reads state the
     scheduler computed anyway, so arming it cannot change a run. *)
  mutable block_observer :
    (proc:int -> reason:string option -> blocked_at:int -> woke_at:int -> unit) option;
  (* Called when a fiber dies of [Killed], after its bookkeeping is
     settled.  The crash-recovery layer uses it to run failover for the
     resources the dead fiber held, so its waiters are unblocked with a
     typed reason instead of deadlocking. *)
  mutable kill_observer : (proc:int -> reason:string -> at:int -> unit) option;
}

exception Deadlock of string

exception Killed of string
(** Raised *inside* a fiber to crash-stop it: the fiber terminates, is
    excluded from deadlock accounting, and the kill observer fires with
    the typed reason. *)

type _ Effect.t +=
  | Yield : proc -> unit Effect.t
  | Block : proc * (wake:(at:int -> unit) -> unit) -> unit Effect.t

let create ?(policy = Fifo) ~nprocs () =
  if nprocs <= 0 then invalid_arg "Engine.create: nprocs must be positive";
  let chooser =
    match policy with
    | Fifo -> None
    | Seeded seed ->
        Some
          {
            prng = Some (Midway_util.Prng.create ~seed);
            replaying = [];
            recorded_rev = [];
            n_recorded = 0;
          }
    | Replay choices ->
        List.iter
          (fun c -> if c < 0 then invalid_arg "Engine.create: negative replay choice")
          choices;
        Some { prng = None; replaying = choices; recorded_rev = []; n_recorded = 0 }
  in
  {
    n = nprocs;
    procs =
      Array.init nprocs (fun id ->
          { id; clock = 0; finished = false; killed = false; blocked_reason = None });
    runq = Midway_util.Minheap.create ();
    bodies = Array.make nprocs None;
    live = 0;
    started = false;
    policy;
    chooser;
    block_observer = None;
    kill_observer = None;
  }

let nprocs t = t.n

let policy t = t.policy

let set_block_observer t f = t.block_observer <- f

let set_kill_observer t f = t.kill_observer <- f

let is_killed p = p.killed

let killed t =
  Array.to_list t.procs |> List.filter (fun p -> p.killed) |> List.map (fun p -> p.id)

let choices t =
  match t.chooser with None -> [] | Some ch -> List.rev ch.recorded_rev

let proc t i =
  if i < 0 || i >= t.n then invalid_arg "Engine.proc: index out of range";
  t.procs.(i)

let proc_id p = p.id

let clock p = p.clock

let charge p ns =
  if ns < 0 then invalid_arg "Engine.charge: negative charge";
  p.clock <- p.clock + ns

let spawn t id body =
  if t.started then invalid_arg "Engine.spawn: engine already running";
  if id < 0 || id >= t.n then invalid_arg "Engine.spawn: processor out of range";
  if t.bodies.(id) <> None then invalid_arg "Engine.spawn: processor already spawned";
  t.bodies.(id) <- Some body

let yield p = Effect.perform (Yield p)

let block ?reason p ~setup =
  p.blocked_reason <- reason;
  Effect.perform (Block (p, setup))

(* Run one fiber slice under the deep handler.  The handler returns when
   the fiber suspends (its continuation is then parked in the run queue)
   or terminates. *)
let start_fiber t p body =
  let open Effect.Deep in
  match_with body p
    {
      retc = (fun () ->
          p.finished <- true;
          t.live <- t.live - 1);
      exnc =
        (fun e ->
          match e with
          | Killed reason ->
              (* crash-stop: the fiber dies, its waiters are the kill
                 observer's problem; it must not count as live or the
                 run would end in a spurious deadlock *)
              p.finished <- true;
              p.killed <- true;
              p.blocked_reason <- None;
              t.live <- t.live - 1;
              (match t.kill_observer with
              | Some f -> f ~proc:p.id ~reason ~at:p.clock
              | None -> ())
          | e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield q ->
              Some
                (fun (k : (a, _) continuation) ->
                  Midway_util.Minheap.push t.runq ~key:q.clock (fun () -> continue k ()))
          | Block (q, setup) ->
              Some
                (fun (k : (a, _) continuation) ->
                  let fired = ref false in
                  let blocked_at = q.clock in
                  let reason = q.blocked_reason in
                  setup ~wake:(fun ~at ->
                      if !fired then
                        invalid_arg
                          (Printf.sprintf "Engine: processor %d woken twice" q.id);
                      fired := true;
                      q.blocked_reason <- None;
                      Midway_util.Minheap.push t.runq ~key:at (fun () ->
                          if at > q.clock then q.clock <- at;
                          (match t.block_observer with
                          | Some f -> f ~proc:q.id ~reason ~blocked_at ~woke_at:q.clock
                          | None -> ());
                          continue k ())))
          | _ -> None);
    }

(* Pop the next event to execute.  With a chooser armed, all events tied
   at the minimum key are collected (in FIFO order, which Minheap
   guarantees for equal keys), one is picked — by PRNG or by the replay
   list — and the rest are reinserted in their original relative order.
   A replayed choice is taken modulo the number of candidates so that a
   shrunk or hand-edited choice list is always legal; once the list runs
   dry the remaining ties fall back to FIFO (choice 0).  Every applied
   choice is re-recorded so a replay's own schedule can be replayed or
   shrunk further. *)
let pop_next t =
  match t.chooser with
  | None -> Midway_util.Minheap.pop t.runq
  | Some ch -> (
      match Midway_util.Minheap.pop t.runq with
      | None -> None
      | Some (key, first) ->
          let rec gather acc =
            match Midway_util.Minheap.peek_key t.runq with
            | Some k when k = key -> (
                match Midway_util.Minheap.pop t.runq with
                | Some (_, v) -> gather (v :: acc)
                | None -> acc)
            | _ -> acc
          in
          let tied = Array.of_list (List.rev (gather [ first ])) in
          let n = Array.length tied in
          if n = 1 then Some (key, first)
          else begin
            let c =
              match ch.prng with
              | Some prng -> Midway_util.Prng.int prng n
              | None -> (
                  match ch.replaying with
                  | [] -> 0
                  | c :: rest ->
                      ch.replaying <- rest;
                      c mod n)
            in
            ch.recorded_rev <- c :: ch.recorded_rev;
            ch.n_recorded <- ch.n_recorded + 1;
            Array.iteri (fun i v -> if i <> c then Midway_util.Minheap.push t.runq ~key v) tied;
            Some (key, tied.(c))
          end)

(* Identify the schedule in a deadlock message so a hang found by the
   explorer is reproducible from the message alone. *)
let schedule_tag t =
  match t.policy with
  | Fifo -> ""
  | Seeded seed ->
      let n = match t.chooser with Some ch -> ch.n_recorded | None -> 0 in
      Printf.sprintf " [schedule seed %d, %d tie-break choice(s) made]" seed n
  | Replay _ ->
      let n = match t.chooser with Some ch -> ch.n_recorded | None -> 0 in
      Printf.sprintf " [replayed schedule, %d tie-break choice(s) applied]" n

let run t =
  if t.started then invalid_arg "Engine.run: engine already ran";
  t.started <- true;
  Array.iteri
    (fun id body ->
      match body with
      | None -> ()
      | Some body ->
          t.live <- t.live + 1;
          let p = t.procs.(id) in
          Midway_util.Minheap.push t.runq ~key:p.clock (fun () -> start_fiber t p body))
    t.bodies;
  let rec loop () =
    match pop_next t with
    | Some (_, resume) ->
        resume ();
        loop ()
    | None ->
        if t.live > 0 then begin
          let stuck =
            Array.to_list t.procs
            |> List.filter (fun p -> not p.finished)
            |> List.map (fun p ->
                   Printf.sprintf "p%d@%dns%s" p.id p.clock
                     (match p.blocked_reason with
                     | Some r -> Printf.sprintf " (blocked in %s)" r
                     | None -> ""))
            |> String.concat ", "
          in
          raise
            (Deadlock
               (Printf.sprintf "%d processor(s) blocked with no pending wake: %s%s" t.live
                  stuck (schedule_tag t)))
        end
  in
  loop ()

let elapsed t = Array.fold_left (fun acc p -> max acc p.clock) 0 t.procs

let clock_of t id = t.procs.(id).clock
