(* A reusable run accumulator for write collection.

   The dirtybit scan emits one call per contiguous run of lines; the
   collectors push those runs here and materialize the payload once at
   the end — one data read (a single blit) per run instead of one
   [Bytes.sub] + list cons per line.  The arrays persist across
   collections on a context, so steady-state collection allocates only
   the final payload list. *)

type t = {
  mutable addrs : int array;
  mutable lens : int array;
  mutable tss : int array;  (* Timestamp.t *)
  mutable descs : int array;  (* lines (wire descriptors) per run *)
  mutable n : int;
  mutable open_ : bool;  (* may push_line extend the last run? *)
}

let create () =
  { addrs = Array.make 64 0; lens = Array.make 64 0; tss = Array.make 64 0;
    descs = Array.make 64 0; n = 0; open_ = false }

let clear t =
  t.n <- 0;
  t.open_ <- false

(* Close the current run: the next push_line starts a new one even if
   contiguous.  Callers seal at region boundaries so a run never mixes
   line sizes. *)
let seal t = t.open_ <- false

let length t = t.n

let grow t =
  let cap = Array.length t.addrs in
  let fresh a = let f = Array.make (2 * cap) 0 in Array.blit a 0 f 0 cap; f in
  t.addrs <- fresh t.addrs;
  t.lens <- fresh t.lens;
  t.tss <- fresh t.tss;
  t.descs <- fresh t.descs

let push_run t ~addr ~len ~ts ~descs =
  if t.n = Array.length t.addrs then grow t;
  let i = t.n in
  Array.unsafe_set t.addrs i addr;
  Array.unsafe_set t.lens i len;
  Array.unsafe_set t.tss i ts;
  Array.unsafe_set t.descs i descs;
  t.n <- i + 1;
  t.open_ <- false

(* Push one line, extending the previous run when it is contiguous and
   carries the same timestamp (for collectors that visit lines
   individually, e.g. from page-diff pieces). *)
let push_line t ~addr ~len ~ts =
  let i = t.n - 1 in
  if
    t.open_ && i >= 0
    && Array.unsafe_get t.addrs i + Array.unsafe_get t.lens i = addr
    && Array.unsafe_get t.tss i = ts
  then begin
    Array.unsafe_set t.lens i (Array.unsafe_get t.lens i + len);
    Array.unsafe_set t.descs i (Array.unsafe_get t.descs i + 1)
  end
  else begin
    push_run t ~addr ~len ~ts ~descs:1;
    t.open_ <- true
  end

let total_bytes t =
  let sum = ref 0 in
  for i = 0 to t.n - 1 do
    sum := !sum + Array.unsafe_get t.lens i
  done;
  !sum

(* Materialize the accumulated runs, in push order.  [read] snapshots the
   run's data (memory is quiescent during a collection, so reading at the
   end observes the same bytes as reading at each emit). *)
let to_rt_lines t ~read =
  let rec build i acc =
    if i < 0 then acc
    else
      let addr = t.addrs.(i) and len = t.lens.(i) in
      build (i - 1)
        ({ Payload.addr; len; ts = t.tss.(i); data = read ~addr ~len; descs = t.descs.(i) }
        :: acc)
  in
  build (t.n - 1) []
