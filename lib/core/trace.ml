type event =
  | Lock_requested of { t : int; lock : int; proc : int; shared : bool }
  | Lock_granted of {
      t : int;
      lock : int;
      from_ : int;
      to_ : int;
      shared : bool;
      payload_bytes : int;
    }
  | Lock_local of { t : int; lock : int; proc : int }
  | Lock_released of { t : int; lock : int; proc : int }
  | Lock_rebound of { t : int; lock : int; proc : int; bound_bytes : int }
  | Barrier_arrived of { t : int; barrier : int; proc : int; payload_bytes : int }
  | Barrier_completed of { t : int; barrier : int; episode : int }
  | Proc_crashed of { t : int; proc : int }
  | Proc_recovered of { t : int; proc : int }
  | Lock_failover of { t : int; lock : int; from_ : int; to_ : int; epoch : int; votes : int }
  | Backend_switched of { t : int; region : int; from_ : string; to_ : string }

type t = {
  capacity : int;
  ring : event array;  (* valid slots: [start, start+size) mod capacity *)
  mutable start : int;
  mutable size : int;
  mutable recorded : int;
}

let dummy = Lock_local { t = 0; lock = -1; proc = -1 }

let create ~capacity =
  if capacity < 0 then invalid_arg "Trace.create: negative capacity";
  { capacity; ring = Array.make (max capacity 1) dummy; start = 0; size = 0; recorded = 0 }

let record t e =
  (* [recorded] counts every event offered, including those a
     zero-capacity (disabled) ring drops without storing. *)
  t.recorded <- t.recorded + 1;
  if t.capacity > 0 then begin
    if t.size < t.capacity then begin
      t.ring.((t.start + t.size) mod t.capacity) <- e;
      t.size <- t.size + 1
    end
    else begin
      t.ring.(t.start) <- e;
      t.start <- (t.start + 1) mod t.capacity
    end
  end

let length t = t.size

let total t = t.recorded

let events t = List.init t.size (fun i -> t.ring.((t.start + i) mod t.capacity))

let event_time = function
  | Lock_requested { t; _ }
  | Lock_granted { t; _ }
  | Lock_local { t; _ }
  | Lock_released { t; _ }
  | Lock_rebound { t; _ }
  | Barrier_arrived { t; _ }
  | Barrier_completed { t; _ }
  | Proc_crashed { t; _ }
  | Proc_recovered { t; _ }
  | Lock_failover { t; _ }
  | Backend_switched { t; _ } -> t

let pp_event fmt = function
  | Lock_requested { t; lock; proc; shared } ->
      Format.fprintf fmt "%-12s lock %d <- p%d%s" (Midway_util.Units.pp_time t) lock proc
        (if shared then " (read)" else "")
  | Lock_granted { t; lock; from_; to_; shared; payload_bytes } ->
      Format.fprintf fmt "%-12s lock %d: p%d -> p%d%s, %s" (Midway_util.Units.pp_time t) lock
        from_ to_
        (if shared then " (read)" else "")
        (Midway_util.Units.pp_bytes payload_bytes)
  | Lock_local { t; lock; proc } ->
      Format.fprintf fmt "%-12s lock %d: local acquire by p%d" (Midway_util.Units.pp_time t)
        lock proc
  | Lock_released { t; lock; proc } ->
      Format.fprintf fmt "%-12s lock %d: released by p%d" (Midway_util.Units.pp_time t) lock proc
  | Lock_rebound { t; lock; proc; bound_bytes } ->
      Format.fprintf fmt "%-12s lock %d: rebound by p%d to %s" (Midway_util.Units.pp_time t)
        lock proc
        (Midway_util.Units.pp_bytes bound_bytes)
  | Barrier_arrived { t; barrier; proc; payload_bytes } ->
      Format.fprintf fmt "%-12s barrier %d: p%d arrived with %s" (Midway_util.Units.pp_time t)
        barrier proc
        (Midway_util.Units.pp_bytes payload_bytes)
  | Barrier_completed { t; barrier; episode } ->
      Format.fprintf fmt "%-12s barrier %d: episode %d complete" (Midway_util.Units.pp_time t)
        barrier episode
  | Proc_crashed { t; proc } ->
      Format.fprintf fmt "%-12s p%d crash-stopped" (Midway_util.Units.pp_time t) proc
  | Proc_recovered { t; proc } ->
      Format.fprintf fmt "%-12s p%d recovered (rejoined with amnesia)"
        (Midway_util.Units.pp_time t) proc
  | Lock_failover { t; lock; from_; to_; epoch; votes } ->
      Format.fprintf fmt "%-12s lock %d: failover p%d -> p%d (epoch %d, %d vote(s))"
        (Midway_util.Units.pp_time t) lock from_ to_ epoch votes
  | Backend_switched { t; region; from_; to_ } ->
      Format.fprintf fmt "%-12s region %d: backend %s -> %s" (Midway_util.Units.pp_time t)
        region from_ to_

let dump t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun e -> Buffer.add_string buf (Format.asprintf "%a\n" pp_event e))
    (events t);
  Buffer.contents buf
