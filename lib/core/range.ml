(* Re-export of the shared range algebra.  The implementation lives in
   Midway_check.Range (the dependency-free layer below the simulator) so
   the sanitizer and the static analyzer use the very same code; keeping
   this shim preserves the historical [Midway.Range] path for the
   runtime and every application.  No mli on purpose: the inferred
   signature keeps [Midway.Range.t] equal to [Midway_check.Range.t]. *)

include Midway_check.Range
