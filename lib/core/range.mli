(** Address ranges: the unit of entry-consistency data binding.

    The programmer associates a lock or barrier with the ranges of shared
    memory it protects; collection scans exactly these ranges.  Ranges are
    half-open byte intervals [\[addr, addr+len)]. *)

type t = { addr : int; len : int }

val v : int -> int -> t
(** [v addr len]; raises [Invalid_argument] on negative values. *)

val limit : t -> int
(** One past the last byte. *)

val is_empty : t -> bool

val normalize : t list -> t list
(** Sort by address and merge overlapping or adjacent ranges. *)

val total_bytes : t list -> int
(** Sum of lengths (after normalization overlaps are not double counted;
    this function assumes a normalized list). *)

val overlaps : t -> t -> bool
(** Non-empty intersection.  Adjacent ranges do not overlap, and an
    empty range overlaps nothing (not even a range containing its
    address). *)

val intersect : t -> t -> t option

val clip : t -> within:t list -> t list
(** Pieces of [t] that fall inside the (normalized) range list. *)

val subtract : t -> minus:t list -> t list
(** Pieces of [t] not covered by the (normalized) range list. *)

val contains : t list -> addr:int -> len:int -> bool
(** Whether the (normalized) list fully covers [addr, addr+len). *)

val iter_lines : t -> line_size:int -> f:(addr:int -> len:int -> unit) -> unit
(** Visit the cache lines overlapping the range: calls [f] once per line
    with the line's full extent (aligned start, [line_size] bytes), i.e.
    partially covered lines are widened to line granularity, because a
    dirtybit describes the whole line. *)
