(** Online per-region backend election for adaptive hybrid write
    detection.

    One controller per machine (armed by [Config.adaptive]); the runtime
    feeds it one observation per transfer and asks for a decision at
    safe points.  The controller keeps, per region, a window of two
    running cost estimates priced from the cost model — what the
    window's transfers would have cost under RT (dirtybit) detection and
    under VM (page-fault) detection — and recommends the cheaper backend
    once it undercuts the current one by more than the hysteresis
    margin.  Purely deterministic: same observations, same decisions. *)

type t

val create :
  ?min_window:int ->
  ?hysteresis_pct:int ->
  ?cooldown:int ->
  ?min_gain_ns:int ->
  cost:Midway_stats.Cost_model.t ->
  unit ->
  t
(** [min_window] (default 8): transfers a region must accumulate before
    [decide] speaks.  [hysteresis_pct] (default 25): the challenger must
    beat the incumbent's estimated cost by this margin.  [cooldown]
    (default 2): decision windows sat out after each switch, so a
    workload at the break-even point cannot thrash (each switch forces a
    round of full transfers).  [min_gain_ns] (default: the cost model's
    page-fault time): the window must additionally show at least this
    much absolute saving — a switch epoch-bumps every intersecting
    binding, so saving a few hundred nanoseconds is never worth one. *)

val note_collect :
  t ->
  region:int ->
  line_size:int ->
  bound_bytes:int ->
  payload_bytes:int ->
  payload_pages:int ->
  payload_runs:int ->
  rebound:bool ->
  unit
(** Fold one transfer into the region's window.  [payload_pages] and
    [payload_runs] are the distinct pages and contiguous runs the
    shipped payload covers; [rebound] marks a rebinding-forced full
    transfer (diff-free under VM — see the paper's quicksort
    discussion). *)

val decide : t -> region:int -> current:Config.backend -> Config.backend option
(** Close the region's window and recommend a switch, or [None] to stay.
    Only meaningful for regions currently running [Rt] or [Vm]
    (raises [Invalid_argument] otherwise).  Returns [None] without
    closing the window while fewer than [min_window] transfers have
    accumulated. *)

val note_switch : t -> region:int -> unit
(** The runtime committed a switch for this region: start the cooldown. *)

val window : t -> region:int -> int * int * int
(** [(collects, est_rt_ns, est_vm_ns)] of the region's open window —
    test hook. *)
