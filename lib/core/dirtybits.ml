module Region = Midway_memory.Region

type region_table = {
  ts : int array;  (* per line: Timestamp.t *)
  l1 : Bytes.t;  (* two-level: dirty flag per group *)
  group_max : int array;  (* two-level: max stamp installed in the group *)
}

type t = {
  mode : Config.rt_mode;
  group : int;
  mutable tables : region_table option array;  (* by region index *)
  mutable queue : Range.t list;  (* update-queue mode, newest first *)
  mutable queue_len : int;
}

type scan_counts = {
  mutable clean_reads : int;
  mutable dirty_reads : int;
  mutable groups_skipped : int;
  mutable group_checks : int;
  mutable queue_entries : int;
}

type selection = Transfer of Timestamp.t | Fresh_only

let create ~mode ~group =
  if group <= 0 then invalid_arg "Dirtybits.create: group must be positive";
  { mode; group; tables = Array.make 16 None; queue = []; queue_len = 0 }

let mode t = t.mode

let table_for t (r : Region.t) =
  let idx = r.index in
  if idx >= Array.length t.tables then begin
    let fresh = Array.make (max (idx + 1) (2 * Array.length t.tables)) None in
    Array.blit t.tables 0 fresh 0 (Array.length t.tables);
    t.tables <- fresh
  end;
  match t.tables.(idx) with
  | Some tbl -> tbl
  | None ->
      let lines = Region.lines r in
      let two_level = t.mode = Config.Two_level in
      let groups = if two_level then (lines + t.group - 1) / t.group else 0 in
      let tbl =
        {
          ts = Array.make lines Timestamp.initial;
          l1 = Bytes.make groups '\000';
          group_max = Array.make groups Timestamp.initial;
        }
      in
      t.tables.(idx) <- Some tbl;
      tbl

let line_index (r : Region.t) addr = (addr - Region.base r) / r.line_size

let note_write t ~region ~addr ~len =
  match t.mode with
  | Config.Update_queue ->
      (* Coalesce with the most recent entry when the new write extends or
         repeats it — the sequential-write heuristic from section 3.5. *)
      let entry = Range.v addr (max len 1) in
      (match t.queue with
      | prev :: rest
        when entry.Range.addr <= Range.limit prev && prev.Range.addr <= Range.limit entry
        ->
          let lo = min prev.Range.addr entry.Range.addr in
          let hi = max (Range.limit prev) (Range.limit entry) in
          t.queue <- Range.v lo (hi - lo) :: rest
      | q ->
          t.queue <- entry :: q;
          t.queue_len <- t.queue_len + 1)
  | Config.Plain | Config.Two_level ->
      let tbl = table_for t region in
      let first = line_index region addr in
      let last = line_index region (addr + max len 1 - 1) in
      for line = first to last do
        tbl.ts.(line) <- Timestamp.locally_dirty;
        if t.mode = Config.Two_level then Bytes.set tbl.l1 (line / t.group) '\001'
      done

let line_ts t ~region ~addr =
  let tbl = table_for t region in
  tbl.ts.(line_index region addr)

let bump_group_max t tbl line ts =
  if t.mode = Config.Two_level then begin
    let g = line / t.group in
    if ts > tbl.group_max.(g) then tbl.group_max.(g) <- ts
  end

let set_ts t ~region ~addr ~ts =
  let tbl = table_for t region in
  let line = line_index region addr in
  tbl.ts.(line) <- ts;
  bump_group_max t tbl line ts

(* Install one timestamp across [lines] consecutive lines starting at
   [addr] — the apply side of a coalesced run (one table lookup for the
   whole run). *)
let set_ts_run t ~region ~addr ~lines ~ts =
  let tbl = table_for t region in
  let first = line_index region addr in
  for line = first to first + lines - 1 do
    tbl.ts.(line) <- ts;
    bump_group_max t tbl line ts
  done

let fresh_counts () =
  { clean_reads = 0; dirty_reads = 0; groups_skipped = 0; group_checks = 0; queue_entries = 0 }

(* Scan one line: stamp if locally dirty, emit per the selection. *)
let visit_line t tbl counts ~region ~stamp ~select ~emit line =
  let addr = Region.base region + (line * region.Region.line_size) in
  let len = region.Region.line_size in
  let v = tbl.ts.(line) in
  if v = Timestamp.locally_dirty then begin
    counts.dirty_reads <- counts.dirty_reads + 1;
    tbl.ts.(line) <- stamp;
    bump_group_max t tbl line stamp;
    match select with
    | Transfer last_seen -> if stamp > last_seen then emit ~addr ~len ~ts:stamp ~fresh:true
    | Fresh_only -> emit ~addr ~len ~ts:stamp ~fresh:true
  end
  else begin
    counts.clean_reads <- counts.clean_reads + 1;
    match select with
    | Transfer last_seen -> if v > last_seen then emit ~addr ~len ~ts:v ~fresh:false
    | Fresh_only -> ()
  end

(* Two-level first-level check: may the whole group be skipped? *)
let group_skippable tbl ~select g =
  Bytes.get tbl.l1 g = '\000'
  &&
  match select with
  | Fresh_only -> true  (* nothing locally dirty in the group *)
  | Transfer last_seen -> tbl.group_max.(g) <= last_seen

let scan_range t counts ~region ~range ~stamp ~select ~emit =
  let tbl = table_for t region in
  let first = line_index region range.Range.addr in
  let last = line_index region (Range.limit range - 1) in
  match t.mode with
  | Config.Plain | Config.Update_queue ->
      for line = first to last do
        visit_line t tbl counts ~region ~stamp ~select ~emit line
      done
  | Config.Two_level ->
      let line = ref first in
      while !line <= last do
        let g = !line / t.group in
        let g_first = g * t.group in
        let g_last = min (g_first + t.group - 1) (Array.length tbl.ts - 1) in
        if !line = g_first && g_last <= last then begin
          (* Group fully covered by the scan: the first level applies. *)
          counts.group_checks <- counts.group_checks + 1;
          if group_skippable tbl ~select g then
            counts.groups_skipped <- counts.groups_skipped + 1
          else begin
            for l = g_first to g_last do
              visit_line t tbl counts ~region ~stamp ~select ~emit l
            done;
            (* Every sentinel in the group has been stamped. *)
            Bytes.set tbl.l1 g '\000'
          end;
          line := g_last + 1
        end
        else begin
          visit_line t tbl counts ~region ~stamp ~select ~emit !line;
          incr line
        end
      done

let scan_queue t counts ~region_of ~ranges ~stamp ~emit =
  let keep = ref [] and consumed = ref [] and kept = ref 0 in
  List.iter
    (fun entry ->
      let inside = Range.clip entry ~within:ranges in
      if inside = [] then begin
        keep := entry :: !keep;
        incr kept
      end
      else begin
        consumed := inside @ !consumed;
        let remain = Range.subtract entry ~minus:ranges in
        keep := remain @ !keep;
        kept := !kept + List.length remain
      end)
    t.queue;
  t.queue <- List.rev !keep;
  t.queue_len <- !kept;
  List.iter
    (fun (piece : Range.t) ->
      counts.queue_entries <- counts.queue_entries + 1;
      let region = region_of piece.Range.addr in
      let tbl = table_for t region in
      let first = line_index region piece.Range.addr in
      let last = line_index region (Range.limit piece - 1) in
      for line = first to last do
        if tbl.ts.(line) <> stamp then begin
          (* A queued entry means this processor wrote the line; stamp it
             and emit (a transfer cursor is always below a fresh stamp). *)
          counts.dirty_reads <- counts.dirty_reads + 1;
          tbl.ts.(line) <- stamp;
          emit region
            ~addr:(Region.base region + (line * region.Region.line_size))
            ~len:region.Region.line_size ~ts:stamp ~fresh:true
        end
      done)
    !consumed;
  counts

(* Pending run state for coalescing per-line visits into one emit per
   contiguous run of lines sharing a timestamp and freshness. *)
type run_acc = {
  mutable r_addr : int;
  mutable r_len : int;
  mutable r_ts : Timestamp.t;
  mutable r_fresh : bool;
  mutable r_lines : int;
  mutable r_region : int;  (* region index; a run never spans regions *)
  mutable r_active : bool;
}

let scan t ~region_of ~ranges ~stamp ~select ~emit =
  let counts = fresh_counts () in
  let ranges = Range.normalize ranges in
  let r =
    {
      r_addr = 0;
      r_len = 0;
      r_ts = 0;
      r_fresh = false;
      r_lines = 0;
      r_region = -1;
      r_active = false;
    }
  in
  let flush () =
    if r.r_active then begin
      r.r_active <- false;
      emit ~addr:r.r_addr ~len:r.r_len ~ts:r.r_ts ~fresh:r.r_fresh ~lines:r.r_lines
    end
  in
  (* Per-line selection feeds the coalescer; discontiguity, a change of
     timestamp/freshness, or a region boundary closes the pending run.  A
     line visited twice (overlapping unmerged ranges) restarts a run
     because its address does not extend the pending one, so nothing is
     ever silently dropped. *)
  let emit_line (region : Region.t) ~addr ~len ~ts ~fresh =
    if
      r.r_active && r.r_addr + r.r_len = addr && r.r_ts = ts && r.r_fresh = fresh
      && r.r_region = region.Region.index
    then begin
      r.r_len <- r.r_len + len;
      r.r_lines <- r.r_lines + 1
    end
    else begin
      flush ();
      r.r_active <- true;
      r.r_addr <- addr;
      r.r_len <- len;
      r.r_ts <- ts;
      r.r_fresh <- fresh;
      r.r_lines <- 1;
      r.r_region <- region.Region.index
    end
  in
  (match t.mode with
  | Config.Update_queue ->
      ignore (scan_queue t counts ~region_of ~ranges ~stamp ~emit:emit_line)
  | Config.Plain | Config.Two_level ->
      List.iter
        (fun range ->
          if not (Range.is_empty range) then
            let region = region_of range.Range.addr in
            scan_range t counts ~region ~range ~stamp ~select ~emit:(emit_line region))
        ranges);
  flush ();
  counts

let queue_length t = t.queue_len

(* Forget everything about one region: detection restarts from the
   initial stamp, exactly as if the region had never been written here.
   Post-reset, [Timestamp.initial] still exceeds a rebound lock's
   [Timestamp.never_seen] cursor, so the data itself is not lost — the
   next transfer ships it in full. *)
let reset_region t (r : Region.t) =
  (if r.Region.index < Array.length t.tables then
     match t.tables.(r.Region.index) with
     | None -> ()
     | Some tbl ->
         Array.fill tbl.ts 0 (Array.length tbl.ts) Timestamp.initial;
         Bytes.fill tbl.l1 0 (Bytes.length tbl.l1) '\000';
         Array.fill tbl.group_max 0 (Array.length tbl.group_max) Timestamp.initial);
  if t.queue <> [] then begin
    let span = Range.v (Region.base r) r.Region.region_size in
    let keep = List.concat_map (fun e -> Range.subtract e ~minus:[ span ]) t.queue in
    t.queue <- keep;
    t.queue_len <- List.length keep
  end
