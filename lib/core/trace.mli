(** Protocol event tracing.

    A bounded ring of protocol events (lock requests/grants, releases,
    rebinds, barrier episodes) recorded with virtual timestamps.  Tracing
    exists for debugging simulated programs and for inspecting protocol
    behaviour — `midway-run --trace N` prints the last N events of a run.
    Recording is O(1) and allocation-light; a capacity of 0 disables it
    entirely. *)

type event =
  | Lock_requested of { t : int; lock : int; proc : int; shared : bool }
      (** a remote acquisition left [proc] at virtual time [t] *)
  | Lock_granted of {
      t : int;  (** when the requester resumes *)
      lock : int;
      from_ : int;  (** the releaser that served the request *)
      to_ : int;
      shared : bool;
      payload_bytes : int;
    }
  | Lock_local of { t : int; lock : int; proc : int }
      (** acquisition satisfied locally, no messages *)
  | Lock_released of { t : int; lock : int; proc : int }
  | Lock_rebound of { t : int; lock : int; proc : int; bound_bytes : int }
  | Barrier_arrived of { t : int; barrier : int; proc : int; payload_bytes : int }
  | Barrier_completed of { t : int; barrier : int; episode : int }
  | Proc_crashed of { t : int; proc : int }
      (** the processor's fiber crash-stopped at a synchronization point *)
  | Proc_recovered of { t : int; proc : int }
      (** the processor rejoined as a protocol participant with amnesia *)
  | Lock_failover of { t : int; lock : int; from_ : int; to_ : int; epoch : int; votes : int }
      (** quorum ownership transfer away from a suspected-dead owner:
          [epoch] is the lock's incarnation after the bump, [votes] the
          ballots collected (including the initiator's own) *)
  | Backend_switched of { t : int; region : int; from_ : string; to_ : string }
      (** hybrid write detection re-elected a region's backend
          ([Config.backend_name] strings) — manual or adaptive *)

type t

val create : capacity:int -> t
(** A ring holding the most recent [capacity] events ([capacity = 0]
    disables recording). *)

val record : t -> event -> unit

val length : t -> int
(** Events currently held (at most the capacity). *)

val total : t -> int
(** Events ever recorded, including those the ring has dropped. *)

val events : t -> event list
(** Retained events, oldest first. *)

val event_time : event -> int

val pp_event : Format.formatter -> event -> unit

val dump : t -> string
(** All retained events, one per line, oldest first. *)
