(* Online per-region backend election (the adaptive half of hybrid write
   detection).

   The controller never inspects memory: it is fed the same quantities
   the observability layer exports for every transfer — payload bytes,
   bound bytes, the pages and runs the payload covers, and whether the
   transfer was a rebinding-forced full — and folds them into two
   running per-region cost estimates priced from the machine's
   {!Midway_stats.Cost_model}:

   - [est_rt]: what the window's transfers would have cost under
     software (dirtybit) detection — a store template per dirtied line
     plus a scan of the bound lines at each collection.
   - [est_vm]: what they would have cost under virtual-memory detection
     — a write fault and re-protection per touched page plus a word-wise
     page diff at each collection, except for rebinding-forced fulls,
     which VM-DSM ships diff-free (and whose pages stay writable, so
     they cost VM nothing at all).

   Both estimates are computed on every transfer regardless of which
   backend is actually live, so the controller can price the road not
   taken.  Decisions happen at safe points the runtime chooses (a
   release with no outstanding holders); [decide] closes the window and
   recommends the cheaper backend when it undercuts the current one by
   more than the hysteresis margin.  A cooldown of full windows after
   each switch keeps a workload sitting near the break-even point from
   thrashing (every switch costs the protocol a round of full
   transfers).

   Everything here is deterministic arithmetic over deterministic
   inputs, so adaptive runs replay bit-identically under the fuzzer's
   schedule/fault/crash exploration. *)

module Cost_model = Midway_stats.Cost_model

type stats = {
  mutable collects : int;  (* transfers observed this window *)
  mutable est_rt_ns : int;
  mutable est_vm_ns : int;
  mutable rebounds : int;  (* rebinding-forced fulls this window *)
  mutable cooldown : int;  (* windows to sit out after a switch *)
}

type t = {
  cost : Cost_model.t;
  min_window : int;
  hysteresis_pct : int;
  cooldown_windows : int;
  min_gain_ns : int;
  regions : (int, stats) Hashtbl.t;
}

let create ?(min_window = 8) ?(hysteresis_pct = 25) ?(cooldown = 2) ?min_gain_ns ~cost () =
  if min_window <= 0 then invalid_arg "Policy.create: min_window must be positive";
  if hysteresis_pct < 0 then invalid_arg "Policy.create: hysteresis_pct must be >= 0";
  if cooldown < 0 then invalid_arg "Policy.create: cooldown must be >= 0";
  (* A switch is not free: it epoch-bumps every intersecting binding, so
     the next transfers are full.  Demand the window show savings at
     least comparable to page machinery before paying that — without the
     floor, a window of empty return-transfers (est 0 under VM, a few
     hundred ns of scan under RT) recommends a switch to save nothing. *)
  let min_gain_ns =
    match min_gain_ns with Some g -> g | None -> cost.Cost_model.page_fault_ns
  in
  if min_gain_ns < 0 then invalid_arg "Policy.create: min_gain_ns must be >= 0";
  {
    cost;
    min_window;
    hysteresis_pct;
    cooldown_windows = cooldown;
    min_gain_ns;
    regions = Hashtbl.create 8;
  }

let stats_for t region =
  match Hashtbl.find_opt t.regions region with
  | Some s -> s
  | None ->
      let s = { collects = 0; est_rt_ns = 0; est_vm_ns = 0; rebounds = 0; cooldown = 0 } in
      Hashtbl.replace t.regions region s;
      s

let ceil_div a b = (a + b - 1) / b

let note_collect t ~region ~line_size ~bound_bytes ~payload_bytes ~payload_pages
    ~payload_runs ~rebound =
  let c = t.cost in
  let s = stats_for t region in
  s.collects <- s.collects + 1;
  if rebound then s.rebounds <- s.rebounds + 1;
  let dirty_lines = ceil_div payload_bytes line_size in
  let bound_lines = ceil_div bound_bytes line_size in
  (* One dirtied word is at least one instrumented store, so payload
     words lower-bound RT's trap cost (re-writes of the same word are
     invisible here, biasing the estimate in RT's favour); the collection
     then scans the bound lines, with dirty ones costing the dirty-read
     path.  RT prices rebound fulls like any other transfer — rebinding
     gives it no diff-free shortcut (paper, section 4, quicksort). *)
  s.est_rt_ns <-
    s.est_rt_ns
    + (payload_bytes / 8 * c.Cost_model.dirtybit_set_ns)
    + (bound_lines * c.Cost_model.dirtybit_read_clean_ns)
    + (dirty_lines * c.Cost_model.dirtybit_read_dirty_ns);
  (* VM pays page machinery per touched page and a word-wise diff per
     collection — unless the transfer was a rebinding-forced full, which
     ships without diffing and leaves the pages writable. *)
  if not rebound then begin
    let psize = c.Cost_model.page_size in
    let pages = max payload_pages (if payload_bytes > 0 then 1 else 0) in
    s.est_vm_ns <-
      s.est_vm_ns
      + (pages * (c.Cost_model.page_fault_ns + c.Cost_model.page_protect_ro_ns))
      + Cost_model.diff_cost_ns c ~words:(pages * (psize / 4))
          ~transitions:(2 * max payload_runs 1)
  end

let window t ~region =
  let s = stats_for t region in
  (s.collects, s.est_rt_ns, s.est_vm_ns)

let reset_window s =
  s.collects <- 0;
  s.est_rt_ns <- 0;
  s.est_vm_ns <- 0;
  s.rebounds <- 0

let decide t ~region ~current =
  let s = stats_for t region in
  if s.collects < t.min_window then None
  else if s.cooldown > 0 then begin
    (* Sitting out a post-switch window: consume it and start fresh so
       the next decision prices only post-switch behaviour. *)
    s.cooldown <- s.cooldown - 1;
    reset_window s;
    None
  end
  else begin
    let cur_ns, other, other_ns =
      match current with
      | Config.Rt -> (s.est_rt_ns, Config.Vm, s.est_vm_ns)
      | Config.Vm -> (s.est_vm_ns, Config.Rt, s.est_rt_ns)
      | _ -> invalid_arg "Policy.decide: only rt and vm regions are managed"
    in
    reset_window s;
    if
      cur_ns * 100 > other_ns * (100 + t.hysteresis_pct)
      && cur_ns - other_ns > t.min_gain_ns
    then Some other
    else None
  end

let note_switch t ~region =
  let s = stats_for t region in
  s.cooldown <- t.cooldown_windows;
  reset_window s
