module Engine = Midway_sched.Engine
module Space = Midway_memory.Space
module Region = Midway_memory.Region
module Net = Midway_simnet.Net
module Reliable = Midway_simnet.Reliable
module Crash = Midway_simnet.Crash
module Counters = Midway_stats.Counters
module Cost_model = Midway_stats.Cost_model
module Obs = Midway_obs.Obs
module Metrics = Midway_obs.Metrics

type backend_state =
  | B_rt of Dirtybits.t
  | B_vm of Vm_state.t
  | B_twin of Twin_state.t  (* section 3.5: no detection, diff everything bound *)
  | B_vmfine of Vm_state.t * Dirtybits.t
      (* section 3.4's rejected variant: VM trapping feeding an RT-style
         per-line timestamp history *)
  | B_none  (* blast and standalone: no write detection *)

type ctx = {
  cid : int;
  machine : t;
  proc : Engine.proc;
  counters : Counters.t;
  mutable lamport : int;
  mutable rt_global_seen : Timestamp.t;  (* untargetted mode: everything-consistent-as-of cursor *)
  backend : backend_state;  (* the machine-default detection state *)
  (* Lazily created alternate detection states, used by regions elected
     away from the machine default (hybrid write detection).  A fixed
     configuration never touches them. *)
  mutable alt_rt : Dirtybits.t option;
  mutable alt_vm : Vm_state.t option;
  mutable alt_twin : Twin_state.t option;
  gather : Gather.t;  (* reusable run buffer for write collection *)
  check : Midway_check.Check.t option;  (* ECSan, when cfg.ecsan *)
}

and crash_state = {
  cr_plan : Crash.plan;
  cr_replicas : int;
  cr_broken : bool;  (* demo bug: skip replication and the epoch rules *)
  cr_watchdog_ns : int;  (* virtual-time bound: survivors past it die too *)
  cr_killed : bool array;  (* fibers actually crash-stopped so far *)
}

and t = {
  cfg : Config.t;
  engine : Engine.t;
  space : Space.t;
  net : Net.t;
  reliable : Reliable.t option;
      (* Some iff cfg.faults or cfg.crash is armed: every protocol message
         then goes through the ack/retransmission channel *)
  crash : crash_state option;
  mutable ctxs : ctx array;  (* filled right after construction *)
  rt_untargetted_history : (int, Timestamp.t) Hashtbl.t;
      (* untargetted update-queue mode: global line -> stamp history *)
  trace : Trace.t;
  mutable locks : Sync.lock list;
  mutable barriers : Sync.barrier list;
  mutable next_sync_id : int;
  mutable ran : bool;
  (* --- per-region backend election (hybrid write detection) --- *)
  mutable region_backend : Config.backend option array;
      (* by region index; [None] means the machine default.  Only
         consulted when [mixed] is set, so fixed configurations take the
         exact pre-hybrid code path. *)
  mutable mixed : bool;  (* some region's backend differs from the default *)
  mutable striped_ord : int;  (* shared regions assigned under cfg.striped *)
  mutable switches : int;  (* backend switches committed so far *)
  region_ns : (int, int) Hashtbl.t;
      (* region index -> collect+apply ns attributed to transfers of
         bindings rooted there (host-side accounting; -1 buckets
         transfers with no bound data).  Mirrors every increment of the
         per-processor [collect_time_ns] counters. *)
  policy : Policy.t option;  (* Some iff cfg.adaptive *)
  checker : Midway_check.Check.t option;
  obsv : Obs.t option;
      (* Some iff cfg.obs: the structured span log and metrics registry.
         Every hook below is a single match on this field, and recording
         never charges virtual time, so the default run takes the exact
         pre-obs code path. *)
}

let electable = function
  | Config.Rt | Config.Vm | Config.Twin | Config.Blast -> true
  | Config.Vm_fine | Config.Standalone -> false

let create (cfg : Config.t) =
  if cfg.backend = Config.Standalone && cfg.nprocs > 1 then
    invalid_arg "Runtime.create: the standalone backend is uniprocessor only";
  if cfg.untargetted && cfg.backend <> Config.Rt then
    invalid_arg "Runtime.create: the untargetted model is implemented for the RT backend only";
  if (cfg.adaptive || cfg.striped <> None) && cfg.untargetted then
    invalid_arg
      "Runtime.create: per-region backends need targetted bindings (untargetted consistency \
       is machine-wide by construction)";
  if cfg.adaptive && not (cfg.backend = Config.Rt || cfg.backend = Config.Vm) then
    invalid_arg "Runtime.create: adaptive elects between rt and vm; start from one of them";
  (match cfg.striped with
  | Some alt when not (electable alt && electable cfg.backend) ->
      invalid_arg
        "Runtime.create: striped regions need per-region electable backends \
         (rt|vm|twin|blast) on both sides"
  | _ -> ());
  let engine = Engine.create ~policy:cfg.sched_policy ~nprocs:cfg.nprocs () in
  let space = Space.create ~region_size:cfg.region_size ~nprocs:cfg.nprocs () in
  let net =
    Net.create ~latency_ns:cfg.net_latency_ns ~ns_per_byte:cfg.net_ns_per_byte
      ~header_bytes:cfg.net_header_bytes ~nprocs:cfg.nprocs ()
  in
  (* The reliable channel is armed by message faults *or* by node-level
     crash faults: suspicion detection rides on ack-timeout exhaustion, so
     a crashed fabric needs the channel even on an otherwise-clean net. *)
  let reliable =
    match (cfg.faults, cfg.crash) with
    | None, None -> None
    | faults, crash ->
        (match faults with Some policy -> Net.set_fault_policy net policy | None -> ());
        let rc = Config.reliable_config cfg in
        let rc =
          match crash with
          | Some cr ->
              { rc with Reliable.max_attempts = min rc.Reliable.max_attempts cr.Config.suspect_attempts }
          | None -> rc
        in
        let ch = Reliable.create ~config:rc net in
        (match crash with
        | Some cr ->
            let down ~proc ~at = Crash.is_down cr.Config.plan ~proc ~at in
            Net.set_crash_predicate net (Some (fun ~proc ~at -> down ~proc ~at));
            Reliable.set_suspector ch (Some (fun ~peer ~at -> down ~proc:peer ~at))
        | None -> ());
        Some ch
  in
  let trace = Trace.create ~capacity:cfg.trace_capacity in
  let check =
    if not cfg.ecsan then None
    else if cfg.untargetted then
      invalid_arg
        "Runtime.create: ecsan assumes targetted entry consistency (any lock transfer makes \
         everything consistent under the untargetted model, so binding checks do not apply)"
    else
      (* First-occurrence context: the tail of the protocol trace (empty
         unless trace_capacity > 0). *)
      let context () =
        let evs = Trace.events trace in
        let n = List.length evs in
        let rec drop k = function l when k <= 0 -> l | [] -> [] | _ :: tl -> drop (k - 1) tl in
        List.map (Format.asprintf "%a" Trace.pp_event) (drop (n - 3) evs)
      in
      Some (Midway_check.Check.create ~context ~nprocs:cfg.nprocs ())
  in
  let obsv = if cfg.obs then Some (Obs.create ~cap:cfg.obs_span_cap ()) else None in
  (match obsv with
  | None -> ()
  | Some o ->
      (* Generic scheduler-block spans (reason = what the fiber waited
         on) and, with faults armed, reliable-channel episodes.  Both
         hooks read values the simulator computed anyway. *)
      Engine.set_block_observer engine
        (Some
           (fun ~proc ~reason ~blocked_at ~woke_at ->
             Obs.span o Obs.Sched_block ~proc
               ~note:(Option.value reason ~default:"")
               ~t0:blocked_at ~t1:woke_at ()));
      (match reliable with
      | None -> ()
      | Some ch ->
          Reliable.set_observer ch
            (Some
               (fun (e : Reliable.episode) ->
                 let m = Obs.metrics o in
                 let chan = Printf.sprintf "p%d->p%d" e.Reliable.e_src e.Reliable.e_dst in
                 Metrics.observe m ~name:"retransmits_per_send" ~label:chan
                   ~buckets:Metrics.count_buckets e.Reliable.e_retransmits;
                 Metrics.incr m ~name:"reliable_sends" ~label:chan 1;
                 if e.Reliable.e_retransmits > 0 then
                   Obs.span o Obs.Retransmit ~proc:e.Reliable.e_src
                     ~bytes:e.Reliable.e_payload_bytes
                     ~note:
                       (Printf.sprintf "%s seq %d to p%d (%d retransmit(s))"
                          (Net.kind_name e.Reliable.e_kind) e.Reliable.e_seq
                          e.Reliable.e_dst e.Reliable.e_retransmits)
                     ~t0:e.Reliable.e_sent_at ~t1:e.Reliable.e_acked_at ()))));
  let machine =
    {
      cfg;
      engine;
      space;
      net;
      reliable;
      crash =
        Option.map
          (fun (cc : Config.crash) ->
            {
              cr_plan = cc.Config.plan;
              cr_replicas = cc.Config.replicas;
              cr_broken = cc.Config.broken_failover;
              cr_watchdog_ns = cc.Config.watchdog_ns;
              cr_killed = Array.make cfg.nprocs false;
            })
          cfg.crash;
      ctxs = [||];
      rt_untargetted_history = Hashtbl.create 64;
      trace;
      locks = [];
      barriers = [];
      next_sync_id = 0;
      ran = false;
      region_backend = Array.make 16 None;
      mixed = false;
      striped_ord = 0;
      switches = 0;
      region_ns = Hashtbl.create 16;
      policy = (if cfg.adaptive then Some (Policy.create ~cost:cfg.cost ()) else None);
      checker = check;
      obsv;
    }
  in
  machine.ctxs <-
    Array.init cfg.nprocs (fun cid ->
        {
          cid;
          machine;
          proc = Engine.proc engine cid;
          counters = Counters.create ();
          lamport = 1;
          rt_global_seen = Timestamp.never_seen;
          backend =
            (match cfg.backend with
            | Config.Rt -> B_rt (Dirtybits.create ~mode:cfg.rt_mode ~group:cfg.two_level_group)
            | Config.Vm -> B_vm (Vm_state.create ~page_size:cfg.cost.page_size)
            | Config.Twin -> B_twin (Twin_state.create ())
            | Config.Vm_fine ->
                B_vmfine
                  ( Vm_state.create ~page_size:cfg.cost.page_size,
                    Dirtybits.create ~mode:Config.Plain ~group:cfg.two_level_group )
            | Config.Blast | Config.Standalone -> B_none);
          alt_rt = None;
          alt_vm = None;
          alt_twin = None;
          gather = Gather.create ();
          check;
        });
  machine

let config t = t.cfg

let space t = t.space

let net t = t.net

let counters t i = t.ctxs.(i).counters

let trace t = t.trace

let obs t = t.obsv

let all_counters t = Array.map (fun c -> c.counters) t.ctxs

(* Observability label conventions: "p3/lock2", "p0/barrier1". *)
let lock_label p lid = Printf.sprintf "p%d/lock%d" p lid

let barrier_label p bid = Printf.sprintf "p%d/barrier%d" p bid

(* The RT "diff" is the dirtybit scan; VM and twin diff against pages or
   twins.  The note distinguishes them in an exported trace. *)
let diff_note = function
  | B_rt _ -> "dirtybit scan"
  | B_vm _ -> "page diff"
  | B_twin _ -> "twin compare"
  | B_vmfine _ -> "page diff + dirtybit scan"
  | B_none -> "no detection"

(* ------------------------------------------------------------------ *)
(* Per-region backend election (hybrid write detection)                *)
(*                                                                     *)
(* Each lock-bound region carries its own detection choice.  The       *)
(* machine default (cfg.backend) is the degenerate case: [mixed] stays *)
(* false, every helper below collapses to the default in O(1), and the *)
(* protocol runs the exact pre-hybrid code path.                       *)
(* ------------------------------------------------------------------ *)

let region_index_of t addr = addr / t.cfg.region_size

let ensure_region_slot t idx =
  let cap = Array.length t.region_backend in
  if idx >= cap then begin
    let fresh = Array.make (max (idx + 1) (cap * 2)) None in
    Array.blit t.region_backend 0 fresh 0 cap;
    t.region_backend <- fresh
  end

let backend_of_region t idx =
  if (not t.mixed) || idx < 0 || idx >= Array.length t.region_backend then t.cfg.backend
  else match t.region_backend.(idx) with Some b -> b | None -> t.cfg.backend

(* The detection state [c] uses for backend [b]: the machine-default
   state when [b] is the default, a lazily created alternate otherwise.
   One state per backend serves every region elected to it — the states
   are address-keyed internally, and a switch resets the region's slice
   of each (see [switch_region_backend]). *)
let state_for (c : ctx) (b : Config.backend) =
  let cfg = c.machine.cfg in
  if b = cfg.backend then c.backend
  else
    match b with
    | Config.Rt -> (
        match c.alt_rt with
        | Some db -> B_rt db
        | None ->
            let db = Dirtybits.create ~mode:cfg.rt_mode ~group:cfg.two_level_group in
            c.alt_rt <- Some db;
            B_rt db)
    | Config.Vm -> (
        match c.alt_vm with
        | Some vm -> B_vm vm
        | None ->
            let vm = Vm_state.create ~page_size:cfg.cost.page_size in
            c.alt_vm <- Some vm;
            B_vm vm)
    | Config.Twin -> (
        match c.alt_twin with
        | Some tw -> B_twin tw
        | None ->
            let tw = Twin_state.create () in
            c.alt_twin <- Some tw;
            B_twin tw)
    | Config.Blast -> B_none
    | Config.Vm_fine | Config.Standalone ->
        invalid_arg "Runtime.state_for: vm-fine and standalone are machine-wide backends"

(* The backend a binding runs under: the unanimous election over the
   regions its non-empty ranges live in.  A binding spanning regions
   with *different* elections degrades to [conflict] — Blast for locks
   (whole-data copy: always correct, never clever), Twin for barriers
   (Blast cannot carry barrier-bound data). *)
let elected_backend ?(conflict = Config.Blast) t ranges =
  if not t.mixed then t.cfg.backend
  else begin
    let b = ref None and clash = ref false in
    List.iter
      (fun (r : Range.t) ->
        if not (Range.is_empty r) then begin
          let rb = backend_of_region t (region_index_of t r.Range.addr) in
          match !b with
          | None -> b := Some rb
          | Some prev -> if prev <> rb then clash := true
        end)
      ranges;
    if !clash then conflict else match !b with Some rb -> rb | None -> t.cfg.backend
  end

(* Host-side per-region time accounting: mirrors every increment of the
   per-processor [collect_time_ns] counters, attributed to the region of
   the binding's first non-empty range (-1 when there is none). *)
let bump_region_ns t ranges ns =
  if ns <> 0 then begin
    let idx =
      match List.find_opt (fun (r : Range.t) -> not (Range.is_empty r)) ranges with
      | Some r -> region_index_of t r.Range.addr
      | None -> -1
    in
    let cur = match Hashtbl.find_opt t.region_ns idx with Some v -> v | None -> 0 in
    Hashtbl.replace t.region_ns idx (cur + ns)
  end

let alloc t ?line_size ?(private_ = false) bytes =
  let line_size = Option.value line_size ~default:t.cfg.default_line_size in
  let kind = if private_ then Region.Private else Region.Shared in
  let a = Space.alloc t.space ~kind ~line_size bytes in
  (* Static striping: alternate shared regions between the machine
     default and the configured alternate, by shared-region creation
     ordinal.  Deterministic in the allocation order, so the qcheck
     mixed-digest property can build half-RT/half-VM machines from
     configuration alone. *)
  (match t.cfg.striped with
  | Some alt when not private_ ->
      let idx = region_index_of t a in
      ensure_region_slot t idx;
      if t.region_backend.(idx) = None then begin
        let b = if t.striped_ord land 1 = 1 then alt else t.cfg.backend in
        t.striped_ord <- t.striped_ord + 1;
        t.region_backend.(idx) <- Some b;
        if b <> t.cfg.backend then t.mixed <- true
      end
  | _ -> ());
  a

(* ECSan sees the caller's raw range lists (pre-normalization), so its
   lint can flag degenerate entries the protocol silently drops. *)
let raw_pairs ranges = List.map (fun (r : Range.t) -> (r.Range.addr, r.Range.len)) ranges

let new_lock t ?(owner = 0) ranges =
  let lid = t.next_sync_id in
  t.next_sync_id <- lid + 1;
  let l = Sync.make_lock ~lid ~nprocs:t.cfg.nprocs ~owner ~ranges in
  t.locks <- l :: t.locks;
  (match t.checker with
  | Some ch ->
      Midway_check.Check.on_new_sync ch ~id:lid ~kind:Midway_check.Binding_index.Lock
        ~raw:(raw_pairs ranges)
  | None -> ());
  l

let new_barrier t ?participants ?(manager = 0) ranges =
  let participants = Option.value participants ~default:t.cfg.nprocs in
  let bid = t.next_sync_id in
  t.next_sync_id <- bid + 1;
  let b = Sync.make_barrier ~bid ~nprocs:t.cfg.nprocs ~participants ~manager ~ranges in
  t.barriers <- b :: t.barriers;
  (match t.checker with
  | Some ch ->
      Midway_check.Check.on_new_sync ch ~id:bid ~kind:Midway_check.Binding_index.Barrier
        ~raw:(raw_pairs ranges)
  | None -> ());
  b

(* ------------------------------------------------------------------ *)
(* Processor basics                                                    *)
(* ------------------------------------------------------------------ *)

let id c = c.cid

let nprocs c = c.machine.cfg.nprocs

let now_ns c = Engine.clock c.proc

let work_ns c ns = Engine.charge c.proc ns

let work_cycles c cycles = Engine.charge c.proc (cycles * c.machine.cfg.cost.cycle_ns)

let region_of c addr = Space.region_of_addr c.machine.space addr

(* ------------------------------------------------------------------ *)
(* Crash faults (armed by [Config.crash]; every helper below is inert   *)
(* when the field is unset, so default runs take the pre-crash path)    *)
(* ------------------------------------------------------------------ *)

exception Crash_unavailable of string
(* A live requester could not assemble a majority quorum for a lock
   failover: the run cannot make progress without risking a split brain. *)

(* A fiber's death is permanent from its first scheduled Stop event:
   recovery (crash-recovery faults) revives only the *protocol node* —
   network reachability, quorum voting, replica hosting — with amnesia.
   [Crash.is_down] (which honours Recover events) therefore governs the
   fabric and the vote count, while [fiber_dead_at] governs execution. *)
let fiber_dead_at (t : t) p ~at =
  match t.crash with
  | None -> false
  | Some cr -> (
      match Crash.first_stop cr.cr_plan ~proc:p with Some ts -> ts <= at | None -> false)

let proto_down (t : t) p ~at =
  match t.crash with
  | None -> false
  | Some cr -> Crash.is_down cr.cr_plan ~proc:p ~at

(* Crashes take effect at synchronization points: every protocol
   operation calls this right after its scheduling yield, and again when
   a blocked fiber resumes (a grant can reach a processor that died while
   parked).  The typed [Engine.Killed] unwinds the fiber; the engine's
   kill observer (wired in [run_each]) then runs the protocol fallout. *)
let crash_check c =
  match c.machine.crash with
  | None -> ()
  | Some cr -> (
      match Crash.first_stop cr.cr_plan ~proc:c.cid with
      | Some ts when ts <= now_ns c ->
          raise
            (Engine.Killed (Printf.sprintf "crash-stop of p%d (scheduled at %d ns)" c.cid ts))
      | _ ->
          (* Application-level livelock guard: the recovery protocol
             keeps the DSM itself making progress, but a program can
             poll shared state only a crashed processor would have
             advanced (a task queue whose worker died mid-task never
             drains).  Such survivors burn virtual time forever; past
             the watchdog they are declared lost and crash-stopped so
             the run terminates and reports honestly. *)
          if now_ns c > cr.cr_watchdog_ns then
            raise
              (Engine.Killed
                 (Printf.sprintf
                    "crash watchdog: p%d still running at %d ns — survivors likely \
                     spinning on state a crashed processor can no longer advance"
                    c.cid (now_ns c))))

(* Lowest processor whose fiber is still scheduled to be alive at [at]:
   the deterministic choice for a replacement barrier manager or lock
   owner when no waiter is in line. *)
let lowest_live_fiber (t : t) ~at =
  let rec go p =
    if p >= t.cfg.nprocs then None
    else if fiber_dead_at t p ~at then go (p + 1)
    else Some p
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Write trapping                                                      *)
(* ------------------------------------------------------------------ *)

let lines_touched (region : Region.t) addr len =
  let first = (addr - Region.base region) / region.line_size in
  let last = (addr + max len 1 - 1 - Region.base region) / region.line_size in
  last - first + 1

let vm_trap c vm addr len =
  let cost = c.machine.cfg.cost in
  let region = region_of c addr in
  match region.Region.kind with
  | Region.Private -> ()
  | Region.Shared ->
      (* One protection check (and possibly one fault) per page touched;
         stores of <= 8 bytes touch one page because allocations are
         8-byte aligned. *)
      let psize = cost.page_size in
      let first = addr / psize and last = (addr + max len 1 - 1) / psize in
      for page = first to last do
        let page_addr = max addr (page * psize) in
        let ns =
          Vm_state.on_write vm ~space:c.machine.space ~proc:c.cid ~counters:c.counters ~cost
            ~addr:page_addr
        in
        if ns > 0 then begin
          c.counters.trap_time_ns <- c.counters.trap_time_ns + ns;
          Engine.charge c.proc ns
        end
      done

let trap c addr len =
  let cfg = c.machine.cfg in
  let cost = cfg.cost in
  (* On a mixed machine the store template is the *region's* — a write
     into a VM-elected region faults, one into an RT-elected region sets
     dirtybits, whatever the machine default says. *)
  let bst =
    if not c.machine.mixed then c.backend
    else state_for c (backend_of_region c.machine (region_index_of c.machine addr))
  in
  match bst with
  | B_none | B_twin _ -> ()
  | B_vmfine (vm, _) -> vm_trap c vm addr len
  | B_rt db -> begin
      let region = region_of c addr in
      match region.Region.kind with
      | Region.Private ->
          (* Misclassified write: the region's null template returns after
             six instructions. *)
          c.counters.dirtybits_misclassified <- c.counters.dirtybits_misclassified + 1;
          c.counters.trap_time_ns <- c.counters.trap_time_ns + cost.dirtybit_set_private_ns;
          Engine.charge c.proc cost.dirtybit_set_private_ns
      | Region.Shared ->
          let n = lines_touched region addr len in
          Dirtybits.note_write db ~region ~addr ~len;
          c.counters.dirtybits_set <- c.counters.dirtybits_set + n;
          let per_line =
            match cfg.rt_mode with
            | Config.Plain -> cost.dirtybit_set_ns
            | Config.Two_level -> cost.dirtybit_set_ns + cost.cycle_ns
            | Config.Update_queue -> 3 * cost.dirtybit_set_ns
          in
          let ns = n * per_line in
          c.counters.trap_time_ns <- c.counters.trap_time_ns + ns;
          Engine.charge c.proc ns
    end
  | B_vm vm -> vm_trap c vm addr len

(* ------------------------------------------------------------------ *)
(* Typed access                                                        *)
(* ------------------------------------------------------------------ *)

(* ECSan hook: a no-op match with the sanitizer off, so unsanitized runs
   take the exact pre-sanitizer code path. *)
let ecsan_access c addr len ~op ~access =
  match c.check with
  | None -> ()
  | Some ch ->
      let shared_region =
        match Space.find_region c.machine.space addr with
        | Some r -> r.Region.kind = Region.Shared
        | None -> false
      in
      Midway_check.Check.on_access ch ~proc:c.cid ~time:(now_ns c) ~addr ~len ~op ~access
        ~shared_region

let read_f64 c addr =
  let v = Space.get_f64 c.machine.space ~proc:c.cid addr in
  ecsan_access c addr 8 ~op:"read_f64" ~access:Midway_check.Check.Read;
  v

let read_int c addr =
  let v = Space.get_int c.machine.space ~proc:c.cid addr in
  ecsan_access c addr 8 ~op:"read_int" ~access:Midway_check.Check.Read;
  v

let read_i32 c addr =
  let v = Space.get_i32 c.machine.space ~proc:c.cid addr in
  ecsan_access c addr 4 ~op:"read_i32" ~access:Midway_check.Check.Read;
  v

let read_u8 c addr =
  let v = Space.get_u8 c.machine.space ~proc:c.cid addr in
  ecsan_access c addr 1 ~op:"read_u8" ~access:Midway_check.Check.Read;
  v

let read_bytes c addr ~len =
  let v = Space.read_bytes c.machine.space ~proc:c.cid addr ~len in
  ecsan_access c addr len ~op:"read_bytes" ~access:Midway_check.Check.Read;
  v

let write_f64 c addr v =
  trap c addr 8;
  Space.set_f64 c.machine.space ~proc:c.cid addr v;
  ecsan_access c addr 8 ~op:"write_f64" ~access:Midway_check.Check.Write

let write_int c addr v =
  trap c addr 8;
  Space.set_int c.machine.space ~proc:c.cid addr v;
  ecsan_access c addr 8 ~op:"write_int" ~access:Midway_check.Check.Write

let write_i32 c addr v =
  trap c addr 4;
  Space.set_i32 c.machine.space ~proc:c.cid addr v;
  ecsan_access c addr 4 ~op:"write_i32" ~access:Midway_check.Check.Write

let write_u8 c addr v =
  trap c addr 1;
  Space.set_u8 c.machine.space ~proc:c.cid addr v;
  ecsan_access c addr 1 ~op:"write_u8" ~access:Midway_check.Check.Write

let write_bytes c addr buf =
  trap c addr (Bytes.length buf);
  Space.write_bytes c.machine.space ~proc:c.cid addr buf;
  ecsan_access c addr (Bytes.length buf) ~op:"write_bytes" ~access:Midway_check.Check.Write

let write_f64_private c addr v =
  Space.set_f64 c.machine.space ~proc:c.cid addr v;
  ecsan_access c addr 8 ~op:"write_f64_private" ~access:Midway_check.Check.Private_write

let write_int_private c addr v =
  Space.set_int c.machine.space ~proc:c.cid addr v;
  ecsan_access c addr 8 ~op:"write_int_private" ~access:Midway_check.Check.Private_write

(* ------------------------------------------------------------------ *)
(* Write collection: RT                                                *)
(* ------------------------------------------------------------------ *)

let scan_cost (cfg : Config.t) (counts : Dirtybits.scan_counts) =
  let cost = cfg.cost in
  (counts.clean_reads * cost.dirtybit_read_clean_ns)
  + (counts.dirty_reads * cost.dirtybit_read_dirty_ns)
  + (counts.group_checks * cost.dirtybit_read_clean_ns)
  + (counts.queue_entries * cost.dirtybit_read_dirty_ns)

(* Collect the update set a requester is missing, stamping this
   processor's fresh modifications.  [select] distinguishes lock
   transfers from barrier arrivals. *)
(* Snapshot a run's bytes out of the collector's memory: one blit. *)
let run_reader (c : ctx) ~addr ~len = Space.read_bytes c.machine.space ~proc:c.cid addr ~len

let rt_collect (c : ctx) db ~ranges ~select =
  let cfg = c.machine.cfg in
  c.lamport <- c.lamport + 1;
  let stamp = Timestamp.make ~time:c.lamport ~proc:c.cid ~nprocs:cfg.nprocs in
  let g = c.gather in
  Gather.clear g;
  let emit ~addr ~len ~ts ~fresh:_ ~lines = Gather.push_run g ~addr ~len ~ts ~descs:lines in
  let counts = Dirtybits.scan db ~region_of:(region_of c) ~ranges ~stamp ~select ~emit in
  c.counters.clean_dirtybits_read <- c.counters.clean_dirtybits_read + counts.clean_reads;
  c.counters.dirty_dirtybits_read <- c.counters.dirty_dirtybits_read + counts.dirty_reads;
  c.counters.bound_bytes_scanned <-
    c.counters.bound_bytes_scanned + Range.total_bytes (Range.normalize ranges);
  c.counters.dirty_bytes_found <- c.counters.dirty_bytes_found + Gather.total_bytes g;
  (Gather.to_rt_lines g ~read:(run_reader c), scan_cost cfg counts, stamp)

(* Untargetted consistency: the whole allocated shared space is the
   collection target of every transfer. *)
let shared_ranges (t : t) =
  Midway_memory.Space.regions t.space
  |> List.filter_map (fun (r : Region.t) ->
         match r.Region.kind with
         | Region.Shared when r.Region.used > 0 -> Some (Range.v (Region.base r) r.Region.used)
         | Region.Shared | Region.Private -> None)

(* Update-queue trapping keeps no full scan, so third-party history comes
   from the lock's sparse history table. *)
let rt_collect_lock (c : ctx) db (l : Sync.lock) ~for_ =
  let cfg = c.machine.cfg in
  let targetted = not cfg.untargetted in
  let ranges = if targetted then l.Sync.ranges else shared_ranges c.machine in
  let last_seen =
    if targetted then l.Sync.rt_last_seen.(for_)
    else c.machine.ctxs.(for_).rt_global_seen
  in
  let lines, cost_ns, stamp = rt_collect c db ~ranges ~select:(Transfer last_seen) in
  match cfg.rt_mode with
  | Config.Plain | Config.Two_level -> (lines, cost_ns, stamp)
  | Config.Update_queue ->
      (* Record fresh lines, then add history lines the requester missed.
         Under the untargetted model the history spans the whole space,
         so it lives on the machine rather than per lock. *)
      let history =
        if targetted then l.Sync.rt_history else c.machine.rt_untargetted_history
      in
      (* The history is per line; expand each coalesced run back into its
         constituent lines. *)
      List.iter
        (fun (ln : Payload.rt_line) ->
          let line_len = ln.len / ln.descs in
          for i = 0 to ln.descs - 1 do
            Hashtbl.replace history (ln.addr + (i * line_len)) ln.ts
          done)
        lines;
      let extra = ref [] in
      let extra_count = ref 0 in
      Hashtbl.iter
        (fun addr ts ->
          incr extra_count;
          if ts > last_seen && ts <> stamp then begin
            let region = region_of c addr in
            let len = region.Region.line_size in
            if Range.clip (Range.v addr len) ~within:ranges <> [] then
              extra :=
                {
                  Payload.addr;
                  len;
                  ts;
                  data = Space.read_bytes c.machine.space ~proc:c.cid addr ~len;
                  descs = 1;
                }
                :: !extra
          end)
        history;
      c.counters.clean_dirtybits_read <- c.counters.clean_dirtybits_read + !extra_count;
      let cost_ns = cost_ns + (!extra_count * cfg.cost.dirtybit_read_clean_ns) in
      (lines @ List.rev !extra, cost_ns, stamp)

let rt_apply (c : ctx) db (lines : Payload.rt_line list) =
  let cfg = c.machine.cfg in
  let cost = cfg.cost in
  (* With the reliable channel armed, protocol retries can replay a
     logical update: a line whose installed stamp already reaches the
     incoming one is stale and skipped.  The test never runs on a
     fault-free fabric, keeping those runs bit-identical to the seed. *)
  let guard_stale = c.machine.reliable <> None in
  let track_history = cfg.untargetted && cfg.rt_mode = Config.Update_queue in
  let note_history addr ts =
    match Hashtbl.find_opt c.machine.rt_untargetted_history addr with
    | Some old when old >= ts -> ()
    | _ -> Hashtbl.replace c.machine.rt_untargetted_history addr ts
  in
  let apply_ns = ref 0 in
  List.iter
    (fun (ln : Payload.rt_line) ->
      let region = region_of c ln.addr in
      let line_len = ln.len / ln.descs in
      (* Costs are charged per line: copy_cost_ns floors an integer
         division, so charging the run as one block would drift from the
         per-line total. *)
      let per_line_ns =
        cost.dirtybit_update_ns + cfg.apply_line_ns
        + Cost_model.copy_cost_ns cost ~bytes:line_len ~warm:true
      in
      if not guard_stale then begin
        (* Fast path: install the whole run with one blit and one
           timestamp sweep. *)
        Space.write_bytes c.machine.space ~proc:c.cid ln.addr ln.data;
        Dirtybits.set_ts_run db ~region ~addr:ln.addr ~lines:ln.descs ~ts:ln.ts;
        if track_history then
          for i = 0 to ln.descs - 1 do
            note_history (ln.addr + (i * line_len)) ln.ts
          done;
        c.counters.dirtybits_updated <- c.counters.dirtybits_updated + ln.descs;
        apply_ns := !apply_ns + (ln.descs * per_line_ns)
      end
      else
        (* Replays may have installed some of the run's lines already, so
           staleness is decided line by line. *)
        for i = 0 to ln.descs - 1 do
          let addr = ln.addr + (i * line_len) in
          let stale =
            let cur = Dirtybits.line_ts db ~region ~addr in
            Timestamp.is_stamp cur && cur >= ln.ts
          in
          if stale then
            c.counters.duplicates_suppressed <- c.counters.duplicates_suppressed + 1
          else begin
            Space.write_bytes c.machine.space ~proc:c.cid addr
              (Bytes.sub ln.data (i * line_len) line_len);
            Dirtybits.set_ts db ~region ~addr ~ts:ln.ts;
            if track_history then note_history addr ln.ts;
            c.counters.dirtybits_updated <- c.counters.dirtybits_updated + 1;
            apply_ns := !apply_ns + per_line_ns
          end
        done)
    lines;
  !apply_ns

(* ------------------------------------------------------------------ *)
(* Write collection: VM                                                *)
(* ------------------------------------------------------------------ *)

let vm_log_trim (cfg : Config.t) log =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | e :: rest -> e :: take (n - 1) rest
  in
  take cfg.update_log_window log

(* A rebinding in (seen, current) forces a *diff-free* full transfer:
   the paper's VM-DSM ships all bound data "without performing a diff"
   when the binding changed (section 4, quicksort).  This is decidable
   from the log alone, before any diffing. *)
let vm_rebound_since (l : Sync.lock) ~seen ~current =
  seen < current
  && List.exists (fun (inc, e) -> inc > seen && e = Sync.Full_marker) l.Sync.vm_log

let vm_debug_lid =
  match Sys.getenv_opt "MIDWAY_VM_DEBUG" with
  | Some s -> ( try Some (int_of_string s) with _ -> None)
  | None -> None

let vm_debug_pieces pieces =
  String.concat ","
    (List.map
       (fun (p : Payload.vm_piece) ->
         Printf.sprintf "%d+%d" p.Payload.addr (Bytes.length p.Payload.data))
       pieces)

let vm_debug_payload = function
  | Payload.Empty -> "empty"
  | Payload.Vm_full pieces -> Printf.sprintf "full[%s]" (vm_debug_pieces pieces)
  | Payload.Vm_updates us ->
      Printf.sprintf "updates[%s]"
        (String.concat " | "
           (List.map
              (fun (u : Payload.vm_update) ->
                Printf.sprintf "inc%d:%s" u.Payload.incarnation (vm_debug_pieces u.Payload.pieces))
              us))
  | _ -> "?"

let vm_collect_lock (c : ctx) vm (l : Sync.lock) ~for_ =
  let cfg = c.machine.cfg in
  let bound = Sync.lock_bound_bytes l in
  let this_inc = l.Sync.incarnation in
  let seen = l.Sync.vm_inc_seen.(for_) in
  c.counters.bound_bytes_scanned <- c.counters.bound_bytes_scanned + bound;
  if vm_rebound_since l ~seen ~current:this_inc then begin
    (* Diff-free full transfer after a rebinding: ship the releaser's
       current bound data as is.  Pages stay dirty and writable (no
       protection churn) and any saved diffs under the ranges are
       superseded.  The shipped words are absorbed into the twins: the
       full transfer makes them the protocol's current state, and leaving
       them differing from their twins would let a later collection
       (possibly of another lock sharing the page) resurrect them with
       data the protocol has since moved past. *)
    Vm_state.absorb vm ~space:c.machine.space ~proc:c.cid ~ranges:l.Sync.ranges;
    Vm_state.discard_pending vm ~ranges:l.Sync.ranges;
    l.Sync.vm_log <- vm_log_trim cfg ((this_inc, Sync.Full_marker) :: l.Sync.vm_log);
    l.Sync.incarnation <- this_inc + 1;
    c.counters.dirty_bytes_found <- c.counters.dirty_bytes_found + bound;
    let payload =
      Payload.Vm_full (Payload.read_pieces c.machine.space ~proc:c.cid l.Sync.ranges)
    in
    if vm_debug_lid = Some l.Sync.lid then
      Printf.eprintf "[vm] lock %d: p%d serves p%d REBOUND-FULL seen=%d inc=%d %s\n%!"
        l.Sync.lid c.cid for_ seen this_inc (vm_debug_payload payload);
    (payload, 0, this_inc)
  end
  else begin
    let pieces, diff_ns =
      Vm_state.collect vm ~space:c.machine.space ~proc:c.cid ~counters:c.counters
        ~cost:cfg.cost ~ranges:l.Sync.ranges
    in
    if vm_debug_lid = Some l.Sync.lid then
      Printf.eprintf "[vm] lock %d: p%d collect for p%d seen=%d inc=%d own-diff=[%s]\n%!"
        l.Sync.lid c.cid for_ seen this_inc (vm_debug_pieces pieces);
    l.Sync.vm_log <- vm_log_trim cfg ((this_inc, Sync.Pieces pieces) :: l.Sync.vm_log);
    l.Sync.incarnation <- this_inc + 1;
    c.counters.dirty_bytes_found <- c.counters.dirty_bytes_found + Payload.pieces_bytes pieces;
    let payload =
      if seen >= this_inc then Payload.Empty
      else begin
        let pieces_of = function Sync.Pieces p -> p | Sync.Full_marker -> [] in
        let taken = List.filter (fun (inc, _) -> inc > seen) l.Sync.vm_log in
        (* The log window may no longer reach back to the requester's
           cursor ("Midway's implementation of VM-DSM does not save all
           the updates"): then, or when the concatenated updates exceed
           the bound data, all of the bound data is sent instead. *)
        let covered = List.length taken = this_inc - seen in
        let updates =
          List.rev_map
            (fun (inc, e) -> { Payload.incarnation = inc; producer = -1; pieces = pieces_of e })
            taken
          (* rev_map of newest-first gives oldest-first, the application order *)
        in
        let bytes =
          List.fold_left (fun acc u -> acc + Payload.pieces_bytes u.Payload.pieces) 0 updates
        in
        if (not covered) || bytes > bound then
          Payload.Vm_full (Payload.read_pieces c.machine.space ~proc:c.cid l.Sync.ranges)
        else Payload.Vm_updates updates
      end
    in
    if vm_debug_lid = Some l.Sync.lid then
      Printf.eprintf "[vm] lock %d: p%d serves p%d seen=%d inc=%d -> %s\n%!" l.Sync.lid c.cid
        for_ seen this_inc (vm_debug_payload payload);
    (payload, diff_ns, this_inc)
  end

let vm_apply (c : ctx) vm payload =
  let cfg = c.machine.cfg in
  let apply pieces =
    Vm_state.apply_pieces vm ~space:c.machine.space ~proc:c.cid ~counters:c.counters
      ~cost:cfg.cost pieces
  in
  match payload with
  | Payload.Vm_updates updates ->
      List.fold_left (fun acc (u : Payload.vm_update) -> acc + apply u.Payload.pieces) 0 updates
  | Payload.Vm_full pieces -> apply pieces
  | Payload.Empty -> 0
  | Payload.Rt_lines _ | Payload.Blast_data _ ->
      invalid_arg "Runtime.vm_apply: wrong payload kind"

(* ------------------------------------------------------------------ *)
(* Blast                                                               *)
(* ------------------------------------------------------------------ *)

let blast_collect (c : ctx) (l : Sync.lock) =
  let bound = Sync.lock_bound_bytes l in
  c.counters.bound_bytes_scanned <- c.counters.bound_bytes_scanned + bound;
  c.counters.dirty_bytes_found <- c.counters.dirty_bytes_found + bound;
  Payload.Blast_data (Payload.read_pieces c.machine.space ~proc:c.cid l.Sync.ranges)

let blast_apply (c : ctx) pieces =
  let cfg = c.machine.cfg in
  Payload.write_pieces c.machine.space ~proc:c.cid pieces;
  Cost_model.copy_cost_ns cfg.cost ~bytes:(Payload.pieces_bytes pieces) ~warm:true

(* ------------------------------------------------------------------ *)
(* Twin backend (section 3.5): no trapping; diff all bound data        *)
(* ------------------------------------------------------------------ *)

let twin_collect_lock (c : ctx) tw (l : Sync.lock) ~for_ =
  let cfg = c.machine.cfg in
  let bound = Sync.lock_bound_bytes l in
  let this_inc = l.Sync.incarnation in
  let seen = l.Sync.vm_inc_seen.(for_) in
  c.counters.bound_bytes_scanned <- c.counters.bound_bytes_scanned + bound;
  if vm_rebound_since l ~seen ~current:this_inc then begin
    (* Diff-free full transfer after a rebinding; re-snapshot the twin so
       the next comparison starts from the shipped state. *)
    Twin_state.refresh tw ~space:c.machine.space ~proc:c.cid ~id:l.Sync.lid
      ~ranges:l.Sync.ranges;
    l.Sync.vm_log <- vm_log_trim cfg ((this_inc, Sync.Full_marker) :: l.Sync.vm_log);
    l.Sync.incarnation <- this_inc + 1;
    c.counters.dirty_bytes_found <- c.counters.dirty_bytes_found + bound;
    (Payload.Vm_full (Payload.read_pieces c.machine.space ~proc:c.cid l.Sync.ranges), 0, this_inc)
  end
  else begin
    let pieces, diff_ns =
      Twin_state.collect tw ~space:c.machine.space ~proc:c.cid ~counters:c.counters
        ~cost:cfg.cost ~id:l.Sync.lid ~ranges:l.Sync.ranges
    in
    l.Sync.vm_log <- vm_log_trim cfg ((this_inc, Sync.Pieces pieces) :: l.Sync.vm_log);
    l.Sync.incarnation <- this_inc + 1;
    c.counters.dirty_bytes_found <- c.counters.dirty_bytes_found + Payload.pieces_bytes pieces;
    let payload =
      if seen >= this_inc then Payload.Empty
      else begin
        let pieces_of = function Sync.Pieces p -> p | Sync.Full_marker -> [] in
        let taken = List.filter (fun (inc, _) -> inc > seen) l.Sync.vm_log in
        let covered = List.length taken = this_inc - seen in
        let updates =
          List.rev_map
            (fun (inc, e) -> { Payload.incarnation = inc; producer = -1; pieces = pieces_of e })
            taken
        in
        let bytes =
          List.fold_left (fun acc u -> acc + Payload.pieces_bytes u.Payload.pieces) 0 updates
        in
        if (not covered) || bytes > bound then
          Payload.Vm_full (Payload.read_pieces c.machine.space ~proc:c.cid l.Sync.ranges)
        else Payload.Vm_updates updates
      end
    in
    (payload, diff_ns, this_inc)
  end

let twin_apply (c : ctx) tw ~id ~ranges payload =
  let cfg = c.machine.cfg in
  let apply pieces =
    Twin_state.apply_pieces tw ~space:c.machine.space ~proc:c.cid ~counters:c.counters
      ~cost:cfg.cost ~id ~ranges pieces
  in
  match payload with
  | Payload.Vm_updates updates ->
      List.fold_left (fun acc (u : Payload.vm_update) -> acc + apply u.Payload.pieces) 0 updates
  | Payload.Vm_full pieces -> apply pieces
  | Payload.Empty -> 0
  | Payload.Rt_lines _ | Payload.Blast_data _ ->
      invalid_arg "Runtime.twin_apply: wrong payload kind"

(* ------------------------------------------------------------------ *)
(* Vm_fine (section 3.4's rejected variant): VM trapping, RT history   *)
(* ------------------------------------------------------------------ *)

(* Fold a page diff into the per-line timestamp table, then collect the
   requester's missing lines exactly as RT does.  The cost is the sum the
   paper predicts: diff + stamp installs + a full RT-style scan. *)
let vmfine_collect (c : ctx) vm db ~ranges ~last_seen =
  let cfg = c.machine.cfg in
  let pieces, diff_ns =
    Vm_state.collect vm ~space:c.machine.space ~proc:c.cid ~counters:c.counters ~cost:cfg.cost
      ~ranges
  in
  c.lamport <- c.lamport + 1;
  let stamp = Timestamp.make ~time:c.lamport ~proc:c.cid ~nprocs:cfg.nprocs in
  let stamp_ns = ref 0 in
  List.iter
    (fun (p : Payload.vm_piece) ->
      let region = region_of c p.Payload.addr in
      Range.iter_lines
        (Range.v p.Payload.addr (Bytes.length p.Payload.data))
        ~line_size:region.Region.line_size
        ~f:(fun ~addr ~len:_ ->
          Dirtybits.set_ts db ~region ~addr ~ts:stamp;
          c.counters.dirtybits_updated <- c.counters.dirtybits_updated + 1;
          stamp_ns := !stamp_ns + cfg.cost.dirtybit_update_ns))
    pieces;
  let g = c.gather in
  Gather.clear g;
  let emit ~addr ~len ~ts ~fresh:_ ~lines = Gather.push_run g ~addr ~len ~ts ~descs:lines in
  let counts =
    Dirtybits.scan db ~region_of:(region_of c) ~ranges ~stamp
      ~select:(Dirtybits.Transfer last_seen) ~emit
  in
  c.counters.clean_dirtybits_read <- c.counters.clean_dirtybits_read + counts.clean_reads;
  c.counters.dirty_dirtybits_read <- c.counters.dirty_dirtybits_read + counts.dirty_reads;
  c.counters.bound_bytes_scanned <-
    c.counters.bound_bytes_scanned + Range.total_bytes (Range.normalize ranges);
  c.counters.dirty_bytes_found <- c.counters.dirty_bytes_found + Gather.total_bytes g;
  (Gather.to_rt_lines g ~read:(run_reader c), diff_ns + !stamp_ns + scan_cost cfg counts, stamp)

(* Barrier arrival: the fresh modifications are exactly the diffed
   pieces, so no scan is needed — stamp them and ship their lines. *)
let vmfine_barrier_collect (c : ctx) vm db ~ranges =
  let cfg = c.machine.cfg in
  let pieces, diff_ns =
    Vm_state.collect vm ~space:c.machine.space ~proc:c.cid ~counters:c.counters ~cost:cfg.cost
      ~ranges
  in
  c.lamport <- c.lamport + 1;
  let stamp = Timestamp.make ~time:c.lamport ~proc:c.cid ~nprocs:cfg.nprocs in
  let seen = Hashtbl.create 16 in
  let g = c.gather in
  Gather.clear g;
  let extra_ns = ref 0 in
  let last_region = ref (-1) in
  List.iter
    (fun (p : Payload.vm_piece) ->
      let region = region_of c p.Payload.addr in
      if region.Region.index <> !last_region then begin
        (* Runs never span regions (line sizes may differ across them). *)
        Gather.seal g;
        last_region := region.Region.index
      end;
      Range.iter_lines
        (Range.v p.Payload.addr (Bytes.length p.Payload.data))
        ~line_size:region.Region.line_size
        ~f:(fun ~addr ~len ->
          if not (Hashtbl.mem seen addr) then begin
            Hashtbl.replace seen addr ();
            Dirtybits.set_ts db ~region ~addr ~ts:stamp;
            c.counters.dirtybits_updated <- c.counters.dirtybits_updated + 1;
            extra_ns := !extra_ns + cfg.cost.dirtybit_update_ns;
            Gather.push_line g ~addr ~len ~ts:stamp
          end))
    pieces;
  c.counters.bound_bytes_scanned <-
    c.counters.bound_bytes_scanned + Range.total_bytes (Range.normalize ranges);
  c.counters.dirty_bytes_found <- c.counters.dirty_bytes_found + Gather.total_bytes g;
  (Gather.to_rt_lines g ~read:(run_reader c), diff_ns + !extra_ns, stamp)

let vmfine_apply (c : ctx) vm db (lines : Payload.rt_line list) =
  let cfg = c.machine.cfg in
  (* the data lands in memory and in any twin of a dirty page, then the
     timestamps install as at an RT requester.  Runs are split back into
     per-line pieces: the copy cost model floors an integer division per
     piece, so applying a run as one block would drift from the per-line
     total. *)
  let pieces =
    List.concat_map
      (fun (ln : Payload.rt_line) ->
        if ln.Payload.descs = 1 then [ { Payload.addr = ln.addr; data = ln.data } ]
        else begin
          let line_len = ln.len / ln.descs in
          List.init ln.descs (fun i ->
              {
                Payload.addr = ln.addr + (i * line_len);
                data = Bytes.sub ln.data (i * line_len) line_len;
              })
        end)
      lines
  in
  let copy_ns =
    Vm_state.apply_pieces vm ~space:c.machine.space ~proc:c.cid ~counters:c.counters
      ~cost:cfg.cost pieces
  in
  List.fold_left
    (fun acc (ln : Payload.rt_line) ->
      let region = region_of c ln.Payload.addr in
      Dirtybits.set_ts_run db ~region ~addr:ln.Payload.addr ~lines:ln.Payload.descs
        ~ts:ln.Payload.ts;
      c.counters.dirtybits_updated <- c.counters.dirtybits_updated + ln.Payload.descs;
      acc + (ln.Payload.descs * (cfg.cost.dirtybit_update_ns + cfg.apply_line_ns)))
    copy_ns lines

(* ------------------------------------------------------------------ *)
(* Lock protocol                                                       *)
(* ------------------------------------------------------------------ *)

let wire_overhead (cfg : Config.t) payload =
  Payload.descriptors payload * cfg.line_descriptor_bytes

(* Route one protocol message.  With faults off this is the bare fabric —
   the exact pre-fault code path, so such runs stay bit-identical to the
   seed.  With faults armed the message goes through the reliable
   channel, and the channel's per-message activity is attributed to the
   sender's counters (retransmissions, observed drops, backoff) and the
   destination's (suppressed duplicates).  Either way the result is the
   virtual time the payload lands at [dst]. *)
let send_msg ?(overhead_bytes = 0) (t : t) ~kind ~src ~dst ~payload_bytes ~at =
  match t.reliable with
  | None ->
      Net.delivery (Net.send ~overhead_bytes t.net ~kind ~src ~dst ~payload_bytes ~at)
  | Some ch ->
      let d = Reliable.send ~overhead_bytes ch ~kind ~src ~dst ~payload_bytes ~at in
      let sc = t.ctxs.(src).counters and dc = t.ctxs.(dst).counters in
      sc.retransmits <- sc.retransmits + d.Reliable.retransmits;
      sc.drops_observed <- sc.drops_observed + d.Reliable.drops_seen;
      sc.backoff_time_ns <- sc.backoff_time_ns + d.Reliable.backoff_ns;
      dc.duplicates_suppressed <- dc.duplicates_suppressed + d.Reliable.dups_suppressed;
      d.Reliable.delivered_at

(* ------------------------------------------------------------------ *)
(* Crash recovery: replication at release, quorum failover              *)
(* ------------------------------------------------------------------ *)

(* Install a replica snapshot of [l]'s bound data at [nc], making it look
   like a freshly received full transfer.  For the timestamp backends the
   covered lines are stamped newer than anything any processor has seen:
   a replica is authoritative regardless of local stamps (it bypasses
   [rt_apply]'s staleness guard on purpose), and the fresh stamp makes
   the new owner's subsequent collections ship the recovered data to
   every requester whose cursor was reset by the epoch bump. *)
let install_replica (nc : ctx) (l : Sync.lock) (pieces : Payload.vm_piece list) =
  let t = nc.machine in
  let cost = t.cfg.cost in
  let bytes = Payload.pieces_bytes pieces in
  match state_for nc (elected_backend t l.Sync.ranges) with
  | B_rt db | B_vmfine (_, db) ->
      let time = 1 + Array.fold_left (fun acc (c : ctx) -> max acc c.lamport) 0 t.ctxs in
      nc.lamport <- time;
      let stamp = Timestamp.make ~time ~proc:nc.cid ~nprocs:t.cfg.nprocs in
      Payload.write_pieces t.space ~proc:nc.cid pieces;
      let lines = ref 0 in
      List.iter
        (fun (range : Range.t) ->
          if not (Range.is_empty range) then
            let region = region_of nc range.Range.addr in
            Range.iter_lines range ~line_size:region.Region.line_size ~f:(fun ~addr ~len:_ ->
                incr lines;
                Dirtybits.set_ts db ~region ~addr ~ts:stamp))
        l.Sync.ranges;
      nc.counters.dirtybits_updated <- nc.counters.dirtybits_updated + !lines;
      l.Sync.rt_stamp <- stamp;
      l.Sync.rt_last_seen.(nc.cid) <- stamp;
      (!lines * (cost.dirtybit_update_ns + t.cfg.apply_line_ns))
      + Cost_model.copy_cost_ns cost ~bytes ~warm:false
  | B_vm vm -> vm_apply nc vm (Payload.Vm_full pieces)
  | B_twin tw -> twin_apply nc tw ~id:l.Sync.lid ~ranges:l.Sync.ranges (Payload.Vm_full pieces)
  | B_none -> blast_apply nc pieces

(* Ship a snapshot of the lock's bound data to [cr_replicas] backups when
   an exclusive holder releases.  The snapshot itself lives with the lock
   record (the simulator's stand-in for the backups' replica stores); the
   Replicate messages account for the wire traffic.  Replication is
   fire-and-forget — the releaser's clock does not wait for the acks. *)
let replicate_at_release (c : ctx) (l : Sync.lock) =
  let t = c.machine in
  match t.crash with
  | None -> ()
  | Some cr when cr.cr_broken -> ()  (* demo bug: no replicas, stale failover *)
  | Some cr ->
      let at = now_ns c in
      let snapshot = Payload.read_pieces t.space ~proc:c.cid l.Sync.ranges in
      let bytes = Payload.pieces_bytes snapshot in
      let backups = ref [] in
      let n = t.cfg.nprocs in
      let candidate = ref ((c.cid + 1) mod n) in
      while List.length !backups < cr.cr_replicas && !candidate <> c.cid do
        if not (proto_down t !candidate ~at) then backups := !candidate :: !backups;
        candidate := (!candidate + 1) mod n
      done;
      let backups = List.rev !backups in
      List.iter
        (fun b ->
          c.counters.messages <- c.counters.messages + 1;
          match send_msg t ~kind:Net.Replicate ~src:c.cid ~dst:b ~payload_bytes:bytes ~at with
          | (_ : int) -> ()
          | exception (Reliable.Suspected _ | Reliable.Exhausted _) -> ())
        backups;
      l.Sync.backups <- backups;
      l.Sync.replica <- Some (l.Sync.incarnation, snapshot);
      c.counters.replications <- c.counters.replications + List.length backups;
      match t.obsv with
      | None -> ()
      | Some o -> Metrics.incr (Obs.metrics o) ~name:"replications" ~label:(Printf.sprintf "p%d" c.cid) 1

(* Quorum ownership transfer away from a suspected-dead owner.  The
   initiator polls every reachable processor (Vote / Vote_reply round
   trips); with a majority of the full membership — counting itself — it
   installs the replicated bound data, applies the epoch rules (cursor
   reset plus incarnation bump, so every stale grant and binding is
   discarded and refetched), and takes ownership.  Returns the virtual
   time the transfer completed, or [None] when no quorum was reachable. *)
let crash_failover (t : t) (l : Sync.lock) ~new_owner ~suspect ~at =
  let cr = match t.crash with Some cr -> cr | None -> invalid_arg "crash_failover: crash off" in
  let n = t.cfg.nprocs in
  let nc = t.ctxs.(new_owner) in
  let votes = ref 1 (* the initiator's own ballot *) and t_votes = ref at in
  for v = 0 to n - 1 do
    if v <> new_owner && v <> suspect && not (proto_down t v ~at) then begin
      nc.counters.messages <- nc.counters.messages + 1;
      match
        let a = send_msg t ~kind:Net.Vote ~src:new_owner ~dst:v ~payload_bytes:8 ~at in
        send_msg t ~kind:Net.Vote_reply ~src:v ~dst:new_owner ~payload_bytes:8 ~at:a
      with
      | reply -> incr votes; t_votes := max !t_votes reply
      | exception (Reliable.Suspected _ | Reliable.Exhausted _) -> ()
    end
  done;
  let quorum = (n / 2) + 1 in
  if !votes < quorum then begin
    (match t.obsv with
    | None -> ()
    | Some o ->
        Metrics.incr (Obs.metrics o) ~name:"failover_no_quorum"
          ~label:(Printf.sprintf "lock%d" l.Sync.lid) 1);
    None
  end
  else begin
    let t_done = ref !t_votes in
    if not cr.cr_broken then begin
      (* Epoch rules first: every processor's cursor resets, so the next
         transfer from the new owner ships current bindings in full. *)
      Array.fill l.Sync.rt_last_seen 0 n Timestamp.never_seen;
      Hashtbl.reset l.Sync.rt_history;
      l.Sync.incarnation <- l.Sync.incarnation + 1;
      l.Sync.vm_log <- [ (l.Sync.incarnation - 1, Sync.Full_marker) ];
      match l.Sync.replica with
      | Some (_epoch, snapshot) ->
          (* Fetch from a live backup (free when the new owner is one). *)
          let host =
            if List.mem new_owner l.Sync.backups then None
            else List.find_opt (fun b -> not (proto_down t b ~at:!t_votes)) l.Sync.backups
          in
          let bytes = Payload.pieces_bytes snapshot in
          (match host with
          | Some h -> (
              t.ctxs.(h).counters.messages <- t.ctxs.(h).counters.messages + 1;
              t.ctxs.(h).counters.data_sent_bytes <- t.ctxs.(h).counters.data_sent_bytes + bytes;
              match
                send_msg t ~kind:Net.Replicate ~src:h ~dst:new_owner ~payload_bytes:bytes
                  ~at:!t_votes
              with
              | deliver -> t_done := deliver
              | exception (Reliable.Suspected _ | Reliable.Exhausted _) -> ())
          | None -> ());
          nc.counters.data_received_bytes <- nc.counters.data_received_bytes + bytes;
          t_done := !t_done + install_replica nc l snapshot;
          (match state_for nc (elected_backend t l.Sync.ranges) with
          | B_vm _ | B_twin _ -> l.Sync.vm_inc_seen.(new_owner) <- l.Sync.incarnation
          | _ -> ())
      | None ->
          (* The owner died without ever releasing: nothing was committed,
             so the new owner's own copy — untouched since the bind — is
             the correct state to serve from. *)
          ()
    end;
    l.Sync.owner <- new_owner;
    l.Sync.held_by <- None;
    l.Sync.readers <- List.filter (fun r -> not (fiber_dead_at t r ~at:!t_done)) l.Sync.readers;
    l.Sync.free_at <- max l.Sync.free_at !t_done;
    l.Sync.failovers <- l.Sync.failovers + 1;
    nc.counters.failovers <- nc.counters.failovers + 1;
    Trace.record t.trace
      (Trace.Lock_failover
         {
           t = !t_done;
           lock = l.Sync.lid;
           from_ = suspect;
           to_ = new_owner;
           epoch = l.Sync.incarnation;
           votes = !votes;
         });
    (match t.obsv with
    | None -> ()
    | Some o ->
        Obs.span o Obs.Failover ~proc:new_owner ~sync:l.Sync.lid
          ~note:(Printf.sprintf "p%d suspected, %d vote(s)" suspect !votes)
          ~t0:at ~t1:(max at !t_done) ();
        Metrics.incr (Obs.metrics o) ~name:"failovers" ~label:(lock_label new_owner l.Sync.lid) 1);
    Some !t_done
  end

(* ------------------------------------------------------------------ *)
(* Switching a region's backend                                        *)
(* ------------------------------------------------------------------ *)

let region_span t idx = Range.v (idx * t.cfg.region_size) t.cfg.region_size

let binding_intersects ranges span =
  List.exists (fun (r : Range.t) -> (not (Range.is_empty r)) && Range.overlaps r span) ranges

(* A switch is safe when no binding rooted in the region is mid-
   transfer: no lock held or read-held, no barrier with parked arrivals
   (their mailboxed payloads were collected under the old backend).
   Pending lock requests are fine — they are served after the switch,
   and the epoch bump below makes that service a full transfer. *)
let safe_to_switch t idx =
  let span = region_span t idx in
  List.for_all
    (fun (l : Sync.lock) ->
      (not (binding_intersects l.Sync.ranges span))
      || (l.Sync.held_by = None && l.Sync.readers = []))
    t.locks
  && List.for_all
       (fun (b : Sync.barrier) ->
         (not (binding_intersects b.Sync.branges span)) || b.Sync.arrived = [])
       t.barriers

(* Re-elect a region's detection backend.  Correctness rests on the
   rebinding rules: every binding overlapping the region is epoch-bumped
   (RT cursors to never-seen, VM incarnation bump with a full marker),
   so the next transfer of each ships the bound data in full from its
   owner — which makes it safe to wipe the region's slice of every
   per-processor detection state, old and new alike.  The modeled cost
   of a switch is exactly those forced full transfers. *)
let switch_region_backend t ~region_index ~to_ ~at =
  if not (electable to_) then
    invalid_arg "Runtime.switch_region_backend: vm-fine and standalone are machine-wide";
  if not (electable t.cfg.backend) then
    invalid_arg "Runtime.switch_region_backend: the machine backend is not per-region electable";
  if t.cfg.untargetted then
    invalid_arg "Runtime.switch_region_backend: untargetted bindings are machine-wide";
  ensure_region_slot t region_index;
  let from_ = backend_of_region t region_index in
  if from_ <> to_ then begin
    t.region_backend.(region_index) <- Some to_;
    if to_ <> t.cfg.backend then t.mixed <- true;
    t.switches <- t.switches + 1;
    let span = region_span t region_index in
    List.iter
      (fun (l : Sync.lock) ->
        if binding_intersects l.Sync.ranges span then begin
          Sync.rebind_lock l ~nprocs:t.cfg.nprocs ~ranges:l.Sync.ranges;
          l.Sync.switch_inc <- l.Sync.incarnation
        end)
      t.locks;
    (match Space.find_region t.space span.Range.addr with
    | None -> ()  (* nothing allocated there yet: no state to wipe *)
    | Some region ->
        Array.iter
          (fun c ->
            (match c.backend with
            | B_rt db | B_vmfine (_, db) -> Dirtybits.reset_region db region
            | _ -> ());
            (match c.alt_rt with Some db -> Dirtybits.reset_region db region | None -> ());
            (match c.backend with
            | B_vm vm | B_vmfine (vm, _) -> Vm_state.forget vm ~ranges:[ span ]
            | _ -> ());
            (match c.alt_vm with Some vm -> Vm_state.forget vm ~ranges:[ span ] | None -> ()))
          t.ctxs);
    Trace.record t.trace
      (Trace.Backend_switched
         {
           t = at;
           region = region_index;
           from_ = Config.backend_name from_;
           to_ = Config.backend_name to_;
         });
    match t.obsv with
    | None -> ()
    | Some o ->
        Metrics.incr (Obs.metrics o) ~name:"backend_switches"
          ~label:(Printf.sprintf "region%d" region_index) 1
  end

(* Payload shape as the policy sees it: distinct pages and contiguous
   runs covered by the shipped data (pieces arrive in ascending address
   order from both the gather buffer and the diff engine). *)
let payload_page_stats t payload =
  let psize = t.cfg.cost.Cost_model.page_size in
  let pages = ref 0 and runs = ref 0 and last = ref (-1) in
  let note addr len =
    if len > 0 then begin
      incr runs;
      let first = addr / psize and last_page = (addr + len - 1) / psize in
      let first = if first = !last then first + 1 else first in
      if last_page >= first then pages := !pages + (last_page - first + 1);
      if last_page > !last then last := last_page
    end
  in
  let note_piece (p : Payload.vm_piece) = note p.Payload.addr (Bytes.length p.Payload.data) in
  (match payload with
  | Payload.Rt_lines lines ->
      List.iter (fun (ln : Payload.rt_line) -> note ln.Payload.addr ln.Payload.len) lines
  | Payload.Vm_full pieces | Payload.Blast_data pieces -> List.iter note_piece pieces
  | Payload.Vm_updates updates ->
      List.iter (fun (u : Payload.vm_update) -> List.iter note_piece u.Payload.pieces) updates
  | Payload.Empty -> ());
  (!pages, !runs)

let first_bound_region t ranges =
  match List.find_opt (fun (r : Range.t) -> not (Range.is_empty r)) ranges with
  | Some r -> Space.find_region t.space r.Range.addr
  | None -> None

(* Adaptive decision point: ask the policy about each region the just-
   quiesced binding touches, and commit recommended switches that are
   safe right now.  A no-op without [Config.adaptive]. *)
let maybe_adapt t ranges ~at =
  match t.policy with
  | None -> ()
  | Some p ->
      let seen = ref [] in
      List.iter
        (fun (r : Range.t) ->
          if not (Range.is_empty r) then begin
            let idx = region_index_of t r.Range.addr in
            if not (List.mem idx !seen) then begin
              seen := idx :: !seen;
              match backend_of_region t idx with
              | (Config.Rt | Config.Vm) as current ->
                  if safe_to_switch t idx then (
                    let w = Policy.window p ~region:idx in
                    match Policy.decide p ~region:idx ~current with
                    | Some target ->
                        (if Sys.getenv_opt "MIDWAY_POLICY_DEBUG" <> None then
                           let collects, rt_ns, vm_ns = w in
                           Printf.eprintf
                             "[policy] region %d %s->%s collects=%d est_rt=%d est_vm=%d\n%!"
                             idx (Config.backend_name current) (Config.backend_name target)
                             collects rt_ns vm_ns);
                        switch_region_backend t ~region_index:idx ~to_:target ~at;
                        Policy.note_switch p ~region:idx
                    | None -> ())
              | _ -> ()
            end
          end)
        ranges

(* Serve one pending request: runs at the releaser side (conceptually on
   its runtime thread), computes the update payload, applies it at the
   requester and schedules the requester's resumption.  A shared-mode
   grant leaves ownership with the last writer and just registers the
   reader. *)
let rec serve t (l : Sync.lock) ~requester:q ~arrival ~mode ~waker =
  let releaser = l.Sync.owner in
  let rc = t.ctxs.(releaser) and qc = t.ctxs.(q) in
  let service_time = max arrival l.Sync.free_at in
  (* Side-effect-free counter reads, taken only to attribute this
     collection's page-diff output to the obs registry. *)
  let pages0 = if t.obsv = None then 0 else rc.counters.pages_diffed in
  let dirty0 = if t.obsv = None then 0 else rc.counters.dirty_bytes_found in
  (* The lock's elected backend decides both sides of the transfer; on a
     fixed machine this is the machine default and [state_for] hands
     back the per-processor state untouched. *)
  let lb = elected_backend t l.Sync.ranges in
  let rbst = state_for rc lb in
  (* Whether this transfer will be a rebinding-forced full, read off the
     cursors before the collection consumes them (policy input only). *)
  let policy_rebound =
    (* Only *application* rebinds count as rebinding-heavy behaviour:
       epoch bumps at or below the lock's [switch_inc] watermark were
       forced by a backend switch (and a first-ever transfer is merely
       cold), so without the watermark gate the policy's own switches —
       and program start — would read as diff-free-full traffic and bias
       it toward VM. *)
    t.policy <> None
    && l.Sync.incarnation > l.Sync.switch_inc
    &&
    match rbst with
    | B_vm _ | B_twin _ ->
        vm_rebound_since l ~seen:l.Sync.vm_inc_seen.(q) ~current:l.Sync.incarnation
    | _ -> l.Sync.rt_last_seen.(q) = Timestamp.never_seen
  in
  let payload, collect_ns, stamp_info =
    match rbst with
    | B_rt db ->
        let lines, ns, stamp = rt_collect_lock rc db l ~for_:q in
        ((if lines = [] then Payload.Empty else Payload.Rt_lines lines), ns, stamp)
    | B_vm vm ->
        let payload, ns, inc = vm_collect_lock rc vm l ~for_:q in
        (payload, ns, inc)
    | B_twin tw ->
        let payload, ns, inc = twin_collect_lock rc tw l ~for_:q in
        (payload, ns, inc)
    | B_vmfine (vm, db) ->
        let lines, ns, stamp =
          vmfine_collect rc vm db ~ranges:l.Sync.ranges ~last_seen:l.Sync.rt_last_seen.(q)
        in
        ((if lines = [] then Payload.Empty else Payload.Rt_lines lines), ns, stamp)
    | B_none -> (blast_collect rc l, 0, 0)
  in
  rc.counters.collect_time_ns <- rc.counters.collect_time_ns + collect_ns;
  bump_region_ns t l.Sync.ranges collect_ns;
  let app = Payload.app_bytes payload in
  (match t.policy with
  | None -> ()
  | Some p -> (
      match first_bound_region t l.Sync.ranges with
      | None -> ()
      | Some region ->
          let pages, runs = payload_page_stats t payload in
          Policy.note_collect p ~region:region.Region.index
            ~line_size:region.Region.line_size
            ~bound_bytes:(Sync.lock_bound_bytes l) ~payload_bytes:app ~payload_pages:pages
            ~payload_runs:runs ~rebound:policy_rebound));
  rc.counters.data_sent_bytes <- rc.counters.data_sent_bytes + app;
  rc.counters.messages <- rc.counters.messages + 1;
  (match t.obsv with
  | None -> ()
  | Some o ->
      let lid = l.Sync.lid in
      let lbl = lock_label releaser lid in
      let m = Obs.metrics o in
      Obs.span o Obs.Collect ~proc:releaser ~sync:lid ~bytes:app ~t0:service_time
        ~t1:(service_time + collect_ns) ();
      Obs.span o Obs.Diff ~proc:releaser ~sync:lid ~note:(diff_note rbst)
        ~t0:service_time ~t1:(service_time + collect_ns) ();
      Metrics.observe m ~name:"collect_ns" ~label:lbl collect_ns;
      Metrics.observe m ~name:"transfer_bytes" ~label:lbl ~buckets:Metrics.bytes_buckets app;
      let pages = rc.counters.pages_diffed - pages0 in
      if pages > 0 then
        Metrics.observe m ~name:"diff_bytes_per_page"
          ~label:(Printf.sprintf "p%d" releaser)
          ~buckets:Metrics.bytes_buckets
          ((rc.counters.dirty_bytes_found - dirty0) / pages));
  let finish deliver =
  (* Apply at the requester (it is blocked; its memory is quiescent). *)
  let apply_ns =
    match (state_for qc lb, payload) with
    | B_rt db, Payload.Rt_lines lines -> rt_apply qc db lines
    | B_rt _, Payload.Empty -> 0
    | B_vm vm, _ -> vm_apply qc vm payload
    | B_twin tw, _ -> twin_apply qc tw ~id:l.Sync.lid ~ranges:l.Sync.ranges payload
    | B_vmfine (vm, db), Payload.Rt_lines lines -> vmfine_apply qc vm db lines
    | B_vmfine _, Payload.Empty -> 0
    | B_none, Payload.Blast_data pieces -> blast_apply qc pieces
    | B_none, Payload.Empty -> 0
    | _ -> invalid_arg "Runtime.serve: payload/backend mismatch"
  in
  qc.counters.collect_time_ns <- qc.counters.collect_time_ns + apply_ns;
  bump_region_ns t l.Sync.ranges apply_ns;
  qc.counters.data_received_bytes <- qc.counters.data_received_bytes + app;
  (match t.obsv with
  | None -> ()
  | Some o ->
      Obs.span o Obs.Apply ~proc:q ~sync:l.Sync.lid ~bytes:app ~t0:deliver
        ~t1:(deliver + apply_ns) ();
      Metrics.observe (Obs.metrics o) ~name:"apply_ns" ~label:(lock_label q l.Sync.lid)
        apply_ns);
  (* Advance cursors. *)
  (match rbst with
  | B_rt _ | B_vmfine _ ->
      l.Sync.rt_stamp <- stamp_info;
      l.Sync.rt_last_seen.(q) <- stamp_info;
      l.Sync.rt_last_seen.(releaser) <- stamp_info;
      if t.cfg.untargetted then begin
        qc.rt_global_seen <- max qc.rt_global_seen stamp_info;
        rc.rt_global_seen <- max rc.rt_global_seen stamp_info
      end;
      qc.lamport <- max qc.lamport (Timestamp.time stamp_info ~nprocs:t.cfg.nprocs)
  | B_vm _ | B_twin _ ->
      l.Sync.vm_inc_seen.(q) <- stamp_info;
      l.Sync.vm_inc_seen.(releaser) <- stamp_info
  | B_none -> ());
  (match mode with
  | Sync.Exclusive ->
      l.Sync.owner <- q;
      l.Sync.held_by <- Some q
  | Sync.Shared -> l.Sync.readers <- q :: l.Sync.readers);
  l.Sync.acquires <- l.Sync.acquires + 1;
  Trace.record t.trace
    (Trace.Lock_granted
       {
         t = deliver + apply_ns;
         lock = l.Sync.lid;
         from_ = releaser;
         to_ = q;
         shared = (mode = Sync.Shared);
         payload_bytes = app;
       });
  waker ~at:(deliver + apply_ns)
  in
  match
    send_msg ~overhead_bytes:(wire_overhead t.cfg payload) t ~kind:Net.Lock_reply
      ~src:releaser ~dst:q ~payload_bytes:app ~at:(service_time + collect_ns)
  with
  | deliver -> finish deliver
  | exception Reliable.Suspected s ->
      (* The grant raced a crash at one end of the link. *)
      let give_up = service_time + collect_ns + s.Reliable.s_elapsed_ns in
      if fiber_dead_at t q ~at:give_up then
        (* Dead requester: wake it grant-less so it terminates through
           its post-block crash check. *)
        waker ~at:give_up
      else begin
        (* The releaser crashed mid-grant: the requester takes over by
           quorum, re-queues at the front and is served from its own
           (replica-installed) copy — a local self-send.  With no quorum
           reachable the request is parked un-granted; the run then
           surfaces as a deadlock whose diagnostics name the crashed
           processor (only a scripted majority-down plan can get here). *)
        match crash_failover t l ~new_owner:q ~suspect:releaser ~at:give_up with
        | Some _ ->
            l.Sync.pending <- (q, arrival, mode, waker) :: l.Sync.pending;
            service_queue t l
        | None -> ()
      end

(* Drain the request queue as far as the lock state allows: shared grants
   stack up; an exclusive grant needs the lock free of holders *and*
   readers, and stops the drain.  With crash faults armed, a requester
   whose fiber is scheduled to be dead by service time is not granted —
   it is woken empty-handed and terminates through its post-block crash
   check instead of deadlocking the queue behind it. *)
and service_queue t (l : Sync.lock) =
  if l.Sync.held_by = None then begin
    match l.Sync.pending with
    | [] -> ()
    | (q, arrival, _mode, waker) :: rest
      when fiber_dead_at t q ~at:(max arrival l.Sync.free_at) ->
        l.Sync.pending <- rest;
        waker ~at:(max arrival l.Sync.free_at);
        service_queue t l
    | (q, arrival, Sync.Shared, waker) :: rest ->
        l.Sync.pending <- rest;
        serve t l ~requester:q ~arrival ~mode:Sync.Shared ~waker;
        service_queue t l
    | (q, arrival, Sync.Exclusive, waker) :: rest ->
        if l.Sync.readers = [] then begin
          l.Sync.pending <- rest;
          serve t l ~requester:q ~arrival ~mode:Sync.Exclusive ~waker
        end
  end

let acquire_mode c l mode =
  let t = c.machine in
  Engine.yield c.proc;
  crash_check c;
  (match l.Sync.held_by with
  | Some holder when holder = c.cid ->
      failwith (Printf.sprintf "Runtime.acquire: lock %d is not reentrant" l.Sync.lid)
  | _ -> ());
  if List.mem c.cid l.Sync.readers then
    failwith (Printf.sprintf "Runtime.acquire: lock %d already held in shared mode" l.Sync.lid);
  let grantable_locally =
    l.Sync.held_by = None && l.Sync.owner = c.cid && l.Sync.pending = []
    && (mode = Sync.Shared || l.Sync.readers = [])
  in
  if grantable_locally then begin
    (* Local re-acquisition: no messages, no collection. *)
    c.counters.lock_acquires_local <- c.counters.lock_acquires_local + 1;
    Engine.charge c.proc t.cfg.local_lock_ns;
    (match mode with
    | Sync.Exclusive -> l.Sync.held_by <- Some c.cid
    | Sync.Shared -> l.Sync.readers <- c.cid :: l.Sync.readers);
    l.Sync.acquires <- l.Sync.acquires + 1;
    Trace.record t.trace (Trace.Lock_local { t = now_ns c; lock = l.Sync.lid; proc = c.cid })
  end
  else begin
    c.counters.lock_acquires_remote <- c.counters.lock_acquires_remote + 1;
    c.counters.messages <- c.counters.messages + 1;
    let req_at = now_ns c in
    Trace.record t.trace
      (Trace.Lock_requested
         { t = req_at; lock = l.Sync.lid; proc = c.cid; shared = (mode = Sync.Shared) });
    (* With crash faults armed the request can exhaust its retries
       against a dead owner: the suspicion surfaces as
       [Reliable.Suspected], this requester initiates a quorum failover
       (becoming the new owner), and the request is re-issued — now a
       self-send that lands in the queue it will itself serve. *)
    let rec request_owner () =
      let at = now_ns c in
      let dst = l.Sync.owner in
      match send_msg t ~kind:Net.Lock_request ~src:c.cid ~dst ~payload_bytes:0 ~at with
      | arrival -> arrival
      | exception Reliable.Suspected s ->
          Engine.charge c.proc s.Reliable.s_elapsed_ns;
          (* The suspicion may be about *this* processor: it crashed
             mid-episode and the retransmissions stopped.  Charging the
             episode advanced the clock past the stop time, so the
             check kills the fiber here instead of failing over. *)
          crash_check c;
          (match crash_failover t l ~new_owner:c.cid ~suspect:dst ~at:(now_ns c) with
          | Some t_done ->
              if t_done > now_ns c then Engine.charge c.proc (t_done - now_ns c)
          | None ->
              raise
                (Crash_unavailable
                   (Printf.sprintf
                      "lock %d: p%d suspects owner p%d but no majority quorum is reachable"
                      l.Sync.lid c.cid dst)));
          request_owner ()
    in
    let arrival = request_owner () in
    Engine.block c.proc
      ~reason:
        (Printf.sprintf "acquire of lock %d (%s mode)" l.Sync.lid
           (match mode with Sync.Exclusive -> "exclusive" | Sync.Shared -> "shared"))
      ~setup:(fun ~wake ->
        Sync.enqueue_request l ~proc:c.cid ~arrival ~mode ~waker:wake;
        service_queue t l);
    (match t.obsv with
    | None -> ()
    | Some o ->
        (* The wait spans from the request leaving this processor to the
           grant (update applied) waking it. *)
        let t1 = now_ns c in
        Obs.span o Obs.Acquire_wait ~proc:c.cid ~sync:l.Sync.lid ~t0:req_at ~t1 ();
        Metrics.observe (Obs.metrics o) ~name:"acquire_latency_ns"
          ~label:(lock_label c.cid l.Sync.lid)
          (t1 - req_at));
    (* The processor may have crash-stopped while parked: the wake (a
       grant, or the queue skipping a dead requester) is where it dies. *)
    crash_check c
  end;
  (* Either path: the lock is held by this processor once we get here. *)
  match c.check with
  | Some ch ->
      Midway_check.Check.on_acquire ch ~id:l.Sync.lid ~proc:c.cid
        ~exclusive:(mode = Sync.Exclusive)
  | None -> ()

let acquire c l = acquire_mode c l Sync.Exclusive

let acquire_read c l = acquire_mode c l Sync.Shared

let release c l =
  let t = c.machine in
  Engine.yield c.proc;
  crash_check c;
  Engine.charge c.proc t.cfg.release_ns;
  Trace.record t.trace (Trace.Lock_released { t = now_ns c; lock = l.Sync.lid; proc = c.cid });
  let ecsan_release () =
    match c.check with
    | Some ch -> Midway_check.Check.on_release ch ~id:l.Sync.lid ~proc:c.cid
    | None -> ()
  in
  match l.Sync.held_by with
  | Some holder when holder = c.cid ->
      ecsan_release ();
      (* The release commits this critical section: with crash faults
         armed, snapshot the bound data to the backup processors before
         anyone else can acquire.  A holder that crashes mid-section thus
         reverts to exactly this committed state at failover. *)
      replicate_at_release c l;
      l.Sync.held_by <- None;
      l.Sync.free_at <- now_ns c;
      (* A release with no outstanding holders is the adaptive safe
         point: pending requesters are served *after* any switch, which
         the epoch bump turns into full transfers. *)
      maybe_adapt t l.Sync.ranges ~at:(now_ns c);
      service_queue t l
  | _ ->
      if List.mem c.cid l.Sync.readers then begin
        ecsan_release ();
        l.Sync.readers <- List.filter (fun p -> p <> c.cid) l.Sync.readers;
        if l.Sync.readers = [] then begin
          l.Sync.free_at <- max l.Sync.free_at (now_ns c);
          service_queue t l
        end
      end
      else
        failwith (Printf.sprintf "Runtime.release: lock %d not held by p%d" l.Sync.lid c.cid)

let rebind c l ranges =
  Engine.yield c.proc;
  crash_check c;
  (match l.Sync.held_by with
  | Some holder when holder = c.cid -> ()
  | _ -> failwith (Printf.sprintf "Runtime.rebind: lock %d not held by p%d" l.Sync.lid c.cid));
  Engine.charge c.proc c.machine.cfg.release_ns;
  Sync.rebind_lock l ~nprocs:c.machine.cfg.nprocs ~ranges;
  (match c.check with
  | Some ch -> Midway_check.Check.on_rebind ch ~id:l.Sync.lid ~raw:(raw_pairs ranges)
  | None -> ());
  Trace.record c.machine.trace
    (Trace.Lock_rebound
       { t = now_ns c; lock = l.Sync.lid; proc = c.cid; bound_bytes = Sync.lock_bound_bytes l })

(* ------------------------------------------------------------------ *)
(* Barrier protocol                                                    *)
(* ------------------------------------------------------------------ *)

let barrier_collect (c : ctx) (b : Sync.barrier) =
  if c.machine.cfg.untargetted && b.Sync.branges <> [] then
    failwith "Runtime.barrier: the untargetted model supports lock-based data sharing only";
  (* Barriers elect like locks; a barrier spanning differently-elected
     regions degrades to Twin (Blast cannot carry barrier-bound data). *)
  match state_for c (elected_backend ~conflict:Config.Twin c.machine b.Sync.branges) with
  | B_rt db ->
      let lines, ns, stamp = rt_collect c db ~ranges:b.Sync.branges ~select:Dirtybits.Fresh_only in
      ((if lines = [] then Payload.Empty else Payload.Rt_lines lines), ns, stamp)
  | B_vm vm ->
      let cfg = c.machine.cfg in
      let pieces, ns =
        Vm_state.collect vm ~space:c.machine.space ~proc:c.cid ~counters:c.counters
          ~cost:cfg.cost ~ranges:b.Sync.branges
      in
      c.counters.bound_bytes_scanned <-
        c.counters.bound_bytes_scanned + Range.total_bytes b.Sync.branges;
      c.counters.dirty_bytes_found <-
        c.counters.dirty_bytes_found + Payload.pieces_bytes pieces;
      ((if pieces = [] then Payload.Empty else Payload.Vm_full pieces), ns, 0)
  | B_vmfine (vm, db) ->
      let lines, ns, stamp = vmfine_barrier_collect c vm db ~ranges:b.Sync.branges in
      ((if lines = [] then Payload.Empty else Payload.Rt_lines lines), ns, stamp)
  | B_twin tw ->
      let cfg = c.machine.cfg in
      let pieces, ns =
        Twin_state.collect tw ~space:c.machine.space ~proc:c.cid ~counters:c.counters
          ~cost:cfg.cost ~id:b.Sync.bid ~ranges:b.Sync.branges
      in
      c.counters.bound_bytes_scanned <-
        c.counters.bound_bytes_scanned + Range.total_bytes b.Sync.branges;
      c.counters.dirty_bytes_found <-
        c.counters.dirty_bytes_found + Payload.pieces_bytes pieces;
      ((if pieces = [] then Payload.Empty else Payload.Vm_full pieces), ns, 0)
  | B_none ->
      if b.Sync.branges <> [] then
        failwith "Runtime.barrier: the blast backend does not support barrier-bound data";
      (Payload.Empty, 0, 0)

(* With crash faults armed a barrier completes once every participant
   whose fiber can still arrive has arrived: crash-stopped processors
   that never reached the barrier are not waited for (their fibers are
   gone), while a crashed processor that *did* arrive keeps its
   contribution.  Without crash faults this is the exact all-arrived
   condition. *)
let barrier_ready (t : t) (b : Sync.barrier) =
  let n = List.length b.Sync.arrived in
  match t.crash with
  | None -> n = b.Sync.participants
  | Some cr ->
      let dead_missing = ref 0 in
      Array.iteri
        (fun p killed ->
          if
            killed
            && not (List.exists (fun a -> a.Sync.a_proc = p) b.Sync.arrived)
          then incr dead_missing)
        cr.cr_killed;
      n > 0 && n >= b.Sync.participants - !dead_missing

(* All participants have arrived: merge their modifications and send each
   processor what the others produced. *)
let barrier_release t (b : Sync.barrier) =
  let arrivals = List.sort (fun a b -> compare a.Sync.a_proc b.Sync.a_proc) b.Sync.arrived in
  let t_all = List.fold_left (fun acc a -> max acc a.Sync.a_deliver) 0 arrivals in
  let payload_for p =
    (* Everything the other participants produced, in processor order. *)
    let parts = List.filter (fun a -> a.Sync.a_proc <> p) arrivals in
    let rt_lines =
      List.concat_map
        (fun a -> match a.Sync.a_payload with Payload.Rt_lines ls -> ls | _ -> [])
        parts
    in
    let vm_pieces =
      List.concat_map
        (fun a -> match a.Sync.a_payload with Payload.Vm_full ps -> ps | _ -> [])
        parts
    in
    if rt_lines <> [] then Payload.Rt_lines rt_lines
    else if vm_pieces <> [] then Payload.Vm_full vm_pieces
    else Payload.Empty
  in
  let merge_lines =
    List.fold_left (fun acc a -> acc + Payload.descriptors a.Sync.a_payload) 0 arrivals
  in
  let t_release = t_all + (merge_lines * t.cfg.apply_line_ns) in
  let max_time =
    List.fold_left
      (fun acc a ->
        if Timestamp.is_stamp a.Sync.a_stamp && a.Sync.a_stamp > Timestamp.initial then
          max acc (Timestamp.time a.Sync.a_stamp ~nprocs:t.cfg.nprocs)
        else acc)
      0 arrivals
  in
  List.iter
    (fun a ->
      let p = a.Sync.a_proc in
      if fiber_dead_at t p ~at:t_release then
        (* The arrival's contribution was already merged, but the fiber
           is gone: wake it without a release grant so it terminates
           through its post-block crash check. *)
        a.Sync.a_waker ~at:t_release
      else begin
      let pc = t.ctxs.(p) in
      let payload = payload_for p in
      let app = Payload.app_bytes payload in
      if p <> b.Sync.manager then
        t.ctxs.(b.Sync.manager).counters.messages <-
          t.ctxs.(b.Sync.manager).counters.messages + 1;
      let deliver =
        match
          send_msg ~overhead_bytes:(wire_overhead t.cfg payload) t ~kind:Net.Barrier_release
            ~src:b.Sync.manager ~dst:p ~payload_bytes:app ~at:t_release
        with
        | d -> d
        | exception Reliable.Suspected s ->
            (* The broadcast raced a crash at one end of the link.  The
               merged modifications already sit in the arrival mailboxes,
               so a live participant proceeds after the detection delay;
               a dead one dies at its post-block crash check either way. *)
            t_release + s.Reliable.s_elapsed_ns
      in
      let apply_ns =
        match
          ( state_for pc (elected_backend ~conflict:Config.Twin t b.Sync.branges),
            payload )
        with
        | B_rt db, Payload.Rt_lines lines -> rt_apply pc db lines
        | B_vm vm, (Payload.Vm_full _ as pl) -> vm_apply pc vm pl
        | B_twin tw, (Payload.Vm_full _ as pl) ->
            twin_apply pc tw ~id:b.Sync.bid ~ranges:b.Sync.branges pl
        | B_vmfine (vm, db), Payload.Rt_lines lines -> vmfine_apply pc vm db lines
        | _, Payload.Empty -> 0
        | _ -> invalid_arg "Runtime.barrier_release: payload/backend mismatch"
      in
      pc.counters.collect_time_ns <- pc.counters.collect_time_ns + apply_ns;
      bump_region_ns t b.Sync.branges apply_ns;
      pc.counters.data_received_bytes <- pc.counters.data_received_bytes + app;
      (match t.obsv with
      | None -> ()
      | Some o ->
          Obs.span o Obs.Apply ~proc:p ~sync:b.Sync.bid ~bytes:app ~t0:deliver
            ~t1:(deliver + apply_ns) ();
          Metrics.observe (Obs.metrics o) ~name:"apply_ns"
            ~label:(barrier_label p b.Sync.bid) apply_ns);
      if max_time > 0 then pc.lamport <- max pc.lamport max_time;
      a.Sync.a_waker ~at:(deliver + apply_ns)
      end)
    arrivals;
  Trace.record t.trace
    (Trace.Barrier_completed { t = t_release; barrier = b.Sync.bid; episode = b.Sync.episode });
  b.Sync.episode <- b.Sync.episode + 1;
  b.Sync.crossings <- b.Sync.crossings + 1;
  b.Sync.arrived <- [];
  (* Barrier-bound regions adapt here: the episode is over, every
     mailbox is drained, and the next episode's collections run under
     whatever the switch installs. *)
  maybe_adapt t b.Sync.branges ~at:t_release;
  match t.checker with
  | Some ch -> Midway_check.Check.on_barrier_complete ch ~id:b.Sync.bid
  | None -> ()

let barrier c b =
  let t = c.machine in
  Engine.yield c.proc;
  crash_check c;
  c.counters.barrier_crossings <- c.counters.barrier_crossings + 1;
  if b.Sync.participants = 1 then begin
    (* Degenerate (uniprocessor) barrier: no consumers, so no collection
       takes place — the paper's uniprocessor VM run "never diffs or write
       protects a page, since the data is never transferred". *)
    b.Sync.episode <- b.Sync.episode + 1;
    b.Sync.crossings <- b.Sync.crossings + 1;
    match t.checker with
    | Some ch -> Midway_check.Check.on_barrier_complete ch ~id:b.Sync.bid
    | None -> ()
  end
  else begin
    let pages0 = if t.obsv = None then 0 else c.counters.pages_diffed in
    let dirty0 = if t.obsv = None then 0 else c.counters.dirty_bytes_found in
    let collect_t0 = now_ns c in
    let payload, collect_ns, stamp = barrier_collect c b in
    c.counters.collect_time_ns <- c.counters.collect_time_ns + collect_ns;
    bump_region_ns t b.Sync.branges collect_ns;
    Engine.charge c.proc collect_ns;
    let app = Payload.app_bytes payload in
    (match t.policy with
    | None -> ()
    | Some p -> (
        match first_bound_region t b.Sync.branges with
        | None -> ()
        | Some region ->
            let pages, runs = payload_page_stats t payload in
            Policy.note_collect p ~region:region.Region.index
              ~line_size:region.Region.line_size
              ~bound_bytes:(Range.total_bytes b.Sync.branges) ~payload_bytes:app
              ~payload_pages:pages ~payload_runs:runs ~rebound:false));
    c.counters.data_sent_bytes <- c.counters.data_sent_bytes + app;
    (match t.obsv with
    | None -> ()
    | Some o ->
        let bid = b.Sync.bid in
        let lbl = barrier_label c.cid bid in
        let m = Obs.metrics o in
        Obs.span o Obs.Collect ~proc:c.cid ~sync:bid ~bytes:app ~t0:collect_t0
          ~t1:(now_ns c) ();
        Obs.span o Obs.Diff ~proc:c.cid ~sync:bid
          ~note:(diff_note (state_for c (elected_backend ~conflict:Config.Twin t b.Sync.branges)))
          ~t0:collect_t0 ~t1:(now_ns c) ();
        Metrics.observe m ~name:"collect_ns" ~label:lbl collect_ns;
        Metrics.observe m ~name:"transfer_bytes" ~label:lbl ~buckets:Metrics.bytes_buckets app;
        let pages = c.counters.pages_diffed - pages0 in
        if pages > 0 then
          Metrics.observe m ~name:"diff_bytes_per_page"
            ~label:(Printf.sprintf "p%d" c.cid)
            ~buckets:Metrics.bytes_buckets
            ((c.counters.dirty_bytes_found - dirty0) / pages));
    if c.cid <> b.Sync.manager then c.counters.messages <- c.counters.messages + 1;
    (* With crash faults armed the arrival can exhaust its retries
       against a dead manager; the lowest live processor takes over the
       manager role (a pure mailbox — no barrier data lives there) and
       the arrival is re-sent. *)
    let rec send_arrival () =
      let dst = b.Sync.manager in
      match
        send_msg ~overhead_bytes:(wire_overhead t.cfg payload) t ~kind:Net.Barrier_arrive
          ~src:c.cid ~dst ~payload_bytes:app ~at:(now_ns c)
      with
      | deliver -> deliver
      | exception Reliable.Suspected s ->
          Engine.charge c.proc s.Reliable.s_elapsed_ns;
          (* A dead *sender* dies here rather than retrying forever. *)
          crash_check c;
          (match lowest_live_fiber t ~at:(now_ns c) with
          | Some m -> b.Sync.manager <- m
          | None -> ());
          send_arrival ()
    in
    let deliver = send_arrival () in
    Trace.record t.trace
      (Trace.Barrier_arrived
         { t = now_ns c; barrier = b.Sync.bid; proc = c.cid; payload_bytes = app });
    let wait0 = now_ns c in
    Engine.block c.proc
      ~reason:(Printf.sprintf "barrier %d (episode %d)" b.Sync.bid b.Sync.episode)
      ~setup:(fun ~wake ->
        b.Sync.arrived <-
          b.Sync.arrived
          @ [
              {
                Sync.a_proc = c.cid;
                a_deliver = deliver;
                a_waker = wake;
                a_payload = payload;
                a_stamp = stamp;
              };
            ];
        if barrier_ready t b then barrier_release t b);
    (match t.obsv with
    | None -> ()
    | Some o ->
        let t1 = now_ns c in
        Obs.span o Obs.Barrier_wait ~proc:c.cid ~sync:b.Sync.bid ~t0:wait0 ~t1 ();
        Metrics.observe (Obs.metrics o) ~name:"barrier_wait_ns"
          ~label:(barrier_label c.cid b.Sync.bid)
          (t1 - wait0));
    crash_check c
  end;
  (* Either path: this processor completed a crossing. *)
  match c.check with
  | Some ch -> Midway_check.Check.on_barrier_cross ch ~id:b.Sync.bid ~proc:c.cid
  | None -> ()

(* Protocol fallout of a fiber crash-stopping, run from the engine's kill
   observer (scheduler context: no engine effects, but wakes are fine).
   Held and managed state moves to live processors so waiters unblock
   with a grant instead of deadlocking: held locks fail over by quorum,
   barrier managership is reassigned, and barriers whose only missing
   participants are dead complete. *)
let crash_fallout t ~proc:p ~reason:_ ~at =
  match t.crash with
  | None -> ()
  | Some cr ->
      cr.cr_killed.(p) <- true;
      Trace.record t.trace (Trace.Proc_crashed { t = at; proc = p });
      (match t.obsv with
      | None -> ()
      | Some o ->
          Metrics.incr (Obs.metrics o) ~name:"crash_stops" ~label:(Printf.sprintf "p%d" p) 1);
      List.iter
        (fun (l : Sync.lock) ->
          if List.mem p l.Sync.readers then begin
            l.Sync.readers <- List.filter (fun r -> r <> p) l.Sync.readers;
            if l.Sync.readers = [] then l.Sync.free_at <- max l.Sync.free_at at
          end;
          let needs_failover =
            match l.Sync.held_by with
            | Some h -> h = p
            | None -> l.Sync.owner = p && l.Sync.pending <> []
          in
          (if needs_failover then
             (* Prefer the head live waiter (it becomes the owner the
                queue is then served from); otherwise the lowest live
                processor inherits the protocol state. *)
             let new_owner =
               match
                 List.find_opt (fun (q, _, _, _) -> not (fiber_dead_at t q ~at)) l.Sync.pending
               with
               | Some (q, _, _, _) -> Some q
               | None -> lowest_live_fiber t ~at
             in
             match new_owner with
             | Some q when q <> p -> ignore (crash_failover t l ~new_owner:q ~suspect:p ~at)
             | Some _ | None -> ());
          service_queue t l)
        t.locks;
      List.iter
        (fun (b : Sync.barrier) ->
          if b.Sync.manager = p then
            (match lowest_live_fiber t ~at with
            | Some m -> b.Sync.manager <- m
            | None -> ());
          if b.Sync.arrived <> [] && barrier_ready t b then barrier_release t b)
        t.barriers

(* ------------------------------------------------------------------ *)
(* Running                                                             *)
(* ------------------------------------------------------------------ *)

(* Enrich an engine deadlock with the synchronization state so the bug
   in the simulated program is visible at a glance. *)
let deadlock_diagnostics t =
  let lock_lines =
    List.filter_map
      (fun (l : Sync.lock) ->
        if l.Sync.held_by = None && l.Sync.readers = [] && l.Sync.pending = [] then None
        else
          Some
            (Printf.sprintf "  lock %d: %s%s%s" l.Sync.lid
               (match l.Sync.held_by with
               | Some p -> Printf.sprintf "held by p%d" p
               | None -> "free")
               (match l.Sync.readers with
               | [] -> ""
               | rs ->
                   ", readers "
                   ^ String.concat "," (List.map (fun p -> "p" ^ string_of_int p) rs))
               (match l.Sync.pending with
               | [] -> ""
               | ps ->
                   ", waiting "
                   ^ String.concat ","
                       (List.map (fun (p, _, _, _) -> "p" ^ string_of_int p) ps))))
      t.locks
  in
  let barrier_lines =
    List.filter_map
      (fun (b : Sync.barrier) ->
        match b.Sync.arrived with
        | [] -> None
        | arrived ->
            Some
              (Printf.sprintf "  barrier %d: %d/%d arrived (%s)" b.Sync.bid
                 (List.length arrived) b.Sync.participants
                 (String.concat ","
                    (List.map (fun a -> "p" ^ string_of_int a.Sync.a_proc) arrived))))
      t.barriers
  in
  let crash_lines =
    match t.crash with
    | None -> []
    | Some cr ->
        let dead = ref [] in
        Array.iteri (fun p k -> if k then dead := p :: !dead) cr.cr_killed;
        if !dead = [] then []
        else
          [
            Printf.sprintf "  crash-stopped: %s"
              (String.concat ","
                 (List.rev_map (fun p -> "p" ^ string_of_int p) !dead));
          ]
  in
  String.concat "\n" (lock_lines @ barrier_lines @ crash_lines)

let run_each t bodies =
  if t.ran then invalid_arg "Runtime.run: machine already ran";
  if Array.length bodies <> t.cfg.nprocs then
    invalid_arg "Runtime.run_each: need one body per processor";
  t.ran <- true;
  (* ECSan's static pass: lint the binding table as it stands at launch.
     (During the run bindings may legitimately overlap transiently while
     a worker splits and rebinds, so this runs exactly once, here.) *)
  (match t.checker with
  | Some ch ->
      Midway_check.Check.lint ch
        ~region_kind:(fun addr ->
          match Space.find_region t.space addr with
          | Some r -> if r.Region.kind = Region.Shared then `Shared else `Private
          | None -> `Unmapped)
  | None -> ());
  (match t.crash with
  | Some _ ->
      Engine.set_kill_observer t.engine
        (Some (fun ~proc ~reason ~at -> crash_fallout t ~proc ~reason ~at))
  | None -> ());
  Array.iteri (fun i body -> Engine.spawn t.engine i (fun _proc -> body t.ctxs.(i))) bodies;
  (try Engine.run t.engine
   with Engine.Deadlock msg ->
     let detail = deadlock_diagnostics t in
     raise
       (Engine.Deadlock (if detail = "" then msg else Printf.sprintf "%s\n%s" msg detail)));
  (* Epilogue: crash-recovery events that fell inside the run rejoined
     the protocol silently (liveness is a pure function of the plan);
     surface them in the trace and metrics for observability. *)
  match t.crash with
  | None -> ()
  | Some cr ->
      let horizon = Engine.elapsed t.engine in
      List.iter
        (fun (e : Crash.event) ->
          if e.Crash.action = Crash.Recover && e.Crash.at_ns <= horizon then begin
            Trace.record t.trace (Trace.Proc_recovered { t = e.Crash.at_ns; proc = e.Crash.proc });
            match t.obsv with
            | None -> ()
            | Some o ->
                Metrics.incr (Obs.metrics o) ~name:"crash_recoveries"
                  ~label:(Printf.sprintf "p%d" e.Crash.proc) 1
          end)
        (Crash.events cr.cr_plan)

let run t body = run_each t (Array.make t.cfg.nprocs body)

(* Post-run protocol invariant checking: structural properties that hold
   for every correct program over a correct protocol. *)
let check_invariants t =
  let problems = ref [] in
  let report fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  List.iter
    (fun (l : Sync.lock) ->
      (match l.Sync.held_by with
      | Some p -> report "lock %d still held by p%d at end of run" l.Sync.lid p
      | None -> ());
      if l.Sync.readers <> [] then
        report "lock %d still held by %d reader(s) at end of run" l.Sync.lid
          (List.length l.Sync.readers);
      if l.Sync.pending <> [] then
        report "lock %d has %d pending request(s) at end of run" l.Sync.lid
          (List.length l.Sync.pending);
      (* RT: only the owner may have unstamped (locally dirty) lines in
         the lock's bound ranges — a sentinel elsewhere means a processor
         wrote the data without holding the lock.  The gate is per lock:
         on a mixed machine each lock answers to its elected backend
         (switches reset the departed backend's region state, so the
         check stays sound across re-elections). *)
      if elected_backend t l.Sync.ranges = Config.Rt && not t.cfg.untargetted then
        let killed p =
          match t.crash with Some cr -> cr.cr_killed.(p) | None -> false
        in
        Array.iteri
          (fun p (ctx : ctx) ->
            (* A crash-stopped processor legitimately leaves its lost
               in-section writes locally dirty: they were never collected
               and the failover reverted everyone else to the replica. *)
            if p <> l.Sync.owner && not (killed p) then
              match (match ctx.backend with B_rt db -> Some db | _ -> ctx.alt_rt) with
              | Some db ->
                  List.iter
                    (fun (range : Range.t) ->
                      Range.iter_lines range ~line_size:(region_of ctx range.Range.addr).Region.line_size
                        ~f:(fun ~addr ~len:_ ->
                          if
                            Dirtybits.line_ts db ~region:(region_of ctx addr) ~addr
                            = Timestamp.locally_dirty
                          then
                            report
                              "lock %d: p%d has a locally dirty line at %#x without ownership"
                              l.Sync.lid p addr))
                    l.Sync.ranges
              | None -> ())
          t.ctxs)
    t.locks;
  List.iter
    (fun (b : Sync.barrier) ->
      if b.Sync.arrived <> [] then
        report "barrier %d has %d processor(s) parked at end of run" b.Sync.bid
          (List.length b.Sync.arrived))
    t.barriers;
  (* Reliable channel: every message must have been acked by end of run. *)
  (match t.reliable with
  | Some ch when Reliable.unacked ch > 0 ->
      report "reliable channel has %d unacked message(s) in flight at end of run"
        (Reliable.unacked ch)
  | Some _ | None -> ());
  (* VM: every dirty page must have a twin — in the machine-default
     state and in any alternate state a hybrid election created. *)
  Array.iter
    (fun (ctx : ctx) ->
      let vms =
        (match ctx.backend with B_vm vm -> [ vm ] | _ -> [])
        @ match ctx.alt_vm with Some vm -> [ vm ] | None -> []
      in
      List.iter
        (fun vm ->
          List.iter
            (fun (p : Midway_vmem.Page_table.page) ->
              if p.Midway_vmem.Page_table.twin = None then
                report "p%d: dirty page %d without a twin" ctx.cid
                  p.Midway_vmem.Page_table.number)
            (Midway_vmem.Page_table.dirty_pages (Vm_state.page_table vm)))
        vms)
    t.ctxs;
  (* Every bound range must point at mapped, allocated memory: a lock
     left bound to freed or never-allocated space would make collection
     scan garbage. *)
  let check_binding what id ranges =
    List.iter
      (fun (r : Range.t) ->
        if not (Range.is_empty r) then
          match Space.find_region t.space r.Range.addr with
          | None -> report "%s %d: bound range [%#x,%#x) is unmapped" what id r.Range.addr (Range.limit r)
          | Some reg ->
              if Range.limit r > Region.base reg + reg.Region.used then
                report "%s %d: bound range [%#x,%#x) extends past the region's allocated %d bytes"
                  what id r.Range.addr (Range.limit r) reg.Region.used)
      ranges
  in
  List.iter (fun (l : Sync.lock) -> check_binding "lock" l.Sync.lid l.Sync.ranges) t.locks;
  List.iter (fun (b : Sync.barrier) -> check_binding "barrier" b.Sync.bid b.Sync.branges) t.barriers;
  (* ECSan's binding index must mirror the protocol's Sync records
     exactly — drift would mean the sanitizer checked stale bindings. *)
  (match t.checker with
  | Some ch ->
      let expect what id ranges =
        let mine = raw_pairs (Range.normalize ranges) in
        let index = Midway_check.Check.current_ranges ch ~id in
        if mine <> index then
          report "%s %d: sanitizer binding index out of sync (%d vs %d range(s))" what id
            (List.length index) (List.length mine)
      in
      List.iter (fun (l : Sync.lock) -> expect "lock" l.Sync.lid l.Sync.ranges) t.locks;
      List.iter (fun (b : Sync.barrier) -> expect "barrier" b.Sync.bid b.Sync.branges) t.barriers
  | None -> ());
  List.rev !problems

let check_report t =
  match t.checker with
  | None -> Midway_check.Report.disabled
  | Some ch -> Midway_check.Check.report ch

let elapsed_ns t = Engine.elapsed t.engine

let proc_clock_ns t i = Engine.clock_of t.engine i

let schedule_choices t = Engine.choices t.engine

(* --- crash-fault introspection (empty / full / zero when crash off) --- *)

let killed_procs t =
  match t.crash with
  | None -> []
  | Some cr ->
      let out = ref [] in
      Array.iteri (fun p k -> if k then out := p :: !out) cr.cr_killed;
      List.rev !out

let failover_count t =
  List.fold_left (fun acc (l : Sync.lock) -> acc + l.Sync.failovers) 0 t.locks

let availability t =
  let n = t.cfg.nprocs in
  float_of_int (n - List.length (killed_procs t)) /. float_of_int n

(* --- hybrid write detection introspection and control --------------- *)

let region_backend_at t ~addr = backend_of_region t (region_index_of t addr)

let region_assignments t =
  let out = ref [] in
  Array.iteri
    (fun i b -> match b with Some b -> out := (i, b) :: !out | None -> ())
    t.region_backend;
  List.rev !out

let backend_switches t = t.switches

let region_collect_ns t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.region_ns [] |> List.sort compare

let set_region_backend t ~addr b =
  let idx = region_index_of t addr in
  if not (safe_to_switch t idx) then
    invalid_arg
      "Runtime.set_region_backend: a binding in the region is held or mid-episode (not a \
       safe point)";
  switch_region_backend t ~region_index:idx ~to_:b ~at:(Engine.elapsed t.engine)
