(** Per-processor dirtybit tables for RT-DSM.

    Every shared cache line cached on a processor has a dirtybit elsewhere
    in that processor's memory (paper, section 3.1).  A dirtybit is a
    timestamp word ({!Timestamp}): the store template writes the
    {!Timestamp.locally_dirty} sentinel, and the sentinel is lazily
    replaced by the processor's Lamport time when the guarding
    synchronization object is transferred (write collection, section 3.2).

    Three trapping organizations are provided (section 3.5 discusses the
    two alternatives):

    - [Plain]: one timestamp per line; collection scans every bound line.
    - [Two_level]: a first-level dirty bit covers a group of lines, and a
      per-group maximum timestamp lets collection skip whole groups that
      are clean and older than the requester's cursor, at the price of one
      extra store per write.
    - [Update_queue]: writes append to a coalescing queue; collection
      consumes queue entries instead of scanning, at roughly triple the
      trapping cost.  (The timestamp table is still maintained as the
      update history.)

    This module only mutates data structures and reports what it did; cost
    charging and counter accounting belong to the runtime. *)

type t

val create : mode:Config.rt_mode -> group:int -> t
(** [group] is the number of lines covered by a first-level bit in
    [Two_level] mode. *)

val mode : t -> Config.rt_mode

val note_write : t -> region:Midway_memory.Region.t -> addr:int -> len:int -> unit
(** Record a store to [addr, addr+len): mark the overlapping lines locally
    dirty (and, per mode, set the first-level bit or append to the
    queue). *)

val line_ts : t -> region:Midway_memory.Region.t -> addr:int -> Timestamp.t
(** Current dirtybit value of the line containing [addr]. *)

val set_ts : t -> region:Midway_memory.Region.t -> addr:int -> ts:Timestamp.t -> unit
(** Install an incoming update's timestamp at this processor. *)

val set_ts_run :
  t -> region:Midway_memory.Region.t -> addr:int -> lines:int -> ts:Timestamp.t -> unit
(** Install one timestamp across [lines] consecutive lines starting at
    [addr] — the apply side of a coalesced run.  The run must lie within
    one region. *)

type scan_counts = {
  mutable clean_reads : int;  (** lines read and found stamped *)
  mutable dirty_reads : int;  (** lines read and found locally dirty (stamped during the scan) *)
  mutable groups_skipped : int;  (** [Two_level]: groups skipped via the first level *)
  mutable group_checks : int;  (** [Two_level]: first-level bits examined *)
  mutable queue_entries : int;  (** [Update_queue]: queue entries consumed *)
}

type selection =
  | Transfer of Timestamp.t
      (** Lock transfer: emit every line whose timestamp exceeds the
          requester's cursor — the minimal update set. *)
  | Fresh_only
      (** Barrier arrival: emit only lines stamped during this scan (the
          processor's own modifications); every participant already holds
          the older history. *)

val scan :
  t ->
  region_of:(int -> Midway_memory.Region.t) ->
  ranges:Range.t list ->
  stamp:Timestamp.t ->
  select:selection ->
  emit:(addr:int -> len:int -> ts:Timestamp.t -> fresh:bool -> lines:int -> unit) ->
  scan_counts
(** Write collection for one synchronization point.  Visits the bound
    lines, stamps locally dirty lines with [stamp], and calls [emit] once
    per contiguous *run* of selected lines sharing a timestamp and
    freshness ([fresh] marks lines stamped by this scan; [lines] is the
    number of lines coalesced into the run, [len] their total bytes).
    Selection and stamping are still per line — only the emission is
    batched, so the covered addresses, timestamps and counts are exactly
    those of a per-line emission.  [region_of] maps an address to its
    region (runs never span regions).  In [Update_queue] mode only queued
    entries are visited: the caller is responsible for lines it received
    from third parties (see the runtime's per-lock history). *)

val queue_length : t -> int
(** [Update_queue] mode: entries currently queued (0 in other modes). *)

val reset_region : t -> Midway_memory.Region.t -> unit
(** Forget all detection state for one region: timestamps back to
    {!Timestamp.initial}, first-level bits and group maxima cleared,
    queued writes inside the region dropped.  Used when a region's
    detection backend is switched; the accompanying per-lock epoch bump
    makes the next transfer ship the bound data in full, so nothing
    forgotten is lost. *)
