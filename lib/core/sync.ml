type waker = at:int -> unit

type mode = Exclusive | Shared

type vm_log_entry = Pieces of Payload.vm_piece list | Full_marker

type lock = {
  lid : int;
  mutable ranges : Range.t list;
  mutable owner : int;
  mutable held_by : int option;
  mutable free_at : int;
  mutable pending : (int * int * mode * waker) list;
  mutable readers : int list;
  mutable acquires : int;
  rt_last_seen : Timestamp.t array;
  mutable rt_stamp : Timestamp.t;
  rt_history : (int, Timestamp.t) Hashtbl.t;
  mutable incarnation : int;
  vm_inc_seen : int array;
  mutable vm_log : (int * vm_log_entry) list;
  mutable switch_inc : int;
  (* crash-recovery state (armed by Config.crash; inert otherwise) *)
  mutable backups : int list;
  mutable replica : (int * Payload.vm_piece list) option;
  mutable failovers : int;
}

type arrival = {
  a_proc : int;
  a_deliver : int;
  a_waker : waker;
  a_payload : Payload.t;
  a_stamp : Timestamp.t;
}

type barrier = {
  bid : int;
  mutable branges : Range.t list;
  participants : int;
  mutable manager : int;
  mutable episode : int;
  mutable arrived : arrival list;
  mutable crossings : int;
}

let make_lock ~lid ~nprocs ~owner ~ranges =
  if owner < 0 || owner >= nprocs then invalid_arg "Sync.make_lock: owner out of range";
  {
    lid;
    ranges = Range.normalize ranges;
    owner;
    held_by = None;
    free_at = 0;
    pending = [];
    readers = [];
    acquires = 0;
    rt_last_seen = Array.make nprocs Timestamp.never_seen;
    rt_stamp = Timestamp.initial;
    rt_history = Hashtbl.create 16;
    incarnation = 0;
    vm_inc_seen = Array.make nprocs (-1);
    vm_log = [];
    switch_inc = 0;
    backups = [];
    replica = None;
    failovers = 0;
  }

let make_barrier ~bid ~nprocs ~participants ~manager ~ranges =
  if participants <= 0 || participants > nprocs then
    invalid_arg "Sync.make_barrier: participants out of range";
  if manager < 0 || manager >= nprocs then
    invalid_arg "Sync.make_barrier: manager out of range";
  {
    bid;
    branges = Range.normalize ranges;
    participants;
    manager;
    episode = 0;
    arrived = [];
    crossings = 0;
  }

let lock_bound_bytes l = Range.total_bytes l.ranges

let enqueue_request l ~proc ~arrival ~mode ~waker =
  let rec insert = function
    | [] -> [ (proc, arrival, mode, waker) ]
    | ((p, a, _, _) as hd) :: rest ->
        if arrival < a || (arrival = a && proc < p) then (proc, arrival, mode, waker) :: hd :: rest
        else hd :: insert rest
  in
  l.pending <- insert l.pending

let rebind_lock l ~nprocs:_ ~ranges =
  l.ranges <- Range.normalize ranges;
  (* RT: every processor must refetch the newly bound data. *)
  Array.fill l.rt_last_seen 0 (Array.length l.rt_last_seen) Timestamp.never_seen;
  Hashtbl.reset l.rt_history;
  (* VM: bump the incarnation and force a diff-free full transfer. *)
  l.incarnation <- l.incarnation + 1;
  l.vm_log <- [ (l.incarnation - 1, Full_marker) ]
