(** Run configuration: which write-detection backend, which machine model.

    A single Midway build can be configured as an RT-DSM or a VM-DSM
    (paper, section 3); this record selects the backend and fixes every
    machine parameter so experiments are reproducible. *)

type backend =
  | Rt  (** compiler/runtime write detection: per-line dirtybit timestamps *)
  | Vm  (** virtual-memory write detection: page faults, twins and diffs *)
  | Blast  (** no detection: ship all bound data on every transfer (section 3.5 straw man) *)
  | Twin  (** no detection: twin all bound data and compare it at every synchronization point (the second section 3.5 alternative) *)
  | Vm_fine  (** VM trapping with an RT-style per-line timestamp history, the finer-grained variant section 3.4 describes and rejects: "at least the same data collection overhead as the RT-DSM ... and the additional overhead of trapping and detection for VM-DSM" *)
  | Standalone  (** no detection and no consistency: the uniprocessor baseline *)

val backend_name : backend -> string

val backend_names : string list
(** The canonical spellings, in declaration order — what
    {!backend_of_string} errors list as valid. *)

val backend_of_string : string -> (backend, string) result
(** The one shared backend parser: names are matched exactly (no
    trimming, no case folding), so every binary rejects whitespace and
    case drift identically.  Errors list the valid names; a name that
    would parse after normalization gets a did-you-mean hint. *)

type rt_mode =
  | Plain  (** one dirtybit (timestamp word) per line — the paper's main scheme *)
  | Two_level  (** section 3.5: a first-level bit covers a group of lines; one extra store per write (~10%), collection skips clean groups *)
  | Update_queue  (** section 3.5: writes append to a coalescing queue; trapping roughly triples, collection is proportional to dirty data *)

val rt_mode_name : rt_mode -> string

type crash = {
  plan : Midway_simnet.Crash.plan;  (** the crash-stop / crash-recovery schedule *)
  replicas : int;
      (** k: backup processors each lock's bound data is replicated to
          at release, so a crash mid-critical-section reverts the lock's
          bindings to the last released state *)
  suspect_attempts : int;
      (** reliable-channel transmissions against a silent peer before
          the failure detector raises suspicion and failover starts —
          deliberately below [retrans_max_attempts] so a dead node is
          diagnosed faster than a lossy wire *)
  broken_failover : bool;
      (** deliberately skip replication and the epoch bump — the
          seeded-bug demo the fuzzer must catch; never set it for real
          runs *)
  watchdog_ns : int;
      (** virtual-time bound on a crash-armed run: survivors still
          executing past it are crash-stopped too ([Engine.Killed] with
          a watchdog diagnosis).  Guards against application-level
          livelock — a program that polls shared state only a crashed
          processor could have advanced (e.g. a task queue whose worker
          died mid-task) would otherwise spin in virtual time forever.
          The DSM protocol itself never needs this: crashed owners fail
          over by quorum. *)
}
(** Node-level fault configuration (see doc/FAULTS.md). *)

type t = {
  backend : backend;
  nprocs : int;
  cost : Midway_stats.Cost_model.t;
  (* network *)
  net_latency_ns : int;
  net_ns_per_byte : int;
  net_header_bytes : int;
  line_descriptor_bytes : int;  (** per-line/per-run wire overhead in update messages *)
  (* memory layout *)
  region_size : int;
  default_line_size : int;
  (* consistency model *)
  untargetted : bool;
      (** section 3.5 "other memory models": when true, every lock
          transfer makes the *entire* shared space consistent (as an
          untargetted model such as release consistency requires), so RT
          write collection must scan the dirtybit of every shared line —
          the case the two-level and update-queue organizations exist
          for.  RT backend only; barriers may carry no bound data. *)
  (* RT options *)
  rt_mode : rt_mode;
  two_level_group : int;  (** lines covered by one first-level bit *)
  (* VM options *)
  update_log_window : int;  (** incarnations of saved updates kept per lock *)
  trace_capacity : int;
      (** protocol events retained for {!Trace}; 0 disables tracing *)
  (* synchronization costs *)
  local_lock_ns : int;  (** acquire of a lock already owned by this processor *)
  release_ns : int;  (** local bookkeeping at release *)
  apply_line_ns : int;  (** fixed per-line cost of applying an incoming update *)
  seed : int;
  (* scheduling *)
  sched_policy : Midway_sched.Engine.policy;
      (** Tie-break policy of the discrete-event engine
          ({!Midway_sched.Engine.policy}).  [Fifo] (the default) is the
          historical deterministic order and is bit-identical to builds
          without the schedule explorer; [Seeded] / [Replay] make the
          tie-break order among causally concurrent events an explored,
          replayable dimension (see doc/SIMULATION.md and
          [bin/midway_fuzz.ml]). *)
  (* sanitizer *)
  ecsan : bool;
      (** arm ECSan, the entry-consistency sanitizer
          ({!Midway_check.Check}): every instrumented access and
          synchronization event is checked against the binding table and
          violations are collected in {!Runtime.check_report}.  [false]
          (the default) compiles the hooks down to a single [match] per
          access, so simulated results are bit-identical to an
          unsanitized build. *)
  (* fault injection *)
  faults : Midway_simnet.Net.fault_policy option;
      (** [None] (the default) is the perfectly reliable fabric — the
          protocol takes exactly the pre-fault code path, so runs are
          bit-identical to a build without the fault layer.  [Some
          policy] arms {!Midway_simnet.Net} fault injection and routes
          every protocol message through the
          {!Midway_simnet.Reliable} ack/retransmission channel. *)
  crash : crash option;
      (** [None] (the default) models perfectly reliable processors —
          no crash branch executes, so runs are bit-identical to a
          build without the crash layer, the same contract as [faults]
          / [ecsan] / [obs].  [Some c] arms the {!Midway_simnet.Crash}
          schedule, routes every message through the reliable channel
          (even with [faults = None]), and enables the quorum failover
          / replication recovery protocol in {!Runtime}. *)
  retrans_timeout_ns : int;  (** initial ack timeout of the reliable channel *)
  retrans_backoff_cap_ns : int;  (** exponential backoff cap *)
  retrans_max_attempts : int;  (** transmissions of one message before giving up *)
  (* observability *)
  obs : bool;
      (** arm the structured observability layer ({!Midway_obs.Obs}):
          protocol spans on the simulated clock plus a metrics registry,
          readable through {!Runtime.obs} and exportable as a Chrome
          trace ({!Midway_obs.Trace_export}).  [false] (the default)
          records nothing, and recording never charges simulated time,
          so results are bit-identical either way — the same contract as
          [ecsan]. *)
  obs_span_cap : int;
      (** maximum spans retained when [obs] is armed; [0] = unbounded.
          Past the cap spans are counted as dropped, not recorded;
          metrics are unaffected. *)
  (* per-region hybrid detection *)
  adaptive : bool;
      (** arm the online per-region backend controller ({!Policy}): at
          every release whose lock has no other holders, the policy may
          re-elect the detection backend of the regions the lock binds,
          using the same quantities the lib/obs metrics export (dirty
          bytes per collect, trap counts, fault counts, re-binding
          rate).  [false] (the default) never switches, so runs are
          bit-identical to a fixed-backend build — the same
          off-is-invisible contract as [ecsan] / [faults] / [obs]. *)
  striped : backend option;
      (** [Some b]: shared regions alternate between [backend] (even
          allocation ordinals) and [b] (odd ordinals) at creation, a
          static mixed-backend machine — the per-region dispatch test
          rig.  [None] (the default) gives every region [backend],
          which is the bit-identical degenerate case. *)
}

val make : ?cost:Midway_stats.Cost_model.t -> backend -> nprocs:int -> t
(** Defaults model the paper's testbed: 4 KB pages, 16 MiB regions, 64 B
    default lines, 150 us message latency, 57 ns/byte, 8-byte line
    descriptors, [Plain] RT trapping, an update-log window of 16
    incarnations, no faults, and the {!Midway_simnet.Reliable} default
    retransmission parameters. *)

val with_schedule_seed : int -> t -> t
(** Arm the seeded tie-break policy: the engine picks uniformly among
    runnable fibers whose virtual clocks are tied, recording every
    choice so the run is replayable from [(workload seed, schedule
    seed)] alone. *)

val with_replay : int list -> t -> t
(** Replay a recorded tie-break choice list (see
    {!Runtime.schedule_choices}); ties beyond the end of the list fall
    back to FIFO. *)

val with_faults : ?duplicate:float -> ?jitter_ns:int -> ?seed:int -> drop:float -> t -> t
(** Arm uniform fault injection: every link drops a copy with
    probability [drop], duplicates with [duplicate] (default 0), and
    jitters arrival by up to [jitter_ns] (default 0).  The injection
    seed defaults to the run seed, so a configuration is reproducible
    end to end. *)

val with_crash :
  ?replicas:int ->
  ?suspect_attempts:int ->
  ?broken:bool ->
  ?watchdog_ns:int ->
  Midway_simnet.Crash.plan ->
  t ->
  t
(** Arm node-level faults with the given crash plan.  Defaults:
    [replicas = 2], [suspect_attempts = 5], [broken = false],
    [watchdog_ns = 300 s] of virtual time (far beyond any legitimate
    run, close enough that a livelocked poll loop is cut off in
    milliseconds of host time). *)

val reliable_config : t -> Midway_simnet.Reliable.config
(** The retransmission parameters as the reliable channel wants them. *)
