module Space = Midway_memory.Space

type rt_line = { addr : int; len : int; ts : Timestamp.t; data : Bytes.t; descs : int }

type vm_piece = { addr : int; data : Bytes.t }

type vm_update = { incarnation : int; producer : int; pieces : vm_piece list }

type t =
  | Rt_lines of rt_line list
  | Vm_updates of vm_update list
  | Vm_full of vm_piece list
  | Blast_data of vm_piece list
  | Empty

let pieces_bytes pieces =
  List.fold_left (fun acc p -> acc + Bytes.length p.data) 0 pieces

let app_bytes = function
  | Rt_lines lines -> List.fold_left (fun acc l -> acc + l.len) 0 lines
  | Vm_updates updates ->
      List.fold_left (fun acc u -> acc + pieces_bytes u.pieces) 0 updates
  | Vm_full pieces | Blast_data pieces -> pieces_bytes pieces
  | Empty -> 0

let descriptors = function
  | Rt_lines lines -> List.fold_left (fun acc l -> acc + l.descs) 0 lines
  | Vm_updates updates -> List.fold_left (fun acc u -> acc + List.length u.pieces) 0 updates
  | Vm_full pieces | Blast_data pieces -> List.length pieces
  | Empty -> 0

let read_pieces space ~proc ranges =
  List.filter_map
    (fun (r : Range.t) ->
      if Range.is_empty r then None
      else Some { addr = r.Range.addr; data = Space.read_bytes space ~proc r.Range.addr ~len:r.Range.len })
    ranges

let write_pieces space ~proc pieces =
  List.iter (fun p -> Space.write_bytes space ~proc p.addr p.data) pieces
