module Space = Midway_memory.Space
module Page_table = Midway_vmem.Page_table
module Diff = Midway_vmem.Diff
module Counters = Midway_stats.Counters
module Cost_model = Midway_stats.Cost_model

type pending_page = {
  shadow : Bytes.t;  (* page-sized snapshot of the diffed words *)
  mutable dirty : Range.t list;  (* absolute addresses, normalized *)
}

type t = {
  pt : Page_table.t;
  pending : (int, pending_page) Hashtbl.t;  (* page number -> saved diff *)
  trace_faults : bool;  (* MIDWAY_FAULT_TRACE, sampled once at creation *)
}

let create ~page_size =
  {
    pt = Page_table.create ~page_size;
    pending = Hashtbl.create 64;
    trace_faults = Sys.getenv_opt "MIDWAY_FAULT_TRACE" <> None;
  }

let page_table t = t.pt

let page_size t = Page_table.page_size t.pt

let on_write t ~space ~proc ~counters ~cost ~addr =
  let page = Page_table.page_of_addr t.pt addr in
  match page.Page_table.prot with
  | Page_table.Read_write -> 0
  | Page_table.Read_only ->
      let psize = page_size t in
      let page_base = addr / psize * psize in
      let contents = Space.read_bytes space ~proc page_base ~len:psize in
      (match Page_table.fault_on_write t.pt ~addr ~contents with
      | None -> assert false (* the page was read-only *)
      | Some _page ->
          counters.Counters.write_faults <- counters.Counters.write_faults + 1;
          if t.trace_faults then Printf.eprintf "FAULT %d\n" (addr / psize);
          cost.Cost_model.page_fault_ns)

let pending_for t number =
  match Hashtbl.find_opt t.pending number with
  | Some p -> p
  | None ->
      let p = { shadow = Bytes.create (page_size t); dirty = [] } in
      Hashtbl.replace t.pending number p;
      p

(* Stash the parts of a diffed page that are *not* bound to the object
   being transferred, so a later transfer can ship them.  [current] is a
   live view of the page starting at [cur_off]. *)
let save_outside t ~page_number ~page_base ~current ~cur_off outside =
  match outside with
  | [] -> ()
  | _ ->
      let p = pending_for t page_number in
      List.iter
        (fun (r : Range.t) ->
          Bytes.blit current
            (cur_off + (r.Range.addr - page_base))
            p.shadow (r.Range.addr - page_base) r.Range.len)
        outside;
      p.dirty <- Range.normalize (outside @ p.dirty)

(* Consume saved diffs that fall inside the bound ranges. *)
let take_pending t ~ranges ~page_numbers =
  let pieces = ref [] in
  List.iter
    (fun number ->
      match Hashtbl.find_opt t.pending number with
      | None -> ()
      | Some p ->
          let page_base = number * page_size t in
          let inside = List.concat_map (fun d -> Range.clip d ~within:ranges) p.dirty in
          if inside <> [] then begin
            List.iter
              (fun (r : Range.t) ->
                pieces :=
                  {
                    Payload.addr = r.Range.addr;
                    data = Bytes.sub p.shadow (r.Range.addr - page_base) r.Range.len;
                  }
                  :: !pieces)
              (Range.normalize inside);
            let remaining =
              List.concat_map (fun d -> Range.subtract d ~minus:ranges) p.dirty
              |> Range.normalize
            in
            if remaining = [] then Hashtbl.remove t.pending number
            else p.dirty <- remaining
          end)
    page_numbers;
  !pieces

let collect t ~space ~proc ~counters ~cost ~ranges =
  let psize = page_size t in
  (* Distinct page numbers overlapping the bound ranges, ascending. *)
  let page_numbers =
    List.concat_map
      (fun (r : Range.t) ->
        if Range.is_empty r then []
        else begin
          let first = r.Range.addr / psize and last = (Range.limit r - 1) / psize in
          List.init (last - first + 1) (fun i -> first + i)
        end)
      ranges
    |> List.sort_uniq compare
  in
  let pieces = ref [] in
  let total_cost = ref 0 in
  List.iter
    (fun number ->
      let page = Page_table.page_of_addr t.pt (number * psize) in
      if page.Page_table.dirty then begin
        let page_base = number * psize in
        (* Zero-copy view of the processor's live page; only read below. *)
        let current, cur_off = Space.backing_slice space ~proc page_base ~len:psize in
        let twin =
          match page.Page_table.twin with
          | Some tw -> tw
          | None -> assert false (* dirty implies twinned *)
        in
        let runs, transitions =
          Diff.diff_between ~old_:twin ~old_off:0 ~new_:current ~new_off:cur_off ~len:psize
        in
        counters.Counters.pages_diffed <- counters.Counters.pages_diffed + 1;
        total_cost :=
          !total_cost + Cost_model.diff_cost_ns cost ~words:(psize / 4) ~transitions;
        let modified =
          List.map (fun (r : Diff.run) -> Range.v (page_base + r.Diff.off) r.Diff.len) runs
        in
        let inside = List.concat_map (fun m -> Range.clip m ~within:ranges) modified in
        let outside =
          List.concat_map (fun m -> Range.subtract m ~minus:ranges) modified
        in
        List.iter
          (fun (r : Range.t) ->
            pieces :=
              {
                Payload.addr = r.Range.addr;
                data = Bytes.sub current (cur_off + (r.Range.addr - page_base)) r.Range.len;
              }
              :: !pieces)
          (Range.normalize inside);
        save_outside t ~page_number:number ~page_base ~current ~cur_off outside;
        (* All modified data is accounted for: the page is clean again. *)
        Page_table.clean t.pt page;
        counters.Counters.pages_write_protected <-
          counters.Counters.pages_write_protected + 1;
        total_cost := !total_cost + cost.Cost_model.page_protect_ro_ns
      end)
    page_numbers;
  let saved = take_pending t ~ranges ~page_numbers in
  (* Saved diffs can overlap words that were modified again and re-diffed
     since they were stashed; the fresh diff reflects current memory, so
     stale pieces must apply first and fresh pieces last. *)
  (saved @ List.rev !pieces, !total_cost)

let apply_pieces t ~space ~proc ~counters ~cost pieces =
  let psize = page_size t in
  let total_cost = ref 0 in
  List.iter
    (fun (p : Payload.vm_piece) ->
      let len = Bytes.length p.Payload.data in
      Space.write_bytes space ~proc p.Payload.addr p.Payload.data;
      total_cost := !total_cost + Cost_model.copy_cost_ns cost ~bytes:len ~warm:true;
      (* Patch twins of dirty pages so the update is not re-collected as a
         local modification. *)
      if len > 0 then begin
        let first = p.Payload.addr / psize and last = (p.Payload.addr + len - 1) / psize in
        for number = first to last do
          let page = Page_table.page_of_addr t.pt (number * psize) in
          (match page.Page_table.twin with
          | Some twin when page.Page_table.dirty ->
              let page_base = number * psize in
              let lo = max p.Payload.addr page_base in
              let hi = min (p.Payload.addr + len) (page_base + psize) in
              Bytes.blit p.Payload.data (lo - p.Payload.addr) twin (lo - page_base)
                (hi - lo);
              counters.Counters.twin_update_bytes <-
                counters.Counters.twin_update_bytes + (hi - lo);
              total_cost :=
                !total_cost + Cost_model.copy_cost_ns cost ~bytes:(hi - lo) ~warm:true
          | _ -> ());
          (* An incoming piece is the protocol's current data for its
             range: any saved diff overlapping it is superseded and must
             be dropped, or a later collection would resurrect the stale
             shadow over newer data. *)
          match Hashtbl.find_opt t.pending number with
          | None -> ()
          | Some pp ->
              let applied = Range.v p.Payload.addr len in
              let remaining =
                List.concat_map (fun d -> Range.subtract d ~minus:[ applied ]) pp.dirty
                |> Range.normalize
              in
              if remaining = [] then Hashtbl.remove t.pending number
              else pp.dirty <- remaining
        done
      end)
    pieces;
  !total_cost

let absorb t ~space ~proc ~ranges =
  let psize = page_size t in
  List.iter
    (fun (r : Range.t) ->
      if not (Range.is_empty r) then begin
        let first = r.Range.addr / psize and last = (Range.limit r - 1) / psize in
        for number = first to last do
          let page = Page_table.page_of_addr t.pt (number * psize) in
          match page.Page_table.twin with
          | Some twin when page.Page_table.dirty ->
              let page_base = number * psize in
              let lo = max r.Range.addr page_base in
              let hi = min (Range.limit r) (page_base + psize) in
              if lo < hi then begin
                let current, cur_off = Space.backing_slice space ~proc page_base ~len:psize in
                Bytes.blit current (cur_off + (lo - page_base)) twin (lo - page_base) (hi - lo)
              end
          | _ -> ()
        done
      end)
    ranges

let discard_pending t ~ranges =
  let psize = page_size t in
  let affected = ref [] in
  Hashtbl.iter
    (fun number p ->
      let page_base = number * psize in
      if List.exists (fun (r : Range.t) -> Range.overlaps r (Range.v page_base psize)) ranges
      then begin
        let remaining =
          List.concat_map (fun d -> Range.subtract d ~minus:ranges) p.dirty |> Range.normalize
        in
        affected := (number, remaining) :: !affected
      end)
    t.pending;
  List.iter
    (fun (number, remaining) ->
      if remaining = [] then Hashtbl.remove t.pending number
      else
        match Hashtbl.find_opt t.pending number with
        | Some p -> p.dirty <- remaining
        | None -> ())
    !affected

let pending_pages t = Hashtbl.length t.pending

let forget t ~ranges =
  let psize = page_size t in
  List.iter
    (fun (r : Range.t) ->
      if not (Range.is_empty r) then begin
        let first = r.Range.addr / psize and last = (Range.limit r - 1) / psize in
        for number = first to last do
          let page = Page_table.page_of_addr t.pt (number * psize) in
          if page.Page_table.dirty then Page_table.clean t.pt page
        done
      end)
    ranges;
  discard_pending t ~ranges
