(** Update payloads carried by synchronization reply messages.

    A payload is the data a releaser ships to make the requester's cache
    consistent.  RT-DSM ships timestamped cache lines; VM-DSM ships either
    the diffs of the missed incarnations or, when the concatenated diffs
    would exceed the bound data (or history has been discarded), the full
    bound data; the blast backend always ships the full bound data. *)

type rt_line = { addr : int; len : int; ts : Timestamp.t; data : Bytes.t; descs : int }
(** A run of [descs] contiguous equally-sized cache lines sharing one
    timestamp.  [descs] is the number of line descriptors the run stands
    for on the wire; per-line values (history, install costs) divide [len]
    by [descs]. *)

type vm_piece = { addr : int; data : Bytes.t }

type vm_update = { incarnation : int; producer : int; pieces : vm_piece list }

type t =
  | Rt_lines of rt_line list
  | Vm_updates of vm_update list  (** oldest first; applied in incarnation order *)
  | Vm_full of vm_piece list  (** one piece per bound range *)
  | Blast_data of vm_piece list
  | Empty

val app_bytes : t -> int
(** Application data bytes in the payload (what "data transferred"
    measures). *)

val descriptors : t -> int
(** Number of line/run descriptors, for wire-overhead accounting. *)

val pieces_bytes : vm_piece list -> int

val read_pieces : Midway_memory.Space.t -> proc:int -> Range.t list -> vm_piece list
(** Snapshot the given ranges out of a processor's memory as pieces. *)

val write_pieces : Midway_memory.Space.t -> proc:int -> vm_piece list -> unit
(** Apply pieces to a processor's memory. *)
