(** Per-processor VM-DSM detection state: page table, twins, and the
    saved-diff store.

    Write trapping (paper, section 3.3): shared pages start write
    protected; the first store faults, twins the page, marks it dirty and
    grants write access.

    Write collection (section 3.4): at a transfer, dirty pages overlapping
    the bound data are diffed against their twins.  Modified words inside
    the bound ranges ship with the lock; modified words *outside* them
    (data on the same page bound to other synchronization objects — false
    sharing at page granularity) are saved so a later transfer of the
    other object can ship them without re-diffing, exactly as the paper's
    "the diff created for each page is saved and may be reused".  Saved
    diffs are kept as a per-page shadow buffer plus the modified ranges. *)

type t

val create : page_size:int -> t

val page_table : t -> Midway_vmem.Page_table.t

val on_write :
  t ->
  space:Midway_memory.Space.t ->
  proc:int ->
  counters:Midway_stats.Counters.t ->
  cost:Midway_stats.Cost_model.t ->
  addr:int ->
  int
(** Trap one store: if the page containing [addr] is write protected,
    simulate the write fault (twin the page from the processor's current
    memory, count it, and return the fault service time to charge);
    returns 0 when the page was already writable. *)

val collect :
  t ->
  space:Midway_memory.Space.t ->
  proc:int ->
  counters:Midway_stats.Counters.t ->
  cost:Midway_stats.Cost_model.t ->
  ranges:Range.t list ->
  Payload.vm_piece list * int
(** Collect the processor's modifications to the bound ranges: diff dirty
    pages (cleaning and re-protecting them), consume applicable saved
    diffs, and return the modified pieces inside [ranges] together with
    the collection cost in nanoseconds.  [ranges] must be normalized. *)

val apply_pieces :
  t ->
  space:Midway_memory.Space.t ->
  proc:int ->
  counters:Midway_stats.Counters.t ->
  cost:Midway_stats.Cost_model.t ->
  Payload.vm_piece list ->
  int
(** Apply incoming update pieces at the requesting processor: write the
    data, and for pages currently dirty also patch the twin so the update
    is not later mistaken for a local modification (section 3.4).  Saved
    diffs overlapping an applied piece are dropped — the incoming data is
    the protocol's current state for those words, so shipping the stashed
    shadow later would regress them.  Returns the apply cost in
    nanoseconds. *)

val absorb :
  t -> space:Midway_memory.Space.t -> proc:int -> ranges:Range.t list -> unit
(** Declare the current contents of [ranges] consistent without a
    collection: patch the twins of dirty pages so those words no longer
    read as local modifications.  Used by the diff-free full transfer
    after a rebinding — the shipped data is the protocol's current state,
    so a later diff (possibly for another object sharing the page) must
    not resurrect it.  Pages stay dirty and writable; words outside
    [ranges] are untouched.  Free of simulated cost: the transfer it
    rides on already shipped the data. *)

val discard_pending : t -> ranges:Range.t list -> unit
(** Drop saved diffs that fall inside [ranges].  Used by a diff-free full
    transfer: the full data supersedes any stashed modifications, and
    leaving them behind would later regress the receiver to stale
    values. *)

val pending_pages : t -> int
(** Number of pages with saved (unshipped) diff data — test hook. *)

val forget : t -> ranges:Range.t list -> unit
(** Forget all detection state covering [ranges]: untwin, clean and
    re-protect the overlapping pages and drop their saved diffs, as if
    no store had ever faulted there.  Used when a region's detection
    backend is switched away from VM — correctness is preserved because
    the switch also epoch-bumps every lock bound in the region, so the
    next transfer ships the bound data in full regardless of what
    detection forgot. *)
