(** The Midway runtime: a simulated DSM multicomputer.

    A [Runtime.t] assembles the whole machine — the discrete-event engine,
    the shared address space, the network, the per-processor write
    detection state and operation counters — and implements the entry
    consistency protocol over them.

    Typical use:
    {[
      let rt = Runtime.create (Config.make Rt ~nprocs:8) in
      let data = Runtime.alloc rt ~line_size:64 (n * 8) in
      let lock = Runtime.new_lock rt [ Range.v data (n * 8) ] in
      Runtime.run rt (fun c ->
          Runtime.acquire c lock;
          Runtime.write_f64 c data 1.0;
          Runtime.release c lock);
      Printf.printf "took %s\n" (Midway_util.Units.pp_time (Runtime.elapsed_ns rt))
    ]}
 *)

type t

type ctx
(** A processor's view of the machine, passed to its program. *)

(** {1 Machine construction} *)

val create : Config.t -> t
(** Raises [Invalid_argument] for a [Standalone] configuration with more
    than one processor. *)

val config : t -> Config.t

val space : t -> Midway_memory.Space.t

val net : t -> Midway_simnet.Net.t

val counters : t -> int -> Midway_stats.Counters.t
(** Processor [i]'s operation counters. *)

val trace : t -> Trace.t
(** The protocol event trace (empty unless
    {!Config.t.trace_capacity} > 0). *)

val all_counters : t -> Midway_stats.Counters.t array

val obs : t -> Midway_obs.Obs.t option
(** The structured observability layer — [Some] iff {!Config.t.obs}.
    Holds the protocol span log (lock-acquire waits, collections,
    diffs, applies, barrier waits, retransmit episodes, generic
    scheduler blocks) on the simulated clock and the metrics registry
    ([acquire_latency_ns], [collect_ns], [apply_ns], [transfer_bytes],
    [diff_bytes_per_page], [barrier_wait_ns], [retransmits_per_send]),
    labelled ["p3/lock2"] / ["p0/barrier1"] / ["p0->p2"].  Export with
    {!Midway_obs.Trace_export} / {!Midway_obs.Metrics.to_json}; see
    doc/OBSERVABILITY.md. *)

val alloc : t -> ?line_size:int -> ?private_:bool -> int -> int
(** Allocate shared (default) or private memory; returns the base
    address.  [line_size] sets the software cache-line size of the
    containing region (default from the configuration). *)

val new_lock : t -> ?owner:int -> Range.t list -> Sync.lock
(** A lock binding the given data ranges, initially owned (not held) by
    [owner] (default processor 0). *)

val new_barrier : t -> ?participants:int -> ?manager:int -> Range.t list -> Sync.barrier
(** A barrier over [participants] processors (default: all) binding the
    given ranges; bound data is made consistent at every crossing.
    [manager] (default 0) is the processor that merges and redistributes
    arrivals — for a neighbour-pair barrier pick one of the members so
    traffic does not detour through processor 0. *)

exception Crash_unavailable of string
(** With crash faults armed: a live requester suspected a dead lock
    owner but could not assemble a majority quorum for the failover, so
    the run cannot make progress without risking a split brain.  Only
    raised when the crash plan downs at least half the membership. *)

val run : t -> (ctx -> unit) -> unit
(** Run the same program on every processor, to completion.  May be
    called once.  Raises {!Midway_sched.Engine.Deadlock} on a
    synchronization bug.

    With {!Config.t.crash} armed, processors crash-stop at their
    scheduled times (taking effect at synchronization points); a crashed
    fiber unwinds with {!Midway_sched.Engine.Killed}, its held locks
    fail over to live processors by majority quorum, and the run
    completes with the survivors.  May then raise {!Crash_unavailable}
    (see above). *)

val run_each : t -> (ctx -> unit) array -> unit
(** Run a distinct program per processor (length must equal [nprocs]). *)

val check_invariants : t -> string list
(** After [run]: verify structural protocol invariants — no lock or
    barrier left held/parked, no pending requests, no locally-dirty RT
    lines on non-owners of a lock's data (a write without ownership), no
    VM dirty page without a twin, every binding inside mapped allocated
    memory, (with ECSan on) the sanitizer's binding index in sync with
    the protocol's own records, and (under fault injection) no message
    left unacked in the reliable channel.  Returns human-readable
    violations (empty = clean).  Useful in tests and when debugging
    simulated programs. *)

val check_report : t -> Midway_check.Check.report
(** The ECSan sanitizer's findings (see {!Midway_check.Check} and
    doc/ECSAN.md).  With {!Config.t.ecsan} off this is
    {!Midway_check.Report.disabled}; with it on, call after [run] for
    the full report.  Render with {!Midway_check.Report.render}; gate
    exit codes on {!Midway_check.Report.has_violations}. *)

val elapsed_ns : t -> int
(** After [run]: simulated execution time (max over processors). *)

val proc_clock_ns : t -> int -> int

val schedule_choices : t -> int list
(** The engine's recorded tie-break choices (oldest first; empty under
    the default FIFO policy).  Replaying them via
    {!Config.with_replay} reproduces the schedule exactly — the raw
    material of the schedule explorer's counterexamples.  Valid during
    and after [run], including when [run] raised. *)

(** {1 Crash-fault introspection}

    All three are trivial when {!Config.t.crash} is unset: no killed
    processors, zero failovers, availability 1. *)

val killed_procs : t -> int list
(** Processors whose fiber crash-stopped during the run, ascending. *)

val failover_count : t -> int
(** Total quorum ownership transfers across all locks. *)

val availability : t -> float
(** Fraction of processors still live at the end of the run. *)

(** {1 Per-region hybrid write detection}

    Write detection is a per-region choice: every region runs the
    machine-wide default backend until it is re-elected, either manually
    ({!set_region_backend}), at allocation time ({!Config.t.striped}),
    or online by the adaptive controller ({!Config.t.adaptive}, see
    {!Policy} and doc/ADAPTIVE.md).  A switch is only legal at a safe
    point — no intersecting lock held or read-held, no intersecting
    barrier mid-episode — and epoch-bumps every intersecting binding
    ({!Sync.rebind_lock}), so the next transfer after a switch is a
    diff-free full and no stale detection state can leak across the
    boundary. *)

val region_backend_at : t -> addr:int -> Config.backend
(** The backend currently electing write detection for the region
    containing [addr]. *)

val set_region_backend : t -> addr:int -> Config.backend -> unit
(** Manually re-elect the backend of the region containing [addr].
    Raises [Invalid_argument] if either side of the switch is not
    electable ([Vm_fine] and [Standalone] are machine-wide only), if
    the configuration is untargetted, or if the region is not at a safe
    point.  A no-op when the region already runs the requested
    backend. *)

val region_assignments : t -> (int * Config.backend) list
(** Regions whose backend differs from the machine default, as
    [(region_index, backend)] pairs in index order. *)

val backend_switches : t -> int
(** Total committed region backend switches (manual + adaptive). *)

val region_collect_ns : t -> (int * int) list
(** Simulated nanoseconds spent in collect/apply per region, in index
    order — the per-region accounting the adaptive controller's cost
    estimates are judged against.  Transfers whose binding has no
    non-empty range are accounted under region [-1]. *)

(** {1 Processor operations} *)

val id : ctx -> int

val nprocs : ctx -> int

val now_ns : ctx -> int

val work_ns : ctx -> int -> unit
(** Model local computation: advance this processor's clock. *)

val work_cycles : ctx -> int -> unit
(** Computation expressed in processor cycles (40 ns each by default). *)

(** {2 Shared memory access}

    Reads are local-memory reads (Midway's update protocol has no read
    misses) and charge nothing.  Writes perform the store and then run
    write trapping for the configured backend: RT sets the line's
    dirtybit via the region's template (charging the instrumented-store
    cost), VM checks page protection and may take a simulated write
    fault.  Writes to private regions through this interface model
    compiler misclassification and charge the null-template penalty. *)

val read_f64 : ctx -> int -> float
val write_f64 : ctx -> int -> float -> unit
val read_int : ctx -> int -> int
val write_int : ctx -> int -> int -> unit
val read_i32 : ctx -> int -> int32
val write_i32 : ctx -> int -> int32 -> unit
val read_u8 : ctx -> int -> int
val write_u8 : ctx -> int -> int -> unit
val read_bytes : ctx -> int -> len:int -> Bytes.t
val write_bytes : ctx -> int -> Bytes.t -> unit
(** Area store ([bcopy]-style): traps once per cache line touched. *)

val write_f64_private : ctx -> int -> float -> unit
val write_int_private : ctx -> int -> int -> unit
(** Stores the compiler classified as private: no instrumentation is
    emitted and no trapping cost is charged (paper, section 3.1 — "there
    is no need to instrument writes to memory that will not be referenced
    by other processors").  Use the ordinary [write_*] on a private
    region to model a *misclassified* store instead. *)

(** {2 Synchronization} *)

val acquire : ctx -> Sync.lock -> unit
(** Acquire in exclusive (write) mode.  A lock owned by this processor
    and not held is granted locally; otherwise a request goes to the
    current owner and the reply carries the updates this processor is
    missing.  Raises [Failure] on re-acquisition (locks are not
    reentrant). *)

val acquire_read : ctx -> Sync.lock -> unit
(** Acquire in non-exclusive (read) mode: any number of readers may hold
    the lock concurrently, each receiving the updates it is missing;
    ownership stays with the last writer.  An exclusive request waits
    until all readers release.  Requests are served in arrival order, so
    writers are not starved. *)

val release : ctx -> Sync.lock -> unit
(** Release either mode; pending requests are served in arrival order. *)

val rebind : ctx -> Sync.lock -> Range.t list -> unit
(** Change the lock's data binding (must hold the lock).  See
    {!Sync.rebind_lock} for the backend-specific consequences. *)

val barrier : ctx -> Sync.barrier -> unit
(** Cross the barrier: ship this processor's modifications of the bound
    data to the manager, wait for all participants, and receive the other
    processors' modifications. *)
