(** Synchronization objects: entry-consistency locks and barriers.

    Under entry consistency, every lock and barrier carries an explicit
    binding to the shared data it guards; crossing the synchronization
    point makes exactly that data consistent at the requester (paper,
    section 3).  These records hold the protocol state that travels
    conceptually with the object: ownership, the pending request queue,
    per-processor consistency cursors (RT timestamps, VM incarnations),
    and the VM update log.

    The state machines live in {!Runtime}; this module owns the plain
    data. *)

type waker = at:int -> unit
(** Resume a blocked processor fiber at a virtual time. *)

type mode =
  | Exclusive  (** for writing: sole holder, ownership transfers *)
  | Shared  (** for reading: concurrent holders, each receives updates; ownership stays with the last writer *)

type vm_log_entry =
  | Pieces of Payload.vm_piece list
      (** modifications collected for one incarnation *)
  | Full_marker
      (** the whole bound data was shipped at this incarnation (after a
          rebinding, or because concatenated diffs exceeded the data);
          requesters that missed it must receive full data too *)

type lock = {
  lid : int;
  mutable ranges : Range.t list;  (** normalized bound ranges *)
  mutable owner : int;  (** processor holding the protocol state (last holder) *)
  mutable held_by : int option;
  mutable free_at : int;  (** virtual time the lock last became free *)
  mutable pending : (int * int * mode * waker) list;  (** requester, arrival time, mode, waker — sorted by arrival *)
  mutable readers : int list;  (** processors currently holding the lock in shared mode *)
  mutable acquires : int;
  (* RT-DSM *)
  rt_last_seen : Timestamp.t array;  (** per-processor consistency cursor *)
  mutable rt_stamp : Timestamp.t;  (** stamp of the most recent transfer *)
  rt_history : (int, Timestamp.t) Hashtbl.t;
      (** update-queue trapping mode only: line address -> newest stamp, the
          sparse update history that replaces full scans *)
  (* VM-DSM *)
  mutable incarnation : int;
  vm_inc_seen : int array;  (** per-processor last incarnation observed *)
  mutable vm_log : (int * vm_log_entry) list;  (** newest first, trimmed to a window *)
  mutable switch_inc : int;
      (** the incarnation as of the last per-region backend switch (0 if
          never switched).  Epoch bumps up to this watermark were forced
          by the switch itself; only [incarnation > switch_inc] means the
          application actually rebound the lock — the adaptive policy's
          rebinding signal, so its own switches do not read as
          rebinding-heavy workload behaviour *)
  (* crash recovery (armed by [Config.crash]; inert otherwise) *)
  mutable backups : int list;
      (** processors holding a replica of the bound data, freshest first *)
  mutable replica : (int * Payload.vm_piece list) option;
      (** (epoch, snapshot) shipped to the backups at the last release;
          the epoch is the lock's incarnation at replication time, so a
          failover can tell a current replica from a stale one *)
  mutable failovers : int;  (** quorum ownership transfers performed *)
}

type arrival = {
  a_proc : int;
  a_deliver : int;  (** when the arrival message reaches the manager *)
  a_waker : waker;
  a_payload : Payload.t;  (** the processor's own fresh modifications *)
  a_stamp : Timestamp.t;  (** RT: stamp used for this episode (0 otherwise) *)
}

type barrier = {
  bid : int;
  mutable branges : Range.t list;
  participants : int;
  mutable manager : int;
      (** processor acting as barrier manager (0); reassigned to the
          lowest live processor when the manager crash-stops *)
  mutable episode : int;
  mutable arrived : arrival list;  (** current episode, arrival order *)
  mutable crossings : int;
}

val make_lock : lid:int -> nprocs:int -> owner:int -> ranges:Range.t list -> lock

val make_barrier :
  bid:int -> nprocs:int -> participants:int -> manager:int -> ranges:Range.t list -> barrier

val lock_bound_bytes : lock -> int

val enqueue_request : lock -> proc:int -> arrival:int -> mode:mode -> waker:waker -> unit
(** Insert into [pending] keeping arrival-time order (ties by processor id
    for determinism). *)

val rebind_lock : lock -> nprocs:int -> ranges:Range.t list -> unit
(** Change the data bound to the lock (quicksort's task pattern).  Under
    RT the per-processor cursors reset so the next transfer ships all
    bound lines; under VM the incarnation is bumped and a {!Full_marker}
    recorded so the next transfer ships all bound data without diffing —
    both as described in section 4. *)
