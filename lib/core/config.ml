type backend = Rt | Vm | Blast | Twin | Vm_fine | Standalone

let backend_name = function
  | Rt -> "rt"
  | Vm -> "vm"
  | Blast -> "blast"
  | Twin -> "twin"
  | Vm_fine -> "vm-fine"
  | Standalone -> "standalone"

let backend_names = [ "rt"; "vm"; "blast"; "twin"; "vm-fine"; "standalone" ]

(* THE backend parser: every binary (midway_run, experiments,
   midway_fuzz, midway_kv) routes backend names through here, with no
   local trimming or case-folding, so whitespace and case drift are
   rejected identically everywhere.  A name that would parse after
   normalization gets a did-you-mean hint instead of a bare failure. *)
let backend_of_string s =
  let exact = function
    | "rt" -> Some Rt
    | "vm" -> Some Vm
    | "blast" -> Some Blast
    | "twin" -> Some Twin
    | "vm-fine" | "vmfine" -> Some Vm_fine
    | "standalone" | "uni" -> Some Standalone
    | _ -> None
  in
  match exact s with
  | Some b -> Ok b
  | None -> (
      let valid = String.concat "|" backend_names in
      let norm = String.lowercase_ascii (String.trim s) in
      match exact norm with
      | Some _ when norm <> s ->
          Error
            (Printf.sprintf
               "unknown backend %S: names are matched exactly, did you mean %S? (valid: %s)" s
               norm valid)
      | _ -> Error (Printf.sprintf "unknown backend %S (valid: %s)" s valid))

type rt_mode = Plain | Two_level | Update_queue

let rt_mode_name = function
  | Plain -> "plain"
  | Two_level -> "two-level"
  | Update_queue -> "update-queue"

type crash = {
  plan : Midway_simnet.Crash.plan;
  replicas : int;
  suspect_attempts : int;
  broken_failover : bool;
  watchdog_ns : int;
}

type t = {
  backend : backend;
  nprocs : int;
  cost : Midway_stats.Cost_model.t;
  net_latency_ns : int;
  net_ns_per_byte : int;
  net_header_bytes : int;
  line_descriptor_bytes : int;
  region_size : int;
  default_line_size : int;
  untargetted : bool;
  rt_mode : rt_mode;
  two_level_group : int;
  update_log_window : int;
  trace_capacity : int;
  local_lock_ns : int;
  release_ns : int;
  apply_line_ns : int;
  seed : int;
  sched_policy : Midway_sched.Engine.policy;
  ecsan : bool;
  faults : Midway_simnet.Net.fault_policy option;
  crash : crash option;
  retrans_timeout_ns : int;
  retrans_backoff_cap_ns : int;
  retrans_max_attempts : int;
  obs : bool;
  obs_span_cap : int;
  adaptive : bool;
  striped : backend option;
}

let make ?(cost = Midway_stats.Cost_model.default) backend ~nprocs =
  if nprocs <= 0 then invalid_arg "Config.make: nprocs must be positive";
  {
    backend;
    nprocs;
    cost;
    net_latency_ns = 150_000;
    net_ns_per_byte = 57;
    net_header_bytes = 64;
    line_descriptor_bytes = 8;
    region_size = 16 * 1024 * 1024;
    default_line_size = 64;
    untargetted = false;
    rt_mode = Plain;
    two_level_group = 64;
    update_log_window = 16;
    trace_capacity = 0;
    local_lock_ns = 2_000;
    release_ns = 1_000;
    apply_line_ns = 100;
    seed = 0x5EED;
    sched_policy = Midway_sched.Engine.Fifo;
    ecsan = false;
    faults = None;
    crash = None;
    retrans_timeout_ns = Midway_simnet.Reliable.default_config.Midway_simnet.Reliable.timeout_ns;
    retrans_backoff_cap_ns =
      Midway_simnet.Reliable.default_config.Midway_simnet.Reliable.backoff_cap_ns;
    retrans_max_attempts =
      Midway_simnet.Reliable.default_config.Midway_simnet.Reliable.max_attempts;
    obs = false;
    obs_span_cap = 0;
    adaptive = false;
    striped = None;
  }

let with_schedule_seed seed cfg = { cfg with sched_policy = Midway_sched.Engine.Seeded seed }

let with_replay choices cfg = { cfg with sched_policy = Midway_sched.Engine.Replay choices }

let with_faults ?duplicate ?jitter_ns ?seed ~drop cfg =
  let seed = Option.value seed ~default:cfg.seed in
  { cfg with faults = Some (Midway_simnet.Net.uniform_faults ?duplicate ?jitter_ns ~seed ~drop ()) }

let with_crash ?(replicas = 2) ?(suspect_attempts = 5) ?(broken = false)
    ?(watchdog_ns = 300_000_000_000) plan cfg =
  if replicas < 1 then invalid_arg "Config.with_crash: need at least one replica";
  if suspect_attempts < 1 then invalid_arg "Config.with_crash: need at least one attempt";
  if watchdog_ns <= 0 then invalid_arg "Config.with_crash: watchdog must be positive";
  {
    cfg with
    crash = Some { plan; replicas; suspect_attempts; broken_failover = broken; watchdog_ns };
  }

let reliable_config (cfg : t) =
  {
    Midway_simnet.Reliable.timeout_ns = cfg.retrans_timeout_ns;
    backoff_cap_ns = cfg.retrans_backoff_cap_ns;
    max_attempts = cfg.retrans_max_attempts;
  }
