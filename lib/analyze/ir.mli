(** The EC-IR: an entry-consistency program as data.

    A program is a grid of per-processor operation sequences grouped
    into barrier-separated {e rounds}: every processor finishes its
    round-[r] sequence and crosses the round barrier before any
    processor starts round [r+1].  Within a round the per-processor
    sequences interleave arbitrarily; across rounds they are strictly
    ordered.  That is the happens-before structure the static analyzer
    exploits.

    The IR mirrors the observable surface of the runtime (acquire /
    release / rebind / typed loads and stores / private stores), so the
    same program can be run dynamically under ECSan and analyzed
    statically, and the two verdicts compared. *)

module Range = Midway_check.Range

type mode = Shared | Exclusive

type op =
  | Acquire of { lock : int; mode : mode }
  | Release of int
  | Read of Range.t  (** a load from shared memory, byte-granular *)
  | Write of Range.t  (** a store to shared memory *)
  | Write_private of Range.t  (** a store through the uninstrumented path *)
  | Rebind of { lock : int; ranges : Range.t list }
  | Work of int  (** local compute; no shared-memory effect *)

type program = {
  name : string;
  nprocs : int;
  locks : (int * Range.t list) list;  (** id, initial binding *)
  barriers : (int * Range.t list) list;  (** id, binding (fixed for life) *)
  rounds : op list array array;  (** [rounds.(r).(p)] = proc [p]'s ops in round [r] *)
}

val validate : program -> string list
(** Structural sanity: undeclared sync ids, ragged round grids,
    non-positive [nprocs].  Empty list means well-formed.  The analyzer
    tolerates unbalanced acquire/release — that is a program property it
    reasons about, not a structural error. *)

val mode_name : mode -> string

val pp_op : op -> string

val pp_range : Range.t -> string

val pp_ranges : Range.t list -> string

val pp : program -> string
(** Multi-line rendering for diagnostics and tests. *)
