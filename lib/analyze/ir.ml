(* The EC-IR: an entry-consistency program as data.

   A program is a grid of per-processor operation sequences grouped into
   barrier-separated *rounds*: every processor finishes its round-[r]
   sequence and crosses the (implicit) round barrier before any
   processor starts round [r+1].  Within a round the per-processor
   sequences interleave arbitrarily — that interleaving freedom is
   exactly what the static analyzer reasons about.

   The IR deliberately mirrors the observable surface of the simulator's
   runtime (acquire / release / rebind / typed loads and stores /
   private stores) rather than its implementation, so the same program
   can be executed dynamically under ECSan and analyzed statically, and
   the two verdicts compared. *)

module Range = Midway_check.Range

type mode = Shared | Exclusive

type op =
  | Acquire of { lock : int; mode : mode }
  | Release of int
  | Read of Range.t  (* a load from shared memory, byte-granular *)
  | Write of Range.t  (* a store to shared memory *)
  | Write_private of Range.t  (* a store through the uninstrumented path *)
  | Rebind of { lock : int; ranges : Range.t list }
  | Work of int  (* local compute; no shared-memory effect *)

type program = {
  name : string;
  nprocs : int;
  locks : (int * Range.t list) list;  (* id, initial binding *)
  barriers : (int * Range.t list) list;  (* id, binding (fixed) *)
  rounds : op list array array;  (* rounds.(r).(p) = proc p's ops in round r *)
}

let mode_name = function Shared -> "shared" | Exclusive -> "exclusive"

let pp_range r = Printf.sprintf "[%#x,%#x)" r.Range.addr (Range.limit r)

let pp_ranges rs = String.concat "+" (List.map pp_range rs)

let pp_op = function
  | Acquire { lock; mode } -> Printf.sprintf "acquire(%d,%s)" lock (mode_name mode)
  | Release l -> Printf.sprintf "release(%d)" l
  | Read r -> Printf.sprintf "read%s" (pp_range r)
  | Write r -> Printf.sprintf "write%s" (pp_range r)
  | Write_private r -> Printf.sprintf "write_private%s" (pp_range r)
  | Rebind { lock; ranges } -> Printf.sprintf "rebind(%d,%s)" lock (pp_ranges ranges)
  | Work n -> Printf.sprintf "work(%d)" n

(* Structural sanity: the dataflow passes are robust to unbalanced
   acquire/release (they model it), but references to sync ids that the
   program never declares, or a ragged round grid, are authoring bugs
   worth rejecting up front. *)
let validate p =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  if p.nprocs <= 0 then err "nprocs must be positive (got %d)" p.nprocs;
  let ids = List.map fst p.locks @ List.map fst p.barriers in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun id ->
      if Hashtbl.mem seen id then err "sync id %d declared twice" id;
      Hashtbl.replace seen id ())
    ids;
  let known_lock id = List.mem_assoc id p.locks in
  Array.iteri
    (fun r procs ->
      if Array.length procs <> p.nprocs then
        err "round %d has %d processor slots, expected %d" r (Array.length procs) p.nprocs;
      Array.iteri
        (fun proc ops ->
          List.iter
            (fun op ->
              match op with
              | Acquire { lock; _ } | Release lock | Rebind { lock; _ } ->
                  if not (known_lock lock) then
                    err "round %d p%d: %s references undeclared lock %d" r proc (pp_op op) lock
              | Read _ | Write _ | Write_private _ | Work _ -> ())
            ops)
        procs)
    p.rounds;
  List.rev !errs

let pp p =
  let b = Buffer.create 256 in
  Printf.bprintf b "program %S  nprocs=%d\n" p.name p.nprocs;
  List.iter (fun (id, rs) -> Printf.bprintf b "  lock %d binds %s\n" id (pp_ranges rs)) p.locks;
  List.iter
    (fun (id, rs) ->
      Printf.bprintf b "  barrier %d binds %s\n" id
        (if rs = [] then "(nothing)" else pp_ranges rs))
    p.barriers;
  Array.iteri
    (fun r procs ->
      Printf.bprintf b "  round %d:\n" r;
      Array.iteri
        (fun proc ops ->
          Printf.bprintf b "    p%d: %s\n" proc (String.concat "; " (List.map pp_op ops)))
        procs)
    p.rounds;
  Buffer.contents b
