(* ECLint: static entry-consistency analysis over the EC-IR.

   Three passes over one walk of the program grid:

   1. A flow-sensitive lockset / binding-coverage dataflow.  Per
      processor, per round, every shared access is checked against the
      bindings the processor can be *sure* cover it (held locks whose
      binding cannot change under it, plus barrier bindings).  Bytes
      that are not surely covered join the may-race set, classified onto
      the same diagnostic classes ECSan uses dynamically — so a static
      verdict and a dynamic one can be compared word for word.

   2. A static lock-order graph.  Acquiring L2 while holding L1 records
      the edge L1 -> L2, tagged with the acquisition path; a cycle whose
      witness edges come from one round and at least two processors is a
      potential deadlock.

   3. Binding hygiene: overlapping lock bindings, degenerate (empty)
      ranges, bindings never written by anyone, and rebinds performed
      without exclusive ownership.

   Soundness contract (checked by the test suite): every diagnosis
   ECSan can produce on some schedule of a program appears in the
   static may-race set, by class (and by sync object when both name
   one).  The converse does not hold — the static set may contain
   warnings no schedule realizes; the schedule explorer is used to
   confirm or refute those. *)

module Range = Midway_check.Range
module Diag = Midway_check.Diag

type hygiene =
  | Overlapping_bindings
  | Degenerate_binding
  | Never_written_binding
  | Rebind_without_exclusive_hold

type cls = May_race of Diag.cls | Lock_cycle | Hygiene of hygiene

type finding = {
  cls : cls;
  procs : int list;
  sync : int;
  lo : int;
  hi : int;
  round : int;
  count : int;
  detail : string;
  witness : string list;
}

type report = {
  program : string;
  nprocs : int;
  warnings : finding list;
  lints : finding list;
}

let hygiene_slug = function
  | Overlapping_bindings -> "overlapping-bindings"
  | Degenerate_binding -> "degenerate-binding"
  | Never_written_binding -> "never-written-binding"
  | Rebind_without_exclusive_hold -> "rebind-without-exclusive-hold"

let class_slug = function
  | May_race d -> Diag.class_name d
  | Lock_cycle -> "lock-cycle"
  | Hygiene h -> hygiene_slug h

let is_warning = function May_race _ | Lock_cycle -> true | Hygiene _ -> false

(* ------------------------------------------------------------------ *)
(* Deduplicating accumulator                                           *)
(* ------------------------------------------------------------------ *)

type acc = {
  a_cls : cls;
  a_sync : int;
  mutable a_procs : int list;
  mutable a_lo : int;
  mutable a_hi : int;
  mutable a_round : int;
  mutable a_count : int;
  a_detail : string;
  mutable a_witness : string list;  (* reversed *)
}

type emitter = {
  tbl : (string, acc) Hashtbl.t;
  mutable order : acc list;  (* reversed insertion order *)
}

let new_emitter () = { tbl = Hashtbl.create 16; order = [] }

let emit e ~cls ?(extra = "") ~procs ~sync ~round ?(ranges = []) ~detail ?wit () =
  let key = Printf.sprintf "%s/%d/%s" (class_slug cls) sync extra in
  let a =
    match Hashtbl.find_opt e.tbl key with
    | Some a -> a
    | None ->
        let a =
          {
            a_cls = cls;
            a_sync = sync;
            a_procs = [];
            a_lo = max_int;
            a_hi = min_int;
            a_round = max_int;
            a_count = 0;
            a_detail = detail;
            a_witness = [];
          }
        in
        Hashtbl.replace e.tbl key a;
        e.order <- a :: e.order;
        a
  in
  a.a_count <- a.a_count + 1;
  a.a_procs <- List.sort_uniq compare (procs @ a.a_procs);
  if round < a.a_round then a.a_round <- round;
  List.iter
    (fun r ->
      if not (Range.is_empty r) then begin
        if r.Range.addr < a.a_lo then a.a_lo <- r.Range.addr;
        if Range.limit r > a.a_hi then a.a_hi <- Range.limit r
      end)
    ranges;
  match wit with
  | Some w when List.length a.a_witness < 8 && not (List.mem w a.a_witness) ->
      a.a_witness <- w :: a.a_witness
  | _ -> ()

let findings_of e =
  List.rev_map
    (fun a ->
      {
        cls = a.a_cls;
        procs = a.a_procs;
        sync = a.a_sync;
        lo = (if a.a_lo = max_int then 0 else a.a_lo);
        hi = (if a.a_hi = min_int then 0 else a.a_hi);
        round = (if a.a_round = max_int then -1 else a.a_round);
        count = a.a_count;
        detail = a.a_detail;
        witness = List.rev a.a_witness;
      })
    e.order

(* ------------------------------------------------------------------ *)
(* The analysis                                                        *)
(* ------------------------------------------------------------------ *)

let norm rs = Range.normalize rs

let inter_all = function [] -> [] | v :: vs -> List.fold_left Range.inter v vs

let union_all vs = List.fold_left Range.union [] vs

let analyze (p : Ir.program) : report =
  (match Ir.validate p with
  | [] -> ()
  | e :: _ -> invalid_arg ("Analyze.analyze: malformed program: " ^ e));
  let e = new_emitter () in
  let nr = Array.length p.rounds in
  let nprocs = p.nprocs in
  let locks = List.map (fun (id, rs) -> (id, norm rs)) p.locks in
  let barriers = List.map (fun (id, rs) -> (id, norm rs)) p.barriers in
  let barrier_cover = union_all (List.map snd barriers) in

  (* --- pre-scan: per-round per-proc access footprints ---------------- *)
  let reads = Array.make_matrix nr nprocs [] in
  let writes = Array.make_matrix nr nprocs [] in
  let privs = Array.make_matrix nr nprocs [] in
  Array.iteri
    (fun r procs ->
      Array.iteri
        (fun proc ops ->
          List.iter
            (fun op ->
              match op with
              | Ir.Read rg -> reads.(r).(proc) <- rg :: reads.(r).(proc)
              | Ir.Write rg -> writes.(r).(proc) <- rg :: writes.(r).(proc)
              | Ir.Write_private rg -> privs.(r).(proc) <- rg :: privs.(r).(proc)
              | Ir.Acquire _ | Ir.Release _ | Ir.Rebind _ | Ir.Work _ -> ())
            ops;
          reads.(r).(proc) <- norm reads.(r).(proc);
          writes.(r).(proc) <- norm writes.(r).(proc);
          privs.(r).(proc) <- norm privs.(r).(proc))
        procs)
    p.rounds;
  (* Cumulative views up to and including round [r]: what has been
     written by anyone, and what each processor has touched.  Barriers
     order rounds, so accesses in later rounds cannot precede an access
     in round [r]; same-round accesses can. *)
  let touched_upto = Array.make_matrix nr nprocs [] in
  let written_upto = Array.make nr [] in
  for r = 0 to nr - 1 do
    for q = 0 to nprocs - 1 do
      let prev = if r = 0 then [] else touched_upto.(r - 1).(q) in
      touched_upto.(r).(q) <- Range.union prev (Range.union reads.(r).(q) writes.(r).(q))
    done;
    let prev = if r = 0 then [] else written_upto.(r - 1) in
    written_upto.(r) <- Range.union prev (union_all (Array.to_list writes.(r)))
  done;
  let touched_by_other ~proc r =
    let acc = ref [] in
    for q = 0 to nprocs - 1 do
      if q <> proc then acc := Range.union !acc touched_upto.(r).(q)
    done;
    !acc
  in
  let all_written = if nr = 0 then [] else written_upto.(nr - 1) in

  (* --- hygiene: declared bindings ------------------------------------ *)
  let check_degenerate ~sync ~round raw =
    List.iter
      (fun rg ->
        if Range.is_empty rg then
          emit e ~cls:(Hygiene Degenerate_binding) ~procs:[] ~sync ~round
            ~detail:
              (Printf.sprintf "sync %d binds a zero-length range at %#x" sync rg.Range.addr)
            ())
      raw
  in
  List.iter (fun (id, raw) -> check_degenerate ~sync:id ~round:(-1) raw) p.locks;
  List.iter (fun (id, raw) -> check_degenerate ~sync:id ~round:(-1) raw) p.barriers;
  let rec overlap_pairs = function
    | [] -> ()
    | (ida, ba) :: rest ->
        List.iter
          (fun (idb, bb) ->
            match Range.inter ba bb with
            | [] -> ()
            | o ->
                emit e
                  ~cls:(Hygiene Overlapping_bindings)
                  ~extra:(Printf.sprintf "%d-%d" ida idb)
                  ~procs:[] ~sync:ida ~round:(-1) ~ranges:o
                  ~detail:
                    (Printf.sprintf "locks %d and %d both bind %s" ida idb (Ir.pp_ranges o))
                  ())
          rest;
        overlap_pairs rest
  in
  overlap_pairs locks;

  (* --- the walk ------------------------------------------------------- *)
  (* Binding state per lock: the carried-in binding at round start, the
     set of versions that may be in effect during the round (carry-in
     plus every rebind target of the round), and the bytes ever bound. *)
  let carry = Hashtbl.create 8 in
  let ever = Hashtbl.create 8 in
  List.iter
    (fun (id, b) ->
      Hashtbl.replace carry id b;
      Hashtbl.replace ever id b)
    locks;
  (* held state persists across rounds (a lock may be held across a
     barrier); own_version tracks a rebind the holder itself performed,
     which it — alone — can rely on until release. *)
  let held = Array.make nprocs [] in
  let own_version = Array.make nprocs [] in
  (* lock-order edges, per round: (from, to) -> witnesses (proc, text) *)
  let priv_events = ref [] in  (* (proc, round, ranges) *)
  let unbound_events = ref [] in  (* (proc, round, ranges, writing) *)
  for r = 0 to nr - 1 do
    (* versions in effect during this round *)
    let round_rebinds = Hashtbl.create 4 in
    Array.iter
      (fun ops ->
        List.iter
          (fun op ->
            match op with
            | Ir.Rebind { lock; ranges } ->
                let prev = Option.value (Hashtbl.find_opt round_rebinds lock) ~default:[] in
                Hashtbl.replace round_rebinds lock (prev @ [ norm ranges ])
            | _ -> ())
          ops)
      p.rounds.(r);
    let versions id =
      let base = Option.value (Hashtbl.find_opt carry id) ~default:[] in
      base :: Option.value (Hashtbl.find_opt round_rebinds id) ~default:[]
    in
    let cur_inter = List.map (fun (id, _) -> (id, inter_all (versions id))) locks in
    let cur_union = List.map (fun (id, _) -> (id, union_all (versions id))) locks in
    let ever_before = List.map (fun (id, _) -> (id, Hashtbl.find ever id)) locks in
    (* bytes that may be observed retired from lock [id] this round *)
    let may_retired =
      List.map
        (fun (id, ev) ->
          (id, Range.subtract_list ev ~minus:(List.assoc id cur_inter)))
        ever_before
    in
    let sure_binding ~proc id =
      match List.assoc_opt id own_version.(proc) with
      | Some v -> v
      | None -> List.assoc id cur_inter
    in
    let edges = Hashtbl.create 8 in
    let barrier_writes = Hashtbl.create 4 in  (* barrier id -> (proc, ranges) list *)

    (* classify the uncovered bytes of one access *)
    let classify ~proc ~verb ~writing uncovered =
      if uncovered <> [] then begin
        let remaining = ref uncovered in
        List.iter
          (fun (id, ret) ->
            match Range.inter uncovered ret with
            | [] -> ()
            | stale ->
                remaining := Range.subtract_list !remaining ~minus:stale;
                emit e
                  ~cls:(May_race Diag.Stale_binding_access)
                  ~procs:[ proc ] ~sync:id ~round:r ~ranges:stale
                  ~detail:
                    (Printf.sprintf "p%d may %s data that lock %d no longer binds (rebound away)"
                       proc verb id)
                  ())
          may_retired;
        (* bound to a lock the processor does not hold (including the
           ambiguous bytes a same-round rebind may retire) *)
        List.iter
          (fun (id, cu) ->
            match Range.inter uncovered cu with
            | [] -> ()
            | bound ->
                remaining := Range.subtract_list !remaining ~minus:bound;
                emit e
                  ~cls:(May_race Diag.Unsynchronized_access)
                  ~procs:[ proc ] ~sync:id ~round:r ~ranges:bound
                  ~detail:
                    (Printf.sprintf "p%d may %s %s bound to lock %d without holding it" proc verb
                       (Ir.pp_ranges bound) id)
                  ())
          cur_union;
        (* formerly bound, no current binding *)
        let ever_any = union_all (List.map snd ever_before) in
        (match Range.inter !remaining ever_any with
        | [] -> ()
        | formerly ->
            remaining := Range.subtract_list !remaining ~minus:formerly;
            emit e
              ~cls:(May_race Diag.Unsynchronized_access)
              ~procs:[ proc ] ~sync:(-1) ~round:r ~ranges:formerly
              ~detail:
                (Printf.sprintf "p%d may %s formerly-bound data with no current binding" proc verb)
              ());
        (* never bound: aggregate program-wide, conflicts decided later *)
        if !remaining <> [] then
          unbound_events := (proc, r, !remaining, writing) :: !unbound_events
      end
    in

    Array.iteri
      (fun proc ops ->
        List.iter
          (fun op ->
            match op with
            | Ir.Work _ -> ()
            | Ir.Acquire { lock; mode } ->
                List.iter
                  (fun (h, _) ->
                    if h <> lock then begin
                      let wit =
                        Printf.sprintf "p%d round %d: holds {%s}, acquires %d" proc r
                          (String.concat "," (List.rev_map (fun (l, _) -> string_of_int l)
                                                held.(proc)))
                          lock
                      in
                      let prev =
                        Option.value (Hashtbl.find_opt edges (h, lock)) ~default:[]
                      in
                      Hashtbl.replace edges (h, lock) (prev @ [ (proc, wit) ])
                    end)
                  held.(proc);
                if not (List.mem_assoc lock held.(proc)) then
                  held.(proc) <- (lock, mode) :: held.(proc)
                else if mode = Ir.Exclusive then
                  held.(proc) <-
                    List.map (fun (l, m) -> if l = lock then (l, Ir.Exclusive) else (l, m))
                      held.(proc)
            | Ir.Release lock ->
                held.(proc) <- List.remove_assoc lock held.(proc);
                own_version.(proc) <- List.remove_assoc lock own_version.(proc)
            | Ir.Rebind { lock; ranges } ->
                check_degenerate ~sync:lock ~round:r ranges;
                (match List.assoc_opt lock held.(proc) with
                | Some Ir.Exclusive -> ()
                | held_how ->
                    emit e
                      ~cls:(Hygiene Rebind_without_exclusive_hold)
                      ~procs:[ proc ] ~sync:lock ~round:r ~ranges:(norm ranges)
                      ~detail:
                        (Printf.sprintf "p%d rebinds lock %d %s" proc lock
                           (match held_how with
                           | None -> "without holding it"
                           | Some _ -> "while holding it only in shared mode"))
                      ());
                own_version.(proc) <-
                  (lock, norm ranges) :: List.remove_assoc lock own_version.(proc)
            | Ir.Read rg ->
                let rg = norm [ rg ] in
                let covered =
                  union_all
                    (barrier_cover
                    :: List.map (fun (l, _) -> sure_binding ~proc l) held.(proc))
                in
                let uncovered = Range.subtract_list rg ~minus:covered in
                (* a read races only with a write another processor may
                   have performed (same or earlier round) *)
                let conflict =
                  Range.inter
                    (Range.inter uncovered written_upto.(r))
                    (touched_by_other ~proc r)
                in
                classify ~proc ~verb:"read" ~writing:false conflict
            | Ir.Write rg ->
                let rg = norm [ rg ] in
                List.iter
                  (fun (b, bb) ->
                    match Range.inter rg bb with
                    | [] -> ()
                    | hit ->
                        let prev =
                          Option.value (Hashtbl.find_opt barrier_writes b) ~default:[]
                        in
                        Hashtbl.replace barrier_writes b (prev @ [ (proc, hit) ]))
                  barriers;
                let excl_cover =
                  union_all
                    (List.filter_map
                       (fun (l, m) ->
                         if m = Ir.Exclusive then Some (sure_binding ~proc l) else None)
                       held.(proc))
                in
                let left = Range.subtract_list rg ~minus:excl_cover in
                let left =
                  List.fold_left
                    (fun left (l, m) ->
                      if m <> Ir.Shared then left
                      else
                        match Range.inter left (sure_binding ~proc l) with
                        | [] -> left
                        | shared_hit ->
                            emit e
                              ~cls:(May_race Diag.Write_under_shared_hold)
                              ~procs:[ proc ] ~sync:l ~round:r ~ranges:shared_hit
                              ~detail:
                                (Printf.sprintf
                                   "p%d writes %s bound to lock %d while holding it in shared \
                                    (read) mode"
                                   proc (Ir.pp_ranges shared_hit) l)
                              ();
                            Range.subtract_list left ~minus:shared_hit)
                    left held.(proc)
                in
                let uncovered = Range.subtract_list left ~minus:barrier_cover in
                classify ~proc ~verb:"write" ~writing:true uncovered
            | Ir.Write_private rg -> priv_events := (proc, r, norm [ rg ]) :: !priv_events)
          ops)
      p.rounds.(r);

    (* same-round conflicting writes to barrier-bound data: the slot
       arriving later at the crossing silently wins *)
    List.iter
      (fun (b, _) ->
        let ws = Option.value (Hashtbl.find_opt barrier_writes b) ~default:[] in
        let rec pairs = function
          | [] -> ()
          | (pa, ra) :: rest ->
              List.iter
                (fun (pb, rb) ->
                  if pa <> pb then
                    match Range.inter ra rb with
                    | [] -> ()
                    | o ->
                        emit e
                          ~cls:(May_race Diag.Unsynchronized_access)
                          ~procs:[ pa; pb ] ~sync:b ~round:r ~ranges:o
                          ~detail:
                            (Printf.sprintf
                               "p%d and p%d may both write barrier %d's bound data %s in the \
                                same round (one update is lost at the merge)"
                               (min pa pb) (max pa pb) b (Ir.pp_ranges o))
                          ())
                rest;
              pairs rest
        in
        pairs ws)
      barriers;

    (* lock-order cycles among this round's edges *)
    let nodes =
      List.sort_uniq compare (Hashtbl.fold (fun (a, b) _ acc -> a :: b :: acc) edges [])
    in
    let succs n = List.filter (fun m -> Hashtbl.mem edges (n, m)) nodes in
    let report_cycle cycle =
      (* cycle = [n0; n1; ...; nk] with an implicit edge nk -> n0 *)
      let edge_list =
        let rec go = function
          | a :: (b :: _ as rest) -> (a, b) :: go rest
          | [ last ] -> [ (last, List.hd cycle) ]
          | [] -> []
        in
        go cycle
      in
      let wits = List.concat_map (fun ed -> Hashtbl.find edges ed) edge_list in
      let procs = List.sort_uniq compare (List.map fst wits) in
      if List.length procs >= 2 then
        emit e ~cls:Lock_cycle
          ~extra:(String.concat "-" (List.map string_of_int cycle))
          ~procs ~sync:(List.hd cycle) ~round:r
          ~detail:
            (Printf.sprintf "potential deadlock: lock %s -> %s"
               (String.concat " -> lock " (List.map string_of_int cycle))
               (string_of_int (List.hd cycle)))
          ~wit:(String.concat "; " (List.map snd wits))
          ()
    in
    let rec dfs start path n =
      List.iter
        (fun m ->
          if m = start then report_cycle (List.rev path)
          else if m > start && not (List.mem m path) then dfs start (m :: path) m)
        (succs n)
    in
    List.iter (fun s -> dfs s [ s ] s) nodes;

    (* round epilogue: advance binding state *)
    List.iter
      (fun (id, _) ->
        (match Hashtbl.find_opt round_rebinds id with
        | Some (_ :: _ as targets) ->
            Hashtbl.replace carry id (List.nth targets (List.length targets - 1))
        | _ -> ());
        Hashtbl.replace ever id
          (Range.union (Hashtbl.find ever id) (List.assoc id cur_union)))
      locks
  done;

  (* --- program-wide classifications ----------------------------------- *)
  (* unbound shared data: a conflict needs two processors and a write *)
  let unbound = List.rev !unbound_events in
  List.iter
    (fun (pa, ra, rga, wa) ->
      List.iter
        (fun (pb, rb, rgb, wb) ->
          (* each unordered distinct-processor pair once, writer required *)
          if pa < pb && (wa || wb) then
            match Range.inter rga rgb with
              | [] -> ()
              | o ->
                  emit e
                    ~cls:(May_race Diag.Unbound_shared_data)
                    ~procs:[ pa; pb ] ~sync:(-1) ~round:(min ra rb) ~ranges:o
                    ~detail:
                      (Printf.sprintf
                         "shared data %s touched by p%d and p%d but never bound to any lock or \
                          barrier"
                         (Ir.pp_ranges o) (min pa pb) (max pa pb))
                    ())
        unbound)
    unbound;
  (* private stores later read by another processor *)
  List.iter
    (fun (proc, r, rg) ->
      for q = 0 to nprocs - 1 do
        if q <> proc then
          for r' = r to nr - 1 do
            match Range.inter rg reads.(r').(q) with
            | [] -> ()
            | o ->
                emit e
                  ~cls:(May_race Diag.Misclassified_private_store)
                  ~procs:[ proc; q ] ~sync:(-1) ~round:r ~ranges:o
                  ~detail:
                    (Printf.sprintf
                       "p%d stores %s through write_*_private but p%d reads the data (the store \
                        needed instrumentation)"
                       proc (Ir.pp_ranges o) q)
                  ()
          done
      done)
    (List.rev !priv_events);
  (* bindings nobody ever writes *)
  List.iter
    (fun (id, b) ->
      if b <> [] && Range.inter b all_written = [] then
        emit e
          ~cls:(Hygiene Never_written_binding)
          ~procs:[] ~sync:id ~round:(-1) ~ranges:b
          ~detail:
            (Printf.sprintf "sync %d binds %s but no processor ever writes it" id
               (Ir.pp_ranges b))
          ())
    (locks @ barriers);

  let all = findings_of e in
  let warnings, lints = List.partition (fun f -> is_warning f.cls) all in
  { program = p.name; nprocs; warnings; lints }

(* ------------------------------------------------------------------ *)
(* Queries and rendering                                               *)
(* ------------------------------------------------------------------ *)

let predicts report ~cls ~sync =
  List.exists
    (fun f ->
      match f.cls with
      | May_race d -> d = cls && (sync < 0 || f.sync < 0 || f.sync = sync)
      | Lock_cycle | Hygiene _ -> false)
    report.warnings

let cycles report = List.filter (fun f -> f.cls = Lock_cycle) report.warnings

let may_races report =
  List.filter (fun f -> match f.cls with May_race _ -> true | _ -> false) report.warnings

let render_finding f =
  let where =
    if f.hi > f.lo then Printf.sprintf " [%#x,%#x)" f.lo f.hi
    else ""
  in
  let round = if f.round >= 0 then Printf.sprintf " (round %d)" f.round else "" in
  let base = Printf.sprintf "  [%s]%s%s %s" (class_slug f.cls) where round f.detail in
  match f.witness with
  | [] -> base
  | ws -> base ^ "\n" ^ String.concat "\n" (List.map (fun w -> "      " ^ w) ws)

let render report =
  let b = Buffer.create 256 in
  Printf.bprintf b "eclint %S (nprocs=%d): %d warning%s, %d lint%s\n" report.program
    report.nprocs (List.length report.warnings)
    (if List.length report.warnings = 1 then "" else "s")
    (List.length report.lints)
    (if List.length report.lints = 1 then "" else "s");
  List.iter (fun f -> Buffer.add_string b (render_finding f ^ "\n")) report.warnings;
  List.iter (fun f -> Buffer.add_string b (render_finding f ^ "\n")) report.lints;
  Buffer.contents b
