(** ECLint: static entry-consistency analysis over the EC-IR.

    Three passes:

    + a flow-sensitive lockset / binding-coverage dataflow computing the
      {e may-race set}, classified onto the same diagnostic classes
      ECSan uses dynamically ({!Midway_check.Diag.cls});
    + a static lock-order graph with per-round cycle detection reporting
      potential deadlocks with witness acquisition paths;
    + binding-hygiene lints.

    Soundness contract (checked by the test suite): every diagnosis
    ECSan can produce on {e some} schedule of a program appears in the
    static may-race set, by class (and by sync object when both name
    one).  The converse does not hold — static warnings may be
    unrealizable; the schedule explorer confirms or refutes them. *)

type hygiene =
  | Overlapping_bindings  (** a range bound to two different locks *)
  | Degenerate_binding  (** an empty range in a binding list *)
  | Never_written_binding  (** bound data no processor ever writes *)
  | Rebind_without_exclusive_hold
      (** a [Rebind] issued without exclusive ownership of the lock *)

type cls =
  | May_race of Midway_check.Diag.cls
      (** a statically possible dynamic diagnosis, same class space *)
  | Lock_cycle  (** a cycle in the static lock-order graph *)
  | Hygiene of hygiene

type finding = {
  cls : cls;
  procs : int list;  (** implicated processors, sorted (may be empty) *)
  sync : int;  (** implicated lock/barrier id, [-1] if none *)
  lo : int;  (** address hull over deduplicated occurrences; [0,0] if n/a *)
  hi : int;
  round : int;  (** first implicated round, [-1] for whole-program findings *)
  count : int;  (** occurrences folded into this record *)
  detail : string;
  witness : string list;  (** e.g. acquisition paths for a lock cycle *)
}

type report = {
  program : string;
  nprocs : int;
  warnings : finding list;  (** may-races and lock cycles, deterministic order *)
  lints : finding list;  (** hygiene findings *)
}

val analyze : Ir.program -> report
(** Raises [Invalid_argument] if {!Ir.validate} rejects the program. *)

val class_slug : cls -> string
(** Stable short slug; [May_race d] reuses ECSan's
    {!Midway_check.Diag.class_name} so static and dynamic verdicts
    compare by string. *)

val hygiene_slug : hygiene -> string

val is_warning : cls -> bool

val predicts : report -> cls:Midway_check.Diag.cls -> sync:int -> bool
(** Does the static may-race set cover a dynamic diagnosis of this
    class?  Sync objects are compared only when both sides name one
    (both [>= 0]). *)

val cycles : report -> finding list

val may_races : report -> finding list

val render_finding : finding -> string

val render : report -> string
