type run = { off : int; len : int }

let word_size = 4

(* Does the word at [opos]/[npos] differ?  Full words compare with one
   32-bit load per buffer; a range tail shorter than a word falls back to
   bytes.  Exactly equivalent to a byte-by-byte comparison. *)
let words_differ old_ opos new_ npos len =
  if len = word_size then Bytes.get_int32_le old_ opos <> Bytes.get_int32_le new_ npos
  else
    let rec go i =
      i < len
      && (Bytes.unsafe_get old_ (opos + i) <> Bytes.unsafe_get new_ (npos + i) || go (i + 1))
    in
    go 0

(* Core scan: compare [len] bytes starting at [old_off] in [old_] and
   [new_off] in [new_]; run offsets are reported relative to [run_base]
   plus the position within the scanned window. *)
let scan_runs ~old_ ~old_off ~new_ ~new_off ~len ~run_base =
  let runs = ref [] in
  let transitions = ref 0 in
  let run_start = ref (-1) in
  let prev_modified = ref false in
  let i = ref 0 in
  let finish_at p =
    if !run_start >= 0 then begin
      runs := { off = run_base + !run_start; len = p - !run_start } :: !runs;
      run_start := -1
    end
  in
  while !i < len do
    let wlen = min word_size (len - !i) in
    let modified = words_differ old_ (old_off + !i) new_ (new_off + !i) wlen in
    if modified <> !prev_modified && !i > 0 then incr transitions;
    if modified && !run_start < 0 then run_start := !i;
    if not modified then finish_at !i;
    prev_modified := modified;
    i := !i + wlen
  done;
  finish_at len;
  (List.rev !runs, !transitions)

let diff ~old_ ~new_ ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length old_ || off + len > Bytes.length new_
  then invalid_arg "Diff.diff: range out of bounds";
  scan_runs ~old_ ~old_off:off ~new_ ~new_off:off ~len ~run_base:off

let diff_between ~old_ ~old_off ~new_ ~new_off ~len =
  if
    old_off < 0 || new_off < 0 || len < 0
    || old_off + len > Bytes.length old_
    || new_off + len > Bytes.length new_
  then invalid_arg "Diff.diff_between: range out of bounds";
  scan_runs ~old_ ~old_off ~new_ ~new_off ~len ~run_base:0

let runs_bytes runs = List.fold_left (fun acc r -> acc + r.len) 0 runs

let apply ~src ~dst runs =
  List.iter (fun r -> Bytes.blit src r.off dst r.off r.len) runs

let apply_to ~src ~dst ~src_off ~dst_off runs =
  List.iter (fun r -> Bytes.blit src (src_off + r.off) dst (dst_off + r.off) r.len) runs
