(** Word-granularity page diffing.

    VM-DSM compares a dirty page against its twin to produce a *diff*: a
    succinct description of the modified words (paper, section 3.4).  A
    diff is a list of runs of contiguous modified 32-bit words.  The cost
    model needs the number of modified/unmodified *transitions* across the
    scan, since the measured diff cost ranges from 260 us (uniform page)
    to 1,870 us (every other word changed). *)

type run = { off : int; len : int }
(** A run of modified bytes at byte offset [off] (word aligned, length a
    multiple of the word size except possibly at a range tail). *)

val word_size : int
(** 4 bytes, as on the MIPS R3000. *)

val diff : old_:Bytes.t -> new_:Bytes.t -> off:int -> len:int -> run list * int
(** [diff ~old_ ~new_ ~off ~len] scans the byte range [off, off+len) of
    both buffers and returns the modified runs (offsets relative to the
    buffer) in increasing order, plus the number of transitions between
    modified and unmodified words.  Both buffers must be at least
    [off+len] long. *)

val diff_between :
  old_:Bytes.t -> old_off:int -> new_:Bytes.t -> new_off:int -> len:int -> run list * int
(** Like {!diff} but the compared windows start at independent offsets in
    the two buffers, and run offsets are reported relative to the start
    of the window (0-based).  Lets the caller diff a page twin against a
    zero-copy view of live memory without first copying the page. *)

val runs_bytes : run list -> int
(** Total modified bytes described by a diff. *)

val apply : src:Bytes.t -> dst:Bytes.t -> run list -> unit
(** Copy each run from [src] into [dst] (same offsets). *)

val apply_to : src:Bytes.t -> dst:Bytes.t -> src_off:int -> dst_off:int -> run list -> unit
(** Like {!apply} with a relocation: each run offset is interpreted
    relative to [src_off] in [src] and [dst_off] in [dst]. *)
