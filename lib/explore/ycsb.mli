(** A YCSB-style open-loop workload generator for the sharded KV store.

    Pure and seeded: {!client_stream} is a function of the configuration
    and client id only, so the same seed yields bit-identical request
    streams on every run and every backend.  Key popularity uses Gray et
    al.'s incremental zipfian sampler (YCSB's own), operation mixes are
    apportioned {e exactly} over the finite stream (largest-remainder,
    then a seeded shuffle), and arrivals are open-loop: the schedule is
    fixed up front, so a slow server makes requests late rather than
    sparse — latency measured against the schedule is free of
    coordinated omission. *)

type dist =
  | Uniform
  | Zipfian of float
      (** rank-ordered with skew [theta] in (0, 1): key 0 hottest *)
  | Scrambled_zipfian of float
      (** zipfian ranks hashed across the keyspace *)

type arrival =
  | Closed  (** no schedule — each request issues when the previous completes *)
  | Fixed of int  (** deterministic inter-arrival, ns *)
  | Poisson of int  (** exponential inter-arrival with the given mean, ns *)

type mix = { w_get : int; w_put : int; w_delete : int; w_scan : int }

val mix_a : mix  (** 50% get / 50% put — YCSB A *)

val mix_b : mix  (** 95% get / 5% put — YCSB B *)

val mix_c : mix  (** read-only — YCSB C *)

val mix_e : mix  (** 95% scan / 5% put — YCSB E *)

val mix_crud : mix  (** 70/20/5/5 get/put/delete/scan *)

val mix_name : mix -> string

type op = Get of int | Put of int * int | Delete of int | Scan of int * int

type req = {
  r_idx : int;
  r_sched_ns : int;  (** scheduled arrival; [-1] under {!Closed} *)
  r_op : op;
}

type cfg = {
  keys : int;
  requests : int;  (** per client *)
  mix : mix;
  dist : dist;
  arrival : arrival;
  max_scan : int;  (** scan lengths are uniform in [1, max_scan] *)
  seed : int;
}

val default : cfg

val client_stream : cfg -> client:int -> req array
(** Client [client]'s whole request stream.  Clients derive their
    generators from the parent seed by repeated splits, so streams are
    decoupled: adding a client never disturbs the others'. *)

val apportion : n:int -> int array -> int array
(** Largest-remainder apportionment of [n] slots over the weights; the
    counts always sum to [n], and equal [n*w/Σw] exactly whenever it is
    integral. *)

val zipf_pmf : n:int -> theta:float -> float array
(** The exact zipfian probabilities [P(rank)] the sampler targets — the
    reference distribution for the generator's chi-squared test. *)

val op_kind : op -> string
val render_req : req -> string

val stream_digest : req array -> string
(** Canonical rendering of a whole stream — the cross-run/backend
    identity check. *)
