(** The sharded KV store as a schedule-explorer workload.

    Simulated client processors drive one {!Midway_kv.Kvstore} with
    seeded {!Ycsb} streams — load phase, open-loop client loop with
    optional periodic bucket migrations, final converge — and the
    verdict is the refinement oracle: the run must linearize to the
    centralized dictionary ({!Midway_kv.Kvstore.check}).  Composes with
    every explorer dimension: seeded schedules, message faults, and
    crash plans (the oracle is crash-aware through the journal). *)

type cfg = {
  ycsb : Ycsb.cfg;
  buckets : int;
  service_ns : int;  (** simulated service time inside each critical section *)
  preload : int;  (** keys [0, preload) start present with value [1_000_000 + key] *)
  migrate_every : int;
      (** each client migrates a bucket to itself after every k-th
          request (round-robin over buckets); [0] = never *)
  broken_migration : bool;
      (** migrations drop the presence flags — deterministic,
          ECSan-clean refinement bug (fuzzer prey) *)
}

val default : cfg
(** 64 keys x 8 buckets, 40 requests/client of YCSB A at zipfian 0.99,
    Poisson arrivals, half the keyspace preloaded — small enough for
    schedule exploration. *)

val preload_value : int -> int

val build : Midway.Runtime.t -> cfg -> Midway_kv.Kvstore.t * (Midway.Runtime.ctx -> unit)
(** Allocate the store on the machine and return it with the
    per-processor program (load / run / converge).  The caller runs the
    program and applies {!Midway_kv.Kvstore.check}. *)

val run_stream :
  ?migrate_every:int ->
  ?broken:bool ->
  Midway.Runtime.ctx ->
  Midway_kv.Kvstore.t ->
  Ycsb.req array ->
  unit
(** Execute one client's stream with open-loop pacing against the
    stream's schedule (offset from the current simulated time). *)

val workload : name:string -> ?buggy:bool -> cfg -> Workload.t

val crashy_workload : name:string -> cfg -> Workload.t
(** Unless the configuration already arms crash faults, injects a
    scripted plan killing client 1 early in the run phase.  Needs
    [nprocs >= 3]. *)
