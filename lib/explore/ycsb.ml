(* A YCSB-style open-loop workload generator for the sharded KV store.

   Everything is a pure function of (configuration, client id): the
   request stream, the keys, the values and the arrival schedule all
   derive from one SplitMix64 seed, so the same configuration produces
   the same stream on every run and every backend — the property the
   generator tests pin down.

   Key popularity follows Gray et al.'s incremental zipfian sampler
   (the one YCSB itself uses), optionally scrambled so the hot ranks
   spread across the keyspace instead of clustering at the low keys.
   Operation mixes are exact, not expected: a stream of n requests
   contains precisely the per-kind counts a largest-remainder
   apportionment of the weights gives, shuffled by the client's seeded
   generator.  Arrivals are open-loop — the schedule is fixed up front
   and a slow server makes requests late, not sparse (no coordinated
   omission). *)

module Prng = Midway_util.Prng

type dist =
  | Uniform
  | Zipfian of float  (* rank-ordered: key 0 hottest *)
  | Scrambled_zipfian of float  (* hot ranks hashed across the keyspace *)

type arrival =
  | Closed  (* no schedule: each request issues when the last completes *)
  | Fixed of int  (* deterministic inter-arrival, ns *)
  | Poisson of int  (* exponential inter-arrival with the given mean, ns *)

type mix = { w_get : int; w_put : int; w_delete : int; w_scan : int }

let mix_a = { w_get = 50; w_put = 50; w_delete = 0; w_scan = 0 }
let mix_b = { w_get = 95; w_put = 5; w_delete = 0; w_scan = 0 }
let mix_c = { w_get = 100; w_put = 0; w_delete = 0; w_scan = 0 }
let mix_e = { w_get = 0; w_put = 5; w_delete = 0; w_scan = 95 }
let mix_crud = { w_get = 70; w_put = 20; w_delete = 5; w_scan = 5 }

let mix_name m =
  if m = mix_a then "A" else if m = mix_b then "B" else if m = mix_c then "C"
  else if m = mix_e then "E" else if m = mix_crud then "crud"
  else Printf.sprintf "%d/%d/%d/%d" m.w_get m.w_put m.w_delete m.w_scan

type op =
  | Get of int
  | Put of int * int
  | Delete of int
  | Scan of int * int  (* first key, length *)

type req = { r_idx : int; r_sched_ns : int; r_op : op }

type cfg = {
  keys : int;
  requests : int;  (* per client *)
  mix : mix;
  dist : dist;
  arrival : arrival;
  max_scan : int;  (* scan lengths are uniform in [1, max_scan] *)
  seed : int;
}

let default =
  {
    keys = 256;
    requests = 1_000;
    mix = mix_a;
    dist = Zipfian 0.99;
    arrival = Poisson 2_000;
    max_scan = 16;
    seed = 1;
  }

(* ------------------------------------------------------------------ *)
(* Zipfian sampling (Gray et al., "Quickly generating billion-record
   synthetic databases"): draw a rank in [0, n) with P(r) ~ 1/(r+1)^θ. *)
(* ------------------------------------------------------------------ *)

type zipf = { zn : int; theta : float; alpha : float; zetan : float; eta : float }

let zeta n theta =
  let s = ref 0. in
  for i = 1 to n do
    s := !s +. (1. /. (float_of_int i ** theta))
  done;
  !s

let zipf_make n theta =
  if n < 2 then invalid_arg "Ycsb: zipfian needs at least 2 keys";
  if not (theta > 0. && theta < 1.) then invalid_arg "Ycsb: zipfian theta must be in (0, 1)";
  let zetan = zeta n theta in
  let zeta2 = zeta 2 theta in
  let alpha = 1. /. (1. -. theta) in
  let eta = (1. -. ((2. /. float_of_int n) ** (1. -. theta))) /. (1. -. (zeta2 /. zetan)) in
  { zn = n; theta; alpha; zetan; eta }

let zipf_next z g =
  let u = Prng.float g 1.0 in
  let uz = u *. z.zetan in
  if uz < 1. then 0
  else if uz < 1. +. (0.5 ** z.theta) then 1
  else
    let r = int_of_float (float_of_int z.zn *. (((z.eta *. u) -. z.eta +. 1.) ** z.alpha)) in
    if r >= z.zn then z.zn - 1 else r

let zipf_pmf ~n ~theta =
  let zetan = zeta n theta in
  Array.init n (fun i -> 1. /. (float_of_int (i + 1) ** theta) /. zetan)

(* 64-bit finalizer (SplitMix64's) used to scramble zipfian ranks. *)
let mix64 x =
  let open Int64 in
  let x = logxor x (shift_right_logical x 30) in
  let x = mul x 0xbf58476d1ce4e5b9L in
  let x = logxor x (shift_right_logical x 27) in
  let x = mul x 0x94d049bb133111ebL in
  logxor x (shift_right_logical x 31)

let scramble ~n rank =
  let h = mix64 (Int64.of_int (rank + 1)) in
  Int64.to_int (Int64.rem (Int64.logand h Int64.max_int) (Int64.of_int n))

(* ------------------------------------------------------------------ *)
(* Exact apportionment of a mix over a finite stream                   *)
(* ------------------------------------------------------------------ *)

(* Largest-remainder: per-kind count = floor(n*w/Σw), leftover seats to
   the largest fractional parts (ties to the earlier kind).  For any
   [n] the counts sum to [n] exactly; when Σw divides n each count is
   exactly n*w/Σw — the "mix ratios respected exactly" property. *)
let apportion ~n weights =
  let total = Array.fold_left ( + ) 0 weights in
  if total <= 0 then invalid_arg "Ycsb: mix weights must sum to a positive number";
  let base = Array.map (fun w -> n * w / total) weights in
  let rem = n - Array.fold_left ( + ) 0 base in
  let frac = Array.mapi (fun i w -> (n * w mod total, -i)) weights in
  let order = Array.init (Array.length weights) Fun.id in
  Array.sort (fun a b -> compare frac.(b) frac.(a)) order;
  for s = 0 to rem - 1 do
    base.(order.(s)) <- base.(order.(s)) + 1
  done;
  base

(* ------------------------------------------------------------------ *)
(* Stream generation                                                   *)
(* ------------------------------------------------------------------ *)

(* Per-client generators derive from the parent seed by repeated
   [Prng.split], so distinct clients' streams are decoupled and adding
   a client never disturbs the existing ones. *)
let client_prng ~seed ~client =
  if client < 0 then invalid_arg "Ycsb: client must be >= 0";
  let parent = Prng.create ~seed in
  let g = ref (Prng.split parent) in
  for _ = 1 to client do
    g := Prng.split parent
  done;
  !g

let client_stream cfg ~client =
  if cfg.keys <= 0 then invalid_arg "Ycsb: keys must be > 0";
  if cfg.requests < 0 then invalid_arg "Ycsb: requests must be >= 0";
  if cfg.max_scan <= 0 then invalid_arg "Ycsb: max_scan must be > 0";
  let g = client_prng ~seed:cfg.seed ~client in
  let z =
    match cfg.dist with
    | Uniform -> None
    | Zipfian theta | Scrambled_zipfian theta -> Some (zipf_make cfg.keys theta)
  in
  let next_key () =
    match (cfg.dist, z) with
    | Uniform, _ -> Prng.int g cfg.keys
    | Zipfian _, Some z -> zipf_next z g
    | Scrambled_zipfian _, Some z -> scramble ~n:cfg.keys (zipf_next z g)
    | _ -> assert false
  in
  (* the kind sequence: exact counts, then a seeded shuffle *)
  let counts =
    apportion ~n:cfg.requests [| cfg.mix.w_get; cfg.mix.w_put; cfg.mix.w_delete; cfg.mix.w_scan |]
  in
  let kinds = Array.make cfg.requests 0 in
  let pos = ref 0 in
  Array.iteri
    (fun kind count ->
      for _ = 1 to count do
        kinds.(!pos) <- kind;
        incr pos
      done)
    counts;
  Prng.shuffle g kinds;
  (* the arrival schedule *)
  let clock = ref 0 in
  let next_sched () =
    match cfg.arrival with
    | Closed -> -1
    | Fixed gap ->
        clock := !clock + gap;
        !clock
    | Poisson mean ->
        let u = Prng.float g 1.0 in
        let gap = int_of_float (ceil (-.float_of_int mean *. log (1. -. u))) in
        clock := !clock + max 1 gap;
        !clock
  in
  Array.init cfg.requests (fun i ->
      let sched = next_sched () in
      let op =
        match kinds.(i) with
        | 0 -> Get (next_key ())
        | 1 -> Put (next_key (), 1 + Prng.int g 1_000_000)
        | 2 -> Delete (next_key ())
        | _ ->
            let len = 1 + Prng.int g cfg.max_scan in
            let lo = next_key () in
            Scan (lo, min len (cfg.keys - lo))
      in
      { r_idx = i; r_sched_ns = sched; r_op = op })

let op_kind = function Get _ -> "get" | Put _ -> "put" | Delete _ -> "delete" | Scan _ -> "scan"

let render_op = function
  | Get k -> Printf.sprintf "get %d" k
  | Put (k, v) -> Printf.sprintf "put %d=%d" k v
  | Delete k -> Printf.sprintf "delete %d" k
  | Scan (lo, n) -> Printf.sprintf "scan %d+%d" lo n

let render_req r = Printf.sprintf "@%d #%d %s" r.r_sched_ns r.r_idx (render_op r.r_op)

let stream_digest reqs =
  String.concat "|" (Array.to_list (Array.map render_req reqs))
