(* The schedule explorer: fuzz driver, counterexample shrinking and
   record/replay.

   One fuzzing run sweeps a grid of (workload x backend x schedule
   seed), optionally composed with fault injection (fault schedules x
   thread schedules).  Every run is judged by three independent checks:
   the workload's own sequential oracle, Runtime.check_invariants, and
   (when armed) the ECSan report.  A failing run's recorded tie-break
   choices are shrunk — binary search for the smallest failing prefix,
   then a pointwise zeroing pass — and the result is a counterexample
   that replays from the configuration alone. *)

module Config = Midway.Config
module R = Midway.Runtime
module Crash = Midway_simnet.Crash

(* ------------------------------------------------------------------ *)
(* Executing one run and judging it                                    *)

type judged = {
  j_failed : bool;
  j_reason : string;  (* "" when the run is clean *)
  j_digest : string;
  j_choices : int list option;  (* None when the machine was lost *)
  j_trace : string list;  (* tail of the protocol trace, oldest first *)
}

let trace_tail ?(n = 12) machine =
  let events = Midway.Trace.events (R.trace machine) in
  let len = List.length events in
  let tail = if len > n then List.filteri (fun i _ -> i >= len - n) events else events in
  List.map (fun e -> Format.asprintf "%a" Midway.Trace.pp_event e) tail

(* Judge one execution: oracle, then structural invariants, then ECSan.
   All three verdicts are collected so the report shows every angle of
   a failure, not just the first.  The machine (when the workload kept
   one) rides along so [replay] can export its observability data. *)
let execute_machine (w : Workload.t) cfg =
  let o = w.Workload.run cfg in
  let reasons = ref [] in
  let add r = reasons := r :: !reasons in
  if not o.Workload.ok then
    add
      ("oracle: " ^ (if o.Workload.detail = "" then "verification failed" else o.Workload.detail));
  let choices, trace =
    match o.Workload.machine with
    | None -> (None, [])
    | Some m ->
        (match R.check_invariants m with
        | [] -> ()
        | l when o.Workload.ok ->
            (* invariant violations on an oracle-clean run are protocol
               bugs in their own right *)
            add ("invariants: " ^ String.concat "; " l)
        | _ -> ()  (* a deadlocked/failed run legitimately leaves state held *));
        if cfg.Config.ecsan then begin
          let rep = R.check_report m in
          if Midway_check.Report.has_violations rep then begin
            let lines = String.split_on_char '\n' (Midway_check.Report.render rep) in
            let head = List.filteri (fun i _ -> i < 3) lines in
            add ("ecsan: " ^ String.concat " | " head)
          end
        end;
        (Some (R.schedule_choices m), trace_tail m)
  in
  ( {
      j_failed = !reasons <> [];
      j_reason = String.concat "\n  " (List.rev !reasons);
      j_digest = o.Workload.digest;
      j_choices = choices;
      j_trace = trace;
    },
    o.Workload.machine )

let execute w cfg = fst (execute_machine w cfg)

(* ------------------------------------------------------------------ *)
(* Specifications and configurations                                   *)

type spec = {
  workloads : Workload.t list;
  backends : Config.backend list;
  schedules : int;  (* schedule seeds per (workload, backend) *)
  schedule_seed : int;  (* base seed; run i uses base + i *)
  nprocs : int;
  ecsan : bool;
  adaptive : bool;  (* arm per-region adaptive detection on rt/vm runs *)
  fault_drop : float option;  (* compose fault schedules with thread schedules *)
  fault_seed : int;
  crash_events : int;  (* seeded node-crash episodes per run; 0 = off *)
  crash_seed : int;
  crash_horizon_ns : int;  (* window the seeded episodes land in *)
  crash_plan : Crash.plan option;  (* explicit plan; overrides the seeded dimension *)
  trace_capacity : int;
  max_shrink_runs : int;  (* re-execution budget of one shrink *)
}

let default_spec =
  {
    workloads = [];
    backends = [ Config.Rt; Config.Vm ];
    schedules = 8;
    schedule_seed = 1;
    nprocs = 4;
    ecsan = true;
    adaptive = false;
    fault_drop = None;
    fault_seed = 0x0FA7;
    crash_events = 0;
    crash_seed = 0xC0DE;
    crash_horizon_ns = 2_000_000;
    crash_plan = None;
    trace_capacity = 64;
    max_shrink_runs = 48;
  }

(* The run's fault seed is derived from both spec seed and schedule
   seed, so the fault schedule varies together with the thread schedule
   and the pair is reproducible from the counterexample alone.  The
   crash seed gets the same treatment (with a different mixer so the
   two derived streams never coincide). *)
let effective_fault_seed spec sseed = spec.fault_seed lxor (sseed * 0x9E37)
let effective_crash_seed spec sseed = spec.crash_seed lxor (sseed * 0x6B43)

(* The crash plan for one run: an explicit plan wins; otherwise the
   seeded dimension (when armed) derives one per schedule seed, so
   crash schedules, fault schedules and thread schedules all vary
   together. *)
let crash_plan_for spec sseed =
  match spec.crash_plan with
  | Some _ as p -> p
  | None ->
      if spec.crash_events <= 0 then None
      else
        Some
          (Crash.seeded ~seed:(effective_crash_seed spec sseed) ~nprocs:spec.nprocs
             ~events:spec.crash_events ~horizon_ns:spec.crash_horizon_ns)

(* The adaptive dimension only applies where the controller is legal:
   a machine default of rt or vm (the per-region electable backends). *)
let adaptive_for spec backend =
  spec.adaptive && (backend = Config.Rt || backend = Config.Vm)

let base_config spec backend =
  let cfg = Config.make backend ~nprocs:spec.nprocs in
  {
    cfg with
    Config.ecsan = spec.ecsan;
    adaptive = adaptive_for spec backend;
    trace_capacity = spec.trace_capacity;
  }

(* [crash] overrides the spec-derived plan — the crash-event shrinker
   re-executes with candidate plans through this hook. *)
let armed_config ?crash spec backend sseed policy =
  let cfg = { (base_config spec backend) with Config.sched_policy = policy } in
  let cfg =
    match spec.fault_drop with
    | None -> cfg
    | Some drop -> Config.with_faults ~drop ~seed:(effective_fault_seed spec sseed) cfg
  in
  match (crash, crash_plan_for spec sseed) with
  | Some plan, _ | None, Some plan -> Config.with_crash plan cfg
  | None, None -> cfg

(* ------------------------------------------------------------------ *)
(* Counterexamples and shrinking                                       *)

type counterexample = {
  c_workload : string;
  c_backend : Config.backend;
  c_nprocs : int;
  c_ecsan : bool;
  c_adaptive : bool;
  c_fault_drop : float option;
  c_fault_seed : int option;
  c_crash : string option;  (* rendered (possibly shrunk) crash plan *)
  c_schedule_seed : int;
  c_reason : string;
  c_choices : int list option;  (* as recorded by the failing run *)
  c_shrunk : int list option;  (* minimal verified-failing replay list *)
  c_shrink_runs : int;
  c_trace : string list;
}

let take n l = List.filteri (fun i _ -> i < n) l

(* Shrink a failing choice list under a replay oracle.  [fails] must
   re-execute the run with the given replay list and report whether it
   still fails.  Greedy prefix trim by binary search (replay lists are
   tails-off-FIFO: an exhausted list falls back to choice 0), then a
   pointwise zeroing pass.  Prefix failure need not be monotone, so the
   search only guarantees a verified-failing local minimum — which is
   what a counterexample needs. *)
let shrink ~budget ~fails choices =
  let runs = ref 0 in
  let try_fails l =
    if !runs >= budget then false
    else begin
      incr runs;
      fails l
    end
  in
  if not (try_fails choices) then (None, !runs)
  else begin
    let best = ref choices in
    (* smallest failing prefix: lo passes, hi fails *)
    if try_fails [] then best := []
    else begin
      let lo = ref 0 and hi = ref (List.length choices) in
      while !hi - !lo > 1 && !runs < budget do
        let mid = (!lo + !hi) / 2 in
        if try_fails (take mid choices) then hi := mid else lo := mid
      done;
      best := take !hi choices
    end;
    (* pointwise zeroing: a 0 replays as FIFO at that tie *)
    let arr = Array.of_list !best in
    Array.iteri
      (fun i c ->
        if c <> 0 && !runs < budget then begin
          let saved = arr.(i) in
          arr.(i) <- 0;
          if not (try_fails (Array.to_list arr)) then arr.(i) <- saved
        end)
      arr;
    (* drop trailing zeros: replay exhaustion is FIFO anyway *)
    let l = Array.to_list arr in
    let rec strip = function 0 :: rest -> strip rest | l -> l in
    (Some (List.rev (strip (List.rev l))), !runs)
  end

(* Shrink a failing crash plan by pointwise event deletion.  Removing
   an event can break a processor's Stop/Recover alternation
   ([Crash.scripted] rejects a Recover with no preceding Stop) — such
   candidates are skipped, not counted against the budget.  [fails]
   must re-execute the run under the candidate plan; because a changed
   plan changes all downstream timing, callers re-run the *seeded*
   schedule rather than replaying recorded choices.  Returns the
   minimal verified-failing plan (possibly the input) and the number of
   re-executions spent. *)
let shrink_crash ~budget ~fails plan =
  let runs = ref 0 in
  let best = ref (Crash.events plan) in
  let progress = ref true in
  (* deletion passes to a fixpoint: removing one event (say a Stop) can
     make another (its Recover) deletable on the next pass *)
  while !progress && !runs < budget do
    progress := false;
    let i = ref 0 in
    while !i < List.length !best && !runs < budget do
      let cand = List.filteri (fun j _ -> j <> !i) !best in
      match Crash.scripted cand with
      | exception Invalid_argument _ -> incr i
      | p ->
          incr runs;
          if fails p then begin
            best := Crash.events p;  (* same index now names the next event *)
            progress := true
          end
          else incr i
    done
  done;
  (Crash.scripted !best, !runs)

(* ------------------------------------------------------------------ *)
(* The sweep                                                           *)

type report = {
  total_runs : int;
  grid_points : int;  (* (workload, backend) combinations swept *)
  failures : counterexample list;
}

let null_progress _ = ()

let run_spec ?(progress = null_progress) spec =
  let total = ref 0 in
  let points = ref 0 in
  let failures = ref [] in
  List.iter
    (fun (w : Workload.t) ->
      List.iter
        (fun backend ->
          if w.Workload.supports backend then begin
            incr points;
            let found = ref false in
            let i = ref 0 in
            while (not !found) && !i < spec.schedules do
              let sseed = spec.schedule_seed + !i in
              incr i;
              let cfg = armed_config spec backend sseed (Midway_sched.Engine.Seeded sseed) in
              incr total;
              let j = execute w cfg in
              if j.j_failed then begin
                found := true;
                progress
                  (Printf.sprintf "FAIL %s/%s seed=%d: %s" w.Workload.name
                     (Config.backend_name backend) sseed j.j_reason);
                (* the crash dimension shrinks first: a smaller plan
                   changes all downstream timing, so it re-runs the
                   seeded schedule and invalidates recorded choices,
                   which are refreshed before the choice-list shrink *)
                let j, plan, crash_runs =
                  match crash_plan_for spec sseed with
                  | None -> (j, None, 0)
                  | Some p when Crash.events p = [] -> (j, Some p, 0)
                  | Some p ->
                      let fails q =
                        let cfg =
                          armed_config ~crash:q spec backend sseed
                            (Midway_sched.Engine.Seeded sseed)
                        in
                        (execute w cfg).j_failed
                      in
                      let q, r = shrink_crash ~budget:(spec.max_shrink_runs / 2) ~fails p in
                      if Crash.events q = Crash.events p then (j, Some p, r)
                      else
                        let cfg =
                          armed_config ~crash:q spec backend sseed
                            (Midway_sched.Engine.Seeded sseed)
                        in
                        (execute w cfg, Some q, r + 1)
                in
                let shrunk, runs =
                  match j.j_choices with
                  | None | Some [] -> (j.j_choices, 0)
                  | Some choices ->
                      let fails l =
                        let cfg =
                          armed_config ?crash:plan spec backend sseed
                            (Midway_sched.Engine.Replay l)
                        in
                        (execute w cfg).j_failed
                      in
                      let s, r = shrink ~budget:spec.max_shrink_runs ~fails choices in
                      (s, r)
                in
                total := !total + crash_runs + runs;
                failures :=
                  {
                    c_workload = w.Workload.name;
                    c_backend = backend;
                    c_nprocs = spec.nprocs;
                    c_ecsan = spec.ecsan;
                    c_adaptive = adaptive_for spec backend;
                    c_fault_drop = spec.fault_drop;
                    c_fault_seed =
                      Option.map (fun _ -> effective_fault_seed spec sseed) spec.fault_drop;
                    c_crash = Option.map Crash.render plan;
                    c_schedule_seed = sseed;
                    c_reason = j.j_reason;
                    c_choices = j.j_choices;
                    c_shrunk = shrunk;
                    c_shrink_runs = crash_runs + runs;
                    c_trace = j.j_trace;
                  }
                  :: !failures
              end
            done;
            if not !found then
              progress
                (Printf.sprintf "ok   %s/%s (%d schedules)" w.Workload.name
                   (Config.backend_name backend) spec.schedules)
          end)
        spec.backends)
    spec.workloads;
  { total_runs = !total; grid_points = !points; failures = List.rev !failures }

(* ------------------------------------------------------------------ *)
(* Counterexample files: dump, parse, replay                           *)

let render_choices l = String.concat "," (List.map string_of_int l)

let render_counterexample c =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "# midway-fuzz counterexample";
  line "workload=%s" c.c_workload;
  line "backend=%s" (Config.backend_name c.c_backend);
  line "nprocs=%d" c.c_nprocs;
  line "ecsan=%b" c.c_ecsan;
  if c.c_adaptive then line "adaptive=true";
  (match (c.c_fault_drop, c.c_fault_seed) with
  | Some drop, Some fseed ->
      line "fault-drop=%g" drop;
      line "fault-seed=%d" fseed
  | _ -> ());
  (match c.c_crash with Some s -> line "crash=%s" s | None -> ());
  line "schedule-seed=%d" c.c_schedule_seed;
  (match c.c_shrunk with
  | Some l -> line "choices=%s" (render_choices l)
  | None -> (
      match c.c_choices with
      | Some l -> line "choices=%s" (render_choices l)
      | None -> line "# choices unavailable (machine lost); replay by schedule seed"));
  List.iter (fun r -> line "# reason: %s" r) (String.split_on_char '\n' c.c_reason);
  List.iter (fun t -> line "# trace: %s" t) c.c_trace;
  Buffer.contents b

type replay_spec = {
  rp_workload : string;
  rp_backend : Config.backend;
  rp_nprocs : int;
  rp_ecsan : bool;
  rp_adaptive : bool;
  rp_fault_drop : float option;
  rp_fault_seed : int option;
  rp_crash : string option;  (* raw --crash spec; parsed against rp_nprocs *)
  rp_schedule_seed : int option;
  rp_choices : int list option;
}

let parse_counterexample text =
  let spec =
    ref
      {
        rp_workload = "";
        rp_backend = Config.Rt;
        rp_nprocs = 4;
        rp_ecsan = true;
        rp_adaptive = false;
        rp_fault_drop = None;
        rp_fault_seed = None;
        rp_crash = None;
        rp_schedule_seed = None;
        rp_choices = None;
      }
  in
  let err = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !err = None then err := Some s) fmt in
  (* a dump may concatenate several counterexamples; replay the first *)
  let headers = ref 0 in
  let stop = ref false in
  String.split_on_char '\n' text
  |> List.iter (fun raw ->
         let line = String.trim raw in
         if line = "# midway-fuzz counterexample" then begin
           incr headers;
           if !headers > 1 then stop := true
         end;
         if !stop || line = "" || line.[0] = '#' then ()
         else
           match String.index_opt line '=' with
           | None -> fail "malformed line %S (expected key=value)" line
           | Some i -> (
               let key = String.sub line 0 i in
               let v = String.sub line (i + 1) (String.length line - i - 1) in
               match key with
               | "workload" -> spec := { !spec with rp_workload = v }
               | "backend" -> (
                   match Config.backend_of_string v with
                   | Ok b -> spec := { !spec with rp_backend = b }
                   | Error e -> fail "%s" e)
               | "nprocs" -> spec := { !spec with rp_nprocs = int_of_string v }
               | "ecsan" -> spec := { !spec with rp_ecsan = bool_of_string v }
               | "adaptive" -> spec := { !spec with rp_adaptive = bool_of_string v }
               | "fault-drop" -> spec := { !spec with rp_fault_drop = Some (float_of_string v) }
               | "fault-seed" -> spec := { !spec with rp_fault_seed = Some (int_of_string v) }
               | "crash" -> spec := { !spec with rp_crash = Some v }
               | "schedule-seed" ->
                   spec := { !spec with rp_schedule_seed = Some (int_of_string v) }
               | "choices" ->
                   let l =
                     if String.trim v = "" then []
                     else String.split_on_char ',' v |> List.map (fun s -> int_of_string (String.trim s))
                   in
                   spec := { !spec with rp_choices = Some l }
               | _ -> fail "unknown key %S" key))
  |> ignore;
  match !err with
  | Some e -> Error e
  | None ->
      if !spec.rp_workload = "" then Error "counterexample names no workload"
      else if !spec.rp_schedule_seed = None && !spec.rp_choices = None then
        Error "counterexample has neither schedule-seed nor choices"
      else Ok !spec

(* The workload registry: how a counterexample (or a --apps flag) names
   its subject. *)
let workload_of_name ?(scale = 0.05) name =
  let prefixed prefix =
    if String.length name > String.length prefix
       && String.sub name 0 (String.length prefix) = prefix
    then
      int_of_string_opt
        (String.sub name (String.length prefix) (String.length name - String.length prefix))
    else None
  in
  match name with
  | "counter" -> Ok (Workload.counter ~iters:6)
  | "readers-writer" -> Ok (Workload.readers_writer ~iters:6)
  | "mix" -> Ok (Workload.mix ~groups:3 ~iters:6)
  | "order-sensitive" -> Ok Workload.order_sensitive
  | "racy" -> Ok Workload.racy
  | "deadlocky" -> Ok Workload.deadlocky
  | "crashy" -> Ok (Workload.crashy ~iters:6)
  | "crashy-broken" -> Ok (Workload.crashy_broken ~iters:6)
  | "kv" -> Ok (Kv_workload.workload ~name:"kv" Kv_workload.default)
  | "kv-migrate" ->
      Ok
        (Kv_workload.workload ~name:"kv-migrate"
           { Kv_workload.default with migrate_every = 10 })
  | "kv-broken-migration" ->
      (* read-only mix over a preloaded keyspace: the broken migration's
         dropped presence flags can never be repaired by a later put, so
         the refinement violation is deterministic on every schedule *)
      Ok
        (Kv_workload.workload ~name:"kv-broken-migration" ~buggy:true
           {
             Kv_workload.default with
             ycsb = { Kv_workload.default.ycsb with mix = Ycsb.mix_c };
             migrate_every = 10;
             broken_migration = true;
           })
  | "kv-crashy" -> Ok (Kv_workload.crashy_workload ~name:"kv-crashy" Kv_workload.default)
  | _ -> (
      match prefixed "kv:" with
      | Some seed ->
          Ok
            (Kv_workload.workload
               ~name:(Printf.sprintf "kv:%d" seed)
               { Kv_workload.default with ycsb = { Kv_workload.default.ycsb with seed } })
      | None -> (
      match prefixed "ecgen:" with
      | Some seed -> Ok (Ecgen.workload ~seed ())
      | None -> (
          match prefixed "ecgen-buggy:" with
          | Some seed -> Ok (Ecgen.workload ~buggy:true ~seed ())
          | None -> (
              match Midway_report.Suite.app_of_string name with
              | Ok app -> Ok (Workload.app ~scale app)
              | Error _ ->
                  Error
                    (Printf.sprintf
                       "unknown workload %S (expected \
                        counter|readers-writer|mix|order-sensitive|racy|deadlocky|crashy|crashy-broken|kv|kv-migrate|kv-broken-migration|kv-crashy|kv:SEED|ecgen:SEED|ecgen-buggy:SEED|water|quicksort|matrix|sor|cholesky)"
                       name)))))

let clean_workloads () =
  [
    Workload.counter ~iters:6;
    Workload.readers_writer ~iters:6;
    Workload.mix ~groups:3 ~iters:6;
  ]

let buggy_workloads () =
  [
    Workload.order_sensitive;
    Workload.racy;
    Workload.deadlocky;
    (match workload_of_name "kv-broken-migration" with Ok w -> w | Error e -> failwith e);
  ]

type replay_result = {
  rr_failed : bool;
  rr_reason : string;
  rr_digest : string;
  rr_choices : int list;  (* the replayed run's own recording *)
}

let replay ?scale ?trace_out ?metrics_out rp =
  match workload_of_name ?scale rp.rp_workload with
  | Error e -> Error e
  | Ok w ->
      if not (w.Workload.supports rp.rp_backend) then
        Error
          (Printf.sprintf "workload %s does not support backend %s" rp.rp_workload
             (Config.backend_name rp.rp_backend))
      else begin
        let policy =
          match (rp.rp_choices, rp.rp_schedule_seed) with
          | Some l, _ -> Midway_sched.Engine.Replay l
          | None, Some s -> Midway_sched.Engine.Seeded s
          | None, None -> Midway_sched.Engine.Fifo
        in
        let cfg = Config.make rp.rp_backend ~nprocs:rp.rp_nprocs in
        let cfg =
          {
            cfg with
            Config.ecsan = rp.rp_ecsan;
            adaptive = rp.rp_adaptive;
            trace_capacity = 64;
          }
        in
        let cfg = { cfg with Config.sched_policy = policy } in
        (* Dumping a trace of the replayed (typically shrunk) schedule
           arms the observability layer; obs never perturbs the run, so
           the counterexample still reproduces. *)
        let cfg =
          if trace_out <> None || metrics_out <> None then { cfg with Config.obs = true }
          else cfg
        in
        let cfg =
          match (rp.rp_fault_drop, rp.rp_fault_seed) with
          | Some drop, Some seed -> Config.with_faults ~drop ~seed cfg
          | Some drop, None -> Config.with_faults ~drop cfg
          | None, _ -> cfg
        in
        let crash_plan =
          match rp.rp_crash with
          | None -> Ok None
          (* crash-armed counterexample whose event list shrank to
             empty: the layer stays armed (reliable routing, failure
             detection) with no scheduled crash *)
          | Some "" -> Ok (Some (Crash.scripted []))
          | Some s -> Result.map Option.some (Crash.parse_spec ~nprocs:rp.rp_nprocs s)
        in
        match crash_plan with
        | Error e -> Error e
        | Ok plan ->
        let cfg = match plan with None -> cfg | Some p -> Config.with_crash p cfg in
        let j, machine = execute_machine w cfg in
        (match Option.bind machine R.obs with
        | Some o ->
            let name =
              Printf.sprintf "%s/%s replay" rp.rp_workload (Config.backend_name rp.rp_backend)
            in
            (match trace_out with
            | Some file ->
                Midway_obs.Trace_export.write file
                  (Midway_obs.Trace_export.to_json ~name (Midway_obs.Obs.spans o))
            | None -> ());
            (match metrics_out with
            | Some file ->
                Midway_obs.Trace_export.write file
                  (Midway_obs.Metrics.to_json
                     (Midway_obs.Metrics.snapshot (Midway_obs.Obs.metrics o)))
            | None -> ())
        | None -> ());
        Ok
          {
            rr_failed = j.j_failed;
            rr_reason = j.j_reason;
            rr_digest = j.j_digest;
            rr_choices = Option.value j.j_choices ~default:[];
          }
      end

(* ------------------------------------------------------------------ *)
(* Static analysis x dynamic confirmation                              *)

module Analyze = Midway_analyze.Analyze

let static_report ?(nprocs = 4) (w : Workload.t) =
  Option.map (fun lift -> Analyze.analyze (lift ~nprocs)) w.Workload.ir

type confirmation = {
  cf_finding : Analyze.finding;
  cf_confirmed : (Config.backend * int) option;
  cf_runs : int;
}

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Does one judged execution realize a static warning?  A may-race is
   realized when ECSan reports a violation of the same class (and the
   same sync object, when both name one); a lock cycle is realized by a
   deadlocked run. *)
let realizes (f : Analyze.finding) (j : judged) machine =
  match f.Analyze.cls with
  | Analyze.Lock_cycle -> j.j_failed && contains j.j_reason "deadlock"
  | Analyze.May_race d -> (
      match machine with
      | None -> false
      | Some m ->
          List.exists
            (fun (v : Midway_check.Diag.violation) ->
              v.Midway_check.Diag.cls = d
              && (f.Analyze.sync < 0 || v.Midway_check.Diag.sync < 0
                || v.Midway_check.Diag.sync = f.Analyze.sync))
            (R.check_report m).Midway_check.Report.violations)
  | Analyze.Hygiene _ -> false

(* Hunt each static warning across (backend x schedule seed) until some
   execution realizes it: PLAUSIBLE warnings become CONFIRMED, the rest
   stay unconfirmed with the spent run count — the static analyzer's
   precision, measured by the explorer.  ECSan is forced on (the
   may-race classes are its diagnoses). *)
let confirm_static ?(backends = [ Config.Rt; Config.Vm ]) ?(schedules = 6)
    ?(schedule_seed = 1) ?(nprocs = 4) (w : Workload.t) =
  match static_report ~nprocs w with
  | None -> None
  | Some rep ->
      let confirm f =
        let runs = ref 0 in
        let hit = ref None in
        (try
           List.iter
             (fun backend ->
               if w.Workload.supports backend then
                 for i = 0 to schedules - 1 do
                   let sseed = schedule_seed + i in
                   let cfg = Config.make backend ~nprocs in
                   let cfg =
                     {
                       cfg with
                       Config.ecsan = true;
                       trace_capacity = 64;
                       sched_policy = Midway_sched.Engine.Seeded sseed;
                     }
                   in
                   incr runs;
                   let j, machine = execute_machine w cfg in
                   if realizes f j machine then begin
                     hit := Some (backend, sseed);
                     raise Exit
                   end
                 done)
             backends
         with Exit -> ());
        { cf_finding = f; cf_confirmed = !hit; cf_runs = !runs }
      in
      Some (rep, List.map confirm rep.Analyze.warnings)

let render_confirmation c =
  let f = c.cf_finding in
  match c.cf_confirmed with
  | Some (backend, sseed) ->
      Printf.sprintf "  CONFIRMED [%s] by %s seed=%d (%d run%s): %s"
        (Analyze.class_slug f.Analyze.cls) (Config.backend_name backend) sseed c.cf_runs
        (if c.cf_runs = 1 then "" else "s")
        f.Analyze.detail
  | None ->
      Printf.sprintf "  unconfirmed [%s] after %d runs (may be a false positive): %s"
        (Analyze.class_slug f.Analyze.cls) c.cf_runs f.Analyze.detail
