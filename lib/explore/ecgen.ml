(* Random entry-consistency programs.

   A program is generated deterministically from (seed, nprocs): a few
   lock groups, each binding a contiguous disjoint run of 8-byte cells,
   and one or two barrier-separated rounds of per-processor operation
   lists.  The only mutation is a lock-guarded commutative add, so the
   final value of every cell is schedule-independent: the per-cell sum
   of all deltas targeting it.  A final data-less barrier plus a
   read-mode sweep of every lock converges every processor's copy, and
   the oracle then checks all copies cell by cell.

   The [buggy] variant strips the acquire/release off one randomly
   chosen add — a seeded race for the fuzzer to find: the unlocked
   write never joins the protocol's consistent history (oracle
   mismatch) and ECSan flags the unsynchronized access. *)

module R = Midway.Runtime
module Config = Midway.Config
module Range = Midway.Range
module Prng = Midway_util.Prng

type op =
  | Add of { group : int; cell : int; delta : int }
  | Raw_add of { group : int; cell : int; delta : int }  (* buggy: no acquire *)
  | Sweep of int  (* read-mode pull of one group *)
  | Rebind of int  (* exclusive acquire + same-range rebind + release *)
  | Work of int  (* local computation, ns *)

type program = {
  seed : int;
  nprocs : int;
  ngroups : int;
  cells_per_group : int;
  nrounds : int;
  ops : op list array array;  (* ops.(round).(proc) *)
  buggy : bool;
}

let generate ?(buggy = false) ~seed ~nprocs () =
  if nprocs <= 0 then invalid_arg "Ecgen.generate: nprocs must be positive";
  let rng = Prng.create ~seed in
  let ngroups = 1 + Prng.int rng 3 in
  let cells_per_group = 1 + Prng.int rng 4 in
  let nrounds = 1 + Prng.int rng 2 in
  let gen_op () =
    let roll = Prng.int rng 20 in
    if roll < 13 then
      Add
        {
          group = Prng.int rng ngroups;
          cell = Prng.int rng cells_per_group;
          delta = 1 + Prng.int rng 9;
        }
    else if roll < 17 then Sweep (Prng.int rng ngroups)
    else if roll < 19 then Work ((1 + Prng.int rng 5) * 1_000)
    else Rebind (Prng.int rng ngroups)
  in
  let ops =
    Array.init nrounds (fun _ ->
        Array.init nprocs (fun _ -> List.init (1 + Prng.int rng 4) (fun _ -> gen_op ())))
  in
  let is_add = function Add _ -> true | _ -> false in
  if not (Array.exists (fun procs -> Array.exists (List.exists is_add) procs) ops) then
    ops.(0).(0) <- Add { group = 0; cell = 0; delta = 1 } :: ops.(0).(0);
  if buggy then begin
    (* count the adds, pick one, strip its lock *)
    let total = ref 0 in
    Array.iter
      (Array.iter (List.iter (fun o -> if is_add o then incr total)))
      ops;
    let victim = Prng.int rng !total in
    let idx = ref 0 in
    let strip o =
      match o with
      | Add { group; cell; delta } ->
          let i = !idx in
          incr idx;
          if i = victim then Raw_add { group; cell; delta } else o
      | o -> o
    in
    Array.iteri
      (fun r procs -> Array.iteri (fun p l -> ops.(r).(p) <- List.map strip l) procs)
      ops
  end;
  { seed; nprocs; ngroups; cells_per_group; nrounds; ops; buggy }

(* The sequential oracle: cells start at zero and adds commute. *)
let expected program =
  let ncells = program.ngroups * program.cells_per_group in
  let exp = Array.make ncells 0 in
  Array.iter
    (Array.iter
       (List.iter (function
         | Add { group; cell; delta } | Raw_add { group; cell; delta } ->
             let i = (group * program.cells_per_group) + cell in
             exp.(i) <- exp.(i) + delta
         | Sweep _ | Rebind _ | Work _ -> ())))
    program.ops;
  exp

(* Lift to the EC-IR.  The static base address is 0 (the IR is abstract
   over allocation), and sync ids follow creation order in [run]: lock
   for group [g] gets id [g], the round barrier gets id [ngroups] —
   exactly the runtime's assignment, so static findings name the same
   objects ECSan would. *)
let to_ir program =
  let module Ir = Midway_analyze.Ir in
  let cpg = program.cells_per_group in
  let addr g i = ((g * cpg) + i) * 8 in
  let cell g i = Range.v (addr g i) 8 in
  let group_range g = Range.v (addr g 0) (cpg * 8) in
  let lower = function
    | Add { group; cell = i; _ } ->
        [
          Ir.Acquire { lock = group; mode = Ir.Exclusive };
          Ir.Read (cell group i);
          Ir.Write (cell group i);
          Ir.Release group;
        ]
    | Raw_add { group; cell = i; _ } -> [ Ir.Read (cell group i); Ir.Write (cell group i) ]
    | Sweep g ->
        (Ir.Acquire { lock = g; mode = Ir.Shared }
        :: List.init cpg (fun i -> Ir.Read (cell g i)))
        @ [ Ir.Release g ]
    | Rebind g ->
        [
          Ir.Acquire { lock = g; mode = Ir.Exclusive };
          Ir.Rebind { lock = g; ranges = [ group_range g ] };
          Ir.Release g;
        ]
    | Work ns -> [ Ir.Work ns ]
  in
  let converge_round =
    Array.init program.nprocs (fun _ ->
        List.concat
          (List.init program.ngroups (fun g ->
               [ Ir.Acquire { lock = g; mode = Ir.Shared }; Ir.Release g ])))
  in
  {
    Ir.name =
      Printf.sprintf "%s:%d" (if program.buggy then "ecgen-buggy" else "ecgen") program.seed;
    nprocs = program.nprocs;
    locks = List.init program.ngroups (fun g -> (g, [ group_range g ]));
    barriers = [ (program.ngroups, []) ];
    rounds =
      Array.init (program.nrounds + 1) (fun r ->
          if r < program.nrounds then Array.map (List.concat_map lower) program.ops.(r)
          else converge_round);
  }

let run program cfg =
  if cfg.Config.nprocs <> program.nprocs then
    invalid_arg "Ecgen.run: configuration and program disagree on nprocs";
  Workload.run_guarded cfg (fun m ->
      let cpg = program.cells_per_group in
      let ncells = program.ngroups * cpg in
      (* 8-byte lines: groups are guarded by distinct locks and must not
         share an RT cache line (line-granular timestamps would
         false-share across locks) *)
      let base = R.alloc m ~line_size:8 (ncells * 8) in
      let addr g i = base + (((g * cpg) + i) * 8) in
      let locks =
        Array.init program.ngroups (fun g ->
            R.new_lock m ~owner:(g mod program.nprocs) [ Range.v (addr g 0) (cpg * 8) ])
      in
      let round_bar = R.new_barrier m [] in
      let exec c = function
        | Add { group; cell; delta } ->
            R.acquire c locks.(group);
            let a = addr group cell in
            R.write_int c a (R.read_int c a + delta);
            R.release c locks.(group)
        | Raw_add { group; cell; delta } ->
            let a = addr group cell in
            R.write_int c a (R.read_int c a + delta)
        | Sweep group ->
            R.acquire_read c locks.(group);
            for i = 0 to cpg - 1 do
              ignore (R.read_int c (addr group i))
            done;
            R.release c locks.(group)
        | Rebind group ->
            (* a same-range rebind: exercises the rebind path while
               leaving the binding — and therefore the oracle — intact *)
            R.acquire c locks.(group);
            R.rebind c locks.(group) [ Range.v (addr group 0) (cpg * 8) ];
            R.release c locks.(group)
        | Work ns -> R.work_ns c ns
      in
      let body c =
        for r = 0 to program.nrounds - 1 do
          List.iter (exec c) program.ops.(r).(R.id c);
          R.barrier c round_bar
        done;
        Workload.converge c round_bar locks
      in
      let verify () =
        Workload.check_cells m
          (Array.init ncells (fun i -> addr (i / cpg) (i mod cpg)))
          (expected program)
      in
      (body, verify))

let workload ?(buggy = false) ~seed () =
  {
    Workload.name = Printf.sprintf "%s:%d" (if buggy then "ecgen-buggy" else "ecgen") seed;
    buggy;
    supports = Workload.lock_based;
    ir = Some (fun ~nprocs -> to_ir (generate ~buggy ~seed ~nprocs ()));
    run =
      (fun cfg ->
        run (generate ~buggy ~seed ~nprocs:cfg.Config.nprocs ()) cfg);
  }
