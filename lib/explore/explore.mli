(** The schedule explorer: fuzz driver, counterexample shrinking,
    record/replay.

    Sweeps a grid of (workload x backend x schedule seed) — optionally
    composed with fault injection and node-crash schedules, so fault
    schedules, crash schedules and thread schedules all vary together —
    judging every run by the workload's sequential oracle,
    {!Midway.Runtime.check_invariants} and the ECSan report.  A
    failure's crash-event list is shrunk by pointwise deletion, then
    its recorded tie-break choices are shrunk to a minimal
    verified-failing replay list, and the result is rendered as a
    counterexample file that reproduces the run from its text alone.
    See doc/SIMULATION.md ("The determinism contract") and
    [bin/midway_fuzz.ml]. *)

(** {1 Judging one run} *)

type judged = {
  j_failed : bool;
  j_reason : string;  (** "" when the run is clean; one line per check otherwise *)
  j_digest : string;
  j_choices : int list option;  (** [None] when the machine was lost *)
  j_trace : string list;  (** tail of the protocol trace, oldest first *)
}

val execute : Workload.t -> Midway.Config.t -> judged
(** Run once and apply all three checks (oracle, invariants, ECSan —
    the latter only if the configuration arms it). *)

(** {1 The sweep} *)

type spec = {
  workloads : Workload.t list;
  backends : Midway.Config.backend list;
  schedules : int;  (** schedule seeds per (workload, backend) pair *)
  schedule_seed : int;  (** base seed; run [i] uses [base + i] *)
  nprocs : int;
  ecsan : bool;
  adaptive : bool;
      (** arm {!Midway.Config.t.adaptive} per-region detection on runs
          whose machine default is rt or vm (other backends run the
          fixed configuration) *)
  fault_drop : float option;
  fault_seed : int;
  crash_events : int;
      (** seeded node-crash episodes per run ({!Midway_simnet.Crash.seeded});
          [0] (the default) = no crash dimension *)
  crash_seed : int;
  crash_horizon_ns : int;  (** window the seeded episodes land in *)
  crash_plan : Midway_simnet.Crash.plan option;
      (** explicit plan applied to every run; overrides the seeded
          dimension *)
  trace_capacity : int;
  max_shrink_runs : int;  (** re-execution budget of one shrink *)
}

val default_spec : spec
(** rt+vm backends, 8 schedules from seed 1, 4 processors, ECSan on,
    adaptive off, no faults, no crashes (crash seed 0xC0DE, horizon
    2 ms when armed), trace capacity 64, shrink budget 48 runs.
    [workloads] is empty — fill it in. *)

val clean_workloads : unit -> Workload.t list
(** The synthetic always-should-pass workloads (counter,
    readers-writer, mix). *)

val buggy_workloads : unit -> Workload.t list
(** The deliberately broken prey (order-sensitive, racy, deadlocky,
    kv-broken-migration). *)

val workload_of_name : ?scale:float -> string -> (Workload.t, string) result
(** The registry: counter | readers-writer | mix | order-sensitive |
    racy | crashy | crashy-broken | kv | kv-migrate |
    kv-broken-migration | kv-crashy | kv:SEED | ecgen:SEED |
    ecgen-buggy:SEED | one of the five application names.  [scale]
    (default 0.05) applies to applications only. *)

type counterexample = {
  c_workload : string;
  c_backend : Midway.Config.backend;
  c_nprocs : int;
  c_ecsan : bool;
  c_adaptive : bool;  (** the failing run had adaptive detection armed *)
  c_fault_drop : float option;
  c_fault_seed : int option;  (** the effective per-run fault seed *)
  c_crash : string option;
      (** {!Midway_simnet.Crash.render} of the (possibly shrunk) crash
          plan the failure reproduces under; [None] when the crash
          dimension was off *)
  c_schedule_seed : int;
  c_reason : string;
  c_choices : int list option;  (** as recorded by the failing run *)
  c_shrunk : int list option;  (** minimal verified-failing replay list *)
  c_shrink_runs : int;
  c_trace : string list;
}

type report = {
  total_runs : int;
  grid_points : int;  (** (workload, backend) combinations swept *)
  failures : counterexample list;
}

val run_spec : ?progress:(string -> unit) -> spec -> report
(** Sweep the grid.  Per (workload, backend) pair the seed loop stops
    at the first failure, which is then shrunk; clean pairs run all
    [schedules] seeds. *)

(** {1 Shrinking} *)

val shrink :
  budget:int -> fails:(int list -> bool) -> int list -> int list option * int
(** [shrink ~budget ~fails choices] minimizes a failing tie-break
    choice list under the re-execution oracle [fails]: confirm, binary
    search for the smallest failing prefix (an exhausted replay list
    falls back to FIFO), pointwise-zero surviving entries, and strip
    trailing zeros.  Returns the minimal verified-failing list (or
    [None] if the failure did not reproduce) and the number of
    re-executions spent.  At most [budget] re-executions. *)

val shrink_crash :
  budget:int ->
  fails:(Midway_simnet.Crash.plan -> bool) ->
  Midway_simnet.Crash.plan ->
  Midway_simnet.Crash.plan * int
(** Minimize a failing crash plan by pointwise event deletion under the
    re-execution oracle [fails] (candidates breaking a processor's
    Stop/Recover alternation are skipped for free).  A changed plan
    shifts all downstream timing, so [fails] should re-run the seeded
    schedule, not replay recorded choices.  Returns the minimal
    verified-failing plan — the input itself when nothing could be
    removed — and the re-executions spent. *)

(** {1 Counterexample files} *)

val render_counterexample : counterexample -> string
(** A small key=value text (comments carry the reason and trace tail)
    that {!parse_counterexample} reads back. *)

type replay_spec = {
  rp_workload : string;
  rp_backend : Midway.Config.backend;
  rp_nprocs : int;
  rp_ecsan : bool;
  rp_adaptive : bool;
  rp_fault_drop : float option;
  rp_fault_seed : int option;
  rp_crash : string option;
      (** raw crash spec ({!Midway_simnet.Crash.parse_spec} syntax),
          parsed against [rp_nprocs] at replay time *)
  rp_schedule_seed : int option;
  rp_choices : int list option;
}

val parse_counterexample : string -> (replay_spec, string) result

type replay_result = {
  rr_failed : bool;
  rr_reason : string;
  rr_digest : string;
  rr_choices : int list;  (** the replayed run's own recording *)
}

val replay :
  ?scale:float -> ?trace_out:string -> ?metrics_out:string -> replay_spec ->
  (replay_result, string) result
(** Re-execute a counterexample: replay the choice list if present,
    else re-run the seeded schedule.  [Ok] with [rr_failed = true]
    means the failure reproduced.  [trace_out] / [metrics_out] arm the
    observability layer (which never perturbs the run) and write the
    replayed schedule's Chrome trace / metrics JSON — the span timeline
    of a shrunk counterexample is usually the fastest way to see the
    ordering that breaks. *)

(** {1 Static analysis x dynamic confirmation}

    The workloads that carry an EC-IR lift ({!Workload.t.ir}) can be
    analyzed statically ({!Midway_analyze.Analyze}) before any run, and
    each static warning then handed to the explorer as a hunt target:
    a may-race is {e confirmed} when some execution makes ECSan report
    the same diagnostic class (and sync object, when both name one), a
    lock cycle when some execution deadlocks. *)

val static_report : ?nprocs:int -> Workload.t -> Midway_analyze.Analyze.report option
(** Analyze the workload's IR lift at [nprocs] (default 4); [None] when
    the workload has no lift. *)

type confirmation = {
  cf_finding : Midway_analyze.Analyze.finding;
  cf_confirmed : (Midway.Config.backend * int) option;
      (** the (backend, schedule seed) of the first realizing run *)
  cf_runs : int;  (** executions spent hunting this finding *)
}

val confirm_static :
  ?backends:Midway.Config.backend list ->
  ?schedules:int ->
  ?schedule_seed:int ->
  ?nprocs:int ->
  Workload.t ->
  (Midway_analyze.Analyze.report * confirmation list) option
(** Analyze, then hunt every static warning over (backend x schedule
    seed) with ECSan forced on — defaults rt+vm, 6 seeds from 1,
    4 processors.  [None] when the workload has no IR lift.  Warnings
    left unconfirmed after the sweep may be false positives (the
    analyzer is sound, not complete). *)

val render_confirmation : confirmation -> string
