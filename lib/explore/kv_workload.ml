(* The sharded KV store as a schedule-explorer workload: simulated
   client processors drive a {!Midway_kv.Kvstore} with seeded YCSB
   streams, and the verdict is the refinement oracle — every run must
   linearize to the centralized dictionary.

   The program has three phases separated by a data-less barrier:
   load (each client seeds the buckets it initially owns), the open-loop
   client loop (with optional periodic bucket migrations), and a final
   converge (barrier + read sweep) so the host-side oracle reads
   committed, converged state — including after crashes, where the
   sweep forces failover of any bucket whose owner died. *)

module R = Midway.Runtime
module Config = Midway.Config
module Crash = Midway_simnet.Crash
module Kvstore = Midway_kv.Kvstore

type cfg = {
  ycsb : Ycsb.cfg;
  buckets : int;
  service_ns : int;
  preload : int;  (* keys [0, preload) start present with value 1_000_000 + key *)
  migrate_every : int;  (* client migrates a bucket after every k-th request; 0 = never *)
  broken_migration : bool;  (* migrations drop the presence flags (prey) *)
}

let default =
  {
    ycsb = { Ycsb.default with keys = 64; requests = 40; arrival = Ycsb.Poisson 4_000 };
    buckets = 8;
    service_ns = 300;
    preload = 32;
    migrate_every = 0;
    broken_migration = false;
  }

let preload_value k = 1_000_000 + k

(* Execute one client's stream with open-loop pacing: wait out the gap
   until the scheduled arrival (never ahead of it), then issue; when the
   server is behind, the request goes out immediately but its latency
   still counts from the schedule. *)
let run_stream ?(migrate_every = 0) ?(broken = false) c store stream =
  let base = R.now_ns c in
  let me = R.id c in
  Array.iter
    (fun (r : Ycsb.req) ->
      let sched = if r.Ycsb.r_sched_ns < 0 then R.now_ns c else base + r.Ycsb.r_sched_ns in
      if R.now_ns c < sched then R.work_ns c (sched - R.now_ns c);
      (match r.Ycsb.r_op with
      | Ycsb.Get k -> ignore (Kvstore.get c store ~sched_ns:sched k)
      | Ycsb.Put (k, v) -> Kvstore.put c store ~sched_ns:sched k v
      | Ycsb.Delete k -> Kvstore.delete c store ~sched_ns:sched k
      | Ycsb.Scan (lo, n) -> ignore (Kvstore.scan c store ~sched_ns:sched ~lo ~n ()));
      if migrate_every > 0 && (r.Ycsb.r_idx + 1) mod migrate_every = 0 then
        Kvstore.migrate ~broken c store ((me + r.Ycsb.r_idx) mod Kvstore.buckets store))
    stream

let build rt cfg =
  let store = Kvstore.create ~service_ns:cfg.service_ns rt ~keys:cfg.ycsb.Ycsb.keys
      ~buckets:cfg.buckets
  in
  let fin = R.new_barrier rt [] in
  let prog c =
    let me = R.id c in
    let n = R.nprocs c in
    (* load: client p seeds the buckets it initially owns *)
    let pairs = ref [] in
    for k = cfg.preload - 1 downto 0 do
      if Kvstore.bucket_of store k mod n = me then pairs := (k, preload_value k) :: !pairs
    done;
    Kvstore.load c store !pairs;
    R.barrier c fin;
    run_stream ~migrate_every:cfg.migrate_every ~broken:cfg.broken_migration c store
      (Ycsb.client_stream cfg.ycsb ~client:me);
    R.barrier c fin;
    Kvstore.read_sweep c store
  in
  (store, prog)

let outcome_of_store store =
  match Kvstore.check store with
  | [] -> (true, "", Kvstore.digest store)
  | viols ->
      let shown = List.filteri (fun i _ -> i < 8) viols in
      let detail =
        Printf.sprintf "refinement: %s%s" (String.concat "; " shown)
          (if List.length viols > 8 then Printf.sprintf " (+%d more)" (List.length viols - 8)
           else "")
      in
      (false, detail, Kvstore.digest store)

let workload ~name ?(buggy = false) cfg =
  {
    Workload.name;
    buggy;
    supports = Workload.lock_based;
    (* a full application over dynamic streams — beyond the EC-IR *)
    ir = None;
    run =
      (fun mcfg ->
        Workload.run_guarded mcfg (fun rt ->
            let store, prog = build rt cfg in
            (prog, fun () -> outcome_of_store store)));
  }

(* The crash-dimension variant: unless the incoming configuration
   already arms [Config.crash], inject a scripted plan killing client 1
   early in the run phase — with 3+ clients a majority quorum survives
   and the oracle exercises journal-gap recovery and post-crash
   failover reads. *)
let crashy_workload ~name cfg =
  {
    Workload.name;
    buggy = false;
    supports = Workload.lock_based;
    ir = None;
    run =
      (fun mcfg ->
        let n = mcfg.Config.nprocs in
        if n < 3 then
          invalid_arg (name ^ " needs at least 3 processors (majority quorum with one down)");
        let mcfg =
          match mcfg.Config.crash with
          | Some _ -> mcfg
          | None ->
              Config.with_crash
                (Crash.scripted [ { Crash.at_ns = 60_000; proc = 1; action = Crash.Stop } ])
                mcfg
        in
        Workload.run_guarded mcfg (fun rt ->
            let store, prog = build rt cfg in
            (prog, fun () -> outcome_of_store store)));
  }
