(** Random entry-consistency program generation.

    Programs are generated deterministically from [(seed, nprocs)]: a
    few lock groups over disjoint contiguous runs of 8-byte cells, and
    barrier-separated rounds of per-processor operations whose only
    mutation is a lock-guarded commutative add.  The final value of
    every cell is therefore schedule-independent — the per-cell sum of
    deltas — which makes these programs the qcheck property's subject:
    any backend, any schedule seed, same converged memory. *)

type op =
  | Add of { group : int; cell : int; delta : int }
      (** acquire group's lock exclusively, cell += delta, release *)
  | Raw_add of { group : int; cell : int; delta : int }
      (** the seeded bug: the same add without the acquire *)
  | Sweep of int  (** read-mode pull of one group *)
  | Rebind of int
      (** exclusive acquire + same-range rebind + release: exercises the
          rebind path while leaving the binding (and the oracle) intact *)
  | Work of int  (** local computation, ns *)

type program = {
  seed : int;
  nprocs : int;
  ngroups : int;
  cells_per_group : int;
  nrounds : int;
  ops : op list array array;  (** [ops.(round).(proc)] *)
  buggy : bool;
}

val generate : ?buggy:bool -> seed:int -> nprocs:int -> unit -> program
(** Deterministic: equal [(buggy, seed, nprocs)] yield equal programs.
    Always contains at least one [Add].  With [buggy] (default false)
    one randomly chosen add loses its lock and becomes [Raw_add]. *)

val to_ir : program -> Midway_analyze.Ir.program
(** Lift to the EC-IR for static analysis (base address 0; lock for
    group [g] gets sync id [g], the round barrier id [ngroups] — the
    runtime's creation-order assignment, so static and dynamic findings
    name the same objects).  The lowered grid has [nrounds + 1] rounds:
    the generated ones plus the converge sweep. *)

val expected : program -> int array
(** The sequential oracle: per-cell sum of all deltas (cells start 0),
    indexed [group * cells_per_group + cell]. *)

val run : program -> Midway.Config.t -> Workload.outcome
(** Execute on a machine built for [cfg] (whose [nprocs] must match the
    program's) and verify every processor's converged copy against
    {!expected}. *)

val workload : ?buggy:bool -> seed:int -> unit -> Workload.t
(** Package as a workload named ["ecgen:SEED"] (or ["ecgen-buggy:SEED"]):
    the program is regenerated from [seed] and the configuration's
    [nprocs] at each run. *)
