(* Workloads the schedule explorer drives.

   A workload is a named, self-verifying program: [run] builds a machine
   for the given configuration, executes it and checks the result
   against a sequential oracle computed outside the simulated machine.
   The outcome keeps the machine so the driver can interrogate
   [Runtime.check_invariants], the ECSan report, the protocol trace and
   — crucially — [Runtime.schedule_choices], the raw material of
   record/replay and counterexample shrinking.

   Two kinds of workloads ship buggy on purpose ([order_sensitive] and
   [racy]); they exist so the fuzzer has known prey and so the
   shrinking machinery can be exercised deterministically. *)

module R = Midway.Runtime
module Config = Midway.Config
module Range = Midway.Range
module Space = Midway_memory.Space
module Ir = Midway_analyze.Ir

type outcome = {
  ok : bool;
  detail : string;
  digest : string;
  machine : R.t option;
}

type t = {
  name : string;
  buggy : bool;
  supports : Config.backend -> bool;
  run : Config.t -> outcome;
  ir : (nprocs:int -> Ir.program) option;
}

(* IR lift helpers.  Sync ids are numbered in creation order — exactly
   the runtime's id assignment in [run] — so static findings name the
   same lock/barrier the dynamic sanitizer would. *)
let reps n l = List.concat (List.init n (fun _ -> l))

let acq ?(mode = Ir.Exclusive) lock = Ir.Acquire { lock; mode }

let rel lock = Ir.Release lock

let sweep_locks n = List.concat (List.init n (fun g -> [ acq ~mode:Ir.Shared g; rel g ]))

(* Every synthetic workload synchronizes with locks and data-less
   barriers only, so even Blast (lock-bound data only) can run it.
   Standalone has no consistency protocol and a single processor —
   nothing to explore. *)
let lock_based = function Config.Standalone -> false | _ -> true

(* Build the machine first, then let [prog] allocate and return the
   per-processor body plus the oracle check.  The machine outlives a
   deadlock or a crash, so the engine's recorded tie-break choices stay
   readable for shrinking (see Runtime.schedule_choices). *)
let run_guarded cfg prog =
  let machine = R.create cfg in
  let body, verify = prog machine in
  match R.run machine body with
  | () ->
      let ok, detail, digest = verify () in
      { ok; detail; digest; machine = Some machine }
  | exception Midway_sched.Engine.Deadlock msg ->
      { ok = false; detail = "deadlock: " ^ msg; digest = ""; machine = Some machine }
  | exception e ->
      {
        ok = false;
        detail = "exception: " ^ Printexc.to_string e;
        digest = "";
        machine = Some machine;
      }

(* Oracle helper: every processor's copy of every cell must equal the
   expected value — the workloads end with a barrier and a read-mode
   sweep of every lock precisely so that all copies have converged. *)
let check_cells machine cells expected =
  let space = R.space machine in
  let nprocs = (R.config machine).Config.nprocs in
  let bad = ref [] in
  Array.iteri
    (fun i a ->
      for p = nprocs - 1 downto 0 do
        let v = Space.get_int space ~proc:p a in
        if v <> expected.(i) then
          bad := Printf.sprintf "p%d cell %d: got %d, want %d" p i v expected.(i) :: !bad
      done)
    cells;
  let digest =
    String.concat ","
      (Array.to_list (Array.map (fun a -> string_of_int (Space.get_int space ~proc:0 a)) cells))
  in
  match !bad with
  | [] -> (true, "", digest)
  | l -> (false, String.concat "; " l, digest)

(* Converge: one data-less barrier, then pull every lock's data in read
   mode so this processor's copy is up to date before the oracle looks. *)
let converge c fin locks =
  R.barrier c fin;
  Array.iter
    (fun lk ->
      R.acquire_read c lk;
      R.release c lk)
    locks

(* All processors add (id+1) to one lock-guarded cell, [iters] times.
   Addition commutes, so the total is schedule-independent. *)
let counter ~iters =
  {
    name = "counter";
    buggy = false;
    supports = lock_based;
    ir =
      Some
        (fun ~nprocs ->
          {
            Ir.name = "counter";
            nprocs;
            locks = [ (0, [ Range.v 0 8 ]) ];
            barriers = [ (1, []) ];
            rounds =
              [|
                Array.init nprocs (fun _ ->
                    reps iters
                      [ acq 0; Ir.Read (Range.v 0 8); Ir.Write (Range.v 0 8); rel 0; Ir.Work 500 ]);
                Array.init nprocs (fun _ -> sweep_locks 1);
              |];
          });
    run =
      (fun cfg ->
        run_guarded cfg (fun m ->
            let n = cfg.Config.nprocs in
            let cell = R.alloc m 8 in
            let lock = R.new_lock m [ Range.v cell 8 ] in
            let fin = R.new_barrier m [] in
            let body c =
              let me = R.id c in
              for _ = 1 to iters do
                R.acquire c lock;
                R.write_int c cell (R.read_int c cell + me + 1);
                R.release c lock;
                R.work_ns c 500
              done;
              converge c fin [| lock |]
            in
            let verify () =
              check_cells m [| cell |] [| iters * (n * (n + 1) / 2) |]
            in
            (body, verify)));
  }

(* Processor 0 counts a cell up under the exclusive lock; every other
   processor repeatedly pulls it in read mode and checks that the values
   it observes never decrease — the update protocol may skip states but
   must not reorder them.  Monotonicity holds under every legal
   schedule, so a violation is a protocol bug, not schedule noise. *)
let readers_writer ~iters =
  {
    name = "readers-writer";
    buggy = false;
    supports = lock_based;
    ir =
      Some
        (fun ~nprocs ->
          {
            Ir.name = "readers-writer";
            nprocs;
            locks = [ (0, [ Range.v 0 8 ]) ];
            barriers = [ (1, []) ];
            rounds =
              [|
                Array.init nprocs (fun p ->
                    if p = 0 then reps iters [ acq 0; Ir.Write (Range.v 0 8); rel 0; Ir.Work 300 ]
                    else
                      reps iters
                        [ acq ~mode:Ir.Shared 0; Ir.Read (Range.v 0 8); rel 0; Ir.Work 400 ]);
                Array.init nprocs (fun _ -> sweep_locks 1);
              |];
          });
    run =
      (fun cfg ->
        run_guarded cfg (fun m ->
            let cell = R.alloc m 8 in
            let lock = R.new_lock m [ Range.v cell 8 ] in
            let fin = R.new_barrier m [] in
            let regress = ref [] in
            let body c =
              let me = R.id c in
              if me = 0 then
                for k = 1 to iters do
                  R.acquire c lock;
                  R.write_int c cell k;
                  R.release c lock;
                  R.work_ns c 300
                done
              else begin
                let last = ref 0 in
                for _ = 1 to iters do
                  R.acquire_read c lock;
                  let v = R.read_int c cell in
                  R.release c lock;
                  if v < !last then
                    regress := Printf.sprintf "p%d saw %d after %d" me v !last :: !regress;
                  last := v;
                  R.work_ns c 400
                done
              end;
              converge c fin [| lock |]
            in
            let verify () =
              let ok, detail, digest = check_cells m [| cell |] [| iters |] in
              match !regress with
              | [] -> (ok, detail, digest)
              | l ->
                  ( false,
                    (if detail = "" then "" else detail ^ "; ")
                    ^ "non-monotone reads: " ^ String.concat "; " l,
                    digest )
            in
            (body, verify)));
  }

(* Several locks, each guarding its own cell; processor [p]'s k-th
   operation targets group [(p + k) mod groups], so acquisition orders
   differ across processors and contention shifts every iteration. *)
let mix ~groups ~iters =
  {
    name = "mix";
    buggy = false;
    supports = lock_based;
    ir =
      Some
        (fun ~nprocs ->
          let cell g = Range.v (g * 8) 8 in
          {
            Ir.name = "mix";
            nprocs;
            locks = List.init groups (fun g -> (g, [ cell g ]));
            barriers = [ (groups, []) ];
            rounds =
              [|
                Array.init nprocs (fun p ->
                    List.concat
                      (List.init iters (fun k ->
                           let g = (p + k) mod groups in
                           [ acq g; Ir.Read (cell g); Ir.Write (cell g); rel g; Ir.Work 200 ])));
                Array.init nprocs (fun _ -> sweep_locks groups);
              |];
          });
    run =
      (fun cfg ->
        run_guarded cfg (fun m ->
            let n = cfg.Config.nprocs in
            (* one 8-byte line per cell: distinct locks must not share a
               cache line, or RT's line-granular timestamps false-share
               across locks *)
            let base = R.alloc m ~line_size:8 (groups * 8) in
            let cell g = base + (g * 8) in
            let locks =
              Array.init groups (fun g ->
                  R.new_lock m ~owner:(g mod n) [ Range.v (cell g) 8 ])
            in
            let fin = R.new_barrier m [] in
            let body c =
              let me = R.id c in
              for k = 0 to iters - 1 do
                let g = (me + k) mod groups in
                R.acquire c locks.(g);
                R.write_int c (cell g) (R.read_int c (cell g) + me + 1);
                R.release c locks.(g);
                R.work_ns c 200
              done;
              converge c fin locks
            in
            let verify () =
              let expected = Array.make groups 0 in
              for p = 0 to n - 1 do
                for k = 0 to iters - 1 do
                  let g = (p + k) mod groups in
                  expected.(g) <- expected.(g) + p + 1
                done
              done;
              check_cells m (Array.init groups cell) expected
            in
            (body, verify)));
  }

(* Deliberately buggy: both processors run a correct lock-guarded
   transaction [x := 2x + (me+1)], but the oracle assumes processor 0's
   transaction commits first (final value 4).  Under the default FIFO
   schedule that assumption happens to hold; a seeded schedule that lets
   processor 1 win the first ties commits in the other order (final
   value 5).  This is the classic prey of a schedule fuzzer: code that
   is correct under the schedule the author tested and wrong under a
   legal reordering. *)
let order_sensitive =
  {
    name = "order-sensitive";
    buggy = true;
    supports = lock_based;
    (* Statically clean: the bug is an oracle assumption about commit
       order, not a synchronization defect — the precision half of the
       analyzer's contract (no warning here, a dynamic-only failure). *)
    ir =
      Some
        (fun ~nprocs ->
          {
            Ir.name = "order-sensitive";
            nprocs;
            locks = [ (0, [ Range.v 0 8 ]) ];
            barriers = [ (1, []) ];
            rounds =
              [|
                Array.init nprocs (fun p ->
                    if p < 2 then [ acq 0; Ir.Read (Range.v 0 8); Ir.Write (Range.v 0 8); rel 0 ]
                    else []);
                Array.init nprocs (fun _ -> sweep_locks 1);
              |];
          });
    run =
      (fun cfg ->
        if cfg.Config.nprocs < 2 then
          invalid_arg "order-sensitive needs at least 2 processors";
        run_guarded cfg (fun m ->
            let cell = R.alloc m 8 in
            let lock = R.new_lock m [ Range.v cell 8 ] in
            let fin = R.new_barrier m [] in
            let body c =
              let me = R.id c in
              if me < 2 then begin
                R.acquire c lock;
                R.write_int c cell ((2 * R.read_int c cell) + me + 1);
                R.release c lock
              end;
              converge c fin [| lock |]
            in
            let verify () = check_cells m [| cell |] [| 4 |] in
            (body, verify)));
  }

(* Deliberately buggy: processor 1 updates lock-bound data without
   acquiring the lock.  Processor 0 initializes the cell under the lock
   before a barrier, so the racy access always touches established data
   — its unlocked read sees a stale copy (the update never reached a
   processor that never synchronized) and its write never joins the
   protocol's consistent history.  The oracle fails and ECSan flags the
   unsynchronized access on every schedule, so the shrunk
   counterexample is the empty choice list. *)
let racy =
  {
    name = "racy";
    buggy = true;
    supports = lock_based;
    (* Statically flagged before any run: p1 touches lock 0's bound data
       without holding it — the exact class ECSan reports dynamically. *)
    ir =
      Some
        (fun ~nprocs ->
          let c = Range.v 0 8 in
          {
            Ir.name = "racy";
            nprocs;
            locks = [ (0, [ c ]) ];
            barriers = [ (1, []) ];
            rounds =
              [|
                Array.init nprocs (fun p ->
                    if p = 0 then [ acq 0; Ir.Write c; rel 0 ] else []);
                Array.init nprocs (fun p ->
                    if p = 0 then [ acq 0; Ir.Read c; Ir.Write c; rel 0 ]
                    else if p = 1 then [ Ir.Read c; Ir.Write c ]
                    else []);
                Array.init nprocs (fun _ -> sweep_locks 1);
              |];
          });
    run =
      (fun cfg ->
        if cfg.Config.nprocs < 2 then invalid_arg "racy needs at least 2 processors";
        run_guarded cfg (fun m ->
            let cell = R.alloc m 8 in
            let lock = R.new_lock m [ Range.v cell 8 ] in
            let fin = R.new_barrier m [] in
            let body c =
              let me = R.id c in
              if me = 0 then begin
                R.acquire c lock;
                R.write_int c cell 10;
                R.release c lock
              end;
              R.barrier c fin;
              if me = 0 then begin
                R.acquire c lock;
                R.write_int c cell (R.read_int c cell + 2);
                R.release c lock
              end
              else if me = 1 then
                (* the bug: no acquire around an access to bound data *)
                R.write_int c cell (R.read_int c cell + 1);
              converge c fin [| lock |]
            in
            let verify () = check_cells m [| cell |] [| 13 |] in
            (body, verify)));
  }

(* Deliberately buggy: processors 0 and 1 nest the two locks in
   opposite orders, with a work window between the two acquisitions so
   that on every virtual-time schedule both outer acquisitions happen
   before either inner one — a guaranteed deadlock (the counterexample
   shrinks to the empty choice list).  Statically this is a cycle in the
   lock-order graph with one witness path per processor. *)
let deadlocky =
  {
    name = "deadlocky";
    buggy = true;
    supports = lock_based;
    ir =
      Some
        (fun ~nprocs ->
          let c0 = Range.v 0 8 and c1 = Range.v 8 8 in
          {
            Ir.name = "deadlocky";
            nprocs;
            locks = [ (0, [ c0 ]); (1, [ c1 ]) ];
            barriers = [ (2, []) ];
            rounds =
              [|
                Array.init nprocs (fun p ->
                    if p = 0 then
                      [ acq 0; Ir.Work 2000; acq 1; Ir.Read c1; Ir.Write c1; rel 1; rel 0 ]
                    else if p = 1 then
                      [ acq 1; Ir.Work 2000; acq 0; Ir.Read c0; Ir.Write c0; rel 0; rel 1 ]
                    else []);
                Array.init nprocs (fun _ -> sweep_locks 2);
              |];
          });
    run =
      (fun cfg ->
        if cfg.Config.nprocs < 2 then invalid_arg "deadlocky needs at least 2 processors";
        run_guarded cfg (fun m ->
            (* one 8-byte line per cell: distinct locks must not share a
               cache line (cf. mix) *)
            let base = R.alloc m ~line_size:8 16 in
            let a = R.new_lock m [ Range.v base 8 ] in
            let b = R.new_lock m ~owner:(1 mod cfg.Config.nprocs) [ Range.v (base + 8) 8 ] in
            let fin = R.new_barrier m [] in
            let bump c addr = R.write_int c addr (R.read_int c addr + 1) in
            let body c =
              (match R.id c with
              | 0 ->
                  R.acquire c a;
                  R.work_ns c 2000;
                  R.acquire c b;
                  bump c (base + 8);
                  R.release c b;
                  R.release c a
              | 1 ->
                  R.acquire c b;
                  R.work_ns c 2000;
                  R.acquire c a;
                  bump c base;
                  R.release c a;
                  R.release c b
              | _ -> ());
              converge c fin [| a; b |]
            in
            let verify () = check_cells m [| base; base + 8 |] [| 1; 1 |] in
            (body, verify)));
  }

(* Crash-fault prey and probe.  All state — one counter cell plus a
   per-processor committed[] ledger — is bound to a single lock and
   updated atomically inside one critical section, so whatever a crash
   destroys it destroys consistently: the quorum failover reverts the
   bound data to the last released snapshot, in which
   [cell = sum (p+1) * committed.(p)] holds by construction.  The oracle
   checks exactly that on the live processors' converged copies, plus
   that no survivor lost a committed section.

   Unless the incoming configuration already arms [Config.crash], the
   workload injects a scripted plan stopping processor 0 at 10 us (with
   a protocol-level recovery later): processor 0 enters its first
   critical section at virtual time ~0 and holds it for [hold_ns] >> 10
   us, so on every backend it dies mid-section holding the lock — the
   canonical failover scenario, and [crashy-broken]'s opening to serve
   stale data. *)
let crashy_with ~name ~buggy ~broken ~iters =
  let module Crash = Midway_simnet.Crash in
  {
    name;
    buggy;
    supports = lock_based;
    (* crash plans and quorum failover are beyond the IR *)
    ir = None;
    run =
      (fun cfg ->
        let n = cfg.Config.nprocs in
        if n < 3 then
          invalid_arg (name ^ " needs at least 3 processors (majority quorum with one down)");
        let cfg =
          match cfg.Config.crash with
          | Some cr when cr.Config.broken_failover = broken -> cfg
          | Some cr ->
              Config.with_crash ~replicas:cr.Config.replicas
                ~suspect_attempts:cr.Config.suspect_attempts ~broken
                ~watchdog_ns:cr.Config.watchdog_ns cr.Config.plan cfg
          | None ->
              let plan =
                Crash.scripted
                  [
                    { Crash.at_ns = 10_000; proc = 0; action = Crash.Stop };
                    { Crash.at_ns = 1_500_000; proc = 0; action = Crash.Recover };
                  ]
              in
              Config.with_crash ~broken plan cfg
        in
        run_guarded cfg (fun m ->
            let hold_ns = 30_000 in
            let base = R.alloc m ((n + 1) * 8) in
            let cell = base and committed p = base + ((p + 1) * 8) in
            let lock = R.new_lock m [ Range.v base ((n + 1) * 8) ] in
            let fin = R.new_barrier m [] in
            let body c =
              let me = R.id c in
              for _ = 1 to iters do
                R.acquire c lock;
                R.write_int c cell (R.read_int c cell + me + 1);
                R.write_int c (committed me) (R.read_int c (committed me) + 1);
                (* keep the section open: the plan's crash window *)
                R.work_ns c hold_ns;
                R.release c lock;
                R.work_ns c 500
              done;
              converge c fin [| lock |]
            in
            let verify () =
              let space = R.space m in
              let killed = R.killed_procs m in
              let live = List.filter (fun p -> not (List.mem p killed)) (List.init n Fun.id) in
              match live with
              | [] -> (false, "no live processor left", "")
              | first :: _ ->
                  let get p a = Space.get_int space ~proc:p a in
                  let com = Array.init n (fun i -> get first (committed i)) in
                  let v = get first cell in
                  let bad = ref [] in
                  (* convergence: every live copy agrees with the first *)
                  List.iter
                    (fun p ->
                      if get p cell <> v then
                        bad :=
                          Printf.sprintf "p%d cell diverged: %d vs %d" p (get p cell) v :: !bad;
                      Array.iteri
                        (fun i c0 ->
                          if get p (committed i) <> c0 then
                            bad :=
                              Printf.sprintf "p%d committed[%d] diverged: %d vs %d" p i
                                (get p (committed i)) c0
                              :: !bad)
                        com)
                    live;
                  (* the ledger invariant: atomic sections revert whole *)
                  let want = ref 0 in
                  Array.iteri (fun i c -> want := !want + ((i + 1) * c)) com;
                  if v <> !want then
                    bad := Printf.sprintf "cell is %d but the ledger says %d" v !want :: !bad;
                  (* survivors lose nothing *)
                  List.iter
                    (fun p ->
                      if com.(p) <> iters then
                        bad :=
                          Printf.sprintf "survivor p%d committed %d/%d" p com.(p) iters :: !bad)
                    live;
                  let digest =
                    Printf.sprintf "cell=%d;committed=%s;killed=%s;failovers=%d" v
                      (String.concat "," (Array.to_list (Array.map string_of_int com)))
                      (String.concat "," (List.map string_of_int killed))
                      (R.failover_count m)
                  in
                  (match !bad with
                  | [] -> (true, "", digest)
                  | l -> (false, String.concat "; " l, digest))
            in
            (body, verify)));
  }

let crashy ~iters = crashy_with ~name:"crashy" ~buggy:false ~broken:false ~iters

let crashy_broken ~iters = crashy_with ~name:"crashy-broken" ~buggy:true ~broken:true ~iters

(* Wrap one of the five paper applications.  The application verifies
   itself against its sequential oracle; the digest is left empty
   because app memory layouts are backend-shaped (the explorer's
   cross-backend digest comparison only applies to the synthetic
   workloads). *)
let app ~scale suite_app =
  let name = Midway_report.Suite.app_name suite_app in
  {
    name;
    buggy = false;
    (* applications are real programs, not IR grids *)
    ir = None;
    supports =
      (fun b ->
        match b with
        | Config.Standalone -> false
        (* Blast has no write detection: lock-bound data only, so only
           the lock-based application runs under it (cf. bin/fingerprint). *)
        | Config.Blast -> suite_app = Midway_report.Suite.Quicksort
        | _ -> true);
    run =
      (fun cfg ->
        match Midway_report.Suite.run_app suite_app cfg ~scale with
        | o ->
            {
              ok = o.Midway_apps.Outcome.ok;
              detail = String.concat "; " o.Midway_apps.Outcome.notes;
              digest = "";
              machine = Some o.Midway_apps.Outcome.machine;
            }
        | exception Midway_sched.Engine.Deadlock msg ->
            (* Suite.run_app builds its machine internally, so a deadlock
               loses the recorded choices; the schedule seed in [msg]
               still reproduces the hang. *)
            { ok = false; detail = "deadlock: " ^ msg; digest = ""; machine = None }
        | exception e ->
            {
              ok = false;
              detail = "exception: " ^ Printexc.to_string e;
              digest = "";
              machine = None;
            });
  }
