(** Workloads for the schedule explorer.

    A workload is a named, self-verifying simulated program.  Running
    one builds a machine for a given {!Midway.Config.t}, executes it and
    checks the result against a sequential oracle computed outside the
    machine.  All oracles are robust to legal schedule variation —
    commutative updates, monotonicity invariants, convergence after a
    final barrier-plus-read-sweep — so a reported failure is a real
    ordering bug, never schedule noise. *)

type outcome = {
  ok : bool;  (** the oracle's verdict *)
  detail : string;  (** human-readable mismatch / exception description *)
  digest : string;
      (** canonical rendering of the converged shared data (processor
          0's copy), for cross-backend and replay identity checks;
          [""] when the workload does not define one *)
  machine : Midway.Runtime.t option;
      (** the machine, for counters, invariants, the ECSan report, the
          trace and {!Midway.Runtime.schedule_choices}; [None] only
          when the machine was lost to an exception during
          construction (application workloads) *)
}

type t = {
  name : string;
  buggy : bool;  (** deliberately wrong: fuzzer prey, excluded from clean sweeps *)
  supports : Midway.Config.backend -> bool;
  run : Midway.Config.t -> outcome;
  ir : (nprocs:int -> Midway_analyze.Ir.program) option;
      (** the workload lifted to the EC-IR for static analysis; [None]
          for workloads whose behavior the IR cannot express (crash
          plans, full applications).  The lift must mirror [run]'s
          synchronization structure, with sync ids numbered in creation
          order — exactly the runtime's id assignment — so static and
          dynamic findings name the same objects. *)
}

val lock_based : Midway.Config.backend -> bool
(** Supports-predicate of workloads that synchronize with locks and
    data-less barriers only: every backend except [Standalone]. *)

val run_guarded :
  Midway.Config.t ->
  (Midway.Runtime.t -> (Midway.Runtime.ctx -> unit) * (unit -> bool * string * string)) ->
  outcome
(** [run_guarded cfg prog] builds the machine, lets [prog] allocate and
    return (body, verify), runs the body on every processor and applies
    the verdict.  {!Midway_sched.Engine.Deadlock} and other exceptions
    become failing outcomes that still carry the machine, so recorded
    tie-break choices survive for shrinking. *)

val check_cells :
  Midway.Runtime.t -> int array -> int array -> bool * string * string
(** [check_cells m addrs expected] checks every processor's copy of
    every 8-byte cell against the oracle; returns (ok, detail, digest)
    where the digest renders processor 0's copy. *)

val converge : Midway.Runtime.ctx -> Midway.Sync.barrier -> Midway.Sync.lock array -> unit
(** Cross the (data-less) barrier, then pull every lock once in read
    mode so this processor's copies are current before the oracle
    looks. *)

(** {1 Clean synthetic workloads} *)

val counter : iters:int -> t
(** Every processor adds [id+1] to one lock-guarded cell [iters] times. *)

val readers_writer : iters:int -> t
(** Processor 0 counts up under the exclusive lock; the others pull in
    read mode and check the observed values never decrease. *)

val mix : groups:int -> iters:int -> t
(** [groups] locks, shifting contention: processor [p]'s k-th operation
    targets group [(p+k) mod groups]. *)

(** {1 Deliberately buggy workloads (fuzzer prey)} *)

val order_sensitive : t
(** Correct locking, wrong oracle: assumes processor 0's transaction
    commits before processor 1's.  Passes under FIFO, fails under seeds
    that let processor 1 win the first ties. *)

val racy : t
(** Processor 1 writes lock-bound data without acquiring the lock.
    Fails (oracle + ECSan) on every schedule; shrinks to the empty
    choice list. *)

val deadlocky : t
(** Processors 0 and 1 nest two locks in opposite orders with a work
    window between the acquisitions, so every schedule interleaves the
    outer acquisitions and deadlocks; shrinks to the empty choice list.
    Statically a lock-order cycle (the analyzer's deadlock prey). *)

(** {1 Crash-fault workloads} *)

val crashy : iters:int -> t
(** Lock-guarded counter plus a per-processor committed[] ledger, all
    bound to one lock and updated atomically per critical section, under
    node crashes.  Unless the configuration already arms
    {!Midway.Config.t.crash}, injects a scripted plan stopping
    processor 0 at 10 us — inside its first critical section while
    holding the lock — so every run exercises the quorum failover.  The
    oracle checks, over live processors only: convergence, the ledger
    invariant [cell = sum (p+1)*committed.(p)] (atomic sections revert
    whole), and that no survivor lost a committed section.  Needs
    [nprocs >= 3] (majority quorum with one processor down).  The digest
    includes the killed set and the failover count. *)

val crashy_broken : iters:int -> t
(** [crashy] with {!Midway.Config.t.crash}'s [broken_failover] forced
    on: the failover skips replication and the epoch reset, so a new
    owner can serve stale bound data.  Fuzzer prey for the crash
    dimension. *)

(** {1 Applications} *)

val app : scale:float -> Midway_report.Suite.app -> t
(** One of the five paper applications at problem size [scale].
    Self-verifying via its own sequential oracle; defines no digest. *)
