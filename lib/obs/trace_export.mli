(** Chrome trace-event JSON export (loadable in Perfetto / chrome://tracing).

    One process per run, one track per simulated processor, spans as
    ["X"] complete events with [ts]/[dur] in microseconds on the
    simulated timeline.  Within each track events are sorted by start
    time, longer spans first at ties, so [ts] is monotone per track and
    enclosing spans nest correctly. *)

val to_json : ?name:string -> Obs.span list -> Midway_util.Json.t
(** A single-process trace; [name] (default ["midway"]) becomes the
    Perfetto process name. *)

val multi_to_json : (string * Obs.span list) list -> Midway_util.Json.t
(** Several runs in one trace, one Chrome "process" (pid = list index)
    per [(name, spans)] entry — how [experiments --trace-out] packs a
    whole sweep into one file. *)

val write : string -> Midway_util.Json.t -> unit
(** Write JSON to a file with a trailing newline. *)
