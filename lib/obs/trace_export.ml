(* Chrome trace-event ("Perfetto") export.

   One process per run, one track (tid) per simulated processor, spans
   as "X" complete events on the simulated timeline.  Chrome's ts/dur
   unit is microseconds; the simulator deals in integer nanoseconds, so
   we emit Float microseconds (exact for sub-millisecond precision at
   any plausible run length).  Events are sorted by (track, t0,
   longer-duration-first) so viewers nest enclosing spans correctly and
   ts is monotone within each track. *)

module Json = Midway_util.Json

let us ns = float_of_int ns /. 1000.

let meta_event ~pid ~tid ~name ~value =
  let args = [ ("name", Json.Str value) ] in
  Json.Obj
    ([ ("name", Json.Str name); ("ph", Json.Str "M"); ("pid", Json.Int pid) ]
    @ (match tid with None -> [] | Some t -> [ ("tid", Json.Int t) ])
    @ [ ("args", Json.Obj args) ])

let span_event ~pid (s : Obs.span) =
  let args =
    [ ("sync", Json.Int s.sync); ("bytes", Json.Int s.bytes) ]
    @ if s.note = "" then [] else [ ("note", Json.Str s.note) ]
  in
  Json.Obj
    [
      ("name", Json.Str (Obs.kind_name s.kind));
      ("cat", Json.Str (Obs.kind_name s.kind));
      ("ph", Json.Str "X");
      ("ts", Json.Float (us s.t0));
      ("dur", Json.Float (us (s.t1 - s.t0)));
      ("pid", Json.Int pid);
      ("tid", Json.Int s.proc);
      ("args", Json.Obj args);
    ]

let sort_spans spans =
  List.stable_sort
    (fun (a : Obs.span) (b : Obs.span) ->
      let c = compare a.proc b.proc in
      if c <> 0 then c
      else
        let c = compare a.t0 b.t0 in
        if c <> 0 then c else compare (b.t1 - b.t0) (a.t1 - a.t0))
    spans

let procs_of spans =
  List.sort_uniq compare (List.map (fun (s : Obs.span) -> s.proc) spans)

let events_for ~pid ~name spans =
  let metas =
    meta_event ~pid ~tid:None ~name:"process_name" ~value:name
    :: List.map
         (fun p ->
           meta_event ~pid ~tid:(Some p) ~name:"thread_name"
             ~value:(Printf.sprintf "proc %d" p))
         (procs_of spans)
  in
  metas @ List.map (span_event ~pid) (sort_spans spans)

let multi_to_json named =
  let events =
    List.concat (List.mapi (fun pid (name, spans) -> events_for ~pid ~name spans) named)
  in
  Json.Obj [ ("traceEvents", Json.List events); ("displayTimeUnit", Json.Str "ns") ]

let to_json ?(name = "midway") spans = multi_to_json [ (name, spans) ]

let write path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string json);
      output_char oc '\n')
