(** The metrics registry: named counters and fixed-bucket histograms.

    Each series is keyed by (metric name, label); labels are free-form
    strings, by convention ["p3/lock2"] for (processor, sync object)
    attribution and ["p0->p2"] for a network channel.  All values are
    integers (nanoseconds, bytes, counts).  A metric name's bucket
    layout is fixed by its first {!observe}, so every label of one
    metric shares comparable buckets.

    Reading the registry goes through immutable {!snapshot}s, which sort
    their series for deterministic output; {!delta} subtracts two
    snapshots to isolate a phase of a run. *)

type t

val create : unit -> t

val incr : t -> name:string -> ?label:string -> int -> unit
(** Add to a counter (created at zero on first use).  [label] defaults
    to [""]. *)

val observe : t -> name:string -> ?label:string -> ?buckets:int array -> int -> unit
(** Record one histogram observation.  [buckets] (strictly increasing
    upper bounds; a value [v] lands in the first bucket with
    [v <= bound], else the implicit overflow bucket) applies only to the
    first observation of [name] and defaults to {!ns_buckets}. *)

(** {1 Stock bucket layouts} *)

val ns_buckets : int array
(** Latencies: 1 us .. 1 s in coarse decades. *)

val bytes_buckets : int array
(** Payload sizes: 0 .. 1 MiB. *)

val count_buckets : int array
(** Small counts (retransmits per send and the like): 0 .. 64. *)

val latency_buckets : int array
(** Request latencies: 1 us .. 1 s at roughly 1/1.8/3.2/5.6 per decade,
    so a {!quantile} bracket is at most a factor of ~1.8 wide. *)

(** {1 Snapshots} *)

type hist_view = {
  h_buckets : int array;
  h_counts : int array;  (** length [buckets + 1]; last is the overflow bucket *)
  h_sum : int;
  h_count : int;
  h_min : int;  (** meaningless when [h_count = 0] *)
  h_max : int;
}

type snapshot = {
  s_counters : ((string * string) * int) list;  (** sorted by (name, label) *)
  s_hists : ((string * string) * hist_view) list;
}

val snapshot : t -> snapshot

val delta : before:snapshot -> after:snapshot -> snapshot
(** Per-series [after - before]; series missing from [before] count from
    zero.  [h_min]/[h_max] are carried from [after] (extrema cannot be
    reconstructed from endpoint snapshots).  Raises [Invalid_argument]
    if a shared series changed bucket layout between the snapshots. *)

val counter_value : snapshot -> name:string -> label:string -> int
(** 0 when absent. *)

val find_hist : snapshot -> name:string -> label:string -> hist_view option

val hist_totals : snapshot -> name:string -> int * int
(** [(sum, count)] of one metric aggregated across all labels. *)

val labels_of : snapshot -> name:string -> string list
(** The labels under which histogram [name] was observed, sorted. *)

val quantile : hist_view -> float -> int * int
(** [quantile h q] brackets the nearest-rank [q]-quantile (the
    [ceil (q * count)]-th smallest observation): returns [(lo, hi)] such
    that the exact quantile [v] satisfies [lo < v <= hi].  [lo] is the
    previous bucket's upper bound ([h_min - 1] in the first bucket) and
    [hi] the containing bucket's bound ([h_max] in the overflow bucket);
    the bracket width is the histogram's quantization error bound.
    Raises [Invalid_argument] on an empty histogram or [q] outside
    [(0, 1]]. *)

val quantile_le : hist_view -> float -> int
(** The conservative (upper) end of {!quantile}'s bracket — what the
    reports print as p50/p95/p99. *)

(** {1 Rendering} *)

val to_json : snapshot -> Midway_util.Json.t
(** [{"counters": [...], "histograms": [...]}] — what
    [midway-run --metrics-out] writes. *)

val render_markdown : snapshot -> string
