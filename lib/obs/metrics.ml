(* A small in-process metrics registry: named counters and fixed-bucket
   histograms, each keyed by (metric name, label).  Labels are free-form
   strings; the runtime uses the conventions "p3/lock2" (processor 3,
   sync object "lock 2") and "p0->p2" (a network channel), so one
   registry carries both per-processor and per-sync-object series.

   Everything is integer-valued (the simulator deals in nanoseconds and
   bytes), deterministic (snapshots sort their series), and free of
   external dependencies beyond Midway_util.Json for the export. *)

module Json = Midway_util.Json

(* Fixed bucket upper bounds (inclusive: a value v lands in the first
   bucket with v <= bound; larger values land in the implicit overflow
   bucket).  The defaults cover the simulator's dynamic ranges. *)

let ns_buckets =
  [| 1_000; 10_000; 100_000; 300_000; 1_000_000; 3_000_000; 10_000_000; 100_000_000;
     1_000_000_000 |]

let bytes_buckets = [| 0; 64; 256; 1_024; 4_096; 16_384; 65_536; 262_144; 1_048_576 |]

let count_buckets = [| 0; 1; 2; 4; 8; 16; 32; 64 |]

(* Request latencies want tighter percentile brackets than ns_buckets'
   coarse decades: roughly 1-1.8-3.2-5.6 per decade from 1 us to 1 s,
   so a quantile bracket is at most a factor of ~1.8 wide. *)
let latency_buckets =
  [|
    1_000; 1_800; 3_200; 5_600; 10_000; 18_000; 32_000; 56_000; 100_000; 180_000; 320_000;
    560_000; 1_000_000; 1_800_000; 3_200_000; 5_600_000; 10_000_000; 18_000_000; 32_000_000;
    56_000_000; 100_000_000; 180_000_000; 320_000_000; 560_000_000; 1_000_000_000;
  |]

type hist = {
  buckets : int array;  (* strictly increasing upper bounds *)
  counts : int array;  (* length buckets + 1; last = overflow *)
  mutable sum : int;
  mutable n : int;
  mutable vmin : int;
  mutable vmax : int;
}

type t = {
  counters : (string * string, int ref) Hashtbl.t;
  hists : (string * string, hist) Hashtbl.t;
  bucket_spec : (string, int array) Hashtbl.t;  (* one bucket layout per metric name *)
}

let create () =
  { counters = Hashtbl.create 32; hists = Hashtbl.create 32; bucket_spec = Hashtbl.create 8 }

let incr t ~name ?(label = "") v =
  match Hashtbl.find_opt t.counters (name, label) with
  | Some r -> r := !r + v
  | None -> Hashtbl.replace t.counters (name, label) (ref v)

let validate_buckets buckets =
  if Array.length buckets = 0 then invalid_arg "Metrics.observe: empty bucket layout";
  Array.iteri
    (fun i b ->
      if i > 0 && b <= buckets.(i - 1) then
        invalid_arg "Metrics.observe: bucket bounds must be strictly increasing")
    buckets

(* The first [observe] of a metric name fixes its bucket layout; later
   calls reuse it so every label of one metric is comparable. *)
let layout_for t ~name ~buckets =
  match Hashtbl.find_opt t.bucket_spec name with
  | Some b -> b
  | None ->
      let b = Option.value buckets ~default:ns_buckets in
      validate_buckets b;
      Hashtbl.replace t.bucket_spec name b;
      b

let bucket_index buckets v =
  let n = Array.length buckets in
  let rec go i = if i >= n then n else if v <= buckets.(i) then i else go (i + 1) in
  go 0

let observe t ~name ?(label = "") ?buckets v =
  let h =
    match Hashtbl.find_opt t.hists (name, label) with
    | Some h -> h
    | None ->
        let layout = layout_for t ~name ~buckets in
        let h =
          {
            buckets = layout;
            counts = Array.make (Array.length layout + 1) 0;
            sum = 0;
            n = 0;
            vmin = max_int;
            vmax = min_int;
          }
        in
        Hashtbl.replace t.hists (name, label) h;
        h
  in
  h.counts.(bucket_index h.buckets v) <- h.counts.(bucket_index h.buckets v) + 1;
  h.sum <- h.sum + v;
  h.n <- h.n + 1;
  if v < h.vmin then h.vmin <- v;
  if v > h.vmax then h.vmax <- v

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type hist_view = {
  h_buckets : int array;
  h_counts : int array;
  h_sum : int;
  h_count : int;
  h_min : int;  (* meaningless (max_int) when h_count = 0 *)
  h_max : int;
}

type snapshot = {
  s_counters : ((string * string) * int) list;  (* sorted by (name, label) *)
  s_hists : ((string * string) * hist_view) list;
}

let snapshot t =
  let counters =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let hists =
    Hashtbl.fold
      (fun k h acc ->
        ( k,
          {
            h_buckets = Array.copy h.buckets;
            h_counts = Array.copy h.counts;
            h_sum = h.sum;
            h_count = h.n;
            h_min = h.vmin;
            h_max = h.vmax;
          } )
        :: acc)
      t.hists []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  { s_counters = counters; s_hists = hists }

(* after - before, per series.  A series absent from [before] counts
   from zero; series absent from [after] are dropped (registries only
   grow, so that can only happen across different registries).  The
   delta's min/max are taken from [after] — extrema are not recoverable
   from two endpoint snapshots. *)
let delta ~before ~after =
  let counters =
    List.map
      (fun ((k, v) : (string * string) * int) ->
        let v0 = match List.assoc_opt k before.s_counters with Some x -> x | None -> 0 in
        (k, v - v0))
      after.s_counters
  in
  let hists =
    List.map
      (fun ((k, h) : (string * string) * hist_view) ->
        match List.assoc_opt k before.s_hists with
        | None -> (k, h)
        | Some h0 ->
            if h0.h_buckets <> h.h_buckets then
              invalid_arg "Metrics.delta: bucket layouts differ between snapshots";
            ( k,
              {
                h with
                h_counts = Array.mapi (fun i c -> c - h0.h_counts.(i)) h.h_counts;
                h_sum = h.h_sum - h0.h_sum;
                h_count = h.h_count - h0.h_count;
              } ))
      after.s_hists
  in
  { s_counters = counters; s_hists = hists }

let counter_value s ~name ~label =
  match List.assoc_opt (name, label) s.s_counters with Some v -> v | None -> 0

let find_hist s ~name ~label = List.assoc_opt (name, label) s.s_hists

(* Aggregate one metric across all of its labels. *)
let hist_totals s ~name =
  List.fold_left
    (fun (sum, count) (((n, _), h) : (string * string) * hist_view) ->
      if n = name then (sum + h.h_sum, count + h.h_count) else (sum, count))
    (0, 0) s.s_hists

(* Nearest-rank quantile bracketing.  With inclusive upper bounds a
   value v in bucket i satisfies bound(i-1) < v <= bound(i), so when the
   cumulative count first reaches the rank at bucket i the exact
   nearest-rank quantile lies in exactly that open-closed interval:
   lo < q-th value <= hi.  The bracket width is the quantization error
   bound of any percentile read off the histogram. *)
let quantile (h : hist_view) q =
  if h.h_count = 0 then invalid_arg "Metrics.quantile: empty histogram";
  if not (q > 0. && q <= 1.) then invalid_arg "Metrics.quantile: q must be in (0, 1]";
  let rank = max 1 (int_of_float (ceil (q *. float_of_int h.h_count))) in
  let nb = Array.length h.h_buckets in
  let rec go i cum =
    let cum = cum + h.h_counts.(i) in
    if cum >= rank then i else go (i + 1) cum
  in
  let i = go 0 0 in
  let lo = if i = 0 then h.h_min - 1 else h.h_buckets.(i - 1) in
  let hi = if i < nb then h.h_buckets.(i) else h.h_max in
  (lo, hi)

let quantile_le h q = snd (quantile h q)

let labels_of s ~name =
  List.filter_map
    (fun (((n, l), _) : (string * string) * hist_view) -> if n = name then Some l else None)
    s.s_hists

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let to_json s =
  let counter ((name, label), v) =
    Json.Obj [ ("name", Json.Str name); ("label", Json.Str label); ("value", Json.Int v) ]
  in
  let hist ((name, label), h) =
    let buckets =
      List.init
        (Array.length h.h_counts)
        (fun i ->
          let le =
            if i < Array.length h.h_buckets then Json.Int h.h_buckets.(i) else Json.Str "inf"
          in
          Json.Obj [ ("le", le); ("count", Json.Int h.h_counts.(i)) ])
    in
    Json.Obj
      [
        ("name", Json.Str name);
        ("label", Json.Str label);
        ("count", Json.Int h.h_count);
        ("sum", Json.Int h.h_sum);
        ("min", Json.Int (if h.h_count = 0 then 0 else h.h_min));
        ("max", Json.Int (if h.h_count = 0 then 0 else h.h_max));
        ("buckets", Json.List buckets);
      ]
  in
  Json.Obj
    [
      ("counters", Json.List (List.map counter s.s_counters));
      ("histograms", Json.List (List.map hist s.s_hists));
    ]

let render_markdown s =
  let buf = Buffer.create 1024 in
  if s.s_counters <> [] then begin
    Buffer.add_string buf "## Counters\n\n| counter | label | value |\n|---|---|---:|\n";
    List.iter
      (fun ((name, label), v) ->
        Buffer.add_string buf (Printf.sprintf "| %s | %s | %d |\n" name label v))
      s.s_counters;
    Buffer.add_char buf '\n'
  end;
  if s.s_hists <> [] then begin
    Buffer.add_string buf
      "## Histograms\n\n\
       | histogram | label | count | sum | min | max | mean |\n\
       |---|---|---:|---:|---:|---:|---:|\n";
    List.iter
      (fun ((name, label), h) ->
        if h.h_count = 0 then
          Buffer.add_string buf (Printf.sprintf "| %s | %s | 0 | 0 | - | - | - |\n" name label)
        else
          Buffer.add_string buf
            (Printf.sprintf "| %s | %s | %d | %d | %d | %d | %.1f |\n" name label h.h_count
               h.h_sum h.h_min h.h_max
               (float_of_int h.h_sum /. float_of_int h.h_count)))
      s.s_hists
  end;
  Buffer.contents buf
