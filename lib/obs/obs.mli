(** The span log: typed begin/end events on the simulated clock.

    Distinct from the pretty-print {!Midway.Trace} ring: spans are
    machine-consumable intervals (for Perfetto export and metric
    reconciliation) in an unbounded-or-capped log.  Recording never
    advances simulated time — observers only read timestamps the
    runtime already computed. *)

type kind =
  | Acquire_wait  (** lock requested until ownership granted *)
  | Barrier_wait  (** barrier arrival until release *)
  | Collect  (** write collection on the releaser *)
  | Diff  (** detection-scan / page-diff sub-phase of a collection *)
  | Apply  (** installing received updates on the requester *)
  | Retransmit  (** a reliable-channel episode needing retransmissions *)
  | Sched_block  (** generic scheduler block, tagged with the reason *)
  | Failover
      (** suspicion of a dead lock owner until quorum ownership transfer *)
  | Request
      (** an application-level request (the sharded KV store's
          get/put/delete/scan), from scheduled open-loop arrival to
          completion — [t1 - t0] is the request's sojourn latency
          including queueing behind its client's earlier requests *)

val kind_name : kind -> string
(** Stable wire name: ["lock_wait"], ["barrier_wait"], ["collect"],
    ["diff"], ["apply"], ["retransmit"], ["sched_block"], ["failover"],
    ["kv_request"]. *)

type span = {
  kind : kind;
  proc : int;
  sync : int;  (** sync-object id; [-1] = none *)
  bytes : int;  (** payload bytes attributed to the span; [0] = none *)
  t0 : int;  (** simulated ns *)
  t1 : int;
  note : string;
}

type t

val create : ?cap:int -> unit -> t
(** [cap = 0] (default) keeps every span; [cap > 0] keeps the first
    [cap] and counts the rest as {!dropped}. *)

val metrics : t -> Metrics.t
(** The metrics registry riding along with the span log. *)

val span :
  t ->
  kind ->
  proc:int ->
  ?sync:int ->
  ?bytes:int ->
  ?note:string ->
  t0:int ->
  t1:int ->
  unit ->
  unit
(** Record a closed span.  Raises [Invalid_argument] if [t1 < t0]. *)

type handle

val begin_span : t -> kind -> proc:int -> t0:int -> handle
val end_span : t -> handle -> ?sync:int -> ?bytes:int -> ?note:string -> t1:int -> unit -> unit
(** Close an open handle (raises [Invalid_argument] on an unknown or
    already-closed one). *)

val spans : t -> span list
(** In recording order. *)

val span_count : t -> int
val dropped : t -> int
