(* The span log: structured begin/end events on the *simulated* clock.

   This is deliberately distinct from the Trace ring in lib/core: the
   ring holds pretty-printed protocol lines with a fixed capacity and is
   meant for eyeballing a tail; spans are typed intervals meant for
   machine consumption (Perfetto export, metrics reconciliation).

   Recording never touches the simulated clock — observers read
   timestamps the runtime already computed, so an armed observability
   layer cannot perturb the run it measures. *)

type kind =
  | Acquire_wait  (* lock requested until ownership granted *)
  | Barrier_wait  (* barrier arrival until release *)
  | Collect  (* write collection on the releaser *)
  | Diff  (* the detection-scan / page-diff sub-phase of a collection *)
  | Apply  (* installing received updates on the requester *)
  | Retransmit  (* a reliable-channel episode that needed retransmissions *)
  | Sched_block  (* generic scheduler block, tagged with the reason *)
  | Failover  (* suspicion of a dead lock owner until quorum ownership transfer *)
  | Request  (* an application-level request, scheduled arrival to completion *)

let kind_name = function
  | Acquire_wait -> "lock_wait"
  | Barrier_wait -> "barrier_wait"
  | Collect -> "collect"
  | Diff -> "diff"
  | Apply -> "apply"
  | Retransmit -> "retransmit"
  | Sched_block -> "sched_block"
  | Failover -> "failover"
  | Request -> "kv_request"

type span = {
  kind : kind;
  proc : int;
  sync : int;  (* sync-object id; -1 = none *)
  bytes : int;  (* payload bytes attributed to the span; 0 = none *)
  t0 : int;  (* simulated ns *)
  t1 : int;
  note : string;
}

type t = {
  cap : int;  (* 0 = unbounded; otherwise keep the first [cap] spans *)
  mutable log : span list;  (* newest first *)
  mutable count : int;  (* spans kept *)
  mutable dropped : int;  (* spans discarded past the cap *)
  metrics : Metrics.t;
  mutable open_spans : (int * kind * int * int) list;  (* handle, kind, proc, t0 *)
  mutable next_handle : int;
}

let create ?(cap = 0) () =
  {
    cap;
    log = [];
    count = 0;
    dropped = 0;
    metrics = Metrics.create ();
    open_spans = [];
    next_handle = 0;
  }

let metrics t = t.metrics

let span t kind ~proc ?(sync = -1) ?(bytes = 0) ?(note = "") ~t0 ~t1 () =
  if t1 < t0 then invalid_arg "Obs.span: t1 < t0";
  if t.cap > 0 && t.count >= t.cap then t.dropped <- t.dropped + 1
  else begin
    t.log <- { kind; proc; sync; bytes; t0; t1; note } :: t.log;
    t.count <- t.count + 1
  end

(* Handle-based variant for call sites that bracket a computation rather
   than knowing both endpoints up front. *)
type handle = int

let begin_span t kind ~proc ~t0 =
  let h = t.next_handle in
  t.next_handle <- h + 1;
  t.open_spans <- (h, kind, proc, t0) :: t.open_spans;
  h

let end_span t h ?(sync = -1) ?(bytes = 0) ?(note = "") ~t1 () =
  match List.partition (fun (h', _, _, _) -> h' = h) t.open_spans with
  | [ (_, kind, proc, t0) ], rest ->
      t.open_spans <- rest;
      span t kind ~proc ~sync ~bytes ~note ~t0 ~t1 ()
  | _ -> invalid_arg "Obs.end_span: unknown or already-closed handle"

let spans t = List.rev t.log
let span_count t = t.count
let dropped t = t.dropped
