type addr = int

(* Last-hit accessor cache, one per processor: the apps' inner loops walk
   arrays word by word, so nearly every access lands in the region (and
   backing buffer) of the previous one.  Caching the pair skips the
   region lookup and the per-proc backing resolution on repeat hits.
   Safe because regions are never unmapped and a region's backing buffer
   for a processor is created once and never replaced. *)
type cache_entry = { mutable c_idx : int; mutable c_backing : Bytes.t }

type t = {
  nprocs : int;
  region_size : int;
  mask : int;  (* region_size - 1: offset within a region is [addr land mask] *)
  mutable regions : Region.t array;  (* indexed by region number; None slots are Region 0 / holes *)
  mutable region_list : Region.t list;  (* creation order, reversed *)
  mutable next_index : int;
  (* Bump-allocation cursors, keyed by (kind, line_size). *)
  cursors : (Region.kind * int, Region.t) Hashtbl.t;
  cache : cache_entry array;  (* by proc *)
}

exception Unmapped of addr

exception Crosses_region of { addr : addr; len : int; last : addr }

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create ?(region_size = 16 * 1024 * 1024) ~nprocs () =
  if not (is_power_of_two region_size) then
    invalid_arg "Space.create: region_size must be a power of two";
  if nprocs <= 0 then invalid_arg "Space.create: nprocs must be positive";
  {
    nprocs;
    region_size;
    mask = region_size - 1;
    regions = Array.make 8 (Region.create ~index:0 ~kind:Private ~line_size:8 ~region_size:8 ~nprocs:1);
    region_list = [];
    next_index = 1;  (* region 0 stays unmapped so address 0 is null *)
    cursors = Hashtbl.create 8;
    (* min_int sentinel: a negative address truncates toward zero, so -1
       or 0 as the empty marker could falsely hit *)
    cache = Array.init nprocs (fun _ -> { c_idx = min_int; c_backing = Bytes.empty });
  }

let nprocs t = t.nprocs

let region_size t = t.region_size

(* The sentinel placed in empty slots is the bogus region 0; [mapped]
   distinguishes it. *)
let mapped t idx =
  idx > 0 && idx < t.next_index
  && idx < Array.length t.regions
  && (Array.unsafe_get t.regions idx).Region.index = idx

let region_of_addr t a =
  let idx = a / t.region_size in
  if mapped t idx then Array.unsafe_get t.regions idx else raise (Unmapped a)

let find_region t a =
  let idx = a / t.region_size in
  if a >= 0 && mapped t idx then Some t.regions.(idx) else None

let regions t = List.rev t.region_list

let grow_region_table t idx =
  let cap = Array.length t.regions in
  if idx >= cap then begin
    let fresh = Array.make (max (idx + 1) (cap * 2)) t.regions.(0) in
    Array.blit t.regions 0 fresh 0 cap;
    t.regions <- fresh
  end

let new_region t ~kind ~line_size =
  let idx = t.next_index in
  t.next_index <- idx + 1;
  grow_region_table t idx;
  let r =
    Region.create ~index:idx ~kind ~line_size ~region_size:t.region_size ~nprocs:t.nprocs
  in
  t.regions.(idx) <- r;
  t.region_list <- r :: t.region_list;
  r

let align_up v a = (v + a - 1) land lnot (a - 1)

let alloc t ~kind ?(line_size = 64) ?align bytes =
  if bytes <= 0 then invalid_arg "Space.alloc: size must be positive";
  if bytes > t.region_size then invalid_arg "Space.alloc: size exceeds region size";
  if not (is_power_of_two line_size) then
    invalid_arg "Space.alloc: line_size must be a power of two";
  let align = match align with Some a -> a | None -> max 8 line_size in
  if not (is_power_of_two align) then invalid_arg "Space.alloc: align must be a power of two";
  let key = (kind, line_size) in
  let region =
    match Hashtbl.find_opt t.cursors key with
    | Some r when align_up r.Region.used align + bytes <= t.region_size -> r
    | _ ->
        let r = new_region t ~kind ~line_size in
        Hashtbl.replace t.cursors key r;
        r
  in
  let off = align_up region.Region.used align in
  region.Region.used <- off + bytes;
  Region.base region + off

let validate_range t a len =
  if len < 0 then invalid_arg "Space.validate_range: negative length";
  let r = region_of_addr t a in
  (if len > 0 && a + len - 1 >= Region.limit r then
     (* Distinguish a range that runs off the end of mapped memory from
        one that genuinely spans two mapped regions.  The latter would
        previously raise a misleading [Unmapped] even though every byte
        is mapped — and a caller that swallowed it (or a zero-copy
        consumer handed only the first region's backing) would silently
        operate on partial data.  Regions have distinct per-proc backing
        buffers, so no single slice can ever serve a crossing range. *)
     let last = a + len - 1 in
     if mapped t (last / t.region_size) then raise (Crosses_region { addr = a; len; last })
     else raise (Unmapped last));
  r

(* Resolve the region, fill the cache and return the backing.  Only ever
   called with a mapped address (region_of_addr raises otherwise), so the
   cache never holds an unmapped index. *)
let cache_miss t e ~proc a =
  let r = region_of_addr t a in
  let b = Region.backing_for r ~proc in
  e.c_idx <- a / t.region_size;
  e.c_backing <- b;
  b

(* The accessor hot path: no tuple allocation; the in-region offset is
   [a land t.mask] because region bases are region_size-aligned. *)
let[@inline] backing t ~proc a =
  let idx = a / t.region_size in
  let e = Array.unsafe_get t.cache proc in
  if e.c_idx = idx then e.c_backing else cache_miss t e ~proc a

let get_u8 t ~proc a = Char.code (Bytes.get (backing t ~proc a) (a land t.mask))

let set_u8 t ~proc a v = Bytes.set (backing t ~proc a) (a land t.mask) (Char.chr (v land 0xff))

let get_i32 t ~proc a = Bytes.get_int32_le (backing t ~proc a) (a land t.mask)

let set_i32 t ~proc a v = Bytes.set_int32_le (backing t ~proc a) (a land t.mask) v

let get_i64 t ~proc a = Bytes.get_int64_le (backing t ~proc a) (a land t.mask)

let set_i64 t ~proc a v = Bytes.set_int64_le (backing t ~proc a) (a land t.mask) v

let get_f64 t ~proc a = Int64.float_of_bits (get_i64 t ~proc a)

let set_f64 t ~proc a v = set_i64 t ~proc a (Int64.bits_of_float v)

let get_int t ~proc a = Int64.to_int (get_i64 t ~proc a)

let set_int t ~proc a v = set_i64 t ~proc a (Int64.of_int v)

let read_bytes t ~proc a ~len =
  ignore (validate_range t a len);
  Bytes.sub (backing t ~proc a) (a land t.mask) len

let write_bytes t ~proc a buf =
  ignore (validate_range t a (Bytes.length buf));
  Bytes.blit buf 0 (backing t ~proc a) (a land t.mask) (Bytes.length buf)

let copy_range t ~src_proc ~dst_proc a ~len =
  let r = validate_range t a len in
  let src = Region.backing_for r ~proc:src_proc in
  let dst = Region.backing_for r ~proc:dst_proc in
  let off = a - Region.base r in
  Bytes.blit src off dst off len

let backing_slice t ~proc a ~len =
  let r = validate_range t a len in
  (Region.backing_for r ~proc, a - Region.base r)

let ranges_equal t ~proc_a ~proc_b a ~len =
  let r = validate_range t a len in
  let ba = Region.backing_for r ~proc:proc_a in
  let bb = Region.backing_for r ~proc:proc_b in
  let off = a - Region.base r in
  (* word-wise comparison with a byte-wise tail *)
  let words = len / 8 in
  let rec words_eq i =
    i >= words
    || (Bytes.get_int64_le ba (off + (i * 8)) = Bytes.get_int64_le bb (off + (i * 8))
       && words_eq (i + 1))
  in
  let rec tail_eq i =
    i >= len || (Bytes.get ba (off + i) = Bytes.get bb (off + i) && tail_eq (i + 1))
  in
  words_eq 0 && tail_eq (words * 8)
