(** The simulated shared virtual address space.

    A [Space.t] describes the address-space layout shared by every
    simulated processor: which regions exist, their kind and cache-line
    size, and where allocations live.  The *contents* of memory are
    per-processor (see {!Region.backing_for}); a value written by
    processor 0 is not visible to processor 1 until the DSM protocol
    ships it.

    Addresses are plain [int] byte addresses.  Region 0 is never mapped,
    so address 0 is always invalid — a convenient null. *)

type t

type addr = int

val create : ?region_size:int -> nprocs:int -> unit -> t
(** [region_size] must be a power of two (default 16 MiB — large enough
    that every benchmark allocation fits in one region). *)

val nprocs : t -> int

val region_size : t -> int

exception Unmapped of addr
(** Raised on access to an address outside every allocated region. *)

exception Crosses_region of { addr : addr; len : int; last : addr }
(** Raised by {!validate_range} (and so by every range accessor,
    {!backing_slice} included) when [addr .. last] starts and ends in
    *mapped* memory but spans two regions.  Regions have distinct
    per-processor backing buffers, so no single zero-copy slice can
    serve such a range — failing loudly here is what keeps the VM diff
    engine from silently mis-diffing a page straddling a boundary
    (e.g. after a migration-style rebinding). *)

val alloc : t -> kind:Region.kind -> ?line_size:int -> ?align:int -> int -> addr
(** [alloc t ~kind ~line_size bytes] reserves [bytes] bytes in a region of
    the given kind and cache-line size (default line size 64, default
    alignment [max 8 line_size]), opening a new region when the current
    one is full.  Allocations never span regions.  Returns the base
    address.  Raises [Invalid_argument] if [bytes] exceeds the region
    size or is non-positive. *)

val region_of_addr : t -> addr -> Region.t
(** Region containing [addr]; raises {!Unmapped}. *)

val find_region : t -> addr -> Region.t option

val regions : t -> Region.t list
(** All regions, in creation order. *)

val validate_range : t -> addr -> int -> Region.t
(** [validate_range t addr len] checks that [addr .. addr+len-1] lies in a
    single mapped region and returns it.  Raises {!Unmapped} when the
    range runs off mapped memory, {!Crosses_region} when it spans two
    mapped regions, or [Invalid_argument] on a negative length. *)

(** {1 Typed access to a processor's copy}

    These operate on the given processor's physical copy and perform no
    write detection; the DSM front end (Runtime) layers trapping on top. *)

val get_u8 : t -> proc:int -> addr -> int
val set_u8 : t -> proc:int -> addr -> int -> unit
val get_i32 : t -> proc:int -> addr -> int32
val set_i32 : t -> proc:int -> addr -> int32 -> unit
val get_i64 : t -> proc:int -> addr -> int64
val set_i64 : t -> proc:int -> addr -> int64 -> unit
val get_f64 : t -> proc:int -> addr -> float
val set_f64 : t -> proc:int -> addr -> float -> unit
val get_int : t -> proc:int -> addr -> int
(** 63-bit int stored as int64. *)

val set_int : t -> proc:int -> addr -> int -> unit

val read_bytes : t -> proc:int -> addr -> len:int -> Bytes.t
(** Copy [len] bytes out of the processor's memory. *)

val backing_slice : t -> proc:int -> addr -> len:int -> Bytes.t * int
(** [backing_slice t ~proc addr ~len] validates [addr .. addr+len-1] and
    returns the processor's *live* backing buffer together with the
    offset of [addr] within it — a zero-copy view for read-only
    consumers (e.g. the VM diff engine).  The caller must not mutate the
    buffer, and must not hold it across simulated writes it wants to be
    isolated from. *)

val write_bytes : t -> proc:int -> addr -> Bytes.t -> unit
(** Copy a buffer into the processor's memory. *)

val copy_range : t -> src_proc:int -> dst_proc:int -> addr -> len:int -> unit
(** Copy the range between two processors' physical copies (used by the
    consistency protocol to apply updates). *)

val ranges_equal : t -> proc_a:int -> proc_b:int -> addr -> len:int -> bool
(** Compare a range across two processors' copies (used by tests and by
    the VM diff engine).  Compares eight bytes at a time with a byte-wise
    tail; equivalent to a byte-by-byte comparison. *)
