(** CSV export of suite results, for external plotting.

    One row per (application, system); columns are the simulated time,
    payload traffic and every primitive-operation counter from Table 2.
    `midway-experiments --csv FILE` writes this. *)

val header : string

val field : string -> string
(** RFC-4180 quoting of one field: wrapped in double quotes (embedded
    quotes doubled) iff it contains a comma, quote or line break. *)

val of_suite : Suite.t -> string
(** Full CSV document (header + rows), deterministic column order. *)
