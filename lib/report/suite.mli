(** Run the benchmark suite and hold the raw results every table and
    figure derives from.

    One suite run executes each of the five applications under RT-DSM and
    VM-DSM on [nprocs] simulated processors, plus the uniprocessor
    standalone baseline (no detection, no consistency), all at a common
    problem [scale] (1.0 = the paper's parameters). *)

type app = Water | Quicksort | Matmul | Sor | Cholesky

val apps : app list
(** In the paper's column order: water, quicksort, matrix, sor, cholesky. *)

val app_name : app -> string

val app_of_string : string -> (app, string) result

val run_app : app -> Midway.Config.t -> scale:float -> Midway_apps.Outcome.t
(** Run one application with its parameters scaled. *)

type entry = {
  app : app;
  rt : Midway_apps.Outcome.t;
  vm : Midway_apps.Outcome.t;
  standalone : Midway_apps.Outcome.t;
}

type t = {
  nprocs : int;
  scale : float;
  cost : Midway_stats.Cost_model.t;
  entries : entry list;
}

val run :
  ?apps:app list ->
  ?cost:Midway_stats.Cost_model.t ->
  ?ecsan:bool ->
  ?obs:bool ->
  nprocs:int ->
  scale:float ->
  unit ->
  t
(** Execute the suite.  Raises [Failure] if any application fails its
    oracle verification — a benchmark number from an incoherent run would
    be meaningless.  With [ecsan] (default false) every run also executes
    under the entry-consistency sanitizer and any violation is likewise a
    [Failure].  With [obs] (default false) every run carries the
    observability layer, readable afterwards through
    {!Midway.Runtime.obs} on each entry's machine. *)

val entry : t -> app -> entry
