module Counters = Midway_stats.Counters

(* RFC 4180 quoting: a field containing a comma, quote or line break is
   wrapped in double quotes with embedded quotes doubled.  Applied to
   every field, so an app or system name can never corrupt the table. *)
let field s =
  let needs_quoting =
    String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s
  in
  if not needs_quoting then s
  else "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""

let join fields = String.concat "," (List.map field fields)

let header =
  join
    [
      "app";
      "system";
      "nprocs";
      "scale";
      "elapsed_s";
      "data_received_kb_per_proc";
      "dirtybits_set";
      "dirtybits_misclassified";
      "clean_dirtybits_read";
      "dirty_dirtybits_read";
      "dirtybits_updated";
      "write_faults";
      "pages_diffed";
      "pages_write_protected";
      "twin_update_kb";
      "twin_compare_kb";
      "lock_acquires_local";
      "lock_acquires_remote";
      "barrier_crossings";
      "messages_total";
      "trap_time_ms";
      "collect_time_ms";
      "percent_dirty_data";
      "retransmits";
      "drops_observed";
      "duplicates_suppressed";
      "backoff_time_ms";
    ]

let row (suite : Suite.t) app system (o : Midway_apps.Outcome.t) =
  let c = Midway_apps.Outcome.avg_counters o in
  let machine = o.Midway_apps.Outcome.machine in
  join
    [
      Suite.app_name app;
      system;
      string_of_int suite.Suite.nprocs;
      Printf.sprintf "%.3f" suite.Suite.scale;
      Printf.sprintf "%.6f" (Midway_apps.Outcome.elapsed_s o);
      Printf.sprintf "%.1f" (Midway_apps.Outcome.data_received_kb_per_proc o);
      string_of_int c.Counters.dirtybits_set;
      string_of_int c.Counters.dirtybits_misclassified;
      string_of_int c.Counters.clean_dirtybits_read;
      string_of_int c.Counters.dirty_dirtybits_read;
      string_of_int c.Counters.dirtybits_updated;
      string_of_int c.Counters.write_faults;
      string_of_int c.Counters.pages_diffed;
      string_of_int c.Counters.pages_write_protected;
      Printf.sprintf "%.1f" (Midway_util.Units.kb_of_bytes c.Counters.twin_update_bytes);
      Printf.sprintf "%.1f" (Midway_util.Units.kb_of_bytes c.Counters.twin_compare_bytes);
      string_of_int c.Counters.lock_acquires_local;
      string_of_int c.Counters.lock_acquires_remote;
      string_of_int c.Counters.barrier_crossings;
      string_of_int (Midway_simnet.Net.total_messages (Midway.Runtime.net machine));
      Printf.sprintf "%.3f" (Midway_util.Units.ms_of_ns c.Counters.trap_time_ns);
      Printf.sprintf "%.3f" (Midway_util.Units.ms_of_ns c.Counters.collect_time_ns);
      Printf.sprintf "%.1f" (Counters.percent_dirty_data c);
      string_of_int c.Counters.retransmits;
      string_of_int c.Counters.drops_observed;
      string_of_int c.Counters.duplicates_suppressed;
      Printf.sprintf "%.3f" (Midway_util.Units.ms_of_ns c.Counters.backoff_time_ns);
    ]

let of_suite (suite : Suite.t) =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  List.iter
    (fun (e : Suite.entry) ->
      Buffer.add_string buf (row suite e.Suite.app "rt" e.Suite.rt);
      Buffer.add_char buf '\n';
      Buffer.add_string buf (row suite e.Suite.app "vm" e.Suite.vm);
      Buffer.add_char buf '\n';
      Buffer.add_string buf (row suite e.Suite.app "standalone" e.Suite.standalone);
      Buffer.add_char buf '\n')
    suite.Suite.entries;
  Buffer.contents buf
