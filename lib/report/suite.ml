type app = Water | Quicksort | Matmul | Sor | Cholesky

let apps = [ Water; Quicksort; Matmul; Sor; Cholesky ]

let app_name = function
  | Water -> "water"
  | Quicksort -> "quicksort"
  | Matmul -> "matrix"
  | Sor -> "sor"
  | Cholesky -> "cholesky"

let app_of_string = function
  | "water" -> Ok Water
  | "quicksort" | "qsort" -> Ok Quicksort
  | "matrix" | "matmul" | "matrix-multiply" -> Ok Matmul
  | "sor" -> Ok Sor
  | "cholesky" -> Ok Cholesky
  | s -> Error (Printf.sprintf "unknown application %S" s)

let run_app app cfg ~scale =
  let full = scale >= 0.999 in
  match app with
  | Water ->
      Midway_apps.Water.run cfg
        (if full then Midway_apps.Water.default else Midway_apps.Water.scaled scale)
  | Quicksort ->
      Midway_apps.Quicksort.run cfg
        (if full then Midway_apps.Quicksort.default else Midway_apps.Quicksort.scaled scale)
  | Matmul ->
      Midway_apps.Matmul.run cfg
        (if full then Midway_apps.Matmul.default else Midway_apps.Matmul.scaled scale)
  | Sor ->
      Midway_apps.Sor.run cfg
        (if full then Midway_apps.Sor.default else Midway_apps.Sor.scaled scale)
  | Cholesky ->
      Midway_apps.Cholesky.run cfg
        (if full then Midway_apps.Cholesky.default else Midway_apps.Cholesky.scaled scale)

type entry = {
  app : app;
  rt : Midway_apps.Outcome.t;
  vm : Midway_apps.Outcome.t;
  standalone : Midway_apps.Outcome.t;
}

type t = {
  nprocs : int;
  scale : float;
  cost : Midway_stats.Cost_model.t;
  entries : entry list;
}

let check outcome =
  if not outcome.Midway_apps.Outcome.ok then
    failwith
      (Printf.sprintf "suite: %s failed oracle verification" outcome.Midway_apps.Outcome.app);
  (match Midway.Runtime.check_invariants outcome.Midway_apps.Outcome.machine with
  | [] -> ()
  | violations ->
      failwith
        (Printf.sprintf "suite: %s violated protocol invariants: %s"
           outcome.Midway_apps.Outcome.app (String.concat "; " violations)));
  let rep = Midway.Runtime.check_report outcome.Midway_apps.Outcome.machine in
  if Midway_check.Report.has_violations rep then
    failwith
      (Printf.sprintf "suite: ECSan found violations in %s:\n%s"
         outcome.Midway_apps.Outcome.app
         (Midway_check.Report.render rep));
  outcome

let run ?apps:(selection = apps) ?(cost = Midway_stats.Cost_model.default) ?(ecsan = false)
    ?(obs = false) ~nprocs ~scale () =
  let entries =
    List.map
      (fun app ->
        let cfg backend n =
          { (Midway.Config.make backend ~nprocs:n) with cost; Midway.Config.ecsan; obs }
        in
        {
          app;
          rt = check (run_app app (cfg Midway.Config.Rt nprocs) ~scale);
          vm = check (run_app app (cfg Midway.Config.Vm nprocs) ~scale);
          standalone = check (run_app app (cfg Midway.Config.Standalone 1) ~scale);
        })
      selection
  in
  { nprocs; scale; cost; entries }

let entry t app =
  match List.find_opt (fun e -> e.app = app) t.entries with
  | Some e -> e
  | None -> invalid_arg ("Suite.entry: application not in suite: " ^ app_name app)
