module Counters = Midway_stats.Counters
module Texttab = Midway_util.Texttab

type point = {
  drop : float;
  elapsed_s : float;
  slowdown : float;
  retransmits : int;
  drops_observed : int;
  duplicates_suppressed : int;
  backoff_ms : float;
  failovers : int;
  availability : float;
  degraded : bool;
}

type line = { app : Suite.app; points : point list }

type t = {
  nprocs : int;
  scale : float;
  fault_seed : int;
  drops : float list;
  crash : Midway_simnet.Crash.plan option;
  lines : line list;
}

let default_drops = [ 0.0; 0.005; 0.01; 0.02; 0.05 ]

let sum_counters machine f =
  Array.fold_left (fun acc c -> acc + f c) 0 (Midway.Runtime.all_counters machine)

let run ?apps:(selection = Suite.apps) ?(drops = default_drops) ?duplicate ?jitter_ns
    ?(seed = 42) ?crash ~nprocs ~scale () =
  let lines =
    List.map
      (fun app ->
        let baseline = ref 0.0 in
        let points =
          List.map
            (fun drop ->
              let cfg = Midway.Config.make Midway.Config.Rt ~nprocs in
              let cfg =
                if drop = 0.0 then cfg
                else Midway.Config.with_faults ?duplicate ?jitter_ns ~seed ~drop cfg
              in
              let cfg =
                match crash with
                | None -> cfg
                | Some plan -> Midway.Config.with_crash plan cfg
              in
              let o = Suite.run_app app cfg ~scale in
              (* Message faults must never cost correctness — any oracle
                 failure aborts the sweep.  A node crash is different: a
                 processor died mid-computation, so its share of the
                 result is legitimately missing.  The run must still
                 terminate and keep the invariants; the oracle verdict
                 becomes the "degraded" marker instead of an abort. *)
              if (not o.Midway_apps.Outcome.ok) && crash = None then
                failwith
                  (Printf.sprintf "faultsweep: %s failed verification at drop %.3f"
                     (Suite.app_name app) drop);
              (match Midway.Runtime.check_invariants o.Midway_apps.Outcome.machine with
              | [] -> ()
              | violations ->
                  failwith
                    (Printf.sprintf "faultsweep: %s violated invariants at drop %.3f: %s"
                       (Suite.app_name app) drop
                       (String.concat "; " violations)));
              let machine = o.Midway_apps.Outcome.machine in
              let elapsed_s = Midway_apps.Outcome.elapsed_s o in
              if drop = 0.0 then baseline := elapsed_s;
              {
                drop;
                elapsed_s;
                slowdown = (if !baseline > 0.0 then elapsed_s /. !baseline else 1.0);
                retransmits = sum_counters machine (fun c -> c.Counters.retransmits);
                drops_observed = sum_counters machine (fun c -> c.Counters.drops_observed);
                duplicates_suppressed =
                  sum_counters machine (fun c -> c.Counters.duplicates_suppressed);
                backoff_ms =
                  Midway_util.Units.ms_of_ns
                    (sum_counters machine (fun c -> c.Counters.backoff_time_ns));
                failovers = Midway.Runtime.failover_count machine;
                availability = Midway.Runtime.availability machine;
                degraded = not o.Midway_apps.Outcome.ok;
              })
            drops
        in
        { app; points })
      selection
  in
  { nprocs; scale; fault_seed = seed; crash; lines; drops }

let render t =
  (* The crash columns only appear when node faults were armed, so the
     classic message-fault table keeps its exact historical shape. *)
  let crashy = t.crash <> None in
  let tab =
    Texttab.create
      ~columns:
        ([
           ("application", Texttab.Left);
           ("drop", Texttab.Right);
           ("elapsed (s)", Texttab.Right);
           ("slowdown", Texttab.Right);
           ("retransmits", Texttab.Right);
           ("drops seen", Texttab.Right);
           ("dups suppressed", Texttab.Right);
           ("backoff (ms)", Texttab.Right);
         ]
        @ if crashy then [ ("failovers", Texttab.Right); ("avail", Texttab.Right) ] else [])
  in
  List.iteri
    (fun i line ->
      if i > 0 then Texttab.separator tab;
      List.iter
        (fun p ->
          Texttab.row tab
            ([
               Suite.app_name line.app;
               Printf.sprintf "%.1f%%" (p.drop *. 100.0);
               Printf.sprintf "%.4f%s" p.elapsed_s (if p.degraded then "*" else "");
               Printf.sprintf "%.2fx" p.slowdown;
               Texttab.fmt_int p.retransmits;
               Texttab.fmt_int p.drops_observed;
               Texttab.fmt_int p.duplicates_suppressed;
               Texttab.fmt_float ~decimals:2 p.backoff_ms;
             ]
            @
            if crashy then
              [ Texttab.fmt_int p.failovers; Printf.sprintf "%.2f" p.availability ]
            else []))
        line.points)
    t.lines;
  let crash_note =
    match t.crash with
    | None -> ""
    | Some plan ->
        Printf.sprintf "\ncrash plan: %s (* = survivors completed; crashed work missing)"
          (Midway_simnet.Crash.render plan)
  in
  Printf.sprintf
    "Elapsed time under fault injection (RT-DSM, %d processors, scale %.2f, fault seed %d)\n%s%s"
    t.nprocs t.scale t.fault_seed (Texttab.render tab) crash_note
