(** Elapsed-time degradation under an unreliable interconnect.

    The paper's testbed assumes a reliable ATM fabric; this report asks
    what the entry-consistency protocol pays when that assumption is
    relaxed.  Each application runs on the RT-DSM backend while the
    per-link drop probability sweeps from 0% (the baseline every other
    table uses) up to 5%, with every message routed through the
    {!Midway_simnet.Reliable} ack/retransmission channel.  The table
    reports the elapsed-time slowdown relative to the fault-free run and
    the channel's activity: retransmissions, observed drops, suppressed
    duplicates and total backoff time.

    Every run is still verified against the application's sequential
    oracle and the protocol invariants — the point of the report is that
    correctness holds while only the timing degrades.

    With a [crash] plan armed the sweep additionally measures the
    recovery protocol: every run executes under the same node-crash
    schedule, the table gains quorum-failover and availability columns,
    and an oracle failure no longer aborts the sweep — a crashed
    processor's share of the result is legitimately missing, so the
    point is marked degraded ([*]) instead.  Protocol invariants remain
    strict either way. *)

type point = {
  drop : float;  (** per-link drop probability of this run *)
  elapsed_s : float;
  slowdown : float;  (** elapsed relative to the drop = 0 run of the same app *)
  retransmits : int;  (** summed over processors *)
  drops_observed : int;
  duplicates_suppressed : int;
  backoff_ms : float;
  failovers : int;  (** quorum ownership transfers (0 without a crash plan) *)
  availability : float;  (** live fraction at end of run (1.0 without a crash plan) *)
  degraded : bool;
      (** the run completed but failed its sequential oracle — only
          tolerated (and only possible) under a crash plan *)
}

type line = { app : Suite.app; points : point list }

type t = {
  nprocs : int;
  scale : float;
  fault_seed : int;
  drops : float list;
  crash : Midway_simnet.Crash.plan option;
  lines : line list;
}

val default_drops : float list
(** [0; 0.5%; 1%; 2%; 5%]. *)

val run :
  ?apps:Suite.app list ->
  ?drops:float list ->
  ?duplicate:float ->
  ?jitter_ns:int ->
  ?seed:int ->
  ?crash:Midway_simnet.Crash.plan ->
  nprocs:int ->
  scale:float ->
  unit ->
  t
(** Execute the sweep.  [duplicate], [jitter_ns] (default 0) and [seed]
    (default 42) shape the fault policy of every non-zero-drop run;
    [crash] (default none) arms the same node-crash plan on every run,
    including the drop = 0 baseline.  Raises [Failure] if any run fails
    oracle verification without a crash plan, or leaves a protocol
    invariant violated — a faulty fabric must degrade timing, never
    correctness. *)

val render : t -> string
(** The sweep as an aligned text table, one row group per application. *)
