module R = Midway.Runtime
module Range = Midway.Range

type params = {
  fine_items : int;
  fine_item_bytes : int;
  dense_chunks : int;
  dense_chunk_bytes : int;
  overwrites : int;
  rounds : int;
}

let default =
  {
    fine_items = 32;
    fine_item_bytes = 64;
    dense_chunks = 8;
    dense_chunk_bytes = 16 * 1024;
    overwrites = 2;
    rounds = 6;
  }

(* value layout: round | object | word, wide enough for any sweep point *)
let encode ~round ~obj ~word = (((round * 1_000_000) + obj) * 100_000) + word

let run cfg p =
  if cfg.Midway.Config.nprocs < 2 then invalid_arg "Hybrid.run: needs 2 processors";
  if p.fine_item_bytes < 8 || p.fine_item_bytes mod 8 <> 0 then
    invalid_arg "Hybrid.run: fine_item_bytes must be a positive multiple of 8";
  if p.dense_chunk_bytes < 8 || p.dense_chunk_bytes mod 8 <> 0 then
    invalid_arg "Hybrid.run: dense_chunk_bytes must be a positive multiple of 8";
  let machine = R.create cfg in
  (* Two regions with opposite detection profiles.  Allocating with
     distinct line sizes places the two working sets in distinct regions
     (the space bump-allocates per line size), so a per-region backend
     election can treat them differently. *)
  let fine_line = p.fine_item_bytes in
  let dense_line = if fine_line = 256 then 512 else 256 in
  let fine_base =
    Array.init p.fine_items (fun _ -> R.alloc machine ~line_size:fine_line p.fine_item_bytes)
  in
  let fine_locks =
    Array.init p.fine_items (fun i ->
        R.new_lock machine [ Range.v fine_base.(i) p.fine_item_bytes ])
  in
  let dense_base =
    R.alloc machine ~line_size:dense_line (p.dense_chunks * p.dense_chunk_bytes)
  in
  let chunk k = dense_base + (k * p.dense_chunk_bytes) in
  let dense_lock = R.new_lock machine [ Range.v (chunk 0) p.dense_chunk_bytes ] in
  let bar = R.new_barrier machine [] in
  let fine_words = p.fine_item_bytes / 8 in
  let dense_words = p.dense_chunk_bytes / 8 in
  let ok = ref true in
  R.run machine (fun c ->
      let me = R.id c in
      (* Phase A — fine-grained sharing: many small independently locked
         objects ping-ponged producer -> consumer.  Each transfer moves a
         few words but, under VM detection, pays page machinery (the
         objects share pages, so every handoff re-faults and re-diffs). *)
      for round = 1 to p.rounds do
        if me = 0 then
          for i = 0 to p.fine_items - 1 do
            R.acquire c fine_locks.(i);
            for w = 0 to fine_words - 1 do
              R.write_int c (fine_base.(i) + (w * 8)) (encode ~round ~obj:i ~word:w)
            done;
            R.work_cycles c (fine_words * 4);
            R.release c fine_locks.(i)
          done;
        R.barrier c bar;
        if me = 1 then
          for i = 0 to p.fine_items - 1 do
            R.acquire c fine_locks.(i);
            for w = 0 to fine_words - 1 do
              let v = R.read_int c (fine_base.(i) + (w * 8)) in
              if v <> encode ~round ~obj:i ~word:w then ok := false
            done;
            R.work_cycles c (fine_words * 2);
            R.release c fine_locks.(i)
          done;
        R.barrier c bar
      done;
      (* Phase B — rebinding-heavy dense chunks (the paper's quicksort
         pattern): one lock handed a different chunk each iteration, the
         whole chunk rewritten [overwrites] times.  Every serve is a
         rebinding-forced full — diff-free and fault-free under VM, but a
         full scan plus a store template per word per pass under RT. *)
      for round = 1 to p.rounds do
        for k = 0 to p.dense_chunks - 1 do
          if me = 0 then begin
            R.acquire c dense_lock;
            R.rebind c dense_lock [ Range.v (chunk k) p.dense_chunk_bytes ];
            for _pass = 1 to p.overwrites do
              for w = 0 to dense_words - 1 do
                R.write_int c (chunk k + (w * 8)) (encode ~round ~obj:k ~word:w)
              done
            done;
            R.work_cycles c (dense_words * 4);
            R.release c dense_lock
          end;
          R.barrier c bar;
          if me = 1 then begin
            R.acquire c dense_lock;
            for w = 0 to dense_words - 1 do
              let v = R.read_int c (chunk k + (w * 8)) in
              if v <> encode ~round ~obj:k ~word:w then ok := false
            done;
            R.work_cycles c (dense_words * 2);
            R.release c dense_lock
          end;
          R.barrier c bar
        done
      done);
  (* Final state, read directly out of the backing memory: the fine
     items at their lock owners, the dense chunks at the producer (the
     last writer of every chunk), must hold the last round's values. *)
  for i = 0 to p.fine_items - 1 do
    let owner = fine_locks.(i).Midway.Sync.owner in
    for w = 0 to fine_words - 1 do
      let v = Common.read_int_direct machine ~proc:owner (fine_base.(i) + (w * 8)) in
      if v <> encode ~round:p.rounds ~obj:i ~word:w then ok := false
    done
  done;
  for k = 0 to p.dense_chunks - 1 do
    for w = 0 to dense_words - 1 do
      let v = Common.read_int_direct machine ~proc:0 (chunk k + (w * 8)) in
      if v <> encode ~round:p.rounds ~obj:k ~word:w then ok := false
    done
  done;
  Outcome.v ~app:"hybrid" ~machine ~ok:!ok
    ~notes:
      [
        Printf.sprintf "%d fine items x %d B (line %d), %d dense chunks x %d B (line %d)"
          p.fine_items p.fine_item_bytes fine_line p.dense_chunks p.dense_chunk_bytes
          dense_line;
        Printf.sprintf "%d rounds, %d write pass(es) per chunk, %d backend switch(es)"
          p.rounds p.overwrites (R.backend_switches machine);
      ]
