(** A two-region workload with opposite write-detection profiles
    (extension experiment for per-region hybrid detection).

    The paper's measurements show neither detection technique dominating:
    software (RT) detection wins on fine-grained sharing, virtual-memory
    (VM) detection wins when frequent rebinding makes transfers diff-free
    fulls (quicksort).  This synthetic workload puts both behaviours in
    one address space, in two distinct regions:

    - {e fine}: [fine_items] small objects, each under its own lock,
      ping-ponged between a producer and a consumer.  The objects share
      pages, so under VM every handoff pays a write fault, a page diff
      and a re-protection; under RT it pays a store template per word.

    - {e dense}: one lock rebound to a different [dense_chunk_bytes]
      chunk every iteration, the chunk fully rewritten [overwrites]
      times before each handoff.  Every transfer is a rebinding-forced
      full — diff-free and fault-free under VM, a full scan plus a store
      template per word per pass under RT.

    A machine-wide backend is therefore wrong for one of the two regions;
    per-region election ({!Midway.Config.t.adaptive} or
    {!Midway.Runtime.set_region_backend}) can beat both pure
    configurations.  `experiments --hybrid` sweeps exactly that. *)

type params = {
  fine_items : int;  (** independently locked small objects *)
  fine_item_bytes : int;  (** bytes per fine object (also its line size) *)
  dense_chunks : int;  (** chunks the dense lock cycles through *)
  dense_chunk_bytes : int;  (** bytes per dense chunk *)
  overwrites : int;  (** full write passes over a chunk per handoff *)
  rounds : int;  (** producer/consumer iterations over both regions *)
}

val default : params
(** 32 x 64 B fine items; 8 x 16 KB dense chunks, 2 write passes;
    6 rounds. *)

val run : Midway.Config.t -> params -> Outcome.t
(** Runs on processors 0 (producer) and 1 (consumer); additional
    processors only participate in the ordering barrier.  Verifies every
    consumed value and the final memory image against the encoding
    oracle. *)
