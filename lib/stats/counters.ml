type t = {
  mutable dirtybits_set : int;
  mutable dirtybits_misclassified : int;
  mutable clean_dirtybits_read : int;
  mutable dirty_dirtybits_read : int;
  mutable dirtybits_updated : int;
  mutable write_faults : int;
  mutable pages_diffed : int;
  mutable pages_write_protected : int;
  mutable twin_update_bytes : int;
  mutable twin_compare_bytes : int;
  mutable data_received_bytes : int;
  mutable data_sent_bytes : int;
  mutable messages : int;
  mutable bound_bytes_scanned : int;
  mutable dirty_bytes_found : int;
  mutable lock_acquires_local : int;
  mutable lock_acquires_remote : int;
  mutable barrier_crossings : int;
  mutable trap_time_ns : int;
  mutable collect_time_ns : int;
  mutable retransmits : int;
  mutable drops_observed : int;
  mutable duplicates_suppressed : int;
  mutable backoff_time_ns : int;
  mutable failovers : int;
  mutable replications : int;
}

let create () =
  {
    dirtybits_set = 0;
    dirtybits_misclassified = 0;
    clean_dirtybits_read = 0;
    dirty_dirtybits_read = 0;
    dirtybits_updated = 0;
    write_faults = 0;
    pages_diffed = 0;
    pages_write_protected = 0;
    twin_update_bytes = 0;
    twin_compare_bytes = 0;
    data_received_bytes = 0;
    data_sent_bytes = 0;
    messages = 0;
    bound_bytes_scanned = 0;
    dirty_bytes_found = 0;
    lock_acquires_local = 0;
    lock_acquires_remote = 0;
    barrier_crossings = 0;
    trap_time_ns = 0;
    collect_time_ns = 0;
    retransmits = 0;
    drops_observed = 0;
    duplicates_suppressed = 0;
    backoff_time_ns = 0;
    failovers = 0;
    replications = 0;
  }

let reset t =
  t.dirtybits_set <- 0;
  t.dirtybits_misclassified <- 0;
  t.clean_dirtybits_read <- 0;
  t.dirty_dirtybits_read <- 0;
  t.dirtybits_updated <- 0;
  t.write_faults <- 0;
  t.pages_diffed <- 0;
  t.pages_write_protected <- 0;
  t.twin_update_bytes <- 0;
  t.twin_compare_bytes <- 0;
  t.data_received_bytes <- 0;
  t.data_sent_bytes <- 0;
  t.messages <- 0;
  t.bound_bytes_scanned <- 0;
  t.dirty_bytes_found <- 0;
  t.lock_acquires_local <- 0;
  t.lock_acquires_remote <- 0;
  t.barrier_crossings <- 0;
  t.trap_time_ns <- 0;
  t.collect_time_ns <- 0;
  t.retransmits <- 0;
  t.drops_observed <- 0;
  t.duplicates_suppressed <- 0;
  t.backoff_time_ns <- 0;
  t.failovers <- 0;
  t.replications <- 0

let add ~into t =
  into.dirtybits_set <- into.dirtybits_set + t.dirtybits_set;
  into.dirtybits_misclassified <- into.dirtybits_misclassified + t.dirtybits_misclassified;
  into.clean_dirtybits_read <- into.clean_dirtybits_read + t.clean_dirtybits_read;
  into.dirty_dirtybits_read <- into.dirty_dirtybits_read + t.dirty_dirtybits_read;
  into.dirtybits_updated <- into.dirtybits_updated + t.dirtybits_updated;
  into.write_faults <- into.write_faults + t.write_faults;
  into.pages_diffed <- into.pages_diffed + t.pages_diffed;
  into.pages_write_protected <- into.pages_write_protected + t.pages_write_protected;
  into.twin_update_bytes <- into.twin_update_bytes + t.twin_update_bytes;
  into.twin_compare_bytes <- into.twin_compare_bytes + t.twin_compare_bytes;
  into.data_received_bytes <- into.data_received_bytes + t.data_received_bytes;
  into.data_sent_bytes <- into.data_sent_bytes + t.data_sent_bytes;
  into.messages <- into.messages + t.messages;
  into.bound_bytes_scanned <- into.bound_bytes_scanned + t.bound_bytes_scanned;
  into.dirty_bytes_found <- into.dirty_bytes_found + t.dirty_bytes_found;
  into.lock_acquires_local <- into.lock_acquires_local + t.lock_acquires_local;
  into.lock_acquires_remote <- into.lock_acquires_remote + t.lock_acquires_remote;
  into.barrier_crossings <- into.barrier_crossings + t.barrier_crossings;
  into.trap_time_ns <- into.trap_time_ns + t.trap_time_ns;
  into.collect_time_ns <- into.collect_time_ns + t.collect_time_ns;
  into.retransmits <- into.retransmits + t.retransmits;
  into.drops_observed <- into.drops_observed + t.drops_observed;
  into.duplicates_suppressed <- into.duplicates_suppressed + t.duplicates_suppressed;
  into.backoff_time_ns <- into.backoff_time_ns + t.backoff_time_ns;
  into.failovers <- into.failovers + t.failovers;
  into.replications <- into.replications + t.replications

let total arr =
  let acc = create () in
  Array.iter (fun t -> add ~into:acc t) arr;
  acc

let average arr =
  let n = Array.length arr in
  if n = 0 then create ()
  else begin
    let acc = total arr in
    acc.dirtybits_set <- acc.dirtybits_set / n;
    acc.dirtybits_misclassified <- acc.dirtybits_misclassified / n;
    acc.clean_dirtybits_read <- acc.clean_dirtybits_read / n;
    acc.dirty_dirtybits_read <- acc.dirty_dirtybits_read / n;
    acc.dirtybits_updated <- acc.dirtybits_updated / n;
    acc.write_faults <- acc.write_faults / n;
    acc.pages_diffed <- acc.pages_diffed / n;
    acc.pages_write_protected <- acc.pages_write_protected / n;
    acc.twin_update_bytes <- acc.twin_update_bytes / n;
    acc.twin_compare_bytes <- acc.twin_compare_bytes / n;
    acc.data_received_bytes <- acc.data_received_bytes / n;
    acc.data_sent_bytes <- acc.data_sent_bytes / n;
    acc.messages <- acc.messages / n;
    acc.bound_bytes_scanned <- acc.bound_bytes_scanned / n;
    acc.dirty_bytes_found <- acc.dirty_bytes_found / n;
    acc.lock_acquires_local <- acc.lock_acquires_local / n;
    acc.lock_acquires_remote <- acc.lock_acquires_remote / n;
    acc.barrier_crossings <- acc.barrier_crossings / n;
    acc.trap_time_ns <- acc.trap_time_ns / n;
    acc.collect_time_ns <- acc.collect_time_ns / n;
    acc.retransmits <- acc.retransmits / n;
    acc.drops_observed <- acc.drops_observed / n;
    acc.duplicates_suppressed <- acc.duplicates_suppressed / n;
    acc.backoff_time_ns <- acc.backoff_time_ns / n;
    acc.failovers <- acc.failovers / n;
    acc.replications <- acc.replications / n;
    acc
  end

let percent_dirty_data t =
  if t.bound_bytes_scanned = 0 then 0.0
  else 100.0 *. float_of_int t.dirty_bytes_found /. float_of_int t.bound_bytes_scanned
