(** Per-processor invocation counters for the primitive operations.

    These are the raw material of the paper's Table 2; Tables 3-5 and
    Figures 3-4 are derived from them by multiplying with the
    {!Cost_model}.  Every backend (RT, VM, blast) bumps these as it
    executes, and the report layer aggregates them across processors. *)

type t = {
  (* --- RT-DSM trapping --- *)
  mutable dirtybits_set : int;  (** instrumented stores to shared memory *)
  mutable dirtybits_misclassified : int;  (** instrumented stores that hit a private region's null template *)
  (* --- RT-DSM collection --- *)
  mutable clean_dirtybits_read : int;  (** scanned lines found clean/already stamped *)
  mutable dirty_dirtybits_read : int;  (** scanned lines found locally dirty (need stamping) *)
  mutable dirtybits_updated : int;  (** incoming timestamps installed at this processor *)
  (* --- VM-DSM trapping --- *)
  mutable write_faults : int;  (** first store to a protected page *)
  (* --- VM-DSM collection --- *)
  mutable pages_diffed : int;
  mutable pages_write_protected : int;
  mutable twin_update_bytes : int;  (** bytes of incoming updates applied to twins *)
  mutable twin_compare_bytes : int;  (** twin backend: bytes compared at collections (no write detection, section 3.5) *)
  (* --- data movement (application payload only) --- *)
  mutable data_received_bytes : int;  (** update payload applied at this processor *)
  mutable data_sent_bytes : int;  (** update payload shipped from this processor *)
  mutable messages : int;  (** protocol messages this processor sent *)
  (* --- dirty-data ratio bookkeeping (Table 2 "percent dirty data") --- *)
  mutable bound_bytes_scanned : int;  (** bytes bound to sync objects examined at collections *)
  mutable dirty_bytes_found : int;  (** of those, bytes found modified *)
  (* --- synchronization profile --- *)
  mutable lock_acquires_local : int;
  mutable lock_acquires_remote : int;
  mutable barrier_crossings : int;
  (* --- accumulated virtual time (ns) attributed to detection --- *)
  mutable trap_time_ns : int;  (** charged inline to application writes *)
  mutable collect_time_ns : int;  (** charged on the runtime path at synchronization *)
  (* --- reliable-channel activity under fault injection (all zero on a
     fault-free fabric) --- *)
  mutable retransmits : int;  (** data copies this processor resent after an ack timeout *)
  mutable drops_observed : int;  (** data/ack copies of this processor's messages the fabric destroyed *)
  mutable duplicates_suppressed : int;  (** redundant incoming copies discarded by sequence number *)
  mutable backoff_time_ns : int;  (** virtual time this processor's messages spent in retransmission timeouts *)
  (* --- crash-recovery activity (all zero without node-level faults) --- *)
  mutable failovers : int;  (** quorum lock-ownership transfers this processor initiated *)
  mutable replications : int;  (** bound-data replicas this processor shipped at release *)
}

val create : unit -> t

val reset : t -> unit

val add : into:t -> t -> unit
(** Accumulate [t] into [into], field by field. *)

val average : t array -> t
(** Arithmetic mean across processors (the paper reports per-processor
    averages over an 8-way run); byte and count fields are divided by the
    array length. *)

val total : t array -> t

val percent_dirty_data : t -> float
(** [dirty_bytes_found / bound_bytes_scanned * 100]; 0 when nothing was
    scanned. *)
