(** Reliable delivery over the (possibly faulty) interconnect.

    {!Net.send} models the raw fabric: with a fault policy armed, a copy
    may be dropped, duplicated or jittered.  This module implements the
    classic positive-acknowledgement / retransmission protocol on top of
    it, the way the entry-consistency runtime needs it:

    - every message carries a per-(src, dst) sequence number;
    - the receiver acknowledges each copy it sees ({!Net.Ack}, empty
      payload) and suppresses copies whose sequence number it has
      already delivered — exactly the role the paper assigns to the
      per-lock incarnation numbers, which let a processor discard stale
      or duplicate updates;
    - the sender retransmits on an acknowledgement timeout, doubling the
      timeout up to a cap, and gives up (raises) after a bounded number
      of transmissions.

    Because the simulation is a conservative discrete-event model, the
    whole exchange is resolved arithmetically at send time: the returned
    {!delivery} record tells the protocol layer when the payload first
    reached the destination (the instant a blocked requester can be
    woken, which the engine's block/wake mechanism then applies) and how
    much retransmission work the exchange cost.  The injection PRNG is
    seeded, so a given run is exactly reproducible. *)

type config = {
  timeout_ns : int;  (** initial acknowledgement timeout *)
  backoff_cap_ns : int;  (** the timeout doubles per retry, up to this cap *)
  max_attempts : int;  (** total transmissions of one message before giving up *)
}

val default_config : config
(** 1 ms initial timeout (a few uncongested round trips), 16 ms cap,
    20 attempts. *)

type t

exception Exhausted of string
(** Raised when a message burns its whole retry budget — under an
    all-drop fault window this is the expected diagnosis. *)

val create : ?config:config -> Net.t -> t

val config : t -> config

type episode = {
  e_kind : Net.kind;
  e_src : int;
  e_dst : int;
  e_seq : int;
  e_payload_bytes : int;
  e_sent_at : int;  (** when the first copy went on the wire *)
  e_delivered_at : int;  (** first arrival of the payload *)
  e_acked_at : int;  (** when the sender saw the ack *)
  e_transmissions : int;
  e_retransmits : int;  (** [e_transmissions - 1] *)
  e_backoff_ns : int;
}
(** One completed non-local exchange, as seen by the {!set_observer}
    hook. *)

val set_observer : t -> (episode -> unit) option -> unit
(** Install (or clear) a hook invoked once per completed non-local
    {!send}, after every fault draw is resolved.  The hook only reads
    values [send] computed anyway, so arming it perturbs neither the
    injection PRNG stream nor the simulated timeline — the observability
    layer uses it to record retransmit spans and per-channel metrics. *)

type delivery = {
  delivered_at : int;  (** first arrival of the payload at the destination *)
  acked_at : int;  (** when the sender learned the transfer succeeded *)
  transmissions : int;  (** data copies put on the wire (1 = clean first try) *)
  retransmits : int;  (** [transmissions - 1] *)
  drops_seen : int;  (** data or ack copies the fabric destroyed *)
  dups_suppressed : int;  (** redundant data copies discarded by sequence number *)
  backoff_ns : int;  (** total virtual time spent waiting on timeouts *)
}

val send :
  ?overhead_bytes:int -> t -> kind:Net.kind -> src:int -> dst:int -> payload_bytes:int ->
  at:int -> delivery
(** Run one message through the ack/retransmit protocol, resolving every
    retry and acknowledgement against the fabric's fault draws.  On a
    fault-free fabric this degenerates to exactly one data copy plus one
    ack.  Self-sends are delivered locally: no messages, no sequence
    number, all counters zero.  Raises {!Exhausted} when
    [config.max_attempts] transmissions all fail to produce an ack. *)

val unacked : t -> int
(** Messages currently in flight (sent, not yet acknowledged).  Because
    [send] resolves the full exchange, this is nonzero only while a
    [send] is executing — {!Midway.Runtime.check_invariants} asserts it
    returns to zero after a run. *)

val next_seq : t -> src:int -> dst:int -> int
(** The sequence number the next [send] on this link will carry
    (starts at 0). *)

val total_retransmits : t -> int

val total_backoff_ns : t -> int
