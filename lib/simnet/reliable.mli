(** Reliable delivery over the (possibly faulty) interconnect.

    {!Net.send} models the raw fabric: with a fault policy armed, a copy
    may be dropped, duplicated or jittered.  This module implements the
    classic positive-acknowledgement / retransmission protocol on top of
    it, the way the entry-consistency runtime needs it:

    - every message carries a per-(src, dst) sequence number;
    - the receiver acknowledges each copy it sees ({!Net.Ack}, empty
      payload) and suppresses copies whose sequence number it has
      already delivered — exactly the role the paper assigns to the
      per-lock incarnation numbers, which let a processor discard stale
      or duplicate updates;
    - the sender retransmits on an acknowledgement timeout, doubling the
      timeout up to a cap, and gives up (raises) after a bounded number
      of transmissions.

    Because the simulation is a conservative discrete-event model, the
    whole exchange is resolved arithmetically at send time: the returned
    {!delivery} record tells the protocol layer when the payload first
    reached the destination (the instant a blocked requester can be
    woken, which the engine's block/wake mechanism then applies) and how
    much retransmission work the exchange cost.  The injection PRNG is
    seeded, so a given run is exactly reproducible. *)

type config = {
  timeout_ns : int;  (** initial acknowledgement timeout *)
  backoff_cap_ns : int;  (** the timeout doubles per retry, up to this cap *)
  max_attempts : int;  (** total transmissions of one message before giving up *)
}

val default_config : config
(** 1 ms initial timeout (a few uncongested round trips), 16 ms cap,
    20 attempts. *)

type t

exception Exhausted of string
(** Raised when a message burns its whole retry budget — under an
    all-drop fault window this is the expected diagnosis.  The message
    is structured, one [key=value] per episode field:
    ["Reliable.send: exhausted {kind=lock-request; src=p0; dst=p1;
    seq=4; attempts=20; elapsed_ns=…}"], where [elapsed_ns] is the
    virtual time between the first copy and giving up. *)

type suspicion = {
  s_kind : Net.kind;
  s_src : int;
  s_dst : int;
  s_seq : int;
  s_attempts : int;
  s_elapsed_ns : int;  (** virtual time burned before giving up *)
}
(** A failure-detector event: the retry budget ran out against a peer
    the {!set_suspector} oracle considers down. *)

exception Suspected of suspicion
(** Raised instead of {!Exhausted} when the suspicion oracle blames
    either end of the link, not the wire: a dead receiver never acks,
    and a sender that crashed mid-episode stops retransmitting.  The
    recovery protocol ({!Midway.Runtime}) tells the cases apart from
    the crash plan — a dead receiver triggers quorum ownership
    failover, a dead sender is the caller's own crash taking effect.  A
    partitioned-but-alive peer still surfaces as {!Exhausted}. *)

val exhausted_message :
  kind:Net.kind -> src:int -> dst:int -> seq:int -> attempts:int -> elapsed_ns:int ->
  string
(** The exact message {!Exhausted} carries — exposed so tests can assert
    the format. *)

val set_suspector : t -> (peer:int -> at:int -> bool) option -> unit
(** Install (or clear) the suspicion oracle consulted when a retry
    budget runs out.  With node-level faults armed this is
    {!Crash.is_down} on the run's crash plan. *)

val create : ?config:config -> Net.t -> t

val config : t -> config

type episode = {
  e_kind : Net.kind;
  e_src : int;
  e_dst : int;
  e_seq : int;
  e_payload_bytes : int;
  e_sent_at : int;  (** when the first copy went on the wire *)
  e_delivered_at : int;  (** first arrival of the payload *)
  e_acked_at : int;  (** when the sender saw the ack *)
  e_transmissions : int;
  e_retransmits : int;  (** [e_transmissions - 1] *)
  e_backoff_ns : int;
}
(** One completed non-local exchange, as seen by the {!set_observer}
    hook. *)

val set_observer : t -> (episode -> unit) option -> unit
(** Install (or clear) a hook invoked once per completed non-local
    {!send}, after every fault draw is resolved.  The hook only reads
    values [send] computed anyway, so arming it perturbs neither the
    injection PRNG stream nor the simulated timeline — the observability
    layer uses it to record retransmit spans and per-channel metrics. *)

type delivery = {
  delivered_at : int;  (** first arrival of the payload at the destination *)
  acked_at : int;  (** when the sender learned the transfer succeeded *)
  transmissions : int;  (** data copies put on the wire (1 = clean first try) *)
  retransmits : int;  (** [transmissions - 1] *)
  drops_seen : int;  (** data or ack copies the fabric destroyed *)
  dups_suppressed : int;  (** redundant data copies discarded by sequence number *)
  backoff_ns : int;  (** total virtual time spent waiting on timeouts *)
}

val send :
  ?overhead_bytes:int -> t -> kind:Net.kind -> src:int -> dst:int -> payload_bytes:int ->
  at:int -> delivery
(** Run one message through the ack/retransmit protocol, resolving every
    retry and acknowledgement against the fabric's fault draws.  On a
    fault-free fabric this degenerates to exactly one data copy plus one
    ack.  Self-sends are delivered locally: no messages, no sequence
    number, all counters zero.  Raises {!Exhausted} (or {!Suspected},
    when the suspicion oracle blames the peer) when
    [config.max_attempts] transmissions all fail to produce an ack; the
    failed attempts still count toward {!total_retransmits} and
    {!total_backoff_ns}. *)

val unacked : t -> int
(** Messages currently in flight (sent, not yet acknowledged).  Because
    [send] resolves the full exchange, this is nonzero only while a
    [send] is executing — {!Midway.Runtime.check_invariants} asserts it
    returns to zero after a run. *)

val next_seq : t -> src:int -> dst:int -> int
(** The sequence number the next [send] on this link will carry
    (starts at 0). *)

val total_retransmits : t -> int

val total_backoff_ns : t -> int
