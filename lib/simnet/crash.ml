type action = Stop | Recover

type event = { at_ns : int; proc : int; action : action }

type plan = { evs : event list }

let empty = { evs = [] }

let events p = p.evs

let compare_event a b =
  match compare a.at_ns b.at_ns with 0 -> compare a.proc b.proc | c -> c

let scripted evs =
  List.iter
    (fun e ->
      if e.at_ns < 0 then invalid_arg "Crash.scripted: negative event time";
      if e.proc < 0 then invalid_arg "Crash.scripted: negative processor")
    evs;
  let evs = List.stable_sort compare_event evs in
  (* Per processor the script must alternate Stop / Recover starting
     from up: a double Stop or a Recover of a live processor is a bug in
     the schedule, not a tolerated input. *)
  let states = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let down = Option.value (Hashtbl.find_opt states e.proc) ~default:false in
      (match (e.action, down) with
      | Stop, true ->
          invalid_arg
            (Printf.sprintf "Crash.scripted: p%d stopped twice (second at %d ns)" e.proc
               e.at_ns)
      | Recover, false ->
          invalid_arg
            (Printf.sprintf "Crash.scripted: p%d recovers at %d ns but is not down" e.proc
               e.at_ns)
      | Stop, false | Recover, true -> ());
      Hashtbl.replace states e.proc (e.action = Stop))
    evs;
  { evs }

let seeded ~seed ~nprocs ~events ~horizon_ns =
  if nprocs <= 0 then invalid_arg "Crash.seeded: nprocs must be positive";
  if horizon_ns <= 0 then invalid_arg "Crash.seeded: horizon must be positive";
  let prng = Midway_util.Prng.create ~seed in
  (* Keep the down set a strict minority at all times so a majority
     quorum survives and failover can always make progress. *)
  let max_down = (nprocs - 1) / 2 in
  let budget = min events max_down in
  let victims = Array.init nprocs (fun i -> i) in
  Midway_util.Prng.shuffle prng victims;
  let evs = ref [] in
  for i = 0 to budget - 1 do
    let proc = victims.(i) in
    let stop_at = Midway_util.Prng.int_in prng (horizon_ns / 8) (horizon_ns / 2) in
    evs := { at_ns = stop_at; proc; action = Stop } :: !evs;
    if Midway_util.Prng.bool prng then begin
      let back = Midway_util.Prng.int_in prng (stop_at + (horizon_ns / 8)) horizon_ns in
      evs := { at_ns = back; proc; action = Recover } :: !evs
    end
  done;
  scripted !evs

let is_down p ~proc ~at =
  List.fold_left
    (fun down e -> if e.proc = proc && e.at_ns <= at then e.action = Stop else down)
    false p.evs

let down_count p ~nprocs ~at =
  let n = ref 0 in
  for proc = 0 to nprocs - 1 do
    if is_down p ~proc ~at then incr n
  done;
  !n

let stops_before p ~proc ~at =
  List.fold_left
    (fun n e -> if e.proc = proc && e.at_ns <= at && e.action = Stop then n + 1 else n)
    0 p.evs

let first_stop p ~proc =
  List.fold_left
    (fun acc e ->
      if e.proc = proc && e.action = Stop then
        match acc with None -> Some e.at_ns | Some t -> Some (min t e.at_ns)
      else acc)
    None p.evs

let action_name = function Stop -> "stop" | Recover -> "recover"

let render p =
  String.concat ","
    (List.map (fun e -> Printf.sprintf "%s@%d:p%d" (action_name e.action) e.at_ns e.proc) p.evs)

let pp fmt p = Format.pp_print_string fmt (render p)

let parse_time s =
  let num suffix scale =
    match int_of_string_opt (String.sub s 0 (String.length s - String.length suffix)) with
    | Some n when n >= 0 -> Some (n * scale)
    | _ -> None
  in
  let ends suffix =
    String.length s > String.length suffix
    && String.sub s (String.length s - String.length suffix) (String.length suffix) = suffix
  in
  if ends "ns" then num "ns" 1
  else if ends "us" then num "us" 1_000
  else if ends "ms" then num "ms" 1_000_000
  else if ends "s" then num "s" 1_000_000_000
  else match int_of_string_opt s with Some n when n >= 0 -> Some n | _ -> None

let parse_event ~nprocs part =
  match String.index_opt part '@' with
  | None -> Error (Printf.sprintf "crash event %S: expected ACTION@TIME:pN" part)
  | Some i -> (
      let action =
        match String.sub part 0 i with
        | "stop" -> Ok Stop
        | "recover" -> Ok Recover
        | a -> Error (Printf.sprintf "crash event %S: unknown action %S" part a)
      in
      let rest = String.sub part (i + 1) (String.length part - i - 1) in
      match (action, String.index_opt rest ':') with
      | Error e, _ -> Error e
      | Ok _, None -> Error (Printf.sprintf "crash event %S: missing :pN target" part)
      | Ok action, Some j -> (
          let time = String.sub rest 0 j in
          let target = String.sub rest (j + 1) (String.length rest - j - 1) in
          match parse_time time with
          | None -> Error (Printf.sprintf "crash event %S: bad time %S" part time)
          | Some at_ns ->
              let proc =
                if String.length target > 1 && target.[0] = 'p' then
                  int_of_string_opt (String.sub target 1 (String.length target - 1))
                else None
              in
              (match proc with
              | Some proc when proc >= 0 && proc < nprocs -> Ok { at_ns; proc; action }
              | Some proc ->
                  Error (Printf.sprintf "crash event %S: p%d out of range" part proc)
              | None -> Error (Printf.sprintf "crash event %S: bad target %S" part target))))

let parse_seeded ~nprocs parts =
  let n = ref None and seed = ref None and horizon = ref 50_000_000 in
  let err = ref None in
  List.iter
    (fun part ->
      match String.index_opt part '=' with
      | None -> err := Some (Printf.sprintf "crash spec: bad field %S" part)
      | Some i -> (
          let k = String.sub part 0 i in
          let v = String.sub part (i + 1) (String.length part - i - 1) in
          match (k, int_of_string_opt v, parse_time v) with
          | "n", Some x, _ -> n := Some x
          | "seed", Some x, _ -> seed := Some x
          | "horizon", _, Some x -> horizon := x
          | _ -> err := Some (Printf.sprintf "crash spec: bad field %S" part)))
    parts;
  match (!err, !n) with
  | Some e, _ -> Error e
  | None, None -> Error "crash spec: seeded form needs n=EVENTS"
  | None, Some n ->
      Ok (seeded ~seed:(Option.value !seed ~default:42) ~nprocs ~events:n ~horizon_ns:!horizon)

let parse_spec ~nprocs s =
  let parts = String.split_on_char ',' (String.trim s) |> List.filter (fun p -> p <> "") in
  match parts with
  | [] -> Error "crash spec: empty"
  | first :: _ ->
      if String.contains first '@' then begin
        let rec collect acc = function
          | [] -> Ok (List.rev acc)
          | p :: rest -> (
              match parse_event ~nprocs p with
              | Ok e -> collect (e :: acc) rest
              | Error _ as e -> e)
        in
        match collect [] parts with
        | Error e -> Error e
        | Ok evs -> ( try Ok (scripted evs) with Invalid_argument m -> Error m)
      end
      else parse_seeded ~nprocs parts
