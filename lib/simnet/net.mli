(** The cluster interconnect model.

    The paper's testbed is eight DECstations on a 140 Mbit/s ForeRunner
    ASX-100 ATM switch, driven through a user-level AAL3/4 protocol that
    bypasses the Unix server.  For the simulation we model a message as a
    fixed per-message latency (send + switch + receive + protocol
    processing) plus a bandwidth term proportional to its size, and we
    account messages and bytes per processor pair.

    Only *application* payload counts toward the paper's "data
    transferred" figures; protocol headers contribute to transfer time but
    not to the payload accounting.

    The fabric is perfectly reliable by default.  A {!fault_policy} makes
    it lossy: per-link drop and duplication probabilities, latency
    jitter, and scripted fault windows ("drop every [Lock_reply] between
    2 ms and 5 ms"), all driven by a seeded {!Midway_util.Prng} so every
    faulty run is exactly reproducible.  Faulty delivery is reported
    through the {!outcome} of {!send}; the retransmission machinery that
    survives it lives one layer up, in {!Reliable}. *)

type kind =
  | Lock_request
  | Lock_reply
  | Lock_forward
  | Barrier_arrive
  | Barrier_release
  | Startup
  | Ack  (** reliable-channel acknowledgement (see {!Reliable}) *)
  | Replicate  (** bound-data replica shipped to a backup at release (see {!Crash}) *)
  | Vote  (** failover ballot requesting an ownership-transfer vote *)
  | Vote_reply  (** a quorum member's answer to a ballot *)

val kind_name : kind -> string

(** {1 Fault injection} *)

type fault_link = {
  drop : float;  (** probability a copy vanishes in the fabric, [0, 1] *)
  duplicate : float;  (** probability the switch delivers a second copy *)
  jitter_ns : int;  (** uniform extra latency in [0, jitter_ns] per copy *)
}

val fault_free_link : fault_link
(** All-zero hazards: behaves exactly like the reliable fabric. *)

type fault_window = {
  w_from_ns : int;  (** window start (inclusive, virtual time of send) *)
  w_until_ns : int;  (** window end (exclusive) *)
  w_kind : kind option;  (** [None] matches every message kind *)
  w_src : int option;  (** [None] matches every sender *)
  w_dst : int option;  (** [None] matches every destination *)
}
(** A scripted outage: every matching message sent inside the window is
    dropped, deterministically (no coin flip). *)

type fault_policy = {
  link : fault_link;  (** default hazards, applied to every link *)
  overrides : ((int * int) * fault_link) list;
      (** per-link (src, dst) hazard overrides, first match wins *)
  windows : fault_window list;
  fault_seed : int;  (** seed of the injection PRNG *)
}

val uniform_faults :
  ?duplicate:float -> ?jitter_ns:int -> ?seed:int -> drop:float -> unit -> fault_policy
(** A policy with the same hazards on every link and no scripted
    windows.  Defaults: no duplication, no jitter, seed 42. *)

val validate_fault_policy : fault_policy -> fault_policy
(** Check every probability field of the policy ([link] and each entry
    of [overrides]): [drop] and [duplicate] must lie in [0, 1] and
    [jitter_ns] must be non-negative, else [Invalid_argument] naming the
    offending field is raised.  Returns the policy unchanged.  Both
    {!uniform_faults} and {!set_fault_policy} validate, so a hand-built
    policy cannot silently misbehave through the raw PRNG compare. *)

type t

val create :
  ?latency_ns:int -> ?ns_per_byte:int -> ?header_bytes:int -> nprocs:int -> unit -> t
(** Defaults: 150 us per-message latency, 57 ns/byte (140 Mbit/s ATM at
    AAL3/4 framing efficiency), 64-byte protocol header.  No faults. *)

val set_fault_policy : t -> fault_policy -> unit
(** Arm fault injection.  Call once, before any traffic; calling again
    resets the injection PRNG to the new policy's seed. *)

val fault_policy : t -> fault_policy option

val set_crash_predicate : t -> (proc:int -> at:int -> bool) option -> unit
(** Arm (or disarm with [None]) node-level faults: when the predicate
    says a processor is down, any message it would send is never put on
    the wire, and any copy arriving at it is destroyed in the NIC — a
    deterministic drop, composing with the probabilistic hazards like a
    scripted window.  Typically [Crash.is_down] partially applied to a
    {!Crash.plan}. *)

val crash_drops_injected : t -> int
(** Copies destroyed because an endpoint was down (0 without a crash
    predicate). *)

val nprocs : t -> int

val transfer_ns : t -> payload_bytes:int -> int
(** Wire time for one message carrying [payload_bytes] of application
    data: latency + (header + payload) x bandwidth cost. *)

(** What the fabric did with one message. *)
type outcome =
  | Delivered of int  (** arrival time at the destination *)
  | Dropped  (** the copy vanished; nothing arrives *)
  | Duplicated of int * int
      (** two copies arrive, first and second arrival times (first <= second) *)

val delivery : outcome -> int
(** First arrival time of a delivered message.  Raises
    [Invalid_argument] on [Dropped] — callers on the fault-free path
    (no policy armed) can rely on [send] never dropping. *)

val send :
  ?overhead_bytes:int -> t -> kind:kind -> src:int -> dst:int -> payload_bytes:int ->
  at:int -> outcome
(** [send t ~kind ~src ~dst ~payload_bytes ~at] records the message and
    returns its delivery outcome.  Without a fault policy this is always
    [Delivered (at + transfer time)].  [overhead_bytes] (default 0)
    models per-line/per-run descriptors: it adds wire time but is
    excluded from the payload accounting, as in the paper.

    Self-sends ([src = dst]) are legal (local lock service), cost
    nothing, arrive instantly, update no counter, and are NEVER subject
    to fault injection: a message that does not cross the fabric cannot
    be dropped, duplicated or jittered.

    Accounting under faults: every copy put on the wire counts as sent
    ([messages_sent], [bytes_sent], the kind counter), but only messages
    that actually arrive count as received, and a duplicated payload is
    received once (the second copy is a protocol-level artifact the
    {!Reliable} layer suppresses). *)

val messages_sent : t -> proc:int -> int

val bytes_sent : t -> proc:int -> int
(** Payload bytes this processor put on the wire. *)

val bytes_received : t -> proc:int -> int

val total_messages : t -> int

val total_payload_bytes : t -> int

val messages_of_kind : t -> kind -> int

val drops_injected : t -> int
(** Copies the fault layer destroyed (0 without a policy). *)

val duplicates_injected : t -> int
(** Second copies the fault layer manufactured (0 without a policy). *)
