(** Node-level fault schedules: crash-stop and crash-recovery events.

    A {!plan} is a deterministic script of processor failures on the
    simulated clock.  It composes with the message-level hazards of
    {!Net} (drop / duplicate / jitter and scripted windows): a down
    processor neither sends nor receives, which the network models as
    deterministic drops, while the recovery protocol in [Midway.Runtime]
    handles ownership failover and rejoin.

    Plans are pure data — [is_down] is a function of the plan and the
    clock only — so a (workload seed, schedule seed, fault seed, crash
    plan) tuple reproduces a run bit-for-bit. *)

type action =
  | Stop  (** the processor halts: loses volatile state, drops off the wire *)
  | Recover
      (** the processor rejoins as a protocol participant (replica host,
          quorum voter) with amnesia; its program fiber does not resume *)

type event = { at_ns : int; proc : int; action : action }

type plan
(** An immutable, time-sorted crash script. *)

val scripted : event list -> plan
(** Build a plan from explicit events (sorted internally by time, then
    processor).  Raises [Invalid_argument] on a negative time or
    processor, or when a processor's events do not alternate
    Stop / Recover starting from up. *)

val seeded : seed:int -> nprocs:int -> events:int -> horizon_ns:int -> plan
(** Generate up to [events] crash episodes deterministically from
    [seed].  Victims are distinct processors; at most a strict minority
    of [nprocs] is ever down at once, so a majority quorum always
    exists and failover can make progress.  Roughly half the episodes
    recover within the horizon (crash-recovery), the rest are
    crash-stop. *)

val empty : plan

val events : plan -> event list
(** Events in schedule order. *)

val is_down : plan -> proc:int -> at:int -> bool
(** Has [proc] crashed (and not yet recovered) as of time [at]? *)

val down_count : plan -> nprocs:int -> at:int -> int
(** Number of processors down at [at]. *)

val stops_before : plan -> proc:int -> at:int -> int
(** Number of Stop events for [proc] at or before [at] — the
    processor's crash count, used to detect a rejoin since some earlier
    observation. *)

val first_stop : plan -> proc:int -> int option
(** Time of [proc]'s first Stop event, if any. *)

val render : plan -> string
(** Serialize as ["stop@NS:pK,recover@NS:pK,…"] — the inverse of
    {!parse_spec}, used by the fuzzer's counterexample files. *)

val parse_spec : nprocs:int -> string -> (plan, string) result
(** Parse a [--crash] specification.  Two forms:
    - scripted: ["stop@2ms:p1,recover@8ms:p1"] (times accept [ns], [us],
      [ms], [s] suffixes; bare integers are nanoseconds);
    - seeded: ["n=2,seed=7"] with optional [horizon=NS] (default 50ms). *)

val pp : Format.formatter -> plan -> unit
