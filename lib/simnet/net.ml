type kind =
  | Lock_request
  | Lock_reply
  | Lock_forward
  | Barrier_arrive
  | Barrier_release
  | Startup
  | Ack
  | Replicate
  | Vote
  | Vote_reply

let kind_name = function
  | Lock_request -> "lock-request"
  | Lock_reply -> "lock-reply"
  | Lock_forward -> "lock-forward"
  | Barrier_arrive -> "barrier-arrive"
  | Barrier_release -> "barrier-release"
  | Startup -> "startup"
  | Ack -> "ack"
  | Replicate -> "replicate"
  | Vote -> "vote"
  | Vote_reply -> "vote-reply"

let kind_index = function
  | Lock_request -> 0
  | Lock_reply -> 1
  | Lock_forward -> 2
  | Barrier_arrive -> 3
  | Barrier_release -> 4
  | Startup -> 5
  | Ack -> 6
  | Replicate -> 7
  | Vote -> 8
  | Vote_reply -> 9

let nkinds = 10

type fault_link = { drop : float; duplicate : float; jitter_ns : int }

let fault_free_link = { drop = 0.0; duplicate = 0.0; jitter_ns = 0 }

type fault_window = {
  w_from_ns : int;
  w_until_ns : int;
  w_kind : kind option;
  w_src : int option;
  w_dst : int option;
}

type fault_policy = {
  link : fault_link;
  overrides : ((int * int) * fault_link) list;
  windows : fault_window list;
  fault_seed : int;
}

(* A [fault_link] with a probability outside [0, 1] would silently
   misbehave: the PRNG draw is compared raw, so drop = 1.5 behaves like
   certain loss and drop = -0.1 like none, with no hint the policy is
   nonsense.  Validate every link at policy-construction time and name
   the offending field. *)
let check_link ~where (l : fault_link) =
  let bad field v =
    invalid_arg
      (Printf.sprintf "Net.fault_policy: %s.%s = %g outside [0, 1]" where field v)
  in
  if l.drop < 0.0 || l.drop > 1.0 then bad "drop" l.drop;
  if l.duplicate < 0.0 || l.duplicate > 1.0 then bad "duplicate" l.duplicate;
  if l.jitter_ns < 0 then
    invalid_arg
      (Printf.sprintf "Net.fault_policy: %s.jitter_ns = %d is negative" where l.jitter_ns)

let validate_fault_policy policy =
  check_link ~where:"link" policy.link;
  List.iter
    (fun ((src, dst), l) -> check_link ~where:(Printf.sprintf "overrides[(%d,%d)]" src dst) l)
    policy.overrides;
  policy

let uniform_faults ?(duplicate = 0.0) ?(jitter_ns = 0) ?(seed = 42) ~drop () =
  validate_fault_policy
    {
      link = { drop; duplicate; jitter_ns };
      overrides = [];
      windows = [];
      fault_seed = seed;
    }

type fault_state = {
  policy : fault_policy;
  prng : Midway_util.Prng.t;
  mutable drops : int;
  mutable dups : int;
}

type t = {
  nprocs : int;
  latency_ns : int;
  ns_per_byte : int;
  header_bytes : int;
  msgs_sent : int array;
  payload_sent : int array;
  payload_received : int array;
  by_kind : int array;
  mutable fault : fault_state option;
  (* Node-level faults: when set, a message from or to a down processor
     is destroyed deterministically (no PRNG draw), composing with the
     probabilistic hazards below exactly like a scripted window. *)
  mutable down : (proc:int -> at:int -> bool) option;
  mutable crash_drops : int;
}

let create ?(latency_ns = 150_000) ?(ns_per_byte = 57) ?(header_bytes = 64) ~nprocs () =
  if nprocs <= 0 then invalid_arg "Net.create: nprocs must be positive";
  {
    nprocs;
    latency_ns;
    ns_per_byte;
    header_bytes;
    msgs_sent = Array.make nprocs 0;
    payload_sent = Array.make nprocs 0;
    payload_received = Array.make nprocs 0;
    by_kind = Array.make nkinds 0;
    fault = None;
    down = None;
    crash_drops = 0;
  }

let set_fault_policy t policy =
  t.fault <-
    Some
      {
        policy = validate_fault_policy policy;
        prng = Midway_util.Prng.create ~seed:policy.fault_seed;
        drops = 0;
        dups = 0;
      }

let fault_policy t = Option.map (fun f -> f.policy) t.fault

let set_crash_predicate t down = t.down <- down

let crash_drops_injected t = t.crash_drops

let nprocs t = t.nprocs

let transfer_ns t ~payload_bytes =
  t.latency_ns + ((t.header_bytes + payload_bytes) * t.ns_per_byte)

type outcome = Delivered of int | Dropped | Duplicated of int * int

let delivery = function
  | Delivered at -> at
  | Duplicated (at, _) -> at
  | Dropped -> invalid_arg "Net.delivery: message was dropped"

let window_matches ~kind ~src ~dst ~at w =
  at >= w.w_from_ns && at < w.w_until_ns
  && (match w.w_kind with None -> true | Some k -> k = kind)
  && (match w.w_src with None -> true | Some s -> s = src)
  && (match w.w_dst with None -> true | Some d -> d = dst)

let link_hazards policy ~src ~dst =
  match List.assoc_opt (src, dst) policy.overrides with
  | Some l -> l
  | None -> policy.link

(* Decide one copy's fate.  Scripted windows are deterministic outages;
   otherwise a drop draw, then a duplication draw, then a jitter draw per
   arriving copy, always in that order so a fixed seed reproduces the
   exact injection sequence. *)
let inject f ~kind ~src ~dst ~at ~base ~echo_ns =
  if List.exists (window_matches ~kind ~src ~dst ~at) f.policy.windows then begin
    f.drops <- f.drops + 1;
    Dropped
  end
  else begin
    let link = link_hazards f.policy ~src ~dst in
    let draw () = Midway_util.Prng.float f.prng 1.0 in
    let jitter () =
      if link.jitter_ns > 0 then Midway_util.Prng.int f.prng (link.jitter_ns + 1) else 0
    in
    if link.drop > 0.0 && draw () < link.drop then begin
      f.drops <- f.drops + 1;
      Dropped
    end
    else begin
      let dup = link.duplicate > 0.0 && draw () < link.duplicate in
      let first = base + jitter () in
      if dup then begin
        f.dups <- f.dups + 1;
        (* the echo trails the original by one switch latency (plus jitter) *)
        let second = first + echo_ns + jitter () in
        Duplicated (first, second)
      end
      else Delivered first
    end
  end

let send ?(overhead_bytes = 0) t ~kind ~src ~dst ~payload_bytes ~at =
  if src < 0 || src >= t.nprocs || dst < 0 || dst >= t.nprocs then
    invalid_arg "Net.send: processor out of range";
  if payload_bytes < 0 || overhead_bytes < 0 then invalid_arg "Net.send: negative payload";
  if src = dst then Delivered at
  else begin
    let down proc when_ =
      match t.down with None -> false | Some f -> f ~proc ~at:when_
    in
    if down src at then begin
      (* a halted processor puts nothing on the wire *)
      t.crash_drops <- t.crash_drops + 1;
      Dropped
    end
    else begin
      t.msgs_sent.(src) <- t.msgs_sent.(src) + 1;
      t.payload_sent.(src) <- t.payload_sent.(src) + payload_bytes;
      t.by_kind.(kind_index kind) <- t.by_kind.(kind_index kind) + 1;
      let base = at + transfer_ns t ~payload_bytes:(payload_bytes + overhead_bytes) in
      let outcome =
        match t.fault with
        | None -> Delivered base
        | Some f -> inject f ~kind ~src ~dst ~at ~base ~echo_ns:t.latency_ns
      in
      (* a copy arriving at a down destination is destroyed in the NIC;
         each surviving copy is judged at its own arrival time, so an
         echo can outlive a recovery the original missed *)
      let outcome =
        match outcome with
        | Dropped -> Dropped
        | Delivered a ->
            if down dst a then begin
              t.crash_drops <- t.crash_drops + 1;
              Dropped
            end
            else Delivered a
        | Duplicated (a, b) -> (
            match (down dst a, down dst b) with
            | false, false -> Duplicated (a, b)
            | false, true ->
                t.crash_drops <- t.crash_drops + 1;
                Delivered a
            | true, false ->
                t.crash_drops <- t.crash_drops + 1;
                Delivered b
            | true, true ->
                t.crash_drops <- t.crash_drops + 2;
                Dropped)
      in
      (match outcome with
      | Dropped -> ()
      | Delivered _ | Duplicated _ ->
          t.payload_received.(dst) <- t.payload_received.(dst) + payload_bytes);
      outcome
    end
  end

let messages_sent t ~proc = t.msgs_sent.(proc)

let bytes_sent t ~proc = t.payload_sent.(proc)

let bytes_received t ~proc = t.payload_received.(proc)

let total_messages t = Array.fold_left ( + ) 0 t.msgs_sent

let total_payload_bytes t = Array.fold_left ( + ) 0 t.payload_sent

let messages_of_kind t kind = t.by_kind.(kind_index kind)

let drops_injected t = match t.fault with None -> 0 | Some f -> f.drops

let duplicates_injected t = match t.fault with None -> 0 | Some f -> f.dups
