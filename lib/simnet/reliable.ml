type config = { timeout_ns : int; backoff_cap_ns : int; max_attempts : int }

let default_config = { timeout_ns = 1_000_000; backoff_cap_ns = 16_000_000; max_attempts = 20 }

type episode = {
  e_kind : Net.kind;
  e_src : int;
  e_dst : int;
  e_seq : int;
  e_payload_bytes : int;
  e_sent_at : int;
  e_delivered_at : int;
  e_acked_at : int;
  e_transmissions : int;
  e_retransmits : int;
  e_backoff_ns : int;
}

type t = {
  cfg : config;
  net : Net.t;
  seqs : int array;  (* next sequence number per (src, dst) link *)
  mutable unacked : int;
  mutable retransmits : int;
  mutable backoff_ns : int;
  (* Observability hook, called once per completed non-local exchange.
     It sees values [send] computed anyway, after all fault draws are
     resolved, so arming it cannot perturb the PRNG stream or the run. *)
  mutable observer : (episode -> unit) option;
  (* Suspicion oracle: when set and the retry budget runs out against a
     peer the oracle says is down, the episode surfaces as [Suspected]
     (a failure-detector event the recovery protocol reacts to) instead
     of the generic [Exhausted]. *)
  mutable suspector : (peer:int -> at:int -> bool) option;
}

type suspicion = {
  s_kind : Net.kind;
  s_src : int;
  s_dst : int;
  s_seq : int;
  s_attempts : int;
  s_elapsed_ns : int;  (** virtual time burned before giving up *)
}

exception Exhausted of string

exception Suspected of suspicion

let exhausted_message ~kind ~src ~dst ~seq ~attempts ~elapsed_ns =
  Printf.sprintf
    "Reliable.send: exhausted {kind=%s; src=p%d; dst=p%d; seq=%d; attempts=%d; \
     elapsed_ns=%d}"
    (Net.kind_name kind) src dst seq attempts elapsed_ns

let create ?(config = default_config) net =
  if config.timeout_ns <= 0 then invalid_arg "Reliable.create: timeout must be positive";
  if config.backoff_cap_ns < config.timeout_ns then
    invalid_arg "Reliable.create: backoff cap below the initial timeout";
  if config.max_attempts < 1 then invalid_arg "Reliable.create: need at least one attempt";
  let n = Net.nprocs net in
  {
    cfg = config;
    net;
    seqs = Array.make (n * n) 0;
    unacked = 0;
    retransmits = 0;
    backoff_ns = 0;
    observer = None;
    suspector = None;
  }

let config t = t.cfg

let set_observer t f = t.observer <- f

let set_suspector t f = t.suspector <- f

type delivery = {
  delivered_at : int;
  acked_at : int;
  transmissions : int;
  retransmits : int;
  drops_seen : int;
  dups_suppressed : int;
  backoff_ns : int;
}

let local_delivery at =
  {
    delivered_at = at;
    acked_at = at;
    transmissions = 0;
    retransmits = 0;
    drops_seen = 0;
    dups_suppressed = 0;
    backoff_ns = 0;
  }

let send ?(overhead_bytes = 0) t ~kind ~src ~dst ~payload_bytes ~at =
  if src = dst then local_delivery at
  else begin
    let ch = (src * Net.nprocs t.net) + dst in
    let seq = t.seqs.(ch) in
    t.seqs.(ch) <- seq + 1;
    t.unacked <- t.unacked + 1;
    let timeout = ref t.cfg.timeout_ns in
    let drops = ref 0 and dups = ref 0 and backoff = ref 0 in
    let delivered = ref None in
    let acked = ref None in
    let attempts = ref 0 in
    let send_at = ref at in
    (* One copy reaches the receiver: a fresh sequence number is
       delivered to the application, a repeat is suppressed; either way
       the receiver (re-)acks, since the original ack may have died. *)
    let receive d =
      (match !delivered with
      | None -> delivered := Some d
      | Some _ -> incr dups);
      match Net.send t.net ~kind:Net.Ack ~src:dst ~dst:src ~payload_bytes:0 ~at:d with
      | Net.Delivered a | Net.Duplicated (a, _) -> Some a
      | Net.Dropped ->
          incr drops;
          None
    in
    while !acked = None do
      if !attempts >= t.cfg.max_attempts then begin
        t.unacked <- t.unacked - 1;
        t.retransmits <- t.retransmits + !attempts - 1;
        t.backoff_ns <- t.backoff_ns + !backoff;
        let elapsed_ns = !send_at - at in
        (* Either end being down explains the exhaustion as a crash
           fault: a dead receiver never acks, and a sender that crashed
           mid-episode stops retransmitting (its remaining copies drop
           at the network).  The caller tells the cases apart from the
           plan — a dead source means the caller itself is the crash. *)
        let suspected =
          match t.suspector with
          | Some dead -> dead ~peer:dst ~at:!send_at || dead ~peer:src ~at:!send_at
          | None -> false
        in
        if suspected then
          raise
            (Suspected
               {
                 s_kind = kind;
                 s_src = src;
                 s_dst = dst;
                 s_seq = seq;
                 s_attempts = !attempts;
                 s_elapsed_ns = elapsed_ns;
               })
        else
          raise
            (Exhausted
               (exhausted_message ~kind ~src ~dst ~seq ~attempts:!attempts ~elapsed_ns))
      end;
      incr attempts;
      let ack =
        match
          Net.send ~overhead_bytes t.net ~kind ~src ~dst ~payload_bytes ~at:!send_at
        with
        | Net.Dropped ->
            incr drops;
            None
        | Net.Delivered d -> receive d
        | Net.Duplicated (d1, d2) ->
            let a1 = receive d1 in
            let a2 = receive d2 in
            (match (a1, a2) with
            | Some x, Some y -> Some (min x y)
            | (Some _ as a), None | None, (Some _ as a) -> a
            | None, None -> None)
      in
      match ack with
      | Some a -> acked := Some a
      | None ->
          (* nothing came back: time out and retransmit with backoff *)
          backoff := !backoff + !timeout;
          send_at := !send_at + !timeout;
          timeout := min (2 * !timeout) t.cfg.backoff_cap_ns
    done;
    t.unacked <- t.unacked - 1;
    t.retransmits <- t.retransmits + !attempts - 1;
    t.backoff_ns <- t.backoff_ns + !backoff;
    (match t.observer with
    | Some f ->
        f
          {
            e_kind = kind;
            e_src = src;
            e_dst = dst;
            e_seq = seq;
            e_payload_bytes = payload_bytes;
            e_sent_at = at;
            e_delivered_at = Option.get !delivered;
            e_acked_at = Option.get !acked;
            e_transmissions = !attempts;
            e_retransmits = !attempts - 1;
            e_backoff_ns = !backoff;
          }
    | None -> ());
    {
      delivered_at = Option.get !delivered;
      acked_at = Option.get !acked;
      transmissions = !attempts;
      retransmits = !attempts - 1;
      drops_seen = !drops;
      dups_suppressed = !dups;
      backoff_ns = !backoff;
    }
  end

let unacked t = t.unacked

let next_seq t ~src ~dst = t.seqs.((src * Net.nprocs t.net) + dst)

let total_retransmits (t : t) = t.retransmits

let total_backoff_ns (t : t) = t.backoff_ns
