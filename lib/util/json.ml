(* A minimal JSON value type with a printer and a strict parser — just
   enough for the benchmark artifacts (BENCH_wallclock.json) without an
   external dependency.  Numbers keep int/float identity so simulated
   nanosecond counts round-trip exactly. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec emit b ~indent ~level v =
  let pad n = String.make (n * indent) ' ' in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (string_of_bool x)
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_repr f)
  | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | List [] -> Buffer.add_string b "[]"
  | List items ->
      Buffer.add_string b "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b (pad (level + 1));
          emit b ~indent ~level:(level + 1) item)
        items;
      Buffer.add_char b '\n';
      Buffer.add_string b (pad level);
      Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj fields ->
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b (pad (level + 1));
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\": ";
          emit b ~indent ~level:(level + 1) item)
        fields;
      Buffer.add_char b '\n';
      Buffer.add_string b (pad level);
      Buffer.add_char b '}'

let to_string ?(indent = 2) v =
  let b = Buffer.create 256 in
  emit b ~indent ~level:0 v;
  Buffer.add_char b '\n';
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char b '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char b '\\'; advance (); go ()
          | Some '/' -> Buffer.add_char b '/'; advance (); go ()
          | Some 'n' -> Buffer.add_char b '\n'; advance (); go ()
          | Some 'r' -> Buffer.add_char b '\r'; advance (); go ()
          | Some 't' -> Buffer.add_char b '\t'; advance (); go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "short unicode escape";
              let code = int_of_string ("0x" ^ String.sub s !pos 4) in
              pos := !pos + 4;
              (* ASCII range only; enough for our own artifacts *)
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else Buffer.add_string b (Printf.sprintf "\\u%04x" code);
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if tok = "" then fail "expected number";
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
      match float_of_string_opt tok with Some f -> Float f | None -> fail "bad float"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt tok with Some f -> Float f | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); List [] end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          List (List.rev !items)
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_list = function List items -> Some items | _ -> None

let to_float = function Int i -> Some (float_of_int i) | Float f -> Some f | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
