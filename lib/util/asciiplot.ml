type series = { name : string; marker : char; points : (float * float) list }

type t = {
  width : int;
  height : int;
  title : string;
  x_label : string;
  y_label : string;
  mutable series : series list; (* reversed *)
  mutable draw_diagonal : bool;
}

let create ?(width = 64) ?(height = 20) ~title ~x_label ~y_label () =
  { width; height; title; x_label; y_label; series = []; draw_diagonal = false }

let series t ~name ~marker points = t.series <- { name; marker; points } :: t.series

let diagonal t = t.draw_diagonal <- true

let bounds t =
  let xs = List.concat_map (fun s -> List.map fst s.points) t.series in
  let ys = List.concat_map (fun s -> List.map snd s.points) t.series in
  let ys = if t.draw_diagonal then xs @ ys else ys in
  let min_l = List.fold_left min infinity and max_l = List.fold_left max neg_infinity in
  let pad lo hi = if hi > lo then (lo, hi) else (lo -. 1.0, hi +. 1.0) in
  let x0, x1 = pad (min 0.0 (min_l xs)) (max_l xs) in
  let y0, y1 = pad (min 0.0 (min_l ys)) (max_l ys) in
  (x0, x1, y0, y1)

let render t =
  (* All-empty point lists would fold bounds to (infinity, neg_infinity)
     and put NaNs in every coordinate; render them as no data, like the
     no-series case. *)
  if t.series = [] || List.for_all (fun s -> s.points = []) t.series then
    t.title ^ "\n(no data)\n"
  else begin
    let x0, x1, y0, y1 = bounds t in
    let grid = Array.make_matrix t.height t.width ' ' in
    let to_col x =
      let c = int_of_float (Float.round ((x -. x0) /. (x1 -. x0) *. float_of_int (t.width - 1))) in
      max 0 (min (t.width - 1) c)
    in
    let to_row y =
      let r = int_of_float (Float.round ((y -. y0) /. (y1 -. y0) *. float_of_int (t.height - 1))) in
      (t.height - 1) - max 0 (min (t.height - 1) r)
    in
    if t.draw_diagonal then
      for c = 0 to t.width - 1 do
        let x = x0 +. (float_of_int c /. float_of_int (t.width - 1) *. (x1 -. x0)) in
        if x >= y0 && x <= y1 then grid.(to_row x).(c) <- '.'
      done;
    let plot_series s =
      (* Connect consecutive points with linearly interpolated markers so
         sweep lines read as lines, not dots. *)
      let draw (xa, ya) (xb, yb) =
        let ca = to_col xa and cb = to_col xb in
        let steps = max 1 (abs (cb - ca)) in
        for i = 0 to steps do
          let f = float_of_int i /. float_of_int steps in
          let x = xa +. (f *. (xb -. xa)) and y = ya +. (f *. (yb -. ya)) in
          grid.(to_row y).(to_col x) <- s.marker
        done
      in
      match s.points with
      | [] -> ()
      | [ p ] -> grid.(to_row (snd p)).(to_col (fst p)) <- s.marker
      | first :: rest -> ignore (List.fold_left (fun a b -> draw a b; b) first rest)
    in
    List.iter plot_series (List.rev t.series);
    let buf = Buffer.create 4096 in
    Buffer.add_string buf t.title;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (Printf.sprintf "y: %s  (%.3g .. %.3g)\n" t.y_label y0 y1);
    Array.iter
      (fun line ->
        Buffer.add_string buf "  |";
        Array.iter (Buffer.add_char buf) line;
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf "  +";
    Buffer.add_string buf (String.make t.width '-');
    Buffer.add_char buf '\n';
    Buffer.add_string buf (Printf.sprintf "x: %s  (%.3g .. %.3g)\n" t.x_label x0 x1);
    Buffer.add_string buf "legend:";
    List.iter
      (fun s -> Buffer.add_string buf (Printf.sprintf " [%c] %s" s.marker s.name))
      (List.rev t.series);
    if t.draw_diagonal then Buffer.add_string buf " [.] break-even y=x";
    Buffer.add_char buf '\n';
    Buffer.contents buf
  end

let bars ~title ~unit_label ~groups =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  let vmax =
    List.fold_left
      (fun acc (_, bars) -> List.fold_left (fun a (_, v) -> max a v) acc bars)
      0.0 groups
  in
  let vmax = if vmax <= 0.0 then 1.0 else vmax in
  let bar_width = 46 in
  let name_w =
    List.fold_left
      (fun acc (g, bars) ->
        List.fold_left (fun a (n, _) -> max a (String.length n)) (max acc (String.length g)) bars)
      0 groups
  in
  List.iter
    (fun (group, bars) ->
      Buffer.add_string buf group;
      Buffer.add_char buf '\n';
      List.iter
        (fun (name, v) ->
          let n = int_of_float (Float.round (v /. vmax *. float_of_int bar_width)) in
          Buffer.add_string buf
            (Printf.sprintf "  %-*s |%s%s %s %s\n" name_w name (String.make n '#')
               (String.make (bar_width - n) ' ')
               (Texttab.fmt_float ~decimals:2 v)
               unit_label))
        bars)
    groups;
  Buffer.contents buf
