type word = {
  mutable excl : int;
  mutable written : bool;
  mutable last_writer : int;
  mutable lw_sync : int;
  mutable lw_episode : int;
  mutable priv_writer : int;
}

type t = (int, word) Hashtbl.t

let create () = Hashtbl.create 1024

let find t w = Hashtbl.find_opt t w

let touch t w ~proc =
  match Hashtbl.find_opt t w with
  | Some s -> s
  | None ->
      let s =
        { excl = proc; written = false; last_writer = -1; lw_sync = -1; lw_episode = -1; priv_writer = -1 }
      in
      Hashtbl.replace t w s;
      s

let tracked t = Hashtbl.length t
