type cls =
  | Unsynchronized_access
  | Write_under_shared_hold
  | Unbound_shared_data
  | Misclassified_private_store
  | Stale_binding_access
  | Lint_overlapping_bindings
  | Lint_private_binding
  | Lint_degenerate_range

let class_name = function
  | Unsynchronized_access -> "unsynchronized-access"
  | Write_under_shared_hold -> "write-under-shared-hold"
  | Unbound_shared_data -> "unbound-shared-data"
  | Misclassified_private_store -> "misclassified-private-store"
  | Stale_binding_access -> "stale-binding-access"
  | Lint_overlapping_bindings -> "lint-overlapping-bindings"
  | Lint_private_binding -> "lint-private-binding"
  | Lint_degenerate_range -> "lint-degenerate-range"

let is_lint = function
  | Lint_overlapping_bindings | Lint_private_binding | Lint_degenerate_range -> true
  | Unsynchronized_access | Write_under_shared_hold | Unbound_shared_data
  | Misclassified_private_store | Stale_binding_access ->
      false

type violation = {
  cls : cls;
  proc : int;
  sync : int;
  lo : int;
  hi : int;
  count : int;
  first_time : int;
  first_op : string;
  detail : string;
  context : string list;
}

(* One mutable accumulator per (cls, proc, sync) key. *)
type record = {
  r_cls : cls;
  r_proc : int;
  r_sync : int;
  mutable r_lo : int;
  mutable r_hi : int;
  mutable r_count : int;
  r_first_time : int;
  r_first_op : string;
  r_detail : string;
  r_context : string list;
  r_order : int;  (* insertion order, the deterministic tie-break *)
}

type table = {
  records : (cls * int * int, record) Hashtbl.t;
  mutable next_order : int;
}

let create_table () = { records = Hashtbl.create 16; next_order = 0 }

let note t ~cls ~proc ~sync ~lo ~hi ~time ~op ~detail ~context =
  let key = (cls, proc, sync) in
  match Hashtbl.find_opt t.records key with
  | Some r ->
      r.r_lo <- min r.r_lo lo;
      r.r_hi <- max r.r_hi hi;
      r.r_count <- r.r_count + 1
  | None ->
      let r =
        {
          r_cls = cls;
          r_proc = proc;
          r_sync = sync;
          r_lo = lo;
          r_hi = hi;
          r_count = 1;
          r_first_time = time;
          r_first_op = op;
          r_detail = detail;
          r_context = context ();
          r_order = t.next_order;
        }
      in
      t.next_order <- t.next_order + 1;
      Hashtbl.replace t.records key r

let violations t =
  Hashtbl.fold (fun _ r acc -> r :: acc) t.records []
  |> List.sort (fun a b ->
         if a.r_first_time <> b.r_first_time then compare a.r_first_time b.r_first_time
         else compare a.r_order b.r_order)
  |> List.map (fun r ->
         {
           cls = r.r_cls;
           proc = r.r_proc;
           sync = r.r_sync;
           lo = r.r_lo;
           hi = r.r_hi;
           count = r.r_count;
           first_time = r.r_first_time;
           first_op = r.r_first_op;
           detail = r.r_detail;
           context = r.r_context;
         })
