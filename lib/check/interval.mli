(** Half-open integer intervals, the sanitizer's internal range algebra.

    {!Midway_check} sits below the [midway] library (the runtime calls
    into it), so it cannot use [Midway.Range]; this module provides the
    small interval-set algebra the binding index needs — normalization,
    membership, union and subtraction — over plain [(lo, hi)] pairs.
    The semantics mirror [Range.normalize]: sorting, dropping empties and
    merging overlapping or adjacent intervals. *)

type t = { lo : int; hi : int }  (** the half-open interval [\[lo, hi)] *)

val v : lo:int -> len:int -> t

val is_empty : t -> bool

val mem : t list -> int -> bool
(** Membership of a point in a normalized list. *)

val normalize : t list -> t list
(** Sort, drop empties, merge overlapping and adjacent intervals. *)

val union : t list -> t list -> t list
(** Union of two normalized lists (result normalized). *)

val subtract : t list -> minus:t list -> t list
(** Pieces of the first (normalized) list not covered by the second. *)

val iter_points : t list -> f:(int -> unit) -> unit
(** Visit every integer point of a normalized list. *)
