(* Address ranges, the one interval algebra of the tree.

   Lives in midway_check (the dependency-free layer below the simulator)
   so that both the runtime (via the Midway.Range re-export) and the
   sanitizer/analyzer share a single implementation; lib/check once
   carried its own Interval copy of normalize/merge/overlap, now gone. *)

type t = { addr : int; len : int }

let v addr len =
  if addr < 0 || len < 0 then invalid_arg "Range.v: negative address or length";
  { addr; len }

let limit r = r.addr + r.len

let is_empty r = r.len = 0

let normalize ranges =
  let sorted =
    List.filter (fun r -> not (is_empty r)) ranges
    |> List.sort (fun a b -> compare a.addr b.addr)
  in
  let rec merge = function
    | a :: b :: rest ->
        if b.addr <= limit a then
          merge ({ a with len = max (limit a) (limit b) - a.addr } :: rest)
        else a :: merge (b :: rest)
    | rest -> rest
  in
  merge sorted

let total_bytes ranges = List.fold_left (fun acc r -> acc + r.len) 0 ranges

let overlaps a b = max a.addr b.addr < min (limit a) (limit b)

let intersect a b =
  let lo = max a.addr b.addr and hi = min (limit a) (limit b) in
  if lo < hi then Some { addr = lo; len = hi - lo } else None

let clip r ~within = List.filter_map (intersect r) within

let subtract r ~minus =
  let minus = normalize minus in
  let rec go cursor acc = function
    | [] ->
        if cursor < limit r then { addr = cursor; len = limit r - cursor } :: acc else acc
    | m :: rest ->
        if limit m <= cursor then go cursor acc rest
        else if m.addr >= limit r then go cursor acc []
        else begin
          let acc =
            if m.addr > cursor then { addr = cursor; len = m.addr - cursor } :: acc
            else acc
          in
          go (max cursor (limit m)) acc rest
        end
  in
  if is_empty r then [] else List.rev (go r.addr [] minus)

let contains ranges ~addr ~len =
  if len = 0 then true
  else
    let target = { addr; len } in
    let covered =
      clip target ~within:ranges |> normalize |> total_bytes
    in
    covered = len

let iter_lines r ~line_size ~f =
  if not (is_empty r) then begin
    let first = r.addr / line_size and last = (limit r - 1) / line_size in
    for line = first to last do
      f ~addr:(line * line_size) ~len:line_size
    done
  end

(* --- list algebra (the former lib/check Interval surface) --------------- *)

let mem ranges x = List.exists (fun r -> x >= r.addr && x < limit r) ranges

let union a b = normalize (a @ b)

let inter a b = normalize (List.concat_map (fun r -> clip r ~within:b) a)

let subtract_list ranges ~minus = normalize (List.concat_map (fun r -> subtract r ~minus) ranges)

let covers ranges sub =
  List.for_all (fun r -> contains ranges ~addr:r.addr ~len:r.len) (normalize sub)

let iter_points ranges ~f =
  List.iter
    (fun r ->
      for x = r.addr to limit r - 1 do
        f x
      done)
    ranges
