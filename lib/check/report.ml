type t = {
  enabled : bool;
  accesses_checked : int;
  words_tracked : int;
  syncs_seen : int;
  violations : Diag.violation list;
}

let disabled =
  { enabled = false; accesses_checked = 0; words_tracked = 0; syncs_seen = 0; violations = [] }

let has_violations t = t.violations <> []

let render t =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  if not t.enabled then line "ECSan: disabled (Config.ecsan = false)"
  else begin
    line "ECSan: %d access(es) checked, %d word(s) tracked, %d sync object(s): %s" t.accesses_checked
      t.words_tracked t.syncs_seen
      (match t.violations with
      | [] -> "no violations"
      | vs -> Printf.sprintf "%d violation(s)" (List.length vs));
    List.iter
      (fun (v : Diag.violation) ->
        line "  [%s] %s" (Diag.class_name v.Diag.cls) v.Diag.detail;
        let who =
          if v.Diag.proc < 0 then "static" else Printf.sprintf "p%d" v.Diag.proc
        in
        let sync =
          if v.Diag.sync < 0 then "" else Printf.sprintf ", sync %d" v.Diag.sync
        in
        line "    %s, addresses [%#x,%#x)%s, %d occurrence(s)" who v.Diag.lo v.Diag.hi sync
          v.Diag.count;
        if not (Diag.is_lint v.Diag.cls) then
          line "    first: %s at t=%dns" v.Diag.first_op v.Diag.first_time;
        List.iter (fun c -> line "    | %s" c) v.Diag.context)
      t.violations
  end;
  Buffer.contents buf
