type access = Read | Write | Private_write

type t = {
  nprocs : int;
  index : Binding_index.t;
  held : Lockset.t;
  shadow : Shadow.t;
  diags : Diag.table;
  context : unit -> string list;
  mutable accesses : int;
  mutable linted : bool;
}

type report = Report.t

let create ?(context = fun () -> []) ~nprocs () =
  {
    nprocs;
    index = Binding_index.create ~nprocs;
    held = Lockset.create ~nprocs;
    shadow = Shadow.create ();
    diags = Diag.create_table ();
    context;
    accesses = 0;
    linted = false;
  }

let on_new_sync t ~id ~kind ~raw = Binding_index.register t.index ~id ~kind ~raw

let on_rebind t ~id ~raw = Binding_index.rebind t.index ~id ~raw

let on_acquire t ~id ~proc ~exclusive =
  Lockset.add t.held ~proc ~id ~exclusive;
  match Binding_index.find t.index id with
  | Some s -> s.Binding_index.sync_count.(proc) <- s.Binding_index.sync_count.(proc) + 1
  | None -> ()

let on_release t ~id ~proc = Lockset.remove t.held ~proc ~id

let on_barrier_cross t ~id ~proc =
  match Binding_index.find t.index id with
  | Some s -> s.Binding_index.sync_count.(proc) <- s.Binding_index.sync_count.(proc) + 1
  | None -> ()

let on_barrier_complete t ~id =
  match Binding_index.find t.index id with
  | Some s -> s.Binding_index.episode <- s.Binding_index.episode + 1
  | None -> ()

(* ------------------------------------------------------------------ *)
(* The per-word access rules                                           *)
(* ------------------------------------------------------------------ *)

let note t ~cls ~proc ~sync ~w ~time ~op ~detail =
  Diag.note t.diags ~cls ~proc ~sync ~lo:(w lsl 3) ~hi:((w + 1) lsl 3) ~time ~op ~detail
    ~context:t.context

let kind_name = function Binding_index.Lock -> "lock" | Binding_index.Barrier -> "barrier"

(* The access is covered by no current binding the processor can claim:
   decide between stale-binding, unsynchronized and unbound. *)
let flag_uncovered t ~proc ~w ~time ~op ~writing ~covering =
  let verb = if writing then "wrote" else "read" in
  match
    List.filter (fun (s : Binding_index.sync) -> s.Binding_index.kind = Binding_index.Lock)
      (Binding_index.retired_at t.index w)
  with
  | _ :: _ as retired ->
      let l =
        match
          List.find_opt
            (fun (s : Binding_index.sync) ->
              Lockset.holds t.held ~proc ~id:s.Binding_index.id
              || s.Binding_index.sync_count.(proc) > 0)
            retired
        with
        | Some l -> l
        | None -> List.hd retired
      in
      note t ~cls:Diag.Stale_binding_access ~proc ~sync:l.Binding_index.id ~w ~time ~op
        ~detail:
          (Printf.sprintf "p%d %s data that lock %d no longer binds (rebound away)" proc verb
             l.Binding_index.id)
  | [] -> (
      match covering with
      | (s : Binding_index.sync) :: _ ->
          note t ~cls:Diag.Unsynchronized_access ~proc ~sync:s.Binding_index.id ~w ~time ~op
            ~detail:
              (Printf.sprintf
                 "p%d %s data bound to %s %d without holding it or ever synchronizing on it"
                 proc verb (kind_name s.Binding_index.kind) s.Binding_index.id)
      | [] ->
          if Binding_index.ever_bound t.index w then
            note t ~cls:Diag.Unsynchronized_access ~proc ~sync:(-1) ~w ~time ~op
              ~detail:(Printf.sprintf "p%d %s formerly-bound data with no current binding" proc verb)
          else
            note t ~cls:Diag.Unbound_shared_data ~proc ~sync:(-1) ~w ~time ~op
              ~detail:
                (Printf.sprintf
                   "shared data touched by several processors (p%d %s it) but never bound to any \
                    lock or barrier"
                   proc verb))

let covering_credit ~proc covering =
  List.exists
    (fun (s : Binding_index.sync) -> s.Binding_index.sync_count.(proc) > 0)
    covering

let check_read t ~proc ~time ~op ~shared_region w =
  match Shadow.find t.shadow w with
  | None -> ignore (Shadow.touch t.shadow w ~proc)  (* first toucher, via a read *)
  | Some s ->
      if s.Shadow.priv_writer >= 0 && s.Shadow.priv_writer <> proc then
        note t ~cls:Diag.Misclassified_private_store ~proc:s.Shadow.priv_writer ~sync:(-1) ~w
          ~time ~op
          ~detail:
            (Printf.sprintf
               "p%d stored through write_*_private but p%d later read the data (the store \
                needed instrumentation)"
               s.Shadow.priv_writer proc);
      let was_excl = s.Shadow.excl in
      if shared_region && s.Shadow.written && was_excl <> proc then begin
        let covering = Binding_index.syncs_at t.index w in
        let held_cover =
          List.exists
            (fun (sy : Binding_index.sync) ->
              sy.Binding_index.kind = Binding_index.Lock
              && Lockset.holds t.held ~proc ~id:sy.Binding_index.id)
            covering
        in
        if (not held_cover) && not (covering_credit ~proc covering) then
          flag_uncovered t ~proc ~w ~time ~op ~writing:false ~covering
      end;
      if was_excl <> proc then s.Shadow.excl <- -1

let check_write t ~proc ~time ~op ~shared_region w =
  let virgin = Shadow.find t.shadow w = None in
  let s = Shadow.touch t.shadow w ~proc in
  let was_excl = if virgin then proc else s.Shadow.excl in
  s.Shadow.priv_writer <- -1;
  if shared_region then begin
    let covering = Binding_index.syncs_at t.index w in
    let excl_held =
      List.exists
        (fun (sy : Binding_index.sync) ->
          sy.Binding_index.kind = Binding_index.Lock
          && Lockset.holds_exclusive t.held ~proc ~id:sy.Binding_index.id)
        covering
    in
    let shared_hold =
      List.find_opt
        (fun (sy : Binding_index.sync) ->
          sy.Binding_index.kind = Binding_index.Lock
          && Lockset.holds t.held ~proc ~id:sy.Binding_index.id)
        covering
    in
    let barrier_cover =
      List.find_opt
        (fun (sy : Binding_index.sync) -> sy.Binding_index.kind = Binding_index.Barrier)
        covering
    in
    (* Two processors writing the same barrier-bound word in the same
       episode race at the merge: the slot arriving later silently wins. *)
    (match barrier_cover with
    | Some b ->
        if
          s.Shadow.last_writer >= 0
          && s.Shadow.last_writer <> proc
          && s.Shadow.lw_sync = b.Binding_index.id
          && s.Shadow.lw_episode = b.Binding_index.episode
        then
          note t ~cls:Diag.Unsynchronized_access ~proc ~sync:b.Binding_index.id ~w ~time ~op
            ~detail:
              (Printf.sprintf
                 "p%d and p%d both wrote barrier %d's bound data in the same episode (one update \
                  is lost at the merge)"
                 s.Shadow.last_writer proc b.Binding_index.id);
        s.Shadow.last_writer <- proc;
        s.Shadow.lw_sync <- b.Binding_index.id;
        s.Shadow.lw_episode <- b.Binding_index.episode
    | None -> ());
    if excl_held then ()
    else
      match shared_hold with
      | Some l ->
          note t ~cls:Diag.Write_under_shared_hold ~proc ~sync:l.Binding_index.id ~w ~time ~op
            ~detail:
              (Printf.sprintf
                 "p%d wrote data bound to lock %d while holding it in shared (read) mode" proc
                 l.Binding_index.id)
      | None ->
          if barrier_cover <> None then ()  (* ships at the next crossing *)
          else if was_excl = proc then ()  (* sole toucher: initialization *)
          else flag_uncovered t ~proc ~w ~time ~op ~writing:true ~covering
  end;
  s.Shadow.written <- true;
  if was_excl <> proc then s.Shadow.excl <- -1

let check_private_write t ~proc w =
  let virgin = Shadow.find t.shadow w = None in
  let s = Shadow.touch t.shadow w ~proc in
  let was_excl = if virgin then proc else s.Shadow.excl in
  s.Shadow.priv_writer <- proc;
  if was_excl <> proc then s.Shadow.excl <- -1

let on_access t ~proc ~time ~addr ~len ~op ~access ~shared_region =
  if len > 0 then begin
    t.accesses <- t.accesses + 1;
    for w = addr asr 3 to (addr + len - 1) asr 3 do
      match access with
      | Read -> check_read t ~proc ~time ~op ~shared_region w
      | Write -> check_write t ~proc ~time ~op ~shared_region w
      | Private_write -> check_private_write t ~proc w
    done
  end

(* ------------------------------------------------------------------ *)
(* Static lint of the binding table                                    *)
(* ------------------------------------------------------------------ *)

let lint t ~region_kind =
  if not t.linted then begin
    t.linted <- true;
    let no_ctx () = [] in
    let lint_note ~cls ~sync ~lo ~hi ~detail =
      Diag.note t.diags ~cls ~proc:(-1) ~sync ~lo ~hi ~time:0 ~op:"lint" ~detail ~context:no_ctx
    in
    List.iter
      (fun (id, addr, len) ->
        lint_note ~cls:Diag.Lint_degenerate_range ~sync:id ~lo:addr ~hi:(addr + len)
          ~detail:(Printf.sprintf "sync %d binds a zero-length range at %#x" id addr))
      (Binding_index.degenerate t.index);
    let syncs = Binding_index.all t.index in
    (* Ranges bound to two different locks: a datum can only be made
       consistent under one guard. *)
    let rec pairs = function
      | [] -> ()
      | (a : Binding_index.sync) :: rest ->
          List.iter
            (fun (b : Binding_index.sync) ->
              if a.Binding_index.kind = Binding_index.Lock && b.Binding_index.kind = Binding_index.Lock
              then
                List.iter
                  (fun ia ->
                    List.iter
                      (fun ib ->
                        match Range.intersect ia ib with
                        | None -> ()
                        | Some o ->
                            let lo = o.Range.addr and hi = Range.limit o in
                            lint_note ~cls:Diag.Lint_overlapping_bindings ~sync:a.Binding_index.id
                              ~lo ~hi
                              ~detail:
                                (Printf.sprintf "locks %d and %d both bind [%#x,%#x)"
                                   a.Binding_index.id b.Binding_index.id lo hi))
                      b.Binding_index.cur)
                  a.Binding_index.cur)
            rest;
          pairs rest
    in
    pairs syncs;
    (* Bindings must point into mapped shared memory. *)
    List.iter
      (fun (s : Binding_index.sync) ->
        List.iter
          (fun i ->
            let lo = i.Range.addr and hi = Range.limit i in
            let bad at =
              match region_kind at with
              | `Shared -> None
              | `Private -> Some "private memory"
              | `Unmapped -> Some "unmapped memory"
            in
            match (bad lo, bad (hi - 1)) with
            | Some what, _ | None, Some what ->
                lint_note ~cls:Diag.Lint_private_binding ~sync:s.Binding_index.id ~lo ~hi
                  ~detail:
                    (Printf.sprintf "%s %d binds [%#x,%#x), which lies in %s"
                       (kind_name s.Binding_index.kind) s.Binding_index.id lo hi what)
            | None, None -> ())
          s.Binding_index.cur)
      syncs
  end

let report t =
  {
    Report.enabled = true;
    accesses_checked = t.accesses;
    words_tracked = Shadow.tracked t.shadow;
    syncs_seen = List.length (Binding_index.all t.index);
    violations = Diag.violations t.diags;
  }

let current_ranges t ~id = Binding_index.current_ranges t.index ~id
