type t = { lo : int; hi : int }

let v ~lo ~len = { lo; hi = lo + len }

let is_empty i = i.hi <= i.lo

let mem ivs x = List.exists (fun i -> x >= i.lo && x < i.hi) ivs

let normalize ivs =
  let sorted =
    List.sort (fun a b -> if a.lo <> b.lo then compare a.lo b.lo else compare a.hi b.hi)
      (List.filter (fun i -> not (is_empty i)) ivs)
  in
  let rec merge = function
    | a :: b :: rest when b.lo <= a.hi -> merge ({ lo = a.lo; hi = max a.hi b.hi } :: rest)
    | a :: rest -> a :: merge rest
    | [] -> []
  in
  merge sorted

let union a b = normalize (a @ b)

let subtract ivs ~minus =
  let cut i =
    (* pieces of [i] not covered by [minus] *)
    List.fold_left
      (fun pieces m ->
        List.concat_map
          (fun (p : t) ->
            if m.hi <= p.lo || m.lo >= p.hi then [ p ]
            else
              List.filter
                (fun x -> not (is_empty x))
                [ { lo = p.lo; hi = m.lo }; { lo = m.hi; hi = p.hi } ])
          pieces)
      [ i ] minus
  in
  normalize (List.concat_map cut ivs)

let iter_points ivs ~f =
  List.iter
    (fun i ->
      for x = i.lo to i.hi - 1 do
        f x
      done)
    ivs
