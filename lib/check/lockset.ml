type entry = { id : int; exclusive : bool }

type t = entry list array

let create ~nprocs = Array.make nprocs []

let add t ~proc ~id ~exclusive = t.(proc) <- { id; exclusive } :: t.(proc)

let remove t ~proc ~id = t.(proc) <- List.filter (fun e -> e.id <> id) t.(proc)

let holds t ~proc ~id = List.exists (fun e -> e.id = id) t.(proc)

let holds_exclusive t ~proc ~id = List.exists (fun e -> e.id = id && e.exclusive) t.(proc)
