(** Per-processor held-lock state (the "lockset" of Eraser, adapted:
    entry consistency cares which *specific* bound lock is held, not the
    intersection over time). *)

type t

val create : nprocs:int -> t

val add : t -> proc:int -> id:int -> exclusive:bool -> unit

val remove : t -> proc:int -> id:int -> unit

val holds : t -> proc:int -> id:int -> bool
(** Held in either mode. *)

val holds_exclusive : t -> proc:int -> id:int -> bool
