(** The sanitizer's mirror of the machine's binding table.

    The runtime reports every [new_lock] / [new_barrier] / [rebind] with
    the *raw* (pre-normalization) range list; the index keeps, per sync
    object: the current normalized binding, the retired set (every byte
    once bound but no longer), a per-processor count of synchronizations
    performed, and — for barriers — a mirror of the episode number.

    Queries are word-granular (8-byte words, the access granularity of
    the simulator's typed stores): [word = byte_addr lsr 3]. *)

type kind = Lock | Barrier

type sync = {
  id : int;
  kind : kind;
  mutable cur : Range.t list;  (** current binding, byte-granular, normalized *)
  mutable retired : Range.t list;  (** once bound, no longer; byte-granular *)
  sync_count : int array;  (** per processor: acquisitions / barrier crossings *)
  mutable episode : int;  (** barriers: mirror of the runtime episode number *)
}

type t

val create : nprocs:int -> t

val register : t -> id:int -> kind:kind -> raw:(int * int) list -> unit
(** A lock or barrier came into existence binding the raw
    [(addr, len)] list. *)

val rebind : t -> id:int -> raw:(int * int) list -> unit
(** The lock's binding changed; bytes of the old binding not covered by
    the new one join the retired set (and leave it again if a later
    rebind re-covers them). *)

val find : t -> int -> sync option

val all : t -> sync list
(** All registered sync objects, by ascending id. *)

val syncs_at : t -> int -> sync list
(** Sync objects whose *current* binding covers the given word, in
    registration order. *)

val retired_at : t -> int -> sync list
(** Locks whose *retired* set covers the given word. *)

val ever_bound : t -> int -> bool
(** Whether any binding ever covered the given word. *)

val degenerate : t -> (int * int * int) list
(** Zero-length entries observed in raw binding lists, as
    [(sync id, addr, len)], oldest first. *)

val current_ranges : t -> id:int -> (int * int) list
(** The current normalized binding as [(addr, len)] pairs — for
    cross-checking against the runtime's own [Sync] records. *)
