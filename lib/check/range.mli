(** Address ranges: the unit of entry-consistency data binding, and the
    one interval algebra of the tree.

    The programmer associates a lock or barrier with the ranges of shared
    memory it protects; collection scans exactly these ranges.  Ranges are
    half-open byte intervals [\[addr, addr+len)].

    The module lives in [midway_check] — the dependency-free layer below
    the simulator — so the runtime (which re-exports it as
    [Midway.Range]), the ECSan binding index and the static analyzer all
    share a single implementation of normalize/merge/overlap instead of
    carrying private copies. *)

type t = { addr : int; len : int }

val v : int -> int -> t
(** [v addr len]; raises [Invalid_argument] on negative values. *)

val limit : t -> int
(** One past the last byte. *)

val is_empty : t -> bool

val normalize : t list -> t list
(** Sort by address and merge overlapping or adjacent ranges. *)

val total_bytes : t list -> int
(** Sum of lengths (after normalization overlaps are not double counted;
    this function assumes a normalized list). *)

val overlaps : t -> t -> bool
(** Non-empty intersection.  Adjacent ranges do not overlap, and an
    empty range overlaps nothing (not even a range containing its
    address). *)

val intersect : t -> t -> t option

val clip : t -> within:t list -> t list
(** Pieces of [t] that fall inside the (normalized) range list. *)

val subtract : t -> minus:t list -> t list
(** Pieces of [t] not covered by the (normalized) range list. *)

val contains : t list -> addr:int -> len:int -> bool
(** Whether the (normalized) list fully covers [addr, addr+len). *)

val iter_lines : t -> line_size:int -> f:(addr:int -> len:int -> unit) -> unit
(** Visit the cache lines overlapping the range: calls [f] once per line
    with the line's full extent (aligned start, [line_size] bytes), i.e.
    partially covered lines are widened to line granularity, because a
    dirtybit describes the whole line. *)

(** {1 List algebra}

    Set operations over range lists, used by the sanitizer's binding
    index and the static analyzer.  All results are normalized. *)

val mem : t list -> int -> bool
(** Membership of a point. *)

val union : t list -> t list -> t list

val inter : t list -> t list -> t list

val subtract_list : t list -> minus:t list -> t list
(** Pieces of the first list not covered by the second. *)

val covers : t list -> t list -> bool
(** [covers ranges sub]: every byte of [sub] lies inside [ranges]. *)

val iter_points : t list -> f:(int -> unit) -> unit
(** Visit every integer point of a normalized list. *)
