(** ECSan: an Eraser-style lockset analysis adapted to entry consistency.

    The runtime feeds the checker every synchronization event and every
    instrumented access; the checker decides, word by word, whether the
    access is justified by the entry-consistency contract:

    - a write to shared data must happen under an exclusive hold of a
      covering lock, or to barrier-bound data between crossings (the
      barrier's merge then publishes it; conflicting same-episode writes
      by two processors are flagged), or by the word's sole toucher so
      far (initialization before the data is published);
    - a read must be by the sole toucher, under any-mode hold of a
      covering lock, or by a processor that has synchronized on a
      covering lock/barrier at least once before (entry consistency
      reads are always local-copy, so a reader that has ever brought the
      data over may keep reading it between synchronizations — e.g. a
      a shared-mode acquire followed by release-then-read);
    - reads of data no processor ever wrote in-simulation are never
      flagged (read-only preloaded inputs);
    - a [write_*_private] store followed by a read from a different
      processor is a misclassified-private-store, and an access to a
      lock's rebound-away ranges is a stale-binding access.

    The checker is an approximation in both directions of a true
    happens-before detector — see doc/ECSAN.md for the limitations. *)

type access = Read | Write | Private_write

type t

type report = Report.t

val create : ?context:(unit -> string list) -> nprocs:int -> unit -> t
(** [context] supplies protocol-trace lines attached to a diagnostic's
    first occurrence (default: none). *)

(** {1 Synchronization events} *)

val on_new_sync : t -> id:int -> kind:Binding_index.kind -> raw:(int * int) list -> unit

val on_rebind : t -> id:int -> raw:(int * int) list -> unit

val on_acquire : t -> id:int -> proc:int -> exclusive:bool -> unit

val on_release : t -> id:int -> proc:int -> unit

val on_barrier_cross : t -> id:int -> proc:int -> unit
(** The processor completed a crossing (counts as a synchronization on
    the barrier's bound data). *)

val on_barrier_complete : t -> id:int -> unit
(** All participants arrived; the episode number advances. *)

(** {1 Accesses} *)

val on_access :
  t ->
  proc:int ->
  time:int ->
  addr:int ->
  len:int ->
  op:string ->
  access:access ->
  shared_region:bool ->
  unit

(** {1 Static lint} *)

val lint : t -> region_kind:(int -> [ `Shared | `Private | `Unmapped ]) -> unit
(** Check the binding table itself: ranges bound to two different locks,
    bindings into private or unmapped memory, zero-length ranges.  Run
    once, at [Runtime.run] time (bindings may legitimately overlap
    transiently *during* a run while a worker splits and rebinds). *)

(** {1 Results} *)

val report : t -> report

val current_ranges : t -> id:int -> (int * int) list
(** For cross-checking the index against the runtime's [Sync] records. *)
