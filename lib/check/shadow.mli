(** Word-granular shadow state.

    One record per 8-byte word ever touched through the instrumented
    access layer.  [excl] implements the first-toucher exemption
    (initialization writes before data is published need no lock);
    [last_writer]/[lw_sync]/[lw_episode] detect conflicting same-episode
    writes to barrier-bound data; [priv_writer] remembers a
    [write_*_private] store so a later read by a different processor can
    be flagged as a misclassification. *)

type word = {
  mutable excl : int;
      (** the single processor that has touched this word, or [-1] once a
          second one has *)
  mutable written : bool;  (** some processor instrumented-wrote this word *)
  mutable last_writer : int;  (** last writer under a barrier binding; [-1] none *)
  mutable lw_sync : int;  (** barrier id of that write *)
  mutable lw_episode : int;  (** barrier episode of that write *)
  mutable priv_writer : int;  (** last private-store writer; [-1] none *)
}

type t

val create : unit -> t

val find : t -> int -> word option

val touch : t -> int -> proc:int -> word
(** Get or create the word's record; a created record starts with
    [excl = proc].  The caller updates [excl] for existing records (so it
    can read the pre-access value first). *)

val tracked : t -> int
(** Number of words with shadow state. *)
