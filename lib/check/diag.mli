(** ECSan diagnostic classes and the deduplicating violation table.

    A long run can repeat the same mistake millions of times; the table
    collapses occurrences onto a key of (class, processor, sync object)
    and keeps a count, the address hull, and the first occurrence's
    operation and protocol-trace context. *)

type cls =
  | Unsynchronized_access
      (** shared address covered by a binding the processor neither holds
          nor has ever synchronized on — includes same-episode conflicting
          writes to barrier-bound data *)
  | Write_under_shared_hold  (** a store through an [acquire_read] hold *)
  | Unbound_shared_data
      (** shared data touched by two or more processors that no lock or
          barrier ever binds *)
  | Misclassified_private_store
      (** a [write_*_private] store to data later read by another
          processor *)
  | Stale_binding_access  (** touching a lock's old ranges after [rebind] *)
  | Lint_overlapping_bindings
      (** static: a range bound to two different locks at [run] time *)
  | Lint_private_binding
      (** static: a binding into a private region or unmapped memory *)
  | Lint_degenerate_range
      (** static: an empty (zero-length) range in a binding list *)

val class_name : cls -> string
(** Stable short slug, e.g. ["unsynchronized-access"]. *)

val is_lint : cls -> bool

type violation = {
  cls : cls;
  proc : int;  (** processor at fault ([-1] for lint findings) *)
  sync : int;  (** implicated lock/barrier id ([-1] if none) *)
  lo : int;  (** address hull over all deduplicated occurrences *)
  hi : int;
  count : int;  (** occurrences folded into this record *)
  first_time : int;  (** virtual time of the first occurrence *)
  first_op : string;  (** operation of the first occurrence *)
  detail : string;
  context : string list;  (** protocol-trace tail at the first occurrence *)
}

type table

val create_table : unit -> table

val note :
  table ->
  cls:cls ->
  proc:int ->
  sync:int ->
  lo:int ->
  hi:int ->
  time:int ->
  op:string ->
  detail:string ->
  context:(unit -> string list) ->
  unit
(** Record one occurrence.  [context] is forced only the first time a
    (class, proc, sync) key is seen. *)

val violations : table -> violation list
(** All records, ordered by first occurrence time (ties: insertion
    order) — deterministic for a deterministic simulation. *)
