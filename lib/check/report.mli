(** Rendering ECSan results for humans and for exit codes. *)

type t = {
  enabled : bool;  (** false: the run was not sanitized *)
  accesses_checked : int;
  words_tracked : int;
  syncs_seen : int;
  violations : Diag.violation list;
}

val disabled : t
(** The report of a machine built with [Config.ecsan = false]. *)

val has_violations : t -> bool

val render : t -> string
(** Multi-line human-readable report (ends with a newline). *)
