type kind = Lock | Barrier

type sync = {
  id : int;
  kind : kind;
  mutable cur : Range.t list;
  mutable retired : Range.t list;
  sync_count : int array;
  mutable episode : int;
}

type t = {
  nprocs : int;
  syncs : (int, sync) Hashtbl.t;
  word_index : (int, int list) Hashtbl.t;  (* word -> ids currently binding it *)
  retired_index : (int, int list) Hashtbl.t;  (* word -> ids that retired it *)
  mutable ever : Range.t list;  (* word-granular: every word ever bound *)
  mutable degenerate : (int * int * int) list;  (* newest first *)
}

let create ~nprocs =
  {
    nprocs;
    syncs = Hashtbl.create 16;
    word_index = Hashtbl.create 256;
    retired_index = Hashtbl.create 64;
    ever = [];
    degenerate = [];
  }

let ranges_of_raw raw = Range.normalize (List.map (fun (addr, len) -> Range.v addr len) raw)

(* Byte ranges widened to the 8-byte words they touch. *)
let words_of ranges =
  Range.normalize
    (List.filter_map
       (fun r ->
         if Range.is_empty r then None
         else
           let lo = r.Range.addr asr 3 in
           Some (Range.v lo (((Range.limit r - 1) asr 3) + 1 - lo)))
       ranges)

let index_add tbl ranges id =
  Range.iter_points (words_of ranges) ~f:(fun w ->
      let ids = Option.value (Hashtbl.find_opt tbl w) ~default:[] in
      if not (List.mem id ids) then Hashtbl.replace tbl w (ids @ [ id ]))

let index_remove tbl ranges id =
  Range.iter_points (words_of ranges) ~f:(fun w ->
      match Hashtbl.find_opt tbl w with
      | None -> ()
      | Some ids -> (
          match List.filter (fun i -> i <> id) ids with
          | [] -> Hashtbl.remove tbl w
          | ids -> Hashtbl.replace tbl w ids))

let note_degenerate t ~id ~raw =
  List.iter
    (fun (addr, len) -> if len = 0 then t.degenerate <- (id, addr, len) :: t.degenerate)
    raw

let register t ~id ~kind ~raw =
  if Hashtbl.mem t.syncs id then invalid_arg "Binding_index.register: duplicate sync id";
  note_degenerate t ~id ~raw;
  let cur = ranges_of_raw raw in
  let s = { id; kind; cur; retired = []; sync_count = Array.make t.nprocs 0; episode = 0 } in
  Hashtbl.replace t.syncs id s;
  index_add t.word_index cur id;
  t.ever <- Range.union t.ever (words_of cur)

let find t id = Hashtbl.find_opt t.syncs id

let get t id =
  match find t id with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Binding_index: unknown sync id %d" id)

let rebind t ~id ~raw =
  note_degenerate t ~id ~raw;
  let s = get t id in
  let nw = ranges_of_raw raw in
  index_remove t.word_index s.cur id;
  index_add t.word_index nw id;
  let new_retired = Range.subtract_list (Range.union s.retired s.cur) ~minus:nw in
  index_remove t.retired_index s.retired id;
  index_remove t.retired_index s.cur id;
  index_add t.retired_index new_retired id;
  s.retired <- new_retired;
  s.cur <- nw;
  t.ever <- Range.union t.ever (words_of nw)

let all t =
  Hashtbl.fold (fun _ s acc -> s :: acc) t.syncs []
  |> List.sort (fun a b -> compare a.id b.id)

let ids_at tbl t w =
  match Hashtbl.find_opt tbl w with
  | None -> []
  | Some ids -> List.map (get t) ids

let syncs_at t w = ids_at t.word_index t w

let retired_at t w = ids_at t.retired_index t w

let ever_bound t w = Range.mem t.ever w

let degenerate t = List.rev t.degenerate

let current_ranges t ~id = List.map (fun r -> (r.Range.addr, r.Range.len)) (get t id).cur
