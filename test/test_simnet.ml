(* Tests for the interconnect model: transfer-time arithmetic,
   per-processor payload accounting, fault injection, node-crash plans
   and the reliable delivery channel built on top of it. *)

module Net = Midway_simnet.Net
module Reliable = Midway_simnet.Reliable
module Crash = Midway_simnet.Crash

let qtest = QCheck_alcotest.to_alcotest

let deliver net ?overhead_bytes ~kind ~src ~dst ~payload_bytes ~at () =
  Net.delivery (Net.send ?overhead_bytes net ~kind ~src ~dst ~payload_bytes ~at)

let test_transfer_time () =
  let net = Net.create ~latency_ns:150_000 ~ns_per_byte:57 ~header_bytes:64 ~nprocs:2 () in
  Alcotest.(check int) "empty message = latency + header"
    (150_000 + (64 * 57))
    (Net.transfer_ns net ~payload_bytes:0);
  Alcotest.(check int) "1 KB payload"
    (150_000 + ((64 + 1024) * 57))
    (Net.transfer_ns net ~payload_bytes:1024)

let test_send_accounting () =
  let net = Net.create ~nprocs:3 () in
  let t1 = deliver net ~kind:Net.Lock_request ~src:0 ~dst:1 ~payload_bytes:100 ~at:5 () in
  Alcotest.(check bool) "delivery after send" true (t1 > 5);
  ignore (Net.send net ~kind:Net.Lock_reply ~src:1 ~dst:0 ~payload_bytes:200 ~at:t1);
  Alcotest.(check int) "p0 sent one message" 1 (Net.messages_sent net ~proc:0);
  Alcotest.(check int) "p1 sent one message" 1 (Net.messages_sent net ~proc:1);
  Alcotest.(check int) "p0 payload out" 100 (Net.bytes_sent net ~proc:0);
  Alcotest.(check int) "p0 payload in" 200 (Net.bytes_received net ~proc:0);
  Alcotest.(check int) "totals" 2 (Net.total_messages net);
  Alcotest.(check int) "total payload" 300 (Net.total_payload_bytes net);
  Alcotest.(check int) "kind counter" 1 (Net.messages_of_kind net Net.Lock_request)

(* Pins the documented self-send contract: src = dst costs nothing,
   arrives instantly and updates no counter. *)
let test_self_send_free () =
  let net = Net.create ~nprocs:2 () in
  let t = deliver net ~kind:Net.Barrier_arrive ~src:1 ~dst:1 ~payload_bytes:4096 ~at:77 () in
  Alcotest.(check int) "no time" 77 t;
  Alcotest.(check int) "no message" 0 (Net.total_messages net);
  Alcotest.(check int) "no payload" 0 (Net.total_payload_bytes net)

(* ... and that fault injection never applies to self-sends: even under
   a certain-drop policy a message that does not cross the fabric
   arrives, and the injection counters stay at zero. *)
let test_self_send_immune_to_faults () =
  let net = Net.create ~nprocs:2 () in
  Net.set_fault_policy net (Net.uniform_faults ~duplicate:1.0 ~drop:1.0 ());
  (match Net.send net ~kind:Net.Lock_reply ~src:0 ~dst:0 ~payload_bytes:64 ~at:9 with
  | Net.Delivered t -> Alcotest.(check int) "instant" 9 t
  | Net.Dropped | Net.Duplicated _ -> Alcotest.fail "self-send was faulted");
  Alcotest.(check int) "no injected drops" 0 (Net.drops_injected net);
  Alcotest.(check int) "no injected duplicates" 0 (Net.duplicates_injected net)

let test_overhead_excluded_from_accounting () =
  let net = Net.create ~latency_ns:0 ~ns_per_byte:1 ~header_bytes:0 ~nprocs:2 () in
  let t =
    deliver ~overhead_bytes:50 net ~kind:Net.Lock_reply ~src:0 ~dst:1 ~payload_bytes:10 ~at:0 ()
  in
  Alcotest.(check int) "wire time includes overhead" 60 t;
  Alcotest.(check int) "accounting excludes overhead" 10 (Net.bytes_sent net ~proc:0)

let test_validation () =
  let net = Net.create ~nprocs:2 () in
  Alcotest.check_raises "bad proc" (Invalid_argument "Net.send: processor out of range")
    (fun () -> ignore (Net.send net ~kind:Net.Startup ~src:0 ~dst:2 ~payload_bytes:0 ~at:0));
  Alcotest.check_raises "negative payload" (Invalid_argument "Net.send: negative payload")
    (fun () -> ignore (Net.send net ~kind:Net.Startup ~src:0 ~dst:1 ~payload_bytes:(-1) ~at:0))

let test_kind_names () =
  List.iter
    (fun k -> Alcotest.(check bool) "nonempty name" true (String.length (Net.kind_name k) > 0))
    [ Net.Lock_request; Net.Lock_reply; Net.Lock_forward; Net.Barrier_arrive;
      Net.Barrier_release; Net.Startup; Net.Ack ]

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)
(* ------------------------------------------------------------------ *)

let outcome_tag = function
  | Net.Delivered t -> Printf.sprintf "D%d" t
  | Net.Dropped -> "X"
  | Net.Duplicated (a, b) -> Printf.sprintf "2[%d,%d]" a b

(* Same seed, same traffic => the exact same sequence of drops,
   duplicates and jittered arrival times. *)
let test_fault_determinism () =
  let run () =
    let net = Net.create ~nprocs:4 () in
    Net.set_fault_policy net (Net.uniform_faults ~duplicate:0.2 ~jitter_ns:5_000 ~seed:7 ~drop:0.3 ());
    List.init 200 (fun i ->
        outcome_tag
          (Net.send net ~kind:Net.Lock_reply ~src:(i mod 4) ~dst:((i + 1) mod 4)
             ~payload_bytes:(i * 13 mod 512) ~at:(i * 1000)))
  in
  Alcotest.(check (list string)) "identical fault schedule" (run ()) (run ())

let test_fault_seed_changes_schedule () =
  let run seed =
    let net = Net.create ~nprocs:2 () in
    Net.set_fault_policy net (Net.uniform_faults ~seed ~drop:0.5 ());
    List.init 100 (fun i ->
        outcome_tag (Net.send net ~kind:Net.Lock_reply ~src:0 ~dst:1 ~payload_bytes:0 ~at:i))
  in
  Alcotest.(check bool) "different seeds diverge" true (run 1 <> run 2)

let test_certain_drop () =
  let net = Net.create ~nprocs:2 () in
  Net.set_fault_policy net (Net.uniform_faults ~drop:1.0 ());
  for i = 0 to 9 do
    match Net.send net ~kind:Net.Lock_request ~src:0 ~dst:1 ~payload_bytes:8 ~at:i with
    | Net.Dropped -> ()
    | Net.Delivered _ | Net.Duplicated _ -> Alcotest.fail "drop=1.0 delivered a message"
  done;
  Alcotest.(check int) "all drops counted" 10 (Net.drops_injected net);
  (* dropped copies still count as sent, nothing as received *)
  Alcotest.(check int) "sent accounting" 10 (Net.messages_sent net ~proc:0);
  Alcotest.(check int) "nothing received" 0 (Net.bytes_received net ~proc:1)

let test_certain_duplication () =
  let net = Net.create ~latency_ns:1000 ~ns_per_byte:0 ~header_bytes:0 ~nprocs:2 () in
  Net.set_fault_policy net (Net.uniform_faults ~duplicate:1.0 ~drop:0.0 ());
  (match Net.send net ~kind:Net.Lock_reply ~src:0 ~dst:1 ~payload_bytes:100 ~at:0 with
  | Net.Duplicated (a, b) ->
      Alcotest.(check int) "first copy on time" 1000 a;
      Alcotest.(check bool) "echo strictly later" true (b > a)
  | Net.Delivered _ | Net.Dropped -> Alcotest.fail "duplicate=1.0 did not duplicate");
  Alcotest.(check int) "duplicate counted" 1 (Net.duplicates_injected net);
  (* a duplicated payload is received once *)
  Alcotest.(check int) "received once" 100 (Net.bytes_received net ~proc:1)

let test_fault_window () =
  let net = Net.create ~nprocs:2 () in
  let window =
    { Net.w_from_ns = 2_000; w_until_ns = 5_000; w_kind = Some Net.Lock_reply;
      w_src = None; w_dst = None }
  in
  Net.set_fault_policy net
    { Net.link = Net.fault_free_link; overrides = []; windows = [ window ]; fault_seed = 1 };
  let send kind at = Net.send net ~kind ~src:0 ~dst:1 ~payload_bytes:0 ~at in
  (match send Net.Lock_reply 1_999 with
  | Net.Delivered _ -> ()
  | _ -> Alcotest.fail "before the window must deliver");
  (match send Net.Lock_reply 2_000 with
  | Net.Dropped -> ()
  | _ -> Alcotest.fail "inside the window must drop");
  (match send Net.Lock_request 3_000 with
  | Net.Delivered _ -> ()
  | _ -> Alcotest.fail "other kinds are not matched");
  (match send Net.Lock_reply 5_000 with
  | Net.Delivered _ -> ()
  | _ -> Alcotest.fail "window end is exclusive")

(* An out-of-range probability would be compared raw against the PRNG
   draw and silently act like 0 or 1; construction must refuse it and
   name the offending field. *)
let test_fault_policy_validation () =
  Alcotest.check_raises "drop above one"
    (Invalid_argument "Net.fault_policy: link.drop = 1.5 outside [0, 1]")
    (fun () -> ignore (Net.uniform_faults ~drop:1.5 ()));
  Alcotest.check_raises "negative duplicate"
    (Invalid_argument "Net.fault_policy: link.duplicate = -0.25 outside [0, 1]")
    (fun () -> ignore (Net.uniform_faults ~duplicate:(-0.25) ~drop:0.0 ()));
  Alcotest.check_raises "negative jitter"
    (Invalid_argument "Net.fault_policy: link.jitter_ns = -5 is negative")
    (fun () -> ignore (Net.uniform_faults ~jitter_ns:(-5) ~drop:0.0 ()));
  Alcotest.check_raises "per-link override named by its endpoints"
    (Invalid_argument "Net.fault_policy: overrides[(0,1)].drop = 2 outside [0, 1]")
    (fun () ->
      ignore
        (Net.validate_fault_policy
           {
             Net.link = Net.fault_free_link;
             overrides = [ ((0, 1), { Net.drop = 2.0; duplicate = 0.0; jitter_ns = 0 }) ];
             windows = [];
             fault_seed = 1;
           }));
  (* arming a hand-built policy validates too *)
  let net = Net.create ~nprocs:2 () in
  Alcotest.check_raises "set_fault_policy validates"
    (Invalid_argument "Net.fault_policy: link.drop = -1 outside [0, 1]")
    (fun () ->
      Net.set_fault_policy net
        {
          Net.link = { Net.drop = -1.0; duplicate = 0.0; jitter_ns = 0 };
          overrides = [];
          windows = [];
          fault_seed = 1;
        });
  (* a valid policy passes through unchanged *)
  let p = Net.uniform_faults ~duplicate:1.0 ~drop:0.0 () in
  Alcotest.(check bool) "valid policy survives validation" true
    (Net.validate_fault_policy p == p)

let test_delivery_of_dropped_raises () =
  Alcotest.check_raises "delivery of Dropped"
    (Invalid_argument "Net.delivery: message was dropped")
    (fun () -> ignore (Net.delivery Net.Dropped))

(* ------------------------------------------------------------------ *)
(* Reliable channel                                                    *)
(* ------------------------------------------------------------------ *)

let test_reliable_faultless_passthrough () =
  let net = Net.create ~nprocs:2 () in
  let ch = Reliable.create net in
  let d = Reliable.send ch ~kind:Net.Lock_request ~src:0 ~dst:1 ~payload_bytes:32 ~at:10 in
  Alcotest.(check int) "delivered on the bare-fabric schedule"
    (Net.transfer_ns net ~payload_bytes:32 + 10)
    d.Reliable.delivered_at;
  Alcotest.(check int) "single transmission" 1 d.Reliable.transmissions;
  Alcotest.(check int) "no retransmit" 0 d.Reliable.retransmits;
  Alcotest.(check bool) "ack completes after delivery" true
    (d.Reliable.acked_at > d.Reliable.delivered_at);
  Alcotest.(check int) "nothing in flight" 0 (Reliable.unacked ch);
  Alcotest.(check int) "sequence advanced" 1 (Reliable.next_seq ch ~src:0 ~dst:1)

let test_reliable_self_send () =
  let net = Net.create ~nprocs:2 () in
  let ch = Reliable.create net in
  let d = Reliable.send ch ~kind:Net.Lock_request ~src:1 ~dst:1 ~payload_bytes:64 ~at:3 in
  Alcotest.(check int) "instant" 3 d.Reliable.delivered_at;
  Alcotest.(check int) "no wire traffic" 0 d.Reliable.transmissions;
  Alcotest.(check int) "no sequence consumed" 0 (Reliable.next_seq ch ~src:1 ~dst:1)

let test_reliable_survives_drops () =
  let net = Net.create ~nprocs:2 () in
  Net.set_fault_policy net (Net.uniform_faults ~seed:11 ~drop:0.5 ());
  let ch = Reliable.create net in
  let retr = ref 0 in
  for i = 0 to 99 do
    let d = Reliable.send ch ~kind:Net.Lock_reply ~src:0 ~dst:1 ~payload_bytes:128 ~at:(i * 10_000) in
    retr := !retr + d.Reliable.retransmits;
    Alcotest.(check bool) "delivered at or after send" true
      (d.Reliable.delivered_at >= i * 10_000)
  done;
  Alcotest.(check bool) "a 50% loss rate forced retransmissions" true (!retr > 0);
  Alcotest.(check int) "channel totals agree" !retr (Reliable.total_retransmits ch);
  Alcotest.(check bool) "backoff time accumulated" true (Reliable.total_backoff_ns ch > 0);
  Alcotest.(check int) "all acked" 0 (Reliable.unacked ch)

let test_reliable_suppresses_duplicates () =
  let net = Net.create ~nprocs:2 () in
  Net.set_fault_policy net (Net.uniform_faults ~duplicate:1.0 ~drop:0.0 ());
  let ch = Reliable.create net in
  let d = Reliable.send ch ~kind:Net.Lock_reply ~src:0 ~dst:1 ~payload_bytes:64 ~at:0 in
  Alcotest.(check int) "second copy suppressed" 1 d.Reliable.dups_suppressed;
  Alcotest.(check int) "payload delivered once (received accounting)" 64
    (Net.bytes_received net ~proc:1)

let test_reliable_backoff_doubles () =
  (* Drop everything inside a long window: each retry waits twice the
     previous timeout, capped, so total backoff for n retries is the
     geometric sum. *)
  let net = Net.create ~nprocs:2 () in
  Net.set_fault_policy net
    { Net.link = Net.fault_free_link; overrides = [];
      windows =
        [ { Net.w_from_ns = 0; w_until_ns = 3_500_000; w_kind = None; w_src = None;
            w_dst = None } ];
      fault_seed = 1 };
  let ch =
    Reliable.create
      ~config:{ Reliable.timeout_ns = 1_000_000; backoff_cap_ns = 16_000_000; max_attempts = 20 }
      net
  in
  let d = Reliable.send ch ~kind:Net.Lock_request ~src:0 ~dst:1 ~payload_bytes:0 ~at:0 in
  (* copies at 0, 1ms, 3ms die in the window; the copy at 3ms+2ms*2=7ms
     escapes: backoff = 1 + 2 + 4 ms *)
  Alcotest.(check int) "three retransmissions" 3 d.Reliable.retransmits;
  Alcotest.(check int) "geometric backoff" 7_000_000 d.Reliable.backoff_ns

let test_reliable_exhausts () =
  let net = Net.create ~nprocs:2 () in
  Net.set_fault_policy net (Net.uniform_faults ~drop:1.0 ());
  let ch =
    Reliable.create
      ~config:{ Reliable.timeout_ns = 1_000; backoff_cap_ns = 4_000; max_attempts = 3 } net
  in
  (match Reliable.send ch ~kind:Net.Lock_request ~src:0 ~dst:1 ~payload_bytes:0 ~at:0 with
  | exception Reliable.Exhausted msg ->
      (* copies at 0, 1000, 3000; the give-up check happens one (capped)
         timeout after the last copy, so the episode burned 7000 ns *)
      Alcotest.(check string) "structured episode context in the message"
        "Reliable.send: exhausted {kind=lock-request; src=p0; dst=p1; seq=0; attempts=3; \
         elapsed_ns=7000}"
        msg;
      Alcotest.(check string) "message agrees with exhausted_message"
        (Reliable.exhausted_message ~kind:Net.Lock_request ~src:0 ~dst:1 ~seq:0 ~attempts:3
           ~elapsed_ns:7000)
        msg
  | _ -> Alcotest.fail "a 100% loss rate must exhaust the retry budget");
  Alcotest.(check int) "gave up cleanly: nothing left in flight" 0 (Reliable.unacked ch)

(* With the suspicion oracle armed, a retry budget burned against a dead
   RECEIVER surfaces as the failure-detector event the recovery protocol
   reacts to, with the full episode context. *)
let test_reliable_suspects_dead_receiver () =
  let net = Net.create ~nprocs:2 () in
  let plan = Crash.scripted [ { Crash.at_ns = 0; proc = 1; action = Crash.Stop } ] in
  Net.set_crash_predicate net (Some (fun ~proc ~at -> Crash.is_down plan ~proc ~at));
  let ch =
    Reliable.create
      ~config:{ Reliable.timeout_ns = 1_000; backoff_cap_ns = 4_000; max_attempts = 3 } net
  in
  Reliable.set_suspector ch (Some (fun ~peer ~at -> Crash.is_down plan ~proc:peer ~at));
  (match Reliable.send ch ~kind:Net.Lock_request ~src:0 ~dst:1 ~payload_bytes:0 ~at:100 with
  | exception Reliable.Suspected s ->
      Alcotest.(check int) "suspect is the receiver" 1 s.Reliable.s_dst;
      Alcotest.(check int) "sender recorded" 0 s.Reliable.s_src;
      Alcotest.(check int) "sequence recorded" 0 s.Reliable.s_seq;
      Alcotest.(check int) "whole budget burned" 3 s.Reliable.s_attempts;
      Alcotest.(check int) "elapsed virtual time" 7_000 s.Reliable.s_elapsed_ns;
      Alcotest.(check string) "kind recorded" "lock-request" (Net.kind_name s.Reliable.s_kind)
  | _ -> Alcotest.fail "sending to a dead peer must raise Suspected");
  Alcotest.(check bool) "the NIC destroyed the copies" true (Net.crash_drops_injected net > 0);
  Alcotest.(check int) "nothing left in flight" 0 (Reliable.unacked ch)

(* ... and a SENDER that crashes mid-episode is also a suspicion, not a
   generic exhaustion: its remaining copies drop at the network, and the
   caller (the runtime) recognises its own crash from the plan. *)
let test_reliable_suspects_dead_sender () =
  let net = Net.create ~nprocs:2 () in
  let plan = Crash.scripted [ { Crash.at_ns = 2_000; proc = 0; action = Crash.Stop } ] in
  Net.set_crash_predicate net (Some (fun ~proc ~at -> Crash.is_down plan ~proc ~at));
  (* the first two copies (at 100 and 1100) die in a scripted window;
     the third is never put on the wire — the sender is down by then *)
  Net.set_fault_policy net
    {
      Net.link = Net.fault_free_link;
      overrides = [];
      windows =
        [ { Net.w_from_ns = 0; w_until_ns = 2_000; w_kind = Some Net.Lock_request;
            w_src = None; w_dst = None } ];
      fault_seed = 1;
    };
  let ch =
    Reliable.create
      ~config:{ Reliable.timeout_ns = 1_000; backoff_cap_ns = 4_000; max_attempts = 3 } net
  in
  Reliable.set_suspector ch (Some (fun ~peer ~at -> Crash.is_down plan ~proc:peer ~at));
  (match Reliable.send ch ~kind:Net.Lock_request ~src:0 ~dst:1 ~payload_bytes:0 ~at:100 with
  | exception Reliable.Suspected s ->
      Alcotest.(check int) "episode blamed on a crash, src recorded" 0 s.Reliable.s_src;
      Alcotest.(check int) "receiver was alive the whole time" 1 s.Reliable.s_dst;
      Alcotest.(check int) "whole budget burned" 3 s.Reliable.s_attempts
  | exception Reliable.Exhausted _ ->
      Alcotest.fail "a sender crash mid-episode must surface as Suspected, not Exhausted"
  | _ -> Alcotest.fail "the episode cannot succeed: every copy died");
  Alcotest.(check int) "nothing left in flight" 0 (Reliable.unacked ch)

let test_reliable_ack_lost_on_final_attempt () =
  (* The nastiest give-up: every data copy arrives but every ack dies,
     so the sender burns its whole budget for a transfer that in fact
     succeeded.  The channel must still raise Exhausted and clean up. *)
  let net = Net.create ~nprocs:2 () in
  Net.set_fault_policy net
    {
      Net.link = Net.fault_free_link;
      overrides = [];
      windows =
        [
          {
            Net.w_from_ns = 0;
            w_until_ns = max_int;
            w_kind = Some Net.Ack;  (* only acknowledgements die *)
            w_src = None;
            w_dst = None;
          };
        ];
      fault_seed = 3;
    };
  let ch =
    Reliable.create
      ~config:{ Reliable.timeout_ns = 1_000; backoff_cap_ns = 4_000; max_attempts = 2 }
      net
  in
  (match Reliable.send ch ~kind:Net.Lock_request ~src:0 ~dst:1 ~payload_bytes:16 ~at:0 with
  | exception Reliable.Exhausted _ -> ()
  | _ -> Alcotest.fail "losing every ack must exhaust the retry budget");
  Alcotest.(check int) "both data copies were put on the wire" 2
    (Net.messages_of_kind net Net.Lock_request);
  Alcotest.(check int) "an ack answered each data copy" 2 (Net.messages_of_kind net Net.Ack);
  Alcotest.(check int) "both acks were destroyed by the window" 2 (Net.drops_injected net);
  Alcotest.(check int) "nothing left in flight after giving up" 0 (Reliable.unacked ch)

let test_reliable_dup_suppression_across_retransmit () =
  (* An ack lost in a bounded window: the payload arrives on the first
     try, the retransmitted copy is suppressed by sequence number, and
     the second ack completes the exchange.  With latency 100 ns and no
     byte costs every timestamp is exact. *)
  let net = Net.create ~latency_ns:100 ~ns_per_byte:0 ~header_bytes:0 ~nprocs:2 () in
  Net.set_fault_policy net
    {
      Net.link = Net.fault_free_link;
      overrides = [];
      windows =
        [
          {
            Net.w_from_ns = 0;
            w_until_ns = 200;  (* kills the first ack (sent at 100), not the second *)
            w_kind = Some Net.Ack;
            w_src = None;
            w_dst = None;
          };
        ];
      fault_seed = 3;
    };
  let ch =
    Reliable.create
      ~config:{ Reliable.timeout_ns = 1_000; backoff_cap_ns = 16_000; max_attempts = 5 }
      net
  in
  let d = Reliable.send ch ~kind:Net.Lock_reply ~src:0 ~dst:1 ~payload_bytes:8 ~at:0 in
  Alcotest.(check int) "payload arrived on the first copy" 100 d.Reliable.delivered_at;
  Alcotest.(check int) "two data copies on the wire" 2 d.Reliable.transmissions;
  Alcotest.(check int) "one retransmission" 1 d.Reliable.retransmits;
  Alcotest.(check int) "the redundant copy was suppressed by seqno" 1 d.Reliable.dups_suppressed;
  Alcotest.(check int) "one copy (the first ack) was destroyed" 1 d.Reliable.drops_seen;
  Alcotest.(check int) "one full timeout of backoff" 1_000 d.Reliable.backoff_ns;
  (* retransmit leaves at 1000, arrives 1100, re-ack arrives 1200 *)
  Alcotest.(check int) "acked by the retransmitted copy's ack" 1_200 d.Reliable.acked_at;
  (* the fabric counts both data copies (each was a real wire transfer);
     suppression by sequence number happens above the fabric *)
  Alcotest.(check int) "both copies hit the receiver's wire accounting" 16
    (Net.bytes_received net ~proc:1);
  Alcotest.(check int) "all acked" 0 (Reliable.unacked ch)

let test_reliable_backoff_cap_clamps () =
  (* Timeouts double 1000 -> 2000 and would reach 4000, but the cap
     clamps them at 2000: copies go out at 0, 1000, 3000, 5000 (all
     inside the drop window) and 7000 (delivered). *)
  let net = Net.create ~nprocs:2 () in
  Net.set_fault_policy net
    {
      Net.link = Net.fault_free_link;
      overrides = [];
      windows =
        [
          {
            Net.w_from_ns = 0;
            w_until_ns = 6_000;
            w_kind = Some Net.Lock_request;
            w_src = None;
            w_dst = None;
          };
        ];
      fault_seed = 3;
    };
  let ch =
    Reliable.create
      ~config:{ Reliable.timeout_ns = 1_000; backoff_cap_ns = 2_000; max_attempts = 10 }
      net
  in
  let d = Reliable.send ch ~kind:Net.Lock_request ~src:0 ~dst:1 ~payload_bytes:0 ~at:0 in
  Alcotest.(check int) "four retransmissions" 4 d.Reliable.retransmits;
  Alcotest.(check int) "four copies destroyed" 4 d.Reliable.drops_seen;
  Alcotest.(check int) "backoff clamped at the cap: 1+2+2+2 ms" 7_000 d.Reliable.backoff_ns;
  Alcotest.(check int) "channel total agrees" 7_000 (Reliable.total_backoff_ns ch);
  Alcotest.(check int) "channel retransmit total agrees" 4 (Reliable.total_retransmits ch);
  Alcotest.(check int) "all acked in the end" 0 (Reliable.unacked ch)

(* ------------------------------------------------------------------ *)
(* Crash plans                                                         *)
(* ------------------------------------------------------------------ *)

let ev at_ns proc action = { Crash.at_ns; proc; action }

let test_crash_scripted_validation () =
  Alcotest.check_raises "double stop"
    (Invalid_argument "Crash.scripted: p1 stopped twice (second at 30 ns)")
    (fun () -> ignore (Crash.scripted [ ev 10 1 Crash.Stop; ev 30 1 Crash.Stop ]));
  Alcotest.check_raises "recovery of a live processor"
    (Invalid_argument "Crash.scripted: p0 recovers at 5 ns but is not down")
    (fun () -> ignore (Crash.scripted [ ev 5 0 Crash.Recover ]));
  Alcotest.check_raises "negative event time"
    (Invalid_argument "Crash.scripted: negative event time")
    (fun () -> ignore (Crash.scripted [ ev (-1) 0 Crash.Stop ]));
  Alcotest.check_raises "negative processor"
    (Invalid_argument "Crash.scripted: negative processor")
    (fun () -> ignore (Crash.scripted [ ev 10 (-2) Crash.Stop ]))

let test_crash_plan_queries () =
  let p =
    Crash.scripted
      [ ev 100 1 Crash.Stop; ev 300 1 Crash.Recover; ev 200 0 Crash.Stop ]
  in
  Alcotest.(check bool) "up before its stop" false (Crash.is_down p ~proc:1 ~at:99);
  Alcotest.(check bool) "down from the stop instant" true (Crash.is_down p ~proc:1 ~at:100);
  Alcotest.(check bool) "still down just before recovery" true (Crash.is_down p ~proc:1 ~at:299);
  Alcotest.(check bool) "up from the recovery instant" false (Crash.is_down p ~proc:1 ~at:300);
  Alcotest.(check bool) "crash-stop never comes back" true (Crash.is_down p ~proc:0 ~at:max_int);
  Alcotest.(check bool) "unscripted processor never down" false
    (Crash.is_down p ~proc:2 ~at:max_int);
  Alcotest.(check int) "two down mid-plan" 2 (Crash.down_count p ~nprocs:3 ~at:250);
  Alcotest.(check int) "one down after the recovery" 1 (Crash.down_count p ~nprocs:3 ~at:400);
  Alcotest.(check int) "stops seen so far" 1 (Crash.stops_before p ~proc:1 ~at:250);
  Alcotest.(check (option int)) "first stop" (Some 100) (Crash.first_stop p ~proc:1);
  Alcotest.(check (option int)) "no stop scripted" None (Crash.first_stop p ~proc:2);
  Alcotest.(check int) "empty plan is empty" 0 (List.length (Crash.events Crash.empty))

let test_crash_render_parse_roundtrip () =
  let p =
    Crash.scripted
      [ ev 100 1 Crash.Stop; ev 300 1 Crash.Recover; ev 200 0 Crash.Stop ]
  in
  (* events are kept sorted by time, so rendering is canonical *)
  Alcotest.(check string) "canonical rendering" "stop@100:p1,stop@200:p0,recover@300:p1"
    (Crash.render p);
  (match Crash.parse_spec ~nprocs:2 (Crash.render p) with
  | Ok q -> Alcotest.(check string) "round trip" (Crash.render p) (Crash.render q)
  | Error e -> Alcotest.fail e);
  (* time suffixes scale to nanoseconds *)
  (match Crash.parse_spec ~nprocs:4 "stop@2ms:p1,recover@8ms:p1" with
  | Ok q -> Alcotest.(check string) "ms suffix" "stop@2000000:p1,recover@8000000:p1" (Crash.render q)
  | Error e -> Alcotest.fail e);
  (* the seeded form is parsed and reproducible *)
  (match (Crash.parse_spec ~nprocs:4 "n=2,seed=7", Crash.parse_spec ~nprocs:4 "n=2,seed=7") with
  | Ok a, Ok b ->
      Alcotest.(check string) "seeded form deterministic" (Crash.render a) (Crash.render b)
  | _ -> Alcotest.fail "seeded form must parse");
  (* malformed specs come back as Error, never as an exception *)
  let expect_error what s =
    match Crash.parse_spec ~nprocs:4 s with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (what ^ " must be rejected")
  in
  expect_error "out-of-range target" "stop@2ms:p9";
  expect_error "unknown action" "pause@2ms:p1";
  expect_error "bad time" "stop@soon:p1";
  expect_error "seeded form without n" "seed=7";
  expect_error "alternation break" "recover@5:p0";
  expect_error "empty spec" ""

(* The seeded generator must never script a majority down — quorum
   failover has to stay able to make progress under any seed. *)
let crash_seeded_keeps_majority_up =
  QCheck.Test.make ~name:"seeded crash plans keep a strict majority up" ~count:100
    QCheck.(pair (int_bound 10_000) (int_range 1 8))
    (fun (seed, nprocs) ->
      let mk () = Crash.seeded ~seed ~nprocs ~events:nprocs ~horizon_ns:1_000_000 in
      let p = mk () in
      (* the down set only changes at event instants, so checking each
         one bounds the whole timeline *)
      List.for_all
        (fun (e : Crash.event) -> 2 * Crash.down_count p ~nprocs ~at:e.Crash.at_ns < nprocs)
        (Crash.events p)
      && Crash.render (mk ()) = Crash.render p)

let delivery_monotone =
  QCheck.Test.make ~name:"delivery time grows with payload" ~count:200
    QCheck.(pair (int_bound 100_000) (int_bound 100_000))
    (fun (a, b) ->
      let net = Net.create ~nprocs:2 () in
      let lo = min a b and hi = max a b in
      deliver net ~kind:Net.Lock_reply ~src:0 ~dst:1 ~payload_bytes:lo ~at:0 ()
      <= deliver net ~kind:Net.Lock_reply ~src:0 ~dst:1 ~payload_bytes:hi ~at:0 ())

let accounting_balance =
  QCheck.Test.make ~name:"bytes sent equals bytes received across the fabric" ~count:100
    QCheck.(list (pair (pair (int_bound 3) (int_bound 3)) (int_bound 10_000)))
    (fun msgs ->
      let net = Net.create ~nprocs:4 () in
      List.iter
        (fun ((src, dst), bytes) ->
          ignore (Net.send net ~kind:Net.Lock_reply ~src ~dst ~payload_bytes:bytes ~at:0))
        msgs;
      let sent = List.init 4 (fun p -> Net.bytes_sent net ~proc:p) |> List.fold_left ( + ) 0 in
      let recv =
        List.init 4 (fun p -> Net.bytes_received net ~proc:p) |> List.fold_left ( + ) 0
      in
      sent = recv)

let reliable_always_delivers =
  QCheck.Test.make ~name:"reliable channel delivers under any sub-certain loss" ~count:50
    QCheck.(pair (int_bound 1000) (int_bound 70))
    (fun (seed, drop_pct) ->
      let net = Net.create ~nprocs:2 () in
      Net.set_fault_policy net
        (Net.uniform_faults ~seed ~drop:(float_of_int drop_pct /. 100.) ());
      (* at 70% loss the data+ack round trip survives an attempt with
         probability 0.09; 256 attempts leave ~1e-11 odds of a flake *)
      let ch =
        Reliable.create
          ~config:{ Reliable.timeout_ns = 100_000; backoff_cap_ns = 1_600_000; max_attempts = 256 }
          net
      in
      let ok = ref true in
      for i = 0 to 19 do
        let d = Reliable.send ch ~kind:Net.Lock_reply ~src:0 ~dst:1 ~payload_bytes:64 ~at:(i * 1000) in
        ok := !ok && d.Reliable.delivered_at >= i * 1000
      done;
      !ok && Reliable.unacked ch = 0)

let () =
  Alcotest.run "simnet"
    [
      ( "net",
        [
          Alcotest.test_case "transfer time" `Quick test_transfer_time;
          Alcotest.test_case "send accounting" `Quick test_send_accounting;
          Alcotest.test_case "self-send free" `Quick test_self_send_free;
          Alcotest.test_case "self-send immune to faults" `Quick test_self_send_immune_to_faults;
          Alcotest.test_case "overhead bytes" `Quick test_overhead_excluded_from_accounting;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "kind names" `Quick test_kind_names;
          qtest delivery_monotone;
          qtest accounting_balance;
        ] );
      ( "faults",
        [
          Alcotest.test_case "deterministic schedule" `Quick test_fault_determinism;
          Alcotest.test_case "seed changes schedule" `Quick test_fault_seed_changes_schedule;
          Alcotest.test_case "certain drop" `Quick test_certain_drop;
          Alcotest.test_case "certain duplication" `Quick test_certain_duplication;
          Alcotest.test_case "scripted window" `Quick test_fault_window;
          Alcotest.test_case "policy validation names the field" `Quick
            test_fault_policy_validation;
          Alcotest.test_case "delivery of Dropped raises" `Quick test_delivery_of_dropped_raises;
        ] );
      ( "crash",
        [
          Alcotest.test_case "scripted plan validation" `Quick test_crash_scripted_validation;
          Alcotest.test_case "plan queries" `Quick test_crash_plan_queries;
          Alcotest.test_case "render/parse round trip" `Quick test_crash_render_parse_roundtrip;
          qtest crash_seeded_keeps_majority_up;
        ] );
      ( "reliable",
        [
          Alcotest.test_case "faultless passthrough" `Quick test_reliable_faultless_passthrough;
          Alcotest.test_case "self-send" `Quick test_reliable_self_send;
          Alcotest.test_case "survives drops" `Quick test_reliable_survives_drops;
          Alcotest.test_case "suppresses duplicates" `Quick test_reliable_suppresses_duplicates;
          Alcotest.test_case "exponential backoff" `Quick test_reliable_backoff_doubles;
          Alcotest.test_case "retry budget exhaustion" `Quick test_reliable_exhausts;
          Alcotest.test_case "suspects a dead receiver" `Quick
            test_reliable_suspects_dead_receiver;
          Alcotest.test_case "suspects a dead sender" `Quick test_reliable_suspects_dead_sender;
          Alcotest.test_case "ack lost on final attempt" `Quick
            test_reliable_ack_lost_on_final_attempt;
          Alcotest.test_case "dup suppression across retransmit" `Quick
            test_reliable_dup_suppression_across_retransmit;
          Alcotest.test_case "backoff cap clamps" `Quick test_reliable_backoff_cap_clamps;
          qtest reliable_always_delivers;
        ] );
    ]
