(* Integration tests of the entry-consistency protocol over the whole
   machine: locks, barriers, minimal-update transfer, rebinding, and a
   randomized coherence property checked against a sequential oracle for
   every backend and every RT trapping mode. *)

module R = Midway.Runtime
module Range = Midway.Range
module Config = Midway.Config
module Counters = Midway_stats.Counters

let qtest = QCheck_alcotest.to_alcotest

let read_direct machine ~proc addr =
  Midway_memory.Space.get_int (R.space machine) ~proc addr

(* --- basic mutual exclusion and data movement --------------------------- *)

let counter_test backend () =
  let nprocs = 4 in
  let machine = R.create (Config.make backend ~nprocs) in
  let counter = R.alloc machine ~line_size:8 8 in
  let lock = R.new_lock machine [ Range.v counter 8 ] in
  R.run machine (fun c ->
      for _ = 1 to 25 do
        R.acquire c lock;
        R.write_int c counter (R.read_int c counter + 1);
        R.release c lock;
        R.work_ns c (1_000 * (R.id c + 1))
      done);
  Alcotest.(check int) "all increments survive" 100
    (read_direct machine ~proc:lock.Midway.Sync.owner counter)

let barrier_exchange_test backend () =
  let nprocs = 8 in
  let machine = R.create (Config.make backend ~nprocs) in
  let arr = R.alloc machine ~line_size:8 (nprocs * 8) in
  let bar = R.new_barrier machine [ Range.v arr (nprocs * 8) ] in
  let ok = ref true in
  R.run machine (fun c ->
      let me = R.id c in
      R.write_int c (arr + (me * 8)) (100 + me);
      R.barrier c bar;
      for i = 0 to nprocs - 1 do
        if R.read_int c (arr + (i * 8)) <> 100 + i then ok := false
      done);
  Alcotest.(check bool) "everyone sees every slot" true !ok

let test_barrier_repeated_episodes () =
  let nprocs = 4 in
  let machine = R.create (Config.make Config.Rt ~nprocs) in
  let arr = R.alloc machine ~line_size:8 (nprocs * 8) in
  let bar = R.new_barrier machine [ Range.v arr (nprocs * 8) ] in
  let ok = ref true in
  R.run machine (fun c ->
      let me = R.id c in
      for round = 1 to 10 do
        R.write_int c (arr + (me * 8)) ((round * 1000) + me);
        R.barrier c bar;
        for i = 0 to nprocs - 1 do
          if R.read_int c (arr + (i * 8)) <> (round * 1000) + i then ok := false
        done
      done);
  Alcotest.(check bool) "rounds stay consistent" true !ok

(* --- minimal update transfer -------------------------------------------- *)

let test_rt_minimal_updates () =
  (* After p1 has fetched the data once, a re-acquire with no intervening
     writes must transfer zero bytes (the timestamp history at work). *)
  let machine = R.create (Config.make Config.Rt ~nprocs:2) in
  let data = R.alloc machine ~line_size:8 64 in
  let lock = R.new_lock machine [ Range.v data 64 ] in
  let received = Array.make 3 0 in
  R.run machine (fun c ->
      if R.id c = 0 then begin
        R.acquire c lock;
        for i = 0 to 7 do
          R.write_int c (data + (i * 8)) i
        done;
        R.release c lock
      end
      else begin
        R.work_ns c 1_000_000;
        R.acquire c lock;
        received.(0) <- (R.counters machine 1).Counters.data_received_bytes;
        R.release c lock;
        R.work_ns c 1_000_000;
        R.acquire c lock;
        received.(1) <- (R.counters machine 1).Counters.data_received_bytes;
        R.release c lock
      end);
  Alcotest.(check int) "first acquire fetches the data" 64 received.(0);
  Alcotest.(check int) "idle re-acquire fetches nothing" received.(0) received.(1)

let test_vm_incarnation_filter () =
  (* Same property under VM-DSM: the incarnation cursor suppresses
     redundant transfer. *)
  let machine = R.create (Config.make Config.Vm ~nprocs:2) in
  let data = R.alloc machine ~line_size:8 64 in
  let lock = R.new_lock machine [ Range.v data 64 ] in
  let received = Array.make 2 0 in
  R.run machine (fun c ->
      if R.id c = 0 then begin
        R.acquire c lock;
        R.write_int c data 7;
        R.release c lock
      end
      else begin
        R.work_ns c 1_000_000;
        R.acquire c lock;
        received.(0) <- (R.counters machine 1).Counters.data_received_bytes;
        R.release c lock;
        R.work_ns c 1_000_000;
        R.acquire c lock;
        received.(1) <- (R.counters machine 1).Counters.data_received_bytes;
        R.release c lock
      end);
  Alcotest.(check bool) "first acquire fetched something" true (received.(0) > 0);
  Alcotest.(check int) "idle re-acquire fetches nothing" received.(0) received.(1)

let test_local_acquire_free () =
  let machine = R.create (Config.make Config.Rt ~nprocs:2) in
  let data = R.alloc machine 8 in
  let lock = R.new_lock machine [ Range.v data 8 ] in
  R.run machine (fun c ->
      if R.id c = 0 then begin
        R.acquire c lock;
        R.release c lock;
        R.acquire c lock;
        R.release c lock
      end);
  let c0 = R.counters machine 0 in
  Alcotest.(check int) "both acquires local" 2 c0.Counters.lock_acquires_local;
  Alcotest.(check int) "no remote traffic" 0 c0.Counters.lock_acquires_remote;
  Alcotest.(check int) "no messages" 0 (Midway_simnet.Net.total_messages (R.net machine))

(* --- shared (read) mode --------------------------------------------------- *)

let test_read_lock_concurrent_readers () =
  (* A writer publishes, then all other processors read concurrently;
     readers overlap in time instead of serializing. *)
  let nprocs = 4 in
  let machine = R.create (Config.make Config.Rt ~nprocs) in
  let data = R.alloc machine ~line_size:8 8 in
  let lock = R.new_lock machine [ Range.v data 8 ] in
  let bar = R.new_barrier machine [] in
  let seen = Array.make nprocs 0 in
  let intervals = Array.make nprocs (0, 0) in
  R.run machine (fun c ->
      let me = R.id c in
      if me = 0 then begin
        R.acquire c lock;
        R.write_int c data 777;
        R.release c lock
      end;
      R.barrier c bar;
      if me > 0 then begin
        R.acquire_read c lock;
        let t0 = R.now_ns c in
        seen.(me) <- R.read_int c data;
        R.work_ns c 5_000_000;
        intervals.(me) <- (t0, R.now_ns c);
        R.release c lock
      end);
  for p = 1 to nprocs - 1 do
    Alcotest.(check int) "reader saw the write" 777 seen.(p)
  done;
  (* virtual-time critical sections of the readers must overlap *)
  let s1, e1 = intervals.(1) and s2, e2 = intervals.(2) in
  Alcotest.(check bool) "readers overlapped in virtual time" true (s1 < e2 && s2 < e1)

let test_read_lock_excludes_writer () =
  (* An exclusive request queued behind readers is granted only after the
     last reader releases, and its write is then visible to a later
     reader. *)
  let machine = R.create (Config.make Config.Vm ~nprocs:3) in
  let data = R.alloc machine ~line_size:8 8 in
  let lock = R.new_lock machine [ Range.v data 8 ] in
  let writer_entered = ref 0 in
  let reader_done_at = ref 0 in
  R.run machine (fun c ->
      match R.id c with
      | 0 ->
          R.acquire c lock;
          R.write_int c data 1;
          R.release c lock;
          (* wait, then write again while p1 holds a read lock *)
          R.work_ns c 2_000_000;
          R.acquire c lock;
          writer_entered := R.now_ns c;
          R.write_int c data 2;
          R.release c lock
      | 1 ->
          R.work_ns c 1_000_000;
          R.acquire_read c lock;
          R.work_ns c 10_000_000;
          reader_done_at := R.now_ns c;
          R.release c lock
      | _ ->
          (* a late reader sees the writer's second value *)
          R.work_ns c 30_000_000;
          R.acquire_read c lock;
          Alcotest.(check int) "late reader sees v2" 2 (R.read_int c data);
          R.release c lock);
  Alcotest.(check bool) "writer waited for the reader" true
    (!writer_entered >= !reader_done_at)

let test_read_lock_reacquire_rejected () =
  let machine = R.create (Config.make Config.Rt ~nprocs:1) in
  let a = R.alloc machine 8 in
  let lock = R.new_lock machine [ Range.v a 8 ] in
  let raised = ref false in
  R.run machine (fun c ->
      R.acquire_read c lock;
      (try R.acquire c lock with Failure _ -> raised := true);
      R.release c lock);
  Alcotest.(check bool) "exclusive over own read rejected" true !raised

(* --- rebinding ----------------------------------------------------------- *)

let rebind_test backend () =
  let machine = R.create (Config.make backend ~nprocs:2) in
  let a = R.alloc machine ~line_size:8 64 in
  let b = R.alloc machine ~line_size:8 64 in
  let lock = R.new_lock machine [ Range.v a 64 ] in
  let seen = ref (-1) in
  R.run machine (fun c ->
      if R.id c = 0 then begin
        R.acquire c lock;
        R.write_int c a 1;
        R.write_int c b 42;
        R.rebind c lock [ Range.v b 64 ];
        R.release c lock
      end
      else begin
        R.work_ns c 1_000_000;
        R.acquire c lock;
        seen := R.read_int c b;
        R.release c lock
      end);
  Alcotest.(check int) "rebound data transferred" 42 !seen

let test_vm_rebind_skips_diff () =
  (* After a rebinding the next transfer ships all bound data *without
     performing a diff* (paper, section 4): no diff, no reprotection, and
     the releaser's pages stay writable. *)
  let machine = R.create (Config.make Config.Vm ~nprocs:2) in
  let a = R.alloc machine ~line_size:8 256 in
  let lock = R.new_lock machine [ Range.v a 8 ] in
  let seen = ref (-1) in
  R.run machine (fun c ->
      if R.id c = 0 then begin
        R.acquire c lock;
        for i = 0 to 31 do
          R.write_int c (a + (i * 8)) (i * 3)
        done;
        R.rebind c lock [ Range.v a 256 ];
        R.release c lock
      end
      else begin
        R.work_ns c 1_000_000;
        R.acquire c lock;
        seen := R.read_int c (a + 248);
        R.release c lock
      end);
  Alcotest.(check int) "full data arrived" (31 * 3) !seen;
  let c0 = R.counters machine 0 in
  Alcotest.(check int) "no diff performed" 0 c0.Counters.pages_diffed;
  Alcotest.(check int) "no reprotection" 0 c0.Counters.pages_write_protected;
  Alcotest.(check bool) "one fault only (pages stay writable)" true
    (c0.Counters.write_faults <= 1)

let test_rebind_requires_holding () =
  let machine = R.create (Config.make Config.Rt ~nprocs:1) in
  let a = R.alloc machine 8 in
  let lock = R.new_lock machine [ Range.v a 8 ] in
  let raised = ref false in
  R.run machine (fun c ->
      try R.rebind c lock [ Range.v a 8 ] with Failure _ -> raised := true);
  Alcotest.(check bool) "rebind without holding rejected" true !raised

(* --- error handling -------------------------------------------------------- *)

let test_reacquire_rejected () =
  let machine = R.create (Config.make Config.Rt ~nprocs:1) in
  let a = R.alloc machine 8 in
  let lock = R.new_lock machine [ Range.v a 8 ] in
  let raised = ref false in
  R.run machine (fun c ->
      R.acquire c lock;
      (try R.acquire c lock with Failure _ -> raised := true);
      R.release c lock);
  Alcotest.(check bool) "non-reentrant" true !raised

let test_release_requires_holding () =
  let machine = R.create (Config.make Config.Rt ~nprocs:1) in
  let a = R.alloc machine 8 in
  let lock = R.new_lock machine [ Range.v a 8 ] in
  let raised = ref false in
  R.run machine (fun c -> try R.release c lock with Failure _ -> raised := true);
  Alcotest.(check bool) "release without holding rejected" true !raised

let test_standalone_multiproc_rejected () =
  Alcotest.check_raises "standalone is uniprocessor"
    (Invalid_argument "Runtime.create: the standalone backend is uniprocessor only") (fun () ->
      ignore (R.create (Config.make Config.Standalone ~nprocs:2)))

let test_blast_barrier_data_rejected () =
  let machine = R.create (Config.make Config.Blast ~nprocs:2) in
  let a = R.alloc machine 8 in
  let bar = R.new_barrier machine [ Range.v a 8 ] in
  let raised = ref false in
  (try R.run machine (fun c -> R.barrier c bar) with Failure _ -> raised := true);
  Alcotest.(check bool) "blast barrier with bound data rejected" true !raised

let test_deadlock_detected () =
  let machine = R.create (Config.make Config.Rt ~nprocs:2) in
  let a = R.alloc machine 8 in
  let lock = R.new_lock machine [ Range.v a 8 ] in
  Alcotest.(check bool) "deadlock raises with lock diagnostics" true
    (try
       R.run machine (fun c ->
           if R.id c = 0 then begin
             R.acquire c lock (* never released: p1 wedges *)
           end
           else begin
             R.work_ns c 1_000;
             R.acquire c lock
           end);
       false
     with Midway_sched.Engine.Deadlock msg ->
       let has sub =
         let n = String.length sub and h = String.length msg in
         let rec go i = i + n <= h && (String.sub msg i n = sub || go (i + 1)) in
         go 0
       in
       has "held by p0" && has "waiting p1")

(* --- fault injection end to end ----------------------------------------- *)

let sum_counters machine f = Array.fold_left (fun acc c -> acc + f c) 0 (R.all_counters machine)

(* The protocol must survive a lossy fabric: mutual exclusion and data
   movement stay correct, only the timing degrades. *)
let faulty_counter_test backend () =
  let nprocs = 4 in
  let cfg =
    Config.with_faults ~duplicate:0.05 ~jitter_ns:10_000 ~seed:9 ~drop:0.1
      (Config.make backend ~nprocs)
  in
  let machine = R.create cfg in
  let counter = R.alloc machine ~line_size:8 8 in
  let lock = R.new_lock machine [ Range.v counter 8 ] in
  R.run machine (fun c ->
      for _ = 1 to 25 do
        R.acquire c lock;
        R.write_int c counter (R.read_int c counter + 1);
        R.release c lock;
        R.work_ns c (1_000 * (R.id c + 1))
      done);
  Alcotest.(check int) "all increments survive a 10% drop rate" 100
    (read_direct machine ~proc:lock.Midway.Sync.owner counter);
  Alcotest.(check (list string)) "invariants clean" [] (R.check_invariants machine);
  Alcotest.(check bool) "losses forced retransmissions" true
    (sum_counters machine (fun c -> c.Counters.retransmits) > 0);
  Alcotest.(check bool) "backoff time accumulated" true
    (sum_counters machine (fun c -> c.Counters.backoff_time_ns) > 0)

(* Same faulty configuration, same seed => bit-identical run. *)
let test_faulty_run_deterministic () =
  let run () =
    let cfg = Config.with_faults ~duplicate:0.1 ~seed:3 ~drop:0.15 (Config.make Config.Rt ~nprocs:4) in
    let machine = R.create cfg in
    let counter = R.alloc machine ~line_size:8 8 in
    let lock = R.new_lock machine [ Range.v counter 8 ] in
    R.run machine (fun c ->
        for _ = 1 to 10 do
          R.acquire c lock;
          R.write_int c counter (R.read_int c counter + 1);
          R.release c lock
        done);
    ( R.elapsed_ns machine,
      sum_counters machine (fun c -> c.Counters.retransmits),
      sum_counters machine (fun c -> c.Counters.duplicates_suppressed) )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical elapsed and channel activity" true (a = b)

(* The acceptance benchmark: quicksort — rebinding, a contended task
   queue — sorts correctly under a 2% drop rate, leaves the protocol
   invariants clean, and visibly exercised the retransmission machinery. *)
let test_quicksort_under_drops () =
  let cfg = Config.with_faults ~seed:42 ~drop:0.02 (Config.make Config.Rt ~nprocs:4) in
  let o = Midway_apps.Quicksort.run cfg (Midway_apps.Quicksort.scaled 0.05) in
  Alcotest.(check bool) "sorted output verified" true o.Midway_apps.Outcome.ok;
  let machine = o.Midway_apps.Outcome.machine in
  Alcotest.(check (list string)) "invariants clean" [] (R.check_invariants machine);
  Alcotest.(check bool) "retransmissions happened" true
    (sum_counters machine (fun c -> c.Counters.retransmits) > 0)

(* --- uniprocessor semantics (paper section 4, Figure 2 discussion) -------- *)

let test_uniprocessor_vm_never_diffs () =
  let machine = R.create (Config.make Config.Vm ~nprocs:1) in
  let a = R.alloc machine 4096 in
  let lock = R.new_lock machine [ Range.v a 4096 ] in
  let bar = R.new_barrier machine [ Range.v a 4096 ] in
  R.run machine (fun c ->
      R.acquire c lock;
      for i = 0 to 511 do
        R.write_int c (a + (i * 8)) i
      done;
      R.release c lock;
      R.barrier c bar);
  let c0 = R.counters machine 0 in
  Alcotest.(check bool) "faults happen" true (c0.Counters.write_faults > 0);
  Alcotest.(check int) "no diffs" 0 c0.Counters.pages_diffed;
  Alcotest.(check int) "no reprotection" 0 c0.Counters.pages_write_protected;
  Alcotest.(check int) "no data moved" 0 c0.Counters.data_received_bytes

let test_uniprocessor_rt_still_traps () =
  let machine = R.create (Config.make Config.Rt ~nprocs:1) in
  let a = R.alloc machine 64 in
  let lock = R.new_lock machine [ Range.v a 64 ] in
  R.run machine (fun c ->
      R.acquire c lock;
      R.write_int c a 1;
      R.release c lock);
  Alcotest.(check int) "dirtybit set" 1 (R.counters machine 0).Counters.dirtybits_set

let test_misclassified_private_write () =
  let machine = R.create (Config.make Config.Rt ~nprocs:1) in
  let p = R.alloc machine ~private_:true 64 in
  let s = R.alloc machine 64 in
  ignore s;
  R.run machine (fun c ->
      R.write_int c p 5 (* instrumented store to private memory *);
      R.write_int_private c (p + 8) 6 (* correctly classified: free *));
  let c0 = R.counters machine 0 in
  Alcotest.(check int) "misclassified counted" 1 c0.Counters.dirtybits_misclassified;
  Alcotest.(check int) "not a shared set" 0 c0.Counters.dirtybits_set;
  Alcotest.(check int) "private value stored" 5 (read_direct machine ~proc:0 p);
  Alcotest.(check int) "unclassified store also lands" 6 (read_direct machine ~proc:0 (p + 8))

(* --- line-size tunability (the false-sharing story) ------------------------ *)

let test_line_granularity_false_sharing () =
  (* Two processors write adjacent words under separate locks.  With
     8-byte lines RT-DSM is coherent; this is the paper's argument that
     the unit of coherency must match the data. *)
  let machine = R.create (Config.make Config.Rt ~nprocs:2) in
  let a = R.alloc machine ~line_size:8 16 in
  let l0 = R.new_lock machine [ Range.v a 8 ] in
  let l1 = R.new_lock machine [ Range.v (a + 8) 8 ] in
  R.run machine (fun c ->
      let lock = if R.id c = 0 then l0 else l1 in
      let addr = a + (R.id c * 8) in
      for i = 1 to 20 do
        R.acquire c lock;
        R.write_int c addr i;
        R.release c lock;
        R.work_ns c 5_000
      done);
  Alcotest.(check int) "word 0 intact" 20 (read_direct machine ~proc:l0.Midway.Sync.owner a);
  Alcotest.(check int) "word 1 intact" 20 (read_direct machine ~proc:l1.Midway.Sync.owner (a + 8))

(* --- the section 3.4 rejected variant ----------------------------------------- *)

let test_vmfine_pays_both_costs () =
  (* "This scheme would incur at least the same data collection overhead
     as the RT-DSM (scan the incarnation numbers) and it would incur the
     additional overhead of trapping and detection for VM-DSM (write
     fault, twin, and diff)." *)
  let run backend =
    let machine = R.create (Config.make backend ~nprocs:2) in
    let data = R.alloc machine ~line_size:8 4096 in
    let lock = R.new_lock machine [ Range.v data 4096 ] in
    R.run machine (fun c ->
        if R.id c = 0 then begin
          R.acquire c lock;
          for i = 0 to 15 do
            R.write_int c (data + (i * 8)) i
          done;
          R.release c lock
        end
        else begin
          R.work_ns c 1_000_000;
          R.acquire c lock;
          R.release c lock;
          R.work_ns c 1_000_000;
          R.acquire c lock;
          R.release c lock
        end);
    Counters.total (R.all_counters machine)
  in
  let rt = run Config.Rt and vm = run Config.Vm and fine = run Config.Vm_fine in
  Alcotest.(check int) "vm-fine faults like vm" vm.Counters.write_faults
    fine.Counters.write_faults;
  Alcotest.(check int) "vm-fine diffs like vm" vm.Counters.pages_diffed
    fine.Counters.pages_diffed;
  Alcotest.(check bool)
    (Printf.sprintf "vm-fine scans like rt (%d vs %d)"
       (fine.Counters.clean_dirtybits_read + fine.Counters.dirty_dirtybits_read)
       (rt.Counters.clean_dirtybits_read + rt.Counters.dirty_dirtybits_read))
    true
    (fine.Counters.clean_dirtybits_read + fine.Counters.dirty_dirtybits_read
    >= rt.Counters.clean_dirtybits_read + rt.Counters.dirty_dirtybits_read)

(* --- untargetted consistency (section 3.5 "other memory models") ----------- *)

let untargetted_transfer_test rt_mode () =
  (* Under an untargetted model, ANY synchronization makes the whole
     shared space consistent: data never bound to the transferred lock
     still arrives. *)
  let cfg =
    { (Config.make Config.Rt ~nprocs:2) with Config.untargetted = true; rt_mode }
  in
  let machine = R.create cfg in
  let x = R.alloc machine ~line_size:8 8 in
  let y = R.alloc machine ~line_size:8 8 in
  let lock = R.new_lock machine [ Range.v y 8 ] in
  let seen = ref 0 in
  R.run machine (fun c ->
      if R.id c = 0 then begin
        R.write_int c x 4242 (* not bound to any lock *);
        R.acquire c lock;
        R.write_int c y 1;
        R.release c lock
      end
      else begin
        R.work_ns c 1_000_000;
        R.acquire c lock;
        seen := R.read_int c x;
        R.release c lock
      end);
  Alcotest.(check int) "unbound data still transfers" 4242 !seen

let test_untargetted_scans_everything () =
  (* Plain mode must read a dirtybit for every allocated shared line on
     each transfer; two-level mode skips clean groups. *)
  let run rt_mode =
    let cfg =
      { (Config.make Config.Rt ~nprocs:2) with Config.untargetted = true; rt_mode }
    in
    let machine = R.create cfg in
    let big = R.alloc machine ~line_size:8 (4096 * 8) (* 4096 lines, untouched *) in
    let y = R.alloc machine ~line_size:8 8 in
    ignore big;
    let lock = R.new_lock machine [ Range.v y 8 ] in
    R.run machine (fun c ->
        (* ping-pong so every acquisition is a remote transfer: three
           collections in total, each scanning the whole space *)
        if R.id c = 0 then begin
          R.acquire c lock;
          R.write_int c y 1;
          R.release c lock;
          R.work_ns c 4_000_000;
          R.acquire c lock;
          R.release c lock
        end
        else begin
          R.work_ns c 1_000_000;
          R.acquire c lock;
          R.release c lock;
          R.work_ns c 8_000_000;
          R.acquire c lock;
          R.release c lock
        end);
    let total = Counters.total (R.all_counters machine) in
    total.Counters.clean_dirtybits_read + total.Counters.dirty_dirtybits_read
  in
  let plain = run Config.Plain in
  let two_level = run Config.Two_level in
  Alcotest.(check bool)
    (Printf.sprintf "plain scans every line on each transfer (%d >= 12288)" plain)
    true (plain >= 3 * 4096);
  Alcotest.(check bool)
    (Printf.sprintf "two-level skips clean groups (%d < 3/4 of %d)" two_level plain)
    true (two_level < plain * 3 / 4)

let test_untargetted_validation () =
  Alcotest.check_raises "untargetted needs rt"
    (Invalid_argument "Runtime.create: the untargetted model is implemented for the RT backend only")
    (fun () ->
      ignore
        (R.create { (Config.make Config.Vm ~nprocs:2) with Config.untargetted = true }));
  let cfg = { (Config.make Config.Rt ~nprocs:2) with Config.untargetted = true } in
  let machine = R.create cfg in
  let a = R.alloc machine 8 in
  let bar = R.new_barrier machine [ Range.v a 8 ] in
  let raised = ref false in
  (try R.run machine (fun c -> R.barrier c bar) with Failure _ -> raised := true);
  Alcotest.(check bool) "untargetted barrier data rejected" true !raised

(* --- twin backend (section 3.5) --------------------------------------------- *)

let test_twin_compare_cost_proportional_to_bound () =
  (* The paper's argument against detection-free twinning: unmodified
     data is diffed anyway, so collection cost follows the bound size,
     not the dirty size. *)
  let machine = R.create (Config.make Config.Twin ~nprocs:2) in
  let data = R.alloc machine ~line_size:8 65536 in
  let lock = R.new_lock machine [ Range.v data 65536 ] in
  R.run machine (fun c ->
      if R.id c = 0 then begin
        R.acquire c lock;
        R.write_int c data 1 (* a single word dirty *);
        R.release c lock;
        (* reacquire after p1: a second remote transfer, hence a second
           full comparison at p1 *)
        R.work_ns c 10_000_000;
        R.acquire c lock;
        R.release c lock
      end
      else begin
        R.work_ns c 1_000_000;
        R.acquire c lock;
        R.release c lock
      end);
  let total = Counters.total (R.all_counters machine) in
  Alcotest.(check bool)
    (Printf.sprintf "whole binding compared every transfer (%d >= 2x bound)"
       total.Counters.twin_compare_bytes)
    true
    (total.Counters.twin_compare_bytes >= 2 * 65536);
  Alcotest.(check int) "no dirtybits involved" 0 total.Counters.dirtybits_set;
  Alcotest.(check int) "no faults involved" 0 total.Counters.write_faults

(* --- degenerate bindings and edge cases --------------------------------------- *)

let test_empty_binding_lock () =
  (* a lock with no bound data is pure mutual exclusion *)
  let machine = R.create (Config.make Config.Rt ~nprocs:4) in
  let lock = R.new_lock machine [] in
  let hits = ref 0 in
  R.run machine (fun c ->
      for _ = 1 to 5 do
        R.acquire c lock;
        incr hits;
        R.release c lock;
        R.work_ns c 10_000
      done);
  Alcotest.(check int) "all critical sections ran" 20 !hits;
  Alcotest.(check int) "no payload moved" 0
    (Counters.total (R.all_counters machine)).Counters.data_received_bytes

let test_overlapping_page_bindings_vm () =
  (* two locks whose data shares a VM page: the saved-diff machinery must
     keep them coherent *)
  let machine = R.create (Config.make Config.Vm ~nprocs:3) in
  let a = R.alloc machine ~line_size:8 8 in
  let b = R.alloc machine ~line_size:8 8 in
  let la = R.new_lock machine [ Range.v a 8 ] in
  let lb = R.new_lock machine [ Range.v b 8 ] in
  R.run machine (fun c ->
      for _ = 1 to 10 do
        R.acquire c la;
        R.write_int c a (R.read_int c a + 1);
        R.release c la;
        R.acquire c lb;
        R.write_int c b (R.read_int c b + 3);
        R.release c lb;
        R.work_ns c (7_000 * (R.id c + 1))
      done);
  Alcotest.(check int) "a" 30 (read_direct machine ~proc:la.Midway.Sync.owner a);
  Alcotest.(check int) "b" 90 (read_direct machine ~proc:lb.Midway.Sync.owner b)

let test_run_each_distinct_programs () =
  let machine = R.create (Config.make Config.Rt ~nprocs:2) in
  let a = R.alloc machine ~line_size:8 16 in
  let lock = R.new_lock machine [ Range.v a 16 ] in
  let producer c =
    R.acquire c lock;
    R.write_int c a 11;
    R.write_int c (a + 8) 22;
    R.release c lock
  in
  let consumer c =
    R.work_ns c 1_000_000;
    R.acquire c lock;
    Alcotest.(check int) "sees first" 11 (R.read_int c a);
    Alcotest.(check int) "sees second" 22 (R.read_int c (a + 8));
    R.release c lock
  in
  R.run_each machine [| producer; consumer |];
  Alcotest.(check (list string)) "clean" [] (R.check_invariants machine)

let test_write_bytes_area () =
  (* an area store traps once per line under RT *)
  let machine = R.create (Config.make Config.Rt ~nprocs:1) in
  let a = R.alloc machine ~line_size:8 64 in
  let lock = R.new_lock machine [ Range.v a 64 ] in
  R.run machine (fun c ->
      R.acquire c lock;
      R.write_bytes c a (Bytes.make 64 'z');
      R.release c lock);
  Alcotest.(check int) "eight lines dirtied" 8 (R.counters machine 0).Counters.dirtybits_set;
  Alcotest.(check bytes) "data landed" (Bytes.make 64 'z')
    (Midway_memory.Space.read_bytes (R.space machine) ~proc:0 a ~len:64)

let test_subset_barrier () =
  (* a two-party barrier among processors 2 and 3 of a 4-processor
     machine, with a non-default manager *)
  let machine = R.create (Config.make Config.Rt ~nprocs:4) in
  let a = R.alloc machine ~line_size:8 16 in
  let bar = R.new_barrier machine ~participants:2 ~manager:2 [ Range.v a 16 ] in
  let ok = ref true in
  R.run machine (fun c ->
      let me = R.id c in
      if me >= 2 then begin
        R.write_int c (a + ((me - 2) * 8)) (500 + me);
        R.barrier c bar;
        if R.read_int c a <> 502 || R.read_int c (a + 8) <> 503 then ok := false
      end);
  Alcotest.(check bool) "pair exchanged" true !ok

(* --- invariant checking ------------------------------------------------------- *)

let test_invariants_clean_run () =
  let machine = R.create (Config.make Config.Rt ~nprocs:4) in
  let a = R.alloc machine ~line_size:8 64 in
  let lock = R.new_lock machine [ Range.v a 64 ] in
  let bar = R.new_barrier machine [] in
  R.run machine (fun c ->
      R.acquire c lock;
      R.write_int c a (R.read_int c a + 1);
      R.release c lock;
      R.barrier c bar);
  Alcotest.(check (list string)) "no violations" [] (R.check_invariants machine)

let test_invariants_catch_leaked_lock () =
  let machine = R.create (Config.make Config.Rt ~nprocs:1) in
  let a = R.alloc machine 8 in
  let lock = R.new_lock machine [ Range.v a 8 ] in
  R.run machine (fun c -> R.acquire c lock (* never released *));
  Alcotest.(check bool) "leak reported" true (R.check_invariants machine <> [])

let test_invariants_catch_unlocked_write () =
  (* A processor that writes lock-bound data it does not own leaves a
     locally dirty line behind. *)
  let machine = R.create (Config.make Config.Rt ~nprocs:2) in
  let a = R.alloc machine ~line_size:8 8 in
  let lock = R.new_lock machine [ Range.v a 8 ] in
  ignore lock;
  R.run machine (fun c -> if R.id c = 1 then R.write_int c a 666 (* no acquire! *));
  Alcotest.(check bool) "rogue write reported" true
    (List.exists
       (fun s ->
         let has sub =
           let n = String.length sub and h = String.length s in
           let rec go i = i + n <= h && (String.sub s i n = sub || go (i + 1)) in
           go 0
         in
         has "without ownership")
       (R.check_invariants machine))

(* --- protocol tracing -------------------------------------------------------- *)

let test_runtime_tracing () =
  let cfg = { (Config.make Config.Rt ~nprocs:2) with Config.trace_capacity = 64 } in
  let machine = R.create cfg in
  let a = R.alloc machine ~line_size:8 8 in
  let lock = R.new_lock machine [ Range.v a 8 ] in
  let bar = R.new_barrier machine [] in
  R.run machine (fun c ->
      if R.id c = 0 then begin
        R.acquire c lock;
        R.write_int c a 1;
        R.release c lock
      end
      else begin
        R.work_ns c 1_000_000;
        R.acquire c lock;
        R.release c lock
      end;
      R.barrier c bar);
  let tr = R.trace machine in
  let events = Midway.Trace.events tr in
  Alcotest.(check bool) "events recorded" true (Midway.Trace.total tr > 0);
  (* timestamps are nondecreasing *)
  let times = List.map Midway.Trace.event_time events in
  let rec sorted = function
    | a :: b :: rest -> a <= b && sorted (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "virtual-time ordered" true (sorted times);
  Alcotest.(check bool) "contains a grant with the line payload" true
    (List.exists
       (function
         | Midway.Trace.Lock_granted { payload_bytes = 8; from_ = 0; to_ = 1; _ } -> true
         | _ -> false)
       events);
  Alcotest.(check bool) "contains the barrier completion" true
    (List.exists
       (function Midway.Trace.Barrier_completed _ -> true | _ -> false)
       events)

let test_tracing_disabled_by_default () =
  let machine = R.create (Config.make Config.Rt ~nprocs:1) in
  let a = R.alloc machine 8 in
  let lock = R.new_lock machine [ Range.v a 8 ] in
  R.run machine (fun c ->
      R.acquire c lock;
      R.release c lock);
  Alcotest.(check int) "no events kept" 0 (Midway.Trace.length (R.trace machine))

(* --- barrier-phase random coherence ------------------------------------------ *)

let barrier_coherence_random backend =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "random barrier-phase programs are coherent (%s)"
         (Config.backend_name backend))
    ~count:25
    QCheck.(pair (int_range 2 4) (pair (int_range 1 5) (int_range 1 6)))
    (fun (nprocs, (rounds, slots_per_proc)) ->
      let cfg = Config.make backend ~nprocs in
      let machine = R.create cfg in
      let total = nprocs * slots_per_proc in
      let base = R.alloc machine ~line_size:8 (total * 8) in
      let bar = R.new_barrier machine [ Range.v base (total * 8) ] in
      let ok = ref true in
      R.run machine (fun c ->
          let me = R.id c in
          for round = 1 to rounds do
            for s = 0 to slots_per_proc - 1 do
              R.write_int c
                (base + (((me * slots_per_proc) + s) * 8))
                ((round * 10_000) + (me * 100) + s)
            done;
            R.barrier c bar;
            (* everyone checks everyone's slots for this round *)
            for p = 0 to nprocs - 1 do
              for s = 0 to slots_per_proc - 1 do
                let v = R.read_int c (base + (((p * slots_per_proc) + s) * 8)) in
                if v <> (round * 10_000) + (p * 100) + s then ok := false
              done
            done
          done);
      !ok)

(* --- phased rebinding coherence ----------------------------------------------- *)

(* The hardest protocol interaction: lock-to-data bindings change over
   time (quicksort's pattern).  The program proceeds in phases separated
   by (data-free) barriers; in phase p, lock l guards the slot group
   ((l + p) mod nlocks), and processor 0 performs the rebinding while
   holding each lock at the phase boundary.  Writes are recorded in
   execution order; the final value of every slot must match the last
   recorded write. *)
let rebinding_coherence_random backend =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "phased rebinding programs are coherent (%s)"
         (Config.backend_name backend))
    ~count:20
    QCheck.(pair (int_range 2 4) (pair (int_range 1 4) (list_of_size (Gen.int_range 1 30) (pair (int_bound 2) (int_bound 100)))))
    (fun (nprocs, (phases, writes)) ->
      let cfg = Config.make backend ~nprocs in
      let machine = R.create cfg in
      let nlocks = 3 and slots_per_group = 2 in
      let nslots = nlocks * slots_per_group in
      let base = R.alloc machine ~line_size:8 (nslots * 8) in
      let slot_addr s = base + (s * 8) in
      let group_ranges g =
        [ Range.v (slot_addr (g * slots_per_group)) (slots_per_group * 8) ]
      in
      let locks = Array.init nlocks (fun l -> R.new_lock machine (group_ranges l)) in
      let phase_bar = R.new_barrier machine [] in
      let commits = Array.make nslots (-1) in
      R.run machine (fun c ->
          let me = R.id c in
          for phase = 0 to phases - 1 do
            (* processor 0 rotates the bindings while holding each lock *)
            if me = 0 && phase > 0 then
              Array.iteri
                (fun l lock ->
                  R.acquire c lock;
                  R.rebind c lock (group_ranges ((l + phase) mod nlocks));
                  R.release c lock)
                locks;
            R.barrier c phase_bar;
            List.iteri
              (fun i (l, v) ->
                if i mod nprocs = me then begin
                  let lock = locks.(l) in
                  let group = (l + phase) mod nlocks in
                  let s = (group * slots_per_group) + (v mod slots_per_group) in
                  R.acquire c lock;
                  R.write_int c (slot_addr s) ((phase * 10_000) + v);
                  commits.(s) <- (phase * 10_000) + v;
                  R.release c lock;
                  R.work_ns c ((me * 333) + 900)
                end)
              writes;
            R.barrier c phase_bar
          done);
      (* final value per slot at the owner of the lock currently guarding
         it *)
      List.for_all
        (fun s ->
          commits.(s) = -1
          ||
          let group = s / slots_per_group in
          (* which lock guards this group in the last phase? lock l maps
             to group (l + phases-1) mod nlocks *)
          let l = ((group - (phases - 1)) mod nlocks + nlocks) mod nlocks in
          read_direct machine ~proc:locks.(l).Midway.Sync.owner (slot_addr s) = commits.(s))
        (List.init nslots (fun s -> s)))

(* --- randomized coherence property across all configurations --------------- *)

(* A random program: a sequence of (processor, lock, slot, value) writes.
   Each lock guards a disjoint group of slots; processors apply their
   writes in program order under the proper lock.  The final DSM state
   must equal a sequential oracle that applies the same writes in
   virtual-time commit order.  Because each slot is written under one
   lock, commit order per slot is the lock's grant order, which the
   deterministic engine fixes; we recover it by logging commits. *)
let coherence_random backend rt_mode =
  let name =
    Printf.sprintf "random programs are coherent (%s%s)" (Config.backend_name backend)
      (match backend with Config.Rt -> "/" ^ Config.rt_mode_name rt_mode | _ -> "")
  in
  QCheck.Test.make ~name ~count:30
    QCheck.(
      pair (int_range 2 4)
        (list_of_size (Gen.int_range 1 60)
           (quad (int_bound 3) (int_bound 3) (int_bound 3) (int_bound 1000))))
    (fun (nprocs, ops) ->
      let cfg = { (Config.make backend ~nprocs) with Config.rt_mode } in
      let machine = R.create cfg in
      let nlocks = 4 and slots_per = 4 in
      let base = R.alloc machine ~line_size:8 (nlocks * slots_per * 8) in
      let slot_addr l s = base + (((l * slots_per) + s) * 8) in
      let locks =
        Array.init nlocks (fun l ->
            R.new_lock machine [ Range.v (slot_addr l 0) (slots_per * 8) ])
      in
      let commits = Array.make_matrix nlocks slots_per (-1) in
      R.run machine (fun c ->
          let me = R.id c in
          List.iteri
            (fun i (p, l, s, v) ->
              if p mod nprocs = me then begin
                R.acquire c locks.(l);
                R.write_int c (slot_addr l s) v;
                commits.(l).(s) <- v;
                ignore i;
                R.release c locks.(l);
                R.work_ns c ((me * 777) + 1_000)
              end)
            ops);
      (* verify: each slot's final value at the lock owner's copy equals
         the last committed value (commit order = execution order, which
         the deterministic engine serialized via the lock). *)
      List.for_all
        (fun l ->
          List.for_all
            (fun s ->
              let expected = commits.(l).(s) in
              let got =
                read_direct machine ~proc:locks.(l).Midway.Sync.owner (slot_addr l s)
              in
              expected = -1 || got = expected)
            [ 0; 1; 2; 3 ])
        [ 0; 1; 2; 3 ])

let () =
  Alcotest.run "runtime"
    [
      ( "locks",
        [
          Alcotest.test_case "counter under rt" `Quick (counter_test Config.Rt);
          Alcotest.test_case "counter under vm" `Quick (counter_test Config.Vm);
          Alcotest.test_case "counter under blast" `Quick (counter_test Config.Blast);
          Alcotest.test_case "rt minimal updates" `Quick test_rt_minimal_updates;
          Alcotest.test_case "vm incarnation filter" `Quick test_vm_incarnation_filter;
          Alcotest.test_case "local acquire free" `Quick test_local_acquire_free;
          Alcotest.test_case "reacquire rejected" `Quick test_reacquire_rejected;
          Alcotest.test_case "release requires holding" `Quick test_release_requires_holding;
        ] );
      ( "barriers",
        [
          Alcotest.test_case "exchange under rt" `Quick (barrier_exchange_test Config.Rt);
          Alcotest.test_case "exchange under vm" `Quick (barrier_exchange_test Config.Vm);
          Alcotest.test_case "repeated episodes" `Quick test_barrier_repeated_episodes;
          Alcotest.test_case "blast barrier data rejected" `Quick test_blast_barrier_data_rejected;
        ] );
      ( "read-mode",
        [
          Alcotest.test_case "concurrent readers" `Quick test_read_lock_concurrent_readers;
          Alcotest.test_case "writer excluded by readers" `Quick test_read_lock_excludes_writer;
          Alcotest.test_case "reacquire over read rejected" `Quick
            test_read_lock_reacquire_rejected;
        ] );
      ( "rebinding",
        [
          Alcotest.test_case "rebind under rt" `Quick (rebind_test Config.Rt);
          Alcotest.test_case "rebind under vm" `Quick (rebind_test Config.Vm);
          Alcotest.test_case "rebind requires holding" `Quick test_rebind_requires_holding;
          Alcotest.test_case "vm rebind skips diff" `Quick test_vm_rebind_skips_diff;
        ] );
      ( "edges",
        [
          Alcotest.test_case "empty binding" `Quick test_empty_binding_lock;
          Alcotest.test_case "overlapping page bindings (vm)" `Quick
            test_overlapping_page_bindings_vm;
          Alcotest.test_case "run_each" `Quick test_run_each_distinct_programs;
          Alcotest.test_case "area store" `Quick test_write_bytes_area;
          Alcotest.test_case "subset barrier" `Quick test_subset_barrier;
        ] );
      ( "machine",
        [
          Alcotest.test_case "standalone multiproc rejected" `Quick
            test_standalone_multiproc_rejected;
          Alcotest.test_case "deadlock detected" `Quick test_deadlock_detected;
          Alcotest.test_case "uniprocessor vm never diffs" `Quick
            test_uniprocessor_vm_never_diffs;
          Alcotest.test_case "uniprocessor rt still traps" `Quick
            test_uniprocessor_rt_still_traps;
          Alcotest.test_case "misclassified private write" `Quick
            test_misclassified_private_write;
          Alcotest.test_case "line-size false sharing" `Quick
            test_line_granularity_false_sharing;
        ] );
      ( "untargetted",
        [
          Alcotest.test_case "unbound data transfers (plain)" `Quick
            (untargetted_transfer_test Config.Plain);
          Alcotest.test_case "unbound data transfers (two-level)" `Quick
            (untargetted_transfer_test Config.Two_level);
          Alcotest.test_case "unbound data transfers (update-queue)" `Quick
            (untargetted_transfer_test Config.Update_queue);
          Alcotest.test_case "scan cost and two-level skipping" `Quick
            test_untargetted_scans_everything;
          Alcotest.test_case "validation" `Quick test_untargetted_validation;
        ] );
      ( "twin",
        [
          Alcotest.test_case "counter under twin" `Quick (counter_test Config.Twin);
          Alcotest.test_case "barrier exchange under twin" `Quick
            (barrier_exchange_test Config.Twin);
          Alcotest.test_case "rebind under twin" `Quick (rebind_test Config.Twin);
          Alcotest.test_case "compare cost proportional to bound data" `Quick
            test_twin_compare_cost_proportional_to_bound;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "clean run" `Quick test_invariants_clean_run;
          Alcotest.test_case "leaked lock" `Quick test_invariants_catch_leaked_lock;
          Alcotest.test_case "write without ownership" `Quick
            test_invariants_catch_unlocked_write;
        ] );
      ( "faults",
        [
          Alcotest.test_case "counter under faults (rt)" `Quick (faulty_counter_test Config.Rt);
          Alcotest.test_case "counter under faults (vm)" `Quick (faulty_counter_test Config.Vm);
          Alcotest.test_case "faulty run deterministic" `Quick test_faulty_run_deterministic;
          Alcotest.test_case "quicksort under 2% drop" `Slow test_quicksort_under_drops;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "records protocol events" `Quick test_runtime_tracing;
          Alcotest.test_case "disabled by default" `Quick test_tracing_disabled_by_default;
        ] );
      ( "vm-fine",
        [
          Alcotest.test_case "counter under vm-fine" `Quick (counter_test Config.Vm_fine);
          Alcotest.test_case "barrier exchange under vm-fine" `Quick
            (barrier_exchange_test Config.Vm_fine);
          Alcotest.test_case "rebind under vm-fine" `Quick (rebind_test Config.Vm_fine);
          Alcotest.test_case "pays both costs (section 3.4)" `Quick
            test_vmfine_pays_both_costs;
        ] );
      ( "coherence",
        [
          qtest (barrier_coherence_random Config.Rt);
          qtest (barrier_coherence_random Config.Vm_fine);
          qtest (barrier_coherence_random Config.Vm);
          qtest (barrier_coherence_random Config.Twin);
          qtest (coherence_random Config.Rt Config.Plain);
          qtest (coherence_random Config.Rt Config.Two_level);
          qtest (coherence_random Config.Rt Config.Update_queue);
          qtest (coherence_random Config.Vm Config.Plain);
          qtest (coherence_random Config.Twin Config.Plain);
          qtest (coherence_random Config.Blast Config.Plain);
          qtest (rebinding_coherence_random Config.Rt);
          qtest (rebinding_coherence_random Config.Vm);
          qtest (rebinding_coherence_random Config.Vm_fine);
          qtest (rebinding_coherence_random Config.Twin);
          qtest (rebinding_coherence_random Config.Blast);
        ] );
    ]
