(* Tests for the experiment layer: suite execution, table rendering and
   the sweep/break-even computation behind Figures 3 and 4. *)

module Suite = Midway_report.Suite
module Sweep = Midway_report.Sweep

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

(* One tiny suite shared by all rendering tests (suites are expensive). *)
let suite =
  lazy (Suite.run ~apps:[ Suite.Sor; Suite.Quicksort ] ~nprocs:4 ~scale:0.05 ())

let test_suite_runs () =
  let s = Lazy.force suite in
  Alcotest.(check int) "two entries" 2 (List.length s.Suite.entries);
  List.iter
    (fun e ->
      Alcotest.(check bool) "rt verified" true e.Suite.rt.Midway_apps.Outcome.ok;
      Alcotest.(check bool) "vm verified" true e.Suite.vm.Midway_apps.Outcome.ok;
      Alcotest.(check bool) "standalone verified" true e.Suite.standalone.Midway_apps.Outcome.ok)
    s.Suite.entries;
  Alcotest.(check bool) "entry lookup" true (Suite.entry s Suite.Sor == List.hd s.Suite.entries)

let test_app_names_roundtrip () =
  List.iter
    (fun app ->
      match Suite.app_of_string (Suite.app_name app) with
      | Ok app' -> Alcotest.(check bool) "round trip" true (app = app')
      | Error e -> Alcotest.fail e)
    Suite.apps;
  Alcotest.(check bool) "unknown rejected" true
    (match Suite.app_of_string "frobnicate" with Error _ -> true | Ok _ -> false)

let test_table1 () =
  let s = Midway_report.Table1.render Midway_stats.Cost_model.default in
  List.iter
    (fun needle -> Alcotest.(check bool) ("mentions " ^ needle) true (contains s needle))
    [ "dirtybit set"; "page write fault"; "0.360"; "1200"; "30,000" ]

let render_mentions_apps render =
  let s = Lazy.force suite in
  let out = render s in
  Alcotest.(check bool) "mentions sor" true (contains out "sor");
  Alcotest.(check bool) "mentions quicksort" true (contains out "quicksort");
  Alcotest.(check bool) "mentions paper" true (contains out "paper")

let test_table2 () = render_mentions_apps Midway_report.Table2.render

let test_table3 () =
  render_mentions_apps Midway_report.Table3.render;
  let s = Lazy.force suite in
  let rt_ms, vm_ms = Midway_report.Table3.measured_ms s Suite.Sor in
  Alcotest.(check bool) "positive costs" true (rt_ms > 0.0 && vm_ms > 0.0);
  Alcotest.(check bool) "sor trapping favours RT (paper shape)" true (rt_ms < vm_ms)

let test_table4 () =
  render_mentions_apps Midway_report.Table4.render;
  let s = Lazy.force suite in
  let rt_ms, vm_ms = Midway_report.Table4.measured_ms s Suite.Quicksort in
  Alcotest.(check bool) "collection costs positive" true (rt_ms > 0.0 && vm_ms > 0.0)

let test_table4_quicksort_shape () =
  (* The paper's one VM-favouring cell — quicksort write collection —
     needs the paper's task size to show: the fixed per-page diff cost
     dominates when leaves are small, so this runs at full scale. *)
  let s = Suite.run ~apps:[ Suite.Quicksort ] ~nprocs:8 ~scale:1.0 () in
  let rt_ms, vm_ms = Midway_report.Table4.measured_ms s Suite.Quicksort in
  Alcotest.(check bool)
    (Printf.sprintf "quicksort collection favours VM (rt=%.1f vm=%.1f)" rt_ms vm_ms)
    true (vm_ms < rt_ms)

let test_table5 () = render_mentions_apps Midway_report.Table5.render

let test_fig2 () =
  let s = Lazy.force suite in
  let out = Midway_report.Fig2.render s in
  Alcotest.(check bool) "has execution-time chart" true (contains out "Execution time");
  Alcotest.(check bool) "has data chart" true (contains out "Total data transferred")

let test_sweep_endpoints () =
  let s = Lazy.force suite in
  let lines = Sweep.trapping_lines s in
  Alcotest.(check int) "one line per app" 2 (List.length lines);
  List.iter
    (fun l ->
      match (l.Sweep.points, List.rev l.Sweep.points) with
      | lo :: _, hi :: _ ->
          Alcotest.(check (float 0.5)) "sweep starts at 122 us" 122.0 lo.Sweep.fault_us;
          Alcotest.(check (float 0.5)) "sweep ends at 1200 us" 1200.0 hi.Sweep.fault_us;
          Alcotest.(check bool) "RT cost independent of fault time" true
            (lo.Sweep.rt_ms = hi.Sweep.rt_ms);
          Alcotest.(check bool) "VM cost grows with fault time" true
            (lo.Sweep.vm_ms <= hi.Sweep.vm_ms)
      | _ -> Alcotest.fail "empty sweep")
    lines

let test_break_even_math () =
  let s = Lazy.force suite in
  (* synthetic line: rt = 5 ms; vm = faults x fault cost with 10 faults =>
     crossing at 500 us. *)
  let points =
    List.map
      (fun fault_us -> { Sweep.fault_us; rt_ms = 5.0; vm_ms = 10.0 *. fault_us /. 1000.0 })
      [ 122.0; 600.0; 1200.0 ]
  in
  let line = { Sweep.app = Suite.Sor; points } in
  (match Sweep.break_even_us [ line ] with
  | [ (_, Some us) ] -> Alcotest.(check (float 1.0)) "crossing at 500 us" 500.0 us
  | _ -> Alcotest.fail "expected a crossing");
  (* a line entirely above rt never crosses *)
  let flat =
    { Sweep.app = Suite.Sor;
      points = List.map (fun p -> { p with Sweep.vm_ms = 100.0 }) points }
  in
  (match Sweep.break_even_us [ flat ] with
  | [ (_, None) ] -> ()
  | _ -> Alcotest.fail "expected no crossing");
  ignore s

let test_sweep_render () =
  let s = Lazy.force suite in
  let out = Sweep.render ~title:"Figure 3" s (Sweep.trapping_lines s) in
  Alcotest.(check bool) "has plot" true (contains out "break-even");
  Alcotest.(check bool) "has table" true (contains out "application")

let test_csv () =
  let s = Lazy.force suite in
  let out = Midway_report.Csv.of_suite s in
  let lines = String.split_on_char '\n' out |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "header + 3 rows per app" (1 + (3 * 2)) (List.length lines);
  let cols s = List.length (String.split_on_char ',' s) in
  let widths = List.map cols lines in
  (match widths with
  | w :: rest -> List.iter (fun w' -> Alcotest.(check int) "rectangular" w w') rest
  | [] -> Alcotest.fail "empty csv");
  Alcotest.(check bool) "header first" true (contains (List.hd lines) "app,system")

let test_csv_quoting () =
  (* RFC 4180: fields carrying the delimiter, quotes or line breaks must
     be quoted, with embedded quotes doubled; plain fields stay bare *)
  Alcotest.(check string) "plain passes through" "water" (Midway_report.Csv.field "water");
  Alcotest.(check string) "empty passes through" "" (Midway_report.Csv.field "");
  Alcotest.(check string) "comma quoted" "\"a,b\"" (Midway_report.Csv.field "a,b");
  Alcotest.(check string) "quote doubled" "\"say \"\"hi\"\"\"" (Midway_report.Csv.field "say \"hi\"");
  Alcotest.(check string) "newline quoted" "\"two\nlines\"" (Midway_report.Csv.field "two\nlines");
  Alcotest.(check string) "carriage return quoted" "\"a\rb\"" (Midway_report.Csv.field "a\rb");
  Alcotest.(check string) "all at once" "\"x,\"\"y\"\"\n\"" (Midway_report.Csv.field "x,\"y\"\n")

let test_paper_data_consistency () =
  (* guards against transcription typos: the published component rows
     must sum to the published totals (Table 4), and Table 5 totals are
     the sum of trapping and collection. *)
  List.iter
    (fun app ->
      let p4 = Midway_report.Paper_data.table4 app in
      let close a b = Float.abs (a -. b) <= 0.15 in
      Alcotest.(check bool)
        (Suite.app_name app ^ " rt table4 components sum")
        true
        (close
           (p4.Midway_report.Paper_data.rt_clean_ms +. p4.Midway_report.Paper_data.rt_dirty_ms
          +. p4.Midway_report.Paper_data.rt_updated_ms)
           p4.Midway_report.Paper_data.rt_total_ms);
      Alcotest.(check bool)
        (Suite.app_name app ^ " vm table4 components sum")
        true
        (close
           (p4.Midway_report.Paper_data.vm_diff_ms +. p4.Midway_report.Paper_data.vm_protect_ms
          +. p4.Midway_report.Paper_data.vm_twin_ms)
           p4.Midway_report.Paper_data.vm_total_ms);
      (* Table 3 must follow from Table 2 counts x Table 1 costs *)
      let p2 = Midway_report.Paper_data.table2 app in
      let p3 = Midway_report.Paper_data.table3 app in
      let rt_ms =
        float_of_int
          ((p2.Midway_report.Paper_data.rt_dirtybits_set * 360)
          + (p2.Midway_report.Paper_data.rt_misclassified * 240))
        /. 1.0e6
      in
      (* cholesky is inconsistent IN THE PAPER: Table 2 prints 1,284,004
         dirtybits set (x 360 ns = 462.2 ms) while Table 3 prints
         485.3 ms, which matches Table 5's 1,349k trapping references
         instead — a published-table discrepancy, so allow it. *)
      let tolerance = if app = Suite.Cholesky then 25.0 else 0.6 in
      Alcotest.(check bool)
        (Printf.sprintf "%s table3 rt from table2 (%.1f vs %.1f)" (Suite.app_name app) rt_ms
           p3.Midway_report.Paper_data.rt_trap_ms)
        true
        (Float.abs (rt_ms -. p3.Midway_report.Paper_data.rt_trap_ms) <= tolerance);
      let vm_ms = float_of_int (p2.Midway_report.Paper_data.vm_write_faults * 1_200_000) /. 1.0e6 in
      Alcotest.(check bool)
        (Printf.sprintf "%s table3 vm from table2 (%.1f vs %.1f)" (Suite.app_name app) vm_ms
           p3.Midway_report.Paper_data.vm_trap_ms)
        true
        (Float.abs (vm_ms -. p3.Midway_report.Paper_data.vm_trap_ms) <= 0.6))
    Suite.apps

let test_markdown () =
  let s = Lazy.force suite in
  let out = Midway_report.Markdown.of_suite s in
  Alcotest.(check bool) "has time table" true (contains out "## Execution time");
  Alcotest.(check bool) "has data table" true (contains out "## Data transferred");
  Alcotest.(check bool) "mentions the apps" true
    (contains out "sor" && contains out "quicksort")

let test_speedup_render () =
  let out =
    Midway_report.Speedup.render ~app:Suite.Sor ~scale:0.05 ~procs:[ 1; 2 ]
  in
  Alcotest.(check bool) "mentions app" true (contains out "sor");
  Alcotest.(check bool) "has speedup column" true (contains out "speedup")

let test_suite_rejects_failures () =
  (* the suite refuses to report unverified runs; simulate by checking the
     exception type is a Failure (we cannot easily force a failure without
     breaking an app, so assert the check function exists via a passing
     run). *)
  let s = Lazy.force suite in
  Alcotest.(check bool) "verified suite" true (List.for_all (fun e -> e.Suite.rt.Midway_apps.Outcome.ok) s.Suite.entries)

let () =
  Alcotest.run "report"
    [
      ( "suite",
        [
          Alcotest.test_case "runs and verifies" `Quick test_suite_runs;
          Alcotest.test_case "app names" `Quick test_app_names_roundtrip;
          Alcotest.test_case "rejects failures" `Quick test_suite_rejects_failures;
        ] );
      ( "tables",
        [
          Alcotest.test_case "table1" `Quick test_table1;
          Alcotest.test_case "table2" `Quick test_table2;
          Alcotest.test_case "table3" `Quick test_table3;
          Alcotest.test_case "table4" `Quick test_table4;
          Alcotest.test_case "table4 quicksort shape" `Slow test_table4_quicksort_shape;
          Alcotest.test_case "table5" `Quick test_table5;
        ] );
      ( "figures",
        [
          Alcotest.test_case "fig2" `Quick test_fig2;
          Alcotest.test_case "sweep endpoints" `Quick test_sweep_endpoints;
          Alcotest.test_case "break-even math" `Quick test_break_even_math;
          Alcotest.test_case "sweep render" `Quick test_sweep_render;
          Alcotest.test_case "speedup render" `Quick test_speedup_render;
          Alcotest.test_case "csv export" `Quick test_csv;
          Alcotest.test_case "csv quoting" `Quick test_csv_quoting;
          Alcotest.test_case "markdown export" `Quick test_markdown;
          Alcotest.test_case "paper data self-consistency" `Quick
            test_paper_data_consistency;
        ] );
    ]
