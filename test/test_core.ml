(* Tests for the core Midway building blocks: ranges, timestamps,
   dirtybit tables (all three trapping modes), the VM detection state and
   synchronization objects. *)

module Range = Midway.Range
module Timestamp = Midway.Timestamp
module Dirtybits = Midway.Dirtybits
module Vm_state = Midway.Vm_state
module Payload = Midway.Payload
module Sync = Midway.Sync
module Config = Midway.Config
module Region = Midway_memory.Region
module Space = Midway_memory.Space
module Counters = Midway_stats.Counters
module Cost_model = Midway_stats.Cost_model

let qtest = QCheck_alcotest.to_alcotest

(* --- Range --------------------------------------------------------------- *)

let range_list =
  QCheck.make
    ~print:(fun rs ->
      String.concat ";"
        (List.map (fun (r : Range.t) -> Printf.sprintf "[%d,%d)" r.Range.addr (Range.limit r)) rs))
    QCheck.Gen.(list_size (int_range 0 8) (map2 (fun a l -> Range.v a l) (int_range 0 100) (int_range 0 30)))

let covers ranges x =
  List.exists (fun (r : Range.t) -> x >= r.Range.addr && x < Range.limit r) ranges

let test_range_basics () =
  let r = Range.v 10 5 in
  Alcotest.(check int) "limit" 15 (Range.limit r);
  Alcotest.(check bool) "not empty" false (Range.is_empty r);
  Alcotest.(check bool) "empty" true (Range.is_empty (Range.v 3 0));
  Alcotest.check_raises "negative" (Invalid_argument "Range.v: negative address or length")
    (fun () -> ignore (Range.v (-1) 5))

let test_normalize_merges () =
  let norm = Range.normalize [ Range.v 0 10; Range.v 10 5; Range.v 30 5; Range.v 2 4 ] in
  Alcotest.(check (list (pair int int)))
    "merged and sorted"
    [ (0, 15); (30, 5) ]
    (List.map (fun (r : Range.t) -> (r.Range.addr, r.Range.len)) norm)

let test_normalize_edge_cases () =
  let pairs rs = List.map (fun (r : Range.t) -> (r.Range.addr, r.Range.len)) rs in
  Alcotest.(check (list (pair int int)))
    "zero-length ranges are dropped" [ (0, 4) ]
    (pairs (Range.normalize [ Range.v 5 0; Range.v 0 4; Range.v 12 0 ]));
  Alcotest.(check (list (pair int int)))
    "all-empty input normalizes to nothing" []
    (pairs (Range.normalize [ Range.v 0 0; Range.v 8 0 ]));
  Alcotest.(check (list (pair int int)))
    "adjacent ranges merge" [ (0, 16) ]
    (pairs (Range.normalize [ Range.v 8 8; Range.v 0 8 ]))

let test_overlaps_edge_cases () =
  Alcotest.(check bool) "proper overlap" true (Range.overlaps (Range.v 0 10) (Range.v 5 10));
  Alcotest.(check bool) "adjacent do not overlap" false (Range.overlaps (Range.v 0 8) (Range.v 8 8));
  Alcotest.(check bool) "empty overlaps nothing" false (Range.overlaps (Range.v 5 0) (Range.v 0 10));
  Alcotest.(check bool) "nothing overlaps empty" false (Range.overlaps (Range.v 0 10) (Range.v 5 0));
  Alcotest.(check bool) "intersect agrees on adjacency" true
    (Range.intersect (Range.v 0 8) (Range.v 8 8) = None)

let normalize_preserves_coverage =
  QCheck.Test.make ~name:"normalize preserves byte coverage" ~count:300 range_list (fun rs ->
      let norm = Range.normalize rs in
      List.for_all (fun x -> covers rs x = covers norm x) (List.init 140 (fun i -> i)))

let normalize_disjoint_sorted =
  QCheck.Test.make ~name:"normalized ranges are disjoint, sorted, nonempty" ~count:300
    range_list (fun rs ->
      let rec check = function
        | (a : Range.t) :: (b : Range.t) :: rest ->
            Range.limit a < b.Range.addr && a.Range.len > 0 && check (b :: rest)
        | [ a ] -> a.Range.len > 0
        | [] -> true
      in
      check (Range.normalize rs))

let subtract_complements_clip =
  QCheck.Test.make ~name:"clip and subtract partition a range" ~count:300
    QCheck.(pair (pair (int_bound 100) (int_bound 30)) range_list)
    (fun ((addr, len), within) ->
      let r = Range.v addr len in
      let within = Range.normalize within in
      let inside = Range.clip r ~within in
      let outside = Range.subtract r ~minus:within in
      List.for_all
        (fun x ->
          let in_r = x >= addr && x < addr + len in
          let in_inside = covers inside x in
          let in_outside = covers outside x in
          (* each byte of r is in exactly one part, bytes outside r in none *)
          if in_r then in_inside <> in_outside && (in_inside = covers within x)
          else (not in_inside) && not in_outside)
        (List.init 140 (fun i -> i)))

let test_contains () =
  let ranges = Range.normalize [ Range.v 0 10; Range.v 20 10 ] in
  Alcotest.(check bool) "inside" true (Range.contains ranges ~addr:2 ~len:5);
  Alcotest.(check bool) "straddles hole" false (Range.contains ranges ~addr:5 ~len:20);
  Alcotest.(check bool) "empty always" true (Range.contains ranges ~addr:500 ~len:0)

let test_iter_lines_widens () =
  let r = Range.v 70 20 in
  (* lines of 64 bytes: range [70, 90) touches line 1 only *)
  let visited = ref [] in
  Range.iter_lines r ~line_size:64 ~f:(fun ~addr ~len -> visited := (addr, len) :: !visited);
  Alcotest.(check (list (pair int int))) "full line extents" [ (64, 64) ] !visited;
  let r2 = Range.v 60 10 in
  let visited2 = ref [] in
  Range.iter_lines r2 ~line_size:64 ~f:(fun ~addr ~len -> visited2 := (addr, len) :: !visited2);
  Alcotest.(check int) "straddling range touches two lines" 2 (List.length !visited2)

let iter_lines_covers =
  QCheck.Test.make ~name:"iter_lines covers the range with whole lines" ~count:300
    QCheck.(triple (int_bound 500) (int_range 1 100) (int_bound 4))
    (fun (addr, len, ls_exp) ->
      let line_size = 8 lsl ls_exp in
      let r = Range.v addr len in
      let visited = ref [] in
      Range.iter_lines r ~line_size ~f:(fun ~addr ~len -> visited := (addr, len) :: !visited);
      let lines = List.rev !visited in
      (* aligned, contiguous, full lines, covering exactly the range *)
      List.for_all (fun (a, l) -> a mod line_size = 0 && l = line_size) lines
      && (match lines with
         | [] -> false
         | (first, _) :: _ ->
             let last, llen = List.nth lines (List.length lines - 1) in
             first <= addr && addr + len <= last + llen
             && List.length lines = ((addr + len - 1) / line_size) - (addr / line_size) + 1))

(* --- Timestamp ------------------------------------------------------------ *)

let test_timestamp_encoding () =
  let nprocs = 8 in
  let t = Timestamp.make ~time:5 ~proc:3 ~nprocs in
  Alcotest.(check int) "time component" 5 (Timestamp.time t ~nprocs);
  Alcotest.(check bool) "is a stamp" true (Timestamp.is_stamp t);
  Alcotest.(check bool) "dirty sentinel is not a stamp" false
    (Timestamp.is_stamp Timestamp.locally_dirty);
  Alcotest.(check bool) "initial exceeds never_seen" true
    (Timestamp.initial > Timestamp.never_seen);
  Alcotest.check_raises "time >= 1" (Invalid_argument "Timestamp.make: time must be >= 1")
    (fun () -> ignore (Timestamp.make ~time:0 ~proc:0 ~nprocs))

let timestamp_total_order =
  QCheck.Test.make ~name:"stamps from distinct (time, proc) pairs are distinct" ~count:300
    QCheck.(pair (pair (int_range 1 1000) (int_bound 7)) (pair (int_range 1 1000) (int_bound 7)))
    (fun ((t1, p1), (t2, p2)) ->
      let a = Timestamp.make ~time:t1 ~proc:p1 ~nprocs:8 in
      let b = Timestamp.make ~time:t2 ~proc:p2 ~nprocs:8 in
      if (t1, p1) = (t2, p2) then a = b
      else a <> b && (t1 >= t2 || a < b) (* later lamport time => larger stamp *))

(* --- Dirtybits -------------------------------------------------------------- *)

let make_region () =
  Region.create ~index:1 ~kind:Region.Shared ~line_size:8 ~region_size:4096 ~nprocs:1

(* Per-line view of the coalesced scan: expand each emitted run back into
   its constituent lines, so expectations stay line-granular. *)
let base_scan db ~region ~ranges ~stamp ~select =
  let emitted = ref [] in
  let counts =
    Dirtybits.scan db
      ~region_of:(fun _ -> region)
      ~ranges ~stamp ~select
      ~emit:(fun ~addr ~len ~ts ~fresh ~lines ->
        let line_len = len / lines in
        for i = 0 to lines - 1 do
          emitted := (addr + (i * line_len), ts, fresh) :: !emitted
        done)
  in
  (counts, List.rev !emitted)

let test_dirtybits_plain_first_transfer () =
  let region = make_region () in
  let db = Dirtybits.create ~mode:Config.Plain ~group:16 in
  let base = Region.base region in
  (* Never-written lines carry the initial timestamp: a requester that has
     seen nothing receives all bound data. *)
  let counts, emitted =
    base_scan db ~region ~ranges:[ Range.v base 32 ] ~stamp:100
      ~select:(Dirtybits.Transfer Timestamp.never_seen)
  in
  Alcotest.(check int) "4 lines scanned clean" 4 counts.Dirtybits.clean_reads;
  Alcotest.(check int) "all emitted" 4 (List.length emitted);
  List.iter (fun (_, ts, fresh) ->
      Alcotest.(check int) "initial ts" Timestamp.initial ts;
      Alcotest.(check bool) "not fresh" false fresh)
    emitted

let test_dirtybits_stamping_and_filter () =
  let region = make_region () in
  let db = Dirtybits.create ~mode:Config.Plain ~group:16 in
  let base = Region.base region in
  Dirtybits.note_write db ~region ~addr:(base + 8) ~len:8;
  Alcotest.(check int) "sentinel written" Timestamp.locally_dirty
    (Dirtybits.line_ts db ~region ~addr:(base + 8));
  let counts, emitted =
    base_scan db ~region ~ranges:[ Range.v base 32 ] ~stamp:50 ~select:(Dirtybits.Transfer 10)
  in
  Alcotest.(check int) "one dirty read" 1 counts.Dirtybits.dirty_reads;
  Alcotest.(check int) "three clean reads" 3 counts.Dirtybits.clean_reads;
  (* initial ts (1) <= 10 filtered out; only the stamped line ships *)
  Alcotest.(check (list (triple int int bool))) "stamped line emitted"
    [ (base + 8, 50, true) ]
    emitted;
  Alcotest.(check int) "sentinel replaced by stamp" 50
    (Dirtybits.line_ts db ~region ~addr:(base + 8));
  (* a requester that has seen ts 50 gets nothing *)
  let _, emitted2 =
    base_scan db ~region ~ranges:[ Range.v base 32 ] ~stamp:60 ~select:(Dirtybits.Transfer 50)
  in
  Alcotest.(check int) "minimal update: nothing new" 0 (List.length emitted2)

let test_dirtybits_fresh_only () =
  let region = make_region () in
  let db = Dirtybits.create ~mode:Config.Plain ~group:16 in
  let base = Region.base region in
  Dirtybits.set_ts db ~region ~addr:base ~ts:40;
  Dirtybits.note_write db ~region ~addr:(base + 16) ~len:8;
  let _, emitted =
    base_scan db ~region ~ranges:[ Range.v base 32 ] ~stamp:99 ~select:Dirtybits.Fresh_only
  in
  Alcotest.(check (list (triple int int bool))) "only locally dirty lines"
    [ (base + 16, 99, true) ]
    emitted

let test_dirtybits_area_write () =
  let region = make_region () in
  let db = Dirtybits.create ~mode:Config.Plain ~group:16 in
  let base = Region.base region in
  Dirtybits.note_write db ~region ~addr:(base + 4) ~len:16 (* straddles lines 0,1,2 *);
  let _, emitted =
    base_scan db ~region ~ranges:[ Range.v base 64 ] ~stamp:7
      ~select:Dirtybits.Fresh_only
  in
  Alcotest.(check int) "three lines dirtied" 3 (List.length emitted)

let test_two_level_skips () =
  let region = make_region () in
  let db = Dirtybits.create ~mode:Config.Two_level ~group:4 in
  let base = Region.base region in
  (* 64 bytes = 8 lines = 2 groups of 4; dirty one line in group 1 *)
  Dirtybits.note_write db ~region ~addr:(base + 40) ~len:8;
  let counts, emitted =
    base_scan db ~region ~ranges:[ Range.v base 64 ] ~stamp:9 ~select:Dirtybits.Fresh_only
  in
  Alcotest.(check int) "two first-level checks" 2 counts.Dirtybits.group_checks;
  Alcotest.(check int) "group 0 skipped" 1 counts.Dirtybits.groups_skipped;
  Alcotest.(check int) "only group 1 lines read" 4
    (counts.Dirtybits.clean_reads + counts.Dirtybits.dirty_reads);
  Alcotest.(check int) "dirty line found" 1 (List.length emitted);
  (* after the scan the group is stamped: a second scan skips both groups *)
  let counts2, _ =
    base_scan db ~region ~ranges:[ Range.v base 64 ] ~stamp:10 ~select:Dirtybits.Fresh_only
  in
  Alcotest.(check int) "both groups skipped now" 2 counts2.Dirtybits.groups_skipped

let two_level_equals_plain =
  (* The two-level organization must emit exactly what plain mode emits
     for any write pattern and any cursor. *)
  QCheck.Test.make ~name:"two-level scan emits the same lines as plain" ~count:200
    QCheck.(pair (list (pair (int_bound 63) (int_range 1 16))) (int_bound 3))
    (fun (writes, round_count) ->
      let region = make_region () in
      let plain = Dirtybits.create ~mode:Config.Plain ~group:4 in
      let two = Dirtybits.create ~mode:Config.Two_level ~group:4 in
      let base = Region.base region in
      let result db =
        let out = ref [] in
        for round = 0 to round_count do
          List.iter
            (fun (off, len) ->
              Dirtybits.note_write db ~region ~addr:(base + (off * 8)) ~len)
            writes;
          let _, emitted =
            base_scan db ~region
              ~ranges:[ Range.v base 512 ]
              ~stamp:(100 + round)
              ~select:(Dirtybits.Transfer (90 + round))
          in
          out := emitted :: !out
        done;
        !out
      in
      result plain = result two)

(* Satellite of the hot-path overhaul: the run-coalesced scan must be an
   emission-batching change only.  For random write patterns, in every
   trapping mode, the runs expanded back to lines must equal a per-line
   oracle (covered addresses, timestamps, freshness), the runs must be
   structurally sound (line-aligned, len = lines * line_size), and the
   scan_counts must match the per-line model. *)
let scan_matches_per_line_oracle =
  QCheck.Test.make ~name:"coalesced scan equals the per-line oracle" ~count:300
    QCheck.(
      triple
        (list_of_size Gen.(int_range 0 12) (pair (int_bound 63) (int_range 1 24)))
        (int_bound 2) (int_bound 3))
    (fun (writes, mode_idx, rounds) ->
      let mode =
        List.nth [ Config.Plain; Config.Two_level; Config.Update_queue ] mode_idx
      in
      let region = make_region () in
      let db = Dirtybits.create ~mode ~group:4 in
      let base = Region.base region in
      let nlines = 64 in
      (* scan 64 lines of 8 bytes *)
      let model = Array.make nlines Timestamp.initial in
      let ok = ref true in
      let fail () = ok := false in
      for round = 0 to rounds do
        let dirtied = Array.make nlines false in
        List.iter
          (fun (off, len) ->
            Dirtybits.note_write db ~region ~addr:(base + (off * 8)) ~len;
            let last = ((off * 8) + len - 1) / 8 in
            for l = off to min last (nlines - 1) do
              dirtied.(l) <- true
            done)
          writes;
        let stamp = 100 + round and cursor = 90 + round in
        let runs = ref [] in
        let counts =
          Dirtybits.scan db
            ~region_of:(fun _ -> region)
            ~ranges:[ Range.v base (nlines * 8) ]
            ~stamp ~select:(Dirtybits.Transfer cursor)
            ~emit:(fun ~addr ~len ~ts ~fresh ~lines ->
              runs := (addr, len, ts, fresh, lines) :: !runs)
        in
        let runs = List.rev !runs in
        (* structural soundness of the runs *)
        List.iter
          (fun (addr, len, _, _, lines) ->
            if lines <= 0 || len <> lines * 8 || (addr - base) mod 8 <> 0 then fail ())
          runs;
        let expanded =
          List.concat_map
            (fun (addr, len, ts, fresh, lines) ->
              let ll = len / lines in
              List.init lines (fun i -> (addr + (i * ll), ts, fresh)))
            runs
        in
        match mode with
        | Config.Update_queue ->
            (* every line written this round emits exactly once, stamped
               fresh (the whole queue drains: the range covers it) *)
            let expected = ref [] in
            for l = nlines - 1 downto 0 do
              if dirtied.(l) then expected := (base + (l * 8), stamp, true) :: !expected
            done;
            if List.sort compare expanded <> List.sort compare !expected then fail ()
        | Config.Plain | Config.Two_level ->
            let expected = ref [] and clean = ref 0 and dirty = ref 0 in
            for l = 0 to nlines - 1 do
              if dirtied.(l) then begin
                incr dirty;
                model.(l) <- stamp;
                if stamp > cursor then expected := (base + (l * 8), stamp, true) :: !expected
              end
              else begin
                incr clean;
                if model.(l) > cursor then
                  expected := (base + (l * 8), model.(l), false) :: !expected
              end
            done;
            if expanded <> List.rev !expected then fail ();
            (* dirty lines are always read (their group's first-level bit
               is set); skipped groups account for the missing cleans *)
            if counts.Dirtybits.dirty_reads <> !dirty then fail ();
            (match mode with
            | Config.Plain ->
                if counts.Dirtybits.clean_reads <> !clean then fail ()
            | Config.Two_level ->
                if
                  counts.Dirtybits.clean_reads + counts.Dirtybits.dirty_reads
                  + (4 * counts.Dirtybits.groups_skipped)
                  <> nlines
                then fail ()
            | Config.Update_queue -> ())
      done;
      !ok)

let test_update_queue_mode () =
  let region = make_region () in
  let db = Dirtybits.create ~mode:Config.Update_queue ~group:4 in
  let base = Region.base region in
  Dirtybits.note_write db ~region ~addr:base ~len:8;
  Dirtybits.note_write db ~region ~addr:(base + 8) ~len:8;
  (* sequential writes coalesce into one queue entry *)
  Alcotest.(check int) "coalesced" 1 (Dirtybits.queue_length db);
  Dirtybits.note_write db ~region ~addr:(base + 100) ~len:8;
  Alcotest.(check int) "non-adjacent appends" 2 (Dirtybits.queue_length db);
  let counts, emitted =
    base_scan db ~region ~ranges:[ Range.v base 16 ] ~stamp:30 ~select:(Dirtybits.Transfer 0)
  in
  Alcotest.(check int) "queue entries consumed" 1 counts.Dirtybits.queue_entries;
  Alcotest.(check int) "two lines emitted" 2 (List.length emitted);
  Alcotest.(check int) "out-of-range entry still queued" 1 (Dirtybits.queue_length db);
  (* consumed entries do not reappear *)
  let _, emitted2 =
    base_scan db ~region ~ranges:[ Range.v base 16 ] ~stamp:31 ~select:(Dirtybits.Transfer 0)
  in
  Alcotest.(check int) "drained" 0 (List.length emitted2)

let test_update_queue_coalescing_boundaries () =
  let region = make_region () in
  let db = Dirtybits.create ~mode:Config.Update_queue ~group:4 in
  let base = Region.base region in
  (* overlapping extends *)
  Dirtybits.note_write db ~region ~addr:base ~len:16;
  Dirtybits.note_write db ~region ~addr:(base + 8) ~len:16;
  Alcotest.(check int) "overlap coalesces" 1 (Dirtybits.queue_length db);
  (* exactly adjacent extends *)
  Dirtybits.note_write db ~region ~addr:(base + 24) ~len:8;
  Alcotest.(check int) "adjacency coalesces" 1 (Dirtybits.queue_length db);
  (* a gap appends *)
  Dirtybits.note_write db ~region ~addr:(base + 64) ~len:8;
  Alcotest.(check int) "gap appends" 2 (Dirtybits.queue_length db)

let test_update_queue_partial_consumption () =
  (* a queued entry straddling the scanned range splits: the inside part
     is consumed, the outside part survives *)
  let region = make_region () in
  let db = Dirtybits.create ~mode:Config.Update_queue ~group:4 in
  let base = Region.base region in
  Dirtybits.note_write db ~region ~addr:base ~len:32;
  let _, emitted =
    base_scan db ~region ~ranges:[ Range.v base 16 ] ~stamp:9 ~select:(Dirtybits.Transfer 0)
  in
  Alcotest.(check int) "two lines from the inside part" 2 (List.length emitted);
  Alcotest.(check int) "outside part survives" 1 (Dirtybits.queue_length db);
  let _, emitted2 =
    base_scan db ~region ~ranges:[ Range.v (base + 16) 16 ] ~stamp:10
      ~select:(Dirtybits.Transfer 0)
  in
  Alcotest.(check int) "outside part eventually consumed" 2 (List.length emitted2);
  Alcotest.(check int) "queue drained" 0 (Dirtybits.queue_length db)

(* --- Vm_state ----------------------------------------------------------- *)

let vm_env () =
  let space = Space.create ~region_size:65536 ~nprocs:2 () in
  let addr = Space.alloc space ~kind:Region.Shared ~line_size:8 4096 in
  let vm = Vm_state.create ~page_size:4096 in
  let counters = Counters.create () in
  (space, addr, vm, counters, Cost_model.default)

let test_vm_fault_once () =
  let space, addr, vm, counters, cost = vm_env () in
  let ns1 = Vm_state.on_write vm ~space ~proc:0 ~counters ~cost ~addr in
  Alcotest.(check int) "first write pays the fault" cost.Cost_model.page_fault_ns ns1;
  Alcotest.(check int) "counted" 1 counters.Counters.write_faults;
  let ns2 = Vm_state.on_write vm ~space ~proc:0 ~counters ~cost ~addr:(addr + 8) in
  Alcotest.(check int) "subsequent writes free" 0 ns2;
  Alcotest.(check int) "still one fault" 1 counters.Counters.write_faults

let test_vm_collect_ships_only_modified () =
  let space, addr, vm, counters, cost = vm_env () in
  ignore (Vm_state.on_write vm ~space ~proc:0 ~counters ~cost ~addr);
  (* values with every byte nonzero, so both 4-byte words of each
     doubleword show up in the diff *)
  Space.set_int space ~proc:0 addr 0x0102030405060708;
  Space.set_int space ~proc:0 (addr + 16) 0x1112131415161718;
  let pieces, _ = Vm_state.collect vm ~space ~proc:0 ~counters ~cost ~ranges:[ Range.v addr 4096 ] in
  Alcotest.(check int) "two modified doublewords shipped" 16 (Payload.pieces_bytes pieces);
  Alcotest.(check int) "one page diffed" 1 counters.Counters.pages_diffed;
  Alcotest.(check int) "page reprotected" 1 counters.Counters.pages_write_protected;
  (* collection cleaned the page: another write faults again *)
  let ns = Vm_state.on_write vm ~space ~proc:0 ~counters ~cost ~addr in
  Alcotest.(check bool) "refaults" true (ns > 0)

let test_vm_pending_reuse () =
  (* Modifications outside the transferred lock's ranges are saved and
     shipped by the next transfer that covers them (the paper's saved
     diff reuse). *)
  let space, addr, vm, counters, cost = vm_env () in
  ignore (Vm_state.on_write vm ~space ~proc:0 ~counters ~cost ~addr);
  Space.set_int space ~proc:0 addr 0x0101010101010101;
  Space.set_int space ~proc:0 (addr + 512) 0x0202020202020202;
  let pieces1, _ =
    Vm_state.collect vm ~space ~proc:0 ~counters ~cost ~ranges:[ Range.v addr 256 ]
  in
  Alcotest.(check int) "only the bound word ships" 8 (Payload.pieces_bytes pieces1);
  Alcotest.(check int) "other modification saved" 1 (Vm_state.pending_pages vm);
  Alcotest.(check int) "one diff so far" 1 counters.Counters.pages_diffed;
  let pieces2, _ =
    Vm_state.collect vm ~space ~proc:0 ~counters ~cost
      ~ranges:[ Range.v (addr + 256) 1024 ]
  in
  Alcotest.(check int) "saved diff shipped without re-diffing" 8
    (Payload.pieces_bytes pieces2);
  Alcotest.(check int) "no second diff" 1 counters.Counters.pages_diffed;
  Alcotest.(check int) "pending drained" 0 (Vm_state.pending_pages vm);
  match pieces2 with
  | [ p ] ->
      Alcotest.(check int) "right address" (addr + 512) p.Payload.addr;
      Alcotest.(check int64) "right data" 0x0202020202020202L (Bytes.get_int64_le p.Payload.data 0)
  | _ -> Alcotest.fail "expected one piece"

let test_vm_stale_pending_superseded () =
  (* Regression for the cholesky corruption: a word is modified, stashed
     as a saved diff by another lock's transfer, modified again and
     re-diffed.  The fresh value must win at the requester. *)
  let space, addr, vm, counters, cost = vm_env () in
  ignore (Vm_state.on_write vm ~space ~proc:0 ~counters ~cost ~addr);
  Space.set_f64 space ~proc:0 (addr + 512) 17.0;
  (* a transfer of a lock NOT covering addr+512 stashes it *)
  ignore (Vm_state.collect vm ~space ~proc:0 ~counters ~cost ~ranges:[ Range.v addr 8 ]);
  Alcotest.(check int) "stashed" 1 (Vm_state.pending_pages vm);
  (* modify the word again (refaults, new twin) *)
  ignore (Vm_state.on_write vm ~space ~proc:0 ~counters ~cost ~addr:(addr + 512));
  Space.set_f64 space ~proc:0 (addr + 512) 16.858259379338133;
  let pieces, _ =
    Vm_state.collect vm ~space ~proc:0 ~counters ~cost ~ranges:[ Range.v (addr + 512) 8 ]
  in
  (* apply to proc 1 in payload order: the fresh value must be final *)
  Payload.write_pieces space ~proc:1 pieces;
  Alcotest.(check (float 0.0)) "fresh value wins" 16.858259379338133
    (Space.get_f64 space ~proc:1 (addr + 512))

let test_vm_discard_pending () =
  let space, addr, vm, counters, cost = vm_env () in
  ignore (Vm_state.on_write vm ~space ~proc:0 ~counters ~cost ~addr);
  Space.set_int space ~proc:0 (addr + 512) 0x0303030303030303;
  ignore (Vm_state.collect vm ~space ~proc:0 ~counters ~cost ~ranges:[ Range.v addr 8 ]);
  Alcotest.(check int) "stashed" 1 (Vm_state.pending_pages vm);
  (* a full transfer of [addr+512, +8) supersedes the stash *)
  Vm_state.discard_pending vm ~ranges:[ Range.v (addr + 512) 8 ];
  Alcotest.(check int) "dropped" 0 (Vm_state.pending_pages vm);
  let pieces, _ =
    Vm_state.collect vm ~space ~proc:0 ~counters ~cost ~ranges:[ Range.v (addr + 512) 8 ]
  in
  Alcotest.(check int) "nothing re-shipped" 0 (Payload.pieces_bytes pieces)

let test_vm_apply_patches_twin () =
  let space, addr, vm, counters, cost = vm_env () in
  (* proc 0 dirties the page, then receives an update for another word *)
  ignore (Vm_state.on_write vm ~space ~proc:0 ~counters ~cost ~addr);
  Space.set_int space ~proc:0 addr 0x0505050505050505;
  let data = Bytes.create 8 in
  Bytes.set_int64_le data 0 (Int64.bits_of_float 99.0);
  let cost_ns =
    Vm_state.apply_pieces vm ~space ~proc:0 ~counters ~cost
      [ { Payload.addr = addr + 64; data } ]
  in
  Alcotest.(check bool) "apply charged" true (cost_ns > 0);
  Alcotest.(check int) "twin patched" 8 counters.Counters.twin_update_bytes;
  (* the incoming update must NOT be collected as a local modification *)
  let pieces, _ = Vm_state.collect vm ~space ~proc:0 ~counters ~cost ~ranges:[ Range.v addr 4096 ] in
  Alcotest.(check int) "only the local write ships" 8 (Payload.pieces_bytes pieces);
  match pieces with
  | [ p ] -> Alcotest.(check int) "local write's address" addr p.Payload.addr
  | _ -> Alcotest.fail "expected exactly the locally modified word"

(* --- Payload -------------------------------------------------------------- *)

let test_payload_sizes () =
  let line = { Payload.addr = 0; len = 64; ts = 5; data = Bytes.make 64 ' '; descs = 1 } in
  Alcotest.(check int) "rt bytes" 128 (Payload.app_bytes (Payload.Rt_lines [ line; line ]));
  Alcotest.(check int) "rt descriptors" 2 (Payload.descriptors (Payload.Rt_lines [ line; line ]));
  (* a coalesced run still stands for its per-line descriptors on the wire *)
  let run = { Payload.addr = 0; len = 256; ts = 5; data = Bytes.make 256 ' '; descs = 4 } in
  Alcotest.(check int) "run descriptors" 5 (Payload.descriptors (Payload.Rt_lines [ line; run ]));
  let piece = { Payload.addr = 0; data = Bytes.make 10 ' ' } in
  let update = { Payload.incarnation = 1; producer = 0; pieces = [ piece; piece ] } in
  Alcotest.(check int) "vm bytes" 20 (Payload.app_bytes (Payload.Vm_updates [ update ]));
  Alcotest.(check int) "empty" 0 (Payload.app_bytes Payload.Empty)

let test_payload_read_write_pieces () =
  let space = Space.create ~nprocs:2 () in
  let a = Space.alloc space ~kind:Region.Shared 64 in
  Space.set_int space ~proc:0 a 7;
  Space.set_int space ~proc:0 (a + 32) 9;
  let pieces = Payload.read_pieces space ~proc:0 [ Range.v a 8; Range.v (a + 32) 8 ] in
  Payload.write_pieces space ~proc:1 pieces;
  Alcotest.(check int) "first" 7 (Space.get_int space ~proc:1 a);
  Alcotest.(check int) "second" 9 (Space.get_int space ~proc:1 (a + 32))

(* --- Sync ------------------------------------------------------------------ *)

let test_lock_queue_order () =
  let l = Sync.make_lock ~lid:0 ~nprocs:4 ~owner:0 ~ranges:[ Range.v 0 8 ] in
  Sync.enqueue_request l ~proc:2 ~arrival:50 ~mode:Sync.Exclusive ~waker:(fun ~at:_ -> ());
  Sync.enqueue_request l ~proc:1 ~arrival:30 ~mode:Sync.Shared ~waker:(fun ~at:_ -> ());
  Sync.enqueue_request l ~proc:3 ~arrival:50 ~mode:Sync.Exclusive ~waker:(fun ~at:_ -> ());
  Alcotest.(check (list (pair int int))) "arrival order, processor tie-break"
    [ (1, 30); (2, 50); (3, 50) ]
    (List.map (fun (p, a, _, _) -> (p, a)) l.Sync.pending)

let test_lock_queue_tiebreak_determinism () =
  (* Equal arrival times are broken by processor id, so the grant order
     does not depend on the order the requests were enqueued in. *)
  let build order =
    let l = Sync.make_lock ~lid:0 ~nprocs:4 ~owner:0 ~ranges:[ Range.v 0 8 ] in
    List.iter
      (fun proc ->
        Sync.enqueue_request l ~proc ~arrival:50 ~mode:Sync.Exclusive ~waker:(fun ~at:_ -> ()))
      order;
    List.map (fun (p, a, _, _) -> (p, a)) l.Sync.pending
  in
  let expected = [ (1, 50); (2, 50); (3, 50) ] in
  Alcotest.(check (list (pair int int))) "ascending insertion" expected (build [ 1; 2; 3 ]);
  Alcotest.(check (list (pair int int))) "descending insertion" expected (build [ 3; 2; 1 ]);
  Alcotest.(check (list (pair int int))) "shuffled insertion" expected (build [ 2; 3; 1 ])

let test_rebind_resets_history () =
  let l = Sync.make_lock ~lid:0 ~nprocs:2 ~owner:0 ~ranges:[ Range.v 0 8 ] in
  l.Sync.rt_last_seen.(1) <- 77;
  l.Sync.incarnation <- 5;
  l.Sync.vm_log <- [ (4, Sync.Pieces []) ];
  Hashtbl.replace l.Sync.rt_history 0 42;
  Sync.rebind_lock l ~nprocs:2 ~ranges:[ Range.v 100 16 ];
  Alcotest.(check int) "cursor reset" Timestamp.never_seen l.Sync.rt_last_seen.(1);
  Alcotest.(check int) "per-line history cleared" 0 (Hashtbl.length l.Sync.rt_history);
  Alcotest.(check int) "incarnation bumped" 6 l.Sync.incarnation;
  Alcotest.(check bool) "full marker recorded" true
    (match l.Sync.vm_log with [ (5, Sync.Full_marker) ] -> true | _ -> false);
  Alcotest.(check int) "new binding" 16 (Sync.lock_bound_bytes l)

let test_barrier_validation () =
  Alcotest.check_raises "participants" (Invalid_argument "Sync.make_barrier: participants out of range")
    (fun () -> ignore (Sync.make_barrier ~bid:0 ~nprocs:2 ~participants:3 ~manager:0 ~ranges:[]));
  Alcotest.check_raises "manager" (Invalid_argument "Sync.make_barrier: manager out of range")
    (fun () -> ignore (Sync.make_barrier ~bid:0 ~nprocs:2 ~participants:2 ~manager:5 ~ranges:[]))

(* --- Trace -------------------------------------------------------------------- *)

let test_trace_ring () =
  let tr = Midway.Trace.create ~capacity:3 in
  Alcotest.(check int) "empty" 0 (Midway.Trace.length tr);
  for i = 1 to 5 do
    Midway.Trace.record tr (Midway.Trace.Lock_local { t = i; lock = 0; proc = 0 })
  done;
  Alcotest.(check int) "capped" 3 (Midway.Trace.length tr);
  Alcotest.(check int) "counts drops" 5 (Midway.Trace.total tr);
  Alcotest.(check (list int)) "oldest first, oldest dropped" [ 3; 4; 5 ]
    (List.map Midway.Trace.event_time (Midway.Trace.events tr))

let test_trace_wraparound_boundaries () =
  (* Walk the ring through several full revolutions, checking total vs
     length and the oldest-first window at every step — off-by-ones at
     the wrap point would show up as a shifted or reordered window. *)
  let cap = 3 in
  let tr = Midway.Trace.create ~capacity:cap in
  for i = 0 to 9 do
    Midway.Trace.record tr (Midway.Trace.Lock_local { t = i; lock = 0; proc = 0 });
    let expect_len = min (i + 1) cap in
    Alcotest.(check int) (Printf.sprintf "length after %d records" (i + 1)) expect_len
      (Midway.Trace.length tr);
    Alcotest.(check int) (Printf.sprintf "total after %d records" (i + 1)) (i + 1)
      (Midway.Trace.total tr);
    let expect_times = List.init expect_len (fun k -> i + 1 - expect_len + k) in
    Alcotest.(check (list int)) (Printf.sprintf "window after %d records" (i + 1)) expect_times
      (List.map Midway.Trace.event_time (Midway.Trace.events tr))
  done;
  Alcotest.(check (list int)) "three full revolutions end oldest-first" [ 7; 8; 9 ]
    (List.map Midway.Trace.event_time (Midway.Trace.events tr))

let test_trace_capacity_one () =
  let tr = Midway.Trace.create ~capacity:1 in
  for i = 1 to 4 do
    Midway.Trace.record tr (Midway.Trace.Lock_local { t = i; lock = 0; proc = 0 })
  done;
  Alcotest.(check int) "length stays 1" 1 (Midway.Trace.length tr);
  Alcotest.(check int) "total counts every record" 4 (Midway.Trace.total tr);
  Alcotest.(check (list int)) "only the newest survives" [ 4 ]
    (List.map Midway.Trace.event_time (Midway.Trace.events tr))

let test_trace_disabled () =
  let tr = Midway.Trace.create ~capacity:0 in
  for i = 1 to 3 do
    Midway.Trace.record tr (Midway.Trace.Lock_local { t = i; lock = 0; proc = 0 })
  done;
  Alcotest.(check int) "nothing retained" 0 (Midway.Trace.length tr);
  (* total counts every event offered, even those a disabled ring drops:
     `total - length` is the drop count callers report *)
  Alcotest.(check int) "total still counts drops" 3 (Midway.Trace.total tr);
  Alcotest.(check (list int)) "no events" []
    (List.map Midway.Trace.event_time (Midway.Trace.events tr))

let test_trace_render () =
  let tr = Midway.Trace.create ~capacity:8 in
  Midway.Trace.record tr
    (Midway.Trace.Lock_granted
       { t = 1_000; lock = 2; from_ = 0; to_ = 1; shared = false; payload_bytes = 64 });
  Midway.Trace.record tr
    (Midway.Trace.Barrier_completed { t = 2_000; barrier = 5; episode = 3 });
  let s = Midway.Trace.dump tr in
  let contains needle =
    let n = String.length needle and h = String.length s in
    let rec go i = i + n <= h && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "grant rendered" true (contains "p0 -> p1");
  Alcotest.(check bool) "barrier rendered" true (contains "episode 3")

(* --- Config ------------------------------------------------------------------ *)

let test_config () =
  List.iter
    (fun (s, b) ->
      Alcotest.(check bool) ("parse " ^ s) true (Config.backend_of_string s = Ok b))
    [ ("rt", Config.Rt); ("vm", Config.Vm); ("blast", Config.Blast);
      ("standalone", Config.Standalone); ("uni", Config.Standalone) ];
  Alcotest.(check bool) "reject junk" true
    (match Config.backend_of_string "nope" with Error _ -> true | Ok _ -> false);
  (* names are matched exactly: whitespace and case drift are rejected
     with a did-you-mean hint, and every error lists the valid names *)
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun s ->
      match Config.backend_of_string s with
      | Ok _ -> Alcotest.failf "%S must be rejected (exact matching)" s
      | Error msg ->
          Alcotest.(check bool) (Printf.sprintf "%S gets a did-you-mean" s) true
            (contains msg "did you mean");
          Alcotest.(check bool) (Printf.sprintf "%S lists valid names" s) true
            (contains msg "standalone"))
    [ " rt"; "rt "; "RT"; "Vm"; "\tvm"; "BLAST" ];
  (match Config.backend_of_string "nope" with
  | Ok _ -> Alcotest.fail "junk accepted"
  | Error msg ->
      Alcotest.(check bool) "junk error lists valid names" true (contains msg "vm-fine"));
  let cfg = Config.make Config.Rt ~nprocs:8 in
  Alcotest.(check int) "nprocs" 8 cfg.Config.nprocs;
  Alcotest.(check string) "name round trip" "rt" (Config.backend_name cfg.Config.backend);
  Alcotest.check_raises "nprocs positive" (Invalid_argument "Config.make: nprocs must be positive")
    (fun () -> ignore (Config.make Config.Rt ~nprocs:0))

let () =
  Alcotest.run "core"
    [
      ( "range",
        [
          Alcotest.test_case "basics" `Quick test_range_basics;
          Alcotest.test_case "normalize merges" `Quick test_normalize_merges;
          Alcotest.test_case "normalize edge cases" `Quick test_normalize_edge_cases;
          Alcotest.test_case "overlaps edge cases" `Quick test_overlaps_edge_cases;
          Alcotest.test_case "contains" `Quick test_contains;
          Alcotest.test_case "iter_lines widens" `Quick test_iter_lines_widens;
          qtest normalize_preserves_coverage;
          qtest normalize_disjoint_sorted;
          qtest subtract_complements_clip;
          qtest iter_lines_covers;
        ] );
      ( "timestamp",
        [
          Alcotest.test_case "encoding" `Quick test_timestamp_encoding;
          qtest timestamp_total_order;
        ] );
      ( "dirtybits",
        [
          Alcotest.test_case "first transfer ships all" `Quick test_dirtybits_plain_first_transfer;
          Alcotest.test_case "stamping and cursor filter" `Quick test_dirtybits_stamping_and_filter;
          Alcotest.test_case "fresh-only selection" `Quick test_dirtybits_fresh_only;
          Alcotest.test_case "area writes dirty every line" `Quick test_dirtybits_area_write;
          Alcotest.test_case "two-level skipping" `Quick test_two_level_skips;
          Alcotest.test_case "update-queue mode" `Quick test_update_queue_mode;
          Alcotest.test_case "update-queue coalescing" `Quick
            test_update_queue_coalescing_boundaries;
          Alcotest.test_case "update-queue partial consumption" `Quick
            test_update_queue_partial_consumption;
          qtest two_level_equals_plain;
          qtest scan_matches_per_line_oracle;
        ] );
      ( "vm_state",
        [
          Alcotest.test_case "fault once per page" `Quick test_vm_fault_once;
          Alcotest.test_case "collect ships only modified" `Quick test_vm_collect_ships_only_modified;
          Alcotest.test_case "saved diff reuse" `Quick test_vm_pending_reuse;
          Alcotest.test_case "stale pending superseded" `Quick test_vm_stale_pending_superseded;
          Alcotest.test_case "discard pending" `Quick test_vm_discard_pending;
          Alcotest.test_case "apply patches twin" `Quick test_vm_apply_patches_twin;
        ] );
      ( "payload",
        [
          Alcotest.test_case "sizes" `Quick test_payload_sizes;
          Alcotest.test_case "read/write pieces" `Quick test_payload_read_write_pieces;
        ] );
      ( "sync",
        [
          Alcotest.test_case "queue order" `Quick test_lock_queue_order;
          Alcotest.test_case "queue tie-break determinism" `Quick
            test_lock_queue_tiebreak_determinism;
          Alcotest.test_case "rebind resets history" `Quick test_rebind_resets_history;
          Alcotest.test_case "barrier validation" `Quick test_barrier_validation;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring semantics" `Quick test_trace_ring;
          Alcotest.test_case "wraparound boundaries" `Quick test_trace_wraparound_boundaries;
          Alcotest.test_case "capacity one" `Quick test_trace_capacity_one;
          Alcotest.test_case "disabled" `Quick test_trace_disabled;
          Alcotest.test_case "rendering" `Quick test_trace_render;
        ] );
      ("config", [ Alcotest.test_case "parsing and construction" `Quick test_config ]);
    ]
