(* Tests for the discrete-event engine: clock accounting, min-clock
   scheduling, block/wake, determinism and deadlock detection. *)

module Engine = Midway_sched.Engine

let qtest = QCheck_alcotest.to_alcotest

let test_charge_and_elapsed () =
  let e = Engine.create ~nprocs:2 in
  Engine.spawn e 0 (fun p -> Engine.charge p 100);
  Engine.spawn e 1 (fun p -> Engine.charge p 250);
  Engine.run e;
  Alcotest.(check int) "p0 clock" 100 (Engine.clock_of e 0);
  Alcotest.(check int) "p1 clock" 250 (Engine.clock_of e 1);
  Alcotest.(check int) "elapsed is the max" 250 (Engine.elapsed e)

let test_negative_charge () =
  let e = Engine.create ~nprocs:1 in
  Engine.spawn e 0 (fun p ->
      Alcotest.check_raises "negative" (Invalid_argument "Engine.charge: negative charge")
        (fun () -> Engine.charge p (-1)));
  Engine.run e

let test_min_clock_yield_order () =
  (* Three processors record the order their post-yield sections run;
     with distinct clocks the order must follow virtual time. *)
  let e = Engine.create ~nprocs:3 in
  let order = ref [] in
  let body delay p =
    Engine.charge p delay;
    Engine.yield p;
    order := Engine.proc_id p :: !order
  in
  Engine.spawn e 0 (body 300);
  Engine.spawn e 1 (body 100);
  Engine.spawn e 2 (body 200);
  Engine.run e;
  Alcotest.(check (list int)) "virtual-time order" [ 1; 2; 0 ] (List.rev !order)

let test_block_and_wake () =
  let e = Engine.create ~nprocs:2 in
  let waker = ref None in
  let woke_at = ref 0 in
  Engine.spawn e 0 (fun p ->
      Engine.block p ~setup:(fun ~wake -> waker := Some wake);
      woke_at := Engine.clock p);
  Engine.spawn e 1 (fun p ->
      Engine.charge p 500;
      Engine.yield p;
      (Option.get !waker) ~at:700);
  Engine.run e;
  Alcotest.(check int) "blocked fiber resumed at wake time" 700 !woke_at;
  Alcotest.(check int) "clock advanced to wake time" 700 (Engine.clock_of e 0)

let test_wake_does_not_rewind () =
  let e = Engine.create ~nprocs:2 in
  let waker = ref None in
  Engine.spawn e 0 (fun p ->
      Engine.charge p 1_000;
      Engine.block p ~setup:(fun ~wake -> waker := Some wake));
  Engine.spawn e 1 (fun p ->
      Engine.yield p;
      (* wake time in the blocked fiber's past: clock must not go back *)
      (Option.get !waker) ~at:10);
  Engine.run e;
  Alcotest.(check int) "clock not rewound" 1_000 (Engine.clock_of e 0)

let test_double_wake_rejected () =
  let e = Engine.create ~nprocs:2 in
  let waker = ref None in
  let failed = ref false in
  Engine.spawn e 0 (fun p -> Engine.block p ~setup:(fun ~wake -> waker := Some wake));
  Engine.spawn e 1 (fun p ->
      Engine.yield p;
      let w = Option.get !waker in
      w ~at:5;
      (try w ~at:6 with Invalid_argument _ -> failed := true));
  Engine.run e;
  Alcotest.(check bool) "second wake rejected" true !failed

(* A blocked fiber's reason string surfaces in the deadlock message, and
   is cleared once the fiber is woken. *)
let test_deadlock_blocked_reason () =
  let e = Engine.create ~nprocs:3 in
  let waker = ref None in
  Engine.spawn e 0 (fun p ->
      Engine.block p ~reason:"acquire of lock 7" ~setup:(fun ~wake:_ -> ()));
  Engine.spawn e 1 (fun p ->
      (* woken once, then wedged with no reason given *)
      Engine.block p ~reason:"first wait" ~setup:(fun ~wake -> waker := Some wake);
      Engine.block p ~setup:(fun ~wake:_ -> ()));
  Engine.spawn e 2 (fun p ->
      Engine.charge p 5;
      (Option.get !waker) ~at:10);
  try
    Engine.run e;
    Alcotest.fail "expected Deadlock"
  with Engine.Deadlock msg ->
    let has sub =
      let n = String.length sub and h = String.length msg in
      let rec go i = i + n <= h && (String.sub msg i n = sub || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "reason included" true (has "p0@0ns (blocked in acquire of lock 7)");
    Alcotest.(check bool) "cleared on wake" true (not (has "first wait"))

let test_deadlock_detection () =
  let e = Engine.create ~nprocs:2 in
  Engine.spawn e 0 (fun p -> Engine.block p ~setup:(fun ~wake:_ -> ()));
  Engine.spawn e 1 (fun p -> Engine.charge p 42);
  try
    Engine.run e;
    Alcotest.fail "expected Deadlock"
  with Engine.Deadlock msg ->
    Alcotest.(check bool) "names the stuck processor" true
      (String.length msg > 0
      &&
      let has sub =
        let n = String.length sub and h = String.length msg in
        let rec go i = i + n <= h && (String.sub msg i n = sub || go (i + 1)) in
        go 0
      in
      has "p0")

let test_spawn_validation () =
  let e = Engine.create ~nprocs:1 in
  Engine.spawn e 0 (fun _ -> ());
  Alcotest.check_raises "double spawn"
    (Invalid_argument "Engine.spawn: processor already spawned") (fun () ->
      Engine.spawn e 0 (fun _ -> ()));
  Alcotest.check_raises "out of range" (Invalid_argument "Engine.spawn: processor out of range")
    (fun () -> Engine.spawn e 1 (fun _ -> ()))

let test_run_once () =
  let e = Engine.create ~nprocs:1 in
  Engine.spawn e 0 (fun _ -> ());
  Engine.run e;
  Alcotest.check_raises "second run" (Invalid_argument "Engine.run: engine already ran")
    (fun () -> Engine.run e)

let test_exception_propagates () =
  let e = Engine.create ~nprocs:1 in
  Engine.spawn e 0 (fun _ -> failwith "app bug");
  Alcotest.check_raises "fiber exception escapes run" (Failure "app bug") (fun () ->
      Engine.run e)

let test_ping_pong () =
  (* Two fibers hand a token back and forth with increasing wake times:
     exercises repeated block/wake cycles on the same fibers. *)
  let e = Engine.create ~nprocs:2 in
  let wakers = [| None; None |] in
  let hops = ref 0 in
  let rec body p =
    if !hops < 10 then begin
      incr hops;
      let me = Engine.proc_id p in
      let other = 1 - me in
      (match wakers.(other) with
      | Some w ->
          wakers.(other) <- None;
          w ~at:(Engine.clock p + 10)
      | None -> ());
      Engine.block p ~setup:(fun ~wake -> wakers.(me) <- Some wake);
      body p
    end
    else
      match wakers.(1 - Engine.proc_id p) with
      | Some w ->
          wakers.(1 - Engine.proc_id p) <- None;
          w ~at:(Engine.clock p)
      | None -> ()
  in
  Engine.spawn e 0 (fun p ->
      (* p0 kicks things off by waking p1 after its block is set up *)
      Engine.charge p 1;
      body p);
  Engine.spawn e 1 (fun p ->
      Engine.yield p;
      body p);
  (try Engine.run e with Engine.Deadlock _ -> ());
  Alcotest.(check bool) "token moved" true (!hops >= 10)

let engine_deterministic =
  QCheck.Test.make ~name:"identical programs give identical schedules" ~count:50
    QCheck.(list_of_size (Gen.int_range 1 8) (int_bound 1000))
    (fun charges ->
      let run_once () =
        let n = List.length charges in
        let e = Engine.create ~nprocs:n in
        let trace = ref [] in
        List.iteri
          (fun i c ->
            Engine.spawn e i (fun p ->
                Engine.charge p c;
                Engine.yield p;
                trace := (i, Engine.clock p) :: !trace))
          charges;
        Engine.run e;
        !trace
      in
      run_once () = run_once ())

let random_wake_graph =
  (* random dependency chains: each fiber (except 0) blocks until its
     predecessor wakes it after a random charge; everything must finish
     with nondecreasing clocks along the chain *)
  QCheck.Test.make ~name:"random wake chains complete in causal order" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 7) (int_range 1 1_000))
    (fun charges ->
      let n = List.length charges + 1 in
      let e = Engine.create ~nprocs:n in
      let wakers = Array.make n None in
      let finish = Array.make n 0 in
      Engine.spawn e 0 (fun p ->
          Engine.charge p 10;
          Engine.yield p;
          (match wakers.(1) with
          | Some w -> w ~at:(Engine.clock p + 5)
          | None -> ());
          finish.(0) <- Engine.clock p);
      List.iteri
        (fun i charge ->
          let id = i + 1 in
          Engine.spawn e id (fun p ->
              Engine.block p ~setup:(fun ~wake -> wakers.(id) <- Some wake);
              Engine.charge p charge;
              if id + 1 < n then begin
                Engine.yield p;
                match wakers.(id + 1) with
                | Some w -> w ~at:(Engine.clock p + 5)
                | None -> ()
              end;
              finish.(id) <- Engine.clock p))
        charges;
      (* fiber id+1 must be woken only after fiber id set up its waker;
         spawn order guarantees that because fiber id blocks first *)
      (try Engine.run e with Engine.Deadlock _ -> ());
      let rec nondecreasing i =
        i + 1 >= n || (finish.(i) <= finish.(i + 1) && nondecreasing (i + 1))
      in
      nondecreasing 0)

let test_proc_accessor_bounds () =
  let e = Engine.create ~nprocs:2 in
  ignore (Engine.proc e 0);
  ignore (Engine.proc e 1);
  Alcotest.check_raises "out of range" (Invalid_argument "Engine.proc: index out of range")
    (fun () -> ignore (Engine.proc e 2))

let () =
  Alcotest.run "sched"
    [
      ( "engine",
        [
          Alcotest.test_case "charge and elapsed" `Quick test_charge_and_elapsed;
          Alcotest.test_case "negative charge" `Quick test_negative_charge;
          Alcotest.test_case "min-clock yield order" `Quick test_min_clock_yield_order;
          Alcotest.test_case "block and wake" `Quick test_block_and_wake;
          Alcotest.test_case "wake never rewinds" `Quick test_wake_does_not_rewind;
          Alcotest.test_case "double wake rejected" `Quick test_double_wake_rejected;
          Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
          Alcotest.test_case "deadlock blocked reason" `Quick test_deadlock_blocked_reason;
          Alcotest.test_case "spawn validation" `Quick test_spawn_validation;
          Alcotest.test_case "run once" `Quick test_run_once;
          Alcotest.test_case "exceptions propagate" `Quick test_exception_propagates;
          Alcotest.test_case "ping pong" `Quick test_ping_pong;
          qtest engine_deterministic;
          qtest random_wake_graph;
          Alcotest.test_case "proc accessor bounds" `Quick test_proc_accessor_bounds;
        ] );
    ]
