(* Tests for the discrete-event engine: clock accounting, min-clock
   scheduling, block/wake, determinism and deadlock detection. *)

module Engine = Midway_sched.Engine

let qtest = QCheck_alcotest.to_alcotest

let test_charge_and_elapsed () =
  let e = Engine.create ~nprocs:2 () in
  Engine.spawn e 0 (fun p -> Engine.charge p 100);
  Engine.spawn e 1 (fun p -> Engine.charge p 250);
  Engine.run e;
  Alcotest.(check int) "p0 clock" 100 (Engine.clock_of e 0);
  Alcotest.(check int) "p1 clock" 250 (Engine.clock_of e 1);
  Alcotest.(check int) "elapsed is the max" 250 (Engine.elapsed e)

let test_negative_charge () =
  let e = Engine.create ~nprocs:1 () in
  Engine.spawn e 0 (fun p ->
      Alcotest.check_raises "negative" (Invalid_argument "Engine.charge: negative charge")
        (fun () -> Engine.charge p (-1)));
  Engine.run e

let test_min_clock_yield_order () =
  (* Three processors record the order their post-yield sections run;
     with distinct clocks the order must follow virtual time. *)
  let e = Engine.create ~nprocs:3 () in
  let order = ref [] in
  let body delay p =
    Engine.charge p delay;
    Engine.yield p;
    order := Engine.proc_id p :: !order
  in
  Engine.spawn e 0 (body 300);
  Engine.spawn e 1 (body 100);
  Engine.spawn e 2 (body 200);
  Engine.run e;
  Alcotest.(check (list int)) "virtual-time order" [ 1; 2; 0 ] (List.rev !order)

let test_block_and_wake () =
  let e = Engine.create ~nprocs:2 () in
  let waker = ref None in
  let woke_at = ref 0 in
  Engine.spawn e 0 (fun p ->
      Engine.block p ~setup:(fun ~wake -> waker := Some wake);
      woke_at := Engine.clock p);
  Engine.spawn e 1 (fun p ->
      Engine.charge p 500;
      Engine.yield p;
      (Option.get !waker) ~at:700);
  Engine.run e;
  Alcotest.(check int) "blocked fiber resumed at wake time" 700 !woke_at;
  Alcotest.(check int) "clock advanced to wake time" 700 (Engine.clock_of e 0)

let test_wake_does_not_rewind () =
  let e = Engine.create ~nprocs:2 () in
  let waker = ref None in
  Engine.spawn e 0 (fun p ->
      Engine.charge p 1_000;
      Engine.block p ~setup:(fun ~wake -> waker := Some wake));
  Engine.spawn e 1 (fun p ->
      Engine.yield p;
      (* wake time in the blocked fiber's past: clock must not go back *)
      (Option.get !waker) ~at:10);
  Engine.run e;
  Alcotest.(check int) "clock not rewound" 1_000 (Engine.clock_of e 0)

let test_double_wake_rejected () =
  let e = Engine.create ~nprocs:2 () in
  let waker = ref None in
  let failed = ref false in
  Engine.spawn e 0 (fun p -> Engine.block p ~setup:(fun ~wake -> waker := Some wake));
  Engine.spawn e 1 (fun p ->
      Engine.yield p;
      let w = Option.get !waker in
      w ~at:5;
      (try w ~at:6 with Invalid_argument _ -> failed := true));
  Engine.run e;
  Alcotest.(check bool) "second wake rejected" true !failed

(* A blocked fiber's reason string surfaces in the deadlock message, and
   is cleared once the fiber is woken. *)
let test_deadlock_blocked_reason () =
  let e = Engine.create ~nprocs:3 () in
  let waker = ref None in
  Engine.spawn e 0 (fun p ->
      Engine.block p ~reason:"acquire of lock 7" ~setup:(fun ~wake:_ -> ()));
  Engine.spawn e 1 (fun p ->
      (* woken once, then wedged with no reason given *)
      Engine.block p ~reason:"first wait" ~setup:(fun ~wake -> waker := Some wake);
      Engine.block p ~setup:(fun ~wake:_ -> ()));
  Engine.spawn e 2 (fun p ->
      Engine.charge p 5;
      (Option.get !waker) ~at:10);
  try
    Engine.run e;
    Alcotest.fail "expected Deadlock"
  with Engine.Deadlock msg ->
    let has sub =
      let n = String.length sub and h = String.length msg in
      let rec go i = i + n <= h && (String.sub msg i n = sub || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "reason included" true (has "p0@0ns (blocked in acquire of lock 7)");
    Alcotest.(check bool) "cleared on wake" true (not (has "first wait"))

let test_deadlock_detection () =
  let e = Engine.create ~nprocs:2 () in
  Engine.spawn e 0 (fun p -> Engine.block p ~setup:(fun ~wake:_ -> ()));
  Engine.spawn e 1 (fun p -> Engine.charge p 42);
  try
    Engine.run e;
    Alcotest.fail "expected Deadlock"
  with Engine.Deadlock msg ->
    Alcotest.(check bool) "names the stuck processor" true
      (String.length msg > 0
      &&
      let has sub =
        let n = String.length sub and h = String.length msg in
        let rec go i = i + n <= h && (String.sub msg i n = sub || go (i + 1)) in
        go 0
      in
      has "p0")

let test_spawn_validation () =
  let e = Engine.create ~nprocs:1 () in
  Engine.spawn e 0 (fun _ -> ());
  Alcotest.check_raises "double spawn"
    (Invalid_argument "Engine.spawn: processor already spawned") (fun () ->
      Engine.spawn e 0 (fun _ -> ()));
  Alcotest.check_raises "out of range" (Invalid_argument "Engine.spawn: processor out of range")
    (fun () -> Engine.spawn e 1 (fun _ -> ()))

let test_run_once () =
  let e = Engine.create ~nprocs:1 () in
  Engine.spawn e 0 (fun _ -> ());
  Engine.run e;
  Alcotest.check_raises "second run" (Invalid_argument "Engine.run: engine already ran")
    (fun () -> Engine.run e)

let test_exception_propagates () =
  let e = Engine.create ~nprocs:1 () in
  Engine.spawn e 0 (fun _ -> failwith "app bug");
  Alcotest.check_raises "fiber exception escapes run" (Failure "app bug") (fun () ->
      Engine.run e)

let test_ping_pong () =
  (* Two fibers hand a token back and forth with increasing wake times:
     exercises repeated block/wake cycles on the same fibers. *)
  let e = Engine.create ~nprocs:2 () in
  let wakers = [| None; None |] in
  let hops = ref 0 in
  let rec body p =
    if !hops < 10 then begin
      incr hops;
      let me = Engine.proc_id p in
      let other = 1 - me in
      (match wakers.(other) with
      | Some w ->
          wakers.(other) <- None;
          w ~at:(Engine.clock p + 10)
      | None -> ());
      Engine.block p ~setup:(fun ~wake -> wakers.(me) <- Some wake);
      body p
    end
    else
      match wakers.(1 - Engine.proc_id p) with
      | Some w ->
          wakers.(1 - Engine.proc_id p) <- None;
          w ~at:(Engine.clock p)
      | None -> ()
  in
  Engine.spawn e 0 (fun p ->
      (* p0 kicks things off by waking p1 after its block is set up *)
      Engine.charge p 1;
      body p);
  Engine.spawn e 1 (fun p ->
      Engine.yield p;
      body p);
  (try Engine.run e with Engine.Deadlock _ -> ());
  Alcotest.(check bool) "token moved" true (!hops >= 10)

let engine_deterministic =
  QCheck.Test.make ~name:"identical programs give identical schedules" ~count:50
    QCheck.(list_of_size (Gen.int_range 1 8) (int_bound 1000))
    (fun charges ->
      let run_once () =
        let n = List.length charges in
        let e = Engine.create ~nprocs:n () in
        let trace = ref [] in
        List.iteri
          (fun i c ->
            Engine.spawn e i (fun p ->
                Engine.charge p c;
                Engine.yield p;
                trace := (i, Engine.clock p) :: !trace))
          charges;
        Engine.run e;
        !trace
      in
      run_once () = run_once ())

let random_wake_graph =
  (* random dependency chains: each fiber (except 0) blocks until its
     predecessor wakes it after a random charge; everything must finish
     with nondecreasing clocks along the chain *)
  QCheck.Test.make ~name:"random wake chains complete in causal order" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 7) (int_range 1 1_000))
    (fun charges ->
      let n = List.length charges + 1 in
      let e = Engine.create ~nprocs:n () in
      let wakers = Array.make n None in
      let finish = Array.make n 0 in
      Engine.spawn e 0 (fun p ->
          Engine.charge p 10;
          Engine.yield p;
          (match wakers.(1) with
          | Some w -> w ~at:(Engine.clock p + 5)
          | None -> ());
          finish.(0) <- Engine.clock p);
      List.iteri
        (fun i charge ->
          let id = i + 1 in
          Engine.spawn e id (fun p ->
              Engine.block p ~setup:(fun ~wake -> wakers.(id) <- Some wake);
              Engine.charge p charge;
              if id + 1 < n then begin
                Engine.yield p;
                match wakers.(id + 1) with
                | Some w -> w ~at:(Engine.clock p + 5)
                | None -> ()
              end;
              finish.(id) <- Engine.clock p))
        charges;
      (* fiber id+1 must be woken only after fiber id set up its waker;
         spawn order guarantees that because fiber id blocks first *)
      (try Engine.run e with Engine.Deadlock _ -> ());
      let rec nondecreasing i =
        i + 1 >= n || (finish.(i) <= finish.(i + 1) && nondecreasing (i + 1))
      in
      nondecreasing 0)

(* --- Tie-break policies ------------------------------------------------------- *)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* All fibers stay at clock 0, so every scheduling step is a tie among
   every live fiber: the densest possible tie-break exposure. *)
let tie_order ~policy ~nprocs ~rounds =
  let e = Engine.create ~policy ~nprocs () in
  let order = ref [] in
  for id = 0 to nprocs - 1 do
    Engine.spawn e id (fun p ->
        for _ = 1 to rounds do
          order := Engine.proc_id p :: !order;
          Engine.yield p
        done)
  done;
  Engine.run e;
  (List.rev !order, Engine.choices e)

let test_policy_fifo_records_nothing () =
  let order, choices = tie_order ~policy:Engine.Fifo ~nprocs:3 ~rounds:3 in
  Alcotest.(check (list int)) "FIFO ties are round-robin" [ 0; 1; 2; 0; 1; 2; 0; 1; 2 ] order;
  Alcotest.(check (list int)) "FIFO records no choices" [] choices

let test_policy_empty_replay_is_fifo () =
  let fifo, _ = tie_order ~policy:Engine.Fifo ~nprocs:4 ~rounds:4 in
  let replayed, _ = tie_order ~policy:(Engine.Replay []) ~nprocs:4 ~rounds:4 in
  Alcotest.(check (list int)) "an exhausted replay list is FIFO" fifo replayed

let test_policy_seeded_replays_identically () =
  let seeded_order, choices = tie_order ~policy:(Engine.Seeded 42) ~nprocs:4 ~rounds:5 in
  Alcotest.(check bool) "dense ties force recorded choices" true (choices <> []);
  let replayed_order, rechoices = tie_order ~policy:(Engine.Replay choices) ~nprocs:4 ~rounds:5 in
  Alcotest.(check (list int)) "replay reproduces the seeded order" seeded_order replayed_order;
  Alcotest.(check (list int)) "the replay re-records its own choices" choices rechoices

let test_policy_seeds_explore () =
  (* At least one of a handful of seeds must deviate from FIFO — the
     whole point of the dimension.  (Each step has 4 tied fibers; the
     odds of 5 seeds all reproducing FIFO are astronomically small, and
     the PRNG is deterministic, so this cannot flake.) *)
  let fifo, _ = tie_order ~policy:Engine.Fifo ~nprocs:4 ~rounds:4 in
  let deviates =
    List.exists
      (fun seed -> fst (tie_order ~policy:(Engine.Seeded seed) ~nprocs:4 ~rounds:4) <> fifo)
      [ 1; 2; 3; 4; 5 ]
  in
  Alcotest.(check bool) "some seed deviates from FIFO" true deviates

let test_policy_replay_modulo () =
  (* Choices are taken modulo the number of tied candidates, so a
     hand-edited or cross-seed list is always legal. *)
  let order, _ = tie_order ~policy:(Engine.Replay [ 7; 100 ]) ~nprocs:3 ~rounds:1 in
  (* first tie: candidates [p0;p1;p2], 7 mod 3 = 1 -> p1 records and
     yields (its continuation rejoins the tie);
     second tie: [p0;p2;p1'], 100 mod 3 = 1 -> p2;
     list exhausted -> FIFO -> p0. *)
  Alcotest.(check (list int)) "modulo application" [ 1; 2; 0 ] order

let test_policy_negative_replay_rejected () =
  Alcotest.check_raises "negative choice"
    (Invalid_argument "Engine.create: negative replay choice") (fun () ->
      ignore (Engine.create ~policy:(Engine.Replay [ 0; -1 ]) ~nprocs:2 ()))

let test_policy_deadlock_reports_seed () =
  let e = Engine.create ~policy:(Engine.Seeded 7) ~nprocs:2 () in
  Engine.spawn e 0 (fun p -> Engine.block ~reason:"never woken" p ~setup:(fun ~wake:_ -> ()));
  Engine.spawn e 1 (fun p -> Engine.yield p);
  match Engine.run e with
  | () -> Alcotest.fail "expected a deadlock"
  | exception Engine.Deadlock msg ->
      Alcotest.(check bool) "message names the schedule seed" true
        (contains ~sub:"schedule seed 7" msg);
      Alcotest.(check bool) "message keeps the blocked reason" true
        (contains ~sub:"never woken" msg)

let test_policy_fifo_deadlock_message_unchanged () =
  let e = Engine.create ~nprocs:1 () in
  Engine.spawn e 0 (fun p -> Engine.block p ~setup:(fun ~wake:_ -> ()));
  match Engine.run e with
  | () -> Alcotest.fail "expected a deadlock"
  | exception Engine.Deadlock msg ->
      Alcotest.(check bool) "no schedule tag under FIFO" false (contains ~sub:"schedule" msg)

let test_proc_accessor_bounds () =
  let e = Engine.create ~nprocs:2 () in
  ignore (Engine.proc e 0);
  ignore (Engine.proc e 1);
  Alcotest.check_raises "out of range" (Invalid_argument "Engine.proc: index out of range")
    (fun () -> ignore (Engine.proc e 2))

let () =
  Alcotest.run "sched"
    [
      ( "engine",
        [
          Alcotest.test_case "charge and elapsed" `Quick test_charge_and_elapsed;
          Alcotest.test_case "negative charge" `Quick test_negative_charge;
          Alcotest.test_case "min-clock yield order" `Quick test_min_clock_yield_order;
          Alcotest.test_case "block and wake" `Quick test_block_and_wake;
          Alcotest.test_case "wake never rewinds" `Quick test_wake_does_not_rewind;
          Alcotest.test_case "double wake rejected" `Quick test_double_wake_rejected;
          Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
          Alcotest.test_case "deadlock blocked reason" `Quick test_deadlock_blocked_reason;
          Alcotest.test_case "spawn validation" `Quick test_spawn_validation;
          Alcotest.test_case "run once" `Quick test_run_once;
          Alcotest.test_case "exceptions propagate" `Quick test_exception_propagates;
          Alcotest.test_case "ping pong" `Quick test_ping_pong;
          qtest engine_deterministic;
          qtest random_wake_graph;
          Alcotest.test_case "proc accessor bounds" `Quick test_proc_accessor_bounds;
        ] );
      ( "tie-break policy",
        [
          Alcotest.test_case "fifo records nothing" `Quick test_policy_fifo_records_nothing;
          Alcotest.test_case "empty replay is fifo" `Quick test_policy_empty_replay_is_fifo;
          Alcotest.test_case "seeded replays identically" `Quick
            test_policy_seeded_replays_identically;
          Alcotest.test_case "seeds explore" `Quick test_policy_seeds_explore;
          Alcotest.test_case "replay modulo" `Quick test_policy_replay_modulo;
          Alcotest.test_case "negative replay rejected" `Quick
            test_policy_negative_replay_rejected;
          Alcotest.test_case "deadlock reports seed" `Quick test_policy_deadlock_reports_seed;
          Alcotest.test_case "fifo deadlock message unchanged" `Quick
            test_policy_fifo_deadlock_message_unchanged;
        ] );
    ]
