(* The sharded KV store: the YCSB-style generator's determinism and
   distribution properties, the refinement oracle's soundness (passing
   hand-written interleavings, rejected mutants), the migration edge
   cases (re-bind under shared readers, under message faults, across a
   crash of the old owner), and the latency-percentile report
   cross-checked against exact percentiles from the raw observation
   log. *)

module Config = Midway.Config
module R = Midway.Runtime
module Engine = Midway_sched.Engine
module Metrics = Midway_obs.Metrics
module Oracle = Midway_kv.Oracle
module Kvstore = Midway_kv.Kvstore
module Ycsb = Midway_explore.Ycsb
module Kv_workload = Midway_explore.Kv_workload
module Explore = Midway_explore.Explore

let qtest = QCheck_alcotest.to_alcotest

(* --- the generator ------------------------------------------------------ *)

let gen_cfg =
  {
    Ycsb.keys = 64;
    requests = 1000;
    mix = Ycsb.mix_crud;
    dist = Ycsb.Zipfian 0.99;
    arrival = Ycsb.Poisson 2_000;
    max_scan = 8;
    seed = 11;
  }

(* Same seed => bit-identical stream, every call (the generator is a pure
   function of (cfg, client), so this also covers "across backends": no
   machine state is consulted at all).  Different clients and different
   seeds decouple. *)
let test_gen_determinism () =
  let d1 = Ycsb.stream_digest (Ycsb.client_stream gen_cfg ~client:0) in
  let d2 = Ycsb.stream_digest (Ycsb.client_stream gen_cfg ~client:0) in
  Alcotest.(check string) "same seed, same stream" d1 d2;
  let other = Ycsb.stream_digest (Ycsb.client_stream gen_cfg ~client:1) in
  Alcotest.(check bool) "clients decoupled" true (d1 <> other);
  let reseeded =
    Ycsb.stream_digest (Ycsb.client_stream { gen_cfg with Ycsb.seed = 12 } ~client:0)
  in
  Alcotest.(check bool) "seeds decoupled" true (d1 <> reseeded)

let count_kinds stream =
  let g = ref 0 and p = ref 0 and d = ref 0 and s = ref 0 in
  Array.iter
    (fun (r : Ycsb.req) ->
      match r.Ycsb.r_op with
      | Ycsb.Get _ -> incr g
      | Ycsb.Put _ -> incr p
      | Ycsb.Delete _ -> incr d
      | Ycsb.Scan _ -> incr s)
    stream;
  [| !g; !p; !d; !s |]

(* The finite stream respects the mix *exactly* (largest-remainder
   apportionment, not sampling). *)
let test_gen_exact_mix () =
  let counts = count_kinds (Ycsb.client_stream gen_cfg ~client:2) in
  Alcotest.(check (array int)) "crud mix apportioned exactly" [| 700; 200; 50; 50 |] counts;
  let m = gen_cfg.Ycsb.mix in
  let expected =
    Ycsb.apportion ~n:gen_cfg.Ycsb.requests
      [| m.Ycsb.w_get; m.Ycsb.w_put; m.Ycsb.w_delete; m.Ycsb.w_scan |]
  in
  Alcotest.(check (array int)) "matches apportion" expected counts

let test_apportion () =
  Alcotest.(check (array int)) "integral split" [| 500; 500 |]
    (Ycsb.apportion ~n:1000 [| 50; 50 |]);
  Alcotest.(check (array int)) "ycsb a over 7" [| 4; 3 |] (Ycsb.apportion ~n:7 [| 50; 50 |]);
  QCheck.Test.check_exn
    (QCheck.Test.make ~name:"apportion sums to n" ~count:100
       QCheck.(pair (int_bound 500) (array_of_size Gen.(1 -- 6) (int_bound 20)))
       (fun (n, w) ->
         QCheck.assume (Array.fold_left ( + ) 0 w > 0);
         Array.fold_left ( + ) 0 (Ycsb.apportion ~n w) = n))

(* generator determinism + exactness over arbitrary seeds *)
let gen_property =
  QCheck.Test.make ~name:"any seed: stable stream, exact mix" ~count:25
    QCheck.(int_bound 100_000)
    (fun seed ->
      let cfg = { gen_cfg with Ycsb.seed; requests = 200 } in
      let s1 = Ycsb.client_stream cfg ~client:0 in
      let s2 = Ycsb.client_stream cfg ~client:0 in
      Ycsb.stream_digest s1 = Ycsb.stream_digest s2
      && count_kinds s1 = Ycsb.apportion ~n:200 [| 70; 20; 5; 5 |])

let sample_counts ~n ~total ~dist ~seed =
  let cfg =
    {
      Ycsb.keys = n;
      requests = total;
      mix = Ycsb.mix_c;
      dist;
      arrival = Ycsb.Fixed 1;
      max_scan = 1;
      seed;
    }
  in
  let counts = Array.make n 0 in
  Array.iter
    (fun (r : Ycsb.req) ->
      match r.Ycsb.r_op with
      | Ycsb.Get k -> counts.(k) <- counts.(k) + 1
      | _ -> Alcotest.fail "mix_c must be read-only")
    (Ycsb.client_stream cfg ~client:0);
  counts

let chi2_against counts pmf total =
  let s = ref 0.0 in
  Array.iteri
    (fun k c ->
      let e = float_of_int total *. pmf.(k) in
      let d = float_of_int c -. e in
      s := !s +. (d *. d /. e))
    counts;
  !s

(* The zipfian sampler hits the configured skew: chi-squared over a
   large seeded sample against {!Ycsb.zipf_pmf}.  The sampler is Gray
   et al.'s incremental approximation (YCSB's own): ranks 1-2 are
   exact, the tail comes from a continuous inverse-CDF, so the
   statistic carries a small systematic bias on top of sampling noise —
   measured at ~0.0032 per sample at n = 64, theta = 0.99 (chi2 ~160
   at 50k draws against ~63 expected from noise alone).  The bound of
   250 admits that bias plus >5 sd of noise while still rejecting any
   materially wrong skew: theta 0.8 or 0.95 scores in the thousands on
   the same sample.  The uniform control shows the harness itself is
   sharp — an exact sampler sits at the degrees of freedom. *)
let test_gen_zipf_chi2 () =
  let n = 64 and total = 50_000 in
  let counts = sample_counts ~n ~total ~dist:(Ycsb.Zipfian 0.99) ~seed:5 in
  let pmf = Ycsb.zipf_pmf ~n ~theta:0.99 in
  let chi2 = chi2_against counts pmf total in
  Alcotest.(check bool) (Printf.sprintf "chi2 %.1f within bound" chi2) true (chi2 < 250.0);
  (* the same sample must *reject* visibly different skews *)
  List.iter
    (fun theta ->
      let off = chi2_against counts (Ycsb.zipf_pmf ~n ~theta) total in
      Alcotest.(check bool)
        (Printf.sprintf "chi2 %.0f rejects theta %.2f" off theta)
        true (off > 1_000.0))
    [ 0.80; 0.60 ];
  (* rank order: the head of the distribution must dominate *)
  Alcotest.(check bool) "key 0 hottest" true (counts.(0) > counts.(1));
  Alcotest.(check bool) "head over tail" true (counts.(0) > 8 * counts.(n - 1));
  (* control: the uniform sampler is exact, so its chi-squared sits at
     the degrees of freedom (63): no hidden slack in the harness *)
  let u = sample_counts ~n ~total ~dist:Ycsb.Uniform ~seed:5 in
  let upmf = Array.make n (1.0 /. float_of_int n) in
  let uchi2 = chi2_against u upmf total in
  Alcotest.(check bool)
    (Printf.sprintf "uniform control chi2 %.1f ~ df" uchi2)
    true (uchi2 < 110.0)

(* --- the oracle on hand-written histories ------------------------------- *)

let obs ?(read = []) ~proc ~bucket ~seq ~kind ~key ~value () =
  {
    Oracle.o_proc = proc;
    o_bucket = bucket;
    o_seq = seq;
    o_kind = kind;
    o_key = key;
    o_value = value;
    o_read = read;
    o_sched_ns = 0;
    o_start_ns = 0;
    o_done_ns = 0;
  }

(* keys 0-3 in bucket 0, keys 4-7 in bucket 1 *)
let passing_history =
  [
    obs ~proc:0 ~bucket:0 ~seq:1 ~kind:Oracle.K_load ~key:0 ~value:10 ();
    obs ~proc:1 ~bucket:0 ~seq:2 ~kind:Oracle.K_put ~key:1 ~value:5 ();
    obs ~proc:2 ~bucket:0 ~seq:2 ~kind:Oracle.K_get ~key:0 ~value:0
      ~read:[ (0, true, 10) ] ();
    obs ~proc:0 ~bucket:0 ~seq:3 ~kind:Oracle.K_delete ~key:0 ~value:0 ();
    obs ~proc:3 ~bucket:0 ~seq:3 ~kind:Oracle.K_get ~key:0 ~value:0
      ~read:[ (0, false, 0) ] ();
    obs ~proc:2 ~bucket:0 ~seq:4 ~kind:Oracle.K_migrate ~key:0 ~value:2 ();
    obs ~proc:3 ~bucket:1 ~seq:1 ~kind:Oracle.K_put ~key:4 ~value:7 ();
    obs ~proc:1 ~bucket:1 ~seq:1 ~kind:Oracle.K_scan ~key:4 ~value:0
      ~read:[ (4, true, 7); (5, false, 0) ] ();
  ]

let final_ok =
  {
    Oracle.f_entries =
      [|
        (0, false, 0);
        (1, true, 5);
        (2, false, 0);
        (3, false, 0);
        (4, true, 7);
        (5, false, 0);
        (6, false, 0);
        (7, false, 0);
      |];
    f_opcounts = [| 4; 1 |];
  }

let run_oracle ?(killed = []) ?(journal = []) ?final history =
  Oracle.check ~keys:8 ~buckets:2 ~killed ~journal ~final history

let test_oracle_passes () =
  Alcotest.(check (list string)) "hand-written interleaving linearizes" []
    (run_oracle ~final:final_ok passing_history);
  (* reads before any write observe the empty prefix *)
  Alcotest.(check (list string)) "prefix-0 read" []
    (run_oracle
       [ obs ~proc:0 ~bucket:0 ~seq:0 ~kind:Oracle.K_get ~key:2 ~value:0
           ~read:[ (2, false, 0) ] () ])

let expect_reject name history ?killed ?journal ?final () =
  match run_oracle ?killed ?journal ?final history with
  | [] -> Alcotest.failf "%s: oracle accepted a bad history" name
  | _ -> ()

let test_oracle_rejects () =
  (* stale read: the get at prefix 2 must see key 0 = 10 *)
  expect_reject "stale read"
    (obs ~proc:2 ~bucket:0 ~seq:2 ~kind:Oracle.K_get ~key:0 ~value:0
       ~read:[ (0, true, 99) ] ()
    :: passing_history)
    ();
  (* lost update: two writes claim the same sequence number *)
  expect_reject "duplicate seq"
    (obs ~proc:2 ~bucket:0 ~seq:2 ~kind:Oracle.K_put ~key:2 ~value:9 () :: passing_history)
    ();
  (* key routed to the wrong bucket *)
  expect_reject "wrong bucket"
    [ obs ~proc:0 ~bucket:1 ~seq:1 ~kind:Oracle.K_put ~key:0 ~value:1 () ]
    ();
  (* final state disagreeing with the replay *)
  expect_reject "final state" passing_history
    ~final:{ final_ok with Oracle.f_opcounts = [| 4; 2 |] }
    ()

(* A sequence gap is admissible exactly when a *killed* processor's
   journal records the missing write — the crash shape the store's
   release-then-log window can produce — and inadmissible otherwise. *)
let test_oracle_crash_gaps () =
  let gapped =
    [
      obs ~proc:0 ~bucket:0 ~seq:1 ~kind:Oracle.K_put ~key:0 ~value:3 ();
      obs ~proc:0 ~bucket:0 ~seq:3 ~kind:Oracle.K_put ~key:1 ~value:4 ();
      obs ~proc:2 ~bucket:0 ~seq:3 ~kind:Oracle.K_get ~key:2 ~value:0
        ~read:[ (2, true, 8) ] ();
    ]
  in
  let j =
    {
      Oracle.j_bucket = 0;
      j_proc = 1;
      j_seq = 2;
      j_kind = Oracle.K_put;
      j_key = 2;
      j_value = 8;
    }
  in
  Alcotest.(check (list string)) "journal-covered gap accepted" []
    (run_oracle ~killed:[ 1 ] ~journal:[ j ] gapped);
  expect_reject "uncovered gap" gapped ();
  expect_reject "journal of a live processor does not cover" gapped ~journal:[ j ] ();
  expect_reject "wrong seq in journal" gapped ~killed:[ 1 ]
    ~journal:[ { j with Oracle.j_seq = 4 } ]
    ()

(* --- the oracle against the real store: seeded mutation test ------------ *)

let run_store ?(cfg = Kv_workload.default) ?(nprocs = 4) ?(backend = Config.Rt) ?(sseed = 1)
    () =
  let mcfg = Config.make backend ~nprocs in
  let mcfg = { mcfg with Config.sched_policy = Engine.Seeded sseed } in
  let machine = R.create mcfg in
  let store, prog = Kv_workload.build machine cfg in
  R.run machine prog;
  (machine, store)

let test_oracle_mutation () =
  let machine, store = run_store () in
  Alcotest.(check (list string)) "unmutated run linearizes" [] (Kvstore.check store);
  let all = Array.of_list (Kvstore.observations store) in
  let gets =
    Array.to_list all
    |> List.filter (fun o -> o.Oracle.o_kind = Oracle.K_get && o.Oracle.o_read <> [])
  in
  Alcotest.(check bool) "run produced gets" true (List.length gets > 5);
  let prng = ref 0x2545F491 in
  let next n =
    prng := ((!prng * 1103515245) + 12345) land 0x3FFFFFFF;
    !prng lsr 7 mod n
  in
  let recheck mutated =
    Oracle.check ~keys:(Kvstore.keys store) ~buckets:(Kvstore.buckets store)
      ~killed:(R.killed_procs machine) ~journal:(Kvstore.journal store)
      ~final:(Some (Kvstore.final_state store))
      (Array.to_list mutated)
  in
  (* corrupt one observed get five different ways: flip the value, flip
     the presence — the oracle must reject every mutant *)
  for trial = 1 to 5 do
    let victim = List.nth gets (next (List.length gets)) in
    let mutated =
      Array.map
        (fun o ->
          if o == victim then
            {
              o with
              Oracle.o_read =
                (* the mutation must be observable: flipping presence
                   always contradicts the model; bumping the value only
                   does when the key is present *)
                List.map
                  (fun (k, p, v) ->
                    if trial mod 2 = 0 || not p then (k, not p, v) else (k, p, v + 1))
                  o.Oracle.o_read;
            }
          else o)
        all
    in
    match recheck mutated with
    | [] ->
        Alcotest.failf "mutant %d accepted: %s" trial (Oracle.describe victim)
    | _ -> ()
  done;
  (* and the untouched history still passes through the same path *)
  Alcotest.(check (list string)) "identity mutation accepted" [] (recheck all)

(* --- migration edge cases ----------------------------------------------- *)

let seeded_config ?(ecsan = true) backend sseed =
  let cfg = Config.make backend ~nprocs:4 in
  { cfg with Config.ecsan; sched_policy = Engine.Seeded sseed }

let sweep name w mk_cfg =
  List.iter
    (fun backend ->
      List.iter
        (fun sseed ->
          let j = Explore.execute w (mk_cfg backend sseed) in
          if j.Explore.j_failed then
            Alcotest.failf "%s [%s seed %d]: %s" name
              (Config.backend_name backend)
              sseed j.Explore.j_reason)
        [ 1; 2; 3 ])
    [ Config.Rt; Config.Vm ]

(* re-bind racing shared holders: read-heavy mix, frequent migrations *)
let test_migrate_under_readers () =
  let cfg =
    {
      Kv_workload.default with
      Kv_workload.ycsb = { Kv_workload.default.Kv_workload.ycsb with Ycsb.mix = Ycsb.mix_b };
      migrate_every = 5;
    }
  in
  sweep "migrate under shared readers"
    (Kv_workload.workload ~name:"kv-readers-migrate" cfg)
    (fun b s -> seeded_config b s)

(* re-bind while puts are in flight on the lossy reliable channel *)
let test_migrate_under_faults () =
  let cfg = { Kv_workload.default with Kv_workload.migrate_every = 5 } in
  sweep "migrate under message faults"
    (Kv_workload.workload ~name:"kv-faulty-migrate" cfg)
    (fun b s -> Config.with_faults ~drop:0.08 ~seed:(40 + s) (seeded_config b s))

(* re-bind composed with a crash of the previous owner: client 1 is
   crash-stopped mid-run while every client keeps re-homing buckets, so
   buckets whose owner died fail over and buckets migrated away from the
   victim keep serving.  The refinement oracle (journal-aware) must hold
   and the run must stay ECSan-clean. *)
let test_migrate_across_crash () =
  let cfg = { Kv_workload.default with Kv_workload.migrate_every = 8 } in
  sweep "migrate across owner crash"
    (Kv_workload.crashy_workload ~name:"kv-crash-migrate" cfg)
    (fun b s -> seeded_config b s)

(* --- latency percentiles ------------------------------------------------ *)

(* p50/p95/p99 from the store's bucketed histogram must bracket the exact
   nearest-rank percentiles of the raw per-observation sojourn times.
   The quantization bound: {!Metrics.latency_buckets} steps by at most
   ~1.8x, so [quantile] returns (lo, hi] with hi <= ~1.8*lo (hi is what
   the report prints — a conservative upper end). *)
let test_percentiles_vs_raw () =
  let cfg =
    {
      Kv_workload.default with
      Kv_workload.ycsb =
        { Kv_workload.default.Kv_workload.ycsb with Ycsb.requests = 120; seed = 21 };
      service_ns = 2_000;
    }
  in
  let _machine, store = run_store ~cfg () in
  Alcotest.(check (list string)) "run linearizes" [] (Kvstore.check store);
  let raw =
    Kvstore.observations store
    |> List.filter (fun o -> o.Oracle.o_kind = Oracle.K_get)
    |> List.map (fun o -> o.Oracle.o_done_ns - o.Oracle.o_sched_ns)
    |> List.sort compare |> Array.of_list
  in
  let n = Array.length raw in
  Alcotest.(check bool) "enough gets" true (n > 50);
  let snap = Metrics.snapshot (Kvstore.metrics store) in
  let hv =
    match Metrics.find_hist snap ~name:"kv_latency_ns" ~label:"get" with
    | Some hv -> hv
    | None -> Alcotest.fail "no get histogram"
  in
  Alcotest.(check int) "histogram saw every get" n hv.Metrics.h_count;
  List.iter
    (fun q ->
      let exact = raw.(max 0 (int_of_float (ceil (q *. float_of_int n)) - 1)) in
      let lo, hi = Metrics.quantile hv q in
      if not (lo < exact && exact <= hi) then
        Alcotest.failf "p%.0f: exact %d outside bucket (%d, %d]" (q *. 100.) exact lo hi;
      Alcotest.(check int) "reported percentile is the bracket's upper end" hi
        (Metrics.quantile_le hv q);
      (* documented quantization error: one ~1.8x bucket, above the
         1 microsecond floor *)
      if lo >= 1_000 then
        Alcotest.(check bool)
          (Printf.sprintf "p%.0f bracket within 1.8x" (q *. 100.))
          true
          (float_of_int hi <= (1.8 *. float_of_int lo) +. 1.))
    [ 0.5; 0.95; 0.99 ]

let test_quantile_units () =
  let m = Metrics.create () in
  (* 1000 observations of 1..1000 microseconds: exact percentiles known *)
  for i = 1 to 1000 do
    Metrics.observe m ~name:"h" ~label:"x" ~buckets:Metrics.latency_buckets (i * 1_000)
  done;
  let snap = Metrics.snapshot m in
  let hv =
    match Metrics.find_hist snap ~name:"h" ~label:"x" with
    | Some hv -> hv
    | None -> Alcotest.fail "no histogram"
  in
  List.iter
    (fun q ->
      let exact = int_of_float (ceil (q *. 1000.)) * 1_000 in
      let lo, hi = Metrics.quantile hv q in
      Alcotest.(check bool)
        (Printf.sprintf "q%.2f bracket (%d,%d] holds %d" q lo hi exact)
        true
        (lo < exact && exact <= hi))
    [ 0.01; 0.25; 0.5; 0.9; 0.95; 0.99; 1.0 ]

(* --- cross-backend end-to-end ------------------------------------------- *)

(* the same seeded workload linearizes on both backends, and the two
   backends issue bit-identical request streams (the generator never
   consults the machine) *)
let test_backends_agree () =
  let _m_rt, s_rt = run_store ~backend:Config.Rt () in
  let _m_vm, s_vm = run_store ~backend:Config.Vm () in
  Alcotest.(check (list string)) "rt linearizes" [] (Kvstore.check s_rt);
  Alcotest.(check (list string)) "vm linearizes" [] (Kvstore.check s_vm);
  Alcotest.(check int) "same request count" (Kvstore.request_count s_rt)
    (Kvstore.request_count s_vm)

let () =
  Alcotest.run "kv"
    [
      ( "generator",
        [
          Alcotest.test_case "seeded determinism" `Quick test_gen_determinism;
          Alcotest.test_case "exact mix" `Quick test_gen_exact_mix;
          Alcotest.test_case "apportionment" `Quick test_apportion;
          qtest gen_property;
          Alcotest.test_case "zipfian chi-squared" `Quick test_gen_zipf_chi2;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "passing interleavings" `Quick test_oracle_passes;
          Alcotest.test_case "rejections" `Quick test_oracle_rejects;
          Alcotest.test_case "crash gaps" `Quick test_oracle_crash_gaps;
          Alcotest.test_case "seeded mutation" `Quick test_oracle_mutation;
        ] );
      ( "migration",
        [
          Alcotest.test_case "under shared readers" `Quick test_migrate_under_readers;
          Alcotest.test_case "under message faults" `Quick test_migrate_under_faults;
          Alcotest.test_case "across owner crash" `Quick test_migrate_across_crash;
        ] );
      ( "latency",
        [
          Alcotest.test_case "percentiles vs raw log" `Quick test_percentiles_vs_raw;
          Alcotest.test_case "quantile brackets" `Quick test_quantile_units;
        ] );
      ("backends", [ Alcotest.test_case "rt/vm agree" `Quick test_backends_agree ]);
    ]
