(* Tests for the VM substrate: word-granularity diffing and the simulated
   page table. *)

module Diff = Midway_vmem.Diff
module Page_table = Midway_vmem.Page_table

let qtest = QCheck_alcotest.to_alcotest

(* --- Diff --------------------------------------------------------------- *)

let test_diff_empty () =
  let a = Bytes.make 64 'x' in
  let runs, transitions = Diff.diff ~old_:a ~new_:(Bytes.copy a) ~off:0 ~len:64 in
  Alcotest.(check int) "no runs" 0 (List.length runs);
  Alcotest.(check int) "no transitions" 0 transitions;
  Alcotest.(check int) "no bytes" 0 (Diff.runs_bytes runs)

let test_diff_all_changed () =
  let a = Bytes.make 64 'a' and b = Bytes.make 64 'b' in
  let runs, transitions = Diff.diff ~old_:a ~new_:b ~off:0 ~len:64 in
  Alcotest.(check int) "one run" 1 (List.length runs);
  Alcotest.(check int) "covers everything" 64 (Diff.runs_bytes runs);
  Alcotest.(check int) "no transitions" 0 transitions

let test_diff_alternating () =
  (* Change every other 4-byte word: maximal transitions. *)
  let n = 64 in
  let old_ = Bytes.make n '\000' in
  let new_ = Bytes.copy old_ in
  let words = n / 4 in
  for w = 0 to words - 1 do
    if w mod 2 = 0 then Bytes.set new_ (w * 4) '\001'
  done;
  let runs, transitions = Diff.diff ~old_ ~new_ ~off:0 ~len:n in
  Alcotest.(check int) "every other word is a run" (words / 2) (List.length runs);
  Alcotest.(check int) "maximal transitions" (words - 1) transitions

let test_diff_offsets () =
  let old_ = Bytes.make 32 '\000' and new_ = Bytes.make 32 '\000' in
  Bytes.set new_ 10 'z';
  let runs, _ = Diff.diff ~old_ ~new_ ~off:8 ~len:8 in
  (match runs with
  | [ r ] ->
      Alcotest.(check int) "word-aligned run offset" 8 r.Diff.off;
      Alcotest.(check int) "one word" 4 r.Diff.len
  | _ -> Alcotest.fail "expected exactly one run");
  let runs2, _ = Diff.diff ~old_ ~new_ ~off:16 ~len:8 in
  Alcotest.(check int) "change outside range invisible" 0 (List.length runs2)

let test_diff_bounds () =
  let b = Bytes.make 8 ' ' in
  Alcotest.check_raises "out of bounds" (Invalid_argument "Diff.diff: range out of bounds")
    (fun () -> ignore (Diff.diff ~old_:b ~new_:b ~off:4 ~len:8))

let diff_apply_roundtrip =
  QCheck.Test.make ~name:"apply(diff(old, new)) turns old into new" ~count:300
    QCheck.(pair (int_bound 200) (list (pair (int_bound 199) (int_bound 255))))
    (fun (len, edits) ->
      let len = len + 4 in
      let old_ = Bytes.init len (fun i -> Char.chr (i mod 251)) in
      let new_ = Bytes.copy old_ in
      List.iter (fun (pos, v) -> if pos < len then Bytes.set new_ pos (Char.chr v)) edits;
      let runs, _ = Diff.diff ~old_ ~new_ ~off:0 ~len in
      let patched = Bytes.copy old_ in
      Diff.apply ~src:new_ ~dst:patched runs;
      Bytes.equal patched new_)

let diff_runs_sorted_disjoint =
  QCheck.Test.make ~name:"diff runs are sorted, disjoint and modified" ~count:300
    QCheck.(list (pair (int_bound 127) (int_bound 255)))
    (fun edits ->
      let len = 128 in
      let old_ = Bytes.make len '\000' in
      let new_ = Bytes.copy old_ in
      List.iter (fun (pos, v) -> Bytes.set new_ pos (Char.chr v)) edits;
      let runs, _ = Diff.diff ~old_ ~new_ ~off:0 ~len in
      let rec check prev_end = function
        | [] -> true
        | r :: rest ->
            r.Diff.off >= prev_end && r.Diff.len > 0 && check (r.Diff.off + r.Diff.len) rest
      in
      check 0 runs)

(* Byte-at-a-time reference for the word-wise scan: word flags computed
   with individual byte compares, then folded into runs and transitions. *)
let ref_diff ~old_ ~new_ ~off ~len =
  let runs = ref [] in
  let transitions = ref 0 in
  let run_start = ref (-1) in
  let prev = ref false in
  let i = ref 0 in
  while !i < len do
    let wlen = min Diff.word_size (len - !i) in
    let modified = ref false in
    for j = 0 to wlen - 1 do
      if Bytes.get old_ (off + !i + j) <> Bytes.get new_ (off + !i + j) then modified := true
    done;
    if !modified <> !prev && !i > 0 then incr transitions;
    if !modified && !run_start < 0 then run_start := !i;
    if (not !modified) && !run_start >= 0 then begin
      runs := { Diff.off = off + !run_start; len = !i - !run_start } :: !runs;
      run_start := -1
    end;
    prev := !modified;
    i := !i + wlen
  done;
  if !run_start >= 0 then runs := { Diff.off = off + !run_start; len = len - !run_start } :: !runs;
  (List.rev !runs, !transitions)

let run_pp (r : Diff.run) = Printf.sprintf "{off=%d; len=%d}" r.Diff.off r.Diff.len

(* len + 4 is deliberately *not* forced to a word multiple: unaligned
   tails shorter than a word must behave exactly like the reference. *)
let diff_matches_bytewise_reference =
  QCheck.Test.make ~name:"word-wise diff equals byte-wise reference (any tail)" ~count:500
    QCheck.(
      triple (int_bound 67) (int_bound 10) (list (pair (int_bound 80) (int_bound 255))))
    (fun (len, off, edits) ->
      let size = off + len in
      let old_ = Bytes.init (max 1 size) (fun i -> Char.chr (i mod 251)) in
      let new_ = Bytes.copy old_ in
      List.iter
        (fun (pos, v) -> if pos < size then Bytes.set new_ pos (Char.chr v))
        edits;
      let got = Diff.diff ~old_ ~new_ ~off ~len in
      let expected = ref_diff ~old_ ~new_ ~off ~len in
      if got <> expected then
        QCheck.Test.fail_reportf "diff (%s, %d) <> reference (%s, %d)"
          (String.concat ";" (List.map run_pp (fst got)))
          (snd got)
          (String.concat ";" (List.map run_pp (fst expected)))
          (snd expected)
      else true)

(* diff_between over live windows must equal diff over copied-out windows
   (modulo the 0-based run offsets), whatever the relative alignment. *)
let diff_between_matches_diff =
  QCheck.Test.make ~name:"diff_between equals diff on extracted windows" ~count:500
    QCheck.(
      QCheck.quad (int_bound 50) (int_bound 9) (int_bound 9)
        (list (pair (int_bound 70) (int_bound 255))))
    (fun (len, old_off, new_off, edits) ->
      let old_ = Bytes.init (old_off + len + 1) (fun i -> Char.chr (i * 7 mod 256)) in
      let new_ = Bytes.create (new_off + len + 1) in
      Bytes.fill new_ 0 (Bytes.length new_) '\017';
      Bytes.blit old_ old_off new_ new_off len;
      List.iter
        (fun (pos, v) ->
          if pos < len then Bytes.set new_ (new_off + pos) (Char.chr v))
        edits;
      let got = Diff.diff_between ~old_ ~old_off ~new_ ~new_off ~len in
      let expected =
        Diff.diff
          ~old_:(Bytes.sub old_ old_off len)
          ~new_:(Bytes.sub new_ new_off len)
          ~off:0 ~len
      in
      got = expected)

let test_diff_between_bounds () =
  let b = Bytes.make 8 ' ' in
  Alcotest.check_raises "out of bounds"
    (Invalid_argument "Diff.diff_between: range out of bounds") (fun () ->
      ignore (Diff.diff_between ~old_:b ~old_off:2 ~new_:b ~new_off:0 ~len:7))

let test_apply_to_relocation () =
  (* run offsets are relative to [src_off]/[dst_off] *)
  let src = Bytes.of_string "AAAABBBBCCCC" in
  let dst = Bytes.make 20 '.' in
  Diff.apply_to ~src ~dst ~src_off:0 ~dst_off:8 [ { Diff.off = 4; len = 4 } ];
  Alcotest.(check string) "relocated" "............BBBB...." (Bytes.to_string dst)

(* --- Page_table ---------------------------------------------------------- *)

let test_page_table_validation () =
  Alcotest.check_raises "power of two"
    (Invalid_argument "Page_table.create: page_size must be a positive power of two")
    (fun () -> ignore (Page_table.create ~page_size:1000))

let test_page_lazily_protected () =
  let pt = Page_table.create ~page_size:4096 in
  let p = Page_table.page_of_addr pt 5_000 in
  Alcotest.(check int) "page number" 1 p.Page_table.number;
  Alcotest.(check bool) "starts read-only" true (p.Page_table.prot = Page_table.Read_only);
  Alcotest.(check bool) "starts clean" false p.Page_table.dirty;
  Alcotest.(check int) "base" 4096 (Page_table.page_base pt p);
  Alcotest.(check bool) "same page object" true (p == Page_table.page_of_addr pt 4_096)

let test_fault_semantics () =
  let pt = Page_table.create ~page_size:64 in
  let contents = Bytes.init 64 (fun i -> Char.chr i) in
  (match Page_table.fault_on_write pt ~addr:70 ~contents with
  | None -> Alcotest.fail "first write must fault"
  | Some p ->
      Alcotest.(check bool) "writable now" true (p.Page_table.prot = Page_table.Read_write);
      Alcotest.(check bool) "dirty" true p.Page_table.dirty;
      (match p.Page_table.twin with
      | Some twin ->
          Alcotest.(check bytes) "twin snapshots the pre-store contents" contents twin;
          Alcotest.(check bool) "twin is a copy" true (not (twin == contents))
      | None -> Alcotest.fail "twin missing"));
  Alcotest.(check (option unit)) "second write does not fault"
    None
    (Option.map (fun _ -> ()) (Page_table.fault_on_write pt ~addr:71 ~contents));
  Alcotest.check_raises "bad twin size"
    (Invalid_argument "Page_table.fault_on_write: contents must be page-sized") (fun () ->
      ignore (Page_table.fault_on_write pt ~addr:500 ~contents:(Bytes.make 3 ' ')))

let test_clean () =
  let pt = Page_table.create ~page_size:64 in
  let contents = Bytes.make 64 'q' in
  let p = Option.get (Page_table.fault_on_write pt ~addr:0 ~contents) in
  Page_table.clean pt p;
  Alcotest.(check bool) "protected again" true (p.Page_table.prot = Page_table.Read_only);
  Alcotest.(check bool) "clean" false p.Page_table.dirty;
  Alcotest.(check bool) "twin dropped" true (p.Page_table.twin = None);
  (* next write faults again *)
  Alcotest.(check bool) "refaults" true
    (Page_table.fault_on_write pt ~addr:1 ~contents <> None)

let test_pages_in_range () =
  let pt = Page_table.create ~page_size:128 in
  Alcotest.(check int) "empty range" 0 (List.length (Page_table.pages_in_range pt ~addr:50 ~len:0));
  let pages = Page_table.pages_in_range pt ~addr:50 ~len:300 in
  Alcotest.(check (list int)) "covers 3 pages" [ 0; 1; 2 ]
    (List.map (fun p -> p.Page_table.number) pages)

let test_dirty_pages_sorted () =
  let pt = Page_table.create ~page_size:64 in
  let contents = Bytes.make 64 ' ' in
  ignore (Page_table.fault_on_write pt ~addr:(5 * 64) ~contents);
  ignore (Page_table.fault_on_write pt ~addr:(2 * 64) ~contents);
  ignore (Page_table.fault_on_write pt ~addr:(9 * 64) ~contents);
  Alcotest.(check (list int)) "ascending dirty pages" [ 2; 5; 9 ]
    (List.map (fun p -> p.Page_table.number) (Page_table.dirty_pages pt))

let () =
  Alcotest.run "vmem"
    [
      ( "diff",
        [
          Alcotest.test_case "empty" `Quick test_diff_empty;
          Alcotest.test_case "all changed" `Quick test_diff_all_changed;
          Alcotest.test_case "alternating words" `Quick test_diff_alternating;
          Alcotest.test_case "offsets" `Quick test_diff_offsets;
          Alcotest.test_case "bounds" `Quick test_diff_bounds;
          Alcotest.test_case "apply_to relocation" `Quick test_apply_to_relocation;
          Alcotest.test_case "diff_between bounds" `Quick test_diff_between_bounds;
          qtest diff_apply_roundtrip;
          qtest diff_runs_sorted_disjoint;
          qtest diff_matches_bytewise_reference;
          qtest diff_between_matches_diff;
        ] );
      ( "page_table",
        [
          Alcotest.test_case "validation" `Quick test_page_table_validation;
          Alcotest.test_case "lazy protection" `Quick test_page_lazily_protected;
          Alcotest.test_case "fault semantics" `Quick test_fault_semantics;
          Alcotest.test_case "clean" `Quick test_clean;
          Alcotest.test_case "pages in range" `Quick test_pages_in_range;
          Alcotest.test_case "dirty pages sorted" `Quick test_dirty_pages_sorted;
        ] );
    ]
