(* Tests for the simulated shared address space: regions, the allocator,
   typed access and per-processor isolation. *)

module Region = Midway_memory.Region
module Space = Midway_memory.Space

let qtest = QCheck_alcotest.to_alcotest

(* --- Region ------------------------------------------------------------ *)

let test_region_create_validation () =
  Alcotest.check_raises "line size power of two"
    (Invalid_argument "Region.create: line_size must be a positive power of two") (fun () ->
      ignore (Region.create ~index:1 ~kind:Region.Shared ~line_size:48 ~region_size:4096 ~nprocs:2));
  Alcotest.check_raises "line fits region"
    (Invalid_argument "Region.create: line_size exceeds region_size") (fun () ->
      ignore (Region.create ~index:1 ~kind:Region.Shared ~line_size:8192 ~region_size:4096 ~nprocs:2))

let test_region_geometry () =
  let r = Region.create ~index:3 ~kind:Region.Shared ~line_size:64 ~region_size:4096 ~nprocs:2 in
  Alcotest.(check int) "base" (3 * 4096) (Region.base r);
  Alcotest.(check int) "limit" (4 * 4096) (Region.limit r);
  Alcotest.(check int) "lines" 64 (Region.lines r);
  Alcotest.(check int) "line of offset" 1 (Region.line_of_offset r 65)

let test_region_lazy_backing () =
  let r = Region.create ~index:1 ~kind:Region.Shared ~line_size:8 ~region_size:1024 ~nprocs:3 in
  Alcotest.(check bool) "untouched" false (Region.touched r ~proc:0);
  let b = Region.backing_for r ~proc:0 in
  Alcotest.(check int) "zero filled, right size" 1024 (Bytes.length b);
  Alcotest.(check bool) "now touched" true (Region.touched r ~proc:0);
  Alcotest.(check bool) "other processors untouched" false (Region.touched r ~proc:1);
  Bytes.set b 0 'x';
  Alcotest.(check char) "same buffer returned" 'x' (Bytes.get (Region.backing_for r ~proc:0) 0)

(* --- Space allocator --------------------------------------------------- *)

let test_alloc_basics () =
  let s = Space.create ~region_size:65536 ~nprocs:2 () in
  let a = Space.alloc s ~kind:Region.Shared ~line_size:64 100 in
  Alcotest.(check bool) "address 0 never allocated" true (a > 0);
  Alcotest.(check int) "line aligned" 0 (a mod 64);
  let r = Space.region_of_addr s a in
  Alcotest.(check int) "region line size" 64 r.Region.line_size;
  Alcotest.check_raises "oversized" (Invalid_argument "Space.alloc: size exceeds region size")
    (fun () -> ignore (Space.alloc s ~kind:Region.Shared (65536 + 1)));
  Alcotest.check_raises "non-positive" (Invalid_argument "Space.alloc: size must be positive")
    (fun () -> ignore (Space.alloc s ~kind:Region.Shared 0))

let test_alloc_kind_separation () =
  let s = Space.create ~nprocs:2 () in
  let shared = Space.alloc s ~kind:Region.Shared 64 in
  let priv = Space.alloc s ~kind:Region.Private 64 in
  Alcotest.(check bool) "different regions" true
    ((Space.region_of_addr s shared).Region.index <> (Space.region_of_addr s priv).Region.index);
  Alcotest.(check bool) "kinds recorded" true
    ((Space.region_of_addr s shared).Region.kind = Region.Shared
    && (Space.region_of_addr s priv).Region.kind = Region.Private)

let test_unmapped () =
  let s = Space.create ~nprocs:1 () in
  Alcotest.(check bool) "address zero unmapped" true (Space.find_region s 0 = None);
  (try
     ignore (Space.get_u8 s ~proc:0 0);
     Alcotest.fail "expected Unmapped"
   with Space.Unmapped 0 -> ());
  let a = Space.alloc s ~kind:Region.Shared 16 in
  (* one past the region end is unmapped *)
  let r = Space.region_of_addr s a in
  try
    ignore (Space.validate_range s a (Region.limit r - a + 1));
    Alcotest.fail "expected Unmapped for range crossing the region"
  with Space.Unmapped _ -> ()

let alloc_no_overlap =
  QCheck.Test.make ~name:"allocations never overlap" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 40) (int_range 1 5000))
    (fun sizes ->
      let s = Space.create ~region_size:(1 lsl 20) ~nprocs:1 () in
      let allocs =
        List.mapi
          (fun i size ->
            let line = [| 8; 16; 64; 256 |].(i mod 4) in
            (Space.alloc s ~kind:Region.Shared ~line_size:line size, size))
          sizes
      in
      let sorted = List.sort compare allocs in
      let rec disjoint = function
        | (a1, l1) :: ((a2, _) as b) :: rest -> a1 + l1 <= a2 && disjoint (b :: rest)
        | _ -> true
      in
      disjoint sorted)

(* --- typed access ------------------------------------------------------- *)

let roundtrip_f64 =
  QCheck.Test.make ~name:"f64 write/read round-trips" ~count:300 QCheck.float (fun v ->
      let s = Space.create ~nprocs:2 () in
      let a = Space.alloc s ~kind:Region.Shared 8 in
      Space.set_f64 s ~proc:0 a v;
      let got = Space.get_f64 s ~proc:0 a in
      Int64.bits_of_float got = Int64.bits_of_float v)

let roundtrip_int =
  QCheck.Test.make ~name:"int write/read round-trips" ~count:300 QCheck.int (fun v ->
      let s = Space.create ~nprocs:1 () in
      let a = Space.alloc s ~kind:Region.Shared 8 in
      Space.set_int s ~proc:0 a v;
      Space.get_int s ~proc:0 a = v)

let roundtrip_i32 =
  QCheck.Test.make ~name:"i32 write/read round-trips" ~count:300 QCheck.int32 (fun v ->
      let s = Space.create ~nprocs:1 () in
      let a = Space.alloc s ~kind:Region.Shared 4 in
      Space.set_i32 s ~proc:0 a v;
      Space.get_i32 s ~proc:0 a = v)

let test_u8 () =
  let s = Space.create ~nprocs:1 () in
  let a = Space.alloc s ~kind:Region.Shared 4 in
  Space.set_u8 s ~proc:0 a 0x1FF;
  Alcotest.(check int) "masked to a byte" 0xFF (Space.get_u8 s ~proc:0 a)

let test_per_proc_isolation () =
  let s = Space.create ~nprocs:3 () in
  let a = Space.alloc s ~kind:Region.Shared 8 in
  Space.set_int s ~proc:0 a 111;
  Space.set_int s ~proc:1 a 222;
  Alcotest.(check int) "p0 copy" 111 (Space.get_int s ~proc:0 a);
  Alcotest.(check int) "p1 copy" 222 (Space.get_int s ~proc:1 a);
  Alcotest.(check int) "p2 copy untouched" 0 (Space.get_int s ~proc:2 a)

let test_bytes_and_copy_range () =
  let s = Space.create ~nprocs:2 () in
  let a = Space.alloc s ~kind:Region.Shared 32 in
  let payload = Bytes.of_string "entry consistency protocol!!" in
  Space.write_bytes s ~proc:0 a payload;
  Alcotest.(check bytes) "read back" payload
    (Space.read_bytes s ~proc:0 a ~len:(Bytes.length payload));
  Alcotest.(check bool) "processors differ" false
    (Space.ranges_equal s ~proc_a:0 ~proc_b:1 a ~len:(Bytes.length payload));
  Space.copy_range s ~src_proc:0 ~dst_proc:1 a ~len:(Bytes.length payload);
  Alcotest.(check bool) "copy made them equal" true
    (Space.ranges_equal s ~proc_a:0 ~proc_b:1 a ~len:(Bytes.length payload))

(* The word-wise ranges_equal must agree with a byte-by-byte comparison,
   in particular across tails shorter than its 8-byte stride. *)
let ranges_equal_matches_bytewise =
  QCheck.Test.make ~name:"ranges_equal equals byte-wise comparison (any tail)" ~count:500
    QCheck.(
      triple (int_bound 37) (list (pair (int_bound 36) (int_bound 255))) bool)
    (fun (len, edits, mirror) ->
      let s = Space.create ~nprocs:2 () in
      let a = Space.alloc s ~kind:Region.Shared (max 1 len + 8) in
      for i = 0 to len - 1 do
        let v = (i * 13) land 0xff in
        Space.set_u8 s ~proc:0 (a + i) v;
        Space.set_u8 s ~proc:1 (a + i) v
      done;
      (* [mirror] applies the same edits to both copies, so both the equal
         and the differing outcome are exercised. *)
      List.iter
        (fun (pos, v) ->
          if pos < len then begin
            Space.set_u8 s ~proc:1 (a + pos) v;
            if mirror then Space.set_u8 s ~proc:0 (a + pos) v
          end)
        edits;
      let byte_wise =
        let rec eq i =
          i >= len || (Space.get_u8 s ~proc:0 (a + i) = Space.get_u8 s ~proc:1 (a + i) && eq (i + 1))
        in
        eq 0
      in
      Space.ranges_equal s ~proc_a:0 ~proc_b:1 a ~len = byte_wise)

let test_backing_slice_is_live () =
  let s = Space.create ~nprocs:2 () in
  let a = Space.alloc s ~kind:Region.Shared 32 in
  Space.write_bytes s ~proc:0 a (Bytes.of_string "abcdefgh");
  let b, off = Space.backing_slice s ~proc:0 a ~len:8 in
  Alcotest.(check string) "view of the live copy" "abcdefgh" (Bytes.sub_string b off 8);
  Space.set_u8 s ~proc:0 a (Char.code 'Z');
  Alcotest.(check char) "sees later writes (no copy)" 'Z' (Bytes.get b off);
  try
    ignore (Space.backing_slice s ~proc:0 0 ~len:4);
    Alcotest.fail "expected Unmapped"
  with Space.Unmapped 0 -> ()

let test_regions_listed_in_order () =
  let s = Space.create ~nprocs:1 () in
  ignore (Space.alloc s ~kind:Region.Shared ~line_size:8 16);
  ignore (Space.alloc s ~kind:Region.Shared ~line_size:64 16);
  ignore (Space.alloc s ~kind:Region.Private ~line_size:8 16);
  let idxs = List.map (fun r -> r.Region.index) (Space.regions s) in
  Alcotest.(check (list int)) "creation order" [ 1; 2; 3 ] idxs

let region_lookup_consistent =
  QCheck.Test.make ~name:"every allocated byte maps back to its region" ~count:100
    QCheck.(int_range 1 10_000)
    (fun size ->
      let s = Space.create ~nprocs:1 () in
      let a = Space.alloc s ~kind:Region.Shared size in
      let r = Space.region_of_addr s a in
      let r' = Space.region_of_addr s (a + size - 1) in
      r.Region.index = r'.Region.index)

let () =
  Alcotest.run "memory"
    [
      ( "region",
        [
          Alcotest.test_case "validation" `Quick test_region_create_validation;
          Alcotest.test_case "geometry" `Quick test_region_geometry;
          Alcotest.test_case "lazy backing" `Quick test_region_lazy_backing;
        ] );
      ( "allocator",
        [
          Alcotest.test_case "basics" `Quick test_alloc_basics;
          Alcotest.test_case "kind separation" `Quick test_alloc_kind_separation;
          Alcotest.test_case "unmapped addresses" `Quick test_unmapped;
          Alcotest.test_case "regions in order" `Quick test_regions_listed_in_order;
          qtest alloc_no_overlap;
          qtest region_lookup_consistent;
        ] );
      ( "access",
        [
          qtest roundtrip_f64;
          qtest roundtrip_int;
          qtest roundtrip_i32;
          Alcotest.test_case "u8 masking" `Quick test_u8;
          Alcotest.test_case "per-processor isolation" `Quick test_per_proc_isolation;
          Alcotest.test_case "bytes and copy_range" `Quick test_bytes_and_copy_range;
          Alcotest.test_case "backing_slice is live" `Quick test_backing_slice_is_live;
          qtest ranges_equal_matches_bytewise;
        ] );
    ]
