(* The observability layer: span log semantics, metrics registry
   arithmetic, Chrome-trace export shape, and — on a whole machine —
   the two contracts that make it trustworthy: the metrics reconcile
   with the simulator's own counters, and arming it never perturbs a
   run (same elapsed time, same counters, bit for bit). *)

module Obs = Midway_obs.Obs
module Metrics = Midway_obs.Metrics
module Trace_export = Midway_obs.Trace_export
module Json = Midway_util.Json
module R = Midway.Runtime
module Config = Midway.Config
module Range = Midway.Range
module Counters = Midway_stats.Counters

(* --- span log ----------------------------------------------------------- *)

let test_span_log_order () =
  let o = Obs.create () in
  Obs.span o Obs.Collect ~proc:0 ~sync:3 ~bytes:128 ~t0:100 ~t1:250 ();
  Obs.span o Obs.Acquire_wait ~proc:1 ~t0:50 ~t1:400 ();
  Obs.span o Obs.Diff ~proc:0 ~sync:3 ~note:"page diff" ~t0:100 ~t1:250 ();
  Alcotest.(check int) "count" 3 (Obs.span_count o);
  Alcotest.(check int) "nothing dropped" 0 (Obs.dropped o);
  let kinds = List.map (fun (s : Obs.span) -> Obs.kind_name s.Obs.kind) (Obs.spans o) in
  Alcotest.(check (list string)) "recording order" [ "collect"; "lock_wait"; "diff" ] kinds;
  (match Obs.spans o with
  | first :: _ ->
      Alcotest.(check int) "sync carried" 3 first.Obs.sync;
      Alcotest.(check int) "bytes carried" 128 first.Obs.bytes
  | [] -> Alcotest.fail "no spans");
  Alcotest.check_raises "t1 < t0 rejected"
    (Invalid_argument "Obs.span: t1 < t0") (fun () ->
      Obs.span o Obs.Collect ~proc:0 ~t0:10 ~t1:5 ())

let test_span_cap () =
  let o = Obs.create ~cap:2 () in
  for i = 1 to 5 do
    Obs.span o Obs.Apply ~proc:0 ~t0:i ~t1:(i + 1) ()
  done;
  Alcotest.(check int) "first cap kept" 2 (Obs.span_count o);
  Alcotest.(check int) "rest counted as dropped" 3 (Obs.dropped o);
  Alcotest.(check (list int)) "the first two survive" [ 1; 2 ]
    (List.map (fun (s : Obs.span) -> s.Obs.t0) (Obs.spans o))

let test_span_handles () =
  let o = Obs.create () in
  (* open two, close out of order: each handle must close its own span *)
  let outer = Obs.begin_span o Obs.Collect ~proc:2 ~t0:1_000 in
  let inner = Obs.begin_span o Obs.Diff ~proc:2 ~t0:1_100 in
  Obs.end_span o inner ~sync:7 ~t1:1_400 ();
  Obs.end_span o outer ~sync:7 ~bytes:64 ~t1:1_900 ();
  (match Obs.spans o with
  | [ a; b ] ->
      Alcotest.(check string) "inner closed first" "diff" (Obs.kind_name a.Obs.kind);
      Alcotest.(check int) "inner interval" 1_400 a.Obs.t1;
      Alcotest.(check string) "outer closed second" "collect" (Obs.kind_name b.Obs.kind);
      Alcotest.(check bool) "outer encloses inner" true
        (b.Obs.t0 <= a.Obs.t0 && a.Obs.t1 <= b.Obs.t1)
  | l -> Alcotest.fail (Printf.sprintf "expected 2 spans, got %d" (List.length l)));
  Alcotest.check_raises "double close rejected"
    (Invalid_argument "Obs.end_span: unknown or already-closed handle") (fun () ->
      Obs.end_span o inner ~t1:2_000 ())

(* --- metrics: buckets --------------------------------------------------- *)

let test_bucket_boundaries () =
  let m = Metrics.create () in
  let buckets = [| 10; 100; 1_000 |] in
  (* one observation per interesting position: below, exactly on each
     bound, one past a bound, and past the last bound (overflow) *)
  List.iter
    (fun v -> Metrics.observe m ~name:"h" ~buckets v)
    [ 0; 10; 11; 100; 101; 1_000; 1_001 ];
  let s = Metrics.snapshot m in
  match Metrics.find_hist s ~name:"h" ~label:"" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
      (* v <= bound lands in the first such bucket: 0,10 | 11,100 | 101,1000 | 1001 *)
      Alcotest.(check (array int)) "le-semantics per bucket" [| 2; 2; 2; 1 |] h.Metrics.h_counts;
      Alcotest.(check int) "count" 7 h.Metrics.h_count;
      Alcotest.(check int) "sum" 2_223 h.Metrics.h_sum;
      Alcotest.(check int) "min" 0 h.Metrics.h_min;
      Alcotest.(check int) "max" 1_001 h.Metrics.h_max

let test_bucket_layout_shared_and_validated () =
  let m = Metrics.create () in
  Metrics.observe m ~name:"lat" ~label:"a" ~buckets:[| 5; 50 |] 3;
  (* a second label of the same metric reuses the first layout, even if
     it asks for another one *)
  Metrics.observe m ~name:"lat" ~label:"b" ~buckets:[| 1; 2; 3 |] 60;
  let s = Metrics.snapshot m in
  (match Metrics.find_hist s ~name:"lat" ~label:"b" with
  | Some h -> Alcotest.(check (array int)) "layout fixed by first observe" [| 5; 50 |] h.Metrics.h_buckets
  | None -> Alcotest.fail "label b missing");
  Alcotest.(check (list string)) "labels sorted" [ "a"; "b" ] (Metrics.labels_of s ~name:"lat");
  Alcotest.check_raises "non-increasing layout rejected"
    (Invalid_argument "Metrics.observe: bucket bounds must be strictly increasing") (fun () ->
      Metrics.observe m ~name:"bad" ~buckets:[| 5; 5 |] 1)

(* --- metrics: snapshot / delta ------------------------------------------ *)

let test_snapshot_delta () =
  let m = Metrics.create () in
  Metrics.incr m ~name:"sends" ~label:"p0" 2;
  Metrics.observe m ~name:"lat" ~label:"p0" ~buckets:[| 10; 100 |] 7;
  let before = Metrics.snapshot m in
  Metrics.incr m ~name:"sends" ~label:"p0" 3;
  Metrics.incr m ~name:"sends" ~label:"p1" 1;  (* born after [before] *)
  Metrics.observe m ~name:"lat" ~label:"p0" 50;
  Metrics.observe m ~name:"lat" ~label:"p0" 500;
  let after = Metrics.snapshot m in
  (* snapshots are independent: [before] still shows the old values *)
  Alcotest.(check int) "before immutable" 2 (Metrics.counter_value before ~name:"sends" ~label:"p0");
  let d = Metrics.delta ~before ~after in
  Alcotest.(check int) "counter delta" 3 (Metrics.counter_value d ~name:"sends" ~label:"p0");
  Alcotest.(check int) "new series counts from zero" 1
    (Metrics.counter_value d ~name:"sends" ~label:"p1");
  (match Metrics.find_hist d ~name:"lat" ~label:"p0" with
  | None -> Alcotest.fail "hist delta missing"
  | Some h ->
      Alcotest.(check int) "observations in the window" 2 h.Metrics.h_count;
      Alcotest.(check int) "sum over the window" 550 h.Metrics.h_sum;
      Alcotest.(check (array int)) "per-bucket delta" [| 0; 1; 1 |] h.Metrics.h_counts);
  Alcotest.(check (pair int int)) "hist_totals over the delta" (550, 2)
    (Metrics.hist_totals d ~name:"lat")

let test_metrics_json_roundtrip () =
  let m = Metrics.create () in
  Metrics.incr m ~name:"sends" 4;
  Metrics.observe m ~name:"lat" ~buckets:[| 10 |] 3;
  Metrics.observe m ~name:"lat" 99;
  let json = Metrics.to_json (Metrics.snapshot m) in
  let back = Json.of_string (Json.to_string json) in
  let hists = Option.get (Option.bind (Json.member "histograms" back) Json.to_list) in
  Alcotest.(check int) "one histogram" 1 (List.length hists);
  let h = List.hd hists in
  Alcotest.(check (option int)) "sum survives the round trip" (Some 102)
    (Option.bind (Json.member "sum" h) Json.to_int);
  let buckets = Option.get (Option.bind (Json.member "buckets" h) Json.to_list) in
  Alcotest.(check (option string)) "overflow bucket tagged inf" (Some "inf")
    (Option.bind (Json.member "le" (List.nth buckets 1)) Json.to_str)

(* --- Chrome trace export ------------------------------------------------ *)

let test_trace_export_parses_back () =
  let o = Obs.create () in
  (* deliberately recorded out of order, with a tie in start time on
     proc 0 where the longer (enclosing) span must come first *)
  Obs.span o Obs.Diff ~proc:0 ~sync:1 ~t0:200 ~t1:350 ();
  Obs.span o Obs.Collect ~proc:0 ~sync:1 ~bytes:96 ~t0:200 ~t1:400 ();
  Obs.span o Obs.Acquire_wait ~proc:1 ~sync:1 ~t0:100 ~t1:500 ();
  Obs.span o Obs.Apply ~proc:0 ~sync:1 ~t0:50 ~t1:80 ();
  let back = Json.of_string (Json.to_string (Trace_export.to_json ~name:"unit" (Obs.spans o))) in
  let events = Option.get (Option.bind (Json.member "traceEvents" back) Json.to_list) in
  let xs =
    List.filter
      (fun ev -> Option.bind (Json.member "ph" ev) Json.to_str = Some "X")
      events
  in
  Alcotest.(check int) "every span exported" 4 (List.length xs);
  let track tid =
    List.filter (fun ev -> Option.bind (Json.member "tid" ev) Json.to_int = Some tid) xs
  in
  let ts ev = Option.get (Option.bind (Json.member "ts" ev) Json.to_float) in
  let cat ev = Option.get (Option.bind (Json.member "cat" ev) Json.to_str) in
  (* proc 0: sorted by start, collect before the equally-started diff *)
  Alcotest.(check (list string)) "tie broken longest-first (nesting)"
    [ "apply"; "collect"; "diff" ]
    (List.map cat (track 0));
  List.iter
    (fun tid ->
      let times = List.map ts (track tid) in
      Alcotest.(check bool) (Printf.sprintf "ts monotone on track %d" tid) true
        (List.sort compare times = times))
    [ 0; 1 ];
  (* ns -> us conversion on the simulated timeline *)
  Alcotest.(check (float 1e-9)) "ts in microseconds" 0.05 (ts (List.hd (track 0)));
  (* metadata names the process and both thread tracks *)
  let metas =
    List.filter_map
      (fun ev ->
        if Option.bind (Json.member "ph" ev) Json.to_str = Some "M" then
          Option.bind (Json.member "args" ev) (Json.member "name")
        else None)
      events
  in
  Alcotest.(check bool) "process named" true (List.mem (Json.Str "unit") metas);
  Alcotest.(check bool) "tracks named" true (List.mem (Json.Str "proc 1") metas)

(* --- on a whole machine ------------------------------------------------- *)

(* a small lock+barrier workload exercising every span kind the runtime
   emits (except retransmit, which needs an armed fault plan) *)
let run_workload cfg =
  let machine = R.create cfg in
  let counter = R.alloc machine ~line_size:8 8 in
  let arr = R.alloc machine ~line_size:8 (cfg.Config.nprocs * 8) in
  let lock = R.new_lock machine [ Range.v counter 8 ] in
  let bar = R.new_barrier machine [ Range.v arr (cfg.Config.nprocs * 8) ] in
  R.run machine (fun c ->
      let me = R.id c in
      for round = 1 to 3 do
        R.acquire c lock;
        R.write_int c counter (R.read_int c counter + 1);
        R.release c lock;
        R.write_int c (arr + (me * 8)) ((round * 100) + me);
        R.barrier c bar;
        R.work_ns c (1_000 * (me + 1))
      done);
  machine

let test_machine_reconciliation () =
  let nprocs = 4 in
  let cfg = { (Config.make Config.Rt ~nprocs) with Config.obs = true } in
  let machine = run_workload cfg in
  let o = match R.obs machine with Some o -> o | None -> Alcotest.fail "obs not armed" in
  let spans = Obs.spans o in
  (* every processor shows up, and the protocol phases are all covered *)
  List.iter
    (fun kind ->
      List.iteri
        (fun p () ->
          Alcotest.(check bool)
            (Printf.sprintf "%s span on p%d" (Obs.kind_name kind) p)
            true
            (List.exists (fun (s : Obs.span) -> s.Obs.kind = kind && s.Obs.proc = p) spans))
        (List.init nprocs (fun _ -> ())))
    [ Obs.Acquire_wait; Obs.Barrier_wait; Obs.Collect; Obs.Diff ];
  List.iter
    (fun (s : Obs.span) ->
      Alcotest.(check bool) "span interval well-formed" true (s.Obs.t0 <= s.Obs.t1);
      Alcotest.(check bool) "span inside the run" true
        (0 <= s.Obs.t0 && s.Obs.t1 <= R.elapsed_ns machine))
    spans;
  (* the metrics must agree with the simulator's own counters *)
  let s = Metrics.snapshot (Obs.metrics o) in
  let sum_counters f =
    List.fold_left (fun acc p -> acc + f (R.counters machine p)) 0 (List.init nprocs Fun.id)
  in
  let sent = sum_counters (fun (c : Counters.t) -> c.Counters.data_sent_bytes) in
  Alcotest.(check int) "transfer_bytes reconciles with data_sent_bytes" sent
    (fst (Metrics.hist_totals s ~name:"transfer_bytes"));
  let collect_total = sum_counters (fun (c : Counters.t) -> c.Counters.collect_time_ns) in
  Alcotest.(check int) "collect_ns + apply_ns reconcile with collect_time_ns" collect_total
    (fst (Metrics.hist_totals s ~name:"collect_ns")
    + fst (Metrics.hist_totals s ~name:"apply_ns"))

let test_obs_never_perturbs () =
  let nprocs = 4 in
  let run obs =
    let machine = run_workload { (Config.make Config.Vm ~nprocs) with Config.obs = obs } in
    ( R.elapsed_ns machine,
      List.map
        (fun p ->
          let c = R.counters machine p in
          ( c.Counters.messages,
            c.Counters.data_sent_bytes,
            c.Counters.collect_time_ns,
            c.Counters.lock_acquires_remote,
            c.Counters.barrier_crossings ))
        (List.init nprocs Fun.id) )
  in
  let off = run false and on = run true in
  Alcotest.(check bool) "armed observability changes nothing" true (off = on)

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "recording order" `Quick test_span_log_order;
          Alcotest.test_case "cap counts drops" `Quick test_span_cap;
          Alcotest.test_case "handles nest and close" `Quick test_span_handles;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "bucket boundaries" `Quick test_bucket_boundaries;
          Alcotest.test_case "layout shared and validated" `Quick
            test_bucket_layout_shared_and_validated;
          Alcotest.test_case "snapshot and delta" `Quick test_snapshot_delta;
          Alcotest.test_case "json round trip" `Quick test_metrics_json_roundtrip;
        ] );
      ( "export",
        [ Alcotest.test_case "chrome trace parses back" `Quick test_trace_export_parses_back ] );
      ( "machine",
        [
          Alcotest.test_case "metrics reconcile with counters" `Quick
            test_machine_reconciliation;
          Alcotest.test_case "arming obs never perturbs a run" `Quick test_obs_never_perturbs;
        ] );
    ]
